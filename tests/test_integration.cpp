// Integration & property tests across the full stack: CSP encoder ->
// crossbar -> LTA -> applications. These are the "does the system do what
// the paper claims" checks.
#include <gtest/gtest.h>

#include "core/ferex.hpp"
#include "data/datasets.hpp"
#include "ml/hdc.hpp"
#include "ml/knn.hpp"
#include "ml/quantize.hpp"

namespace ferex {
namespace {

using csp::DistanceMetric;

// Property: for every metric and random data, the circuit-level row
// currents (variation off) equal the software distances in unit currents.
struct MetricCase {
  DistanceMetric metric;
  int bits;
};

class CircuitEquivalence : public ::testing::TestWithParam<MetricCase> {};

TEST_P(CircuitEquivalence, RowCurrentsEqualSoftwareDistances) {
  const auto& p = GetParam();
  core::FerexOptions opt;
  opt.circuit.variation.enabled = false;
  opt.circuit.fet.ss_mv_per_dec = 15.0;    // suppress leak: exactness check
  opt.circuit.opamp.output_res_ohm = 0.0;  // ideal clamp: exactness check
  opt.lta.offset_sigma_rel = 0.0;
  opt.encoder.max_fefets_per_cell = 6;
  opt.encoder.max_vds_multiple = 5;
  core::FerexEngine engine(opt);
  engine.configure(p.metric, p.bits);

  util::Rng rng(1234);
  const std::size_t rows = 12, dims = 24;
  const int levels = 1 << p.bits;
  std::vector<std::vector<int>> db(rows, std::vector<int>(dims));
  for (auto& row : db) {
    for (auto& v : row) v = static_cast<int>(rng.uniform_below(levels));
  }
  engine.store(db);

  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> query(dims);
    for (auto& v : query) v = static_cast<int>(rng.uniform_below(levels));
    const auto currents = engine.array()->search(query);
    for (std::size_t r = 0; r < rows; ++r) {
      const double sensed = currents[r] / engine.array()->unit_current_a();
      const auto expected = static_cast<double>(
          ml::vector_distance(p.metric, query, db[r]));
      EXPECT_NEAR(sensed, expected, 0.05 + 0.002 * expected)
          << csp::to_string(p.metric) << " bits=" << p.bits << " row=" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, CircuitEquivalence,
    ::testing::Values(MetricCase{DistanceMetric::kHamming, 1},
                      MetricCase{DistanceMetric::kHamming, 2},
                      MetricCase{DistanceMetric::kManhattan, 1},
                      MetricCase{DistanceMetric::kManhattan, 2},
                      MetricCase{DistanceMetric::kEuclideanSquared, 1},
                      MetricCase{DistanceMetric::kEuclideanSquared, 2}),
    [](const auto& param_info) {
      return csp::to_string(param_info.param.metric) +
             std::to_string(param_info.param.bits) + "bit";
    });

TEST(Integration, KnnThroughFerexMatchesSoftwareKnn) {
  // KNN via iterative LTA on the array vs brute-force software KNN.
  core::FerexOptions opt;
  opt.circuit.variation.enabled = false;
  opt.lta.offset_sigma_rel = 0.0;
  core::FerexEngine engine(opt);
  engine.configure(DistanceMetric::kManhattan, 2);

  util::Rng rng(99);
  const std::size_t rows = 20, dims = 16;
  std::vector<std::vector<int>> db(rows, std::vector<int>(dims));
  util::Matrix<int> db_matrix(rows, dims, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t d = 0; d < dims; ++d) {
      db[r][d] = static_cast<int>(rng.uniform_below(4));
      db_matrix.at(r, d) = db[r][d];
    }
  }
  engine.store(db);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> query(dims);
    for (auto& v : query) v = static_cast<int>(rng.uniform_below(4));
    const auto hw = engine.search_k(query, 5);
    const auto sw =
        ml::knn_indices(DistanceMetric::kManhattan, db_matrix, query, 5);
    // Distances must agree rank-for-rank (indices may differ on ties).
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(ml::vector_distance(DistanceMetric::kManhattan, query,
                                    db[hw[i]]),
                ml::vector_distance(DistanceMetric::kManhattan, query,
                                    db[sw[i]]));
    }
  }
}

TEST(Integration, HdcInferenceThroughArrayMatchesSoftware) {
  // Program HDC class prototypes into FeReX; classify test samples via
  // the array and compare against software nearest-prototype inference.
  data::SyntheticSpec spec;
  spec.feature_count = 48;
  spec.class_count = 5;
  spec.train_size = 250;
  spec.test_size = 60;
  spec.class_separation = 0.9;
  const auto ds = data::make_synthetic(spec, 21);

  ml::HdcOptions hdc_opt;
  hdc_opt.hypervector_dim = 256;
  hdc_opt.bits = 2;
  ml::HdcModel model(ds.feature_count, ds.class_count, hdc_opt);
  model.train(ds.train_x, ds.train_y);

  core::FerexOptions opt;
  opt.circuit.variation.enabled = false;
  opt.lta.offset_sigma_rel = 0.0;
  core::FerexEngine engine(opt);
  engine.configure(DistanceMetric::kHamming, 2);
  std::vector<std::vector<int>> prototypes;
  for (std::size_t c = 0; c < ds.class_count; ++c) {
    const auto row = model.prototypes().row(c);
    prototypes.emplace_back(row.begin(), row.end());
  }
  engine.store(prototypes);

  std::size_t agreements = 0;
  for (std::size_t s = 0; s < ds.test_x.rows(); ++s) {
    const auto query = model.encode_query(ds.test_x.row(s));
    const auto hw_class = engine.search(query).nearest;
    const int sw_class = model.predict(DistanceMetric::kHamming,
                                       ds.test_x.row(s));
    if (static_cast<int>(hw_class) == sw_class) ++agreements;
  }
  // Exact agreement except possibly on distance ties.
  EXPECT_GE(agreements, ds.test_x.rows() - 3);
}

TEST(Integration, VariationDegradesButDoesNotDestroyAccuracy) {
  // A compact version of the Fig. 7 result: under the paper's variation
  // model the nearest neighbor is still found in the vast majority of
  // trials when the margin is >= 1 distance unit.
  core::FerexOptions ideal_opt, noisy_opt;
  ideal_opt.circuit.variation.enabled = false;
  ideal_opt.lta.offset_sigma_rel = 0.0;

  const std::size_t dims = 64;
  util::Rng rng(7);
  std::vector<int> base(dims);
  for (auto& v : base) v = static_cast<int>(rng.uniform_below(4));

  // Stored: the true neighbor at HD 5 and distractors at HD 6.
  auto perturb = [&](int flips, util::Rng& r) {
    auto vec = base;
    for (int f = 0; f < flips;) {
      const auto pos = r.uniform_below(dims);
      const int nv = static_cast<int>(r.uniform_below(4));
      if (nv != vec[pos]) {
        vec[pos] = nv;  // may alter HD by 1-2 bits; close enough for setup
        ++f;
      }
    }
    return vec;
  };

  std::size_t correct = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    core::FerexEngine engine(noisy_opt);  // variation ON (defaults)
    engine.configure(DistanceMetric::kHamming, 2);
    util::Rng trial_rng(1000 + t);
    std::vector<std::vector<int>> db;
    db.push_back(perturb(2, trial_rng));  // nearest
    for (int d = 0; d < 7; ++d) db.push_back(perturb(5, trial_rng));
    engine.store(db);
    if (engine.search(base).nearest == 0) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / trials, 0.85);
}

TEST(Integration, ReconfigurationPreservesStoredData) {
  core::FerexOptions opt;
  opt.circuit.variation.enabled = false;
  opt.lta.offset_sigma_rel = 0.0;
  opt.encoder.max_fefets_per_cell = 6;
  opt.encoder.max_vds_multiple = 5;  // Euclidean-2bit needs Vds up to 5V
  core::FerexEngine engine(opt);
  engine.configure(DistanceMetric::kHamming, 2);
  const std::vector<std::vector<int>> db{{0, 1, 2, 3}, {3, 2, 1, 0}};
  engine.store(db);
  engine.configure(DistanceMetric::kEuclideanSquared, 2);
  ASSERT_NE(engine.array(), nullptr);
  for (std::size_t r = 0; r < db.size(); ++r) {
    for (std::size_t d = 0; d < db[r].size(); ++d) {
      EXPECT_EQ(engine.array()->stored_value(r, d), db[r][d]);
    }
  }
}

}  // namespace
}  // namespace ferex
