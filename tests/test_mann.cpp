// Unit tests for the episodic few-shot (MANN) substrate.
#include <gtest/gtest.h>

#include "ml/mann.hpp"

namespace ferex::ml {
namespace {

using csp::DistanceMetric;

core::FerexOptions quiet_options() {
  core::FerexOptions opt;
  opt.circuit.variation.enabled = false;
  opt.lta.offset_sigma_rel = 0.0;
  return opt;
}

TEST(Episode, ShapesFollowSpec) {
  EpisodeSpec spec;
  spec.ways = 4;
  spec.shots = 3;
  spec.queries_per_class = 2;
  spec.feature_count = 16;
  util::Rng rng(1);
  const auto ep = make_episode(spec, rng);
  EXPECT_EQ(ep.support_x.rows(), 12u);
  EXPECT_EQ(ep.support_y.size(), 12u);
  EXPECT_EQ(ep.query_x.rows(), 8u);
  EXPECT_EQ(ep.query_x.cols(), 16u);
  // Labels are balanced and in range.
  std::vector<int> counts(4, 0);
  for (int y : ep.support_y) {
    ASSERT_GE(y, 0);
    ASSERT_LT(y, 4);
    ++counts[y];
  }
  for (int c : counts) EXPECT_EQ(c, 3);
}

TEST(Episode, FreshClassesPerEpisode) {
  EpisodeSpec spec;
  util::Rng rng(2);
  const auto a = make_episode(spec, rng);
  const auto b = make_episode(spec, rng);
  EXPECT_NE(a.support_x, b.support_x);  // novel classes each episode
}

TEST(Episode, RejectsDegenerateSpec) {
  EpisodeSpec spec;
  spec.ways = 0;
  util::Rng rng(3);
  EXPECT_THROW(make_episode(spec, rng), std::invalid_argument);
}

TEST(FewShot, WellSeparatedEpisodesAreLearnable) {
  EpisodeSpec spec;
  spec.ways = 5;
  spec.shots = 1;
  spec.queries_per_class = 6;
  spec.feature_count = 48;
  spec.class_separation = 1.5;
  core::FerexEngine engine(quiet_options());
  engine.configure(DistanceMetric::kManhattan, 2);
  const auto result = evaluate_few_shot(engine, spec, 15, 42);
  EXPECT_EQ(result.episodes, 15u);
  EXPECT_EQ(result.queries, 15u * 30u);
  EXPECT_GT(result.accuracy, 0.9);
}

TEST(FewShot, MoreShotsHelpOnHardEpisodes) {
  EpisodeSpec hard;
  hard.ways = 5;
  hard.queries_per_class = 8;
  hard.feature_count = 32;
  hard.class_separation = 0.55;
  core::FerexEngine engine(quiet_options());
  engine.configure(DistanceMetric::kEuclideanSquared, 2);
  auto one = hard;
  one.shots = 1;
  auto five = hard;
  five.shots = 5;
  const auto r1 = evaluate_few_shot(engine, one, 25, 7);
  const auto r5 = evaluate_few_shot(engine, five, 25, 7);
  EXPECT_GT(r5.accuracy, r1.accuracy);
}

TEST(FewShot, ChanceLevelOnUnseparatedClasses) {
  EpisodeSpec spec;
  spec.ways = 4;
  spec.queries_per_class = 10;
  spec.class_separation = 0.0;  // classes are identical distributions
  core::FerexEngine engine(quiet_options());
  engine.configure(DistanceMetric::kHamming, 2);
  const auto result = evaluate_few_shot(engine, spec, 20, 11);
  EXPECT_NEAR(result.accuracy, 0.25, 0.08);
}

TEST(FewShot, RequiresConfiguredEngine) {
  core::FerexEngine engine(quiet_options());
  EXPECT_THROW(evaluate_few_shot(engine, {}, 1, 0), std::logic_error);
}

TEST(FewShot, DeterministicForSameSeed) {
  EpisodeSpec spec;
  spec.feature_count = 24;
  core::FerexEngine a(quiet_options()), b(quiet_options());
  a.configure(DistanceMetric::kManhattan, 2);
  b.configure(DistanceMetric::kManhattan, 2);
  EXPECT_DOUBLE_EQ(evaluate_few_shot(a, spec, 5, 99).accuracy,
                   evaluate_few_shot(b, spec, 5, 99).accuracy);
}

}  // namespace
}  // namespace ferex::ml
