// Parameterized sweeps over the device substrate: ladder geometry,
// 1FeFET1R operating points, Preisach pulse physics, variation scaling.
#include <gtest/gtest.h>

// GCC 12's libstdc++ string concatenation triggers a -Wrestrict false
// positive (GCC bug 105329) when inlined into the gtest parameterized
// test-name generators below; suppress it for this TU only so
// -DFEREX_WERROR=ON stays viable.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ >= 12 && \
    __GNUC__ < 15  // expiry: re-test when GCC 15 lands; drop if fixed
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include <cmath>

#include "device/fefet.hpp"
#include "device/levels.hpp"
#include "device/one_fefet_one_r.hpp"
#include "device/preisach.hpp"
#include "device/variation.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ferex::device {
namespace {

// ------------------------------------------------- ladder geometry ---

struct LadderCase {
  std::size_t levels;
  double base;
  double step;
};

class LadderSweep : public ::testing::TestWithParam<LadderCase> {};

TEST_P(LadderSweep, StaircasePropertyHoldsForAllPairs) {
  const auto& p = GetParam();
  const VoltageLadder ladder(p.levels, p.base, p.step);
  for (std::size_t t = 0; t < p.levels; ++t) {
    for (std::size_t s = 0; s < p.levels; ++s) {
      EXPECT_EQ(ladder.vsearch(s) > ladder.vth(t), t < s);
    }
  }
}

TEST_P(LadderSweep, LevelsAreStrictlyAscendingAndInterleaved) {
  const auto& p = GetParam();
  const VoltageLadder ladder(p.levels, p.base, p.step);
  const auto vts = ladder.all_vth();
  const auto vss = ladder.all_vsearch();
  ASSERT_EQ(vts.size(), p.levels);
  ASSERT_EQ(vss.size(), p.levels);
  for (std::size_t i = 0; i < p.levels; ++i) {
    EXPECT_LT(vss[i], vts[i]);  // Vs_i sits just below Vt_i
    if (i > 0) {
      EXPECT_GT(vss[i], vss[i - 1]);
      EXPECT_GT(vts[i], vts[i - 1]);
      EXPECT_GT(vss[i], vts[i - 1]);  // ... and just above Vt_{i-1}
    }
  }
}

TEST_P(LadderSweep, MarginUniformAcrossLevels) {
  const auto& p = GetParam();
  const VoltageLadder ladder(p.levels, p.base, p.step);
  for (std::size_t i = 0; i < p.levels; ++i) {
    EXPECT_NEAR(ladder.vth(i) - ladder.vsearch(i), ladder.margin_v(), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LadderSweep,
    ::testing::Values(LadderCase{1, 0.2, 0.6}, LadderCase{2, 0.2, 0.6},
                      LadderCase{3, 0.2, 0.6}, LadderCase{4, 0.1, 0.45},
                      LadderCase{6, 0.15, 0.3}, LadderCase{8, 0.1, 0.22}),
    [](const auto& param_info) {
      return "L" + std::to_string(param_info.param.levels) + "_idx" +
             std::to_string(param_info.index);
    });

// ------------------------------------------------ 1FeFET1R biasing ---

class CellBiasSweep : public ::testing::TestWithParam<int> {};

TEST_P(CellBiasSweep, OnCurrentProportionalToVdsMultiple) {
  const int multiple = GetParam();
  OneFeFetOneR cell(0.5);
  const double unit = cell.current_at_multiple(1.8, 1);
  const double current = cell.current_at_multiple(1.8, multiple);
  EXPECT_NEAR(current / unit, static_cast<double>(multiple), 1e-9);
}

TEST_P(CellBiasSweep, OffCurrentNegligibleAtEveryMultiple) {
  const int multiple = GetParam();
  OneFeFetOneR cell(1.6);
  const double off = cell.current_at_multiple(0.2, multiple);
  const double on = cell.current_at_multiple(1.8, multiple);
  EXPECT_LT(off, on * 1e-3);
}

INSTANTIATE_TEST_SUITE_P(VdsMultiples, CellBiasSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------ Preisach physics ---

TEST(PreisachSweep, WidthMonotonicallyLowersVth) {
  double prev_vth = 10.0;
  for (double width : {20e-9, 60e-9, 200e-9, 600e-9, 2e-6}) {
    PreisachFeFet fet;
    fet.erase();
    fet.apply_pulse(fet.params().write_v, width);
    EXPECT_LE(fet.vth(), prev_vth + 1e-12) << "width " << width;
    prev_vth = fet.vth();
  }
}

TEST(PreisachSweep, AmplitudeMonotonicallyLowersVth) {
  double prev_vth = 10.0;
  const PreisachParams params;
  for (double amp = params.coercive_v + 0.2; amp <= params.write_v + 1.0;
       amp += 0.4) {
    PreisachFeFet fet;
    fet.erase();
    fet.apply_pulse(amp, params.pulse_width_s);
    EXPECT_LE(fet.vth(), prev_vth + 1e-12) << "amp " << amp;
    prev_vth = fet.vth();
  }
}

TEST(PreisachSweep, ProgramVerifyAccuracyAcrossWindowAndTolerance) {
  for (double tol : {20e-3, 5e-3, 1e-3}) {
    for (double frac : {0.15, 0.35, 0.5, 0.65, 0.85}) {
      PreisachFeFet fet;
      const double target = fet.params().vth_low_v +
                            frac * (fet.params().vth_high_v -
                                    fet.params().vth_low_v);
      fet.program_to_vth(target, tol);
      EXPECT_NEAR(fet.vth(), target, tol) << "tol " << tol << " frac " << frac;
    }
  }
}

TEST(PreisachSweep, StateIsIdempotentWithoutPulses) {
  PreisachFeFet fet;
  fet.program_to_vth(1.0);
  const double vth = fet.vth();
  for (int i = 0; i < 10; ++i) {
    // Sub-coercive reads / disturb pulses do not move the state.
    fet.apply_pulse(0.5, 1e-6);
    fet.apply_pulse(-0.5, 1e-6);
  }
  EXPECT_DOUBLE_EQ(fet.vth(), vth);
}

TEST(PreisachSweep, VthAlwaysInsideWindow) {
  util::Rng rng(1);
  PreisachFeFet fet;
  for (int i = 0; i < 500; ++i) {
    fet.apply_pulse(rng.uniform(-6.0, 6.0), rng.uniform(0.0, 2e-6));
    EXPECT_GE(fet.vth(), fet.params().vth_low_v - 1e-12);
    EXPECT_LE(fet.vth(), fet.params().vth_high_v + 1e-12);
  }
}

// ----------------------------------------------- variation scaling ---

class VariationSweep : public ::testing::TestWithParam<double> {};

TEST_P(VariationSweep, SampleSpreadTracksConfiguredSigma) {
  const double sigma = GetParam();
  VariationParams params;
  params.sigma_vth_v = sigma;
  const VariationModel model(params);
  util::Rng rng(99);
  util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(model.sample_vth_offset(rng));
  EXPECT_NEAR(stats.stddev(), sigma, sigma * 0.05 + 1e-6);
  EXPECT_NEAR(stats.mean(), 0.0, sigma * 0.05 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, VariationSweep,
                         ::testing::Values(0.0, 27e-3, 54e-3, 108e-3));

}  // namespace
}  // namespace ferex::device
