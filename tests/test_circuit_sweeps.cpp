// Parameterized sweeps over the circuit substrate: energy/delay model
// monotonicity across the Fig. 6 grid, crossbar geometry equivalence,
// LTA statistics, parasitics linearity and write-driver scaling.
#include <gtest/gtest.h>

// GCC 12's libstdc++ string concatenation triggers a -Wrestrict false
// positive (GCC bug 105329) when inlined into the gtest parameterized
// test-name generators below; suppress it for this TU only so
// -DFEREX_WERROR=ON stays viable.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ >= 12 && \
    __GNUC__ < 15  // expiry: re-test when GCC 15 lands; drop if fixed
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include <cmath>

#include "circuit/crossbar.hpp"
#include "circuit/energy_model.hpp"
#include "circuit/lta.hpp"
#include "circuit/parasitics.hpp"
#include "circuit/write.hpp"
#include "encode/encoder.hpp"
#include "ml/knn.hpp"
#include "util/rng.hpp"

namespace ferex::circuit {
namespace {

// ----------------------------------------------- energy/delay grid ---

struct GeometryCase {
  std::size_t rows;
  std::size_t dims;
};

class EnergyGrid : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(EnergyGrid, CostsArePositiveAndFinite) {
  const auto& p = GetParam();
  const EnergyDelayModel model;
  SearchOpSpec spec;
  spec.rows = p.rows;
  spec.dims = p.dims;
  const auto cost = model.search_op(spec);
  EXPECT_GT(cost.total_energy_j(), 0.0);
  EXPECT_GT(cost.total_delay_s(), 0.0);
  EXPECT_TRUE(std::isfinite(cost.total_energy_j()));
  EXPECT_TRUE(std::isfinite(cost.total_delay_s()));
  // Component sums match the totals.
  EXPECT_NEAR(cost.array_energy_j + cost.driver_energy_j +
                  cost.opamp_energy_j + cost.lta_energy_j +
                  cost.periphery_energy_j,
              cost.total_energy_j(), cost.total_energy_j() * 1e-12);
  EXPECT_NEAR(cost.scl_settle_s + cost.lta_delay_s, cost.total_delay_s(),
              cost.total_delay_s() * 1e-12);
}

TEST_P(EnergyGrid, MoreRowsNeverRaiseEnergyPerBit) {
  const auto& p = GetParam();
  const EnergyDelayModel model;
  SearchOpSpec spec;
  spec.rows = p.rows;
  spec.dims = p.dims;
  SearchOpSpec doubled = spec;
  doubled.rows *= 2;
  EXPECT_LE(model.search_op(doubled).energy_per_bit_j(doubled),
            model.search_op(spec).energy_per_bit_j(spec) * 1.02);
}

TEST_P(EnergyGrid, WiderArraysSettleSlower) {
  const auto& p = GetParam();
  const EnergyDelayModel model;
  SearchOpSpec spec;
  spec.rows = p.rows;
  spec.dims = p.dims;
  SearchOpSpec wider = spec;
  wider.dims *= 2;
  EXPECT_GT(model.search_op(wider).scl_settle_s,
            model.search_op(spec).scl_settle_s);
}

INSTANTIATE_TEST_SUITE_P(
    Fig6Grid, EnergyGrid,
    ::testing::Values(GeometryCase{16, 64}, GeometryCase{16, 1024},
                      GeometryCase{64, 256}, GeometryCase{128, 512},
                      GeometryCase{256, 64}, GeometryCase{256, 1024}),
    [](const auto& param_info) {
      return "r" + std::to_string(param_info.param.rows) + "d" +
             std::to_string(param_info.param.dims);
    });

// ------------------------------------------- crossbar geometry law ---

class CrossbarGeometry : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(CrossbarGeometry, SensedDistancesTrackNominalAcrossGeometry) {
  const auto& p = GetParam();
  const auto dm = csp::DistanceMatrix::make(csp::DistanceMetric::kHamming, 2);
  const auto enc = encode::encode_distance_matrix(dm);
  ASSERT_TRUE(enc.has_value());
  const device::VoltageLadder ladder(enc->ladder_levels());
  CrossbarConfig config;
  config.variation.enabled = false;
  config.fet.ss_mv_per_dec = 15.0;
  config.opamp.output_res_ohm = 0.0;
  util::Rng rng(p.rows * 131 + p.dims);
  CrossbarArray array(p.rows, p.dims, *enc, ladder, config, rng);
  std::vector<int> row(p.dims);
  for (std::size_t r = 0; r < p.rows; ++r) {
    for (auto& v : row) v = static_cast<int>(rng.uniform_below(4));
    array.program_row(r, row);
  }
  std::vector<int> query(p.dims);
  for (auto& v : query) v = static_cast<int>(rng.uniform_below(4));
  const auto currents = array.search(query);
  for (std::size_t r = 0; r < p.rows; ++r) {
    EXPECT_NEAR(currents[r] / array.unit_current_a(),
                array.nominal_distance(query, r), 0.01)
        << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CrossbarGeometry,
    ::testing::Values(GeometryCase{1, 1}, GeometryCase{2, 64},
                      GeometryCase{16, 16}, GeometryCase{8, 256}),
    [](const auto& param_info) {
      return "r" + std::to_string(param_info.param.rows) + "d" +
             std::to_string(param_info.param.dims);
    });

// -------------------------------------------------- LTA statistics ---

TEST(LtaStatistics, FlipProbabilityMatchesGaussianModel) {
  // Two rows one unit apart with offset sigma 0.25 units: the decision
  // flips when the NOISE DIFFERENCE exceeds 1 unit, i.e. with
  // probability Phi(-1 / (0.25 * sqrt(2))) ~= 0.23 %.
  LtaParams params;
  params.offset_sigma_rel = 0.25;
  const LtaCircuit lta(params);
  util::Rng rng(4242);
  int flips = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const std::vector<double> currents{1.0, 2.0};
    if (lta.decide(currents, 1.0, &rng).winner != 0) ++flips;
  }
  const double rate = static_cast<double>(flips) / trials;
  EXPECT_NEAR(rate, 0.0023, 0.0015);
}

TEST(LtaStatistics, DecideKEquivalentToFullSortWhenNoiseless) {
  const LtaCircuit lta;
  util::Rng rng(7);
  std::vector<double> currents(50);
  for (auto& c : currents) c = rng.uniform(0.0, 1.0);
  const auto ranked = lta.decide_k(currents, 1.0, 50, nullptr);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(currents[ranked[i - 1]], currents[ranked[i]]);
  }
}

// ------------------------------------------- parasitics linearity ---

TEST(ParasiticsLaw, SclCapacitanceLinearInColumns) {
  const Parasitics a(64, 100), b(64, 200), c(64, 300);
  EXPECT_NEAR(b.scl_cap_f() - a.scl_cap_f(), c.scl_cap_f() - b.scl_cap_f(),
              1e-21);
}

TEST(ParasiticsLaw, DlCapacitanceLinearInRows) {
  const Parasitics a(50, 64), b(100, 64), c(150, 64);
  EXPECT_NEAR(b.dl_cap_f() - a.dl_cap_f(), c.dl_cap_f() - b.dl_cap_f(),
              1e-21);
}

// --------------------------------------------- write-driver scaling ---

TEST(WriteScaling, EnergyGrowsWithRowWidth) {
  const WriteDriver driver;
  const std::vector<double> narrow{0.8, 1.2};
  std::vector<double> wide(64, 1.0);
  EXPECT_GT(driver.program_row(wide).energy_j,
            driver.program_row(narrow).energy_j);
}

TEST(WriteScaling, DisturbMarginScalesWithCoerciveHeadroom) {
  // The further Vwrite/2 sits below Vc, the larger the inhibit margin.
  WriteDriverParams tight, comfy;
  tight.device.coercive_v = tight.device.write_v / 2.0 + 0.05;
  comfy.device.coercive_v = comfy.device.write_v / 2.0 + 1.0;
  const auto tight_report = WriteDriver(tight).disturb_after(10000);
  const auto comfy_report = WriteDriver(comfy).disturb_after(10000);
  EXPECT_TRUE(tight_report.disturb_free);
  EXPECT_TRUE(comfy_report.disturb_free);
  EXPECT_LT(tight_report.inhibit_voltage_v, tight.device.coercive_v);
}

}  // namespace
}  // namespace ferex::circuit
