// Tests for the durability layer: versioned snapshots, the write-ahead
// log, recovery, and crash-point fault injection. The load-bearing
// claims:
//
//   * a snapshot round trip is bit-identical — the restored index serves
//     the same currents and hits AND its variation-RNG stream continues
//     exactly, so later inserts land identically too;
//   * any malformed snapshot or WAL byte is a typed error naming the
//     offset (never UB, never a silently wrong index), while a torn WAL
//     tail — the signature of a crash mid-append — recovers by
//     truncation;
//   * recovery (snapshot + WAL replay past the watermark) reproduces the
//     uninterrupted run bit for bit, on both backends, both fidelities,
//     through the sync and async front doors, with a crash injected at
//     every record boundary — including a literal kill-the-child test;
//   * tombstone compaction is bit-identical to a fresh store() of the
//     survivors.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <future>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "arch/banked_am.hpp"
#include "core/ferex.hpp"
#include "data/datasets.hpp"
#include "encode/serialize.hpp"
#include "serve/async_index.hpp"
#include "serve/banked_index.hpp"
#include "serve/durable.hpp"
#include "serve/engine_index.hpp"
#include "serve/snapshot.hpp"
#include "serve/wal.hpp"
#include "util/durable_file.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace ferex {
namespace {

using core::SearchFidelity;
using csp::DistanceMetric;

void expect_identical(const serve::SearchResponse& a,
                      const serve::SearchResponse& b) {
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].global_row, b.hits[i].global_row);
    EXPECT_EQ(a.hits[i].bank, b.hits[i].bank);
    EXPECT_EQ(a.hits[i].sensed_current_a, b.hits[i].sensed_current_a);
    EXPECT_EQ(a.hits[i].margin_a, b.hits[i].margin_a);
    EXPECT_EQ(a.hits[i].nominal_distance, b.hits[i].nominal_distance);
  }
}

/// mkdtemp-backed scratch directory, removed (recursively) on scope exit.
class ScopedDir {
 public:
  ScopedDir() {
    std::string pattern = ::testing::TempDir() + "ferex_durable_XXXXXX";
    std::vector<char> buffer(pattern.begin(), pattern.end());
    buffer.push_back('\0');
    const char* made = ::mkdtemp(buffer.data());
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : pattern;
  }
  ~ScopedDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  ScopedDir(const ScopedDir&) = delete;
  ScopedDir& operator=(const ScopedDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

enum class Backend { kEngine, kBanked };

/// A fresh, unconfigured index of the given shape — what a restart
/// constructs before recovery/installation runs.
std::unique_ptr<serve::AmIndex> make_empty(Backend backend,
                                           SearchFidelity fidelity) {
  if (backend == Backend::kEngine) {
    core::FerexOptions opt;
    opt.fidelity = fidelity;
    return std::make_unique<serve::EngineIndex>(opt);
  }
  arch::BankedOptions opt;
  opt.bank_rows = 3;
  opt.engine.fidelity = fidelity;
  return std::make_unique<serve::BankedIndex>(opt);
}

std::unique_ptr<serve::AmIndex> make_index(
    Backend backend, SearchFidelity fidelity,
    const std::vector<std::vector<int>>& db) {
  auto index = make_empty(backend, fidelity);
  index->configure(DistanceMetric::kHamming, 2);
  index->store(db);
  return index;
}

/// Asserts two indexes are in bit-identical serving state: same counts,
/// same hits/currents for a query sweep, and — the stronger claim — the
/// same variation-RNG position, proven by a continued insert landing
/// identically and serving identically afterwards.
void expect_same_state(serve::AmIndex& a, serve::AmIndex& b,
                       const std::vector<std::vector<int>>& queries,
                       const std::vector<int>& probe) {
  ASSERT_EQ(a.stored_count(), b.stored_count());
  ASSERT_EQ(a.live_count(), b.live_count());
  EXPECT_EQ(a.query_serial(), b.query_serial());
  if (a.live_count() == 0) return;
  const std::size_t k = std::min<std::size_t>(3, a.live_count());
  for (const auto& q : queries) {
    expect_identical(a.search({q, k, std::nullopt}),
                     b.search({q, k, std::nullopt}));
  }
  const auto receipt_a = a.insert(probe);
  const auto receipt_b = b.insert(probe);
  EXPECT_EQ(receipt_a.global_row, receipt_b.global_row);
  expect_identical(a.search({queries.front(), k, std::nullopt}),
                   b.search({queries.front(), k, std::nullopt}));
}

// --------------------------------------------------------------- rng --

TEST(RngStateT, RoundTripResumesTheExactStream) {
  util::Rng rng(42);
  for (int i = 0; i < 17; ++i) rng();
  // An odd gaussian count leaves the Box-Muller cache engaged — the
  // restored stream must continue mid-pair.
  for (int i = 0; i < 3; ++i) rng.gaussian();

  util::Rng resumed(0);
  resumed.set_state(rng.state());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng(), resumed());
    EXPECT_EQ(rng.gaussian(), resumed.gaussian());
    EXPECT_EQ(rng.uniform(), resumed.uniform());
  }
}

TEST(RngStateT, AllZeroLanesAreRejected) {
  // xoshiro256++ has the all-zero fixed point (every output 0 forever);
  // a corrupt snapshot must not wedge the generator there.
  util::Rng rng(7);
  rng.set_state(util::Rng::State{{0, 0, 0, 0}, 0.0, false});
  std::uint64_t accumulated = 0;
  for (int i = 0; i < 8; ++i) accumulated |= rng();
  EXPECT_NE(accumulated, 0u);
}

// ------------------------------------------------------ durable_file --

TEST(DurableFileT, AtomicWriteCreatesAndReplaces) {
  ScopedDir dir;
  const std::string path = dir.path() + "/blob";
  const std::vector<std::uint8_t> first = {1, 2, 3};
  const std::vector<std::uint8_t> second = {9, 8, 7, 6};

  util::atomic_write_file(path, first);
  std::vector<std::uint8_t> read;
  ASSERT_TRUE(util::read_file(path, read));
  EXPECT_EQ(read, first);

  // Rename-over-existing is the checkpoint's normal case.
  util::atomic_write_file(path, second);
  ASSERT_TRUE(util::read_file(path, read));
  EXPECT_EQ(read, second);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(DurableFileT, ReadFileMissingReturnsFalse) {
  ScopedDir dir;
  std::vector<std::uint8_t> out = {42};
  EXPECT_FALSE(util::read_file(dir.path() + "/absent", out));
  EXPECT_EQ(out, std::vector<std::uint8_t>{42});
}

TEST(DurableFileT, AppendAndTruncateRoundTrip) {
  ScopedDir dir;
  const std::string path = dir.path() + "/log";
  const std::vector<std::uint8_t> chunk = {1, 2, 3, 4};
  {
    util::AppendFile file(path, util::SyncPolicy::kEveryAppend);
    file.append(chunk.data(), chunk.size());
    file.append(chunk.data(), chunk.size());
    EXPECT_EQ(file.size(), 8u);
  }
  {
    // Reopening appends at the end, never truncates.
    util::AppendFile file(path, util::SyncPolicy::kOnClose);
    EXPECT_EQ(file.size(), 8u);
    file.append(chunk.data(), 2);
    file.close();
    EXPECT_THROW(file.append(chunk.data(), 1), std::system_error);
  }
  std::vector<std::uint8_t> read;
  ASSERT_TRUE(util::read_file(path, read));
  EXPECT_EQ(read.size(), 10u);

  util::truncate_file(path, 3);
  ASSERT_TRUE(util::read_file(path, read));
  EXPECT_EQ(read, (std::vector<std::uint8_t>{1, 2, 3}));

  util::remove_file(path);
  EXPECT_FALSE(util::read_file(path, read));
  util::remove_file(path);  // idempotent
}

// --------------------------------------------------- binary encoding --

TEST(BinaryCodecT, Crc32MatchesTheStandardCheckValue) {
  const char* check = "123456789";
  EXPECT_EQ(encode::crc32(reinterpret_cast<const std::uint8_t*>(check), 9),
            0xCBF43926u);
}

TEST(BinaryCodecT, WriterReaderRoundTrip) {
  encode::ByteWriter out;
  out.u8(0xAB);
  out.u32(0xDEADBEEFu);
  out.u64(0x0123456789ABCDEFull);
  out.f64(-0.8125);

  encode::ByteReader in(out.data());
  EXPECT_EQ(in.u8(), 0xAB);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.f64(), -0.8125);
  EXPECT_EQ(in.remaining(), 0u);
  in.expect_end();
}

TEST(BinaryCodecT, TruncatedReadIsTypedWithOffset) {
  encode::ByteWriter out;
  out.u32(7);
  encode::ByteReader in(out.data());
  in.u32();
  try {
    in.u64();
    FAIL() << "read past the end must throw";
  } catch (const encode::CorruptSnapshot& error) {
    EXPECT_EQ(error.offset(), 4u);
    EXPECT_NE(std::string(error.what()).find("byte 4"), std::string::npos);
  }
}

// ----------------------------------------------------------- snapshot --

class DurableParityT
    : public ::testing::TestWithParam<std::tuple<Backend, SearchFidelity>> {};

TEST_P(DurableParityT, SnapshotRoundTripIsBitIdentical) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(6, 5, 4, 1001);
  const auto queries = data::random_int_vectors(4, 5, 4, 1002);
  const auto fresh = data::random_int_vectors(3, 5, 4, 1003);

  auto live = make_index(backend, fidelity, db);
  // Dirty every piece of captured state: tombstone, overwrite (consuming
  // variation draws), and serving ordinals.
  live->remove(2);
  live->update(4, fresh[0]);
  live->search({queries[0], 2, std::nullopt});

  const auto bytes = serve::encode_snapshot(*live, 17);
  auto restored = make_empty(backend, fidelity);
  EXPECT_EQ(serve::install_snapshot(*restored, bytes), 17u);
  expect_same_state(*live, *restored, queries, fresh[1]);
}

TEST_P(DurableParityT, SaveAndLoadRoundTripOnDisk) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(5, 4, 4, 1004);
  const auto queries = data::random_int_vectors(3, 4, 4, 1005);
  ScopedDir dir;
  const std::string path = dir.path() + "/snap";

  auto live = make_index(backend, fidelity, db);
  live->remove(1);
  serve::save_snapshot(*live, path, 3);

  auto restored = make_empty(backend, fidelity);
  EXPECT_EQ(serve::load_snapshot(*restored, path), 3u);
  expect_same_state(*live, *restored, queries,
                    data::random_int_vectors(1, 4, 4, 1006).front());

  auto missing = make_empty(backend, fidelity);
  EXPECT_THROW(serve::load_snapshot(*missing, dir.path() + "/absent"),
               std::system_error);
}

TEST(SnapshotMismatchT, WrongBackendFidelityOrGeometryIsTyped) {
  const auto db = data::random_int_vectors(5, 4, 4, 1007);

  const auto engine_bytes = serve::encode_snapshot(
      *make_index(Backend::kEngine, SearchFidelity::kCircuit, db), 1);
  const auto banked_bytes = serve::encode_snapshot(
      *make_index(Backend::kBanked, SearchFidelity::kCircuit, db), 1);

  // Backend kind.
  auto banked = make_empty(Backend::kBanked, SearchFidelity::kCircuit);
  EXPECT_THROW(serve::install_snapshot(*banked, engine_bytes),
               serve::SnapshotMismatch);
  auto engine = make_empty(Backend::kEngine, SearchFidelity::kCircuit);
  EXPECT_THROW(serve::install_snapshot(*engine, banked_bytes),
               serve::SnapshotMismatch);

  // Fidelity.
  auto nominal = make_empty(Backend::kEngine, SearchFidelity::kNominal);
  try {
    serve::install_snapshot(*nominal, engine_bytes);
    FAIL() << "fidelity mismatch must throw";
  } catch (const serve::SnapshotMismatch& error) {
    EXPECT_NE(std::string(error.what()).find("fidelity"), std::string::npos);
  }

  // Geometry: same backend kind, different bank_rows.
  arch::BankedOptions narrow;
  narrow.bank_rows = 2;
  auto other_geometry = std::make_unique<serve::BankedIndex>(narrow);
  try {
    serve::install_snapshot(*other_geometry, banked_bytes);
    FAIL() << "bank_rows mismatch must throw";
  } catch (const serve::SnapshotMismatch& error) {
    EXPECT_NE(std::string(error.what()).find("bank_rows"), std::string::npos);
  }
}

TEST(SnapshotFuzzT, EveryByteFlipAndTruncationIsTypedNeverSilent) {
  const auto db = data::random_int_vectors(4, 4, 4, 1008);
  const auto valid = serve::encode_snapshot(
      *make_index(Backend::kEngine, SearchFidelity::kCircuit, db), 5);

  // Single-bit flips at every byte offset: the envelope checks (magic,
  // version, size) or the payload CRC must catch every one of them —
  // install throws a typed error and never yields a silently wrong index.
  for (std::size_t i = 0; i < valid.size(); ++i) {
    auto mutated = valid;
    mutated[i] ^= 0x01;
    auto target = make_empty(Backend::kEngine, SearchFidelity::kCircuit);
    SCOPED_TRACE("flip at byte " + std::to_string(i));
    EXPECT_THROW(serve::install_snapshot(*target, mutated),
                 encode::CorruptSnapshot);
  }

  // Truncation at every length.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    std::vector<std::uint8_t> cut(valid.begin(), valid.begin() + len);
    auto target = make_empty(Backend::kEngine, SearchFidelity::kCircuit);
    SCOPED_TRACE("truncated to " + std::to_string(len));
    EXPECT_THROW(serve::install_snapshot(*target, cut),
                 encode::CorruptSnapshot);
  }
}

// ---------------------------------------------------------------- wal --

TEST(WalT, AppendReadRoundTripAndReopen) {
  ScopedDir dir;
  const std::string path = dir.path() + "/wal";
  const auto db = data::random_int_vectors(3, 4, 4, 1009);
  {
    serve::Wal wal(path, util::SyncPolicy::kEveryAppend);
    EXPECT_EQ(wal.append_configure(DistanceMetric::kHamming, 2, false), 1u);
    EXPECT_EQ(wal.append_store(db), 2u);
    EXPECT_EQ(wal.append_insert(db[0]), 3u);
    EXPECT_EQ(wal.append_remove(1), 4u);
    EXPECT_EQ(wal.append_update(2, db[1]), 5u);
    EXPECT_EQ(wal.next_seq(), 6u);
  }

  const auto scan = serve::read_wal(path);
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 5u);
  EXPECT_EQ(scan.records[0].op, serve::WalOp::kConfigure);
  EXPECT_EQ(scan.records[0].metric, DistanceMetric::kHamming);
  EXPECT_EQ(scan.records[0].bits, 2);
  EXPECT_FALSE(scan.records[0].composite);
  EXPECT_EQ(scan.records[1].op, serve::WalOp::kStore);
  EXPECT_EQ(scan.records[1].vectors, db);
  EXPECT_EQ(scan.records[2].op, serve::WalOp::kInsert);
  EXPECT_EQ(scan.records[2].vectors.front(), db[0]);
  EXPECT_EQ(scan.records[3].op, serve::WalOp::kRemove);
  EXPECT_EQ(scan.records[3].row, 1u);
  EXPECT_EQ(scan.records[4].op, serve::WalOp::kUpdate);
  EXPECT_EQ(scan.records[4].row, 2u);
  EXPECT_EQ(scan.records[4].vectors.front(), db[1]);
  for (std::size_t i = 0; i < scan.records.size(); ++i) {
    EXPECT_EQ(scan.records[i].seq, i + 1);
  }

  // Reopen continues the sequence, never rewrites.
  serve::Wal wal(path, util::SyncPolicy::kEveryAppend,
                 scan.records.back().seq + 1);
  EXPECT_EQ(wal.append_remove(0), 6u);
  EXPECT_EQ(serve::read_wal(path).records.size(), 6u);

  // A missing log is an empty result, not an error.
  const auto absent = serve::read_wal(dir.path() + "/absent");
  EXPECT_TRUE(absent.records.empty());
  EXPECT_FALSE(absent.torn_tail);
}

TEST(WalT, TornTailAtEveryByteRecoversThePrefix) {
  ScopedDir dir;
  const std::string path = dir.path() + "/wal";
  const auto db = data::random_int_vectors(2, 3, 4, 1010);
  {
    serve::Wal wal(path, util::SyncPolicy::kNever);
    wal.append_configure(DistanceMetric::kHamming, 2, false);
    wal.append_store(db);
    wal.append_insert(db[0]);
    wal.append_remove(0);
  }
  std::vector<std::uint8_t> full;
  ASSERT_TRUE(util::read_file(path, full));
  const auto reference = serve::read_wal(path);
  ASSERT_EQ(reference.records.size(), 4u);

  // Record boundaries, from the scanner itself (header, then each frame).
  std::vector<std::size_t> boundaries = {12};
  for (std::size_t offset = 12; offset < full.size();) {
    encode::ByteReader frame(full.data() + offset, 4);
    offset += 8 + frame.u32();
    boundaries.push_back(offset);
  }
  ASSERT_EQ(boundaries.back(), full.size());

  const std::string torn = dir.path() + "/torn";
  for (std::size_t len = 0; len <= full.size(); ++len) {
    SCOPED_TRACE("torn at byte " + std::to_string(len));
    util::atomic_write_file(
        torn, std::vector<std::uint8_t>(full.begin(), full.begin() + len));
    const auto scan = serve::read_wal(torn);
    // The prefix of complete records survives; everything after the last
    // boundary at or below the cut is reported torn.
    std::size_t complete = 0;
    while (complete + 1 < boundaries.size() &&
           boundaries[complete + 1] <= len) {
      ++complete;
    }
    ASSERT_EQ(scan.records.size(), complete);
    for (std::size_t i = 0; i < complete; ++i) {
      EXPECT_EQ(scan.records[i].seq, reference.records[i].seq);
      EXPECT_EQ(scan.records[i].op, reference.records[i].op);
    }
    const bool at_boundary =
        len == 0 ||
        std::find(boundaries.begin(), boundaries.end(), len) != boundaries.end();
    EXPECT_EQ(scan.torn_tail, !at_boundary);

    // Repair truncates to the last boundary and the log reopens clean.
    serve::repair_wal(torn);
    const auto repaired = serve::read_wal(torn);
    EXPECT_FALSE(repaired.torn_tail);
    EXPECT_EQ(repaired.records.size(), complete);
    serve::Wal reopened(torn, util::SyncPolicy::kNever,
                        complete > 0 ? repaired.records.back().seq + 1 : 1);
    reopened.append_remove(1);
    EXPECT_EQ(serve::read_wal(torn).records.size(), complete + 1);
  }
}

TEST(WalT, MidLogCorruptionIsTypedWithOffset) {
  ScopedDir dir;
  const std::string path = dir.path() + "/wal";
  const auto db = data::random_int_vectors(2, 3, 4, 1011);
  {
    serve::Wal wal(path, util::SyncPolicy::kNever);
    wal.append_configure(DistanceMetric::kHamming, 2, false);
    wal.append_store(db);
    wal.append_remove(0);
  }
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(util::read_file(path, bytes));

  // Flip a payload byte of the FIRST record: CRC fails before the tail.
  {
    auto corrupt = bytes;
    corrupt[12 + 8] ^= 0x40;
    util::atomic_write_file(path, corrupt);
    try {
      serve::read_wal(path);
      FAIL() << "mid-log corruption must throw";
    } catch (const serve::CorruptLog& error) {
      EXPECT_EQ(error.offset(), 12u);
      EXPECT_NE(std::string(error.what()).find("byte 12"), std::string::npos);
    }
    // repair_wal only fixes torn tails; real corruption stays typed.
    EXPECT_THROW(serve::repair_wal(path), serve::CorruptLog);
  }

  // A sequence gap (record spliced out) is corruption, not a tail.
  {
    encode::ByteReader first_frame(bytes.data() + 12, 4);
    const std::size_t first_end = 12 + 8 + first_frame.u32();
    encode::ByteReader second_frame(bytes.data() + first_end, 4);
    const std::size_t second_end = first_end + 8 + second_frame.u32();
    std::vector<std::uint8_t> spliced(bytes.begin(), bytes.begin() + first_end);
    spliced.insert(spliced.end(), bytes.begin() + second_end, bytes.end());
    util::atomic_write_file(path, spliced);
    try {
      serve::read_wal(path);
      FAIL() << "a sequence gap must throw";
    } catch (const serve::CorruptLog& error) {
      EXPECT_EQ(error.offset(), first_end);
      EXPECT_NE(std::string(error.what()).find("sequence gap"),
                std::string::npos);
    }
  }

  // A flipped header byte is corruption at offset 0.
  {
    auto corrupt = bytes;
    corrupt[0] ^= 0x01;
    util::atomic_write_file(path, corrupt);
    EXPECT_THROW(serve::read_wal(path), serve::CorruptLog);
  }
}

// ------------------------------------------------------------ recover --

TEST_P(DurableParityT, RecoveryEqualsTheLiveSequence) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(6, 5, 4, 1012);
  const auto queries = data::random_int_vectors(4, 5, 4, 1013);
  const auto fresh = data::random_int_vectors(4, 5, 4, 1014);
  ScopedDir dir;

  auto live = make_empty(backend, fidelity);
  serve::DurableIndex durable(*live, dir.path());
  durable.configure(DistanceMetric::kHamming, 2);
  durable.store(db);
  durable.remove(2);
  durable.update(4, fresh[1]);
  // A deterministically failing write (double remove — slot 2 is still
  // a tombstone) journals, fails live, and must replay as the identical
  // no-op.
  EXPECT_THROW(durable.remove(2), std::logic_error);
  durable.insert(fresh[0]);  // reuses the freed slot
  EXPECT_EQ(durable.last_seq(), 6u);

  // Cold-start recovery: WAL-only replay.
  {
    auto recovered = make_empty(backend, fidelity);
    EXPECT_EQ(serve::recover_index(*recovered, dir.path()), 6u);
    // Compare against a clone recovered the same way rather than
    // mutating the live index mid-test.
    auto reference = make_empty(backend, fidelity);
    serve::recover_index(*reference, dir.path());
    expect_same_state(*recovered, *reference, queries, fresh[2]);
  }

  // Checkpoint rotates the WAL; recovery now installs the snapshot.
  durable.checkpoint();
  {
    std::vector<std::uint8_t> log;
    ASSERT_TRUE(util::read_file(durable.wal_path(), log));
    EXPECT_EQ(log.size(), 12u);  // header only — records were dropped
  }
  durable.remove(0);
  durable.insert(fresh[3]);
  EXPECT_EQ(durable.last_seq(), 8u);

  auto recovered = make_empty(backend, fidelity);
  EXPECT_EQ(serve::recover_index(*recovered, dir.path()), 8u);
  expect_same_state(*live, *recovered, queries, fresh[2]);
}

TEST_P(DurableParityT, WatermarkMakesReplayIdempotent) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(5, 4, 4, 1015);
  const auto queries = data::random_int_vectors(3, 4, 4, 1016);
  const auto probe = data::random_int_vectors(1, 4, 4, 1017).front();
  ScopedDir dir;

  auto live = make_empty(backend, fidelity);
  serve::DurableIndex durable(*live, dir.path());
  durable.configure(DistanceMetric::kHamming, 2);
  durable.store(db);
  durable.remove(1);
  durable.insert(db[0]);

  // Snapshot WITHOUT rotating — the crash window between a checkpoint's
  // snapshot write and its log rotation. Every WAL record is now at or
  // below the watermark; replaying the full log over the snapshot must
  // skip them all instead of double-applying.
  serve::save_snapshot(*live, durable.snapshot_path(), durable.last_seq());
  EXPECT_EQ(serve::read_wal(durable.wal_path()).records.size(), 4u);

  auto recovered = make_empty(backend, fidelity);
  EXPECT_EQ(serve::recover_index(*recovered, dir.path()), durable.last_seq());
  expect_same_state(*live, *recovered, queries, probe);
}

TEST_P(DurableParityT, AsyncSessionJournalsAtEpochAssignment) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(6, 5, 4, 1018);
  const auto queries = data::random_int_vectors(4, 5, 4, 1019);
  const auto fresh = data::random_int_vectors(4, 5, 4, 1020);
  ScopedDir dir;

  auto live = make_empty(backend, fidelity);
  serve::DurableIndex durable(*live, dir.path());
  durable.configure(DistanceMetric::kHamming, 2);
  durable.store(db);

  {
    serve::AsyncOptions options;
    options.dispatchers = 2;
    options.max_batch = 4;
    options.wal = &durable.wal();
    serve::AsyncAmIndex async_index(*live, options);
    // While the session owns the index, the durable front door is shut —
    // nothing may journal out of order.
    EXPECT_THROW(durable.remove(0), serve::MutationWhileServed);
    EXPECT_THROW(durable.checkpoint(), serve::MutationWhileServed);

    std::vector<std::future<serve::WriteReceipt>> writes;
    writes.push_back(async_index.submit_remove(2));
    auto search = async_index.submit({queries[0], 2, std::nullopt});
    writes.push_back(async_index.submit_insert(fresh[0]));
    writes.push_back(async_index.submit_update(4, fresh[1]));
    writes.push_back(async_index.submit_remove(0));
    search.get();
    for (auto& w : writes) w.get();
    // A failing async write journals too and replays as the same no-op.
    EXPECT_THROW(async_index.submit_remove(0).get(), std::logic_error);
  }
  EXPECT_EQ(durable.last_seq(), 7u);  // configure, store, 5 session writes

  // WAL-only replay reproduces the async session's serialized order.
  auto recovered = make_empty(backend, fidelity);
  EXPECT_EQ(serve::recover_index(*recovered, dir.path()), 7u);
  // Search ordinals are serving-session state: the log does not carry
  // them (searches are not mutations), so align the recovered index
  // before comparing — a checkpoint would have captured them.
  recovered->set_query_serial(live->query_serial());
  expect_same_state(*live, *recovered, queries, fresh[2]);

  durable.checkpoint();
  auto reloaded = make_empty(backend, fidelity);
  serve::recover_index(*reloaded, dir.path());
  EXPECT_EQ(reloaded->query_serial(), live->query_serial());
}

// --------------------------------------------------------- compaction --

TEST_P(DurableParityT, CompactionIsBitIdenticalToAFreshStoreOfSurvivors) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(7, 5, 4, 1021);
  const auto queries = data::random_int_vectors(4, 5, 4, 1022);
  const auto probe = data::random_int_vectors(1, 5, 4, 1023).front();
  ScopedDir dir;

  auto live = make_empty(backend, fidelity);
  serve::DurableIndex durable(*live, dir.path());
  durable.configure(DistanceMetric::kHamming, 2);
  durable.store(db);
  durable.remove(1);
  durable.remove(4);
  EXPECT_EQ(durable.compact(), 2u);
  EXPECT_EQ(live->stored_count(), 5u);
  EXPECT_EQ(live->live_count(), 5u);

  // The proof: a brand-new index fresh-storing exactly the survivors.
  std::vector<std::vector<int>> survivors;
  for (std::size_t r = 0; r < db.size(); ++r) {
    if (r != 1 && r != 4) survivors.push_back(db[r]);
  }
  auto reference = make_index(backend, fidelity, survivors);
  expect_same_state(*live, *reference, queries, probe);

  // compact() checkpoints, so recovery sees the compacted layout.
  auto recovered = make_empty(backend, fidelity);
  serve::recover_index(*recovered, dir.path());
  auto reference2 = make_index(backend, fidelity, survivors);
  // expect_same_state inserted the probe into live/reference above;
  // recovered reflects the checkpoint taken before that.
  EXPECT_EQ(recovered->stored_count(), 5u);
  EXPECT_EQ(recovered->live_count(), 5u);
  expect_same_state(*recovered, *reference2, queries, probe);
}

TEST(DurableTriggerT, FreedFractionTriggersCompactionAutomatically) {
  const auto db = data::random_int_vectors(6, 4, 4, 1024);
  ScopedDir dir;
  serve::EngineIndex index{core::FerexOptions{}};
  serve::DurableOptions options;
  options.compact_free_fraction = 0.3;
  serve::DurableIndex durable(index, dir.path(), options);
  durable.configure(DistanceMetric::kHamming, 2);
  durable.store(db);

  durable.remove(0);  // 1/6 freed — below threshold
  EXPECT_EQ(index.stored_count(), 6u);
  durable.remove(3);  // 2/6 freed — crosses 0.3
  EXPECT_EQ(index.stored_count(), 4u);
  EXPECT_EQ(index.live_count(), 4u);

  // The trigger checkpointed: recovery restores the compacted index.
  serve::EngineIndex recovered{core::FerexOptions{}};
  serve::recover_index(recovered, dir.path());
  EXPECT_EQ(recovered.stored_count(), 4u);
  EXPECT_EQ(recovered.live_count(), 4u);
}

// ---------------------------------------------------- crash injection --

/// Thrown by an armed failpoint to simulate dying at that instant
/// in-process (the kill-child test below does it with a real _exit).
struct CrashSim {};

constexpr std::uint64_t kScriptSeqs = 8;

/// The crash-sweep workload: configure, store, then six interleaved
/// writes — seq numbers 1..8 — with a checkpoint after seq 4 when
/// `with_checkpoint` (checkpoints are logically transparent, so the
/// reference replays the same prefix without one). `limit` cuts the
/// script short for prefix references.
void run_script(serve::DurableIndex& durable, std::uint64_t limit,
                const std::vector<std::vector<int>>& db,
                const std::vector<std::vector<int>>& fresh,
                bool with_checkpoint) {
  std::uint64_t seq = 0;
  const auto step = [&](auto&& op) {
    if (seq < limit) {
      ++seq;
      op();
    }
  };
  step([&] { durable.configure(DistanceMetric::kHamming, 2); });
  step([&] { durable.store(db); });
  step([&] { durable.remove(1); });
  step([&] { durable.insert(fresh[0]); });
  if (with_checkpoint && seq == 4) durable.checkpoint();
  step([&] { durable.update(3, fresh[1]); });
  step([&] { durable.remove(0); });
  step([&] { durable.insert(fresh[2]); });
  step([&] { durable.update(0, fresh[3]); });
}

const char* const kCrashSites[] = {
    "wal.append.before_record",        "wal.append.after_record",
    "durable.append.before_write",     "durable.append.before_sync",
    "durable.append.after_commit",     "durable.atomic.before_temp_sync",
    "durable.atomic.before_rename",    "durable.atomic.before_dir_sync",
    "durable.checkpoint.before_snapshot",
    "durable.checkpoint.after_snapshot",
};

TEST_P(DurableParityT, CrashAtEveryInjectionPointRecoversBitIdentical) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(6, 5, 4, 1025);
  const auto queries = data::random_int_vectors(3, 5, 4, 1026);
  const auto fresh = data::random_int_vectors(5, 5, 4, 1027);

  for (const char* site : kCrashSites) {
    // Dry run: count how often this site fires across the workload.
    std::uint64_t hits = 0;
    {
      ScopedDir dir;
      auto index = make_empty(backend, fidelity);
      util::failpoint_arm(site, 0, nullptr);
      serve::DurableIndex durable(*index, dir.path());
      run_script(durable, kScriptSeqs, db, fresh, true);
      hits = util::failpoint_hits();
      util::failpoint_disarm();
    }
    ASSERT_GT(hits, 0u) << site << " never fired — dead injection site";

    // Then die at each boundary in turn.
    for (std::uint64_t nth = 1; nth <= hits; ++nth) {
      SCOPED_TRACE(std::string(site) + " hit " + std::to_string(nth));
      ScopedDir dir;
      {
        auto index = make_empty(backend, fidelity);
        util::failpoint_arm(site, nth, [] { throw CrashSim{}; });
        try {
          serve::DurableIndex durable(*index, dir.path());
          run_script(durable, kScriptSeqs, db, fresh, true);
        } catch (const CrashSim&) {
          // Died mid-workload; the in-memory index is abandoned.
        }
        util::failpoint_disarm();
      }

      auto recovered = make_empty(backend, fidelity);
      const std::uint64_t applied = serve::recover_index(*recovered,
                                                         dir.path());
      ASSERT_LE(applied, kScriptSeqs);

      // The recovered state must equal an uninterrupted run of exactly
      // the prefix that became durable.
      ScopedDir reference_dir;
      auto reference = make_empty(backend, fidelity);
      serve::DurableIndex reference_durable(*reference, reference_dir.path());
      run_script(reference_durable, applied, db, fresh, false);
      expect_same_state(*recovered, *reference, queries, fresh[4]);
    }
  }
}

TEST(KillChildT, RecoversBitIdenticalAfterHardProcessDeath) {
  const auto db = data::random_int_vectors(6, 5, 4, 1028);
  const auto queries = data::random_int_vectors(3, 5, 4, 1029);
  const auto fresh = data::random_int_vectors(5, 5, 4, 1030);

  // Crash after the 3rd, 5th, and 7th record commit, plus one run that
  // survives the whole workload (the countdown never fires).
  for (const std::uint64_t nth : {3u, 5u, 7u, 1000u}) {
    SCOPED_TRACE("kill after record " + std::to_string(nth));
    ScopedDir dir;
    const ::pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // In the child: real process death via _exit — no unwinding, no
      // destructors, exactly a kill at the record boundary. Async
      // session so the journal-at-epoch-assignment path is the one
      // being killed.
      util::failpoint_arm("wal.append.after_record", nth, [] { ::_exit(0); });
      serve::EngineIndex index{core::FerexOptions{}};
      serve::DurableIndex durable(index, dir.path());
      durable.configure(DistanceMetric::kHamming, 2);
      durable.store(db);
      serve::AsyncOptions options;
      options.wal = &durable.wal();
      serve::AsyncAmIndex async_index(index, options);
      async_index.submit_remove(1).get();
      async_index.submit_insert(fresh[0]).get();
      async_index.submit_update(3, fresh[1]).get();
      async_index.submit_remove(0).get();
      async_index.submit_insert(fresh[2]).get();
      async_index.shutdown();
      ::_exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);

    serve::EngineIndex recovered{core::FerexOptions{}};
    const std::uint64_t applied = serve::recover_index(recovered, dir.path());
    ASSERT_LE(applied, 7u);
    // The async child acknowledged ops in submission order, so the
    // durable prefix maps 1:1 onto the synchronous script below.
    serve::EngineIndex reference{core::FerexOptions{}};
    ScopedDir reference_dir;
    serve::DurableIndex reference_durable(reference, reference_dir.path());
    std::uint64_t seq = 0;
    const auto step = [&](auto&& op) {
      if (seq < applied) {
        ++seq;
        op();
      }
    };
    step([&] { reference_durable.configure(DistanceMetric::kHamming, 2); });
    step([&] { reference_durable.store(db); });
    step([&] { reference_durable.remove(1); });
    step([&] { reference_durable.insert(fresh[0]); });
    step([&] { reference_durable.update(3, fresh[1]); });
    step([&] { reference_durable.remove(0); });
    step([&] { reference_durable.insert(fresh[2]); });
    expect_same_state(recovered, reference, queries, fresh[3]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, DurableParityT,
    ::testing::Combine(::testing::Values(Backend::kEngine, Backend::kBanked),
                       ::testing::Values(SearchFidelity::kCircuit,
                                         SearchFidelity::kNominal)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) == Backend::kEngine
                             ? "Engine"
                             : "Banked";
      name += std::get<1>(info.param) == SearchFidelity::kCircuit
                  ? "Circuit"
                  : "Nominal";
      return name;
    });

// ---------------------------------------------------------- failpoint --

TEST(FailPointT, CountdownAndHitAccounting) {
  int fired = 0;
  util::failpoint_arm("test.site", 3, [&] { ++fired; });
  util::failpoint_hit("other.site");  // no match, not counted
  EXPECT_EQ(util::failpoint_hits(), 0u);
  util::failpoint_hit("test.site");
  util::failpoint_hit("test.site");
  EXPECT_EQ(fired, 0);
  util::failpoint_hit("test.site");
  EXPECT_EQ(fired, 1);
  util::failpoint_hit("test.site");  // past the countdown: counted, no fire
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(util::failpoint_hits(), 4u);
  util::failpoint_disarm();
  util::failpoint_hit("test.site");
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace ferex
