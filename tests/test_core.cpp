// Unit tests for the FeReX engine: configuration across metrics,
// reconfiguration on live data, search correctness at both fidelities,
// k-NN queries, and the energy/delay surface.
#include <gtest/gtest.h>

#include "core/ferex.hpp"

namespace ferex::core {
namespace {

using csp::DistanceMetric;

std::vector<std::vector<int>> toy_database() {
  return {{0, 0, 0, 0}, {1, 1, 1, 1}, {2, 2, 2, 2}, {3, 3, 3, 3},
          {0, 1, 2, 3}, {3, 2, 1, 0}};
}

FerexOptions noiseless_options() {
  FerexOptions opt;
  opt.circuit.variation.enabled = false;
  opt.lta.offset_sigma_rel = 0.0;
  return opt;
}

TEST(FerexEngine, LifecycleGuards) {
  FerexEngine engine;
  EXPECT_FALSE(engine.configured());
  const std::vector<int> q{0};
  EXPECT_THROW(engine.search(q), std::logic_error);
  EXPECT_THROW(engine.encoding(), std::logic_error);
  EXPECT_THROW(engine.distance_matrix(), std::logic_error);
  EXPECT_THROW(engine.store({}), std::invalid_argument);
  EXPECT_THROW(engine.store({{1, 2}, {1}}), std::invalid_argument);
}

TEST(FerexEngine, ConfigureThenStoreThenSearch) {
  FerexEngine engine(noiseless_options());
  engine.configure(DistanceMetric::kHamming, 2);
  EXPECT_TRUE(engine.configured());
  engine.store(toy_database());
  EXPECT_EQ(engine.stored_count(), 6u);
  EXPECT_EQ(engine.dims(), 4u);

  const std::vector<int> query{1, 1, 1, 1};
  const auto result = engine.search(query);
  EXPECT_EQ(result.nearest, 1u);  // exact match stored at row 1
  EXPECT_EQ(result.nominal_distance, 0);
}

TEST(FerexEngine, SearchMatchesSoftwareArgminAcrossMetrics) {
  for (auto metric : {DistanceMetric::kHamming, DistanceMetric::kManhattan,
                      DistanceMetric::kEuclideanSquared}) {
    auto opt = noiseless_options();
    opt.encoder.max_fefets_per_cell = 6;
    opt.encoder.max_vds_multiple = 5;
    FerexEngine engine(opt);
    engine.configure(metric, 2);
    engine.store(toy_database());
    util::Rng rng(42);
    for (int trial = 0; trial < 30; ++trial) {
      std::vector<int> query(4);
      for (auto& v : query) v = static_cast<int>(rng.uniform_below(4));
      const auto result = engine.search(query);
      // The winner's software distance must equal the global minimum.
      int min_dist = std::numeric_limits<int>::max();
      for (std::size_t r = 0; r < engine.stored_count(); ++r) {
        min_dist = std::min(min_dist, engine.software_distance(query, r));
      }
      EXPECT_EQ(engine.software_distance(query, result.nearest), min_dist)
          << csp::to_string(metric);
    }
  }
}

TEST(FerexEngine, NominalFidelityAgreesWithCircuitWhenNoiseless) {
  auto circuit_opt = noiseless_options();
  auto nominal_opt = noiseless_options();
  nominal_opt.fidelity = SearchFidelity::kNominal;
  FerexEngine circuit_engine(circuit_opt), nominal_engine(nominal_opt);
  for (auto* engine : {&circuit_engine, &nominal_engine}) {
    engine->configure(DistanceMetric::kHamming, 2);
    engine->store(toy_database());
  }
  util::Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<int> query(4);
    for (auto& v : query) v = static_cast<int>(rng.uniform_below(4));
    // Winners may differ on exact distance ties (the tiny subthreshold
    // leak perturbs tie-breaking); the winning *distance* must agree.
    const auto c = circuit_engine.search(query);
    const auto n = nominal_engine.search(query);
    EXPECT_EQ(circuit_engine.software_distance(query, c.nearest),
              nominal_engine.software_distance(query, n.nearest));
  }
}

TEST(FerexEngine, ReconfigurationChangesWinner) {
  // The reconfigurability headline: same stored data, different metric,
  // different nearest neighbor. Query 2 vs stored {0, 3}: Hamming says 3
  // is closer to 2 (HD(10,11)=1 < HD(10,00)=1? no — craft carefully).
  //
  // Use scalars: query=1, candidates {2, 3}:
  //   Manhattan: |1-2|=1 < |1-3|=2          -> row 0 (value 2)
  //   Hamming:   HD(01,10)=2, HD(01,11)=1   -> row 1 (value 3)
  auto opt = noiseless_options();
  FerexEngine engine(opt);
  engine.configure(DistanceMetric::kManhattan, 2);
  engine.store({{2, 2, 2, 2}, {3, 3, 3, 3}});
  const std::vector<int> query{1, 1, 1, 1};
  EXPECT_EQ(engine.search(query).nearest, 0u);

  engine.configure(DistanceMetric::kHamming, 2);  // same data, re-encoded
  EXPECT_EQ(engine.search(query).nearest, 1u);

  engine.configure(DistanceMetric::kManhattan, 2);  // and back
  EXPECT_EQ(engine.search(query).nearest, 0u);
}

TEST(FerexEngine, SearchKReturnsSortedNeighbors) {
  FerexEngine engine(noiseless_options());
  engine.configure(DistanceMetric::kManhattan, 2);
  engine.store({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  const std::vector<int> query{0, 1};
  const auto top3 = engine.search_k(query, 3);
  ASSERT_EQ(top3.size(), 3u);
  // Distances: row0=1, row1=1, row2=3, row3=5.
  EXPECT_TRUE((top3[0] == 0 && top3[1] == 1) ||
              (top3[0] == 1 && top3[1] == 0));
  EXPECT_EQ(top3[2], 2u);
}

TEST(FerexEngine, CustomDistanceMatrixEndToEnd) {
  // A "don't care on value 3" matrix: distance to stored 3 is always 0.
  util::Matrix<int> values(4, 4, 0);
  for (std::size_t sch = 0; sch < 4; ++sch) {
    for (std::size_t sto = 0; sto < 4; ++sto) {
      values.at(sch, sto) =
          sto == 3 ? 0
                   : std::abs(static_cast<int>(sch) - static_cast<int>(sto));
    }
  }
  FerexEngine engine(noiseless_options());
  engine.configure(csp::DistanceMatrix::custom(std::move(values), "masked-L1"));
  engine.store({{0, 0}, {3, 3}});
  const std::vector<int> query{2, 2};
  // Stored row 1 is all wildcards: distance 0 < |2-0|*2.
  EXPECT_EQ(engine.search(query).nearest, 1u);
}

TEST(FerexEngine, InfeasibleConfigurationThrows) {
  FerexOptions opt = noiseless_options();
  opt.encoder.max_fefets_per_cell = 1;
  opt.encoder.max_vds_multiple = 1;
  FerexEngine engine(opt);
  EXPECT_THROW(engine.configure(DistanceMetric::kEuclideanSquared, 2),
               std::runtime_error);
}

TEST(FerexEngine, EncoderReportExposed) {
  FerexEngine engine(noiseless_options());
  engine.configure(DistanceMetric::kHamming, 2);
  EXPECT_EQ(engine.encoder_report().fefets_per_cell, 3);
  EXPECT_EQ(engine.encoding().fefets_per_cell(), 3u);
  EXPECT_EQ(engine.metric(), DistanceMetric::kHamming);
  EXPECT_EQ(engine.bits(), 2);
}

TEST(FerexEngine, SearchCostReflectsGeometry) {
  FerexEngine small_engine(noiseless_options());
  small_engine.configure(DistanceMetric::kHamming, 2);
  small_engine.store(std::vector<std::vector<int>>(8, std::vector<int>(32, 1)));
  FerexEngine large_engine(noiseless_options());
  large_engine.configure(DistanceMetric::kHamming, 2);
  large_engine.store(
      std::vector<std::vector<int>>(128, std::vector<int>(512, 1)));
  const auto small_cost = small_engine.search_cost();
  const auto large_cost = large_engine.search_cost();
  EXPECT_GT(large_cost.total_energy_j(), small_cost.total_energy_j());
  EXPECT_GT(large_cost.total_delay_s(), small_cost.total_delay_s());
}

TEST(FerexEngine, ProgramCostScalesWithDatabase) {
  FerexEngine small_engine(noiseless_options());
  small_engine.configure(DistanceMetric::kHamming, 2);
  small_engine.store(std::vector<std::vector<int>>(4, std::vector<int>(8, 1)));
  FerexEngine large_engine(noiseless_options());
  large_engine.configure(DistanceMetric::kHamming, 2);
  large_engine.store(std::vector<std::vector<int>>(16, std::vector<int>(8, 1)));
  const auto small_cost = small_engine.program_cost();
  const auto large_cost = large_engine.program_cost();
  EXPECT_GT(small_cost.pulses, 0u);
  EXPECT_NEAR(static_cast<double>(large_cost.pulses) /
                  static_cast<double>(small_cost.pulses),
              4.0, 0.01);
  EXPECT_NEAR(large_cost.energy_j / small_cost.energy_j, 4.0, 0.05);
  EXPECT_NEAR(large_cost.latency_s / small_cost.latency_s, 4.0, 0.01);
}

TEST(FerexEngine, ProgramCostRequiresStoredData) {
  FerexEngine engine(noiseless_options());
  EXPECT_THROW(engine.program_cost(), std::logic_error);
  engine.configure(DistanceMetric::kHamming, 2);
  EXPECT_THROW(engine.program_cost(), std::logic_error);
}

TEST(FerexEngine, SearchIsMuchCheaperThanReprogramming) {
  // The asymmetry that motivates AM architectures: one search costs
  // orders of magnitude less time than re-writing the array.
  FerexEngine engine(noiseless_options());
  engine.configure(DistanceMetric::kHamming, 2);
  engine.store(std::vector<std::vector<int>>(32, std::vector<int>(64, 2)));
  EXPECT_LT(engine.search_cost().total_delay_s() * 100.0,
            engine.program_cost().latency_s);
}

TEST(FerexEngine, StoreBeforeConfigureThenConfigureProgramsArray) {
  FerexEngine engine(noiseless_options());
  engine.store(toy_database());
  EXPECT_EQ(engine.array(), nullptr);  // no encoding yet
  engine.configure(DistanceMetric::kHamming, 2);
  ASSERT_NE(engine.array(), nullptr);
  const std::vector<int> query{3, 3, 3, 3};
  EXPECT_EQ(engine.search(query).nearest, 3u);
}

}  // namespace
}  // namespace ferex::core
