// Unit tests for the search-quality profiler and the serve-path latency
// reservoir.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/profiler.hpp"
#include "util/rng.hpp"

namespace ferex::core {
namespace {

using csp::DistanceMetric;

FerexEngine ready_engine(bool noisy) {
  FerexOptions opt;
  if (!noisy) {
    opt.circuit.variation.enabled = false;
    opt.circuit.fet.ss_mv_per_dec = 15.0;
    opt.circuit.opamp.output_res_ohm = 0.0;
    opt.lta.offset_sigma_rel = 0.0;
  }
  FerexEngine engine(opt);
  engine.configure(DistanceMetric::kHamming, 2);
  util::Rng rng(noisy ? 2 : 1);
  std::vector<std::vector<int>> db(10, std::vector<int>(16));
  for (auto& row : db) {
    for (auto& v : row) v = static_cast<int>(rng.uniform_below(4));
  }
  engine.store(db);
  return engine;
}

std::vector<std::vector<int>> random_queries(std::size_t n) {
  util::Rng rng(33);
  std::vector<std::vector<int>> queries(n, std::vector<int>(16));
  for (auto& q : queries) {
    for (auto& v : q) v = static_cast<int>(rng.uniform_below(4));
  }
  return queries;
}

TEST(Profiler, ExactEngineHasPerfectAgreementAndZeroError) {
  auto engine = ready_engine(/*noisy=*/false);
  const auto queries = random_queries(20);
  const auto profile = profile_searches(engine, queries);
  EXPECT_EQ(profile.queries, 20u);
  EXPECT_DOUBLE_EQ(profile.argmin_agreement, 1.0);
  EXPECT_NEAR(profile.winner_error_units.mean(), 0.0, 0.02);
  EXPECT_GE(profile.margin_units.min(), 0.0);
}

TEST(Profiler, NoisyEngineShowsErrorButBoundedMarginLoss) {
  auto engine = ready_engine(/*noisy=*/true);
  const auto queries = random_queries(30);
  const auto profile = profile_searches(engine, queries);
  // Variation + leakage must be visible in the winner error spread...
  EXPECT_GT(profile.winner_error_units.stddev(), 1e-4);
  // ...yet with random data (large distances) agreement stays high.
  EXPECT_GT(profile.argmin_agreement, 0.8);
}

TEST(Profiler, HistogramCountsSumToQueries) {
  auto engine = ready_engine(false);
  const auto queries = random_queries(25);
  const auto profile = profile_searches(engine, queries, 8);
  std::size_t total = 0;
  for (auto c : profile.winner_distance_histogram) total += c;
  EXPECT_EQ(total, 25u);
  EXPECT_EQ(profile.winner_distance_histogram.size(), 8u);
}

TEST(Profiler, RejectsUnreadyEngineAndBadBins) {
  FerexEngine engine;
  const auto queries = random_queries(1);
  EXPECT_THROW(profile_searches(engine, queries), std::logic_error);
  auto ready = ready_engine(false);
  EXPECT_THROW(profile_searches(ready, queries, 0), std::invalid_argument);
}

// ----------------------------------------------------- LatencyReservoir --

TEST(LatencyReservoirT, ExactPercentilesBelowCapacity) {
  LatencyReservoir reservoir(/*capacity_per_thread=*/2048);
  for (int i = 1; i <= 1000; ++i) reservoir.record(static_cast<double>(i));
  const auto summary = reservoir.summarize();
  EXPECT_EQ(summary.count, 1000u);
  EXPECT_EQ(summary.kept, 1000u);
  EXPECT_EQ(summary.dropped, 0u);
  // Linear interpolation over 1..1000 (the bench_json convention).
  EXPECT_NEAR(summary.p50_us, 500.5, 1e-9);
  EXPECT_NEAR(summary.p95_us, 950.05, 1e-9);
  EXPECT_NEAR(summary.p99_us, 990.01, 1e-9);
  EXPECT_EQ(summary.max_us, 1000.0);
}

TEST(LatencyReservoirT, ReservoirCapsKeptSamplesButCountsEverything) {
  LatencyReservoir reservoir(/*capacity_per_thread=*/64);
  for (int i = 1; i <= 10000; ++i) reservoir.record(static_cast<double>(i));
  const auto summary = reservoir.summarize();
  EXPECT_EQ(summary.count, 10000u);
  EXPECT_EQ(summary.kept, 64u);
  EXPECT_EQ(summary.max_us, 10000.0);  // exact even when evicted
  EXPECT_GE(summary.p50_us, 1.0);
  EXPECT_LE(summary.p50_us, 10000.0);
  EXPECT_LE(summary.p50_us, summary.p95_us);
  EXPECT_LE(summary.p95_us, summary.p99_us);
}

TEST(LatencyReservoirT, ConcurrentRecordersMergeLockFree) {
  LatencyReservoir reservoir(/*capacity_per_thread=*/1024);
  constexpr std::size_t kThreads = 4, kPerThread = 1000;
  std::vector<std::thread> recorders;
  for (std::size_t t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&reservoir, t] {
      for (std::size_t i = 1; i <= kPerThread; ++i) {
        reservoir.record(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (auto& thread : recorders) thread.join();
  const auto summary = reservoir.summarize();
  EXPECT_EQ(summary.count, kThreads * kPerThread);
  EXPECT_EQ(summary.kept, kThreads * kPerThread);  // under capacity
  EXPECT_EQ(summary.dropped, 0u);
  EXPECT_EQ(summary.max_us, static_cast<double>(kThreads * kPerThread));
  // Merged p50 over 1..4000 recorded across four disjoint ranges.
  EXPECT_NEAR(summary.p50_us, 2000.5, 1e-9);
}

TEST(LatencyReservoirT, IndependentInstancesDoNotShareSlots) {
  LatencyReservoir a(16), b(16);
  a.record(1.0);
  b.record(100.0);
  EXPECT_EQ(a.summarize().count, 1u);
  EXPECT_EQ(b.summarize().count, 1u);
  EXPECT_EQ(a.summarize().max_us, 1.0);
  EXPECT_EQ(b.summarize().max_us, 100.0);
}

}  // namespace
}  // namespace ferex::core
