// Unit tests for the search-quality profiler.
#include <gtest/gtest.h>

#include "core/profiler.hpp"
#include "util/rng.hpp"

namespace ferex::core {
namespace {

using csp::DistanceMetric;

FerexEngine ready_engine(bool noisy) {
  FerexOptions opt;
  if (!noisy) {
    opt.circuit.variation.enabled = false;
    opt.circuit.fet.ss_mv_per_dec = 15.0;
    opt.circuit.opamp.output_res_ohm = 0.0;
    opt.lta.offset_sigma_rel = 0.0;
  }
  FerexEngine engine(opt);
  engine.configure(DistanceMetric::kHamming, 2);
  util::Rng rng(noisy ? 2 : 1);
  std::vector<std::vector<int>> db(10, std::vector<int>(16));
  for (auto& row : db) {
    for (auto& v : row) v = static_cast<int>(rng.uniform_below(4));
  }
  engine.store(db);
  return engine;
}

std::vector<std::vector<int>> random_queries(std::size_t n) {
  util::Rng rng(33);
  std::vector<std::vector<int>> queries(n, std::vector<int>(16));
  for (auto& q : queries) {
    for (auto& v : q) v = static_cast<int>(rng.uniform_below(4));
  }
  return queries;
}

TEST(Profiler, ExactEngineHasPerfectAgreementAndZeroError) {
  auto engine = ready_engine(/*noisy=*/false);
  const auto queries = random_queries(20);
  const auto profile = profile_searches(engine, queries);
  EXPECT_EQ(profile.queries, 20u);
  EXPECT_DOUBLE_EQ(profile.argmin_agreement, 1.0);
  EXPECT_NEAR(profile.winner_error_units.mean(), 0.0, 0.02);
  EXPECT_GE(profile.margin_units.min(), 0.0);
}

TEST(Profiler, NoisyEngineShowsErrorButBoundedMarginLoss) {
  auto engine = ready_engine(/*noisy=*/true);
  const auto queries = random_queries(30);
  const auto profile = profile_searches(engine, queries);
  // Variation + leakage must be visible in the winner error spread...
  EXPECT_GT(profile.winner_error_units.stddev(), 1e-4);
  // ...yet with random data (large distances) agreement stays high.
  EXPECT_GT(profile.argmin_agreement, 0.8);
}

TEST(Profiler, HistogramCountsSumToQueries) {
  auto engine = ready_engine(false);
  const auto queries = random_queries(25);
  const auto profile = profile_searches(engine, queries, 8);
  std::size_t total = 0;
  for (auto c : profile.winner_distance_histogram) total += c;
  EXPECT_EQ(total, 25u);
  EXPECT_EQ(profile.winner_distance_histogram.size(), 8u);
}

TEST(Profiler, RejectsUnreadyEngineAndBadBins) {
  FerexEngine engine;
  const auto queries = random_queries(1);
  EXPECT_THROW(profile_searches(engine, queries), std::logic_error);
  auto ready = ready_engine(false);
  EXPECT_THROW(profile_searches(ready, queries, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ferex::core
