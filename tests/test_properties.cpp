// Cross-module randomized property tests: invariants that must hold for
// arbitrary (seeded) inputs, complementing the per-module example-based
// tests.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/ferex.hpp"
#include "csp/decompose.hpp"
#include "csp/feasibility.hpp"
#include "encode/composite.hpp"
#include "encode/encoder.hpp"
#include "ml/knn.hpp"
#include "ml/quantize.hpp"
#include "util/rng.hpp"

namespace ferex {
namespace {

using csp::DistanceMetric;

// ------------------------------------------------ metric invariants ---

class MetricProperty : public ::testing::TestWithParam<DistanceMetric> {};

TEST_P(MetricProperty, IdentityOfIndiscernibles) {
  const auto metric = GetParam();
  for (int v = 0; v < 16; ++v) {
    EXPECT_EQ(csp::reference_distance(metric, v, v), 0);
  }
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      if (a != b) {
        EXPECT_GT(csp::reference_distance(metric, a, b), 0);
      }
    }
  }
}

TEST_P(MetricProperty, Symmetry) {
  const auto metric = GetParam();
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      EXPECT_EQ(csp::reference_distance(metric, a, b),
                csp::reference_distance(metric, b, a));
    }
  }
}

TEST_P(MetricProperty, TriangleInequalityWhereExpected) {
  const auto metric = GetParam();
  if (metric == DistanceMetric::kEuclideanSquared) {
    GTEST_SKIP() << "squared Euclidean deliberately violates the triangle "
                    "inequality";
  }
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      for (int c = 0; c < 8; ++c) {
        EXPECT_LE(csp::reference_distance(metric, a, c),
                  csp::reference_distance(metric, a, b) +
                      csp::reference_distance(metric, b, c));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricProperty,
                         ::testing::Values(DistanceMetric::kHamming,
                                           DistanceMetric::kManhattan,
                                           DistanceMetric::kEuclideanSquared),
                         [](const auto& param_info) {
                           return csp::to_string(param_info.param);
                         });

// ------------------------------------- random custom DM feasibility ---

TEST(RandomDmProperty, FeasibleEncodingsAlwaysRealizeTheirDm) {
  // For random small DMs: whenever the encoder reports success, the
  // encoding must reproduce the matrix exactly; when it reports proven
  // infeasibility, no solution may exist at that k (checked by solving
  // with the alternate constraint-3 path).
  util::Rng rng(2024);
  int feasible_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    util::Matrix<int> values(3, 3, 0);
    for (std::size_t sch = 0; sch < 3; ++sch) {
      for (std::size_t sto = 0; sto < 3; ++sto) {
        values.at(sch, sto) = static_cast<int>(rng.uniform_below(4));
      }
    }
    const auto dm = csp::DistanceMatrix::custom(
        values, "random-" + std::to_string(trial));
    encode::EncoderOptions opt;
    opt.max_fefets_per_cell = 4;
    opt.max_vds_multiple = 2;
    const auto enc = encode::encode_distance_matrix(dm, opt);
    if (enc) {
      ++feasible_seen;
      EXPECT_TRUE(enc->realizes(dm)) << dm.name();
    }
  }
  EXPECT_GT(feasible_seen, 5);  // the family is not trivially infeasible
}

TEST(RandomDmProperty, Ac3AndBacktrackingAgreeOnFeasibility) {
  util::Rng rng(777);
  const std::vector<int> cr{1, 2};
  for (int trial = 0; trial < 30; ++trial) {
    util::Matrix<int> values(3, 3, 0);
    for (int& v : values.flat()) {
      v = static_cast<int>(rng.uniform_below(4));
    }
    const auto dm = csp::DistanceMatrix::custom(values, "agree");
    for (int k = 1; k <= 3; ++k) {
      csp::FeasibilityOptions with, without;
      without.use_ac3 = false;
      EXPECT_EQ(csp::detect_feasibility(dm, k, cr, with).feasible,
                csp::detect_feasibility(dm, k, cr, without).feasible)
          << "trial " << trial << " k=" << k;
    }
  }
}

// ------------------------------------------- decomposition algebra ---

TEST(DecomposeProperty, EveryTupleSumsToValueAndUsesAllowedCurrents) {
  util::Rng rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    const int k = 1 + static_cast<int>(rng.uniform_below(4));
    const int value = static_cast<int>(rng.uniform_below(7));
    std::vector<int> cr;
    for (int c = 1; c <= 3; ++c) {
      if (rng.bernoulli(0.7)) cr.push_back(c);
    }
    if (cr.empty()) cr.push_back(1);
    for (const auto& tuple : csp::decompose_value(k, value, cr)) {
      int sum = 0;
      for (int c : tuple) {
        sum += c;
        EXPECT_TRUE(c == 0 ||
                    std::find(cr.begin(), cr.end(), c) != cr.end());
      }
      EXPECT_EQ(sum, value);
    }
  }
}

TEST(DecomposeProperty, CountAgreesWithEnumerationOnRandomInstances) {
  util::Rng rng(6);
  for (int trial = 0; trial < 25; ++trial) {
    const int k = 1 + static_cast<int>(rng.uniform_below(4));
    const int value = static_cast<int>(rng.uniform_below(8));
    const std::vector<int> cr{1, static_cast<int>(2 + rng.uniform_below(3))};
    EXPECT_EQ(csp::count_decompositions(k, value, cr),
              csp::decompose_value(k, value, cr).size());
  }
}

// -------------------------------------------- engine end-to-end NN ---

TEST(EngineProperty, WinnerNeverBeatenBySoftwareScan) {
  // At exact fidelity the engine's winner must always achieve the global
  // software minimum distance — for random databases, queries, metrics
  // and both encoding paths.
  core::FerexOptions opt;
  opt.circuit.variation.enabled = false;
  opt.circuit.fet.ss_mv_per_dec = 15.0;
  opt.circuit.opamp.output_res_ohm = 0.0;
  opt.lta.offset_sigma_rel = 0.0;
  util::Rng rng(808);
  for (int round = 0; round < 6; ++round) {
    const auto metric =
        std::array{DistanceMetric::kHamming, DistanceMetric::kManhattan,
                   DistanceMetric::kEuclideanSquared}[round % 3];
    const bool composite = round >= 3;
    core::FerexEngine engine(opt);
    if (composite) {
      if (metric == DistanceMetric::kEuclideanSquared) continue;
      engine.configure_composite(metric, 3);
    } else {
      engine.configure(metric, 2);
    }
    const int levels = 1 << engine.bits();
    const std::size_t rows = 8, dims = 10;
    std::vector<std::vector<int>> db(rows, std::vector<int>(dims));
    for (auto& row : db) {
      for (auto& v : row) v = static_cast<int>(rng.uniform_below(levels));
    }
    engine.store(db);
    for (int q = 0; q < 10; ++q) {
      std::vector<int> query(dims);
      for (auto& v : query) v = static_cast<int>(rng.uniform_below(levels));
      const auto winner = engine.search(query).nearest;
      long long best = std::numeric_limits<long long>::max();
      for (const auto& row : db) {
        best = std::min(best, ml::vector_distance(metric, query, row));
      }
      EXPECT_EQ(ml::vector_distance(metric, query, db[winner]), best);
    }
  }
}

TEST(EngineProperty, SearchKPrefixStable) {
  // search_k(q, k) must be a prefix-consistent ranking: the first j
  // results of search_k(q, k) equal (by distance) search_k(q, j).
  core::FerexOptions opt;
  opt.circuit.variation.enabled = false;
  opt.lta.offset_sigma_rel = 0.0;
  core::FerexEngine engine(opt);
  engine.configure(DistanceMetric::kManhattan, 2);
  util::Rng rng(909);
  std::vector<std::vector<int>> db(12, std::vector<int>(8));
  for (auto& row : db) {
    for (auto& v : row) v = static_cast<int>(rng.uniform_below(4));
  }
  engine.store(db);
  std::vector<int> query(8);
  for (auto& v : query) v = static_cast<int>(rng.uniform_below(4));
  const auto top5 = engine.search_k(query, 5);
  for (std::size_t j = 1; j <= 5; ++j) {
    const auto topj = engine.search_k(query, j);
    for (std::size_t i = 0; i < j; ++i) {
      EXPECT_EQ(ml::vector_distance(DistanceMetric::kManhattan, query,
                                    db[topj[i]]),
                ml::vector_distance(DistanceMetric::kManhattan, query,
                                    db[top5[i]]));
    }
  }
}

// ----------------------------------------------- quantizer algebra ---

TEST(QuantizerProperty, MonotoneNonDecreasing) {
  util::Rng rng(10);
  std::vector<double> samples(5000);
  for (auto& v : samples) v = rng.gaussian(0.0, 2.0);
  const auto q = ml::Quantizer::fit(samples, 3);
  double prev_value = -10.0;
  int prev_level = 0;
  for (int i = 0; i < 200; ++i) {
    const double v = -10.0 + i * 0.1;
    const int level = q.quantize(v);
    EXPECT_GE(level, prev_level);
    EXPECT_GE(v, prev_value);
    prev_level = level;
    prev_value = v;
  }
}

TEST(QuantizerProperty, AllLevelsReachable) {
  util::Rng rng(11);
  for (int bits = 1; bits <= 4; ++bits) {
    std::vector<double> samples(4000);
    for (auto& v : samples) v = rng.uniform(-1.0, 1.0);
    const auto q = ml::Quantizer::fit(samples, bits);
    std::vector<bool> seen(static_cast<std::size_t>(q.levels()), false);
    for (double v : samples) seen[q.quantize(v)] = true;
    for (bool s : seen) EXPECT_TRUE(s) << "bits=" << bits;
  }
}

}  // namespace
}  // namespace ferex
