// Tests for the AmIndex serving layer: the unified request/response API
// must be bit-identical to the legacy FerexEngine / BankedAm entry
// points across metric x fidelity x k x single/batched, drivable from
// const contexts, and must validate requests before consuming ordinals.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "arch/banked_am.hpp"
#include "core/ferex.hpp"
#include "data/datasets.hpp"
#include "serve/banked_index.hpp"
#include "serve/engine_index.hpp"

namespace ferex::serve {
namespace {

using csp::DistanceMetric;
using core::SearchFidelity;

/// Request builder (aggregate init with omitted trailing members trips
/// -Wextra's missing-field-initializers under -Werror).
SearchRequest req(std::vector<int> query, std::size_t k = 1) {
  SearchRequest r;
  r.query = std::move(query);
  r.k = k;
  return r;
}

SearchRequest req_at(std::vector<int> query, std::uint64_t ordinal) {
  SearchRequest r;
  r.query = std::move(query);
  r.ordinal = ordinal;
  return r;
}

void expect_hit_matches(const Hit& hit, const core::SearchResult& r) {
  EXPECT_EQ(hit.global_row, r.nearest);
  EXPECT_EQ(hit.bank, 0u);
  EXPECT_EQ(hit.sensed_current_a, r.winner_current_a);  // bit-exact
  EXPECT_EQ(hit.margin_a, r.margin_a);
  EXPECT_EQ(hit.nominal_distance, r.nominal_distance);
}

void expect_hit_matches(const Hit& hit, const arch::BankedSearchResult& r) {
  EXPECT_EQ(hit.global_row, r.nearest);
  EXPECT_EQ(hit.bank, r.bank);
  EXPECT_EQ(hit.sensed_current_a, r.winner_current_a);
  EXPECT_EQ(hit.margin_a, r.margin_a);
  EXPECT_EQ(hit.nominal_distance, r.nominal_distance);
}

class ServeParityT
    : public ::testing::TestWithParam<std::tuple<DistanceMetric,
                                                 SearchFidelity>> {};

TEST_P(ServeParityT, EngineIndexSearchMatchesLegacyBitExactly) {
  const auto [metric, fidelity] = GetParam();
  core::FerexOptions opt;
  opt.fidelity = fidelity;
  const auto db = data::random_int_vectors(24, 8, 4, 21);
  const auto queries = data::random_int_vectors(12, 8, 4, 22);

  core::FerexEngine legacy(opt);
  legacy.configure(metric, 2);
  legacy.store(db);
  EngineIndex index(opt);
  index.configure(metric, 2);
  index.store(db);

  // The same request sequence consumes the same ordinals, so every hit
  // is bit-identical to the legacy engine.
  for (const auto& q : queries) {
    const auto legacy_result = legacy.search(q);
    const auto response = index.search(req(q));
    ASSERT_EQ(response.hits.size(), 1u);
    expect_hit_matches(response.best(), legacy_result);
  }
  EXPECT_EQ(index.query_serial(), queries.size());
}

TEST_P(ServeParityT, EngineIndexTopKMatchesSearchK) {
  const auto [metric, fidelity] = GetParam();
  core::FerexOptions opt;
  opt.fidelity = fidelity;
  const auto db = data::random_int_vectors(24, 8, 4, 23);
  const auto queries = data::random_int_vectors(6, 8, 4, 24);

  core::FerexEngine legacy(opt);
  legacy.configure(metric, 2);
  legacy.store(db);
  EngineIndex index(opt);
  index.configure(metric, 2);
  index.store(db);

  for (const auto& q : queries) {
    const auto winners = legacy.search_k(q, 5);
    const auto response = index.search(req(q, 5));
    ASSERT_EQ(response.hits.size(), 5u);
    for (std::size_t i = 0; i < winners.size(); ++i) {
      EXPECT_EQ(response.hits[i].global_row, winners[i]);
    }
    // Hit detail is self-consistent: nominal distance of each hit
    // matches the engine's reference for that row.
    for (const auto& hit : response.hits) {
      EXPECT_EQ(hit.nominal_distance,
                index.engine().nominal_distance(q, hit.global_row));
    }
  }
}

TEST_P(ServeParityT, EngineIndexBatchMatchesLegacyBatch) {
  const auto [metric, fidelity] = GetParam();
  core::FerexOptions opt;
  opt.fidelity = fidelity;
  const auto db = data::random_int_vectors(24, 8, 4, 25);
  const auto queries = data::random_int_vectors(9, 8, 4, 26);

  core::FerexEngine legacy(opt);
  legacy.configure(metric, 2);
  legacy.store(db);
  EngineIndex index(opt);
  index.configure(metric, 2);
  index.store(db);

  const auto legacy_results = legacy.search_batch(queries);
  std::vector<SearchRequest> requests;
  for (const auto& q : queries) requests.push_back(req(q));
  const auto responses = index.search_batch(requests);
  ASSERT_EQ(responses.size(), legacy_results.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_EQ(responses[i].hits.size(), 1u);
    expect_hit_matches(responses[i].best(), legacy_results[i]);
  }
  EXPECT_EQ(index.query_serial(), queries.size());
}

TEST_P(ServeParityT, BankedIndexSearchMatchesLegacyBitExactly) {
  const auto [metric, fidelity] = GetParam();
  arch::BankedOptions opt;
  opt.bank_rows = 7;
  opt.engine.fidelity = fidelity;
  const auto db = data::random_int_vectors(25, 8, 4, 27);
  const auto queries = data::random_int_vectors(10, 8, 4, 28);

  arch::BankedAm legacy(opt);
  legacy.configure(metric, 2);
  legacy.store(db);
  BankedIndex index(opt);
  index.configure(metric, 2);
  index.store(db);
  EXPECT_EQ(index.bank_count(), 4u);

  for (const auto& q : queries) {
    const auto legacy_result = legacy.search(q);
    const auto response = index.search(req(q));
    ASSERT_EQ(response.hits.size(), 1u);
    expect_hit_matches(response.best(), legacy_result);
  }
}

TEST_P(ServeParityT, BankedIndexTopKMatchesSearchK) {
  const auto [metric, fidelity] = GetParam();
  arch::BankedOptions opt;
  opt.bank_rows = 6;
  opt.engine.fidelity = fidelity;
  const auto db = data::random_int_vectors(20, 8, 4, 29);
  const auto queries = data::random_int_vectors(6, 8, 4, 30);

  arch::BankedAm legacy(opt);
  legacy.configure(metric, 2);
  legacy.store(db);
  BankedIndex index(opt);
  index.configure(metric, 2);
  index.store(db);

  for (const auto& q : queries) {
    const auto winners = legacy.search_k(q, 7);
    const auto response = index.search(req(q, 7));
    ASSERT_EQ(response.hits.size(), 7u);
    for (std::size_t i = 0; i < winners.size(); ++i) {
      EXPECT_EQ(response.hits[i].global_row, winners[i]);
      // The bank coordinate points at the bank that owns the row.
      EXPECT_EQ(response.hits[i].bank, winners[i] / opt.bank_rows);
    }
  }
}

TEST_P(ServeParityT, BankedIndexBatchMatchesLegacyBatch) {
  const auto [metric, fidelity] = GetParam();
  arch::BankedOptions opt;
  opt.bank_rows = 9;
  opt.engine.fidelity = fidelity;
  const auto db = data::random_int_vectors(22, 8, 4, 31);
  const auto queries = data::random_int_vectors(8, 8, 4, 32);

  arch::BankedAm legacy(opt);
  legacy.configure(metric, 2);
  legacy.store(db);
  BankedIndex index(opt);
  index.configure(metric, 2);
  index.store(db);

  const auto legacy_results = legacy.search_batch(queries);
  std::vector<SearchRequest> requests;
  for (const auto& q : queries) requests.push_back(req(q));
  const auto responses = index.search_batch(requests);
  ASSERT_EQ(responses.size(), legacy_results.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_EQ(responses[i].hits.size(), 1u);
    expect_hit_matches(responses[i].best(), legacy_results[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndFidelities, ServeParityT,
    ::testing::Combine(::testing::Values(DistanceMetric::kHamming,
                                         DistanceMetric::kManhattan),
                       ::testing::Values(SearchFidelity::kCircuit,
                                         SearchFidelity::kNominal)));

TEST(ServeT, ConstIndexServesOrdinalAddressedRequests) {
  core::FerexOptions opt;
  const auto db = data::random_int_vectors(16, 6, 4, 33);
  const auto q = data::random_int_vectors(1, 6, 4, 34).front();

  EngineIndex index(opt);
  index.configure(DistanceMetric::kHamming, 2);
  index.store(db);

  // Driving through a const AmIndex& — the whole point of the const
  // ordinal-addressed core.
  const AmIndex& const_index = index;
  const auto a = const_index.search_at(req(q, 3), 5);
  const auto b = const_index.search_at(req(q, 3), 5);
  ASSERT_EQ(a.hits.size(), 3u);
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].global_row, b.hits[i].global_row);
    EXPECT_EQ(a.hits[i].sensed_current_a, b.hits[i].sensed_current_a);
  }
  // search_at consumes nothing.
  EXPECT_EQ(index.query_serial(), 0u);

  // A pinned request ordinal replays the same noise stream as the
  // mutable path at that ordinal, and does not advance the serial.
  const auto mutable_result = index.search(req(q));  // ordinal 0
  const auto replay = index.search(req_at(q, 0));
  EXPECT_EQ(replay.best().global_row, mutable_result.best().global_row);
  EXPECT_EQ(replay.best().sensed_current_a,
            mutable_result.best().sensed_current_a);
  EXPECT_EQ(index.query_serial(), 1u);
}

TEST(ServeT, LegacyEngineShimAndServeCoreInterleave) {
  // The legacy entry points are shims over the same const cores, so an
  // engine and an index driven with the same ordinal schedule agree even
  // when calls interleave search and search_k.
  core::FerexOptions opt;
  const auto db = data::random_int_vectors(16, 6, 4, 35);
  const auto queries = data::random_int_vectors(6, 6, 4, 36);

  core::FerexEngine legacy(opt);
  legacy.configure(DistanceMetric::kHamming, 2);
  legacy.store(db);
  EngineIndex index(opt);
  index.configure(DistanceMetric::kHamming, 2);
  index.store(db);

  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (i % 2 == 0) {
      const auto r = legacy.search(queries[i]);
      expect_hit_matches(index.search(req(queries[i])).best(), r);
    } else {
      const auto winners = legacy.search_k(queries[i], 4);
      const auto response = index.search(req(queries[i], 4));
      for (std::size_t j = 0; j < winners.size(); ++j) {
        EXPECT_EQ(response.hits[j].global_row, winners[j]);
      }
    }
  }
}

TEST(ServeT, PolymorphicBackendsShareOneSurface) {
  const auto db = data::random_int_vectors(18, 6, 4, 37);
  const auto q = data::random_int_vectors(1, 6, 4, 38).front();

  arch::BankedOptions banked_opt;
  banked_opt.bank_rows = 5;
  std::vector<std::unique_ptr<AmIndex>> indexes;
  indexes.push_back(std::make_unique<EngineIndex>());
  indexes.push_back(std::make_unique<BankedIndex>(banked_opt));

  for (auto& index : indexes) {
    index->configure(DistanceMetric::kHamming, 2);
    index->store(db);
    const auto response = index->search(req(q, 3));
    ASSERT_EQ(response.hits.size(), 3u);
    // Nearest-first ordering by nominal distance (no ties broken out of
    // order at either backend for this data).
    EXPECT_LE(response.hits[0].nominal_distance,
              response.hits[1].nominal_distance);
    EXPECT_LE(response.hits[1].nominal_distance,
              response.hits[2].nominal_distance);
    const auto receipt = index->insert(db.front());
    EXPECT_EQ(receipt.global_row, db.size());
    EXPECT_GT(receipt.cost.pulses, 0u);
    EXPECT_EQ(index->stored_count(), db.size() + 1);
    // The inserted duplicate of row 0 is immediately searchable.
    std::vector<int> exact(db.front());
    const auto after = index->search(req(exact));
    EXPECT_EQ(after.best().nominal_distance, 0);
  }
}

TEST(ServeT, BankedMarginIsGapBetweenTwoBestBankWinners) {
  arch::BankedOptions opt;
  opt.bank_rows = 5;
  // Deterministic settings so the margin arithmetic is exact.
  opt.engine.circuit.variation.enabled = false;
  opt.engine.lta.offset_sigma_rel = 0.0;
  const auto db = data::random_int_vectors(15, 6, 4, 39);
  const auto q = data::random_int_vectors(1, 6, 4, 40).front();

  BankedIndex index(opt);
  index.configure(DistanceMetric::kHamming, 2);
  index.store(db);

  const auto response = index.search_at(req(q), 0);
  // Reconstruct the per-bank winners through the legacy const core.
  std::vector<double> winner_currents;
  for (std::size_t start = 0; start < db.size(); start += opt.bank_rows) {
    core::FerexOptions engine_opt = opt.engine;
    engine_opt.seed = opt.engine.seed + 0x9e37 * (start + 1);
    engine_opt.intra_query_min_devices = 0;
    core::FerexEngine bank(engine_opt);
    bank.configure(DistanceMetric::kHamming, 2);
    bank.store({db.begin() + start,
                db.begin() + std::min(start + opt.bank_rows, db.size())});
    winner_currents.push_back(bank.search_at(q, 0).winner_current_a);
  }
  std::sort(winner_currents.begin(), winner_currents.end());
  EXPECT_EQ(response.best().sensed_current_a, winner_currents[0]);
  EXPECT_EQ(response.best().margin_a,
            winner_currents[1] - winner_currents[0]);
}

TEST(ServeT, RejectsMalformedRequestsBeforeConsumingOrdinals) {
  const auto db = data::random_int_vectors(10, 6, 4, 41);
  EngineIndex index;
  index.configure(DistanceMetric::kHamming, 2);
  index.store(db);

  std::vector<int> good(6, 1);
  std::vector<int> short_q(5, 1);
  std::vector<int> bad_value(6, 1);
  bad_value[3] = 99;

  EXPECT_THROW(index.search(req(short_q)), std::invalid_argument);
  EXPECT_THROW(index.search(req(bad_value)), std::out_of_range);
  EXPECT_THROW(index.search(req(good, 0)), std::invalid_argument);
  EXPECT_THROW(index.search(req(good, 11)), std::invalid_argument);
  std::vector<SearchRequest> mixed;
  mixed.push_back(req(good));
  mixed.push_back(req(bad_value));
  EXPECT_THROW(index.search_batch(mixed), std::out_of_range);
  // None of the rejected requests consumed an ordinal...
  EXPECT_EQ(index.query_serial(), 0u);
  // ...so the next accepted search matches a fresh index's first one.
  EngineIndex fresh;
  fresh.configure(DistanceMetric::kHamming, 2);
  fresh.store(db);
  EXPECT_EQ(index.search(req(good)).best().sensed_current_a,
            fresh.search(req(good)).best().sensed_current_a);
}

TEST(ServeT, EmptyBatchIsANoOp) {
  EngineIndex index;
  index.configure(DistanceMetric::kHamming, 2);
  index.store(data::random_int_vectors(4, 4, 4, 42));
  EXPECT_TRUE(index.search_batch({}).empty());
  EXPECT_EQ(index.query_serial(), 0u);
}

TEST(ServeT, CompositeCodecServesThroughTheSameSurface) {
  core::FerexOptions opt;
  const auto db = data::random_int_vectors(12, 5, 16, 43);
  const auto queries = data::random_int_vectors(5, 5, 16, 44);

  core::FerexEngine legacy(opt);
  legacy.configure_composite(DistanceMetric::kHamming, 4);
  legacy.store(db);
  EngineIndex index(opt);
  index.configure_composite(DistanceMetric::kHamming, 4);
  index.store(db);

  for (const auto& q : queries) {
    expect_hit_matches(index.search(req(q)).best(), legacy.search(q));
  }
}

}  // namespace
}  // namespace ferex::serve
