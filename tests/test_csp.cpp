// Unit tests for the CSP substrate: distance matrices, DM decomposition
// (constraint 1), row-pattern enumeration (constraint 2), pairwise
// compatibility (constraint 3), the generic AC-3/backtracking engine and
// Algorithm 1 end to end.
#include <gtest/gtest.h>

#include <algorithm>

#include "csp/binary_csp.hpp"
#include "csp/decompose.hpp"
#include "csp/distance_matrix.hpp"
#include "csp/feasibility.hpp"
#include "csp/row_pattern.hpp"

namespace ferex::csp {
namespace {

// ---------------------------------------------------------------- DM ---

TEST(DistanceMatrixT, TwoBitHammingMatchesFig4a) {
  const auto dm = DistanceMatrix::make(DistanceMetric::kHamming, 2);
  ASSERT_EQ(dm.search_count(), 4u);
  ASSERT_EQ(dm.stored_count(), 4u);
  // Fig. 4(a): distance between search '00' and store '11' is 2.
  EXPECT_EQ(dm.at(0b00, 0b11), 2);
  EXPECT_EQ(dm.at(0b01, 0b10), 2);
  EXPECT_EQ(dm.at(0b01, 0b00), 1);
  for (std::size_t v = 0; v < 4; ++v) EXPECT_EQ(dm.at(v, v), 0);
  EXPECT_EQ(dm.max_value(), 2);
}

TEST(DistanceMatrixT, ManhattanAndEuclidean) {
  const auto l1 = DistanceMatrix::make(DistanceMetric::kManhattan, 2);
  EXPECT_EQ(l1.at(0, 3), 3);
  EXPECT_EQ(l1.at(2, 1), 1);
  EXPECT_EQ(l1.max_value(), 3);
  const auto l2 = DistanceMatrix::make(DistanceMetric::kEuclideanSquared, 2);
  EXPECT_EQ(l2.at(0, 3), 9);
  EXPECT_EQ(l2.at(1, 3), 4);
  EXPECT_EQ(l2.max_value(), 9);
}

TEST(DistanceMatrixT, SymmetricForStandardMetrics) {
  for (auto metric : {DistanceMetric::kHamming, DistanceMetric::kManhattan,
                      DistanceMetric::kEuclideanSquared}) {
    const auto dm = DistanceMatrix::make(metric, 3);
    for (std::size_t a = 0; a < dm.search_count(); ++a) {
      for (std::size_t b = 0; b < dm.stored_count(); ++b) {
        EXPECT_EQ(dm.at(a, b), dm.at(b, a));
      }
    }
  }
}

TEST(DistanceMatrixT, RejectsBadArguments) {
  EXPECT_THROW(DistanceMatrix::make(DistanceMetric::kHamming, 0),
               std::invalid_argument);
  EXPECT_THROW(DistanceMatrix::make(DistanceMetric::kHamming, 9),
               std::invalid_argument);
  util::Matrix<int> bad(2, 2, 0);
  bad.at(0, 1) = -1;
  EXPECT_THROW(DistanceMatrix::custom(std::move(bad), "bad"),
               std::invalid_argument);
}

TEST(DistanceMatrixT, CustomMatrixAccepted) {
  util::Matrix<int> values(2, 3, 1);
  const auto dm = DistanceMatrix::custom(std::move(values), "custom");
  EXPECT_EQ(dm.search_count(), 2u);
  EXPECT_EQ(dm.stored_count(), 3u);
  EXPECT_EQ(dm.name(), "custom");
}

// ------------------------------------------------------- decompose ---

TEST(Decompose, EnumeratesFig4cExample) {
  // DM element '2' over 3 FeFETs with currents {1, 2}: six decompositions.
  const std::vector<int> cr{1, 2};
  const auto decs = decompose_value(3, 2, cr);
  EXPECT_EQ(decs.size(), 6u);
  for (const auto& d : decs) {
    int sum = 0;
    for (int c : d) sum += c;
    EXPECT_EQ(sum, 2);
  }
  EXPECT_NE(std::find(decs.begin(), decs.end(), CellCurrents({2, 0, 0})),
            decs.end());
  EXPECT_NE(std::find(decs.begin(), decs.end(), CellCurrents({1, 1, 0})),
            decs.end());
}

TEST(Decompose, ZeroValueHasSingleAllOffDecomposition) {
  const std::vector<int> cr{1, 2};
  const auto decs = decompose_value(3, 0, cr);
  ASSERT_EQ(decs.size(), 1u);
  EXPECT_EQ(decs.front(), CellCurrents({0, 0, 0}));
}

TEST(Decompose, InfeasibleValueYieldsEmpty) {
  const std::vector<int> cr{1};
  EXPECT_TRUE(decompose_value(2, 5, cr).empty());  // max reachable is 2
}

TEST(Decompose, CountMatchesEnumeration) {
  const std::vector<int> cr{1, 2, 3};
  for (int k = 1; k <= 4; ++k) {
    for (int v = 0; v <= 6; ++v) {
      EXPECT_EQ(count_decompositions(k, v, cr),
                decompose_value(k, v, cr).size())
          << "k=" << k << " v=" << v;
    }
  }
}

TEST(Decompose, RejectsBadArguments) {
  const std::vector<int> cr{1};
  EXPECT_THROW(decompose_value(0, 1, cr), std::invalid_argument);
  EXPECT_THROW(decompose_value(2, -1, cr), std::invalid_argument);
  const std::vector<int> bad{0};
  EXPECT_THROW(decompose_value(2, 1, bad), std::invalid_argument);
}

// ------------------------------------------------------ row pattern ---

TEST(RowPatternT, Constraint2AcceptsUniformOnCurrents) {
  RowPattern row;
  row.currents = {{1, 0}, {1, 2}, {0, 2}};
  EXPECT_TRUE(satisfies_constraint2(row));
  EXPECT_EQ(row.on_current(0), 1);
  EXPECT_EQ(row.on_current(1), 2);
}

TEST(RowPatternT, Constraint2RejectsMixedOnCurrents) {
  RowPattern row;
  row.currents = {{1, 0}, {2, 0}};  // FeFET 0 conducts 1 then 2: invalid
  EXPECT_FALSE(satisfies_constraint2(row));
}

TEST(RowPatternT, EnumerationRespectsConstraint2) {
  // Row of the 2-bit Hamming DM for search '00': targets 0,1,1,2.
  const std::vector<int> targets{0, 1, 1, 2};
  const std::vector<int> cr{1, 2};
  const auto patterns = enumerate_row_patterns(targets, 3, cr);
  ASSERT_FALSE(patterns.empty());
  for (const auto& p : patterns) {
    EXPECT_TRUE(satisfies_constraint2(p));
    for (std::size_t sto = 0; sto < targets.size(); ++sto) {
      int sum = 0;
      for (int c : p.currents[sto]) sum += c;
      EXPECT_EQ(sum, targets[sto]);
    }
  }
}

TEST(RowPatternT, EnumerationEmptyWhenImpossible) {
  const std::vector<int> targets{5};
  const std::vector<int> cr{1};
  EXPECT_TRUE(enumerate_row_patterns(targets, 2, cr).empty());
}

TEST(RowPatternT, CompatibilityDetectsFig4eConflict) {
  // Fig. 4(e): FeFET 2 is ON for Store00 / OFF for Store01 under Search11,
  // but OFF for Store00 / ON for Store01 under Search00 -> conflict.
  RowPattern search11, search00;
  search11.currents = {{0, 0, 1}, {0, 0, 0}};  // sto0: FET3 ON; sto1: OFF
  search00.currents = {{0, 0, 0}, {0, 0, 1}};  // sto0: OFF; sto1: FET3 ON
  EXPECT_FALSE(rows_compatible(search11, search00));
}

TEST(RowPatternT, CompatibilityAcceptsNestedOnSets) {
  RowPattern a, b;
  a.currents = {{1, 0}, {1, 0}, {0, 0}};  // FET0 ON-set {0,1}
  b.currents = {{2, 0}, {0, 0}, {0, 0}};  // FET0 ON-set {0} (subset) -> ok
  EXPECT_TRUE(rows_compatible(a, b));
  EXPECT_TRUE(rows_compatible(b, a));
}

// -------------------------------------------------------- BinaryCsp ---

TEST(BinaryCspT, SolvesTriangleColoring) {
  // 3 mutually adjacent nodes, 3 colors: solvable.
  BinaryCsp csp({3, 3, 3}, [](std::size_t, std::size_t va, std::size_t,
                              std::size_t vb) { return va != vb; });
  EXPECT_TRUE(csp.ac3());
  const auto sol = csp.solve();
  ASSERT_TRUE(sol.has_value());
  EXPECT_NE((*sol)[0], (*sol)[1]);
  EXPECT_NE((*sol)[1], (*sol)[2]);
  EXPECT_NE((*sol)[0], (*sol)[2]);
}

TEST(BinaryCspT, DetectsInfeasibleTriangleWithTwoColors) {
  BinaryCsp csp({2, 2, 2}, [](std::size_t, std::size_t va, std::size_t,
                              std::size_t vb) { return va != vb; });
  // AC-3 alone cannot wipe the domains here (every value has a support),
  // but the search must fail.
  csp.ac3();
  EXPECT_FALSE(csp.solve().has_value());
}

TEST(BinaryCspT, Ac3PrunesUnsupportedValues) {
  // Variable 0 in {0,1,2}; variable 1 in {2} only; constraint: equal.
  BinaryCsp csp({3, 1}, [](std::size_t a, std::size_t va, std::size_t,
                           std::size_t vb) {
    // Domain of var 1 has a single value index 0 meaning "2"; the
    // constraint requires var 0 to equal that value.
    return a == 0 ? va == 2 : vb == 2;
  });
  EXPECT_TRUE(csp.ac3());
  EXPECT_EQ(csp.domain(0).size(), 1u);
  EXPECT_EQ(csp.domain(0).front(), 2u);
  EXPECT_GT(csp.stats().ac3_removals, 0u);
}

TEST(BinaryCspT, SolveAllEnumeratesAndRespectsLimit) {
  // Two independent binary variables, no constraint: 4 solutions.
  BinaryCsp all({2, 2}, [](std::size_t, std::size_t, std::size_t,
                           std::size_t) { return true; });
  EXPECT_EQ(all.solve_all(0).size(), 4u);
  BinaryCsp limited({2, 2}, [](std::size_t, std::size_t, std::size_t,
                               std::size_t) { return true; });
  EXPECT_EQ(limited.solve_all(3).size(), 3u);
}

// ------------------------------------------------------ Algorithm 1 ---

TEST(Feasibility, TwoBitHammingNeedsThreeFeFets) {
  // The paper's headline CSP result: 2-bit Hamming is infeasible with 1-2
  // FeFETs per cell and feasible with a 3FeFET3R cell (Table II).
  const auto dm = DistanceMatrix::make(DistanceMetric::kHamming, 2);
  const std::vector<int> cr{1, 2};
  EXPECT_FALSE(detect_feasibility(dm, 1, cr).feasible);
  EXPECT_FALSE(detect_feasibility(dm, 2, cr).feasible);
  const auto r3 = detect_feasibility(dm, 3, cr);
  EXPECT_TRUE(r3.feasible);
  ASSERT_FALSE(r3.solutions.empty());
}

TEST(Feasibility, SolutionReproducesTargetMatrix) {
  const auto dm = DistanceMatrix::make(DistanceMetric::kHamming, 2);
  const std::vector<int> cr{1, 2};
  const auto result = detect_feasibility(dm, 3, cr);
  ASSERT_TRUE(result.feasible);
  const auto& sol = result.solution();
  for (std::size_t sch = 0; sch < dm.search_count(); ++sch) {
    for (std::size_t sto = 0; sto < dm.stored_count(); ++sto) {
      int sum = 0;
      for (int c : sol[sch].currents[sto]) sum += c;
      EXPECT_EQ(sum, dm.at(sch, sto));
    }
    EXPECT_TRUE(satisfies_constraint2(sol[sch]));
  }
  for (std::size_t a = 0; a < sol.size(); ++a) {
    for (std::size_t b = a + 1; b < sol.size(); ++b) {
      EXPECT_TRUE(rows_compatible(sol[a], sol[b]));
    }
  }
}

TEST(Feasibility, FeasibleRegionPatternsAllPairwiseSupported) {
  const auto dm = DistanceMatrix::make(DistanceMetric::kHamming, 2);
  const std::vector<int> cr{1, 2};
  const auto result = detect_feasibility(dm, 3, cr);
  ASSERT_TRUE(result.feasible);
  // Arc consistency: every surviving pattern has a support in every other
  // row's surviving domain.
  const auto& region = result.feasible_region;
  for (std::size_t a = 0; a < region.size(); ++a) {
    for (std::size_t b = 0; b < region.size(); ++b) {
      if (a == b) continue;
      for (const auto& pa : region[a]) {
        const bool supported =
            std::any_of(region[b].begin(), region[b].end(),
                        [&](const RowPattern& pb) {
                          return rows_compatible(pa, pb);
                        });
        EXPECT_TRUE(supported);
      }
    }
  }
}

TEST(Feasibility, BacktrackingOnlyAblationAgreesWithAc3) {
  const auto dm = DistanceMatrix::make(DistanceMetric::kManhattan, 1);
  const std::vector<int> cr{1, 2};
  FeasibilityOptions with_ac3, without_ac3;
  without_ac3.use_ac3 = false;
  for (int k = 1; k <= 3; ++k) {
    EXPECT_EQ(detect_feasibility(dm, k, cr, with_ac3).feasible,
              detect_feasibility(dm, k, cr, without_ac3).feasible)
        << "k=" << k;
  }
}

TEST(Feasibility, OneBitMetricsAreEasy) {
  const std::vector<int> cr{1, 2};
  for (auto metric : {DistanceMetric::kHamming, DistanceMetric::kManhattan,
                      DistanceMetric::kEuclideanSquared}) {
    const auto dm = DistanceMatrix::make(metric, 1);
    bool feasible = false;
    for (int k = 1; k <= 2 && !feasible; ++k) {
      feasible = detect_feasibility(dm, k, cr).feasible;
    }
    EXPECT_TRUE(feasible) << to_string(metric);
  }
}

TEST(Feasibility, SolutionLimitZeroEnumeratesAll) {
  const auto dm = DistanceMatrix::make(DistanceMetric::kHamming, 1);
  const std::vector<int> cr{1};
  FeasibilityOptions opt;
  opt.solution_limit = 0;
  const auto result = detect_feasibility(dm, 2, cr, opt);
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(result.solutions.size(), 1u);
}

}  // namespace
}  // namespace ferex::csp
