// Unit tests for the util substrate: RNG determinism and statistical
// sanity, statistics helpers, matrix container, table formatting.
#include <gtest/gtest.h>

#include <sstream>

#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ferex::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformBelowCoversRange) {
  Rng rng(9);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.uniform_below(10)];
  for (int count : seen) EXPECT_GT(count, 700);  // ~1000 expected each
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaled) {
  Rng rng(12);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.gaussian(5.0, 0.054));
  EXPECT_NEAR(stats.mean(), 5.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 0.054, 0.005);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(99);
  Rng child = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.29099, 1e-4);
}

TEST(Stats, EmptyRangesAreZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 1.0, 5.0, 9.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), mean(xs));
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(Stats, AccuracyCountsMatches) {
  const std::vector<int> pred{1, 2, 3, 4};
  const std::vector<int> truth{1, 0, 3, 0};
  EXPECT_DOUBLE_EQ(accuracy(pred, truth), 0.5);
}

TEST(Stats, WilsonWidthShrinksWithN) {
  EXPECT_GT(wilson_half_width(0.9, 10), wilson_half_width(0.9, 1000));
  EXPECT_DOUBLE_EQ(wilson_half_width(0.5, 0), 0.0);
}

TEST(MatrixT, StoresAndRetrieves) {
  Matrix<int> m(2, 3, 7);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(1, 2), 7);
  m.at(0, 1) = 42;
  EXPECT_EQ(m.at(0, 1), 42);
}

TEST(MatrixT, RowSpanViewsUnderlyingData) {
  Matrix<int> m(2, 2, 0);
  m.row(1)[0] = 5;
  EXPECT_EQ(m.at(1, 0), 5);
}

TEST(MatrixT, EqualityComparison) {
  Matrix<int> a(2, 2, 1), b(2, 2, 1);
  EXPECT_EQ(a, b);
  b.at(0, 0) = 2;
  EXPECT_NE(a, b);
}

TEST(Table, RendersHeaderAndRows) {
  TextTable t({"a", "bb"});
  t.add_row({"1", "2"});
  std::ostringstream oss;
  t.print(oss);
  const auto text = oss.str();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("bb"), std::string::npos);
  EXPECT_NE(text.find("1"), std::string::npos);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::sci(1234.0, 1), "1.2e+03");
}

}  // namespace
}  // namespace ferex::util
