// Tests for the persistent worker pool behind util::parallel_for.
//
// This binary forces FEREX_POOL_WIDTH=4 before main() so the pool
// spawns real workers even on single-core CI containers (pool_width
// caches the override at first use; this is the only test binary that
// sets it).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace ferex::util {
namespace {

const bool kEnvForced = [] {
  setenv("FEREX_POOL_WIDTH", "4", 1);
  return true;
}();

TEST(PersistentPoolT, WidthHonorsTheEnvironmentOverride) {
  ASSERT_TRUE(kEnvForced);
  EXPECT_EQ(pool_width(), 4u);
  EXPECT_EQ(worker_count(0), 1u);
  EXPECT_EQ(worker_count(2), 2u);
  EXPECT_EQ(worker_count(100), 4u);
}

TEST(PersistentPoolT, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> counts(1000);
  parallel_for(counts.size(), [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(PersistentPoolT, ReusesWorkersAcrossManyCalls) {
  // The pool spawns once; a few hundred fan-outs must all complete and
  // stay correct (per-call thread spawn would also make this test slow).
  for (int call = 0; call < 300; ++call) {
    std::atomic<std::size_t> sum{0};
    parallel_for(37, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 37u * 36u / 2u);
  }
}

TEST(PersistentPoolT, MultipleThreadsParticipate) {
  std::mutex mutex;
  std::set<std::thread::id> ids;
  std::atomic<int> arrived{0};
  parallel_for(64, [&](std::size_t) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      ids.insert(std::this_thread::get_id());
    }
    arrived.fetch_add(1);
    // Hold the slowest items briefly so workers get a chance to claim
    // some before the submitter drains everything.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
    while (arrived.load() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  });
  EXPECT_GE(ids.size(), 2u);
}

TEST(PersistentPoolT, ItemsRunInPoolContext) {
  EXPECT_FALSE(on_pool_worker());
  std::atomic<bool> all_in_pool{true};
  parallel_for(16, [&](std::size_t) {
    if (!on_pool_worker()) all_in_pool.store(false);
  });
  EXPECT_TRUE(all_in_pool.load());
  EXPECT_FALSE(on_pool_worker());
}

TEST(PersistentPoolT, NestedCallsRunInlineOnTheSameThread) {
  std::atomic<bool> nested_ok{true};
  std::atomic<int> nested_items{0};
  parallel_for(8, [&](std::size_t) {
    const auto outer_thread = std::this_thread::get_id();
    parallel_for(8, [&](std::size_t) {
      nested_items.fetch_add(1, std::memory_order_relaxed);
      if (std::this_thread::get_id() != outer_thread) {
        nested_ok.store(false);
      }
    });
  });
  EXPECT_TRUE(nested_ok.load());
  EXPECT_EQ(nested_items.load(), 64);
}

TEST(PersistentPoolT, FirstExceptionPropagatesAndPoolSurvives) {
  EXPECT_THROW(
      parallel_for(100,
                   [&](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool is not poisoned: later fan-outs still complete.
  std::atomic<int> done{0};
  parallel_for(50, [&](std::size_t) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 50);
}

TEST(PersistentPoolT, NestedExceptionPropagatesThroughTheOuterFanIn) {
  EXPECT_THROW(parallel_for(4,
                            [&](std::size_t) {
                              parallel_for(4, [&](std::size_t j) {
                                if (j == 2) {
                                  throw std::invalid_argument("inner");
                                }
                              });
                            }),
               std::invalid_argument);
}

TEST(AffinePoolT, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> counts(1000);
  parallel_for_affine(counts.size(), [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(AffinePoolT, RepeatedCallsStayCorrectAcrossLaneReuse) {
  // The affinity contract is about repeated fan-outs of the same item
  // set (a banked search firing its banks every query); hammer that
  // shape. Thread placement is best-effort, so only correctness is
  // asserted.
  for (int call = 0; call < 300; ++call) {
    std::atomic<std::size_t> sum{0};
    parallel_for_affine(7, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 7u * 6u / 2u);
  }
}

TEST(AffinePoolT, StealingCoversLanesOfBusyParticipants) {
  // More items than participants, with one item slow: the slow lane's
  // remaining items must still be claimed by the other participants.
  std::vector<std::atomic<int>> counts(64);
  parallel_for_affine(counts.size(), [&](std::size_t i) {
    if (i == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(AffinePoolT, FirstExceptionPropagatesAndPoolSurvives) {
  EXPECT_THROW(
      parallel_for_affine(100,
                          [&](std::size_t i) {
                            if (i == 13) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
  std::atomic<int> done{0};
  parallel_for_affine(50, [&](std::size_t) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 50);
}

TEST(AffinePoolT, NestedAffineCallsRunInline) {
  std::atomic<bool> nested_ok{true};
  std::atomic<int> nested_items{0};
  parallel_for_affine(4, [&](std::size_t) {
    const auto outer_thread = std::this_thread::get_id();
    parallel_for_affine(4, [&](std::size_t) {
      nested_items.fetch_add(1, std::memory_order_relaxed);
      if (std::this_thread::get_id() != outer_thread) {
        nested_ok.store(false);
      }
    });
  });
  EXPECT_TRUE(nested_ok.load());
  EXPECT_EQ(nested_items.load(), 16);
}

TEST(PersistentPoolT, ZeroAndSingleItemRunInline) {
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  parallel_for(1, [&](std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

}  // namespace
}  // namespace ferex::util
