// Tests for the streaming-insert write path: after N insert() calls,
// searches must be bit-identical to a fresh store() of the concatenated
// database — at both fidelities, across bank boundaries, and through
// the composite codec — and insert-then-reconfigure must re-encode
// inserted rows like stored ones.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "arch/banked_am.hpp"
#include "core/ferex.hpp"
#include "data/datasets.hpp"

namespace ferex::core {
namespace {

using csp::DistanceMetric;

void expect_identical(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.nearest, b.nearest);
  EXPECT_EQ(a.winner_current_a, b.winner_current_a);  // bit-exact
  EXPECT_EQ(a.margin_a, b.margin_a);
  EXPECT_EQ(a.nominal_distance, b.nominal_distance);
}

class InsertIdenticalT
    : public ::testing::TestWithParam<std::tuple<DistanceMetric,
                                                 SearchFidelity>> {};

TEST_P(InsertIdenticalT, InsertsMatchFreshStoreBitExactly) {
  const auto [metric, fidelity] = GetParam();
  FerexOptions opt;
  opt.fidelity = fidelity;
  const auto db = data::random_int_vectors(12, 7, 4, 51);
  const auto queries = data::random_int_vectors(10, 7, 4, 52);

  FerexEngine stored(opt);
  stored.configure(metric, 2);
  stored.store(db);

  FerexEngine streamed(opt);
  streamed.configure(metric, 2);
  for (const auto& row : db) streamed.insert(row);
  EXPECT_EQ(streamed.stored_count(), db.size());

  // Device-level identity: the appended rows drew the same variation
  // stream a fresh construction would have.
  ASSERT_NE(streamed.array(), nullptr);
  for (std::size_t r = 0; r < db.size(); ++r) {
    EXPECT_EQ(streamed.array()->device_vth(r, 3, 0),
              stored.array()->device_vth(r, 3, 0));
    EXPECT_EQ(streamed.array()->device_resistance(r, 3, 0),
              stored.array()->device_resistance(r, 3, 0));
  }
  // Search-level identity, including comparator noise streams.
  for (const auto& q : queries) {
    expect_identical(streamed.search(q), stored.search(q));
  }
}

TEST_P(InsertIdenticalT, StoreThenInsertTailMatchesFullStore) {
  const auto [metric, fidelity] = GetParam();
  FerexOptions opt;
  opt.fidelity = fidelity;
  const auto db = data::random_int_vectors(10, 6, 4, 53);
  const auto queries = data::random_int_vectors(8, 6, 4, 54);

  FerexEngine full(opt);
  full.configure(metric, 2);
  full.store(db);

  FerexEngine partial(opt);
  partial.configure(metric, 2);
  partial.store({db.begin(), db.begin() + 6});
  for (std::size_t r = 6; r < db.size(); ++r) partial.insert(db[r]);

  for (const auto& q : queries) {
    expect_identical(partial.search(q), full.search(q));
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndFidelities, InsertIdenticalT,
    ::testing::Combine(::testing::Values(DistanceMetric::kHamming,
                                         DistanceMetric::kManhattan),
                       ::testing::Values(SearchFidelity::kCircuit,
                                         SearchFidelity::kNominal)));

TEST(InsertT, CompositeCodecInsertsMatchFreshStore) {
  FerexOptions opt;
  const auto db = data::random_int_vectors(8, 5, 16, 55);
  const auto queries = data::random_int_vectors(6, 5, 16, 56);

  FerexEngine stored(opt);
  stored.configure_composite(DistanceMetric::kHamming, 4);
  stored.store(db);

  FerexEngine streamed(opt);
  streamed.configure_composite(DistanceMetric::kHamming, 4);
  for (const auto& row : db) streamed.insert(row);

  for (const auto& q : queries) {
    expect_identical(streamed.search(q), stored.search(q));
  }
}

TEST(InsertT, InsertThenReconfigureReencodesInsertedRows) {
  FerexEngine engine;
  engine.configure(DistanceMetric::kHamming, 2);
  const auto db = data::random_int_vectors(9, 6, 4, 57);
  for (const auto& row : db) engine.insert(row);

  engine.configure(DistanceMetric::kManhattan, 2);
  EXPECT_EQ(engine.stored_count(), db.size());
  const auto queries = data::random_int_vectors(6, 6, 4, 58);
  for (const auto& q : queries) {
    const auto result = engine.search(q);
    // The winner's reported distance is the Manhattan distance — the
    // inserted rows were re-encoded under the new metric.
    EXPECT_EQ(result.nominal_distance,
              engine.software_distance(q, result.nearest));
  }
}

TEST(InsertT, InsertChargesTheRowWriteCost) {
  FerexEngine engine;
  engine.configure(DistanceMetric::kHamming, 2);
  const auto db = data::random_int_vectors(7, 6, 4, 59);
  circuit::WriteCost streamed_total;
  for (const auto& row : db) {
    const auto cost = engine.insert(row).cost;
    EXPECT_GT(cost.pulses, 0u);
    EXPECT_GT(cost.energy_j, 0.0);
    EXPECT_GT(cost.latency_s, 0.0);
    streamed_total.pulses += cost.pulses;
    streamed_total.energy_j += cost.energy_j;
    streamed_total.latency_s += cost.latency_s;
  }
  // The sum of per-insert receipts is the whole-database program cost.
  const auto full = engine.program_cost();
  EXPECT_EQ(streamed_total.pulses, full.pulses);
  EXPECT_DOUBLE_EQ(streamed_total.energy_j, full.energy_j);
  EXPECT_DOUBLE_EQ(streamed_total.latency_s, full.latency_s);
}

TEST(InsertT, FailedFirstRowRebuildLeavesEngineEmpty) {
  FerexOptions opt;
  // A ladder base past the programmable window makes the array rebuild
  // throw (negative ladder pitch) after the vector itself validated.
  opt.ladder_base_v = 10.0;
  FerexEngine engine(opt);
  engine.configure(DistanceMetric::kHamming, 2);
  EXPECT_THROW(engine.insert(std::vector<int>(4, 1)), std::invalid_argument);
  // The phantom first row was rolled back...
  EXPECT_EQ(engine.stored_count(), 0u);
  // ...so a retry takes the rebuild path again (not a null-array append).
  EXPECT_THROW(engine.insert(std::vector<int>(4, 1)), std::invalid_argument);
  EXPECT_EQ(engine.stored_count(), 0u);
}

TEST(InsertT, RejectsWithoutMutating) {
  FerexEngine engine;
  EXPECT_THROW(engine.insert(std::vector<int>{1, 2}), std::logic_error);
  engine.configure(DistanceMetric::kHamming, 2);
  EXPECT_THROW(engine.insert(std::vector<int>{}), std::invalid_argument);

  const auto db = data::random_int_vectors(5, 6, 4, 60);
  for (const auto& row : db) engine.insert(row);

  EXPECT_THROW(engine.insert(std::vector<int>(5, 1)), std::invalid_argument);
  EXPECT_THROW(engine.insert(std::vector<int>(6, 99)), std::out_of_range);
  EXPECT_EQ(engine.stored_count(), db.size());

  // The failed inserts left the engine bit-identical to an untouched one.
  FerexEngine fresh;
  fresh.configure(DistanceMetric::kHamming, 2);
  fresh.store(db);
  const auto q = data::random_int_vectors(1, 6, 4, 61).front();
  expect_identical(engine.search(q), fresh.search(q));
}

}  // namespace
}  // namespace ferex::core

namespace ferex::arch {
namespace {

using csp::DistanceMetric;
using core::SearchFidelity;

void expect_identical(const BankedSearchResult& a,
                      const BankedSearchResult& b) {
  EXPECT_EQ(a.nearest, b.nearest);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.winner_current_a, b.winner_current_a);
  EXPECT_EQ(a.margin_a, b.margin_a);
  EXPECT_EQ(a.nominal_distance, b.nominal_distance);
}

class BankedInsertT : public ::testing::TestWithParam<SearchFidelity> {};

TEST_P(BankedInsertT, InsertsAcrossBankBoundariesMatchFreshStore) {
  BankedOptions opt;
  opt.bank_rows = 4;
  opt.engine.fidelity = GetParam();
  const auto db = data::random_int_vectors(11, 6, 4, 62);  // 4 + 4 + 3
  const auto queries = data::random_int_vectors(8, 6, 4, 63);

  BankedAm stored(opt);
  stored.configure(DistanceMetric::kHamming, 2);
  stored.store(db);

  BankedAm streamed(opt);
  streamed.configure(DistanceMetric::kHamming, 2);
  for (std::size_t r = 0; r < db.size(); ++r) {
    const auto receipt = streamed.insert(db[r]);
    EXPECT_EQ(receipt.global_row, r);
    EXPECT_EQ(receipt.bank, r / opt.bank_rows);  // banks grown on demand
    EXPECT_GT(receipt.cost.pulses, 0u);
  }
  EXPECT_EQ(streamed.bank_count(), stored.bank_count());
  EXPECT_EQ(streamed.stored_count(), stored.stored_count());
  EXPECT_EQ(streamed.dims(), 6u);

  for (const auto& q : queries) {
    expect_identical(streamed.search(q), stored.search(q));
  }
  // k-NN crosses bank boundaries identically too.
  const auto all_stored = stored.search_k(queries.front(), db.size());
  const auto all_streamed = streamed.search_k(queries.front(), db.size());
  EXPECT_EQ(all_stored, all_streamed);
}

INSTANTIATE_TEST_SUITE_P(Fidelities, BankedInsertT,
                         ::testing::Values(SearchFidelity::kCircuit,
                                           SearchFidelity::kNominal));

TEST(BankedInsertErrorsT, RejectsWithoutMutating) {
  BankedAm am;
  EXPECT_THROW(am.insert(std::vector<int>{1}), std::logic_error);
  am.configure(DistanceMetric::kHamming, 2);
  const auto db = data::random_int_vectors(3, 6, 4, 64);
  for (const auto& row : db) am.insert(row);
  EXPECT_THROW(am.insert(std::vector<int>(4, 1)), std::invalid_argument);
  EXPECT_THROW(am.insert(std::vector<int>(6, 99)), std::out_of_range);
  EXPECT_EQ(am.stored_count(), db.size());
  EXPECT_EQ(am.bank_count(), 1u);
}

TEST(BankedInsertErrorsT, WrongLengthAtBankBoundaryDoesNotGrowABank) {
  BankedOptions opt;
  opt.bank_rows = 2;
  BankedAm am(opt);
  am.configure(DistanceMetric::kHamming, 2);
  const auto db = data::random_int_vectors(2, 6, 4, 65);
  for (const auto& row : db) am.insert(row);
  // The next insert must open a new bank; a malformed vector must not.
  EXPECT_THROW(am.insert(std::vector<int>(7, 1)), std::invalid_argument);
  EXPECT_EQ(am.bank_count(), 1u);
  EXPECT_EQ(am.stored_count(), 2u);
  const auto receipt = am.insert(std::vector<int>(6, 1));
  EXPECT_EQ(receipt.bank, 1u);
  EXPECT_EQ(am.bank_count(), 2u);
}

}  // namespace
}  // namespace ferex::arch
