// Tests for the v2 admission control: deadline shedding at submit (the
// queue-wait estimate) and at dispatch (the measured wait), class
// priorities (search placement ahead of queued writes, bounded by
// max_writes_ahead), per-class queue shares, per-class ServeStats, the
// RejectedRequest taxonomy — and the contract that traffic with no
// deadline and FIFO placement is bit-identical to the synchronous path.
//
// Deterministic shedding uses a gated stub backend (the test decides
// when the dispatcher is busy and how deep the queue is) that logs the
// order of backend calls, so priority placement is observable. Parity
// and stats suites run against the real backends.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "data/datasets.hpp"
#include "serve/async_index.hpp"
#include "serve/banked_index.hpp"
#include "serve/engine_index.hpp"

namespace ferex::serve {
namespace {

using csp::DistanceMetric;
using core::SearchFidelity;

SearchRequest req(std::vector<int> query, std::size_t k = 1) {
  SearchRequest r;
  r.query = std::move(query);
  r.k = k;
  return r;
}

SearchRequest deadline_req(std::vector<int> query, std::uint64_t deadline_us,
                           SubmitOptions::Priority priority =
                               SubmitOptions::Priority::kClassDefault) {
  SearchRequest r;
  r.query = std::move(query);
  r.submit.deadline_us = deadline_us;
  r.submit.priority = priority;
  return r;
}

void expect_bit_identical(const SearchResponse& a, const SearchResponse& b) {
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].global_row, b.hits[i].global_row);
    EXPECT_EQ(a.hits[i].bank, b.hits[i].bank);
    EXPECT_EQ(a.hits[i].sensed_current_a, b.hits[i].sensed_current_a);
    EXPECT_EQ(a.hits[i].margin_a, b.hits[i].margin_a);
    EXPECT_EQ(a.hits[i].nominal_distance, b.hits[i].nominal_distance);
  }
}

// ------------------------------------------------------------ fixture --

/// Gated stub backend with an operation log. Searches block while the
/// gate is closed (announcing themselves first); every backend call —
/// search or update — appends to the log, so tests can assert the exact
/// service order that admission placement produced. Log entries:
/// searches append -(ordinal + 1), updates append their row.
class GatedIndex final : public AmIndex {
 public:
  std::size_t stored_count() const noexcept override { return 8; }
  std::size_t live_count() const noexcept override { return 8; }
  std::size_t dims() const noexcept override { return 2; }
  std::size_t bank_count() const noexcept override { return 1; }

  void close_gate() {
    std::lock_guard<std::mutex> lock(mutex_);
    gate_open_ = false;
  }

  void open_gate() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      gate_open_ = true;
    }
    gate_.notify_all();
  }

  /// Blocks until `count` search_core calls have announced themselves
  /// (entered the backend) since construction.
  void wait_entered(std::size_t count) {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [&] { return entered_ >= count; });
  }

  std::vector<long> log() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return log_;
  }

 protected:
  void do_configure(csp::DistanceMetric, int) override {}
  void do_store(const std::vector<std::vector<int>>&) override {}
  WriteReceipt do_insert(std::span<const int>) override { return {}; }
  WriteReceipt do_remove(std::size_t row) override {
    WriteReceipt receipt;
    receipt.global_row = row;
    return receipt;
  }
  WriteReceipt do_update(std::size_t row, std::span<const int>) override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      log_.push_back(static_cast<long>(row));
    }
    WriteReceipt receipt;
    receipt.global_row = row;
    return receipt;
  }
  SearchResponse search_core(std::span<const int>, std::size_t k,
                             std::uint64_t ordinal, bool) const override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++entered_;
      log_.push_back(-static_cast<long>(ordinal) - 1);
      entered_cv_.notify_all();
      gate_.wait(lock, [&] { return gate_open_; });
    }
    SearchResponse response;
    response.hits.resize(k);
    response.hits.front().sensed_current_a = static_cast<double>(ordinal);
    return response;
  }

  void validate_backend_query(std::span<const int> query) const override {
    if (query.size() != dims()) {
      throw std::invalid_argument("GatedIndex: query.size() != dims");
    }
  }

  bool inner_fan_for_batch(std::size_t) const override { return false; }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable gate_;
  mutable std::condition_variable entered_cv_;
  mutable std::size_t entered_ = 0;
  mutable std::vector<long> log_;
  bool gate_open_ = true;
};

AsyncOptions immediate_options(std::size_t queue_depth,
                               std::size_t max_batch = 8) {
  AsyncOptions options;
  options.queue_depth = queue_depth;
  options.max_batch = max_batch;
  options.max_wait_us = 0;  // no linger: dispatch whatever is queued
  return options;
}

// ----------------------------------------------------------- taxonomy --

TEST(RejectTaxonomyT, EveryRejectionDerivesFromRejectedRequestWithReason) {
  EXPECT_EQ(Overloaded("x").reason(), RejectReason::kOverloaded);
  EXPECT_EQ(ShutDown("x").reason(), RejectReason::kShutDown);
  EXPECT_EQ(EmptyIndex("x").reason(), RejectReason::kEmptyIndex);
  EXPECT_EQ(MutationWhileServed("x").reason(),
            RejectReason::kMutationWhileServed);
  EXPECT_EQ(DeadlineExceeded("x").reason(), RejectReason::kDeadlineExceeded);
  EXPECT_STREQ(to_string(RejectReason::kOverloaded), "overloaded");
  EXPECT_STREQ(to_string(RejectReason::kShutDown), "shut_down");
  EXPECT_STREQ(to_string(RejectReason::kEmptyIndex), "empty_index");
  EXPECT_STREQ(to_string(RejectReason::kMutationWhileServed),
               "mutation_while_served");
  EXPECT_STREQ(to_string(RejectReason::kDeadlineExceeded),
               "deadline_exceeded");
  // One catch sheds on any reason — the load-generator contract.
  try {
    throw DeadlineExceeded("budget gone");
  } catch (const RejectedRequest& rejection) {
    EXPECT_EQ(rejection.reason(), RejectReason::kDeadlineExceeded);
    EXPECT_STREQ(rejection.what(), "budget gone");
  }
  // Rejections are runtime errors (the request failed), never logic
  // errors (the program is wrong) — EmptyIndex moved bases in v2.
  EXPECT_TRUE((std::is_base_of_v<std::runtime_error, RejectedRequest>));
}

TEST(RejectTaxonomyT, FrontDoorsThrowThroughTheCommonBase) {
  serve::EngineIndex index;
  index.configure(DistanceMetric::kHamming, 2);
  const std::vector<int> q(4, 0);
  try {
    (void)index.search(req(q));
    FAIL() << "empty index must reject";
  } catch (const RejectedRequest& rejection) {
    EXPECT_EQ(rejection.reason(), RejectReason::kEmptyIndex);
  }
  index.store(data::random_int_vectors(2, 4, 4, 950));
  {
    AsyncAmIndex async_index(index);
    try {
      index.insert(std::vector<int>(4, 1));
      FAIL() << "synchronous mutation while served must reject";
    } catch (const RejectedRequest& rejection) {
      EXPECT_EQ(rejection.reason(), RejectReason::kMutationWhileServed);
    }
    async_index.shutdown();
    try {
      (void)async_index.submit(req(q));
      FAIL() << "submit after shutdown must reject";
    } catch (const RejectedRequest& rejection) {
      EXPECT_EQ(rejection.reason(), RejectReason::kShutDown);
    }
  }
}

// ----------------------------------------------------- deadline sheds --

TEST(AdmissionDeadlineT, SubmitShedsWhenTheQueueWaitEstimateIsHopeless) {
  GatedIndex backend;
  backend.close_gate();
  auto options = immediate_options(/*queue_depth=*/16, /*max_batch=*/1);
  // Fixed per-op cost makes the estimate deterministic: four queued
  // searches x 1000 us each = 4 ms ahead of the new arrival.
  options.admission.assumed_service_us = 1000;
  AsyncAmIndex async_index(backend, options);

  auto blocked = async_index.submit(req({0, 1}));
  backend.wait_entered(1);  // dispatcher occupied; queue now empty
  std::vector<std::future<SearchResponse>> queued;
  for (int i = 0; i < 4; ++i) queued.push_back(async_index.submit(req({0, 1})));

  // 4 ms estimated wait against a 1 us budget: shed at submit, before
  // an ordinal is consumed.
  EXPECT_THROW((void)async_index.submit(deadline_req({0, 1}, 1)),
               DeadlineExceeded);
  EXPECT_EQ(async_index.query_serial(), 5u);

  // A generous budget clears the same estimate and is admitted.
  auto admitted = async_index.submit(deadline_req({0, 1}, 1000000));

  backend.open_gate();
  EXPECT_EQ(blocked.get().hits.front().sensed_current_a, 0.0);
  for (auto& future : queued) (void)future.get();
  EXPECT_EQ(admitted.get().hits.front().sensed_current_a, 5.0);

  const auto stats = async_index.stats();
  EXPECT_EQ(stats.shed_submit, 1u);
  EXPECT_EQ(stats.shed_dispatch, 0u);
  EXPECT_EQ(stats.search.shed_deadline, 1u);
  EXPECT_EQ(stats.search.submitted, 6u);  // the shed request never counted
  EXPECT_EQ(stats.search.served, 6u);
}

TEST(AdmissionDeadlineT, DispatchShedsARequestThatExpiredInTheQueue) {
  GatedIndex backend;
  backend.close_gate();
  auto options = immediate_options(/*queue_depth=*/8, /*max_batch=*/1);
  // Dispatch-only shedding: submit admits on any estimate, so the
  // expiry is decided by the measured queue wait alone.
  options.admission.shed = AdmissionPolicy::ShedPolicy::kDispatchOnly;
  AsyncAmIndex async_index(backend, options);

  auto blocked = async_index.submit(req({0, 1}));
  backend.wait_entered(1);
  auto doomed = async_index.submit(deadline_req({0, 1}, 2000));
  auto patient = async_index.submit(req({0, 1}));

  // Let the 2 ms budget expire while the dispatcher is held in the
  // gate, then release it.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  backend.open_gate();

  EXPECT_EQ(blocked.get().hits.front().sensed_current_a, 0.0);
  EXPECT_THROW((void)doomed.get(), DeadlineExceeded);
  EXPECT_EQ(patient.get().hits.front().sensed_current_a, 2.0);

  const auto stats = async_index.stats();
  EXPECT_EQ(stats.shed_submit, 0u);
  EXPECT_EQ(stats.shed_dispatch, 1u);
  EXPECT_EQ(stats.search.shed_deadline, 1u);
  EXPECT_EQ(stats.search.submitted, 3u);  // admitted, then shed
  EXPECT_EQ(stats.search.served, 2u);     // sheds are not "served"
  // The shed request never reached the backend: its log holds exactly
  // the two served searches (ordinals 0 and 2).
  const auto log = backend.log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], -1);  // ordinal 0
  EXPECT_EQ(log[1], -3);  // ordinal 2
}

// ---------------------------------------------------------- priority --

TEST(AdmissionPriorityT, UrgentSearchOvertakesEveryQueuedWrite) {
  GatedIndex backend;
  backend.close_gate();
  AsyncAmIndex async_index(backend,
                           immediate_options(/*queue_depth=*/16,
                                             /*max_batch=*/1));
  auto blocked = async_index.submit(req({0, 1}));
  backend.wait_entered(1);
  std::vector<std::future<WriteReceipt>> writes;
  for (std::size_t row = 0; row < 4; ++row) {
    writes.push_back(async_index.submit_update(row, {7, 7}));
  }
  // kUrgent under a FIFO policy with no write budget: placed ahead of
  // all four queued writes.
  auto urgent = async_index.submit(
      deadline_req({0, 1}, 0, SubmitOptions::Priority::kUrgent));
  backend.open_gate();
  EXPECT_EQ(urgent.get().hits.front().sensed_current_a, 1.0);
  for (auto& write : writes) (void)write.get();
  (void)blocked.get();

  const std::vector<long> expected = {-1, -2, 0, 1, 2, 3};
  EXPECT_EQ(backend.log(), expected);
}

TEST(AdmissionPriorityT, SearchFirstPolicyHonorsTheWritesAheadBudget) {
  GatedIndex backend;
  backend.close_gate();
  auto options = immediate_options(/*queue_depth=*/16, /*max_batch=*/1);
  options.admission.order = AdmissionPolicy::ClassOrder::kSearchFirst;
  options.admission.max_writes_ahead = 2;
  AsyncAmIndex async_index(backend, options);

  auto blocked = async_index.submit(req({0, 1}));
  backend.wait_entered(1);
  std::vector<std::future<WriteReceipt>> writes;
  for (std::size_t row = 0; row < 4; ++row) {
    writes.push_back(async_index.submit_update(row, {7, 7}));
  }
  // Class-default search under kSearchFirst: it may be overtaken by at
  // most max_writes_ahead = 2 of the queued writes.
  auto search = async_index.submit(req({0, 1}));
  backend.open_gate();
  (void)blocked.get();
  (void)search.get();
  for (auto& write : writes) (void)write.get();

  const std::vector<long> expected = {-1, 0, 1, -2, 2, 3};
  EXPECT_EQ(backend.log(), expected);

  // An explicit per-request kFifo opts back out of the policy: it
  // queues behind writes submitted before it.
  backend.close_gate();
  auto blocked2 = async_index.submit(req({0, 1}));
  backend.wait_entered(3);  // searches entered so far: -1, -2, blocked2
  auto write = async_index.submit_update(5, {7, 7});
  auto fifo = async_index.submit(
      deadline_req({0, 1}, 0, SubmitOptions::Priority::kFifo));
  backend.open_gate();
  (void)blocked2.get();
  (void)write.get();
  (void)fifo.get();
  const auto log = backend.log();
  ASSERT_EQ(log.size(), 9u);
  EXPECT_EQ(log[7], 5);   // the write dispatched first...
  EXPECT_EQ(log[8], -4);  // ...then the kFifo search (ordinal 3)
}

// -------------------------------------------------------- class share --

TEST(AdmissionShareT, PerClassQueueSharesRejectIndependently) {
  GatedIndex backend;
  backend.close_gate();
  auto options = immediate_options(/*queue_depth=*/16, /*max_batch=*/1);
  options.admission.max_queued_searches = 1;
  options.admission.max_queued_writes = 1;
  AsyncAmIndex async_index(backend, options);

  auto blocked = async_index.submit(req({0, 1}));
  backend.wait_entered(1);  // popped: occupies the dispatcher, not the queue
  auto queued_search = async_index.submit(req({0, 1}));
  // Search class at its share; the queue itself has 14 free slots.
  EXPECT_THROW((void)async_index.submit(req({0, 1})), Overloaded);
  // The write class still has its own share.
  auto queued_write = async_index.submit_update(0, {7, 7});
  EXPECT_THROW((void)async_index.submit_update(1, {7, 7}), Overloaded);

  backend.open_gate();
  (void)blocked.get();
  (void)queued_search.get();
  (void)queued_write.get();
  const auto stats = async_index.stats();
  EXPECT_EQ(stats.search.rejected_overload, 1u);
  EXPECT_EQ(stats.write.rejected_overload, 1u);
  EXPECT_EQ(stats.search.served, 2u);
  EXPECT_EQ(stats.write.served, 1u);
}

// -------------------------------------------------------------- stats --

TEST(AdmissionStatsT, PerClassCountersAndReservoirsTrackEachClass) {
  serve::EngineIndex index;
  index.configure(DistanceMetric::kHamming, 2);
  const auto db = data::random_int_vectors(8, 4, 4, 951);
  index.store(db);
  const auto queries = data::random_int_vectors(6, 4, 4, 952);
  const auto fresh = data::random_int_vectors(2, 4, 4, 953);

  AsyncAmIndex async_index(index);
  std::vector<std::future<SearchResponse>> searches;
  std::vector<std::future<WriteReceipt>> writes;
  for (const auto& q : queries) searches.push_back(async_index.submit(req(q)));
  writes.push_back(async_index.submit_update(0, fresh[0]));
  writes.push_back(async_index.submit_insert(fresh[1]));
  for (auto& future : searches) (void)future.get();
  for (auto& future : writes) (void)future.get();

  const auto stats = async_index.stats();
  EXPECT_EQ(stats.search.submitted, queries.size());
  EXPECT_EQ(stats.search.served, queries.size());
  EXPECT_EQ(stats.search.queue_wait_us.count, queries.size());
  EXPECT_EQ(stats.search.end_to_end_us.count, queries.size());
  EXPECT_EQ(stats.search.shed_deadline, 0u);
  EXPECT_EQ(stats.write.submitted, 2u);
  EXPECT_EQ(stats.write.served, 2u);
  EXPECT_EQ(stats.write.queue_wait_us.count, 2u);
  EXPECT_EQ(stats.write.end_to_end_us.count, 2u);
  EXPECT_EQ(stats.write.rejected_overload, 0u);
  EXPECT_GE(stats.write.end_to_end_us.p50_us,
            stats.write.queue_wait_us.p50_us);
}

// -------------------------------------------------------------- parity --

enum class Backend { kEngine, kBanked };

class AdmissionParityT
    : public ::testing::TestWithParam<std::tuple<Backend, SearchFidelity>> {
 protected:
  static std::unique_ptr<AmIndex> make_index(
      Backend backend, SearchFidelity fidelity,
      const std::vector<std::vector<int>>& db) {
    std::unique_ptr<AmIndex> index;
    if (backend == Backend::kEngine) {
      core::FerexOptions opt;
      opt.fidelity = fidelity;
      index = std::make_unique<EngineIndex>(opt);
    } else {
      arch::BankedOptions opt;
      opt.bank_rows = 3;
      opt.engine.fidelity = fidelity;
      index = std::make_unique<BankedIndex>(opt);
    }
    index->configure(DistanceMetric::kHamming, 2);
    index->store(db);
    return index;
  }
};

TEST_P(AdmissionParityT, NoDeadlineFifoTrafficBitIdenticalToSync) {
  // The v2 contract: with no deadline and FIFO placement (whether from
  // the default policy or an explicit per-request kFifo under a
  // search-first policy), admission control must not perturb a single
  // bit of the v1 submission-order guarantee — even with deadline
  // shedding armed and class shares configured.
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(6, 5, 4, 954);
  const auto queries = data::random_int_vectors(6, 5, 4, 955);
  const auto fresh = data::random_int_vectors(2, 5, 4, 956);

  auto sync_index = make_index(backend, fidelity, db);
  auto async_backend = make_index(backend, fidelity, db);

  std::vector<SearchResponse> sync_responses;
  sync_responses.push_back(sync_index->search(req(queries[0], 2)));
  sync_responses.push_back(sync_index->search(req(queries[1])));
  (void)sync_index->update(2, fresh[0]);
  sync_responses.push_back(sync_index->search(req(queries[2], 3)));
  (void)sync_index->update(4, fresh[1]);
  sync_responses.push_back(sync_index->search(req(queries[3])));
  sync_responses.push_back(sync_index->search(req(queries[4], 2)));
  sync_responses.push_back(sync_index->search(req(queries[5])));

  AsyncOptions options;
  options.max_batch = 4;
  options.max_wait_us = 200;
  options.admission.order = AdmissionPolicy::ClassOrder::kSearchFirst;
  options.admission.max_writes_ahead = 3;
  options.admission.shed = AdmissionPolicy::ShedPolicy::kSubmitAndDispatch;
  options.admission.assumed_service_us = 50;
  options.admission.max_queued_searches = 32;
  options.admission.max_queued_writes = 32;
  AsyncAmIndex async_index(*async_backend, options);

  // Every search pins kFifo explicitly — the per-request escape hatch
  // from the session's search-first policy.
  const auto fifo_req = [&](std::size_t i, std::size_t k) {
    SearchRequest r;
    r.query = queries[i];
    r.k = k;
    r.submit.priority = SubmitOptions::Priority::kFifo;
    return r;
  };
  std::vector<std::future<SearchResponse>> searches;
  std::vector<std::future<WriteReceipt>> writes;
  searches.push_back(async_index.submit(fifo_req(0, 2)));
  searches.push_back(async_index.submit(fifo_req(1, 1)));
  writes.push_back(async_index.submit_update(2, fresh[0]));
  searches.push_back(async_index.submit(fifo_req(2, 3)));
  writes.push_back(async_index.submit_update(4, fresh[1]));
  searches.push_back(async_index.submit(fifo_req(3, 1)));
  searches.push_back(async_index.submit(fifo_req(4, 2)));
  searches.push_back(async_index.submit(fifo_req(5, 1)));

  for (std::size_t i = 0; i < searches.size(); ++i) {
    expect_bit_identical(searches[i].get(), sync_responses[i]);
  }
  for (auto& write : writes) (void)write.get();
  const auto stats = async_index.stats();
  EXPECT_EQ(stats.search.shed_deadline, 0u);  // no deadline, no sheds
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AdmissionParityT,
    ::testing::Combine(::testing::Values(Backend::kEngine, Backend::kBanked),
                       ::testing::Values(SearchFidelity::kCircuit,
                                         SearchFidelity::kNominal)),
    [](const auto& info) {
      const Backend backend = std::get<0>(info.param);
      const SearchFidelity fidelity = std::get<1>(info.param);
      return std::string(backend == Backend::kEngine ? "Engine" : "Banked") +
             (fidelity == SearchFidelity::kCircuit ? "Circuit" : "Nominal");
    });

// -------------------------------------------------------- concurrency --

TEST(AdmissionConcurrencyT, MixedClassSubmittersShedAndServeWithoutRaces) {
  // Two search submitters (one with tight deadlines that shed, one
  // without) and two write submitters race two dispatchers. The test's
  // assertions are the accounting identities; its real teeth are the
  // TSan CI leg, which runs everything labeled `serve`.
  serve::EngineIndex index;
  index.configure(DistanceMetric::kHamming, 2);
  const auto db = data::random_int_vectors(16, 4, 4, 957);
  index.store(db);
  const auto queries = data::random_int_vectors(8, 4, 4, 958);
  const auto fresh = data::random_int_vectors(4, 4, 4, 959);

  AsyncOptions options;
  options.queue_depth = 64;
  options.max_batch = 4;
  options.max_wait_us = 0;
  options.dispatchers = 2;
  options.admission.shed = AdmissionPolicy::ShedPolicy::kSubmitAndDispatch;
  options.admission.assumed_service_us = 500;
  AsyncAmIndex async_index(index, options);

  constexpr std::size_t kPerThread = 64;
  std::atomic<std::uint64_t> search_ok{0}, search_shed{0};
  std::atomic<std::uint64_t> search_rejected{0};
  std::atomic<std::uint64_t> write_ok{0}, write_rejected{0};
  const auto search_thread = [&](std::uint64_t deadline_us) {
    std::vector<std::future<SearchResponse>> futures;
    for (std::size_t i = 0; i < kPerThread; ++i) {
      try {
        futures.push_back(
            async_index.submit(deadline_req(queries[i % queries.size()],
                                            deadline_us)));
      } catch (const RejectedRequest& rejection) {
        // Submit refuses two ways under pressure: deadline shed and
        // queue-at-depth overload — the reason disambiguates.
        if (rejection.reason() == RejectReason::kDeadlineExceeded) {
          search_shed.fetch_add(1);
        } else {
          EXPECT_EQ(rejection.reason(), RejectReason::kOverloaded);
          search_rejected.fetch_add(1);
        }
      }
    }
    for (auto& future : futures) {
      try {
        (void)future.get();
        search_ok.fetch_add(1);
      } catch (const RejectedRequest& rejection) {
        EXPECT_EQ(rejection.reason(), RejectReason::kDeadlineExceeded);
        search_shed.fetch_add(1);
      }
    }
  };
  const auto write_thread = [&] {
    std::vector<std::future<WriteReceipt>> futures;
    for (std::size_t i = 0; i < kPerThread; ++i) {
      try {
        futures.push_back(
            async_index.submit_update(i % 16, fresh[i % fresh.size()]));
      } catch (const RejectedRequest& rejection) {
        EXPECT_EQ(rejection.reason(), RejectReason::kOverloaded);
        write_rejected.fetch_add(1);
      }
    }
    for (auto& future : futures) (void)future.get();
    write_ok.fetch_add(futures.size());
  };

  std::vector<std::thread> threads;
  threads.emplace_back(search_thread, std::uint64_t{0});  // never sheds
  threads.emplace_back(search_thread, std::uint64_t{50});  // sheds freely
  threads.emplace_back(write_thread);
  threads.emplace_back(write_thread);
  for (auto& thread : threads) thread.join();
  async_index.shutdown();

  EXPECT_EQ(search_ok.load() + search_shed.load() + search_rejected.load(),
            2 * kPerThread);
  EXPECT_EQ(write_ok.load() + write_rejected.load(), 2 * kPerThread);
  const auto stats = async_index.stats();
  EXPECT_EQ(stats.search.rejected_overload, search_rejected.load());
  EXPECT_EQ(stats.search.served, search_ok.load());
  EXPECT_EQ(stats.search.shed_deadline,
            stats.shed_submit + stats.shed_dispatch);
  EXPECT_EQ(stats.search.shed_deadline, search_shed.load());
  EXPECT_EQ(stats.write.served, write_ok.load());
  EXPECT_EQ(stats.write.rejected_overload, write_rejected.load());
  EXPECT_EQ(stats.search.submitted - stats.search.served,
            stats.shed_dispatch);
}

}  // namespace
}  // namespace ferex::serve
