// Violation fixture: direct file write in bench code (raw-file-io).
// A bench killed mid-write would leave a torn BENCH_*.json; emitters
// must go through util::atomic_write_file.
#include <cstdio>

namespace ferex_fixture {

bool emit_results(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"results\": []}\n");
  return std::fclose(f) == 0;
}

}  // namespace ferex_fixture
