// Violation fixture: an ordinal consumed before any validation call in
// the same entry point (ordinal-before-validate).
#include <cstdint>

namespace ferex_fixture {

class Index {
 public:
  std::uint64_t assign_then_validate() {
    const std::uint64_t ordinal = query_serial_++;  // advance first: fires
    validate_request();
    return ordinal;
  }

 private:
  void validate_request() {}
  std::uint64_t query_serial_ = 0;
};

}  // namespace ferex_fixture
