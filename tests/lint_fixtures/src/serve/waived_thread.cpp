// Waiver fixture: the same raw-thread violation as raw_thread.cpp, but
// carrying the inline waiver — ferex_lint must exit 0.
#include <thread>

namespace ferex_fixture {

void spawn_waived() {
  // Justification would go here in real code (e.g. a dispatcher whose
  // lifetime is owned by this class).
  std::thread worker([] {});  // ferex-lint: allow(raw-thread)
  worker.join();
}

}  // namespace ferex_fixture
