// Violation fixture: an exception type in serving code deriving
// straight from std::runtime_error instead of serve::RejectedRequest
// (rejection-base). The throw and the ctor-init below must NOT fire —
// only the base clause is a violation.
#include <stdexcept>
#include <string>

namespace ferex_fixture {

class QueueSaturated : public std::runtime_error {
 public:
  explicit QueueSaturated(const std::string& what)
      : std::runtime_error("saturated: " + what) {}
};

void throw_is_fine() { throw std::runtime_error("not a base clause"); }

}  // namespace ferex_fixture
