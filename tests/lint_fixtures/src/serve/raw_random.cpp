// Violation fixture: ad-hoc RNG outside src/util/rng (raw-random).
#include <cstdlib>

namespace ferex_fixture {

int roll_die() { return std::rand() % 6 + 1; }

}  // namespace ferex_fixture
