// Violation fixture: a public AmIndex mutator that skips the
// check_mutable guard before its do_* core (guarded-mutator).
namespace ferex_fixture {

struct WriteReceipt {};

class AmIndex {
 public:
  WriteReceipt insert(int row);

 private:
  WriteReceipt do_insert(int row);
};

WriteReceipt AmIndex::insert(int row) {
  return do_insert(row);  // no check_mutable: the rule must fire
}

WriteReceipt AmIndex::do_insert(int) { return {}; }

}  // namespace ferex_fixture
