// Violation fixture: naked std::thread in serving code (raw-thread).
#include <thread>

namespace ferex_fixture {

void spawn_unmanaged() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace ferex_fixture
