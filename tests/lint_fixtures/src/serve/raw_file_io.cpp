// Violation fixture: direct file write in serving code (raw-file-io).
#include <fstream>

namespace ferex_fixture {

void write_unmanaged(const char* path) {
  std::ofstream out(path);
  out << "bytes that will not survive a crash";
}

}  // namespace ferex_fixture
