// Violation fixture: a committed diagnostic suppression with no
// compiler-version expiry guard (pragma-expiry).
#pragma GCC diagnostic ignored "-Wunused-parameter"

namespace ferex_fixture {

int identity(int value) { return value; }

}  // namespace ferex_fixture
