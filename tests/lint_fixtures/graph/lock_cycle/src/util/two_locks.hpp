// Seeded lock-order-cycle fixture: ab() nests b under a (matching the
// declared edge), ba() nests a under b — the observed back edge closes
// the cycle.
#pragma once

class TwoLocks {
 public:
  void ab() {
    MutexLock hold_a(mu_a_);
    MutexLock hold_b(mu_b_);
  }
  void ba() {
    MutexLock hold_b(mu_b_);
    MutexLock hold_a(mu_a_);
  }

 private:
  Mutex mu_a_ ACQUIRED_BEFORE(mu_b_);
  Mutex mu_b_;
};
