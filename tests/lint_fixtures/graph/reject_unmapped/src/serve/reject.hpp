// Seeded reject-reason-unmapped fixture: kStarved has no to_string
// case, and the Ghost subclass names an enumerator that does not exist.
#pragma once
#include <stdexcept>
#include <string>

enum class RejectReason {
  kOverloaded,
  kStarved,
};

constexpr const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kOverloaded:
      return "overloaded";
  }
  return "?";
}

// Fixture mirror of the real base; deliberately not a typed rejection.
class RejectedRequest : public std::runtime_error {  // ferex-lint: allow(rejection-base)
 public:
  RejectedRequest(RejectReason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}

 private:
  RejectReason reason_;
};

class Ghost : public RejectedRequest {
 public:
  explicit Ghost(const std::string& what)
      : RejectedRequest(RejectReason::kVanished, what) {}
};
