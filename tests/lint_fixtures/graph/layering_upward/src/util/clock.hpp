// Seeded layering-upward fixture: util (rank 0) reaching into serve
// (rank 6) inverts the DAG even though no cycle forms.
#pragma once
#include "serve/reject.hpp"
inline int util_helper() { return 1; }
