#pragma once
#include "encode/codec.hpp"
inline int device_rows() { return 4; }
