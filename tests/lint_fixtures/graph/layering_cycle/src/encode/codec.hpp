// Seeded layering-cycle fixture: encode and device share rank 1, so
// neither edge is upward on its own — the cycle rule has to catch it.
#pragma once
#include "device/profile.hpp"
inline int codec_width() { return device_rows() * 2; }
