// Seeded orphan-failpoint fixture: the site below appears in neither
// crash sweep, so the fault-injection coverage rule must fire.
void risky_write() { failpoint_hit("fixture.orphan.site"); }
