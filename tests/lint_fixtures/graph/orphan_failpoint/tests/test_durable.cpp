// Sweep stub: scans as a crash sweep but never names the orphan site.
inline const char* kSweptSites[] = {"fixture.covered.site"};
