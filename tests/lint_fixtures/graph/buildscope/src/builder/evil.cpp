// Regression fixture for the build-dir skip bug: src/builder/ must be
// walked (the old prefix match skipped any dir starting with "build").
#include <thread>
void spawn() { std::thread worker([] {}); worker.join(); }
