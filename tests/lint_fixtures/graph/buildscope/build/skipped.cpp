// Lives in a root-level build tree: the walk must never scan this.
#include <thread>
void generated() { std::thread worker([] {}); worker.join(); }
