// Seeded budget-overflow fixture: six suppression markers under src/
// against a budget of five.
int a1() { return 1; }  // NOLINT
int a2() { return 2; }  // NOLINT
int a3() { return 3; }  // NOLINT
int a4() { return 4; }  // NOLINT
int a5() { return 5; }  // NOLINT
int a6() { return 6; }  // NOLINT
