// Seeded stale-bench-label fixture emitter: declares the bench name and
// one live label ("live_" + "label"), but nothing can produce
// "ghost_label" in the committed snapshot.
inline const char* bench_name() { return "bench_fixture"; }
inline const char* live_prefix() { return "live_"; }
inline const char* live_suffix() { return "label"; }
