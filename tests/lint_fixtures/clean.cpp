// Clean fixture: ferex_lint must exit 0 here. Includes near-miss
// tokens that the rules must NOT fire on.
#include <cstdint>

namespace ferex_fixture {

// "rand" inside an identifier is not a rand() call.
int operand_count(int operands) { return operands; }

// A string literal mentioning std::thread is not a spawn.
const char* kDoc = "serving code must not use std::thread directly";

}  // namespace ferex_fixture
