// Tests for sharded scatter-gather serving: arithmetic row routing,
// cross-shard merge + margin reconstruction, shard-local async write
// queues, and per-shard durability under a fleet manifest. The
// load-bearing claims:
//
//   * routing is pure arithmetic and dense: shard_of/to_local/to_global
//     round-trip, every shard's local array fills front to back, and
//     insert() lands exactly where the formula says;
//   * sharded results are bit-identical to an unsharded reference over
//     the same rows — exactly (a 1-shard fleet, a sole-live-shard
//     fleet, and every nominal-fidelity fleet equal the unsharded index
//     outright) or via the documented merge over per-shard reference
//     indexes built with ShardedIndex::shard_seed (circuit fidelity,
//     where each shard owns an independent ordinal-addressed noise
//     stream) — both backends, both fidelities, sync and async;
//   * a fully deleted shard is skipped outright (no search, no noise
//     draws) and EmptyIndex fires only when every shard is empty;
//   * a delete/insert/overwrite interleave serves bit-identically to a
//     fresh store() of the surviving layout;
//   * DurableShardedIndex recovers the fleet bit-identically, types
//     every topology/manifest mismatch as SnapshotMismatch, and
//     survives a crash injected at the manifest-write failpoints of a
//     3-shard fleet.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "arch/banked_am.hpp"
#include "core/ferex.hpp"
#include "data/datasets.hpp"
#include "serve/async_sharded.hpp"
#include "serve/banked_index.hpp"
#include "serve/durable_sharded.hpp"
#include "serve/engine_index.hpp"
#include "serve/sharded_index.hpp"
#include "serve/snapshot.hpp"
#include "util/failpoint.hpp"

namespace ferex {
namespace {

using core::SearchFidelity;
using csp::DistanceMetric;

constexpr double kInf = std::numeric_limits<double>::infinity();

void expect_identical(const serve::SearchResponse& a,
                      const serve::SearchResponse& b) {
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].global_row, b.hits[i].global_row);
    EXPECT_EQ(a.hits[i].bank, b.hits[i].bank);
    EXPECT_EQ(a.hits[i].sensed_current_a, b.hits[i].sensed_current_a);
    EXPECT_EQ(a.hits[i].margin_a, b.hits[i].margin_a);
    EXPECT_EQ(a.hits[i].nominal_distance, b.hits[i].nominal_distance);
  }
}

/// Like expect_identical but ignoring Hit::bank — for comparisons
/// against an unsharded reference, where the fleet reports the shard
/// index and the reference reports its own (macro/bank) grouping.
void expect_same_results(const serve::SearchResponse& a,
                         const serve::SearchResponse& b) {
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].global_row, b.hits[i].global_row);
    EXPECT_EQ(a.hits[i].sensed_current_a, b.hits[i].sensed_current_a);
    EXPECT_EQ(a.hits[i].margin_a, b.hits[i].margin_a);
    EXPECT_EQ(a.hits[i].nominal_distance, b.hits[i].nominal_distance);
  }
}

/// Ignoring bank AND margin — for the one documented divergence: at
/// k == 1 the fleet's margin is BankedAm's two-best rule over shard
/// winners (a flat array also senses the winner's in-shard runner-up,
/// which a 1-hit scatter never fetches). Hits, order, currents, and
/// distances still agree bit for bit; the margin rule itself is proven
/// against the reference merge.
void expect_same_hits(const serve::SearchResponse& a,
                      const serve::SearchResponse& b) {
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].global_row, b.hits[i].global_row);
    EXPECT_EQ(a.hits[i].sensed_current_a, b.hits[i].sensed_current_a);
    EXPECT_EQ(a.hits[i].nominal_distance, b.hits[i].nominal_distance);
  }
}

/// mkdtemp-backed scratch directory, removed (recursively) on scope exit.
class ScopedDir {
 public:
  ScopedDir() {
    std::string pattern = ::testing::TempDir() + "ferex_sharded_XXXXXX";
    std::vector<char> buffer(pattern.begin(), pattern.end());
    buffer.push_back('\0');
    const char* made = ::mkdtemp(buffer.data());
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : pattern;
  }
  ~ScopedDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  ScopedDir(const ScopedDir&) = delete;
  ScopedDir& operator=(const ScopedDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

enum class Backend { kEngine, kBanked };

serve::ShardedOptions make_options(Backend backend, SearchFidelity fidelity,
                                   std::size_t shards, std::size_t block) {
  serve::ShardedOptions options;
  options.shards = shards;
  options.shard_block = block;
  options.backend = backend == Backend::kEngine
                        ? serve::ShardBackend::kEngine
                        : serve::ShardBackend::kBanked;
  options.engine.fidelity = fidelity;
  options.bank_rows = 3;  // small banks so banked shards span banks
  return options;
}

std::unique_ptr<serve::ShardedIndex> make_fleet(
    const serve::ShardedOptions& options,
    const std::vector<std::vector<int>>& db) {
  auto fleet = std::make_unique<serve::ShardedIndex>(options);
  fleet->configure(DistanceMetric::kHamming, 2);
  fleet->store(db);
  return fleet;
}

/// The unsharded index a fleet over `options` is compared against: same
/// engine options (base seed), same backend geometry.
std::unique_ptr<serve::AmIndex> make_unsharded(
    const serve::ShardedOptions& options,
    const std::vector<std::vector<int>>& db) {
  std::unique_ptr<serve::AmIndex> index;
  if (options.backend == serve::ShardBackend::kBanked) {
    arch::BankedOptions banked;
    banked.engine = options.engine;
    banked.bank_rows = options.bank_rows;
    index = std::make_unique<serve::BankedIndex>(banked);
  } else {
    index = std::make_unique<serve::EngineIndex>(options.engine);
  }
  index->configure(DistanceMetric::kHamming, 2);
  if (!db.empty()) index->store(db);
  return index;
}

/// The exact per-shard reference index shard `s` must be bit-identical
/// to: same backend geometry, seed = ShardedIndex::shard_seed, and (for
/// a multi-shard engine fleet) per-shard row fan-out disabled because
/// the fleet owns the cross-shard fan.
std::unique_ptr<serve::AmIndex> make_reference_shard(
    const serve::ShardedOptions& options, std::size_t shard,
    const std::vector<std::vector<int>>& slice) {
  auto engine = options.engine;
  engine.seed = serve::ShardedIndex::shard_seed(options, shard);
  if (options.backend == serve::ShardBackend::kEngine && options.shards > 1) {
    engine.intra_query_min_devices = 0;
  }
  std::unique_ptr<serve::AmIndex> index;
  if (options.backend == serve::ShardBackend::kBanked) {
    arch::BankedOptions banked;
    banked.engine = engine;
    banked.bank_rows = options.bank_rows;
    index = std::make_unique<serve::BankedIndex>(banked);
  } else {
    index = std::make_unique<serve::EngineIndex>(engine);
  }
  index->configure(DistanceMetric::kHamming, 2);
  if (!slice.empty()) index->store(slice);
  return index;
}

/// Rows of `db` routed to each shard, in global order (which the
/// routing formula maps onto dense shard-local order).
std::vector<std::vector<std::vector<int>>> shard_slices(
    const serve::ShardedIndex& fleet,
    const std::vector<std::vector<int>>& db) {
  std::vector<std::vector<std::vector<int>>> slices(fleet.shard_count());
  for (std::size_t g = 0; g < db.size(); ++g) {
    slices[fleet.shard_of(g)].push_back(db[g]);
  }
  return slices;
}

/// Independent reimplementation of the documented scatter-gather
/// semantics over per-shard reference indexes: per-shard k
/// (k == 1 -> 1; sole live shard -> k; else min(k + 1, live)), merge on
/// sensed current (circuit) / nominal distance (nominal) with ties to
/// the lowest global row, k == 1 margins by the two-best rule, k > 1
/// margins as the gap to the best remaining candidate (+inf when the
/// fleet is exhausted), sole-live-shard responses passed through
/// wholesale. This is the reference the fleet must match bit for bit.
serve::SearchResponse reference_merge(
    const serve::ShardedIndex& fleet,
    const std::vector<std::unique_ptr<serve::AmIndex>>& refs,
    const std::vector<int>& query, std::size_t k, std::uint64_t ordinal,
    bool nominal) {
  const auto key_of = [nominal](const serve::Hit& hit) {
    return nominal ? static_cast<double>(hit.nominal_distance)
                   : hit.sensed_current_a;
  };
  std::size_t live_shards = 0;
  for (const auto& ref : refs) live_shards += ref->live_count() > 0 ? 1 : 0;
  std::vector<serve::SearchResponse> parts(refs.size());
  for (std::size_t s = 0; s < refs.size(); ++s) {
    const std::size_t live = refs[s]->live_count();
    if (live == 0) continue;
    serve::SearchRequest sub;
    sub.query = query;
    sub.k = (k == 1 || live_shards == 1) ? k : std::min(k + 1, live);
    parts[s] = refs[s]->search_at(sub, ordinal);
  }
  serve::SearchResponse out;
  if (live_shards == 1) {
    for (std::size_t s = 0; s < parts.size(); ++s) {
      if (parts[s].hits.empty()) continue;
      out = parts[s];
      for (auto& hit : out.hits) {
        hit.global_row = fleet.to_global(s, hit.global_row);
        hit.bank = s;
      }
    }
    return out;
  }
  if (k == 1) {
    // Two-best rule over the shard winners (ties to the lowest shard).
    std::size_t winner = parts.size();
    double best = kInf;
    double second = kInf;
    for (std::size_t s = 0; s < parts.size(); ++s) {
      if (parts[s].hits.empty()) continue;
      const double sensed = key_of(parts[s].hits.front());
      if (sensed < best) {
        second = best;
        best = sensed;
        winner = s;
      } else if (sensed < second) {
        second = sensed;
      }
    }
    serve::Hit hit = parts[winner].hits.front();
    hit.global_row = fleet.to_global(winner, hit.global_row);
    hit.bank = winner;
    hit.margin_a = second - best;
    out.hits.push_back(hit);
    return out;
  }
  // Flatten every fetched candidate; the per-shard lists are sorted, so
  // the globally sorted order is exactly what the head merge consumes,
  // and the best remaining head after taking candidate i is candidate
  // i + 1.
  struct Candidate {
    double key;
    std::size_t global_row;
    serve::Hit hit;
    std::size_t shard;
  };
  std::vector<Candidate> all;
  for (std::size_t s = 0; s < parts.size(); ++s) {
    for (const auto& hit : parts[s].hits) {
      all.push_back({key_of(hit), fleet.to_global(s, hit.global_row), hit, s});
    }
  }
  std::sort(all.begin(), all.end(), [](const Candidate& a, const Candidate& b) {
    return a.key != b.key ? a.key < b.key : a.global_row < b.global_row;
  });
  for (std::size_t i = 0; i < k; ++i) {
    serve::Hit hit = all[i].hit;
    hit.global_row = all[i].global_row;
    hit.bank = all[i].shard;
    hit.margin_a = i + 1 < all.size() ? all[i + 1].key - all[i].key : kInf;
    out.hits.push_back(hit);
  }
  return out;
}

serve::SearchRequest request(const std::vector<int>& query, std::size_t k) {
  serve::SearchRequest r;
  r.query = query;
  r.k = k;
  return r;
}

/// Asserts two fleets are in bit-identical serving state: counts, free
/// rows, a pinned-ordinal query sweep, and — the variation-RNG
/// continuation — a probe insert landing and serving identically.
void expect_same_fleet_state(serve::ShardedIndex& a, serve::ShardedIndex& b,
                             const std::vector<std::vector<int>>& queries,
                             const std::vector<int>& probe) {
  ASSERT_EQ(a.stored_count(), b.stored_count());
  ASSERT_EQ(a.live_count(), b.live_count());
  EXPECT_EQ(a.free_rows(), b.free_rows());
  EXPECT_EQ(a.configured(), b.configured());
  if (a.live_count() == 0) return;
  const std::size_t k = std::min<std::size_t>(3, a.live_count());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_identical(a.search_at(request(queries[i], k), 40 + i),
                     b.search_at(request(queries[i], k), 40 + i));
  }
  const auto receipt_a = a.insert(probe);
  const auto receipt_b = b.insert(probe);
  EXPECT_EQ(receipt_a.global_row, receipt_b.global_row);
  EXPECT_EQ(receipt_a.bank, receipt_b.bank);
  expect_identical(a.search_at(request(queries.front(), k), 77),
                   b.search_at(request(queries.front(), k), 77));
}

// ------------------------------------------------------------ routing --

TEST(ShardedRoutingT, FormulaRoundTripsAndFillsShardsDensely) {
  const std::size_t kGlobals = 400;
  for (const auto& [shards, block] :
       {std::pair<std::size_t, std::size_t>{1, 1},
        {2, 3},
        {3, 4},
        {4, 128}}) {
    serve::ShardedOptions options;
    options.shards = shards;
    options.shard_block = block;
    serve::ShardedIndex fleet{options};
    std::vector<std::vector<std::size_t>> locals(shards);
    for (std::size_t g = 0; g < kGlobals; ++g) {
      const std::size_t s = fleet.shard_of(g);
      ASSERT_LT(s, shards);
      const std::size_t local = fleet.to_local(g);
      EXPECT_EQ(fleet.to_global(s, local), g);
      locals[s].push_back(local);
    }
    // Prefixes of the global row space fill every shard densely: the
    // locals routed to a shard are exactly 0..count-1 in order.
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::size_t i = 0; i < locals[s].size(); ++i) {
        EXPECT_EQ(locals[s][i], i) << "shards=" << shards
                                   << " block=" << block << " shard=" << s;
      }
    }
    for (const std::size_t total : {std::size_t{0}, std::size_t{1},
                                    std::size_t{7}, std::size_t{17},
                                    std::size_t{100}, kGlobals}) {
      std::size_t sum = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        std::size_t count = 0;
        for (std::size_t g = 0; g < total; ++g) {
          count += fleet.shard_of(g) == s ? 1 : 0;
        }
        EXPECT_EQ(fleet.rows_for_shard(s, total), count);
        sum += fleet.rows_for_shard(s, total);
      }
      EXPECT_EQ(sum, total);
    }
  }
  // Shard 0 keeps the base seed (a 1-shard fleet is the unsharded index).
  serve::ShardedOptions options;
  options.engine.seed = 1234;
  EXPECT_EQ(serve::ShardedIndex::shard_seed(options, 0), 1234u);
  EXPECT_NE(serve::ShardedIndex::shard_seed(options, 1), 1234u);
}

TEST(ShardedRoutingT, InsertAppendsDenselyAndReusesLowestFreedRow) {
  const auto db = data::random_int_vectors(7, 5, 4, 2001);
  const auto fresh = data::random_int_vectors(3, 5, 4, 2002);
  auto fleet =
      make_fleet(make_options(Backend::kEngine, SearchFidelity::kNominal, 3, 2),
                 db);
  for (std::size_t s = 0; s < fleet->shard_count(); ++s) {
    EXPECT_EQ(fleet->shard(s).stored_count(), fleet->rows_for_shard(s, 7));
  }
  // Append lands at global row stored_count(), on the shard the formula
  // names, at that shard's next dense local slot.
  auto target = fleet->next_insert_target();
  EXPECT_EQ(target.second, 7u);
  EXPECT_EQ(target.first, fleet->shard_of(7));
  const auto appended = fleet->insert(fresh[0]);
  EXPECT_EQ(appended.global_row, 7u);
  EXPECT_EQ(appended.bank, fleet->shard_of(7));
  EXPECT_EQ(fleet->stored_count(), 8u);

  // Freed rows are reused lowest-global first, across shards.
  fleet->remove(5);
  fleet->remove(2);
  EXPECT_EQ(fleet->live_count(), 6u);
  EXPECT_EQ(fleet->free_rows(),
            (std::set<std::size_t>{2, 5}));
  target = fleet->next_insert_target();
  EXPECT_EQ(target.second, 2u);
  const auto reused = fleet->insert(fresh[1]);
  EXPECT_EQ(reused.global_row, 2u);
  EXPECT_EQ(reused.bank, fleet->shard_of(2));
  const auto reused2 = fleet->insert(fresh[2]);
  EXPECT_EQ(reused2.global_row, 5u);
  EXPECT_EQ(fleet->live_count(), 8u);
  EXPECT_TRUE(fleet->free_rows().empty());
}

TEST(ShardedRoutingT, ValidationIsFleetLevel) {
  const auto db = data::random_int_vectors(4, 5, 4, 2003);
  // 2 shards, block 4: all four rows land on shard 0; shard 1 is empty.
  auto fleet =
      make_fleet(make_options(Backend::kEngine, SearchFidelity::kNominal, 2, 4),
                 db);
  EXPECT_EQ(fleet->shard(1).stored_count(), 0u);
  // The next append routes to the empty shard — the fleet still rejects
  // a wrong-length vector (shard-level checks could not: it has no rows
  // to compare against yet).
  EXPECT_EQ(fleet->next_insert_target().first, 1u);
  EXPECT_THROW(fleet->insert(std::vector<int>{1, 2}), std::invalid_argument);
  EXPECT_THROW(fleet->insert(std::vector<int>{}), std::invalid_argument);
  EXPECT_THROW(fleet->remove(99), std::out_of_range);
  fleet->remove(1);
  EXPECT_THROW(fleet->remove(1), std::logic_error);
  EXPECT_THROW(
      fleet->search(request(db[0], fleet->live_count() + 1)),
      std::invalid_argument);
  EXPECT_THROW(fleet->search_shard(7, request(db[0], 1)), std::out_of_range);
  // Empty-shard single-shard serving is a typed EmptyIndex; the fleet
  // as a whole still serves.
  EXPECT_THROW(fleet->search_shard(1, request(db[0], 1)), serve::EmptyIndex);
  EXPECT_EQ(fleet->search(request(db[0], 1)).hits.size(), 1u);

  serve::ShardedIndex empty{
      make_options(Backend::kEngine, SearchFidelity::kNominal, 2, 4)};
  EXPECT_THROW(empty.search(request(db[0], 1)), serve::EmptyIndex);
}

// ------------------------------------------------- sync bit-identity --

class ShardedParityT
    : public ::testing::TestWithParam<std::tuple<Backend, SearchFidelity>> {};

TEST_P(ShardedParityT, OneShardFleetEqualsTheUnshardedIndex) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(9, 5, 4, 2010);
  const auto queries = data::random_int_vectors(4, 5, 4, 2011);
  const auto options = make_options(backend, fidelity, 1, 4);
  auto fleet = make_fleet(options, db);
  auto reference = make_unsharded(options, db);
  for (std::size_t k : {std::size_t{1}, std::size_t{3}, db.size()}) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      expect_same_results(fleet->search_at(request(queries[i], k), i),
                          reference->search_at(request(queries[i], k), i));
    }
  }
  // And through the consuming entry point, ordinal for ordinal.
  expect_same_results(fleet->search(request(queries[0], 2)),
                      reference->search(request(queries[0], 2)));
  EXPECT_EQ(fleet->query_serial(), reference->query_serial());
}

TEST_P(ShardedParityT, MultiShardFleetMatchesTheReferenceMerge) {
  const auto [backend, fidelity] = GetParam();
  const bool nominal = fidelity == SearchFidelity::kNominal;
  const auto db = data::random_int_vectors(10, 6, 4, 2012);
  const auto queries = data::random_int_vectors(3, 6, 4, 2013);
  const auto options = make_options(backend, fidelity, 3, 2);
  auto fleet = make_fleet(options, db);

  const auto slices = shard_slices(*fleet, db);
  std::vector<std::unique_ptr<serve::AmIndex>> refs;
  for (std::size_t s = 0; s < options.shards; ++s) {
    refs.push_back(make_reference_shard(options, s, slices[s]));
  }
  for (const std::uint64_t ordinal : {std::uint64_t{0}, std::uint64_t{5}}) {
    for (const std::size_t k :
         {std::size_t{1}, std::size_t{2}, std::size_t{5}, db.size()}) {
      SCOPED_TRACE("ordinal=" + std::to_string(ordinal) +
                   " k=" + std::to_string(k));
      const auto got = fleet->search_at(request(queries[0], k), ordinal);
      const auto want =
          reference_merge(*fleet, refs, queries[0], k, ordinal, nominal);
      expect_identical(got, want);
      if (k == 5) {
        // k spans shard boundaries: more hits than any one shard holds
        // (max per-shard live is 4), so at least two shards contribute.
        std::set<std::size_t> banks;
        for (const auto& hit : got.hits) banks.insert(hit.bank);
        EXPECT_GE(banks.size(), 2u);
      }
      if (k == db.size()) {
        // Exhausted fleet: margin +inf, matching the flat comparator's
        // own final round (masked winners stay competing at +inf).
        EXPECT_EQ(got.hits.back().margin_a, kInf);
      }
    }
  }
}

TEST_P(ShardedParityT, NominalFleetEqualsTheUnshardedIndexOutright) {
  const auto [backend, fidelity] = GetParam();
  if (fidelity != SearchFidelity::kNominal) {
    GTEST_SKIP() << "circuit fleets have per-shard noise streams; their "
                    "reference is the per-shard merge above";
  }
  const auto db = data::random_int_vectors(11, 5, 4, 2014);
  const auto queries = data::random_int_vectors(3, 5, 4, 2015);
  const auto options = make_options(backend, fidelity, 4, 2);
  auto fleet = make_fleet(options, db);
  auto reference = make_unsharded(options, db);
  for (const std::size_t k :
       {std::size_t{1}, std::size_t{2}, std::size_t{5}, db.size()}) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      SCOPED_TRACE("k=" + std::to_string(k) + " q=" + std::to_string(i));
      const auto got = fleet->search_at(request(queries[i], k), i);
      const auto want = reference->search_at(request(queries[i], k), i);
      // k > 1 margins equal the flat index's round margins outright
      // (the overfetched heads cover the true runner-up each round);
      // k == 1 margins follow the documented two-best shard-winner
      // rule instead — see expect_same_hits.
      if (k == 1) {
        expect_same_hits(got, want);
      } else {
        expect_same_results(got, want);
      }
    }
  }
}

TEST_P(ShardedParityT, PinnedOrdinalReplaysBitIdentically) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(8, 5, 4, 2016);
  const auto queries = data::random_int_vectors(2, 5, 4, 2017);
  auto fleet = make_fleet(make_options(backend, fidelity, 3, 2), db);

  const std::uint64_t serial = fleet->query_serial();
  serve::SearchRequest pinned = request(queries[0], 2);
  pinned.ordinal = 7;
  const auto first = fleet->search(pinned);
  const auto replay = fleet->search(pinned);
  expect_identical(first, replay);
  EXPECT_EQ(fleet->query_serial(), serial);  // pinned consumes nothing

  fleet->search(request(queries[1], 1));
  EXPECT_EQ(fleet->query_serial(), serial + 1);
}

TEST_P(ShardedParityT, FullyDeletedShardIsSkippedWithoutNoiseDraws) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(8, 5, 4, 2018);
  const auto queries = data::random_int_vectors(3, 5, 4, 2019);
  const auto options = make_options(backend, fidelity, 2, 2);
  auto fleet = make_fleet(options, db);

  // Globals 2, 3, 6, 7 are shard 1; delete all of them.
  for (const std::size_t g : {2, 3, 6, 7}) fleet->remove(g);
  EXPECT_EQ(fleet->shard(1).live_count(), 0u);
  EXPECT_EQ(fleet->live_count(), 4u);

  // The fleet now serves bit-identically to shard 0 alone at the same
  // ordinal — the dead shard is never searched, so it draws no noise
  // (its streams are those of a fleet that never included it), and the
  // sole live shard's response passes through wholesale at every k.
  const auto slices = shard_slices(*fleet, db);
  auto alone = make_reference_shard(options, 0, slices[0]);
  for (const std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{4}}) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      SCOPED_TRACE("k=" + std::to_string(k) + " q=" + std::to_string(i));
      auto got = fleet->search_at(request(queries[i], k), 9 + i);
      auto want = alone->search_at(request(queries[i], k), 9 + i);
      for (auto& hit : want.hits) hit.global_row = fleet->to_global(0, hit.global_row);
      expect_same_results(got, want);
      for (const auto& hit : got.hits) EXPECT_EQ(hit.bank, 0u);
    }
  }
  EXPECT_THROW(fleet->search(request(queries[0], 5)), std::invalid_argument);

  // EmptyIndex fires only when EVERY shard is empty.
  for (const std::size_t g : {0, 1, 4, 5}) fleet->remove(g);
  EXPECT_THROW(fleet->search(request(queries[0], 1)), serve::EmptyIndex);
}

TEST_P(ShardedParityT, InterleaveEqualsAFreshStoreOfTheSurvivingLayout) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(8, 5, 4, 2020);
  const auto fresh = data::random_int_vectors(3, 5, 4, 2021);
  const auto queries = data::random_int_vectors(3, 5, 4, 2022);
  const auto options = make_options(backend, fidelity, 3, 2);

  auto fleet = make_fleet(options, db);
  fleet->remove(1);
  fleet->remove(6);
  EXPECT_EQ(fleet->insert(fresh[0]).global_row, 1u);  // lowest freed first
  fleet->update(3, fresh[1]);
  EXPECT_EQ(fleet->insert(fresh[2]).global_row, 6u);
  EXPECT_EQ(fleet->live_count(), 8u);

  // The surviving layout: every slot live, rows 1/3/6 overwritten.
  auto layout = db;
  layout[1] = fresh[0];
  layout[3] = fresh[1];
  layout[6] = fresh[2];
  auto reference = make_fleet(options, layout);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_identical(fleet->search_at(request(queries[i], 3), i),
                     reference->search_at(request(queries[i], 3), i));
  }

  // And the ISSUE's literal form: on a 1-shard fleet the same interleave
  // equals a fresh UNSHARDED store of the survivors.
  const auto single = make_options(backend, fidelity, 1, 4);
  auto small = make_fleet(single, db);
  small->remove(1);
  small->remove(6);
  small->insert(fresh[0]);
  small->update(3, fresh[1]);
  small->insert(fresh[2]);
  auto unsharded = make_unsharded(single, layout);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_same_results(small->search_at(request(queries[i], 3), i),
                        unsharded->search_at(request(queries[i], 3), i));
  }
}

TEST_P(ShardedParityT, BatchMatchesSequentialServing) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(9, 5, 4, 2023);
  const auto queries = data::random_int_vectors(4, 5, 4, 2024);
  const auto options = make_options(backend, fidelity, 3, 2);
  auto fleet = make_fleet(options, db);
  auto twin = make_fleet(options, db);

  std::vector<serve::SearchRequest> batch;
  for (const auto& q : queries) batch.push_back(request(q, 2));
  const auto responses = fleet->search_batch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_identical(responses[i], twin->search(batch[i]));
  }
  EXPECT_EQ(fleet->query_serial(), twin->query_serial());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ShardedParityT,
    ::testing::Combine(::testing::Values(Backend::kEngine, Backend::kBanked),
                       ::testing::Values(SearchFidelity::kCircuit,
                                         SearchFidelity::kNominal)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == Backend::kEngine
                             ? "Engine"
                             : "Banked") +
             (std::get<1>(info.param) == SearchFidelity::kCircuit ? "Circuit"
                                                                  : "Nominal");
    });

// ------------------------------------------------------------- async --

class AsyncShardedT
    : public ::testing::TestWithParam<std::tuple<Backend, SearchFidelity>> {};

TEST_P(AsyncShardedT, SubmissionOrderEqualsTheSynchronousSequence) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(7, 5, 4, 2030);
  const auto queries = data::random_int_vectors(3, 5, 4, 2031);
  const auto fresh = data::random_int_vectors(2, 5, 4, 2032);
  const auto options = make_options(backend, fidelity, 3, 2);
  auto fleet = make_fleet(options, db);
  auto twin = make_fleet(options, db);

  {
    serve::AsyncShardedIndex session(*fleet);
    // A served fleet rejects direct synchronous use at the front door.
    EXPECT_THROW(fleet->search(request(queries[0], 1)),
                 serve::MutationWhileServed);
    EXPECT_THROW(fleet->insert(fresh[0]), serve::MutationWhileServed);

    auto t1 = session.submit(request(queries[0], 2));
    auto w1 = session.submit_insert(fresh[0]);
    auto t2 = session.submit(request(queries[1], 1));
    auto ts = session.submit_shard(1, request(queries[2], 1));
    auto w2 = session.submit_remove(0);
    auto t3 = session.submit(request(queries[2], 3));
    auto w3 = session.submit_update(2, fresh[1]);
    auto t4 = session.submit(request(queries[0], 4));

    expect_identical(t1.get(), twin->search(request(queries[0], 2)));
    const auto r1 = w1.get();
    const auto twin_r1 = twin->insert(fresh[0]);
    EXPECT_EQ(r1.global_row, twin_r1.global_row);
    EXPECT_EQ(r1.bank, twin_r1.bank);
    expect_identical(t2.get(), twin->search(request(queries[1], 1)));
    expect_identical(ts.get(), twin->search_shard(1, request(queries[2], 1)));
    const auto r2 = w2.get();
    const auto twin_r2 = twin->remove(0);
    EXPECT_EQ(r2.global_row, twin_r2.global_row);
    EXPECT_EQ(r2.bank, twin_r2.bank);
    expect_identical(t3.get(), twin->search(request(queries[2], 3)));
    const auto r3 = w3.get();
    const auto twin_r3 = twin->update(2, fresh[1]);
    EXPECT_EQ(r3.global_row, twin_r3.global_row);
    EXPECT_EQ(r3.bank, twin_r3.bank);
    expect_identical(t4.get(), twin->search(request(queries[0], 4)));

    session.shutdown();
  }
  // The advanced serial was handed back: sync traffic continues the
  // same ordinal stream.
  EXPECT_EQ(fleet->query_serial(), twin->query_serial());
  expect_identical(fleet->search(request(queries[1], 2)),
                   twin->search(request(queries[1], 2)));
}

TEST_P(AsyncShardedT, SubmitValidatesAgainstTheExactShadow) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(6, 5, 4, 2033);
  const auto queries = data::random_int_vectors(2, 5, 4, 2034);
  const auto options = make_options(backend, fidelity, 3, 2);
  auto fleet = make_fleet(options, db);

  serve::AsyncShardedIndex session(*fleet);
  const std::uint64_t serial = session.query_serial();
  EXPECT_THROW(session.submit(request(queries[0], 0)), std::invalid_argument);
  EXPECT_THROW(session.submit(request(queries[0], 7)), std::invalid_argument);
  EXPECT_THROW(session.submit(request({1, 2}, 1)), std::invalid_argument);
  EXPECT_THROW(session.submit_shard(9, request(queries[0], 1)),
               std::out_of_range);
  EXPECT_THROW(session.submit_insert({1, 2}), std::invalid_argument);
  EXPECT_THROW(session.submit_insert({9, 9, 9, 9, 9}), std::out_of_range);
  EXPECT_THROW(session.submit_remove(99), std::out_of_range);
  auto pending = session.submit_remove(3);
  // The shadow is exact at submission: the double remove is rejected
  // here, not at apply time.
  EXPECT_THROW(session.submit_remove(3), std::logic_error);
  pending.get();
  // Rejections consumed nothing.
  EXPECT_EQ(session.query_serial(), serial);
  session.shutdown();
  EXPECT_TRUE(session.shut_down());
  EXPECT_THROW(session.submit(request(queries[0], 1)), serve::ShutDown);
  EXPECT_THROW(session.submit_insert(db[0]), serve::ShutDown);
  session.shutdown();  // idempotent
}

TEST_P(AsyncShardedT, EmptyFleetIsTypedAtSubmission) {
  const auto [backend, fidelity] = GetParam();
  serve::ShardedIndex fleet{make_options(backend, fidelity, 2, 2)};
  serve::AsyncShardedIndex session(fleet);
  EXPECT_THROW(session.submit(request({1, 1, 1}, 1)), serve::EmptyIndex);
  // Unconfigured fleet: inserts are rejected outright.
  EXPECT_THROW(session.submit_insert({1, 1, 1}), std::logic_error);
  session.shutdown();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AsyncShardedT,
    ::testing::Combine(::testing::Values(Backend::kEngine, Backend::kBanked),
                       ::testing::Values(SearchFidelity::kCircuit,
                                         SearchFidelity::kNominal)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == Backend::kEngine
                             ? "Engine"
                             : "Banked") +
             (std::get<1>(info.param) == SearchFidelity::kCircuit ? "Circuit"
                                                                  : "Nominal");
    });

// ----------------------------------------------------------- durable --

class DurableShardedT
    : public ::testing::TestWithParam<std::tuple<Backend, SearchFidelity>> {};

TEST_P(DurableShardedT, RecoveryEqualsTheLiveFleet) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(7, 5, 4, 2040);
  const auto queries = data::random_int_vectors(3, 5, 4, 2041);
  const auto fresh = data::random_int_vectors(4, 5, 4, 2042);
  const auto options = make_options(backend, fidelity, 3, 2);
  ScopedDir dir;

  serve::ShardedIndex live{options};
  serve::DurableShardedIndex durable(live, dir.path());
  durable.configure(DistanceMetric::kHamming, 2);
  durable.store(db);
  durable.remove(1);
  durable.insert(fresh[0]);
  durable.checkpoint();  // snapshot + WAL rotation per shard
  durable.update(3, fresh[1]);
  durable.remove(6);
  live.search(request(queries[0], 2));  // advance the serial past the manifest

  serve::ShardedIndex recovered{options};
  serve::DurableShardedIndex durable2(recovered, dir.path());
  // Search ordinals persist at manifest writes (configure/store/
  // checkpoint), not per search — align before comparing, as the
  // unsharded durable tests do.
  recovered.set_query_serial(live.query_serial());
  expect_same_fleet_state(live, recovered, queries, fresh[2]);
}

TEST_P(DurableShardedT, AsyncSessionJournalsIntoTheShardWals) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(7, 5, 4, 2043);
  const auto queries = data::random_int_vectors(3, 5, 4, 2044);
  const auto fresh = data::random_int_vectors(3, 5, 4, 2045);
  const auto options = make_options(backend, fidelity, 3, 2);
  ScopedDir dir;

  serve::ShardedIndex live{options};
  serve::DurableShardedIndex durable(live, dir.path());
  durable.configure(DistanceMetric::kHamming, 2);
  durable.store(db);
  {
    const auto wals = durable.shard_wals();
    serve::AsyncShardedIndex session(live, {}, wals);
    auto w1 = session.submit_insert(fresh[0]);
    auto t1 = session.submit(request(queries[0], 2));
    auto w2 = session.submit_remove(2);
    auto w3 = session.submit_update(4, fresh[1]);
    w1.get();
    t1.get();
    w2.get();
    w3.get();
    session.shutdown();
  }

  serve::ShardedIndex recovered{options};
  serve::DurableShardedIndex durable2(recovered, dir.path());
  recovered.set_query_serial(live.query_serial());
  expect_same_fleet_state(live, recovered, queries, fresh[2]);
}

TEST(DurableShardedMismatchT, TopologyDisagreementIsTyped) {
  const auto db = data::random_int_vectors(6, 5, 4, 2046);
  ScopedDir dir;
  const auto options =
      make_options(Backend::kEngine, SearchFidelity::kCircuit, 3, 2);
  {
    serve::ShardedIndex live{options};
    serve::DurableShardedIndex durable(live, dir.path());
    durable.configure(DistanceMetric::kHamming, 2);
    durable.store(db);
  }
  {
    auto wrong = options;
    wrong.shards = 2;
    serve::ShardedIndex fleet{wrong};
    EXPECT_THROW(serve::DurableShardedIndex(fleet, dir.path()),
                 serve::SnapshotMismatch);
  }
  {
    auto wrong = options;
    wrong.shard_block = 4;
    serve::ShardedIndex fleet{wrong};
    EXPECT_THROW(serve::DurableShardedIndex(fleet, dir.path()),
                 serve::SnapshotMismatch);
  }
  {
    auto wrong = options;
    wrong.backend = serve::ShardBackend::kBanked;
    serve::ShardedIndex fleet{wrong};
    EXPECT_THROW(serve::DurableShardedIndex(fleet, dir.path()),
                 serve::SnapshotMismatch);
  }
}

TEST(DurableShardedMismatchT, LostShardDirectoryAndLostManifestAreTyped) {
  const auto db = data::random_int_vectors(6, 5, 4, 2047);
  const auto options =
      make_options(Backend::kEngine, SearchFidelity::kCircuit, 3, 2);
  {
    // A deleted shard directory cannot masquerade as a smaller fleet:
    // the recovered image is no longer dense.
    ScopedDir dir;
    {
      serve::ShardedIndex live{options};
      serve::DurableShardedIndex durable(live, dir.path());
      durable.configure(DistanceMetric::kHamming, 2);
      durable.store(db);
      durable.checkpoint();
      std::filesystem::remove_all(durable.shard_dir(1));
    }
    serve::ShardedIndex fleet{options};
    EXPECT_THROW(serve::DurableShardedIndex(fleet, dir.path()),
                 serve::SnapshotMismatch);
  }
  {
    // Shard state without a manifest can only be tampering: a cold
    // start writes the manifest before any shard file exists.
    ScopedDir dir;
    std::string manifest;
    {
      serve::ShardedIndex live{options};
      serve::DurableShardedIndex durable(live, dir.path());
      durable.configure(DistanceMetric::kHamming, 2);
      durable.store(db);
      manifest = durable.manifest_path();
    }
    std::filesystem::remove(manifest);
    serve::ShardedIndex fleet{options};
    EXPECT_THROW(serve::DurableShardedIndex(fleet, dir.path()),
                 serve::SnapshotMismatch);
  }
}

// --------------------------------------------------- crash injection --

/// Thrown by an armed failpoint to simulate dying at that instant.
struct CrashSim {};

/// The crash-sweep workload. Manifest writes happen at construction
/// (cold start), configure, store, and each checkpoint — five per run,
/// giving the manifest failpoints five deterministic crash events:
///
///   event 0: cold-start manifest (nothing applied)
///   event 1: configure's manifest (configure applied + journaled)
///   event 2: store's manifest     (+ store)
///   event 3: checkpoint 1         (+ remove(1), insert(fresh[0]))
///   event 4: checkpoint 2         (+ update(3, fresh[1]), insert(fresh[2]))
void run_fleet_script(serve::DurableShardedIndex& durable,
                      const std::vector<std::vector<int>>& db,
                      const std::vector<std::vector<int>>& fresh) {
  durable.configure(DistanceMetric::kHamming, 2);
  durable.store(db);
  durable.remove(1);
  durable.insert(fresh[0]);
  durable.checkpoint();
  durable.update(3, fresh[1]);
  durable.insert(fresh[2]);
  durable.checkpoint();
}

/// The mutations durably applied when the crash hit manifest event `e`
/// (the op whose manifest write crashed has already applied and
/// journaled — see the DurableShardedIndex journal-ordering contract).
void apply_reference_prefix(serve::ShardedIndex& fleet, std::uint64_t event,
                            const std::vector<std::vector<int>>& db,
                            const std::vector<std::vector<int>>& fresh) {
  if (event >= 1) fleet.configure(DistanceMetric::kHamming, 2);
  if (event >= 2) fleet.store(db);
  if (event >= 3) {
    fleet.remove(1);
    fleet.insert(fresh[0]);
  }
  if (event >= 4) {
    fleet.update(3, fresh[1]);
    fleet.insert(fresh[2]);
  }
}

const char* const kManifestSites[] = {
    "sharded.manifest.before_write",
    "sharded.manifest.after_write",
};

TEST_P(DurableShardedT, CrashInTheManifestWriteRecoversBitIdentical) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(7, 5, 4, 2048);
  const auto queries = data::random_int_vectors(3, 5, 4, 2049);
  const auto fresh = data::random_int_vectors(4, 5, 4, 2050);
  const auto options = make_options(backend, fidelity, 3, 2);

  for (const char* site : kManifestSites) {
    // Dry run: enumerate this site's crash events across the workload.
    std::uint64_t hits = 0;
    {
      ScopedDir dir;
      serve::ShardedIndex fleet{options};
      util::failpoint_arm(site, 0, nullptr);
      serve::DurableShardedIndex durable(fleet, dir.path());
      run_fleet_script(durable, db, fresh);
      hits = util::failpoint_hits();
      util::failpoint_disarm();
    }
    ASSERT_EQ(hits, 5u) << site << ": the event map above is stale";

    for (std::uint64_t nth = 1; nth <= hits; ++nth) {
      SCOPED_TRACE(std::string(site) + " hit " + std::to_string(nth));
      ScopedDir dir;
      {
        serve::ShardedIndex fleet{options};
        util::failpoint_arm(site, nth, [] { throw CrashSim{}; });
        try {
          serve::DurableShardedIndex durable(fleet, dir.path());
          run_fleet_script(durable, db, fresh);
          ADD_FAILURE() << "armed failpoint never fired";
        } catch (const CrashSim&) {
          // Died mid-workload; the in-memory fleet is abandoned.
        }
        util::failpoint_disarm();
      }

      // Recovery must succeed at every crash point (a torn manifest
      // write is either the old or the new complete manifest)...
      serve::ShardedIndex recovered{options};
      serve::DurableShardedIndex durable2(recovered, dir.path());

      // ...and equal an uninterrupted run of exactly the durable prefix.
      serve::ShardedIndex reference{options};
      apply_reference_prefix(reference, nth - 1, db, fresh);
      expect_same_fleet_state(recovered, reference, queries, fresh[3]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DurableShardedT,
    ::testing::Combine(::testing::Values(Backend::kEngine, Backend::kBanked),
                       ::testing::Values(SearchFidelity::kCircuit,
                                         SearchFidelity::kNominal)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == Backend::kEngine
                             ? "Engine"
                             : "Banked") +
             (std::get<1>(info.param) == SearchFidelity::kCircuit ? "Circuit"
                                                                  : "Nominal");
    });

}  // namespace
}  // namespace ferex
