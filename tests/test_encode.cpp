// Unit tests for the encoding layer: Fig. 5 post-processing, the
// CellEncoding artifact, Table II regeneration and the full encoder loop
// over cell sizes. Includes parameterized property sweeps: every feasible
// (metric, bits) encoding must reproduce its distance matrix exactly.
#include <gtest/gtest.h>

#include "csp/feasibility.hpp"
#include "encode/encoder.hpp"
#include "encode/encoding_table.hpp"

namespace ferex::encode {
namespace {

using csp::DistanceMatrix;
using csp::DistanceMetric;

CellEncoding encode_hamming2() {
  const auto dm = DistanceMatrix::make(DistanceMetric::kHamming, 2);
  auto enc = encode_distance_matrix(dm);
  EXPECT_TRUE(enc.has_value());
  return *enc;
}

TEST(EncodeSolution, TwoBitHammingUsesThreeFeFetCell) {
  const auto enc = encode_hamming2();
  EXPECT_EQ(enc.fefets_per_cell(), 3u);
  EXPECT_EQ(enc.stored_count(), 4u);
  EXPECT_EQ(enc.search_count(), 4u);
  // Table II uses three Vt and three Vs levels and Vds in {V, 2V}.
  EXPECT_LE(enc.ladder_levels(), 3u);
  EXPECT_LE(enc.max_vds_multiple(), 2);
}

TEST(EncodeSolution, TwoBitHammingRealizesItsDm) {
  const auto dm = DistanceMatrix::make(DistanceMetric::kHamming, 2);
  const auto enc = encode_hamming2();
  EXPECT_TRUE(enc.realizes(dm));
  // Spot values from Fig. 4(a).
  EXPECT_EQ(enc.nominal_current(0b00, 0b11), 2);
  EXPECT_EQ(enc.nominal_current(0b11, 0b11), 0);
  EXPECT_EQ(enc.nominal_current(0b01, 0b00), 1);
}

TEST(EncodeSolution, AnyFeasibleSolutionEncodesCorrectly) {
  // encode_solution on the raw first CSP solution (no level-minimizing
  // selection): may need one extra ladder level but must still realize
  // the DM exactly.
  const auto dm = DistanceMatrix::make(DistanceMetric::kHamming, 2);
  const std::vector<int> cr{1, 2};
  const auto feas = csp::detect_feasibility(dm, 3, cr);
  ASSERT_TRUE(feas.feasible);
  const auto enc = encode_solution(feas.solution(), dm.name());
  EXPECT_TRUE(enc.realizes(dm));
  EXPECT_LE(enc.ladder_levels(), 4u);
}

TEST(EncodeSolution, RejectsEmptySolution) {
  EXPECT_THROW(encode_solution({}, "x"), std::invalid_argument);
}

TEST(EncodeSolution, RejectsNonNestedOnSets) {
  // Hand-built constraint-3 violation (the Fig. 4e fence).
  csp::RowPattern r0, r1;
  r0.currents = {{1}, {0}};
  r1.currents = {{0}, {1}};
  EXPECT_THROW(encode_solution({r0, r1}, "fence"), std::invalid_argument);
}

TEST(EncodingTable, TextTableHasOneRowPerValue) {
  const auto enc = encode_hamming2();
  const auto table = enc.to_text_table();
  EXPECT_EQ(table.row_count(), 4u);
}

TEST(EncodingTable, ValidatesShapesAndRanges) {
  util::Matrix<int> store(2, 1, 0), search(2, 1, 0), vds(2, 1, 1);
  EXPECT_NO_THROW(CellEncoding(store, search, vds, 1, "ok"));
  util::Matrix<int> bad_vds(2, 1, 0);  // multiple < 1
  EXPECT_THROW(CellEncoding(store, search, bad_vds, 1, "bad"),
               std::invalid_argument);
  util::Matrix<int> bad_store(2, 1, 5);  // level beyond ladder
  EXPECT_THROW(CellEncoding(bad_store, search, vds, 1, "bad"),
               std::invalid_argument);
  util::Matrix<int> ragged(2, 2, 0);
  EXPECT_THROW(CellEncoding(ragged, search, vds, 1, "bad"),
               std::invalid_argument);
}

TEST(Encoder, FindsMinimalCellSizeForHamming2) {
  const auto dm = DistanceMatrix::make(DistanceMetric::kHamming, 2);
  EncoderReport report;
  const auto enc = encode_distance_matrix(dm, {}, &report);
  ASSERT_TRUE(enc.has_value());
  // The paper: "a 3FeFET3R cell structure is the optimal solution for the
  // DM of 2-bit Hamming Distance".
  EXPECT_EQ(report.fefets_per_cell, 3);
  EXPECT_EQ(report.rejected_k, (std::vector<int>{1, 2}));
  EXPECT_TRUE(enc->realizes(dm));
}

TEST(Encoder, ReturnsNulloptWhenBudgetTooSmall) {
  const auto dm = DistanceMatrix::make(DistanceMetric::kHamming, 2);
  EncoderOptions opt;
  opt.max_fefets_per_cell = 2;  // we know 3 are needed
  EXPECT_FALSE(encode_distance_matrix(dm, opt).has_value());
}

TEST(Encoder, CustomAsymmetricMatrixSupported) {
  // A deliberately asymmetric "penalty" function: still encodable.
  util::Matrix<int> values(2, 2, 0);
  values.at(0, 1) = 2;
  values.at(1, 0) = 1;
  const auto dm = DistanceMatrix::custom(std::move(values), "penalty");
  const auto enc = encode_distance_matrix(dm);
  ASSERT_TRUE(enc.has_value());
  EXPECT_TRUE(enc->realizes(dm));
}

// ---- Property sweep: every feasible standard encoding reproduces its DM.

struct EncodeCase {
  DistanceMetric metric;
  int bits;
  int max_fefets;
  int max_vds;
};

class EncoderProperty : public ::testing::TestWithParam<EncodeCase> {};

TEST_P(EncoderProperty, EncodingRealizesDistanceMatrix) {
  const auto& p = GetParam();
  const auto dm = DistanceMatrix::make(p.metric, p.bits);
  EncoderOptions opt;
  opt.max_fefets_per_cell = p.max_fefets;
  opt.max_vds_multiple = p.max_vds;
  EncoderReport report;
  const auto enc = encode_distance_matrix(dm, opt, &report);
  ASSERT_TRUE(enc.has_value())
      << dm.name() << " infeasible up to k=" << p.max_fefets;
  EXPECT_TRUE(enc->realizes(dm)) << dm.name();
  EXPECT_GE(report.fefets_per_cell, 1);
  // The DM's largest entry bounds the per-row current budget from below:
  // k * max_vds must reach it.
  EXPECT_GE(report.fefets_per_cell * p.max_vds, dm.max_value());
}

INSTANTIATE_TEST_SUITE_P(
    StandardMetrics, EncoderProperty,
    ::testing::Values(
        EncodeCase{DistanceMetric::kHamming, 1, 4, 2},
        EncodeCase{DistanceMetric::kHamming, 2, 4, 2},
        EncodeCase{DistanceMetric::kManhattan, 1, 4, 2},
        EncodeCase{DistanceMetric::kManhattan, 2, 5, 2},
        EncodeCase{DistanceMetric::kManhattan, 2, 5, 3},
        EncodeCase{DistanceMetric::kEuclideanSquared, 1, 4, 2},
        EncodeCase{DistanceMetric::kEuclideanSquared, 2, 6, 5}),
    [](const auto& param_info) {
      return to_string(param_info.param.metric) + std::to_string(param_info.param.bits) +
             "bit" + std::to_string(param_info.param.max_vds) + "v";
    });

TEST(Encoder, ThreeBitMonolithicCellReportsResourceBoundary) {
  // Exact Algorithm 1 over an 8x8 DM explodes combinatorially once k
  // grows (the paper demonstrates 2-bit cells); the encoder must report
  // the resource boundary rather than hang or silently truncate.
  const auto dm = DistanceMatrix::make(DistanceMetric::kHamming, 3);
  EncoderOptions opt;
  opt.max_fefets_per_cell = 8;
  EncoderReport report;
  const auto enc = encode_distance_matrix(dm, opt, &report);
  EXPECT_FALSE(enc.has_value());
  EXPECT_TRUE(report.resource_limited);
  EXPECT_GE(report.resource_limited_at_k, 3);
  // The small cells genuinely proved infeasible before the boundary.
  EXPECT_FALSE(report.rejected_k.empty());
}

TEST(Encoder, AblationAc3OffProducesEquivalentEncoding) {
  const auto dm = DistanceMatrix::make(DistanceMetric::kManhattan, 2);
  EncoderOptions on, off;
  off.use_ac3 = false;
  const auto enc_on = encode_distance_matrix(dm, on);
  const auto enc_off = encode_distance_matrix(dm, off);
  ASSERT_TRUE(enc_on.has_value());
  ASSERT_TRUE(enc_off.has_value());
  EXPECT_TRUE(enc_on->realizes(dm));
  EXPECT_TRUE(enc_off->realizes(dm));
  EXPECT_EQ(enc_on->fefets_per_cell(), enc_off->fefets_per_cell());
}

}  // namespace
}  // namespace ferex::encode
