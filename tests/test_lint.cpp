// Static-analysis tooling tests: ferex_lint fires the expected rule id
// on each seeded violation fixture, honors waivers, passes the clean
// fixture, and — the gate that matters — finds the real tree clean.
// Also covers bench_compare's malformed-input contract (exit 2, path
// named), since both tools share the "diagnose, don't guess" bar.
//
// The binaries under test are located via compile definitions wired in
// CMakeLists.txt (FEREX_LINT_BIN / FEREX_BENCH_COMPARE_BIN /
// FEREX_SOURCE_ROOT); when tools are disabled the suite skips.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#if defined(FEREX_LINT_BIN) && defined(FEREX_BENCH_COMPARE_BIN) && \
    defined(FEREX_SOURCE_ROOT)

#include <sys/wait.h>

namespace {

std::string fixture(const std::string& rel) {
  return std::string(FEREX_SOURCE_ROOT) + "/tests/lint_fixtures/" + rel;
}

/// Runs `cmd` with stderr folded into stdout; returns the exit code
/// (-1 when the child died on a signal or popen itself failed).
int run(const std::string& cmd, std::string& output) {
  output.clear();
  // NOLINTNEXTLINE(cert-env33-c,concurrency-mt-unsafe) — test harness
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) output += buf;
  const int status = pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

int lint(const std::string& target, std::string& output) {
  return run(std::string(FEREX_LINT_BIN) + " " + target, output);
}

TEST(FerexLint, CleanFixturePasses) {
  std::string out;
  EXPECT_EQ(lint(fixture("clean.cpp"), out), 0) << out;
  EXPECT_EQ(out, "");
}

TEST(FerexLint, WaivedViolationPasses) {
  std::string out;
  EXPECT_EQ(lint(fixture("src/serve/waived_thread.cpp"), out), 0) << out;
}

TEST(FerexLint, FlagsRawThread) {
  std::string out;
  EXPECT_EQ(lint(fixture("src/serve/raw_thread.cpp"), out), 1) << out;
  EXPECT_NE(out.find("raw-thread"), std::string::npos) << out;
}

TEST(FerexLint, FlagsRawRandom) {
  std::string out;
  EXPECT_EQ(lint(fixture("src/serve/raw_random.cpp"), out), 1) << out;
  EXPECT_NE(out.find("raw-random"), std::string::npos) << out;
}

TEST(FerexLint, FlagsUnguardedMutator) {
  std::string out;
  EXPECT_EQ(lint(fixture("src/serve/unguarded_mutator.cpp"), out), 1) << out;
  EXPECT_NE(out.find("guarded-mutator"), std::string::npos) << out;
}

TEST(FerexLint, FlagsOrdinalBeforeValidate) {
  std::string out;
  EXPECT_EQ(lint(fixture("src/serve/ordinal_first.cpp"), out), 1) << out;
  EXPECT_NE(out.find("ordinal-before-validate"), std::string::npos) << out;
}

TEST(FerexLint, FlagsRawFileIo) {
  std::string out;
  EXPECT_EQ(lint(fixture("src/serve/raw_file_io.cpp"), out), 1) << out;
  EXPECT_NE(out.find("raw-file-io"), std::string::npos) << out;
}

TEST(FerexLint, FlagsRawFileIoInBench) {
  std::string out;
  EXPECT_EQ(lint(fixture("bench/raw_file_io.cpp"), out), 1) << out;
  EXPECT_NE(out.find("raw-file-io"), std::string::npos) << out;
}

TEST(FerexLint, FlagsRejectionBase) {
  std::string out;
  EXPECT_EQ(lint(fixture("src/serve/bad_reject.cpp"), out), 1) << out;
  EXPECT_NE(out.find("rejection-base"), std::string::npos) << out;
  // Exactly one finding: the throw and the constructor-init in the
  // fixture are legitimate uses and must not trip the rule.
  EXPECT_EQ(out.find("rejection-base"), out.rfind("rejection-base")) << out;
}

TEST(FerexLint, FlagsUnguardedPragma) {
  std::string out;
  EXPECT_EQ(lint(fixture("unguarded_pragma.cpp"), out), 1) << out;
  EXPECT_NE(out.find("pragma-expiry"), std::string::npos) << out;
}

TEST(FerexLint, MissingPathExitsTwo) {
  std::string out;
  EXPECT_EQ(lint(fixture("does_not_exist.cpp"), out), 2) << out;
}

// ---- graph rules: each seeded tree fails with exactly its rule id ----
// Graph fixtures are whole directory trees (phase 2 only runs on a
// directory scan): lint(<tree>) must exit 1 and name both the rule and
// the offending file.

/// Asserts `lint(graph/<tree>)` exits 1 and the output names `rule` at
/// a path containing `path_part`.
void expect_graph_violation(const std::string& tree, const std::string& rule,
                            const std::string& path_part) {
  std::string out;
  EXPECT_EQ(lint(fixture("graph/" + tree), out), 1) << out;
  EXPECT_NE(out.find(rule), std::string::npos) << out;
  EXPECT_NE(out.find(path_part), std::string::npos) << out;
}

TEST(FerexLintGraph, FlagsLayeringCycle) {
  // encode and device share a rank, so neither edge is upward alone —
  // only the cycle pass can reject the pair.
  expect_graph_violation("layering_cycle", "layering-cycle", "src/device");
}

TEST(FerexLintGraph, FlagsLayeringUpward) {
  expect_graph_violation("layering_upward", "layering-upward",
                         "src/util/clock.hpp");
}

TEST(FerexLintGraph, FlagsLockOrderCycle) {
  std::string out;
  EXPECT_EQ(lint(fixture("graph/lock_cycle"), out), 1) << out;
  EXPECT_NE(out.find("lock-order-cycle"), std::string::npos) << out;
  // The reversed nesting in ba() is also undeclared — both findings
  // anchor in the fixture header.
  EXPECT_NE(out.find("lock-order-undeclared"), std::string::npos) << out;
  EXPECT_NE(out.find("two_locks.hpp"), std::string::npos) << out;
}

TEST(FerexLintGraph, FlagsRejectReasonUnmapped) {
  std::string out;
  EXPECT_EQ(lint(fixture("graph/reject_unmapped"), out), 1) << out;
  // Both halves of the bijection: an enumerator with no to_string case
  // and a subclass naming a nonexistent enumerator.
  EXPECT_NE(out.find("kStarved"), std::string::npos) << out;
  EXPECT_NE(out.find("kVanished"), std::string::npos) << out;
  EXPECT_NE(out.find("reject-reason-unmapped"), std::string::npos) << out;
}

TEST(FerexLintGraph, FlagsOrphanFailpoint) {
  expect_graph_violation("orphan_failpoint", "orphan-failpoint",
                         "fixture.orphan.site");
}

TEST(FerexLintGraph, FlagsStaleBenchLabel) {
  std::string out;
  EXPECT_EQ(lint(fixture("graph/stale_bench_label"), out), 1) << out;
  EXPECT_NE(out.find("stale-bench-label"), std::string::npos) << out;
  EXPECT_NE(out.find("ghost_label"), std::string::npos) << out;
  // live_label is emittable as "live_" + "label" — concatenation
  // counts as live, so it must not be flagged.
  EXPECT_EQ(out.find("\"live_label\""), std::string::npos) << out;
}

TEST(FerexLintGraph, FlagsStaleCiLabel) {
  expect_graph_violation("stale_ci_label", "stale-ci-label", "ci.yml");
}

TEST(FerexLintGraph, FlagsBudgetOverflow) {
  expect_graph_violation("budget_overflow", "budget-overflow", "noisy.cpp");
}

// Regression for the build-dir skip bug: only a *root-level* build*/
// directory is generated output; a nested src/builder/ is source and
// must be linted.
TEST(FerexLintGraph, BuildDirSkipIsRootRelative) {
  std::string out;
  EXPECT_EQ(lint(fixture("graph/buildscope"), out), 1) << out;
  EXPECT_NE(out.find("src/builder/evil.cpp"), std::string::npos) << out;
  EXPECT_EQ(out.find("skipped.cpp"), std::string::npos) << out;
}

// ---- CLI surface: --explain, --json, --lock-hierarchy ----------------

TEST(FerexLintCli, ExplainKnownRuleExitsZero) {
  for (const std::string rule :
       {"layering-cycle", "lock-order-undeclared", "stale-bench-label"}) {
    std::string out;
    EXPECT_EQ(run(std::string(FEREX_LINT_BIN) + " --explain " + rule, out), 0)
        << rule << ": " << out;
    EXPECT_NE(out.find(rule), std::string::npos) << out;
  }
}

TEST(FerexLintCli, ExplainUnknownRuleExitsTwoAndListsRules) {
  std::string out;
  EXPECT_EQ(run(std::string(FEREX_LINT_BIN) + " --explain no-such-rule", out),
            2)
      << out;
  // The error must teach: the known-rule list is the recovery path.
  EXPECT_NE(out.find("layering-upward"), std::string::npos) << out;
}

TEST(FerexLintCli, JsonReportOnViolatingTree) {
  const std::string report = ::testing::TempDir() + "ferex_lint_report.json";
  std::string out;
  EXPECT_EQ(run(std::string(FEREX_LINT_BIN) + " " +
                    fixture("graph/layering_upward") + " --json " + report,
                out),
            1)
      << out;
  std::string json;
  ASSERT_EQ(run("cat " + report, json), 0);
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\": \"layering-upward\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"module_edges\""), std::string::npos) << json;
  std::remove(report.c_str());
}

TEST(FerexLintCli, LockHierarchyPrintsRealTreeEdges) {
  std::string out;
  EXPECT_EQ(run(std::string(FEREX_LINT_BIN) + " " +
                    std::string(FEREX_SOURCE_ROOT) + " --lock-hierarchy",
                out),
            0)
      << out;
  // The serving pipeline's declared order is the hierarchy's spine.
  EXPECT_NE(out.find("submit_mutex_"), std::string::npos) << out;
  EXPECT_NE(out.find("->"), std::string::npos) << out;
  EXPECT_NE(out.find("declared"), std::string::npos) << out;
}

// The invariant the whole PR rides on: the shipped tree is lint-clean,
// so any future violation is a red CI, not a slow drift.
TEST(FerexLint, RealTreeIsClean) {
  std::string out;
  EXPECT_EQ(lint(std::string(FEREX_SOURCE_ROOT), out), 0) << out;
}

TEST(BenchCompare, MalformedJsonExitsTwoNamingPath) {
  const std::string bad = fixture("bench_malformed.json");
  std::string out;
  const int code =
      run(std::string(FEREX_BENCH_COMPARE_BIN) + " " + bad + " " + bad, out);
  EXPECT_EQ(code, 2) << out;
  EXPECT_NE(out.find(bad), std::string::npos) << out;
  EXPECT_NE(out.find("malformed number"), std::string::npos) << out;
}

TEST(BenchCompare, UnreadableFileExitsTwoNamingPath) {
  const std::string missing = fixture("no_such_snapshot.json");
  std::string out;
  const int code = run(
      std::string(FEREX_BENCH_COMPARE_BIN) + " " + missing + " " + missing,
      out);
  EXPECT_EQ(code, 2) << out;
  EXPECT_NE(out.find(missing), std::string::npos) << out;
}

}  // namespace

#else  // tools disabled: nothing to exercise

TEST(FerexLint, SkippedWithoutTools) {
  GTEST_SKIP() << "FEREX_BUILD_TOOLS=OFF: lint binaries not built";
}

#endif
