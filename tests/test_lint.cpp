// Static-analysis tooling tests: ferex_lint fires the expected rule id
// on each seeded violation fixture, honors waivers, passes the clean
// fixture, and — the gate that matters — finds the real tree clean.
// Also covers bench_compare's malformed-input contract (exit 2, path
// named), since both tools share the "diagnose, don't guess" bar.
//
// The binaries under test are located via compile definitions wired in
// CMakeLists.txt (FEREX_LINT_BIN / FEREX_BENCH_COMPARE_BIN /
// FEREX_SOURCE_ROOT); when tools are disabled the suite skips.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#if defined(FEREX_LINT_BIN) && defined(FEREX_BENCH_COMPARE_BIN) && \
    defined(FEREX_SOURCE_ROOT)

#include <sys/wait.h>

namespace {

std::string fixture(const std::string& rel) {
  return std::string(FEREX_SOURCE_ROOT) + "/tests/lint_fixtures/" + rel;
}

/// Runs `cmd` with stderr folded into stdout; returns the exit code
/// (-1 when the child died on a signal or popen itself failed).
int run(const std::string& cmd, std::string& output) {
  output.clear();
  // NOLINTNEXTLINE(cert-env33-c,concurrency-mt-unsafe) — test harness
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return -1;
  char buf[512];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) output += buf;
  const int status = pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

int lint(const std::string& target, std::string& output) {
  return run(std::string(FEREX_LINT_BIN) + " " + target, output);
}

TEST(FerexLint, CleanFixturePasses) {
  std::string out;
  EXPECT_EQ(lint(fixture("clean.cpp"), out), 0) << out;
  EXPECT_EQ(out, "");
}

TEST(FerexLint, WaivedViolationPasses) {
  std::string out;
  EXPECT_EQ(lint(fixture("src/serve/waived_thread.cpp"), out), 0) << out;
}

TEST(FerexLint, FlagsRawThread) {
  std::string out;
  EXPECT_EQ(lint(fixture("src/serve/raw_thread.cpp"), out), 1) << out;
  EXPECT_NE(out.find("raw-thread"), std::string::npos) << out;
}

TEST(FerexLint, FlagsRawRandom) {
  std::string out;
  EXPECT_EQ(lint(fixture("src/serve/raw_random.cpp"), out), 1) << out;
  EXPECT_NE(out.find("raw-random"), std::string::npos) << out;
}

TEST(FerexLint, FlagsUnguardedMutator) {
  std::string out;
  EXPECT_EQ(lint(fixture("src/serve/unguarded_mutator.cpp"), out), 1) << out;
  EXPECT_NE(out.find("guarded-mutator"), std::string::npos) << out;
}

TEST(FerexLint, FlagsOrdinalBeforeValidate) {
  std::string out;
  EXPECT_EQ(lint(fixture("src/serve/ordinal_first.cpp"), out), 1) << out;
  EXPECT_NE(out.find("ordinal-before-validate"), std::string::npos) << out;
}

TEST(FerexLint, FlagsRawFileIo) {
  std::string out;
  EXPECT_EQ(lint(fixture("src/serve/raw_file_io.cpp"), out), 1) << out;
  EXPECT_NE(out.find("raw-file-io"), std::string::npos) << out;
}

TEST(FerexLint, FlagsRawFileIoInBench) {
  std::string out;
  EXPECT_EQ(lint(fixture("bench/raw_file_io.cpp"), out), 1) << out;
  EXPECT_NE(out.find("raw-file-io"), std::string::npos) << out;
}

TEST(FerexLint, FlagsRejectionBase) {
  std::string out;
  EXPECT_EQ(lint(fixture("src/serve/bad_reject.cpp"), out), 1) << out;
  EXPECT_NE(out.find("rejection-base"), std::string::npos) << out;
  // Exactly one finding: the throw and the constructor-init in the
  // fixture are legitimate uses and must not trip the rule.
  EXPECT_EQ(out.find("rejection-base"), out.rfind("rejection-base")) << out;
}

TEST(FerexLint, FlagsUnguardedPragma) {
  std::string out;
  EXPECT_EQ(lint(fixture("unguarded_pragma.cpp"), out), 1) << out;
  EXPECT_NE(out.find("pragma-expiry"), std::string::npos) << out;
}

TEST(FerexLint, MissingPathExitsTwo) {
  std::string out;
  EXPECT_EQ(lint(fixture("does_not_exist.cpp"), out), 2) << out;
}

// The invariant the whole PR rides on: the shipped tree is lint-clean,
// so any future violation is a red CI, not a slow drift.
TEST(FerexLint, RealTreeIsClean) {
  std::string out;
  EXPECT_EQ(lint(std::string(FEREX_SOURCE_ROOT), out), 0) << out;
}

TEST(BenchCompare, MalformedJsonExitsTwoNamingPath) {
  const std::string bad = fixture("bench_malformed.json");
  std::string out;
  const int code =
      run(std::string(FEREX_BENCH_COMPARE_BIN) + " " + bad + " " + bad, out);
  EXPECT_EQ(code, 2) << out;
  EXPECT_NE(out.find(bad), std::string::npos) << out;
  EXPECT_NE(out.find("malformed number"), std::string::npos) << out;
}

TEST(BenchCompare, UnreadableFileExitsTwoNamingPath) {
  const std::string missing = fixture("no_such_snapshot.json");
  std::string out;
  const int code = run(
      std::string(FEREX_BENCH_COMPARE_BIN) + " " + missing + " " + missing,
      out);
  EXPECT_EQ(code, 2) << out;
  EXPECT_NE(out.find(missing), std::string::npos) << out;
}

}  // namespace

#else  // tools disabled: nothing to exercise

TEST(FerexLint, SkippedWithoutTools) {
  GTEST_SKIP() << "FEREX_BUILD_TOOLS=OFF: lint binaries not built";
}

#endif
