// Tests for the mutable write path: delete (erase + post-decoder row
// mask), overwrite-in-place, and freed-slot reuse — through every layer
// (CrossbarArray / LtaCircuit, FerexEngine, BankedAm, serve::AmIndex,
// serve::AsyncAmIndex). The load-bearing claims:
//
//   * a delete/insert/overwrite interleaving senses identical currents
//     and returns bit-identical hits to a fresh store() of the
//     surviving database's layout, at both fidelities, on both
//     backends, sync and async;
//   * masked rows draw no comparator noise, so live rows' noise streams
//     are exactly those of an index holding only the live rows;
//   * k is validated against the live row count, with the typed
//     EmptyIndex error when nothing is live;
//   * async writes serialize against searches by submission order —
//     responses equal the synchronous sequence regardless of
//     coalescing or dispatcher count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "arch/banked_am.hpp"
#include "circuit/lta.hpp"
#include "core/ferex.hpp"
#include "data/datasets.hpp"
#include "serve/async_index.hpp"
#include "serve/banked_index.hpp"
#include "serve/engine_index.hpp"

namespace ferex {
namespace {

using core::EngineInsert;
using core::FerexEngine;
using core::FerexOptions;
using core::SearchFidelity;
using core::SearchResult;
using csp::DistanceMetric;

void expect_identical(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.nearest, b.nearest);
  EXPECT_EQ(a.winner_current_a, b.winner_current_a);  // bit-exact
  EXPECT_EQ(a.margin_a, b.margin_a);
  EXPECT_EQ(a.nominal_distance, b.nominal_distance);
}

void expect_identical(const serve::SearchResponse& a,
                      const serve::SearchResponse& b) {
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].global_row, b.hits[i].global_row);
    EXPECT_EQ(a.hits[i].bank, b.hits[i].bank);
    EXPECT_EQ(a.hits[i].sensed_current_a, b.hits[i].sensed_current_a);
    EXPECT_EQ(a.hits[i].margin_a, b.hits[i].margin_a);
    EXPECT_EQ(a.hits[i].nominal_distance, b.hits[i].nominal_distance);
  }
}

// ----------------------------------------------------------- circuit --

TEST(CrossbarMutT, EraseRowErasesDevicesAndMasksSearches) {
  FerexEngine engine;
  engine.configure(DistanceMetric::kHamming, 2);
  const auto db = data::random_int_vectors(4, 5, 4, 901);
  engine.store(db);
  const auto* array = engine.array();
  ASSERT_NE(array, nullptr);

  engine.remove(1);
  EXPECT_FALSE(array->row_live(1));
  EXPECT_EQ(array->live_rows(), 3u);
  EXPECT_EQ(array->rows(), 4u);
  // Every device back at the erased threshold — offset-free, exactly
  // the constructor's state, so a later reprogram lands identically.
  const double vth_max = engine.options().circuit.fet.vth_max_v;
  for (std::size_t d = 0; d < array->dims(); ++d) {
    for (std::size_t f = 0; f < array->fefets_per_cell(); ++f) {
      EXPECT_EQ(array->device_vth(1, d, f), vth_max);
    }
  }
  // The disabled branch reports the +infinity sentinel in both kernels.
  const auto q = data::random_int_vectors(1, 5, 4, 902).front();
  const auto currents = engine.row_currents(q);
  EXPECT_TRUE(std::isinf(currents[1]));
}

TEST(CrossbarMutT, EraseRowValidation) {
  FerexEngine engine;
  engine.configure(DistanceMetric::kHamming, 2);
  engine.store(data::random_int_vectors(3, 4, 4, 903));
  EXPECT_THROW(engine.remove(3), std::out_of_range);
  engine.remove(2);
  EXPECT_THROW(engine.remove(2), std::logic_error);
}

TEST(LtaMaskT, MaskedDecideMatchesCompactDecideBitExactly) {
  circuit::LtaCircuit lta;
  const std::vector<double> full = {5.0, 3.0, 7.0, 4.0, 6.0};
  const std::vector<std::uint8_t> live = {1, 0, 1, 1, 0};
  const std::vector<double> compact = {5.0, 7.0, 4.0};

  // Dead rows draw no comparator noise: the masked decision over the
  // full array must consume the rng stream exactly as the compact
  // (survivors-only) array does.
  util::Rng masked_rng(77);
  util::Rng compact_rng(77);
  const auto masked = lta.decide(full, 1.0, &masked_rng, live);
  const auto plain = lta.decide(compact, 1.0, &compact_rng);
  const std::size_t mapping[] = {0, 2, 3};  // compact index -> full row
  EXPECT_EQ(masked.winner, mapping[plain.winner]);
  EXPECT_EQ(masked.winner_current_a, plain.winner_current_a);
  EXPECT_EQ(masked.margin_a, plain.margin_a);

  // Same for the k-NN rounds (round-masked winners keep drawing noise
  // on both sides; dead rows never do).
  util::Rng masked_k(78);
  util::Rng compact_k(78);
  const auto masked_hits = lta.decide_k_detailed(full, 1.0, 3, &masked_k,
                                                 live);
  const auto plain_hits = lta.decide_k_detailed(compact, 1.0, 3, &compact_k);
  ASSERT_EQ(masked_hits.size(), plain_hits.size());
  for (std::size_t i = 0; i < masked_hits.size(); ++i) {
    EXPECT_EQ(masked_hits[i].winner, mapping[plain_hits[i].winner]);
    EXPECT_EQ(masked_hits[i].winner_current_a,
              plain_hits[i].winner_current_a);
    EXPECT_EQ(masked_hits[i].margin_a, plain_hits[i].margin_a);
  }
}

TEST(LtaMaskT, MaskedDecideValidation) {
  circuit::LtaCircuit lta;
  const std::vector<double> currents = {1.0, 2.0, 3.0};
  const std::vector<std::uint8_t> live = {1, 0, 1};
  const std::vector<std::uint8_t> none = {0, 0, 0};
  const std::vector<std::uint8_t> short_mask = {1, 0};
  EXPECT_THROW(lta.decide(currents, 1.0, nullptr, none),
               std::invalid_argument);
  EXPECT_THROW(lta.decide(currents, 1.0, nullptr, short_mask),
               std::invalid_argument);
  // k bounded by live rows, not physical rows.
  EXPECT_THROW(lta.decide_k_detailed(currents, 1.0, 3, nullptr, live),
               std::invalid_argument);
  EXPECT_EQ(lta.decide_k(currents, 1.0, 2, nullptr, live).size(), 2u);
}

// ------------------------------------------------------------ engine --

TEST(EngineMutT, RemoveExcludesRowAndBoundsK) {
  FerexOptions opt;
  opt.fidelity = SearchFidelity::kNominal;
  FerexEngine engine(opt);
  engine.configure(DistanceMetric::kHamming, 2);
  const auto db = data::random_int_vectors(6, 5, 4, 905);
  engine.store(db);

  // Deleting the current winner must dethrone it.
  const auto q = data::random_int_vectors(1, 5, 4, 906).front();
  const auto before = engine.search_at(q, 0);
  engine.remove(before.nearest);
  EXPECT_EQ(engine.live_count(), 5u);
  EXPECT_EQ(engine.stored_count(), 6u);
  const auto after = engine.search_at(q, 0);
  EXPECT_NE(after.nearest, before.nearest);

  // k == live_count covers exactly the live rows; one more throws.
  const auto hits = engine.search_hits_at(q, 5, 0);
  std::vector<bool> seen(db.size(), false);
  for (const auto& hit : hits) {
    EXPECT_NE(hit.nearest, before.nearest);
    seen[hit.nearest] = true;
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), true), 5);
  EXPECT_THROW(engine.search_hits_at(q, 6, 0), std::invalid_argument);
}

TEST(EngineMutT, InsertReusesLowestFreedSlot) {
  FerexEngine engine;
  engine.configure(DistanceMetric::kHamming, 2);
  const auto db = data::random_int_vectors(5, 4, 4, 907);
  engine.store(db);
  engine.remove(3);
  engine.remove(1);

  const std::vector<int> x(4, 2);
  const EngineInsert first = engine.insert(x);
  EXPECT_EQ(first.row, 1u);
  const EngineInsert second = engine.insert(x);
  EXPECT_EQ(second.row, 3u);
  EXPECT_EQ(engine.stored_count(), 5u);  // no growth while slots free
  EXPECT_EQ(engine.live_count(), 5u);
  const EngineInsert third = engine.insert(x);
  EXPECT_EQ(third.row, 5u);  // exhausted free slots: append
  EXPECT_EQ(engine.stored_count(), 6u);
}

TEST(EngineMutT, UpdateCostEqualsEraseThenProgram) {
  const auto db = data::random_int_vectors(4, 5, 4, 908);
  const std::vector<int> v(5, 3);

  FerexEngine updated;
  updated.configure(DistanceMetric::kHamming, 2);
  updated.store(db);
  const auto update_cost = updated.update(2, v);

  FerexEngine sequenced;
  sequenced.configure(DistanceMetric::kHamming, 2);
  sequenced.store(db);
  const auto erase_cost = sequenced.remove(2);
  const auto program_cost = sequenced.insert(v).cost;  // reuses slot 2

  EXPECT_EQ(update_cost.pulses, erase_cost.pulses + program_cost.pulses);
  EXPECT_DOUBLE_EQ(update_cost.energy_j,
                   program_cost.energy_j + erase_cost.energy_j);
  EXPECT_DOUBLE_EQ(update_cost.latency_s,
                   program_cost.latency_s + erase_cost.latency_s);
  // And the two engines hold identical data afterwards.
  const auto q = data::random_int_vectors(1, 5, 4, 909).front();
  expect_identical(updated.search_at(q, 4), sequenced.search_at(q, 4));
}

class EngineInterleaveT : public ::testing::TestWithParam<SearchFidelity> {};

TEST_P(EngineInterleaveT, InterleaveMatchesFreshStoreOfSurvivingLayout) {
  FerexOptions opt;
  opt.fidelity = GetParam();
  const auto db = data::random_int_vectors(6, 5, 4, 910);
  const auto extra = data::random_int_vectors(3, 5, 4, 911);

  FerexEngine mutated(opt);
  mutated.configure(DistanceMetric::kHamming, 2);
  mutated.store(db);
  mutated.remove(1);
  mutated.remove(4);
  EXPECT_EQ(mutated.insert(extra[0]).row, 1u);   // reuse slot 1
  mutated.update(3, extra[1]);                   // overwrite in place
  EXPECT_EQ(mutated.insert(extra[2]).row, 4u);   // reuse slot 4
  EXPECT_EQ(mutated.live_count(), 6u);

  // The surviving database in its physical layout, stored fresh with
  // the same seed: identical device variation per slot, identical
  // values — currents and hits must match bit for bit.
  std::vector<std::vector<int>> layout = db;
  layout[1] = extra[0];
  layout[3] = extra[1];
  layout[4] = extra[2];
  FerexEngine fresh(opt);
  fresh.configure(DistanceMetric::kHamming, 2);
  fresh.store(layout);

  const auto queries = data::random_int_vectors(6, 5, 4, 912);
  std::uint64_t ordinal = 0;
  for (const auto& q : queries) {
    const auto a = mutated.row_currents(q);
    const auto b = fresh.row_currents(q);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t r = 0; r < a.size(); ++r) EXPECT_EQ(a[r], b[r]);
    for (const std::size_t k : {std::size_t{1}, std::size_t{3},
                                std::size_t{6}}) {
      const auto ha = mutated.search_hits_at(q, k, ordinal);
      const auto hb = fresh.search_hits_at(q, k, ordinal);
      ASSERT_EQ(ha.size(), hb.size());
      for (std::size_t i = 0; i < ha.size(); ++i) {
        expect_identical(ha[i], hb[i]);
      }
      ++ordinal;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fidelities, EngineInterleaveT,
                         ::testing::Values(SearchFidelity::kCircuit,
                                           SearchFidelity::kNominal),
                         [](const auto& info) {
                           return info.param == SearchFidelity::kCircuit
                                      ? "Circuit"
                                      : "Nominal";
                         });

TEST(EngineMutT, ResidualMaskMatchesFreshStoreOfSurvivorsOnly) {
  // With variation disabled, circuit-fidelity currents depend only on
  // the stored values — so a masked array must match a fresh store() of
  // just the survivors, including every comparator-noise draw (dead
  // rows draw nothing).
  FerexOptions opt;
  opt.circuit.variation.enabled = false;
  const auto db = data::random_int_vectors(5, 6, 4, 913);

  FerexEngine mutated(opt);
  mutated.configure(DistanceMetric::kHamming, 2);
  mutated.store(db);
  mutated.remove(1);
  mutated.remove(3);

  FerexEngine survivors(opt);
  survivors.configure(DistanceMetric::kHamming, 2);
  survivors.store({db[0], db[2], db[4]});

  const std::size_t mapping[] = {0, 2, 4};  // survivor index -> slot
  const auto queries = data::random_int_vectors(5, 6, 4, 914);
  std::uint64_t ordinal = 0;
  for (const auto& q : queries) {
    const auto a = mutated.search_hits_at(q, 3, ordinal);
    const auto b = survivors.search_hits_at(q, 3, ordinal);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].nearest, mapping[b[i].nearest]);
      EXPECT_EQ(a[i].winner_current_a, b[i].winner_current_a);
      EXPECT_EQ(a[i].margin_a, b[i].margin_a);
      EXPECT_EQ(a[i].nominal_distance, b[i].nominal_distance);
    }
    ++ordinal;
  }
}

TEST(EngineMutT, ConfigureAfterRemovePreservesMask) {
  FerexOptions opt;
  opt.fidelity = SearchFidelity::kNominal;
  FerexEngine engine(opt);
  engine.configure(DistanceMetric::kHamming, 2);
  const auto db = data::random_int_vectors(5, 4, 4, 915);
  engine.store(db);
  engine.remove(2);

  // Re-encoding rebuilds the array; the removed slot must stay removed.
  engine.configure(DistanceMetric::kManhattan, 2);
  EXPECT_EQ(engine.live_count(), 4u);
  const auto q = data::random_int_vectors(1, 4, 4, 916).front();
  for (const auto& hit : engine.search_hits_at(q, 4, 0)) {
    EXPECT_NE(hit.nearest, 2u);
  }
}

TEST(EngineMutT, AllRemovedEngineRejectsSearches) {
  FerexEngine engine;
  engine.configure(DistanceMetric::kHamming, 2);
  engine.store(data::random_int_vectors(2, 4, 4, 917));
  engine.remove(0);
  engine.remove(1);
  EXPECT_EQ(engine.live_count(), 0u);
  const std::vector<int> q(4, 0);
  EXPECT_THROW(engine.search(q), std::logic_error);
  EXPECT_THROW(engine.search_at(q, 0), std::logic_error);
  // Insert revives the index through the freed slots.
  EXPECT_EQ(engine.insert(std::vector<int>(4, 1)).row, 0u);
  EXPECT_EQ(engine.search_at(q, 0).nearest, 0u);
}

// ------------------------------------------------------------ banked --

TEST(BankedMutT, RemoveRoutesThroughGlobalRowAndInsertReusesBeforeGrowth) {
  arch::BankedOptions opt;
  opt.bank_rows = 3;
  arch::BankedAm am(opt);
  am.configure(DistanceMetric::kHamming, 2);
  const auto db = data::random_int_vectors(6, 4, 4, 918);
  am.store(db);  // two full banks
  ASSERT_EQ(am.bank_count(), 2u);

  const auto removed = am.remove(4);  // bank 1, local row 1
  EXPECT_EQ(removed.bank, 1u);
  EXPECT_EQ(removed.global_row, 4u);
  EXPECT_GT(removed.cost.pulses, 0u);
  EXPECT_EQ(am.live_count(), 5u);
  EXPECT_EQ(am.bank(1).live_count(), 2u);

  // The freed slot is reused before a third bank is spawned.
  const auto reused = am.insert(std::vector<int>(4, 1));
  EXPECT_EQ(reused.global_row, 4u);
  EXPECT_EQ(reused.bank, 1u);
  EXPECT_EQ(am.bank_count(), 2u);
  EXPECT_EQ(am.stored_count(), 6u);

  // With every slot live again, the next insert grows a bank.
  const auto grown = am.insert(std::vector<int>(4, 2));
  EXPECT_EQ(grown.global_row, 6u);
  EXPECT_EQ(grown.bank, 2u);
  EXPECT_EQ(am.bank_count(), 3u);
}

TEST(BankedMutT, EmptiedBankStopsFiringAndIntraSettingReconciles) {
  arch::BankedOptions opt;
  opt.bank_rows = 2;
  opt.engine.fidelity = SearchFidelity::kNominal;
  const std::size_t intra_default = opt.engine.intra_query_min_devices;
  arch::BankedAm am(opt);
  am.configure(DistanceMetric::kHamming, 2);
  const auto db = data::random_int_vectors(4, 4, 4, 919);
  am.store(db);  // two banks
  ASSERT_EQ(am.bank_count(), 2u);
  EXPECT_EQ(am.bank(0).options().intra_query_min_devices, 0u);

  am.remove(2);
  am.remove(3);
  EXPECT_EQ(am.live_bank_count(), 1u);
  // Back to effectively one bank: the surviving bank regains its row
  // fan-out heuristic (scheduling only, results identical either way).
  EXPECT_EQ(am.bank(0).options().intra_query_min_devices, intra_default);

  // Searches skip the dead bank entirely; k spans only live rows.
  const auto q = data::random_int_vectors(1, 4, 4, 920).front();
  const auto hit = am.search_at(q, 0);
  EXPECT_LT(hit.nearest, 2u);
  const auto hits = am.search_k_hits(q, 2);
  for (const auto& h : hits) EXPECT_LT(h.nearest, 2u);
  EXPECT_THROW(am.search_k_hits(q, 3), std::invalid_argument);

  // Reviving a row in the dead bank restores multi-bank scheduling.
  am.update(3, std::vector<int>(4, 1));
  EXPECT_EQ(am.live_bank_count(), 2u);
  EXPECT_EQ(am.bank(0).options().intra_query_min_devices, 0u);
}

class BankedInterleaveT : public ::testing::TestWithParam<SearchFidelity> {};

TEST_P(BankedInterleaveT, InterleaveMatchesFreshStoreOfSurvivingLayout) {
  arch::BankedOptions opt;
  opt.bank_rows = 2;
  opt.engine.fidelity = GetParam();
  const auto db = data::random_int_vectors(5, 4, 4, 921);
  const auto extra = data::random_int_vectors(2, 4, 4, 922);

  arch::BankedAm mutated(opt);
  mutated.configure(DistanceMetric::kHamming, 2);
  mutated.store(db);
  mutated.remove(1);
  mutated.remove(4);
  EXPECT_EQ(mutated.insert(extra[0]).global_row, 1u);
  mutated.update(4, extra[1]);
  EXPECT_EQ(mutated.live_count(), 5u);

  std::vector<std::vector<int>> layout = db;
  layout[1] = extra[0];
  layout[4] = extra[1];
  arch::BankedAm fresh(opt);
  fresh.configure(DistanceMetric::kHamming, 2);
  fresh.store(layout);

  const auto queries = data::random_int_vectors(5, 4, 4, 923);
  std::uint64_t ordinal = 0;
  for (const auto& q : queries) {
    const auto a = mutated.search_at(q, ordinal);
    const auto b = fresh.search_at(q, ordinal);
    EXPECT_EQ(a.nearest, b.nearest);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.winner_current_a, b.winner_current_a);
    EXPECT_EQ(a.margin_a, b.margin_a);
    EXPECT_EQ(a.nominal_distance, b.nominal_distance);
    ++ordinal;
    const auto ka = mutated.search_k_hits(q, 4);
    const auto kb = fresh.search_k_hits(q, 4);
    ASSERT_EQ(ka.size(), kb.size());
    for (std::size_t i = 0; i < ka.size(); ++i) {
      EXPECT_EQ(ka[i].nearest, kb[i].nearest);
      EXPECT_EQ(ka[i].winner_current_a, kb[i].winner_current_a);
      EXPECT_EQ(ka[i].margin_a, kb[i].margin_a);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fidelities, BankedInterleaveT,
                         ::testing::Values(SearchFidelity::kCircuit,
                                           SearchFidelity::kNominal),
                         [](const auto& info) {
                           return info.param == SearchFidelity::kCircuit
                                      ? "Circuit"
                                      : "Nominal";
                         });

// ------------------------------------------------------------- serve --

TEST(ServeMutT, KValidationTracksLiveCountOnBothBackends) {
  const auto db = data::random_int_vectors(4, 4, 4, 924);
  const auto q = data::random_int_vectors(1, 4, 4, 925).front();

  serve::EngineIndex engine_index;
  engine_index.configure(DistanceMetric::kHamming, 2);
  engine_index.store(db);
  arch::BankedOptions banked_opt;
  banked_opt.bank_rows = 2;
  serve::BankedIndex banked_index(banked_opt);
  banked_index.configure(DistanceMetric::kHamming, 2);
  banked_index.store(db);

  for (serve::AmIndex* index :
       {static_cast<serve::AmIndex*>(&engine_index),
        static_cast<serve::AmIndex*>(&banked_index)}) {
    EXPECT_EQ(index->search({q, 4, std::nullopt}).hits.size(), 4u);
    const auto receipt = index->remove(1);
    EXPECT_EQ(receipt.global_row, 1u);
    EXPECT_GT(receipt.cost.pulses, 0u);
    EXPECT_EQ(index->live_count(), 3u);
    EXPECT_EQ(index->stored_count(), 4u);
    // k now bounded by the live rows, not the physical slots.
    EXPECT_THROW(index->search({q, 4, std::nullopt}), std::invalid_argument);
    EXPECT_EQ(index->search({q, 3, std::nullopt}).hits.size(), 3u);
  }
}

TEST(ServeMutT, EmptyIndexIsATypedError) {
  serve::EngineIndex index;
  index.configure(DistanceMetric::kHamming, 2);
  const std::vector<int> q(4, 0);
  // Never stored: no k can be valid — typed, not "bad k".
  EXPECT_THROW(index.search({q, 1, std::nullopt}), serve::EmptyIndex);

  index.store(data::random_int_vectors(2, 4, 4, 926));
  index.remove(0);
  index.remove(1);
  // All deleted: same typed rejection for every k.
  EXPECT_THROW(index.search({q, 1, std::nullopt}), serve::EmptyIndex);
  EXPECT_THROW(index.search({q, 2, std::nullopt}), serve::EmptyIndex);
  EXPECT_THROW(index.validate_request({q, 1, std::nullopt}),
               serve::EmptyIndex);
  // Inserting through the freed slots revives serving.
  index.insert(std::vector<int>(4, 1));
  EXPECT_EQ(index.search({q, 1, std::nullopt}).hits.size(), 1u);
}

TEST(ServeMutT, PinnedOrdinalReplayAcrossDeletes) {
  // Nominal fidelity: no comparator noise, so a pinned replay after
  // deleting a non-hit row must reproduce the response exactly.
  arch::BankedOptions opt;
  opt.bank_rows = 3;
  opt.engine.fidelity = SearchFidelity::kNominal;
  serve::BankedIndex index(opt);
  index.configure(DistanceMetric::kHamming, 2);
  const auto db = data::random_int_vectors(6, 5, 4, 927);
  index.store(db);

  const auto q = data::random_int_vectors(1, 5, 4, 928).front();
  const serve::SearchRequest pinned{q, 2, std::uint64_t{11}};
  const auto before = index.search(pinned);
  // Delete a row outside the top-3: the last hit's margin references
  // the next-best remaining row, so the victim must not be it either.
  const auto top3 = index.search({q, 3, std::uint64_t{11}});
  std::size_t victim = 0;
  const auto in_top3 = [&](std::size_t row) {
    for (const auto& hit : top3.hits) {
      if (hit.global_row == row) return true;
    }
    return false;
  };
  while (in_top3(victim)) ++victim;
  index.remove(victim);
  expect_identical(index.search(pinned), before);
}

TEST(ServeMutT, SynchronousMutationWhileServedThrowsTyped) {
  serve::EngineIndex index;
  index.configure(DistanceMetric::kHamming, 2);
  const auto db = data::random_int_vectors(4, 4, 4, 929);
  index.store(db);
  const std::vector<int> q(4, 0);
  const std::vector<std::vector<int>> db2 = {{0, 1, 2, 3}};

  {
    serve::AsyncAmIndex async_index(index);
    // Every synchronous mutation (and ordinal-consuming serve) is a
    // typed error while the async front door owns the index.
    EXPECT_THROW(index.store(db2), serve::MutationWhileServed);
    EXPECT_THROW(index.configure(DistanceMetric::kManhattan, 2),
                 serve::MutationWhileServed);
    EXPECT_THROW(index.configure_composite(DistanceMetric::kHamming, 4),
                 serve::MutationWhileServed);
    EXPECT_THROW(index.insert(std::vector<int>(4, 1)),
                 serve::MutationWhileServed);
    EXPECT_THROW(index.remove(0), serve::MutationWhileServed);
    EXPECT_THROW(index.update(0, std::vector<int>(4, 1)),
                 serve::MutationWhileServed);
    EXPECT_THROW(index.search({q, 1, std::nullopt}),
                 serve::MutationWhileServed);
    const serve::SearchRequest requests[] = {{q, 1, std::nullopt}};
    EXPECT_THROW(index.search_batch(requests), serve::MutationWhileServed);
    // Even const ordinal-addressed reads: they would race the queued
    // writes outside the wrapper's serialization.
    EXPECT_THROW(index.search_at({q, 1, std::nullopt}, 0),
                 serve::MutationWhileServed);
    const std::uint64_t ordinals[] = {0};
    EXPECT_THROW(index.search_batch_at(requests, ordinals),
                 serve::MutationWhileServed);
    EXPECT_THROW(index.set_query_serial(0), serve::MutationWhileServed);
    // The async path itself stays open for both reads and writes.
    EXPECT_EQ(async_index.submit({q, 1, std::nullopt}).get().hits.size(),
              1u);
    EXPECT_EQ(async_index.submit_remove(3).get().global_row, 3u);
  }
  // Shutdown returns the index to synchronous use.
  EXPECT_EQ(index.live_count(), 3u);
  EXPECT_EQ(index.insert(std::vector<int>(4, 1)).global_row, 3u);
  EXPECT_EQ(index.search({q, 1, std::nullopt}).hits.size(), 1u);
}

// ------------------------------------------------------------- async --

enum class Backend { kEngine, kBanked };

class AsyncWriteParityT
    : public ::testing::TestWithParam<std::tuple<Backend, SearchFidelity>> {
 protected:
  static std::unique_ptr<serve::AmIndex> make_index(
      Backend backend, SearchFidelity fidelity,
      const std::vector<std::vector<int>>& db) {
    std::unique_ptr<serve::AmIndex> index;
    if (backend == Backend::kEngine) {
      core::FerexOptions opt;
      opt.fidelity = fidelity;
      index = std::make_unique<serve::EngineIndex>(opt);
    } else {
      arch::BankedOptions opt;
      opt.bank_rows = 3;
      opt.engine.fidelity = fidelity;
      index = std::make_unique<serve::BankedIndex>(opt);
    }
    index->configure(DistanceMetric::kHamming, 2);
    index->store(db);
    return index;
  }
};

TEST_P(AsyncWriteParityT, InterleavedWritesMatchTheSynchronousSequence) {
  const auto [backend, fidelity] = GetParam();
  const auto db = data::random_int_vectors(6, 5, 4, 930);
  const auto queries = data::random_int_vectors(8, 5, 4, 931);
  const auto fresh = data::random_int_vectors(3, 5, 4, 932);

  auto sync_index = make_index(backend, fidelity, db);
  auto async_backend = make_index(backend, fidelity, db);

  // The synchronous reference: ops applied strictly in order.
  std::vector<serve::SearchResponse> sync_responses;
  std::vector<serve::WriteReceipt> sync_receipts;
  const auto sync_ops = [&](serve::AmIndex& index) {
    sync_responses.push_back(index.search({queries[0], 2, std::nullopt}));
    sync_responses.push_back(index.search({queries[1], 1, std::nullopt}));
    sync_receipts.push_back(index.remove(2));
    sync_responses.push_back(index.search({queries[2], 1, std::nullopt}));
    sync_receipts.push_back(index.update(4, fresh[0]));
    sync_responses.push_back(index.search({queries[3], 3, std::nullopt}));
    sync_responses.push_back(index.search({queries[4], 1, std::nullopt}));
    sync_receipts.push_back(index.update(2, fresh[1]));  // revives slot 2
    sync_responses.push_back(index.search({queries[5], 2, std::nullopt}));
    sync_receipts.push_back(index.remove(0));
    sync_responses.push_back(index.search({queries[6], 1, std::nullopt}));
    sync_receipts.push_back(index.insert(fresh[2]));     // reuses slot 0
    sync_responses.push_back(index.search({queries[7], 6, std::nullopt}));
  };
  sync_ops(*sync_index);

  // The async run submits the same sequence up front: multiple
  // dispatchers, small batches, and a linger force coalescing around
  // the write barriers, yet responses must be bit-identical.
  serve::AsyncOptions options;
  options.dispatchers = 3;
  options.max_batch = 4;
  options.max_wait_us = 200;
  serve::AsyncAmIndex async_index(*async_backend, options);
  std::vector<std::future<serve::SearchResponse>> searches;
  std::vector<std::future<serve::WriteReceipt>> writes;
  searches.push_back(async_index.submit({queries[0], 2, std::nullopt}));
  searches.push_back(async_index.submit({queries[1], 1, std::nullopt}));
  writes.push_back(async_index.submit_remove(2));
  searches.push_back(async_index.submit({queries[2], 1, std::nullopt}));
  writes.push_back(async_index.submit_update(4, fresh[0]));
  searches.push_back(async_index.submit({queries[3], 3, std::nullopt}));
  searches.push_back(async_index.submit({queries[4], 1, std::nullopt}));
  writes.push_back(async_index.submit_update(2, fresh[1]));
  searches.push_back(async_index.submit({queries[5], 2, std::nullopt}));
  writes.push_back(async_index.submit_remove(0));
  searches.push_back(async_index.submit({queries[6], 1, std::nullopt}));
  writes.push_back(async_index.submit_insert(fresh[2]));
  searches.push_back(async_index.submit({queries[7], 6, std::nullopt}));

  for (std::size_t i = 0; i < searches.size(); ++i) {
    expect_identical(searches[i].get(), sync_responses[i]);
  }
  for (std::size_t i = 0; i < writes.size(); ++i) {
    const auto receipt = writes[i].get();
    EXPECT_EQ(receipt.global_row, sync_receipts[i].global_row);
    EXPECT_EQ(receipt.bank, sync_receipts[i].bank);
    EXPECT_EQ(receipt.cost.pulses, sync_receipts[i].cost.pulses);
    EXPECT_DOUBLE_EQ(receipt.cost.energy_j, sync_receipts[i].cost.energy_j);
  }
  const auto stats = async_index.stats();
  EXPECT_EQ(stats.write.submitted, writes.size());
  EXPECT_EQ(stats.write.served, writes.size());
  EXPECT_EQ(stats.search.served, searches.size());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AsyncWriteParityT,
    ::testing::Combine(::testing::Values(Backend::kEngine, Backend::kBanked),
                       ::testing::Values(SearchFidelity::kCircuit,
                                         SearchFidelity::kNominal)),
    [](const auto& info) {
      const Backend backend = std::get<0>(info.param);
      const SearchFidelity fidelity = std::get<1>(info.param);
      return std::string(backend == Backend::kEngine ? "Engine" : "Banked") +
             (fidelity == SearchFidelity::kCircuit ? "Circuit" : "Nominal");
    });

TEST(AsyncWriteT, FailedWriteSurfacesThroughFutureAndAdvancesTheEpoch) {
  serve::EngineIndex index;
  index.configure(DistanceMetric::kHamming, 2);
  const auto db = data::random_int_vectors(4, 4, 4, 933);
  index.store(db);
  const auto q = data::random_int_vectors(1, 4, 4, 934).front();

  serve::EngineIndex twin;
  twin.configure(DistanceMetric::kHamming, 2);
  twin.store(db);
  twin.remove(1);
  const auto expected = twin.search({q, 3, std::nullopt});

  serve::AsyncAmIndex async_index(index);
  auto first = async_index.submit_remove(1);
  auto second = async_index.submit_remove(1);  // will be a double remove
  auto after = async_index.submit({q, 3, std::nullopt});
  EXPECT_EQ(first.get().global_row, 1u);
  EXPECT_THROW(second.get(), std::logic_error);
  // The failed write was a no-op (as in the synchronous sequence); the
  // search behind it still ran against the once-removed index.
  expect_identical(after.get(), expected);
}

TEST(AsyncWriteT, SubmitValidationRejectsMalformedWritesConsumingNothing) {
  serve::EngineIndex index;
  index.configure(DistanceMetric::kHamming, 2);
  index.store(data::random_int_vectors(3, 4, 4, 935));
  serve::AsyncAmIndex async_index(index);
  EXPECT_THROW(async_index.submit_remove(3), std::out_of_range);
  EXPECT_THROW(async_index.submit_update(0, std::vector<int>(5, 1)),
               std::invalid_argument);
  EXPECT_THROW(async_index.submit_update(9, std::vector<int>(4, 1)),
               std::out_of_range);
  const auto stats = async_index.stats();
  EXPECT_EQ(stats.write.submitted, 0u);
  EXPECT_EQ(stats.search.submitted, 0u);
}

TEST(AsyncWriteT, AllRemovedIndexRejectsSearchAtSubmit) {
  serve::EngineIndex index;
  index.configure(DistanceMetric::kHamming, 2);
  index.store(data::random_int_vectors(2, 4, 4, 936));
  serve::AsyncAmIndex async_index(index);
  async_index.submit_remove(0).get();
  async_index.submit_remove(1).get();  // applied: live_count is now 0
  const std::vector<int> q(4, 0);
  EXPECT_THROW(async_index.submit({q, 1, std::nullopt}), serve::EmptyIndex);
}

TEST(AsyncWriteT, QueuedFirstInsertEstablishesIndexForLaterSearches) {
  // An empty index comes alive through the queue: the search submitted
  // behind the first insert must not be rejected at submit (whether the
  // insert has applied yet is a race; the sequence is valid either way).
  serve::EngineIndex index;
  index.configure(DistanceMetric::kHamming, 2);
  serve::AsyncAmIndex async_index(index);
  auto inserted = async_index.submit_insert({1, 2, 3, 0});
  auto searched = async_index.submit({std::vector<int>(4, 0), 1,
                                      std::nullopt});
  EXPECT_EQ(inserted.get().global_row, 0u);
  EXPECT_EQ(searched.get().hits.size(), 1u);
}

TEST(AsyncWriteT, SecondWrapperOverAnOwnedIndexThrows) {
  serve::EngineIndex index;
  index.configure(DistanceMetric::kHamming, 2);
  index.store(data::random_int_vectors(3, 4, 4, 939));
  const std::vector<int> q(4, 0);

  serve::AsyncAmIndex first(index);
  // Exclusive ownership: a second wrapper would serve duplicate
  // ordinals and race the first one's dispatchers.
  EXPECT_THROW({ serve::AsyncAmIndex second(index); }, std::logic_error);
  // The failed claim left the first session fully intact.
  EXPECT_EQ(first.submit({q, 1, std::nullopt}).get().hits.size(), 1u);
  EXPECT_THROW(index.insert(std::vector<int>(4, 1)),
               serve::MutationWhileServed);
  first.shutdown();
  // ...and shutdown of the real owner releases the index as usual.
  EXPECT_EQ(index.search({q, 1, std::nullopt}).hits.size(), 1u);
}

TEST(AsyncWriteT, ConcurrentSearchersAndWritersDrainCleanly) {
  // The TSan target: several threads submitting searches race a thread
  // submitting updates; the epoch gates serialize execution, every
  // future completes, and no access to the index is unsynchronized.
  serve::EngineIndex index;
  index.configure(DistanceMetric::kHamming, 2);
  const auto db = data::random_int_vectors(8, 4, 4, 937);
  index.store(db);
  const auto queries = data::random_int_vectors(4, 4, 4, 938);

  serve::AsyncOptions options;
  options.dispatchers = 2;
  options.max_batch = 4;
  options.max_wait_us = 50;
  options.queue_depth = 4096;
  serve::AsyncAmIndex async_index(index, options);

  constexpr int kSearchThreads = 3;
  constexpr int kSearchesPerThread = 40;
  constexpr int kWrites = 30;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> search_ok{0};
  for (int t = 0; t < kSearchThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kSearchesPerThread; ++i) {
        try {
          auto future = async_index.submit(
              {queries[(t + i) % queries.size()], 2, std::nullopt});
          if (future.get().hits.size() == 2) {
            search_ok.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const serve::Overloaded&) {
        }
      }
    });
  }
  threads.emplace_back([&] {
    // Updates only (always valid on a live slot), cycling the rows.
    for (int i = 0; i < kWrites; ++i) {
      try {
        async_index.submit_update(static_cast<std::size_t>(i % 8),
                                  std::vector<int>(4, i % 4))
            .get();
      } catch (const serve::Overloaded&) {
      }
    }
  });
  for (auto& thread : threads) thread.join();
  async_index.shutdown();

  const auto stats = async_index.stats();
  EXPECT_EQ(stats.search.served, stats.search.submitted);
  EXPECT_EQ(stats.write.served, stats.write.submitted);
  EXPECT_EQ(search_ok.load(), stats.search.served);
  EXPECT_EQ(index.live_count(), 8u);
}

}  // namespace
}  // namespace ferex
