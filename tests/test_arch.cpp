// Unit + integration tests for the banked multi-macro architecture.
#include <gtest/gtest.h>

#include "arch/banked_am.hpp"
#include "ml/knn.hpp"
#include "util/rng.hpp"

namespace ferex::arch {
namespace {

using csp::DistanceMetric;

BankedOptions exact_banked(std::size_t bank_rows) {
  BankedOptions opt;
  opt.bank_rows = bank_rows;
  opt.engine.circuit.variation.enabled = false;
  opt.engine.circuit.fet.ss_mv_per_dec = 15.0;
  opt.engine.circuit.opamp.output_res_ohm = 0.0;
  opt.engine.lta.offset_sigma_rel = 0.0;
  return opt;
}

std::vector<std::vector<int>> random_db(std::size_t rows, std::size_t dims,
                                        int levels, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<int>> db(rows, std::vector<int>(dims));
  for (auto& row : db) {
    for (auto& v : row) v = static_cast<int>(rng.uniform_below(levels));
  }
  return db;
}

TEST(BankedAmT, PartitionsRowsAcrossBanks) {
  BankedAm am(exact_banked(8));
  am.configure(DistanceMetric::kHamming, 2);
  am.store(random_db(20, 6, 4, 1));
  EXPECT_EQ(am.bank_count(), 3u);  // 8 + 8 + 4
  EXPECT_EQ(am.stored_count(), 20u);
}

TEST(BankedAmT, SearchAgreesWithSingleMacro) {
  const auto db = random_db(30, 10, 4, 2);
  BankedAm banked(exact_banked(7));
  banked.configure(DistanceMetric::kManhattan, 2);
  banked.store(db);

  core::FerexOptions single_opt = exact_banked(1).engine;
  core::FerexEngine single(single_opt);
  single.configure(DistanceMetric::kManhattan, 2);
  single.store(db);

  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> query(10);
    for (auto& v : query) v = static_cast<int>(rng.uniform_below(4));
    const auto banked_result = banked.search(query);
    const auto single_result = single.search(query);
    // Winning distances must agree (indices can differ on ties).
    EXPECT_EQ(ml::vector_distance(DistanceMetric::kManhattan, query,
                                  db[banked_result.nearest]),
              ml::vector_distance(DistanceMetric::kManhattan, query,
                                  db[single_result.nearest]));
  }
}

TEST(BankedAmT, SearchKMatchesSoftwareRanks) {
  const auto db = random_db(25, 8, 4, 4);
  util::Matrix<int> db_matrix(25, 8, 0);
  for (std::size_t r = 0; r < 25; ++r) {
    for (std::size_t d = 0; d < 8; ++d) db_matrix.at(r, d) = db[r][d];
  }
  BankedAm am(exact_banked(6));
  am.configure(DistanceMetric::kHamming, 2);
  am.store(db);

  util::Rng rng(5);
  std::vector<int> query(8);
  for (auto& v : query) v = static_cast<int>(rng.uniform_below(4));
  const auto hw = am.search_k(query, 5);
  const auto sw = ml::knn_indices(DistanceMetric::kHamming, db_matrix, query, 5);
  ASSERT_EQ(hw.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ml::vector_distance(DistanceMetric::kHamming, query, db[hw[i]]),
              ml::vector_distance(DistanceMetric::kHamming, query, db[sw[i]]));
  }
}

TEST(BankedAmT, DelayGrowsSlowlyEnergyGrowsLinearlyWithBanks) {
  const auto small_db = random_db(16, 32, 4, 6);
  const auto large_db = random_db(128, 32, 4, 6);
  BankedAm small(exact_banked(16)), large(exact_banked(16));
  for (auto* am : {&small, &large}) am->configure(DistanceMetric::kHamming, 2);
  small.store(small_db);
  large.store(large_db);
  ASSERT_EQ(small.bank_count(), 1u);
  ASSERT_EQ(large.bank_count(), 8u);
  // Banks fire in parallel: delay grows only by the global stage.
  EXPECT_LT(large.search_delay_s(), small.search_delay_s() * 1.8);
  // Energy: all banks burn.
  EXPECT_GT(large.search_energy_j(), small.search_energy_j() * 6.0);
}

TEST(BankedAmT, WorksWithCompositeEncodingAcrossBanks) {
  const auto db = random_db(12, 6, 8, 7);  // 3-bit values
  BankedAm am(exact_banked(5));
  // configure() on BankedAm is monolithic; composite is reached through
  // the engine options at store time — emulate via per-bank configure.
  am.configure(DistanceMetric::kHamming, 3);
  // 3-bit monolithic is infeasible: store must throw through the engine.
  EXPECT_THROW(am.store(db), std::runtime_error);
}

TEST(BankedAmT, LifecycleGuards) {
  BankedAm am(exact_banked(4));
  const std::vector<int> q{0};
  EXPECT_THROW(am.search(q), std::logic_error);
  EXPECT_THROW(am.store({{0}}), std::logic_error);  // configure first
  am.configure(DistanceMetric::kHamming, 1);
  EXPECT_THROW(am.store({}), std::invalid_argument);
  am.store({{0, 1}, {1, 0}, {1, 1}});
  EXPECT_THROW(am.search_k(std::vector<int>{0, 1}, 0), std::invalid_argument);
  EXPECT_THROW(am.search_k(std::vector<int>{0, 1}, 9), std::invalid_argument);
  EXPECT_THROW(BankedAm(BankedOptions{.bank_rows = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ferex::arch
