// Unit + property tests for the composite (digit-decomposed) encoding
// path: codecs, composite distance exactness at bit widths the monolithic
// CSP cannot reach, and the engine integration.
#include <gtest/gtest.h>

#include "core/ferex.hpp"
#include "encode/composite.hpp"
#include "ml/knn.hpp"
#include "util/rng.hpp"

namespace ferex::encode {
namespace {

using csp::DistanceMetric;

TEST(ValueCodecT, BitSlicedDigitsAreBinaryExpansion) {
  const auto codec = ValueCodec::bit_sliced(3);
  EXPECT_EQ(codec.logical_levels(), 8u);
  EXPECT_EQ(codec.subcells(), 3u);
  EXPECT_EQ(codec.digit(5, 0), 1);  // 5 = 101b, LSB first
  EXPECT_EQ(codec.digit(5, 1), 0);
  EXPECT_EQ(codec.digit(5, 2), 1);
}

TEST(ValueCodecT, ThermometerDigitsAreMonotone) {
  const auto codec = ValueCodec::thermometer(2);
  EXPECT_EQ(codec.logical_levels(), 4u);
  EXPECT_EQ(codec.subcells(), 3u);
  // value v has exactly v leading ones.
  for (int v = 0; v < 4; ++v) {
    int ones = 0;
    for (std::size_t t = 0; t < 3; ++t) ones += codec.digit(v, t);
    EXPECT_EQ(ones, v);
    // ...and they are contiguous from digit 0.
    for (std::size_t t = 1; t < 3; ++t) {
      EXPECT_GE(codec.digit(v, t - 1), codec.digit(v, t));
    }
  }
}

TEST(ValueCodecT, ExpandConcatenatesPerElement) {
  const auto codec = ValueCodec::bit_sliced(2);
  const std::vector<int> logical{3, 0, 1};
  const auto physical = codec.expand(logical);
  EXPECT_EQ(physical, (std::vector<int>{1, 1, 0, 0, 1, 0}));
}

TEST(ValueCodecT, IdentityIsPassThrough) {
  const auto codec = ValueCodec::identity(4);
  EXPECT_EQ(codec.subcells(), 1u);
  const std::vector<int> v{2, 0, 3};
  EXPECT_EQ(codec.expand(v), v);
}

TEST(ValueCodecT, RejectsBadArguments) {
  EXPECT_THROW(ValueCodec::bit_sliced(0), std::invalid_argument);
  EXPECT_THROW(ValueCodec::bit_sliced(9), std::invalid_argument);
  EXPECT_THROW(ValueCodec::thermometer(7), std::invalid_argument);
  const auto codec = ValueCodec::bit_sliced(2);
  EXPECT_THROW(codec.digit(4, 0), std::out_of_range);
  EXPECT_THROW(codec.digit(-1, 0), std::out_of_range);
}

TEST(CompositeEncodingT, EuclideanIsNotSeparable) {
  EXPECT_FALSE(
      make_composite_encoding(DistanceMetric::kEuclideanSquared, 2));
}

// Property: for every (metric, bits) in the separable families, the
// composite cell's distance equals the reference metric for all value
// pairs. These include widths where the monolithic CSP is infeasible
// within any practical budget (3+ bits).
struct CompositeCase {
  DistanceMetric metric;
  int bits;
};

class CompositeProperty : public ::testing::TestWithParam<CompositeCase> {};

TEST_P(CompositeProperty, DistanceExactForAllValuePairs) {
  const auto& p = GetParam();
  const auto composite = make_composite_encoding(p.metric, p.bits);
  ASSERT_TRUE(composite.has_value());
  const int levels = 1 << p.bits;
  for (int a = 0; a < levels; ++a) {
    for (int b = 0; b < levels; ++b) {
      EXPECT_EQ(composite->nominal_distance(a, b),
                csp::reference_distance(p.metric, a, b))
          << csp::to_string(p.metric) << " bits=" << p.bits << " (" << a
          << "," << b << ")";
    }
  }
}

TEST_P(CompositeProperty, CellGrowthIsLinearNotExponential) {
  const auto& p = GetParam();
  const auto composite = make_composite_encoding(p.metric, p.bits);
  ASSERT_TRUE(composite.has_value());
  const std::size_t per_subcell = composite->base.fefets_per_cell();
  const std::size_t expected_subcells =
      p.metric == DistanceMetric::kHamming
          ? static_cast<std::size_t>(p.bits)
          : (std::size_t{1} << p.bits) - 1;
  EXPECT_EQ(composite->codec.subcells(), expected_subcells);
  EXPECT_EQ(composite->fefets_per_element(),
            per_subcell * expected_subcells);
}

INSTANTIATE_TEST_SUITE_P(
    SeparableMetrics, CompositeProperty,
    ::testing::Values(CompositeCase{DistanceMetric::kHamming, 1},
                      CompositeCase{DistanceMetric::kHamming, 2},
                      CompositeCase{DistanceMetric::kHamming, 3},
                      CompositeCase{DistanceMetric::kHamming, 4},
                      CompositeCase{DistanceMetric::kHamming, 6},
                      CompositeCase{DistanceMetric::kHamming, 8},
                      CompositeCase{DistanceMetric::kManhattan, 1},
                      CompositeCase{DistanceMetric::kManhattan, 2},
                      CompositeCase{DistanceMetric::kManhattan, 3},
                      CompositeCase{DistanceMetric::kManhattan, 4},
                      CompositeCase{DistanceMetric::kManhattan, 5}),
    [](const auto& param_info) {
      return csp::to_string(param_info.param.metric) +
             std::to_string(param_info.param.bits) + "bit";
    });

// ------------------------------------------------ engine integration ---

core::FerexOptions exact_options() {
  core::FerexOptions opt;
  opt.circuit.variation.enabled = false;
  opt.circuit.fet.ss_mv_per_dec = 15.0;
  opt.circuit.opamp.output_res_ohm = 0.0;
  opt.lta.offset_sigma_rel = 0.0;
  return opt;
}

TEST(CompositeEngine, ThreeBitHammingSearchMatchesSoftware) {
  core::FerexEngine engine(exact_options());
  engine.configure_composite(DistanceMetric::kHamming, 3);
  ASSERT_NE(engine.codec(), nullptr);
  EXPECT_EQ(engine.codec()->subcells(), 3u);

  util::Rng rng(5);
  const std::size_t rows = 10, dims = 12;
  std::vector<std::vector<int>> db(rows, std::vector<int>(dims));
  for (auto& row : db) {
    for (auto& v : row) v = static_cast<int>(rng.uniform_below(8));
  }
  engine.store(db);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<int> query(dims);
    for (auto& v : query) v = static_cast<int>(rng.uniform_below(8));
    const auto result = engine.search(query);
    long long best = std::numeric_limits<long long>::max();
    for (const auto& row : db) {
      best = std::min(best,
                      ml::vector_distance(DistanceMetric::kHamming, query, row));
    }
    EXPECT_EQ(ml::vector_distance(DistanceMetric::kHamming, query,
                                  db[result.nearest]),
              best);
    EXPECT_EQ(result.nominal_distance, best);
  }
}

TEST(CompositeEngine, FourBitManhattanCircuitCurrentsExact) {
  core::FerexEngine engine(exact_options());
  engine.configure_composite(DistanceMetric::kManhattan, 4);
  ASSERT_NE(engine.codec(), nullptr);
  EXPECT_EQ(engine.codec()->subcells(), 15u);

  util::Rng rng(6);
  const std::size_t rows = 6, dims = 8;
  std::vector<std::vector<int>> db(rows, std::vector<int>(dims));
  for (auto& row : db) {
    for (auto& v : row) v = static_cast<int>(rng.uniform_below(16));
  }
  engine.store(db);
  std::vector<int> query(dims);
  for (auto& v : query) v = static_cast<int>(rng.uniform_below(16));
  const auto currents = engine.row_currents(query);
  for (std::size_t r = 0; r < rows; ++r) {
    const double sensed = currents[r] / engine.sense_unit();
    EXPECT_NEAR(sensed,
                static_cast<double>(ml::vector_distance(
                    DistanceMetric::kManhattan, query, db[r])),
                0.08);
  }
}

TEST(CompositeEngine, ReconfigureBetweenMonolithicAndComposite) {
  core::FerexEngine engine(exact_options());
  engine.configure(DistanceMetric::kHamming, 2);  // monolithic
  engine.store({{0, 1}, {3, 2}});
  EXPECT_EQ(engine.codec(), nullptr);
  const std::vector<int> q{0, 2};
  const auto mono = engine.search(q).nominal_distance;

  engine.configure_composite(DistanceMetric::kHamming, 2);  // composite
  ASSERT_NE(engine.codec(), nullptr);
  const auto comp = engine.search(q).nominal_distance;
  EXPECT_EQ(mono, comp);  // same metric, same data, same answer

  engine.configure(DistanceMetric::kHamming, 2);  // and back
  EXPECT_EQ(engine.codec(), nullptr);
  EXPECT_EQ(engine.search(q).nominal_distance, mono);
}

TEST(CompositeEngine, EuclideanCompositeThrows) {
  core::FerexEngine engine(exact_options());
  EXPECT_THROW(engine.configure_composite(DistanceMetric::kEuclideanSquared, 3),
               std::runtime_error);
}

}  // namespace
}  // namespace ferex::encode
