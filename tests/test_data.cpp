// Unit tests for the synthetic dataset generators (Table III substitutes).
#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "ml/knn.hpp"
#include "ml/quantize.hpp"
#include "util/stats.hpp"

namespace ferex::data {
namespace {

TEST(Datasets, DeterministicForSameSeed) {
  SyntheticSpec spec;
  spec.train_size = 64;
  spec.test_size = 16;
  const auto a = make_synthetic(spec, 42);
  const auto b = make_synthetic(spec, 42);
  EXPECT_EQ(a.train_x, b.train_x);
  EXPECT_EQ(a.test_y, b.test_y);
  const auto c = make_synthetic(spec, 43);
  EXPECT_NE(a.train_x, c.train_x);
}

TEST(Datasets, ShapesMatchSpec) {
  SyntheticSpec spec;
  spec.feature_count = 33;
  spec.class_count = 5;
  spec.train_size = 100;
  spec.test_size = 20;
  const auto ds = make_synthetic(spec, 1);
  EXPECT_EQ(ds.train_x.rows(), 100u);
  EXPECT_EQ(ds.train_x.cols(), 33u);
  EXPECT_EQ(ds.train_y.size(), 100u);
  EXPECT_EQ(ds.test_x.rows(), 20u);
  EXPECT_EQ(ds.feature_count, 33u);
  EXPECT_EQ(ds.class_count, 5u);
}

TEST(Datasets, ClassesAreBalanced) {
  SyntheticSpec spec;
  spec.class_count = 4;
  spec.train_size = 100;
  const auto ds = make_synthetic(spec, 2);
  std::vector<int> counts(4, 0);
  for (int y : ds.train_y) ++counts[y];
  for (int c : counts) EXPECT_NEAR(c, 25, 1);
}

TEST(Datasets, PresetsMatchTableIIIShapes) {
  const auto isolet = isolet_like();
  EXPECT_EQ(isolet.feature_count, 617u);
  EXPECT_EQ(isolet.class_count, 26u);
  const auto ucihar = ucihar_like();
  EXPECT_EQ(ucihar.feature_count, 561u);
  EXPECT_EQ(ucihar.class_count, 12u);
  const auto mnist = mnist_like();
  EXPECT_EQ(mnist.feature_count, 784u);
  EXPECT_EQ(mnist.class_count, 10u);
}

TEST(Datasets, SeparationControlsDifficulty) {
  // Higher separation must give higher 1-NN accuracy.
  SyntheticSpec easy, hard;
  easy.feature_count = hard.feature_count = 32;
  easy.class_count = hard.class_count = 4;
  easy.train_size = hard.train_size = 200;
  easy.test_size = hard.test_size = 100;
  easy.class_separation = 1.5;
  hard.class_separation = 0.15;
  const auto eval = [](const Dataset& ds) {
    const auto q = ml::Quantizer::fit(ds.train_x, 2);
    const ml::KnnClassifier knn(q.quantize(ds.train_x), ds.train_y);
    return knn.evaluate(csp::DistanceMetric::kManhattan, q.quantize(ds.test_x),
                        ds.test_y, 3);
  };
  const double acc_easy = eval(make_synthetic(easy, 3));
  const double acc_hard = eval(make_synthetic(hard, 3));
  EXPECT_GT(acc_easy, acc_hard + 0.15);
  EXPECT_GT(acc_easy, 0.9);
}

TEST(Datasets, OutliersInjectHeavyTails) {
  SyntheticSpec clean, noisy;
  clean.train_size = noisy.train_size = 500;
  clean.outlier_probability = 0.0;
  noisy.outlier_probability = 0.1;
  const auto ds_clean = make_synthetic(clean, 4);
  const auto ds_noisy = make_synthetic(noisy, 4);
  const double max_clean =
      util::max_of(std::span<const double>(ds_clean.train_x.flat()));
  const double max_noisy =
      util::max_of(std::span<const double>(ds_noisy.train_x.flat()));
  EXPECT_GT(max_noisy, max_clean);
}

TEST(Datasets, RejectsDegenerateSpecs) {
  SyntheticSpec spec;
  spec.class_count = 0;
  EXPECT_THROW(make_synthetic(spec, 1), std::invalid_argument);
  SyntheticSpec spec2;
  spec2.modes_per_class = 0;
  EXPECT_THROW(make_synthetic(spec2, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ferex::data
