// Unit tests for the write/erase path: program-and-verify cost model,
// half-voltage write-inhibit integrity (Ni EDL'18 disturb scenario) and
// WTA (best-match) sensing.
#include <gtest/gtest.h>

#include "circuit/lta.hpp"
#include "circuit/write.hpp"
#include "util/rng.hpp"

namespace ferex::circuit {
namespace {

TEST(WriteDriver, ProgramRowReportsPositiveCost) {
  const WriteDriver driver;
  const std::vector<double> targets{0.5, 1.0, 1.5};
  const auto cost = driver.program_row(targets);
  EXPECT_GT(cost.pulses, 0u);
  EXPECT_GT(cost.latency_s, 0.0);
  EXPECT_GT(cost.energy_j, 0.0);
}

TEST(WriteDriver, TighterToleranceCostsMorePulses) {
  WriteDriverParams loose, tight;
  loose.vth_tolerance_v = 50e-3;
  tight.vth_tolerance_v = 1e-3;
  const std::vector<double> targets{0.7, 1.1, 1.4, 0.9};
  const auto loose_cost = WriteDriver(loose).program_row(targets);
  const auto tight_cost = WriteDriver(tight).program_row(targets);
  EXPECT_LE(loose_cost.pulses, tight_cost.pulses);
}

TEST(WriteDriver, ArrayProgrammingScalesWithRows) {
  const WriteDriver driver;
  const std::vector<double> targets{0.6, 1.2};
  const auto one = driver.program_array(1, targets);
  const auto many = driver.program_array(16, targets);
  EXPECT_NEAR(many.latency_s / one.latency_s, 16.0, 0.01);
  EXPECT_NEAR(many.energy_j / one.energy_j, 16.0, 0.01);
}

TEST(WriteDriver, HalfVoltageInhibitIsDisturbFree) {
  // The core integrity claim of the write scheme (Sec. III-A): millions
  // of half-voltage exposures must not move a victim's Vth, because
  // Vwrite/2 is below the coercive voltage.
  const WriteDriver driver;
  const auto report = driver.disturb_after(1'000'000);
  EXPECT_DOUBLE_EQ(report.max_vth_drift_v, 0.0);
  EXPECT_TRUE(report.disturb_free);
  EXPECT_LT(report.inhibit_voltage_v,
            driver.params().device.coercive_v);
}

TEST(WriteDriver, FullVoltageWouldDisturb) {
  // Sanity inverse: if the inhibit voltage exceeded the coercive voltage
  // the scheme would fail — verify the model can express that failure.
  WriteDriverParams params;
  params.device.coercive_v = params.device.write_v / 2.0 - 0.1;
  const WriteDriver driver(params);
  const auto report = driver.disturb_after(100);
  EXPECT_GT(report.max_vth_drift_v, 0.0);
  EXPECT_FALSE(report.disturb_free);
}

// -------------------------------------------------------------- WTA ---

TEST(WtaMode, DecideMaxPicksLargestCurrent) {
  const LtaCircuit lta;
  const std::vector<double> currents{3e-7, 9e-7, 2e-7};
  const auto d = lta.decide_max(currents, 1e-7, nullptr);
  EXPECT_EQ(d.winner, 1u);
  EXPECT_DOUBLE_EQ(d.winner_current_a, 9e-7);
}

TEST(WtaMode, NoiseSymmetricWithLta) {
  LtaParams params;
  params.offset_sigma_rel = 0.4;
  const LtaCircuit lta(params);
  util::Rng rng(9);
  int wrong = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::vector<double> tight{1.0e-7, 1.1e-7};
    if (lta.decide_max(tight, 1e-7, &rng).winner != 1) ++wrong;
  }
  // Same flip statistics as the LTA at the same margin (see LtaT test).
  EXPECT_GT(wrong, 300);
  EXPECT_LT(wrong, 1200);
}

TEST(WtaMode, RejectsEmpty) {
  const LtaCircuit lta;
  EXPECT_THROW(lta.decide_max({}, 1e-7, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace ferex::circuit
