// Unit tests for the device substrate: FeFET I-V behaviour, voltage
// ladders, the 1FeFET1R current clamp, Preisach programming dynamics and
// the variation model.
#include <gtest/gtest.h>

#include "device/fefet.hpp"
#include "device/levels.hpp"
#include "device/one_fefet_one_r.hpp"
#include "device/preisach.hpp"
#include "device/variation.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ferex::device {
namespace {

TEST(FeFet, OnAboveThreshold) {
  FeFet fet(0.7);
  EXPECT_TRUE(fet.is_on(0.7));
  EXPECT_TRUE(fet.is_on(1.2));
  EXPECT_FALSE(fet.is_on(0.69));
  EXPECT_DOUBLE_EQ(fet.ids(1.0, 0.1), fet.params().isat_a);
}

TEST(FeFet, SubthresholdDecaysExponentially) {
  FeFet fet(1.0);
  const double i1 = fet.ids(0.90, 0.1);  // 100 mV below Vth
  const double i2 = fet.ids(0.84, 0.1);  // one SS (60 mV) further down
  EXPECT_LT(i1, fet.params().isat_a);
  EXPECT_NEAR(i1 / i2, 10.0, 0.5);  // 60 mV/dec = one decade
}

TEST(FeFet, LeakageFloor) {
  FeFet fet(1.8);
  EXPECT_DOUBLE_EQ(fet.ids(0.0, 0.1), fet.params().min_leak_a);
}

TEST(FeFet, ZeroVdsNoCurrent) {
  FeFet fet(0.5);
  EXPECT_DOUBLE_EQ(fet.ids(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(fet.ids(1.0, -0.1), 0.0);
}

TEST(FeFet, VthClampedToDeviceRange) {
  FeFet fet(5.0);
  EXPECT_DOUBLE_EQ(fet.vth(), fet.params().vth_max_v);
  fet.set_vth(-1.0);
  EXPECT_DOUBLE_EQ(fet.vth(), fet.params().vth_min_v);
}

TEST(VoltageLadder, InterleavingGivesStaircaseConduction) {
  const VoltageLadder ladder(3);
  // ON iff stored level < search level (Table II footnote).
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t s = 0; s < 3; ++s) {
      EXPECT_EQ(ladder.vsearch(s) > ladder.vth(t), t < s)
          << "t=" << t << " s=" << s;
      EXPECT_EQ(ladder.conducts(t, s), t < s);
    }
  }
}

TEST(VoltageLadder, MarginIsHalfStep) {
  const VoltageLadder ladder(4, 0.2, 0.5);
  EXPECT_DOUBLE_EQ(ladder.margin_v(), 0.25);
  // Vs1 sits exactly margin above Vt0 and margin below Vt1.
  EXPECT_NEAR(ladder.vsearch(1) - ladder.vth(0), 0.25, 1e-12);
  EXPECT_NEAR(ladder.vth(1) - ladder.vsearch(1), 0.25, 1e-12);
}

TEST(VoltageLadder, RejectsDegenerateArguments) {
  EXPECT_THROW(VoltageLadder(0), std::invalid_argument);
  EXPECT_THROW(VoltageLadder(3, 0.2, 0.0), std::invalid_argument);
  const VoltageLadder ladder(2);
  EXPECT_THROW(ladder.vth(2), std::out_of_range);
  EXPECT_THROW(ladder.vsearch(2), std::out_of_range);
}

TEST(OneFeFetOneR, ClampMakesCurrentVthIndependent) {
  // Two ON devices with very different Vth must carry identical current —
  // the resistor clamp is the paper's key device property.
  OneFeFetOneR low(0.3), high(1.0);
  const double i_low = low.current(1.4, 0.1);
  const double i_high = high.current(1.4, 0.1);
  EXPECT_DOUBLE_EQ(i_low, i_high);
  EXPECT_DOUBLE_EQ(i_low, 0.1 / 1e6);
}

TEST(OneFeFetOneR, CurrentIsIntegerMultipleOfUnit) {
  OneFeFetOneR cell(0.3);
  const double i1 = cell.current_at_multiple(1.4, 1);
  const double i2 = cell.current_at_multiple(1.4, 2);
  EXPECT_NEAR(i2 / i1, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(cell.current_at_multiple(1.4, 0), 0.0);
}

TEST(OneFeFetOneR, OffStateLeakIsNegligible) {
  OneFeFetOneR cell(1.5);
  const double on = cell.current(1.8, 0.1);
  const double off = cell.current(0.2, 0.1);
  EXPECT_GT(on / off, 1e3);
}

TEST(OneFeFetOneR, SaturationLimitsAtHighVds) {
  CellParams cp;
  cp.resistance_ohm = 10.0;  // tiny R: clamp exceeds Isat
  OneFeFetOneR cell(0.3, cp);
  EXPECT_DOUBLE_EQ(cell.current(1.4, 1.0), cell.fet().params().isat_a);
}

TEST(OneFeFetOneR, ResistanceOverrideScalesUnitCurrent) {
  OneFeFetOneR cell(0.3);
  cell.set_resistance(2e6);
  EXPECT_DOUBLE_EQ(cell.current(1.4, 0.1), 0.1 / 2e6);
}

TEST(Preisach, ErasedStateIsHighVth) {
  PreisachFeFet fet;
  fet.erase();
  EXPECT_NEAR(fet.vth(), fet.params().vth_high_v, 1e-9);
}

TEST(Preisach, FullWritePulseLowersVth) {
  PreisachFeFet fet;
  fet.erase();
  fet.apply_pulse(4.0, 10e-6);  // long saturating pulse
  EXPECT_LT(fet.vth(), fet.params().vth_low_v + 0.2);
}

TEST(Preisach, LongerPulseShiftsVthFurther) {
  PreisachFeFet a, b;
  a.erase();
  b.erase();
  a.apply_pulse(4.0, 50e-9);
  b.apply_pulse(4.0, 500e-9);
  EXPECT_GT(a.vth(), b.vth());  // paper: longer pulse -> lower Vth
}

TEST(Preisach, SubCoercivePulseIsInhibited) {
  // Half-voltage write-inhibit scheme (Sec. III-A): unselected rows see
  // Vwrite/2, which must not disturb the stored state.
  PreisachFeFet fet;
  fet.erase();
  const double before = fet.vth();
  for (int i = 0; i < 1000; ++i) fet.apply_pulse(fet.params().write_v / 2.0, 500e-9);
  EXPECT_DOUBLE_EQ(fet.vth(), before);
}

TEST(Preisach, ProgramToVthConvergesAcrossWindow) {
  PreisachFeFet fet;
  for (double target : {0.4, 0.7, 1.0, 1.3, 1.6}) {
    fet.program_to_vth(target, 5e-3);
    EXPECT_NEAR(fet.vth(), target, 5e-3) << "target " << target;
  }
}

TEST(Preisach, PolarizationStaysBounded) {
  PreisachFeFet fet;
  for (int i = 0; i < 100; ++i) fet.apply_pulse(6.0, 1e-3);
  EXPECT_LE(fet.polarization(), 1.0);
  for (int i = 0; i < 100; ++i) fet.apply_pulse(-6.0, 1e-3);
  EXPECT_GE(fet.polarization(), -1.0);
}

TEST(Variation, MatchesPaperSigmas) {
  VariationModel model;
  util::Rng rng(123);
  util::RunningStats vth_stats, r_stats;
  for (int i = 0; i < 40000; ++i) {
    vth_stats.add(model.sample_vth_offset(rng));
    r_stats.add(model.sample_r_multiplier(rng));
  }
  EXPECT_NEAR(vth_stats.stddev(), 54e-3, 2e-3);  // 54 mV (Sec. IV-A)
  EXPECT_NEAR(r_stats.mean(), 1.0, 0.01);
  EXPECT_NEAR(r_stats.stddev(), 0.08, 0.005);    // 8 % (Sec. IV-A)
}

TEST(Variation, DisabledIsExactlyNominal) {
  VariationParams params;
  params.enabled = false;
  VariationModel model(params);
  util::Rng rng(5);
  EXPECT_DOUBLE_EQ(model.sample_vth_offset(rng), 0.0);
  EXPECT_DOUBLE_EQ(model.sample_r_multiplier(rng), 1.0);
}

TEST(Variation, ResistanceMultiplierStaysPositive) {
  VariationParams params;
  params.sigma_r_rel = 5.0;  // absurd spread to hit the clamp
  VariationModel model(params);
  util::Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(model.sample_r_multiplier(rng), 0.0);
  }
}

}  // namespace
}  // namespace ferex::device
