// Unit tests for the GPU roofline cost model.
#include <gtest/gtest.h>

#include "baseline/gpu_model.hpp"

namespace ferex::baseline {
namespace {

TEST(GpuModel, OverheadDominatesSmallBatches) {
  const GpuCostModel model;
  const auto cost = model.hdc_inference(1, 26, 2048);
  // One tiny query: latency is essentially the fixed overhead.
  const double overhead = model.params().framework_overhead_s +
                          3.0 * model.params().kernel_launch_s;
  EXPECT_GT(cost.latency_s, overhead);
  EXPECT_LT(cost.latency_s, overhead * 1.2);
}

TEST(GpuModel, BandwidthBoundAtLargeBatches) {
  const GpuCostModel model;
  const std::size_t batch = 100000, classes = 26, dim = 2048;
  const auto cost = model.hdc_inference(batch, classes, dim);
  const double bytes = static_cast<double>(batch) * dim * 4.0;
  const double t_mem_floor = bytes / model.params().mem_bandwidth_b_per_s;
  EXPECT_GT(cost.latency_s, t_mem_floor);
}

TEST(GpuModel, LatencyMonotoneInBatch) {
  const GpuCostModel model;
  double prev = 0.0;
  for (std::size_t batch : {1u, 10u, 100u, 1000u, 10000u}) {
    const auto cost = model.hdc_inference(batch, 26, 2048);
    EXPECT_GE(cost.latency_s, prev);
    prev = cost.latency_s;
  }
}

TEST(GpuModel, EnergyPositiveAndScales) {
  const GpuCostModel model;
  const auto small = model.hdc_inference(10, 26, 2048);
  const auto large = model.hdc_inference(10000, 26, 2048);
  EXPECT_GT(small.energy_j, 0.0);
  EXPECT_GT(large.energy_j, small.energy_j);
}

TEST(GpuModel, Int8HalvesTrafficVersusFp32) {
  const GpuCostModel model;
  const auto fp32 = model.hdc_inference(100000, 26, 2048, 4);
  const auto int8 = model.hdc_inference(100000, 26, 2048, 1);
  EXPECT_LT(int8.latency_s, fp32.latency_s);
}

}  // namespace
}  // namespace ferex::baseline
