// Tests for the AsyncAmIndex front door: coalesced async serving must
// be bit-identical to the synchronous path (ordinals pinned at submit),
// and the queue's lifecycle edges — admission rejection, shutdown
// draining, post-shutdown rejection, backend exceptions through the
// future — must all be deterministic and leak-free.
//
// Real-backend suites run against EngineIndex and BankedIndex at both
// fidelities; lifecycle edges use a gated stub backend so "dispatcher is
// busy" and "queue is full" are states the test controls, not races it
// hopes for.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "data/datasets.hpp"
#include "serve/async_index.hpp"
#include "serve/banked_index.hpp"
#include "serve/engine_index.hpp"

namespace ferex::serve {
namespace {

using csp::DistanceMetric;
using core::SearchFidelity;

SearchRequest req(std::vector<int> query, std::size_t k = 1) {
  SearchRequest r;
  r.query = std::move(query);
  r.k = k;
  return r;
}

void expect_bit_identical(const SearchResponse& a, const SearchResponse& b) {
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].global_row, b.hits[i].global_row);
    EXPECT_EQ(a.hits[i].bank, b.hits[i].bank);
    EXPECT_EQ(a.hits[i].sensed_current_a, b.hits[i].sensed_current_a);
    EXPECT_EQ(a.hits[i].margin_a, b.hits[i].margin_a);
    EXPECT_EQ(a.hits[i].nominal_distance, b.hits[i].nominal_distance);
  }
}

// ------------------------------------------------------------ parity --

enum class Backend { kEngine, kBanked };

class AsyncParityT
    : public ::testing::TestWithParam<std::tuple<Backend, SearchFidelity>> {
 protected:
  static constexpr std::size_t kRows = 24, kDims = 8, kAlphabet = 4;

  std::unique_ptr<AmIndex> make_index() const {
    const auto [backend, fidelity] = GetParam();
    const auto db = data::random_int_vectors(kRows, kDims, kAlphabet, 31);
    std::unique_ptr<AmIndex> index;
    if (backend == Backend::kEngine) {
      core::FerexOptions opt;
      opt.fidelity = fidelity;
      index = std::make_unique<EngineIndex>(opt);
    } else {
      arch::BankedOptions opt;
      opt.bank_rows = 8;  // three banks
      opt.engine.fidelity = fidelity;
      index = std::make_unique<BankedIndex>(opt);
    }
    index->configure(DistanceMetric::kHamming, 2);
    index->store(db);
    return index;
  }
};

TEST_P(AsyncParityT, CoalescedResultsBitIdenticalToSynchronousSearch) {
  auto sync_index = make_index();
  auto async_backend = make_index();
  const auto queries = data::random_int_vectors(32, kDims, kAlphabet, 32);

  // Coalescing-friendly options: a generous linger and batch cap so the
  // dispatcher fuses as much as it can. Whatever batches actually form,
  // results must match the synchronous index serving the same requests
  // in submission order.
  AsyncOptions options;
  options.max_batch = 8;
  options.max_wait_us = 2000;
  options.queue_depth = 64;
  AsyncAmIndex async_index(*async_backend, options);

  std::vector<std::future<SearchResponse>> futures;
  futures.reserve(queries.size());
  for (const auto& q : queries) {
    futures.push_back(async_index.submit(req(q, 3)));
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto async_response = futures[i].get();
    const auto sync_response = sync_index->search(req(queries[i], 3));
    expect_bit_identical(async_response, sync_response);
  }
  EXPECT_EQ(async_index.query_serial(), queries.size());
  const auto stats = async_index.stats();
  EXPECT_EQ(stats.search.submitted, queries.size());
  EXPECT_EQ(stats.search.served, queries.size());
  EXPECT_EQ(stats.search.queue_wait_us.count, queries.size());
  EXPECT_EQ(stats.search.end_to_end_us.count, queries.size());
}

TEST_P(AsyncParityT, SubmitBatchBitIdenticalToSynchronousBatch) {
  auto sync_index = make_index();
  auto async_backend = make_index();
  const auto queries = data::random_int_vectors(16, kDims, kAlphabet, 33);

  std::vector<SearchRequest> requests;
  for (const auto& q : queries) requests.push_back(req(q, 2));

  AsyncAmIndex async_index(*async_backend);
  auto futures = async_index.submit_batch(requests);
  const auto sync_responses = sync_index->search_batch(requests);
  ASSERT_EQ(futures.size(), sync_responses.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    expect_bit_identical(futures[i].get(), sync_responses[i]);
  }
}

TEST_P(AsyncParityT, PinnedOrdinalReplayMatchesConstSearchAt) {
  auto index = make_index();
  const auto queries = data::random_int_vectors(6, kDims, kAlphabet, 34);

  std::vector<SearchResponse> async_responses;
  {
    AsyncAmIndex async_index(*index);
    std::vector<std::future<SearchResponse>> futures;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      auto request = req(queries[i]);
      request.ordinal = 1000 + i;  // pinned: must not consume the serial
      futures.push_back(async_index.submit(std::move(request)));
    }
    for (auto& future : futures) async_responses.push_back(future.get());
    EXPECT_EQ(async_index.query_serial(), 0u);
  }
  // Replay after shutdown — while the wrapper owns the index, even the
  // const search_at is guarded (queued writes could race it).
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_bit_identical(async_responses[i],
                         index->search_at(req(queries[i]), 1000 + i));
  }
}

TEST_P(AsyncParityT, SerialHandoffContinuesStreamAcrossSessions) {
  auto sync_index = make_index();
  auto async_backend = make_index();
  const auto queries = data::random_int_vectors(10, kDims, kAlphabet, 35);

  // Synchronous traffic before the async session consumes ordinal 0 on
  // both twins.
  expect_bit_identical(async_backend->search(req(queries[0])),
                       sync_index->search(req(queries[0])));
  {
    AsyncAmIndex async_index(*async_backend);
    EXPECT_EQ(async_index.query_serial(), 1u);  // seeded, not reset
    std::vector<std::future<SearchResponse>> futures;
    for (std::size_t i = 1; i + 1 < queries.size(); ++i) {
      futures.push_back(async_index.submit(req(queries[i])));
    }
    for (std::size_t i = 1; i + 1 < queries.size(); ++i) {
      expect_bit_identical(futures[i - 1].get(),
                           sync_index->search(req(queries[i])));
    }
  }  // destructor hands the advanced serial back to the backend
  EXPECT_EQ(async_backend->query_serial(), queries.size() - 1);
  // Synchronous traffic after the session continues the same stream.
  expect_bit_identical(async_backend->search(req(queries.back())),
                       sync_index->search(req(queries.back())));
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndFidelities, AsyncParityT,
    ::testing::Combine(::testing::Values(Backend::kEngine, Backend::kBanked),
                       ::testing::Values(SearchFidelity::kCircuit,
                                         SearchFidelity::kNominal)),
    [](const auto& info) {
      const Backend backend = std::get<0>(info.param);
      const SearchFidelity fidelity = std::get<1>(info.param);
      return std::string(backend == Backend::kEngine ? "Engine" : "Banked") +
             (fidelity == SearchFidelity::kCircuit ? "Circuit" : "Nominal");
    });

// --------------------------------------------------------- lifecycle --

/// Gated stub backend: every search_core blocks while the gate is
/// closed (announcing itself first), so tests control exactly when the
/// dispatcher is busy and how deep the queue is. Responses encode the
/// ordinal so parity is still checkable.
class GatedIndex final : public AmIndex {
 public:
  std::size_t stored_count() const noexcept override { return 8; }
  std::size_t live_count() const noexcept override { return 8; }
  std::size_t dims() const noexcept override { return 2; }
  std::size_t bank_count() const noexcept override { return 1; }

  void close_gate() {
    std::lock_guard<std::mutex> lock(mutex_);
    gate_open_ = false;
  }

  void open_gate() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      gate_open_ = true;
    }
    gate_.notify_all();
  }

  /// Blocks until `count` search_core calls have announced themselves
  /// (entered the backend) since construction.
  void wait_entered(std::size_t count) {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [&] { return entered_ >= count; });
  }

  std::atomic<bool> throw_on_search{false};

 protected:
  void do_configure(csp::DistanceMetric, int) override {}
  void do_store(const std::vector<std::vector<int>>&) override {}
  WriteReceipt do_insert(std::span<const int>) override { return {}; }
  WriteReceipt do_remove(std::size_t row) override {
    WriteReceipt receipt;
    receipt.global_row = row;
    return receipt;
  }
  WriteReceipt do_update(std::size_t row, std::span<const int>) override {
    WriteReceipt receipt;
    receipt.global_row = row;
    return receipt;
  }
  SearchResponse search_core(std::span<const int>, std::size_t k,
                             std::uint64_t ordinal, bool) const override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++entered_;
      entered_cv_.notify_all();
      gate_.wait(lock, [&] { return gate_open_; });
    }
    if (throw_on_search.load()) {
      throw std::runtime_error("GatedIndex: injected backend failure");
    }
    SearchResponse response;
    response.hits.resize(k);
    response.hits.front().sensed_current_a = static_cast<double>(ordinal);
    return response;
  }

  void validate_backend_query(std::span<const int> query) const override {
    if (query.size() != dims()) {
      throw std::invalid_argument("GatedIndex: query.size() != dims");
    }
  }

  bool inner_fan_for_batch(std::size_t) const override { return false; }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable gate_;
  mutable std::condition_variable entered_cv_;
  mutable std::size_t entered_ = 0;
  bool gate_open_ = true;
};

AsyncOptions immediate_options(std::size_t queue_depth,
                               std::size_t max_batch = 8) {
  AsyncOptions options;
  options.queue_depth = queue_depth;
  options.max_batch = max_batch;
  options.max_wait_us = 0;  // no linger: dispatch whatever is queued
  return options;
}

TEST(AsyncLifecycleT, AdmissionControlRejectsWhenQueueIsFull) {
  GatedIndex backend;
  backend.close_gate();
  AsyncAmIndex async_index(backend, immediate_options(/*queue_depth=*/2,
                                                      /*max_batch=*/1));
  // First request occupies the dispatcher inside the gate; the queue
  // behind it is now empty and bounded at 2.
  auto blocked = async_index.submit(req({0, 1}));
  backend.wait_entered(1);
  auto queued_a = async_index.submit(req({0, 1}));
  auto queued_b = async_index.submit(req({0, 1}));
  EXPECT_THROW(async_index.submit(req({0, 1})), Overloaded);
  // The rejected submission consumed nothing: exactly three ordinals.
  EXPECT_EQ(async_index.query_serial(), 3u);

  backend.open_gate();
  EXPECT_EQ(blocked.get().hits.front().sensed_current_a, 0.0);
  EXPECT_EQ(queued_a.get().hits.front().sensed_current_a, 1.0);
  EXPECT_EQ(queued_b.get().hits.front().sensed_current_a, 2.0);

  const auto stats = async_index.stats();
  EXPECT_EQ(stats.search.submitted, 3u);
  EXPECT_EQ(stats.search.rejected_overload, 1u);
  EXPECT_EQ(stats.search.served, 3u);
}

TEST(AsyncLifecycleT, SubmitBatchAdmissionIsAllOrNothing) {
  GatedIndex backend;
  backend.close_gate();
  AsyncAmIndex async_index(backend, immediate_options(/*queue_depth=*/2));
  // Dispatcher busy on one request; room for exactly 2 behind it.
  auto blocked = async_index.submit(req({0, 1}));
  backend.wait_entered(1);

  const std::vector<SearchRequest> three(3, req({0, 1}));
  EXPECT_THROW((void)async_index.submit_batch(three), Overloaded);
  EXPECT_EQ(async_index.query_serial(), 1u);  // nothing consumed

  const std::vector<SearchRequest> two(2, req({0, 1}));
  auto futures = async_index.submit_batch(two);
  EXPECT_EQ(async_index.query_serial(), 3u);

  backend.open_gate();
  EXPECT_EQ(futures[0].get().hits.front().sensed_current_a, 1.0);
  EXPECT_EQ(futures[1].get().hits.front().sensed_current_a, 2.0);
  (void)blocked.get();
}

TEST(AsyncLifecycleT, ShutdownDrainsInFlightRequests) {
  GatedIndex backend;
  backend.close_gate();
  AsyncAmIndex async_index(backend, immediate_options(/*queue_depth=*/8,
                                                      /*max_batch=*/1));
  auto blocked = async_index.submit(req({0, 1}));
  backend.wait_entered(1);
  auto queued_a = async_index.submit(req({0, 1}));
  auto queued_b = async_index.submit(req({0, 1}));

  backend.open_gate();
  async_index.shutdown();  // must drain: all three futures complete

  EXPECT_TRUE(async_index.shut_down());
  EXPECT_EQ(blocked.get().hits.front().sensed_current_a, 0.0);
  EXPECT_EQ(queued_a.get().hits.front().sensed_current_a, 1.0);
  EXPECT_EQ(queued_b.get().hits.front().sensed_current_a, 2.0);
  EXPECT_EQ(async_index.stats().search.served, 3u);
}

TEST(AsyncLifecycleT, DestructorDrainsLikeShutdown) {
  GatedIndex backend;
  std::future<SearchResponse> future;
  {
    AsyncAmIndex async_index(backend, immediate_options(8));
    future = async_index.submit(req({0, 1}));
  }  // destructor: shutdown + drain
  EXPECT_EQ(future.get().hits.size(), 1u);
}

TEST(AsyncLifecycleT, SubmissionsAfterShutdownAreRejected) {
  GatedIndex backend;
  AsyncAmIndex async_index(backend, immediate_options(8));
  async_index.shutdown();
  EXPECT_THROW((void)async_index.submit(req({0, 1})), ShutDown);
  const std::vector<SearchRequest> batch(2, req({0, 1}));
  EXPECT_THROW((void)async_index.submit_batch(batch), ShutDown);
  const auto stats = async_index.stats();
  EXPECT_EQ(stats.search.rejected_shutdown, 3u);
  EXPECT_EQ(stats.search.submitted, 0u);
  // shutdown() is idempotent.
  async_index.shutdown();
}

TEST(AsyncLifecycleT, BackendExceptionPropagatesThroughTheFuture) {
  GatedIndex backend;
  backend.throw_on_search = true;
  AsyncAmIndex async_index(backend, immediate_options(8));
  auto failing = async_index.submit(req({0, 1}));
  EXPECT_THROW(
      {
        try {
          (void)failing.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "GatedIndex: injected backend failure");
          throw;
        }
      },
      std::runtime_error);

  // The dispatcher survives the exception: later submissions serve fine.
  backend.throw_on_search = false;
  auto ok = async_index.submit(req({0, 1}));
  EXPECT_EQ(ok.get().hits.size(), 1u);
  EXPECT_EQ(async_index.stats().search.served, 2u);
}

TEST(AsyncLifecycleT, MalformedRequestsRejectedAtSubmitConsumeNothing) {
  GatedIndex backend;
  AsyncAmIndex async_index(backend, immediate_options(8));
  EXPECT_THROW((void)async_index.submit(req({0, 1, 2})),
               std::invalid_argument);  // wrong length
  EXPECT_THROW((void)async_index.submit(req({0, 1}, /*k=*/99)),
               std::invalid_argument);  // k > stored_count
  EXPECT_EQ(async_index.query_serial(), 0u);
  EXPECT_EQ(async_index.stats().search.submitted, 0u);
}

TEST(AsyncLifecycleT, DispatcherCoalescesQueuedSinglesIntoOneBatch) {
  GatedIndex backend;
  backend.close_gate();
  AsyncAmIndex async_index(backend, immediate_options(/*queue_depth=*/8,
                                                      /*max_batch=*/8));
  // First request is popped alone (nothing else queued, no linger) and
  // blocks in the backend; the next four pile up behind it.
  auto blocked = async_index.submit(req({0, 1}));
  backend.wait_entered(1);
  std::vector<std::future<SearchResponse>> queued;
  for (int i = 0; i < 4; ++i) queued.push_back(async_index.submit(req({0, 1})));

  backend.open_gate();
  (void)blocked.get();
  for (auto& future : queued) (void)future.get();

  const auto stats = async_index.stats();
  EXPECT_EQ(stats.search.served, 5u);
  EXPECT_EQ(stats.batches, 2u);     // {first}, {the four coalesced}
  EXPECT_EQ(stats.max_batch, 4u);   // all four fused into one call
  EXPECT_EQ(stats.search.queue_wait_us.count, 5u);
  const auto& e2e = stats.search.end_to_end_us;
  EXPECT_EQ(e2e.count, 5u);
  EXPECT_LE(e2e.p50_us, e2e.p95_us);
  EXPECT_LE(e2e.p95_us, e2e.p99_us);
  EXPECT_LE(e2e.p99_us, e2e.max_us);
}

TEST(AsyncLifecycleT, ConcurrentSubmittersAllComplete) {
  GatedIndex backend;
  AsyncAmIndex async_index(backend,
                           immediate_options(/*queue_depth=*/256,
                                             /*max_batch=*/16));
  constexpr std::size_t kThreads = 4, kPerThread = 32;
  std::vector<std::thread> submitters;
  std::mutex futures_mutex;
  std::vector<std::future<SearchResponse>> futures;
  std::atomic<std::size_t> overloaded{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        try {
          auto future = async_index.submit(req({0, 1}));
          std::lock_guard<std::mutex> lock(futures_mutex);
          futures.push_back(std::move(future));
        } catch (const Overloaded&) {
          overloaded.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  for (auto& future : futures) {
    EXPECT_EQ(future.get().hits.size(), 1u);
  }
  const auto stats = async_index.stats();
  EXPECT_EQ(stats.search.submitted, futures.size());
  EXPECT_EQ(stats.search.submitted + overloaded.load(), kThreads * kPerThread);
  EXPECT_EQ(async_index.query_serial(), futures.size());
}

TEST(AsyncLifecycleT, MultipleDispatchersServeEverythingBitIdentically) {
  GatedIndex backend;
  AsyncOptions options = immediate_options(/*queue_depth=*/128,
                                           /*max_batch=*/4);
  options.dispatchers = 3;
  AsyncAmIndex async_index(backend, options);
  std::vector<std::future<SearchResponse>> futures;
  for (int i = 0; i < 64; ++i) futures.push_back(async_index.submit(req({0, 1})));
  // Ordinals were assigned in submission order, so response i carries i
  // regardless of which dispatcher served it.
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get().hits.front().sensed_current_a,
              static_cast<double>(i));
  }
}

}  // namespace
}  // namespace ferex::serve
