// Unit tests for the ML substrate: quantization, exact KNN, and the HDC
// pipeline (encoding, training, inference across metrics).
#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "ml/hdc.hpp"
#include "ml/knn.hpp"
#include "ml/quantize.hpp"
#include "util/rng.hpp"

namespace ferex::ml {
namespace {

using csp::DistanceMetric;

// --------------------------------------------------------- quantize ---

TEST(QuantizerT, LevelsCoverRange) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i / 999.0);
  const auto q = Quantizer::fit(values, 2);
  EXPECT_EQ(q.levels(), 4);
  EXPECT_EQ(q.quantize(-1.0), 0);
  EXPECT_EQ(q.quantize(2.0), 3);
  EXPECT_LT(q.quantize(0.2), q.quantize(0.8));
}

TEST(QuantizerT, EqualProbabilityBinsOnGaussian) {
  util::Rng rng(3);
  std::vector<double> values(20000);
  for (auto& v : values) v = rng.gaussian();
  const auto q = Quantizer::fit(values, 2);
  std::vector<int> histogram(4, 0);
  for (double v : values) ++histogram[q.quantize(v)];
  for (int count : histogram) {
    EXPECT_NEAR(count, 5000, 300);  // ~uniform occupation
  }
}

TEST(QuantizerT, MatrixQuantizationPreservesShape) {
  util::Matrix<double> m(3, 5, 0.5);
  const auto q = Quantizer::fit(std::vector<double>{0.0, 0.4, 0.6, 1.0}, 1);
  const auto out = q.quantize(m);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 5u);
}

TEST(QuantizerT, RejectsBadArguments) {
  EXPECT_THROW(Quantizer::fit(std::vector<double>{}, 2), std::invalid_argument);
  EXPECT_THROW(Quantizer::fit(std::vector<double>{1.0}, 0),
               std::invalid_argument);
  EXPECT_THROW(Quantizer::fit(std::vector<double>{1.0}, 9),
               std::invalid_argument);
}

// -------------------------------------------------------------- KNN ---

TEST(VectorDistance, MatchesPerElementReference) {
  const std::vector<int> a{0, 1, 2, 3}, b{3, 1, 0, 2};
  EXPECT_EQ(vector_distance(DistanceMetric::kHamming, a, b), 2 + 0 + 1 + 1);
  EXPECT_EQ(vector_distance(DistanceMetric::kManhattan, a, b), 3 + 0 + 2 + 1);
  EXPECT_EQ(vector_distance(DistanceMetric::kEuclideanSquared, a, b),
            9 + 0 + 4 + 1);
  const std::vector<int> short_vec{1};
  EXPECT_THROW(vector_distance(DistanceMetric::kHamming, a, short_vec),
               std::invalid_argument);
}

TEST(KnnIndices, ReturnsNearestFirstWithDeterministicTies) {
  util::Matrix<int> db(4, 2, 0);
  db.at(1, 0) = 1;  // dist 1 from query {0,0} under L1
  db.at(2, 0) = 3;
  db.at(2, 1) = 3;  // dist 6
  // rows 0 and 3 both identical (dist 0): tie broken by index.
  const std::vector<int> query{0, 0};
  const auto idx = knn_indices(DistanceMetric::kManhattan, db, query, 3);
  EXPECT_EQ(idx, (std::vector<std::size_t>{0, 3, 1}));
  EXPECT_THROW(knn_indices(DistanceMetric::kManhattan, db, query, 0),
               std::invalid_argument);
  EXPECT_THROW(knn_indices(DistanceMetric::kManhattan, db, query, 5),
               std::invalid_argument);
}

TEST(KnnClassifierT, MajorityVoteOnSeparatedClusters) {
  // Class 0 near value 0, class 1 near value 3.
  util::Matrix<int> db(6, 4, 0);
  for (int s = 3; s < 6; ++s) {
    for (int f = 0; f < 4; ++f) db.at(s, f) = 3;
  }
  db.at(1, 0) = 1;  // small intra-class noise
  db.at(4, 2) = 2;
  const std::vector<int> labels{0, 0, 0, 1, 1, 1};
  const KnnClassifier knn(db, labels);
  EXPECT_EQ(knn.predict(DistanceMetric::kManhattan,
                        std::vector<int>{0, 1, 0, 0}, 3),
            0);
  EXPECT_EQ(knn.predict(DistanceMetric::kManhattan,
                        std::vector<int>{3, 3, 2, 3}, 3),
            1);
}

TEST(KnnClassifierT, EvaluateAccuracyIsOneOnTrainSetWithK1) {
  util::Rng rng(9);
  util::Matrix<int> db(20, 8, 0);
  for (auto& v : db.flat()) v = static_cast<int>(rng.uniform_below(4));
  std::vector<int> labels(20);
  for (std::size_t i = 0; i < 20; ++i) labels[i] = static_cast<int>(i % 4);
  const KnnClassifier knn(db, labels);
  EXPECT_DOUBLE_EQ(knn.evaluate(DistanceMetric::kManhattan, db, labels, 1),
                   1.0);
}

TEST(KnnClassifierT, RejectsShapeMismatch) {
  util::Matrix<int> db(2, 2, 0);
  EXPECT_THROW(KnnClassifier(db, {0}), std::invalid_argument);
  EXPECT_THROW(KnnClassifier(util::Matrix<int>(), {}), std::invalid_argument);
}

// -------------------------------------------------------------- HDC ---

TEST(HdcModelT, EncodeIsDeterministicAndSeedDependent) {
  HdcOptions opt;
  opt.hypervector_dim = 64;
  HdcModel a(8, 2, opt), b(8, 2, opt);
  HdcOptions opt2 = opt;
  opt2.seed = 999;
  HdcModel c(8, 2, opt2);
  const std::vector<double> x{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(a.encode(x), b.encode(x));
  EXPECT_NE(a.encode(x), c.encode(x));
}

TEST(HdcModelT, RequiresTrainingBeforeInference) {
  HdcModel model(4, 2, {});
  EXPECT_THROW(model.prototypes(), std::logic_error);
  EXPECT_THROW(model.encode_query(std::vector<double>{1, 2, 3, 4}),
               std::logic_error);
}

TEST(HdcModelT, LearnsSeparatedGaussians) {
  data::SyntheticSpec spec;
  spec.feature_count = 32;
  spec.class_count = 4;
  spec.train_size = 400;
  spec.test_size = 120;
  spec.class_separation = 1.2;
  const auto ds = data::make_synthetic(spec, 11);
  HdcOptions opt;
  opt.hypervector_dim = 512;
  HdcModel model(ds.feature_count, ds.class_count, opt);
  model.train(ds.train_x, ds.train_y);
  for (auto metric : {DistanceMetric::kHamming, DistanceMetric::kManhattan,
                      DistanceMetric::kEuclideanSquared}) {
    const double acc = model.evaluate(metric, ds.test_x, ds.test_y);
    EXPECT_GT(acc, 0.8) << csp::to_string(metric);
  }
}

TEST(HdcModelT, PrototypesAreWithinQuantizerRange) {
  data::SyntheticSpec spec;
  spec.feature_count = 16;
  spec.class_count = 3;
  spec.train_size = 90;
  spec.test_size = 30;
  const auto ds = data::make_synthetic(spec, 13);
  HdcOptions opt;
  opt.hypervector_dim = 128;
  opt.bits = 2;
  HdcModel model(ds.feature_count, ds.class_count, opt);
  model.train(ds.train_x, ds.train_y);
  const auto& protos = model.prototypes();
  EXPECT_EQ(protos.rows(), 3u);
  EXPECT_EQ(protos.cols(), 128u);
  for (int v : protos.flat()) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 4);
  }
}

TEST(HdcModelT, IterativeTrainingDoesNotDegradeTrainAccuracy) {
  data::SyntheticSpec spec;
  spec.feature_count = 24;
  spec.class_count = 4;
  spec.train_size = 200;
  spec.test_size = 50;
  spec.class_separation = 0.7;
  const auto ds = data::make_synthetic(spec, 17);
  HdcOptions single, iterative;
  single.hypervector_dim = iterative.hypervector_dim = 256;
  single.training_epochs = 0;
  iterative.training_epochs = 5;
  HdcModel m_single(ds.feature_count, ds.class_count, single);
  HdcModel m_iter(ds.feature_count, ds.class_count, iterative);
  m_single.train(ds.train_x, ds.train_y);
  m_iter.train(ds.train_x, ds.train_y);
  const double acc_single = m_single.evaluate(DistanceMetric::kEuclideanSquared,
                                              ds.train_x, ds.train_y);
  const double acc_iter = m_iter.evaluate(DistanceMetric::kEuclideanSquared,
                                          ds.train_x, ds.train_y);
  EXPECT_GE(acc_iter, acc_single - 0.05);
}

TEST(HdcModelT, RejectsBadShapes) {
  EXPECT_THROW(HdcModel(0, 2, {}), std::invalid_argument);
  EXPECT_THROW(HdcModel(4, 0, {}), std::invalid_argument);
  HdcOptions opt;
  opt.hypervector_dim = 0;
  EXPECT_THROW(HdcModel(4, 2, opt), std::invalid_argument);
  HdcModel model(4, 2, {});
  util::Matrix<double> x(3, 4, 0.0);
  EXPECT_THROW(model.train(x, std::vector<int>{0, 1}),
               std::invalid_argument);
  util::Matrix<double> ok(2, 4, 0.0);
  EXPECT_THROW(model.train(ok, std::vector<int>{0, 7}), std::out_of_range);
}

}  // namespace
}  // namespace ferex::ml
