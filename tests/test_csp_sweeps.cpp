// Parameterized sweeps over the CSP layer: the generic engine on classic
// problems with known solution counts, decomposition algebra across the
// (k, value, CR) grid, budget-boundary behaviour, and distance-matrix
// families at every bit width.
#include <gtest/gtest.h>

#include "csp/binary_csp.hpp"
#include "csp/decompose.hpp"
#include "csp/distance_matrix.hpp"
#include "csp/errors.hpp"
#include "csp/feasibility.hpp"
#include "csp/row_pattern.hpp"

namespace ferex::csp {
namespace {

// ------------------------------------------------- n-queens engine ---

/// N-queens as a BinaryCsp: variable = column, value = row.
BinaryCsp make_queens(std::size_t n) {
  std::vector<std::size_t> domains(n, n);
  return BinaryCsp(std::move(domains),
                   [](std::size_t a, std::size_t va, std::size_t b,
                      std::size_t vb) {
                     if (va == vb) return false;  // same row
                     const auto col_diff = a > b ? a - b : b - a;
                     const auto row_diff = va > vb ? va - vb : vb - va;
                     return col_diff != row_diff;  // not on a diagonal
                   });
}

class QueensSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QueensSweep, SolutionCountMatchesKnownSequence) {
  const auto [n, expected] = GetParam();
  auto csp = make_queens(static_cast<std::size_t>(n));
  EXPECT_EQ(csp.solve_all(0).size(), static_cast<std::size_t>(expected));
}

INSTANTIATE_TEST_SUITE_P(KnownCounts, QueensSweep,
                         ::testing::Values(std::pair{4, 2}, std::pair{5, 10},
                                           std::pair{6, 4}, std::pair{7, 40}),
                         [](const auto& param_info) {
                           return "N" + std::to_string(param_info.param.first);
                         });

TEST(QueensEngine, Ac3AloneCannotSolveButSearchCan) {
  auto csp = make_queens(6);
  EXPECT_TRUE(csp.ac3());  // arc consistency leaves domains non-empty
  EXPECT_TRUE(csp.solve().has_value());
}

TEST(QueensEngine, ThreeQueensIsInfeasible) {
  auto csp = make_queens(3);
  EXPECT_FALSE(csp.solve().has_value());
}

// -------------------------------------------- decomposition algebra ---

TEST(DecomposeGrid, ClosedFormForSingleCurrentRange) {
  // CR = {1}: decompositions of v over k positions = C(k, v).
  const std::vector<int> cr{1};
  const auto choose = [](int n, int r) {
    double acc = 1.0;
    for (int i = 0; i < r; ++i) {
      acc = acc * (n - i) / (i + 1);
    }
    return static_cast<std::size_t>(acc + 0.5);
  };
  for (int k = 1; k <= 8; ++k) {
    for (int v = 0; v <= k; ++v) {
      EXPECT_EQ(count_decompositions(k, v, cr), choose(k, v))
          << "k=" << k << " v=" << v;
    }
  }
}

TEST(DecomposeGrid, SupersetRangeNeverShrinksCount) {
  const std::vector<int> small{1, 2};
  const std::vector<int> large{1, 2, 3};
  for (int k = 1; k <= 5; ++k) {
    for (int v = 0; v <= 8; ++v) {
      EXPECT_GE(count_decompositions(k, v, large),
                count_decompositions(k, v, small));
    }
  }
}

TEST(DecomposeGrid, ExtraPositionsNeverShrinkCount) {
  const std::vector<int> cr{1, 3};
  for (int k = 1; k <= 5; ++k) {
    for (int v = 0; v <= 6; ++v) {
      EXPECT_GE(count_decompositions(k + 1, v, cr),
                count_decompositions(k, v, cr));
    }
  }
}

// ------------------------------------------------- budget boundary ---

TEST(BudgetBoundary, EnumerationThrowsExactlyAtLimit) {
  // A row with many equivalent decompositions: 4 FeFETs, targets all 1,
  // CR = {1} gives 4 choices per column subject to locking.
  const std::vector<int> targets{1, 1, 1, 1};
  const std::vector<int> cr{1};
  const auto unbounded = enumerate_row_patterns(targets, 4, cr, 0);
  ASSERT_FALSE(unbounded.empty());
  // A budget one below the true count must throw; at the count, succeed.
  EXPECT_THROW(
      enumerate_row_patterns(targets, 4, cr, unbounded.size() - 1),
      ResourceLimitError);
  EXPECT_EQ(
      enumerate_row_patterns(targets, 4, cr, unbounded.size()).size(),
      unbounded.size());
}

TEST(BudgetBoundary, FeasibilityPropagatesResourceError) {
  const auto dm = DistanceMatrix::make(DistanceMetric::kHamming, 2);
  const std::vector<int> cr{1, 2};
  FeasibilityOptions opt;
  opt.max_patterns_per_row = 1;  // absurdly small
  EXPECT_THROW(detect_feasibility(dm, 3, cr, opt), ResourceLimitError);
}

// ------------------------------------------ distance-matrix family ---

class DmBits : public ::testing::TestWithParam<int> {};

TEST_P(DmBits, ShapesAndExtremesAcrossAllMetrics) {
  const int bits = GetParam();
  const auto n = std::size_t{1} << bits;
  const int vmax = static_cast<int>(n) - 1;
  const auto hd = DistanceMatrix::make(DistanceMetric::kHamming, bits);
  const auto l1 = DistanceMatrix::make(DistanceMetric::kManhattan, bits);
  const auto l2 = DistanceMatrix::make(DistanceMetric::kEuclideanSquared, bits);
  for (const auto* dm : {&hd, &l1, &l2}) {
    EXPECT_EQ(dm->search_count(), n);
    EXPECT_EQ(dm->stored_count(), n);
  }
  EXPECT_EQ(hd.max_value(), bits);           // all bits differ
  EXPECT_EQ(l1.max_value(), vmax);           // |0 - max|
  EXPECT_EQ(l2.max_value(), vmax * vmax);    // (0 - max)^2
  // L2 dominates L1 dominates (scaled) HD pointwise.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      EXPECT_GE(l1.at(a, b), 0);
      if (a != b) {
        EXPECT_GE(l2.at(a, b), l1.at(a, b));  // (d)^2 >= d for integer d >= 1
        EXPECT_LE(hd.at(a, b), bits);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BitWidths, DmBits, ::testing::Values(1, 2, 3, 4, 6),
                         [](const auto& param_info) {
                           return std::to_string(param_info.param) + "bit";
                         });

TEST(RowPatternSweep, OrderingOptimizationPreservesResultSet) {
  // The most-constrained-first ordering must not change the set of
  // patterns, only the enumeration order. Compare as multisets.
  const std::vector<int> cr{1, 2};
  const auto dm = DistanceMatrix::make(DistanceMetric::kManhattan, 2);
  for (std::size_t sch = 0; sch < dm.search_count(); ++sch) {
    auto patterns = enumerate_row_patterns(dm.values().row(sch), 4, cr);
    // Every pattern satisfies constraint 2 and hits its targets.
    for (const auto& p : patterns) {
      EXPECT_TRUE(satisfies_constraint2(p));
    }
    // No duplicates.
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      for (std::size_t j = i + 1; j < patterns.size(); ++j) {
        EXPECT_FALSE(patterns[i] == patterns[j]);
      }
    }
  }
}

}  // namespace
}  // namespace ferex::csp
