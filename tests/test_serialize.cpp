// Unit tests for the encoding text serialization.
#include <gtest/gtest.h>

#include "encode/encoder.hpp"
#include "encode/serialize.hpp"

namespace ferex::encode {
namespace {

using csp::DistanceMatrix;
using csp::DistanceMetric;

CellEncoding sample_encoding(DistanceMetric metric = DistanceMetric::kHamming,
                             int bits = 2) {
  const auto dm = DistanceMatrix::make(metric, bits);
  auto enc = encode_distance_matrix(dm);
  EXPECT_TRUE(enc.has_value());
  return *enc;
}

TEST(Serialize, RoundTripPreservesEverything) {
  for (auto metric : {DistanceMetric::kHamming, DistanceMetric::kManhattan,
                      DistanceMetric::kEuclideanSquared}) {
    const auto original = sample_encoding(metric);
    const auto restored = from_text(to_text(original));
    EXPECT_EQ(restored.name(), original.name());
    EXPECT_EQ(restored.stored_count(), original.stored_count());
    EXPECT_EQ(restored.search_count(), original.search_count());
    EXPECT_EQ(restored.fefets_per_cell(), original.fefets_per_cell());
    EXPECT_EQ(restored.ladder_levels(), original.ladder_levels());
    for (std::size_t v = 0; v < original.stored_count(); ++v) {
      for (std::size_t i = 0; i < original.fefets_per_cell(); ++i) {
        EXPECT_EQ(restored.store_level(v, i), original.store_level(v, i));
      }
    }
    for (std::size_t v = 0; v < original.search_count(); ++v) {
      for (std::size_t i = 0; i < original.fefets_per_cell(); ++i) {
        EXPECT_EQ(restored.search_level(v, i), original.search_level(v, i));
        EXPECT_EQ(restored.vds_multiple(v, i), original.vds_multiple(v, i));
      }
    }
  }
}

TEST(Serialize, RestoredEncodingStillRealizesDm) {
  const auto dm = DistanceMatrix::make(DistanceMetric::kHamming, 2);
  const auto restored = from_text(to_text(sample_encoding()));
  EXPECT_TRUE(restored.realizes(dm));
}

TEST(Serialize, TextIsStable) {
  // Serializing twice yields byte-identical output (diff-friendliness).
  const auto enc = sample_encoding();
  EXPECT_EQ(to_text(enc), to_text(enc));
}

TEST(Serialize, RejectsBadMagic) {
  EXPECT_THROW(from_text("not an encoding"), std::invalid_argument);
  EXPECT_THROW(from_text(""), std::invalid_argument);
}

TEST(Serialize, RejectsTruncatedInput) {
  auto text = to_text(sample_encoding());
  text.resize(text.size() / 2);
  EXPECT_THROW(from_text(text), std::invalid_argument);
}

TEST(Serialize, RejectsCorruptedValues) {
  auto text = to_text(sample_encoding());
  // Replace the first store level digit with a non-integer.
  const auto pos = text.find("store_levels\n") + 13;
  text[pos] = 'x';
  EXPECT_THROW(from_text(text), std::invalid_argument);
}

TEST(Serialize, RejectsOutOfRangeLevels) {
  auto text = to_text(sample_encoding());
  // Claim fewer ladder levels than the matrices use.
  const auto pos = text.find("shape ");
  ASSERT_NE(pos, std::string::npos);
  // shape line: "shape <stored> <search> <fefets> <levels>".
  const auto eol = text.find('\n', pos);
  std::string line = text.substr(pos, eol - pos);
  line.back() = '1';  // levels = 1 while levels used are >= 2
  text.replace(pos, eol - pos, line);
  EXPECT_THROW(from_text(text), std::invalid_argument);
}

TEST(Serialize, ErrorMessagesCarryLineNumbers) {
  try {
    from_text("ferex-encoding v1\nbogus\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace ferex::encode
