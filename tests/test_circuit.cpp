// Unit tests for the circuit substrate: parasitics scaling, op-amp
// interface, LTA decisions under noise, the crossbar array (programming,
// search currents, equivalence with the single-device model), and the
// energy/delay model's Fig. 6 scaling laws.
#include <gtest/gtest.h>

#include "circuit/crossbar.hpp"
#include "circuit/energy_model.hpp"
#include "circuit/interface.hpp"
#include "circuit/lta.hpp"
#include "circuit/parasitics.hpp"
#include "csp/feasibility.hpp"
#include "util/stats.hpp"
#include "device/one_fefet_one_r.hpp"
#include "encode/encoder.hpp"

namespace ferex::circuit {
namespace {

using csp::DistanceMatrix;
using csp::DistanceMetric;

encode::CellEncoding hamming2_encoding() {
  const auto dm = DistanceMatrix::make(DistanceMetric::kHamming, 2);
  auto enc = encode::encode_distance_matrix(dm);
  EXPECT_TRUE(enc.has_value());
  return *enc;
}

CrossbarConfig ideal_config() {
  CrossbarConfig config;
  config.variation.enabled = false;
  return config;
}

/// Variation off AND effectively zero subthreshold leakage: checks the
/// pure current-arithmetic behaviour of the array.
CrossbarConfig exact_config() {
  CrossbarConfig config = ideal_config();
  config.fet.ss_mv_per_dec = 15.0;   // leak ~Isat*1e-20 at one margin
  config.opamp.output_res_ohm = 0.0;  // ideal ScL clamp
  return config;
}

// ------------------------------------------------------- parasitics ---

TEST(ParasiticsT, SclLoadGrowsWithColumns) {
  const Parasitics small(64, 128), large(64, 1024);
  EXPECT_GT(large.scl_cap_f(), small.scl_cap_f());
  EXPECT_GT(large.scl_res_ohm(), small.scl_res_ohm());
  EXPECT_GT(large.scl_tau_s(), small.scl_tau_s());
}

TEST(ParasiticsT, DlLoadGrowsWithRows) {
  const Parasitics small(16, 128), large(256, 128);
  EXPECT_GT(large.dl_cap_f(), small.dl_cap_f());
  EXPECT_DOUBLE_EQ(large.scl_cap_f(), small.scl_cap_f());
}

// -------------------------------------------------------- interface ---

TEST(InterfaceT, SettleTimeIncreasesWithLoad) {
  const InterfaceCircuit amp;
  EXPECT_GT(amp.settle_time_s(1e-12), amp.settle_time_s(100e-15));
  EXPECT_GT(amp.settle_time_s(100e-15), 0.0);
}

TEST(InterfaceT, ResidualVoltageProportionalToCurrent) {
  const InterfaceCircuit amp;
  const double v1 = amp.residual_scl_voltage(1e-6);
  const double v2 = amp.residual_scl_voltage(2e-6);
  EXPECT_NEAR(v2 / v1, 2.0, 1e-9);
  EXPECT_LT(v1, 0.01);  // clamp keeps the node within a few mV
}

TEST(InterfaceT, EnergyScalesWithDuration) {
  const InterfaceCircuit amp;
  EXPECT_NEAR(amp.energy_j(2e-9) / amp.energy_j(1e-9), 2.0, 1e-9);
}

// -------------------------------------------------------------- LTA ---

TEST(LtaT, IdealDecisionPicksMinimum) {
  const LtaCircuit lta;
  const std::vector<double> currents{3e-7, 1e-7, 2e-7};
  const auto d = lta.decide(currents, 1e-7, nullptr);
  EXPECT_EQ(d.winner, 1u);
  EXPECT_NEAR(d.margin_a, 1e-7, 1e-12);
}

TEST(LtaT, NoiseCausesErrorsOnlyAtSmallMargins) {
  LtaParams params;
  params.offset_sigma_rel = 0.5;  // deliberately noisy comparator
  const LtaCircuit lta(params);
  util::Rng rng(77);
  const double unit = 1e-7;
  // Margin of 4 units: virtually never flips. Margin of 0.1 unit: often.
  int wrong_wide = 0, wrong_tight = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::vector<double> wide{1e-7, 5e-7};
    const std::vector<double> tight{1e-7, 1.1e-7};
    if (lta.decide(wide, unit, &rng).winner != 0) ++wrong_wide;
    if (lta.decide(tight, unit, &rng).winner != 0) ++wrong_tight;
  }
  EXPECT_LT(wrong_wide, 20);
  EXPECT_GT(wrong_tight, 300);
}

TEST(LtaT, DecideKMasksPreviousWinners) {
  const LtaCircuit lta;
  const std::vector<double> currents{5e-7, 1e-7, 3e-7, 2e-7};
  const auto top3 = lta.decide_k(currents, 1e-7, 3, nullptr);
  EXPECT_EQ(top3, (std::vector<std::size_t>{1, 3, 2}));
}

TEST(LtaT, DelayGrowsLogarithmically) {
  const LtaCircuit lta;
  const double d16 = lta.delay_s(16);
  const double d256 = lta.delay_s(256);
  EXPECT_GT(d256, d16);
  // log2(256)/log2(16) = 2: the *increment* doubles, not the total.
  EXPECT_LT(d256 / d16, 2.0);
}

TEST(LtaT, RejectsDegenerateInput) {
  const LtaCircuit lta;
  EXPECT_THROW(lta.decide({}, 1e-7, nullptr), std::invalid_argument);
  const std::vector<double> one{1e-7};
  EXPECT_THROW(lta.decide_k(one, 1e-7, 2, nullptr), std::invalid_argument);
  EXPECT_THROW(lta.decide_k(one, 1e-7, 0, nullptr), std::invalid_argument);
}

// --------------------------------------------------------- crossbar ---

TEST(Crossbar, NominalDistanceMatchesSoftwareReference) {
  const auto enc = hamming2_encoding();
  const device::VoltageLadder ladder(enc.ladder_levels());
  util::Rng rng(1);
  CrossbarArray array(4, 8, enc, ladder, ideal_config(), rng);
  util::Rng data_rng(2);
  std::vector<std::vector<int>> rows(4, std::vector<int>(8));
  for (auto& row : rows) {
    for (auto& v : row) v = static_cast<int>(data_rng.uniform_below(4));
    array.program_row(static_cast<std::size_t>(&row - rows.data()), row);
  }
  std::vector<int> query(8);
  for (auto& v : query) v = static_cast<int>(data_rng.uniform_below(4));
  for (std::size_t r = 0; r < 4; ++r) {
    int expected = 0;
    for (std::size_t d = 0; d < 8; ++d) {
      expected += csp::reference_distance(DistanceMetric::kHamming, query[d],
                                          rows[r][d]);
    }
    EXPECT_EQ(array.nominal_distance(query, r), expected);
  }
}

TEST(Crossbar, SearchCurrentsAreIntegerMultiplesOfUnit) {
  const auto enc = hamming2_encoding();
  const device::VoltageLadder ladder(enc.ladder_levels());
  util::Rng rng(3);
  CrossbarArray array(4, 16, enc, ladder, exact_config(), rng);
  util::Rng data_rng(4);
  std::vector<std::vector<int>> rows(4, std::vector<int>(16));
  for (std::size_t r = 0; r < 4; ++r) {
    for (auto& v : rows[r]) v = static_cast<int>(data_rng.uniform_below(4));
    array.program_row(r, rows[r]);
  }
  std::vector<int> query(16);
  for (auto& v : query) v = static_cast<int>(data_rng.uniform_below(4));
  const auto currents = array.search(query);
  for (std::size_t r = 0; r < 4; ++r) {
    const double multiple = currents[r] / array.unit_current_a();
    EXPECT_NEAR(multiple, array.nominal_distance(query, r), 0.05)
        << "row " << r;
  }
}

TEST(Crossbar, AgreesWithSingleDeviceModel) {
  // One cell, one row: the array current must equal the sum of
  // OneFeFetOneR device currents under the same biases.
  const auto enc = hamming2_encoding();
  const device::VoltageLadder ladder(enc.ladder_levels());
  CrossbarConfig config = ideal_config();
  config.opamp.output_res_ohm = 0.0;  // exact clamp for the comparison
  util::Rng rng(5);
  CrossbarArray array(1, 1, enc, ladder, config, rng);
  const std::vector<int> stored{2};
  array.program_row(0, stored);
  const std::vector<int> query{1};
  const double array_current = array.search(query).front();

  double expected = 0.0;
  for (std::size_t i = 0; i < enc.fefets_per_cell(); ++i) {
    device::OneFeFetOneR cell(
        ladder.vth(static_cast<std::size_t>(enc.store_level(2, i))),
        config.cell, config.fet);
    expected += cell.current_at_multiple(
        ladder.vsearch(static_cast<std::size_t>(enc.search_level(1, i))),
        enc.vds_multiple(1, i));
  }
  EXPECT_NEAR(array_current, expected, expected * 1e-9);
}

TEST(Crossbar, VariationPerturbsProgrammedVth) {
  const auto enc = hamming2_encoding();
  const device::VoltageLadder ladder(enc.ladder_levels());
  CrossbarConfig config;  // variation enabled (54 mV)
  util::Rng rng(6);
  CrossbarArray array(8, 32, enc, ladder, config, rng);
  std::vector<int> row(32, 1);
  array.program_row(0, row);
  util::RunningStats offsets;
  for (std::size_t d = 0; d < 32; ++d) {
    for (std::size_t i = 0; i < enc.fefets_per_cell(); ++i) {
      const double nominal = ladder.vth(
          static_cast<std::size_t>(enc.store_level(1, i)));
      offsets.add(array.device_vth(0, d, i) - nominal);
    }
  }
  EXPECT_GT(offsets.stddev(), 0.03);
  EXPECT_LT(offsets.stddev(), 0.09);
}

TEST(Crossbar, PreisachProgrammingPathMatchesDirect) {
  const auto enc = hamming2_encoding();
  const device::VoltageLadder ladder(enc.ladder_levels());
  CrossbarConfig direct = ideal_config();
  CrossbarConfig preisach = ideal_config();
  preisach.use_preisach_programming = true;
  util::Rng rng_a(7), rng_b(7);
  CrossbarArray a(2, 4, enc, ladder, direct, rng_a);
  CrossbarArray b(2, 4, enc, ladder, preisach, rng_b);
  const std::vector<int> row{0, 1, 2, 3};
  a.program_row(0, row);
  b.program_row(0, row);
  for (std::size_t d = 0; d < 4; ++d) {
    for (std::size_t i = 0; i < enc.fefets_per_cell(); ++i) {
      EXPECT_NEAR(a.device_vth(0, d, i), b.device_vth(0, d, i), 6e-3);
    }
  }
}

TEST(Crossbar, SubthresholdLeakageIsSmallAndCommonMode) {
  // With the realistic 60 mV/dec device, OFF cells near the ladder margin
  // leak a little extra current. The leak must stay well under one unit
  // current per row here, and — crucially for the LTA, which senses
  // *differences* — must not flip the ordering of rows whose distances
  // differ by one unit.
  const auto enc = hamming2_encoding();
  const device::VoltageLadder ladder(enc.ladder_levels());
  util::Rng rng(11);
  CrossbarArray array(3, 32, enc, ladder, ideal_config(), rng);
  util::Rng data_rng(12);
  std::vector<int> base(32);
  for (auto& v : base) v = static_cast<int>(data_rng.uniform_below(4));
  auto near = base;  // Hamming distance 1 from base
  near[0] ^= 1;
  auto far = base;   // Hamming distance 2 from base
  far[0] ^= 1;
  far[1] ^= 1;
  array.program_row(0, base);
  array.program_row(1, near);
  array.program_row(2, far);
  const auto currents = array.search(base);
  const double unit = array.unit_current_a();
  EXPECT_LT(currents[0] / unit, 0.5);           // leak bounded
  EXPECT_LT(currents[0], currents[1]);          // ordering preserved
  EXPECT_LT(currents[1], currents[2]);
  EXPECT_NEAR(currents[1] / unit, 1.0, 0.5);
  EXPECT_NEAR(currents[2] / unit, 2.0, 0.5);
}

TEST(Crossbar, UnclampedSourceLineCorruptsDistances) {
  // Ablation: with the op-amp clamp off, large row currents depress Vds
  // and the sensed distance falls below nominal.
  const auto enc = hamming2_encoding();
  const device::VoltageLadder ladder(enc.ladder_levels());
  CrossbarConfig clamped = ideal_config();
  CrossbarConfig unclamped = ideal_config();
  unclamped.use_opamp_clamp = false;
  util::Rng rng_a(8), rng_b(8);
  CrossbarArray a(1, 64, enc, ladder, clamped, rng_a);
  CrossbarArray b(1, 64, enc, ladder, unclamped, rng_b);
  const std::vector<int> stored(64, 0);
  a.program_row(0, stored);
  b.program_row(0, stored);
  const std::vector<int> query(64, 3);  // large distance -> large current
  const double i_clamped = a.search(query).front();
  const double i_unclamped = b.search(query).front();
  EXPECT_LT(i_unclamped, i_clamped * 0.98);
}

TEST(Crossbar, RejectsBadGeometryAndValues) {
  const auto enc = hamming2_encoding();
  const device::VoltageLadder ladder(enc.ladder_levels());
  util::Rng rng(9);
  EXPECT_THROW(CrossbarArray(0, 4, enc, ladder, ideal_config(), rng),
               std::invalid_argument);
  const device::VoltageLadder short_ladder(enc.ladder_levels() - 1);
  EXPECT_THROW(CrossbarArray(2, 4, enc, short_ladder, ideal_config(), rng),
               std::invalid_argument);
  CrossbarArray array(2, 4, enc, ladder, ideal_config(), rng);
  const std::vector<int> bad_len{0, 1};
  EXPECT_THROW(array.program_row(0, bad_len), std::invalid_argument);
  const std::vector<int> bad_val{0, 1, 2, 9};
  EXPECT_THROW(array.program_row(0, bad_val), std::out_of_range);
  const std::vector<int> ok{0, 1, 2, 3};
  array.program_row(0, ok);
  EXPECT_THROW(array.program_row(5, ok), std::out_of_range);
  const std::vector<int> bad_query{0, 1, 2, 9};
  EXPECT_THROW(array.search(bad_query), std::out_of_range);
}

// ----------------------------------------------------- energy model ---

TEST(EnergyModel, EnergyPerBitDecreasesWithRows) {
  // Fig. 6(a): more rows amortize the LTA/driver overheads.
  const EnergyDelayModel model;
  SearchOpSpec small, large;
  small.rows = 16;
  large.rows = 256;
  small.dims = large.dims = 256;
  const double e_small = model.search_op(small).energy_per_bit_j(small);
  const double e_large = model.search_op(large).energy_per_bit_j(large);
  EXPECT_LT(e_large, e_small);
}

TEST(EnergyModel, DelayIncreasesWithArraySize) {
  // Fig. 6(b): total delay grows gradually as the array scales.
  const EnergyDelayModel model;
  SearchOpSpec small, large;
  small.rows = 16;
  small.dims = 64;
  large.rows = 256;
  large.dims = 1024;
  EXPECT_GT(model.search_op(large).total_delay_s(),
            model.search_op(small).total_delay_s());
}

TEST(EnergyModel, SclSettlingDominatesDelay) {
  // The paper: ~60 % of the total delay comes from ScL stabilization.
  const EnergyDelayModel model;
  SearchOpSpec spec;
  spec.rows = 64;
  spec.dims = 512;
  const auto cost = model.search_op(spec);
  const double fraction = cost.scl_settle_s / cost.total_delay_s();
  EXPECT_GT(fraction, 0.45);
  EXPECT_LT(fraction, 0.75);
}

TEST(EnergyModel, EnergyPerBitInFemtojouleRange) {
  const EnergyDelayModel model;
  SearchOpSpec spec;
  spec.rows = 64;
  spec.dims = 512;
  const double e_bit = model.search_op(spec).energy_per_bit_j(spec);
  EXPECT_GT(e_bit, 0.01e-15);
  EXPECT_LT(e_bit, 100e-15);
}

TEST(EnergyModel, ThroughputIsInverseDelay) {
  const EnergyDelayModel model;
  SearchOpSpec spec;
  const auto cost = model.search_op(spec);
  EXPECT_NEAR(model.throughput_qps(spec) * cost.total_delay_s(), 1.0, 1e-9);
}

}  // namespace
}  // namespace ferex::circuit
