// Tests for the batched multi-threaded search path: FerexEngine::
// search_batch and BankedAm::search_batch must be bit-identical to the
// sequential APIs across metrics, fidelities, and encoding paths.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "arch/banked_am.hpp"
#include "core/ferex.hpp"
#include "data/datasets.hpp"
#include "util/parallel.hpp"

namespace ferex::core {
namespace {

using csp::DistanceMetric;


void expect_identical(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.nearest, b.nearest);
  EXPECT_EQ(a.winner_current_a, b.winner_current_a);  // bit-exact
  EXPECT_EQ(a.margin_a, b.margin_a);
  EXPECT_EQ(a.nominal_distance, b.nominal_distance);
}

class BatchIdenticalT
    : public ::testing::TestWithParam<std::tuple<DistanceMetric,
                                                 SearchFidelity>> {};

TEST_P(BatchIdenticalT, BatchMatchesSequentialBitExactly) {
  const auto [metric, fidelity] = GetParam();
  FerexOptions opt;
  opt.fidelity = fidelity;

  const auto db = data::random_int_vectors(24, 8, 4, 11);
  const auto queries = data::random_int_vectors(17, 8, 4, 12);

  FerexEngine batched(opt);
  batched.configure(metric, 2);
  batched.store(db);
  const auto batch = batched.search_batch(queries);
  ASSERT_EQ(batch.size(), queries.size());

  FerexEngine sequential(opt);
  sequential.configure(metric, 2);
  sequential.store(db);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_identical(batch[i], sequential.search(queries[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndFidelities, BatchIdenticalT,
    ::testing::Combine(::testing::Values(DistanceMetric::kHamming,
                                         DistanceMetric::kManhattan,
                                         DistanceMetric::kEuclideanSquared),
                       ::testing::Values(SearchFidelity::kCircuit,
                                         SearchFidelity::kNominal)));

TEST(SearchBatchT, CompositeEncodingMatchesSequential) {
  FerexOptions opt;
  const auto db = data::random_int_vectors(16, 6, 16, 21);
  const auto queries = data::random_int_vectors(9, 6, 16, 22);

  FerexEngine batched(opt);
  batched.configure_composite(DistanceMetric::kHamming, 4);
  batched.store(db);
  const auto batch = batched.search_batch(queries);

  FerexEngine sequential(opt);
  sequential.configure_composite(DistanceMetric::kHamming, 4);
  sequential.store(db);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_identical(batch[i], sequential.search(queries[i]));
  }
}

TEST(SearchBatchT, EmptyBatchReturnsEmpty) {
  FerexEngine engine;
  engine.configure(DistanceMetric::kHamming, 2);
  engine.store(data::random_int_vectors(4, 4, 4, 31));
  const auto before = engine.query_serial();
  EXPECT_TRUE(engine.search_batch({}).empty());
  EXPECT_EQ(engine.query_serial(), before);  // consumed no ordinals
}

TEST(SearchBatchT, SingleElementBatchMatchesSearch) {
  const auto db = data::random_int_vectors(12, 5, 4, 41);
  const std::vector<std::vector<int>> queries = {db[7]};

  FerexEngine batched;
  batched.configure(DistanceMetric::kManhattan, 2);
  batched.store(db);
  const auto batch = batched.search_batch(queries);
  ASSERT_EQ(batch.size(), 1u);

  FerexEngine sequential;
  sequential.configure(DistanceMetric::kManhattan, 2);
  sequential.store(db);
  expect_identical(batch[0], sequential.search(queries[0]));
  EXPECT_EQ(batch[0].nominal_distance, 0);
}

TEST(SearchBatchT, ThrowsBeforeConfigureAndStore) {
  FerexEngine engine;
  const std::vector<std::vector<int>> queries = {{0, 1}};
  EXPECT_THROW(engine.search_batch(queries), std::logic_error);
  EXPECT_THROW((void)engine.search_batch({}), std::logic_error);
}

TEST(SearchBatchT, RejectsWrongQueryLength) {
  FerexEngine engine;
  engine.configure(DistanceMetric::kHamming, 2);
  engine.store(data::random_int_vectors(6, 4, 4, 51));
  const std::vector<std::vector<int>> queries = {{0, 1, 2}};  // dims is 4
  const auto before = engine.query_serial();
  EXPECT_THROW(engine.search_batch(queries), std::invalid_argument);
  EXPECT_THROW(engine.search(queries[0]), std::invalid_argument);
  EXPECT_THROW(engine.search_k(queries[0], 1), std::invalid_argument);
  // Rejected queries never consume noise-stream ordinals.
  EXPECT_EQ(engine.query_serial(), before);
}

TEST(SearchBatchT, RejectsOutOfRangeValuesAtBothFidelities) {
  for (const auto fidelity :
       {SearchFidelity::kCircuit, SearchFidelity::kNominal}) {
    FerexOptions opt;
    opt.fidelity = fidelity;
    FerexEngine engine(opt);
    engine.configure(DistanceMetric::kHamming, 2);
    engine.store(data::random_int_vectors(6, 4, 4, 53));
    const std::vector<std::vector<int>> queries = {{0, 1, 2, 7}};  // 7 > 3
    const auto before = engine.query_serial();
    EXPECT_THROW(engine.search_batch(queries), std::out_of_range);
    EXPECT_THROW(engine.search(queries[0]), std::out_of_range);
    EXPECT_THROW(engine.search(std::vector<int>{0, 1, 2, -1}),
                 std::out_of_range);
    // Rejected queries never consume noise-stream ordinals.
    EXPECT_EQ(engine.query_serial(), before);
  }
}

TEST(SearchBatchT, RejectsOutOfRangeValuesUnderCodec) {
  FerexEngine engine;
  engine.configure_composite(DistanceMetric::kHamming, 4);
  engine.store(data::random_int_vectors(6, 4, 16, 54));
  const std::vector<std::vector<int>> queries = {{0, 1, 2, 16}};  // 16 > 15
  const auto before = engine.query_serial();
  EXPECT_THROW(engine.search_batch(queries), std::out_of_range);
  EXPECT_THROW(engine.search(queries[0]), std::out_of_range);
  EXPECT_EQ(engine.query_serial(), before);
}

TEST(SearchBatchT, RejectsWrongQueryLengthUnderCodecAtNominalFidelity) {
  // Regression: the codec expands element-wise with no length check, and
  // the nominal path used to read past the end of a short expanded query.
  FerexOptions opt;
  opt.fidelity = SearchFidelity::kNominal;
  FerexEngine engine(opt);
  engine.configure_composite(DistanceMetric::kHamming, 4);
  engine.store(data::random_int_vectors(6, 4, 16, 52));
  const std::vector<std::vector<int>> queries = {{0, 1, 2}};  // dims is 4
  EXPECT_THROW(engine.search_batch(queries), std::invalid_argument);
  EXPECT_THROW(engine.search(queries[0]), std::invalid_argument);
}

TEST(SearchBatchT, SearchKAgreesWithBatchWinners) {
  // search_k consumes the same per-query noise stream as search, so the
  // first of k results at matching ordinals equals the batch winner.
  const auto db = data::random_int_vectors(20, 6, 4, 61);
  const auto queries = data::random_int_vectors(8, 6, 4, 62);

  FerexEngine batched;
  batched.configure(DistanceMetric::kHamming, 2);
  batched.store(db);
  const auto batch = batched.search_batch(queries);

  FerexEngine sequential;
  sequential.configure(DistanceMetric::kHamming, 2);
  sequential.store(db);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto top3 = sequential.search_k(queries[i], 3);
    ASSERT_EQ(top3.size(), 3u);
    EXPECT_EQ(top3.front(), batch[i].nearest);
  }
}

TEST(SearchBatchT, RepeatedBatchesAreDeterministicAcrossEngines) {
  const auto db = data::random_int_vectors(18, 7, 4, 71);
  const auto queries = data::random_int_vectors(32, 7, 4, 72);
  std::vector<std::vector<SearchResult>> runs;
  for (int run = 0; run < 2; ++run) {
    FerexEngine engine;
    engine.configure(DistanceMetric::kManhattan, 2);
    engine.store(db);
    runs.push_back(engine.search_batch(queries));
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_identical(runs[0][i], runs[1][i]);
  }
}

TEST(SearchBatchT, OrdinalsAdvanceAcrossMixedCalls) {
  // A batch consumes one ordinal per query, so batch-then-search equals
  // search-then-search at the same positions.
  const auto db = data::random_int_vectors(10, 5, 4, 81);
  const auto queries = data::random_int_vectors(5, 5, 4, 82);

  FerexEngine mixed;
  mixed.configure(DistanceMetric::kHamming, 2);
  mixed.store(db);
  const auto batch = mixed.search_batch(queries);
  const auto after = mixed.search(queries[0]);

  FerexEngine sequential;
  sequential.configure(DistanceMetric::kHamming, 2);
  sequential.store(db);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_identical(batch[i], sequential.search(queries[i]));
  }
  expect_identical(after, sequential.search(queries[0]));
}

TEST(BankedBatchT, BatchMatchesSequentialBitExactly) {
  arch::BankedOptions opt;
  opt.bank_rows = 6;
  const auto db = data::random_int_vectors(20, 6, 4, 91);
  const auto queries = data::random_int_vectors(13, 6, 4, 92);

  arch::BankedAm batched(opt);
  batched.configure(DistanceMetric::kHamming, 2);
  batched.store(db);
  const auto batch = batched.search_batch(queries);
  ASSERT_EQ(batch.size(), queries.size());

  arch::BankedAm sequential(opt);
  sequential.configure(DistanceMetric::kHamming, 2);
  sequential.store(db);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto ref = sequential.search(queries[i]);
    EXPECT_EQ(batch[i].nearest, ref.nearest);
    EXPECT_EQ(batch[i].bank, ref.bank);
    EXPECT_EQ(batch[i].winner_current_a, ref.winner_current_a);
  }
}

TEST(BankedBatchT, EmptyBatchAndErrors) {
  arch::BankedAm am;
  EXPECT_THROW((void)am.search_batch({}), std::logic_error);
  am.configure(DistanceMetric::kHamming, 2);
  am.store(data::random_int_vectors(8, 4, 4, 95));
  EXPECT_TRUE(am.search_batch({}).empty());
  // A wrong-length query is rejected before any ordinal is consumed, so
  // the noise-stream sequence is unaffected by the failed call.
  const std::vector<std::vector<int>> bad = {{0, 1}};
  EXPECT_THROW(am.search_batch(bad), std::invalid_argument);
  EXPECT_THROW(am.search(bad[0]), std::invalid_argument);
  const auto good = data::random_int_vectors(3, 4, 4, 96);
  arch::BankedAm reference;
  reference.configure(DistanceMetric::kHamming, 2);
  reference.store(data::random_int_vectors(8, 4, 4, 95));
  for (const auto& q : good) {
    EXPECT_EQ(am.search(q).winner_current_a,
              reference.search(q).winner_current_a);
  }
}

TEST(ParallelForT, CoversAllIndicesAndPropagatesExceptions) {
  std::vector<int> hits(257, 0);
  util::parallel_for(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_THROW(util::parallel_for(
                   8, [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  EXPECT_GE(util::worker_count(1), 1u);
  EXPECT_EQ(util::worker_count(0), 1u);
}

}  // namespace
}  // namespace ferex::core
