// Equivalence suite for the flattened search hot path: the optimized
// kernels (cached bias tables + LUT + flat SoA row solve, optional
// intra-query row/bank parallelism) must reproduce the retained
// reference kernels bit for bit across metric x bits x fidelity x clamp
// configurations, and the fixed-point convergence counters must account
// for every solve.
#include <gtest/gtest.h>

#include <vector>

#include "arch/banked_am.hpp"
#include "circuit/crossbar.hpp"
#include "core/ferex.hpp"
#include "core/profiler.hpp"
#include "data/datasets.hpp"
#include "encode/encoder.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace ferex {
namespace {

using csp::DistanceMetric;


struct KernelCase {
  DistanceMetric metric;
  int bits;
  bool clamp;
  bool variation;
};

std::string case_name(const testing::TestParamInfo<KernelCase>& info) {
  const auto& c = info.param;
  return csp::to_string(c.metric) + std::to_string(c.bits) +
         (c.clamp ? "_clamped" : "_unclamped") +
         (c.variation ? "_var" : "_novar");
}

class KernelEquivalence : public testing::TestWithParam<KernelCase> {};

TEST_P(KernelEquivalence, OptimizedSearchMatchesReferenceBitForBit) {
  const auto& c = GetParam();
  const auto dm = csp::DistanceMatrix::make(c.metric, c.bits);
  const auto enc = encode::encode_distance_matrix(dm);
  ASSERT_TRUE(enc.has_value());

  circuit::CrossbarConfig config;
  config.variation.enabled = c.variation;
  config.use_opamp_clamp = c.clamp;
  const device::VoltageLadder ladder(enc->ladder_levels(), 0.2,
                                     1.5 / static_cast<double>(
                                               enc->ladder_levels()));
  util::Rng rng(7);
  const std::size_t rows = 12, dims = 9;
  circuit::CrossbarArray array(rows, dims, *enc, ladder, config, rng);
  const auto db =
      data::random_int_vectors(rows, dims, static_cast<int>(enc->stored_count()), 11);
  for (std::size_t r = 0; r < rows; ++r) array.program_row(r, db[r]);

  const auto queries =
      data::random_int_vectors(8, dims, static_cast<int>(enc->search_count()), 13);
  for (const auto& q : queries) {
    const auto reference = array.search_reference(q);
    const auto optimized = array.search(q);
    const auto optimized_parallel = array.search(q, /*parallel_rows=*/true);
    ASSERT_EQ(reference.size(), rows);
    for (std::size_t r = 0; r < rows; ++r) {
      // Exact double equality: the kernels share the per-cell expression
      // and summation order, so any drift is a real table/gather bug.
      EXPECT_EQ(optimized[r], reference[r]) << "row " << r;
      EXPECT_EQ(optimized_parallel[r], reference[r]) << "row " << r;
    }

    const auto nominal_ref = array.nominal_distances_reference(q);
    const auto nominal_opt = array.nominal_distances(q);
    EXPECT_EQ(nominal_opt, nominal_ref);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricBitsClamp, KernelEquivalence,
    testing::Values(KernelCase{DistanceMetric::kHamming, 1, true, true},
                    KernelCase{DistanceMetric::kHamming, 2, true, true},
                    KernelCase{DistanceMetric::kHamming, 2, false, true},
                    KernelCase{DistanceMetric::kHamming, 2, true, false},
                    KernelCase{DistanceMetric::kManhattan, 1, true, true},
                    KernelCase{DistanceMetric::kManhattan, 2, true, true},
                    KernelCase{DistanceMetric::kManhattan, 2, false, false}),
    case_name);

TEST(HotPathEncoding, NominalCurrentLutMatchesReference) {
  for (const auto metric :
       {DistanceMetric::kHamming, DistanceMetric::kManhattan}) {
    const auto dm = csp::DistanceMatrix::make(metric, 2);
    const auto enc = encode::encode_distance_matrix(dm);
    ASSERT_TRUE(enc.has_value());
    for (std::size_t sch = 0; sch < enc->search_count(); ++sch) {
      const auto row = enc->nominal_currents(sch);
      ASSERT_EQ(row.size(), enc->stored_count());
      for (std::size_t sto = 0; sto < enc->stored_count(); ++sto) {
        EXPECT_EQ(enc->nominal_current(sch, sto),
                  enc->nominal_current_reference(sch, sto));
        EXPECT_EQ(row[sto], enc->nominal_current_reference(sch, sto));
      }
    }
  }
}

core::FerexOptions engine_options(core::SearchFidelity fidelity,
                                  std::size_t intra_min_devices) {
  core::FerexOptions options;
  options.fidelity = fidelity;
  options.intra_query_min_devices = intra_min_devices;
  return options;
}

TEST(HotPathEngine, IntraQueryParallelSearchIsDeterministic) {
  const auto db = data::random_int_vectors(24, 16, 4, 3);
  const auto queries = data::random_int_vectors(12, 16, 4, 5);
  for (const auto fidelity :
       {core::SearchFidelity::kCircuit, core::SearchFidelity::kNominal}) {
    // `1` forces the row fan-out for every query (when >1 hw thread);
    // `0` disables it. Results must not depend on the schedule.
    core::FerexEngine serial(engine_options(fidelity, 0));
    core::FerexEngine fanned(engine_options(fidelity, 1));
    for (auto* engine : {&serial, &fanned}) {
      engine->configure(DistanceMetric::kManhattan, 2);
      engine->store(db);
    }
    for (const auto& q : queries) {
      const auto a = serial.search(q);
      const auto b = fanned.search(q);
      EXPECT_EQ(a.nearest, b.nearest);
      EXPECT_EQ(a.winner_current_a, b.winner_current_a);
      EXPECT_EQ(a.margin_a, b.margin_a);
      EXPECT_EQ(a.nominal_distance, b.nominal_distance);
    }
    // Small batch (< pool width on multicore hosts): exercises the
    // serial-queries + fanned-rows schedule against the fanned-queries
    // one.
    const auto batch_a = serial.search_batch(queries);
    const auto batch_b = fanned.search_batch(queries);
    ASSERT_EQ(batch_a.size(), batch_b.size());
    for (std::size_t i = 0; i < batch_a.size(); ++i) {
      EXPECT_EQ(batch_a[i].nearest, batch_b[i].nearest);
      EXPECT_EQ(batch_a[i].winner_current_a, batch_b[i].winner_current_a);
    }
  }
}

TEST(HotPathEngine, CompositeCodecPathMatchesReferenceKernel) {
  core::FerexEngine engine(engine_options(core::SearchFidelity::kCircuit, 1));
  engine.configure_composite(DistanceMetric::kHamming, 4);
  const auto db = data::random_int_vectors(10, 6, 16, 17);
  engine.store(db);
  ASSERT_NE(engine.codec(), nullptr);
  const auto queries = data::random_int_vectors(6, 6, 16, 19);
  for (const auto& q : queries) {
    const auto sensed = engine.row_currents(q);
    const auto reference =
        engine.array()->search_reference(engine.codec()->expand(q));
    ASSERT_EQ(sensed.size(), reference.size());
    for (std::size_t r = 0; r < sensed.size(); ++r) {
      EXPECT_EQ(sensed[r], reference[r]);
    }
  }
}

TEST(HotPathEngine, BankedSearchUnaffectedByBankFanOut) {
  const auto db = data::random_int_vectors(40, 12, 4, 23);
  const auto queries = data::random_int_vectors(9, 12, 4, 29);
  arch::BankedOptions options;
  options.bank_rows = 8;  // 5 banks
  arch::BankedAm banked(options);
  banked.configure(DistanceMetric::kHamming, 2);
  banked.store(db);
  arch::BankedAm sequential(options);
  sequential.configure(DistanceMetric::kHamming, 2);
  sequential.store(db);

  // Batch (fans queries or banks depending on pool width) vs one-by-one
  // single search (fans banks): must agree bit for bit.
  const auto batch = banked.search_batch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto single = sequential.search(queries[i]);
    EXPECT_EQ(batch[i].nearest, single.nearest);
    EXPECT_EQ(batch[i].bank, single.bank);
    EXPECT_EQ(batch[i].winner_current_a, single.winner_current_a);
  }
}

TEST(SclSolveCounters, EverySolveIsAccounted) {
  const std::size_t rows = 10, dims = 8;
  core::FerexEngine engine(engine_options(core::SearchFidelity::kCircuit, 0));
  engine.configure(DistanceMetric::kHamming, 2);
  engine.store(data::random_int_vectors(rows, dims, 4, 31));
  const auto* array = engine.array();
  ASSERT_NE(array, nullptr);
  array->reset_scl_solve_stats();

  const auto queries = data::random_int_vectors(5, dims, 4, 37);
  for (const auto& q : queries) (void)engine.search(q);
  const auto stats = array->scl_solve_stats();
  EXPECT_EQ(stats.solves, rows * queries.size());
  // The default clamp's residual impedance is a few hundred ohms: the
  // damped iteration must both run (>= 1 per solve) and converge.
  EXPECT_GE(stats.iterations, stats.solves);
  EXPECT_EQ(stats.non_converged, 0u);

  array->reset_scl_solve_stats();
  const auto zeroed = array->scl_solve_stats();
  EXPECT_EQ(zeroed.solves, 0u);
  EXPECT_EQ(zeroed.iterations, 0u);
  EXPECT_EQ(zeroed.non_converged, 0u);
}

TEST(SclSolveCounters, NominalFidelityRunsNoSolves) {
  core::FerexEngine engine(engine_options(core::SearchFidelity::kNominal, 0));
  engine.configure(DistanceMetric::kHamming, 2);
  engine.store(data::random_int_vectors(6, 8, 4, 41));
  engine.array()->reset_scl_solve_stats();
  for (const auto& q : data::random_int_vectors(4, 8, 4, 43)) (void)engine.search(q);
  EXPECT_EQ(engine.array()->scl_solve_stats().solves, 0u);
}

TEST(SclSolveCounters, ProfilerSurfacesConvergence) {
  core::FerexEngine engine(engine_options(core::SearchFidelity::kCircuit, 0));
  engine.configure(DistanceMetric::kHamming, 2);
  const std::size_t rows = 8;
  engine.store(data::random_int_vectors(rows, 8, 4, 47));
  const auto queries = data::random_int_vectors(6, 8, 4, 53);
  const auto profile = core::profile_searches(engine, queries);
  EXPECT_EQ(profile.scl_solves, rows * queries.size());
  EXPECT_GE(profile.scl_mean_iterations, 1.0);
  EXPECT_LE(profile.scl_mean_iterations, 60.0);
  EXPECT_EQ(profile.scl_non_converged, 0u);
}

}  // namespace
}  // namespace ferex
