#!/usr/bin/env bash
# GCC -fanalyzer leg over the concurrency-heavy modules (src/serve,
# src/util), warnings-as-errors. Run from the repo root:
#
#   tools/run_fanalyzer.sh [g++-binary]
#
# Each translation unit is compiled standalone (the analyzer is
# whole-TU, not whole-program), so a failure names exactly one file.
#
# Suppression list — every entry is a GCC 12 C++ false-positive class,
# verified by hand before being added. Remove an entry when a newer GCC
# stops flagging the cited site; do NOT add entries without a comment
# citing the false positive.
#
#   -Wno-analyzer-use-of-uninitialized-value
#       The analyzer does not model range-for initialization loops:
#       src/util/rng.cpp:28 reads state_[1..3] immediately after
#       `for (auto& lane : state_) lane = splitmix64(s);` fully
#       initializes them, and is still reported. Same class fires on
#       std::function/std::vector internals in src/serve/am_index.cpp.
#   -Wno-analyzer-malloc-leak
#       Reported inside libstdc++'s _M_realloc_insert / _Rb_tree copy
#       paths (std::string, std::function, std::set) where ownership
#       transfers through placement-new the analyzer cannot see, e.g.
#       src/serve/am_index.cpp:49 "leak" of a basic_string _M_p that is
#       owned by the just-constructed exception object.
#   -Wno-analyzer-null-dereference
#       Reported against compiler-generated move constructors via
#       std::vector::_M_check_len (src/serve/wal.hpp WalRecord,
#       src/core/ferex.hpp EngineState): the "NULL" is the analyzer's
#       unknown-this placeholder, not a reachable dereference.
#
# Everything else in the -fanalyzer family (double-free, use-after-free,
# file-descriptor leaks, infinite recursion, ...) stays fatal.
set -u

CXX="${1:-g++}"
SUPPRESSIONS=(
  -Wno-analyzer-use-of-uninitialized-value
  -Wno-analyzer-malloc-leak
  -Wno-analyzer-null-dereference
)

fail=0
for tu in src/serve/*.cpp src/util/*.cpp; do
  echo "fanalyzer: ${tu}"
  if ! "${CXX}" -std=c++20 -O1 -fanalyzer -Werror -Isrc \
      "${SUPPRESSIONS[@]}" -c -o /dev/null "${tu}"; then
    echo "fanalyzer: FAILED ${tu}" >&2
    fail=1
  fi
done

if [[ "${fail}" -ne 0 ]]; then
  echo "fanalyzer: diagnostics above are warnings-as-errors; fix the" >&2
  echo "fanalyzer: code or document a new false-positive class here." >&2
  exit 1
fi
echo "fanalyzer: all serve/util translation units clean"
