// Bench regression gate: diffs a fresh `--json` document from
// bench_search_hotpath / bench_batch against a committed BENCH_*.json
// snapshot and fails when any shared label's q/s regressed past the
// threshold.
//
// Usage:
//   bench_compare <baseline.json> <fresh.json>
//                 [--max-regression <frac>]       (default 0.25)
//                 [--require-same-concurrency]
//
// Labels are matched by name; labels present in only one document are
// reported but never gate (benches grow modes over time). A fresh qps
// below (1 - frac) x baseline qps is a regression -> exit 1.
//
// --require-same-concurrency downgrades the gate to a note (exit 0)
// when the two documents record different hardware_concurrency values:
// q/s measured on differently shaped hosts is not comparable, and CI
// runners rarely match the machine that committed the snapshot.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Entry {
  std::string key;  ///< "label rowsxdims" — labels repeat per geometry
  double qps = 0.0;
};

struct BenchDoc {
  unsigned hardware_concurrency = 0;
  std::vector<Entry> results;
};

/// Minimal parser for the bench_json.hpp schema (this repo writes it; a
/// full JSON library would be overkill for two known keys).
bool parse_doc(const std::string& path, BenchDoc& doc) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const auto find_number_after = [&](std::size_t pos, const char* key,
                                     double& out) {
    const std::size_t at = text.find(key, pos);
    if (at == std::string::npos) return std::string::npos;
    const std::size_t colon = text.find(':', at);
    if (colon == std::string::npos) return std::string::npos;
    out = std::strtod(text.c_str() + colon + 1, nullptr);
    return at;
  };

  double hw = 0.0;
  if (find_number_after(0, "\"hardware_concurrency\"", hw) ==
      std::string::npos) {
    std::fprintf(stderr, "bench_compare: %s: no hardware_concurrency\n",
                 path.c_str());
    return false;
  }
  doc.hardware_concurrency = static_cast<unsigned>(hw);

  std::size_t pos = 0;
  for (;;) {
    const std::size_t label_at = text.find("\"label\"", pos);
    if (label_at == std::string::npos) break;
    const std::size_t open = text.find('"', text.find(':', label_at));
    const std::size_t close = text.find('"', open + 1);
    if (open == std::string::npos || close == std::string::npos) break;
    const std::string label = text.substr(open + 1, close - open - 1);
    // The writer emits geometry then qps after every label, in order.
    // Bound the field search at the next record's label so a truncated
    // or hand-edited record fails loudly instead of silently borrowing
    // the next record's numbers.
    const std::size_t record_end = text.find("\"label\"", close);
    double rows = 0.0, dims = 0.0, qps = 0.0;
    const std::size_t rows_at = find_number_after(close, "\"rows\"", rows);
    const std::size_t dims_at = find_number_after(close, "\"dims\"", dims);
    const std::size_t qps_at = find_number_after(close, "\"qps\"", qps);
    if (rows_at == std::string::npos || rows_at >= record_end ||
        dims_at == std::string::npos || dims_at >= record_end ||
        qps_at == std::string::npos || qps_at >= record_end) {
      std::fprintf(stderr,
                   "bench_compare: %s: label %s missing geometry or qps\n",
                   path.c_str(), label.c_str());
      return false;
    }
    Entry entry;
    entry.key = label + " " + std::to_string(static_cast<long>(rows)) + "x" +
                std::to_string(static_cast<long>(dims));
    entry.qps = qps;
    doc.results.push_back(entry);
    pos = close;
  }
  if (doc.results.empty()) {
    std::fprintf(stderr, "bench_compare: %s: no results\n", path.c_str());
    return false;
  }
  return true;
}

const double* lookup(const BenchDoc& doc, const std::string& key) {
  for (const auto& entry : doc.results) {
    if (entry.key == key) return &entry.qps;
  }
  return nullptr;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <fresh.json> "
               "[--max-regression <frac in (0,1)>] "
               "[--require-same-concurrency]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double max_regression = 0.25;
  bool require_same_concurrency = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-regression") == 0 && i + 1 < argc) {
      char* end = nullptr;
      errno = 0;
      max_regression = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || errno != 0 ||
          max_regression <= 0.0 || max_regression >= 1.0) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--require-same-concurrency") == 0) {
      require_same_concurrency = true;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2) return usage(argv[0]);

  BenchDoc baseline, fresh;
  if (!parse_doc(paths[0], baseline) || !parse_doc(paths[1], fresh)) return 2;

  if (baseline.hardware_concurrency != fresh.hardware_concurrency) {
    std::printf("bench_compare: hardware_concurrency differs "
                "(baseline %u, fresh %u) — q/s is not host-comparable\n",
                baseline.hardware_concurrency, fresh.hardware_concurrency);
    if (require_same_concurrency) {
      std::printf("bench_compare: gate skipped "
                  "(--require-same-concurrency)\n");
      return 0;
    }
  }

  std::printf("%-32s %12s %12s %9s\n", "label", "baseline q/s", "fresh q/s",
              "ratio");
  int regressions = 0;
  for (const auto& base : baseline.results) {
    const double* fresh_qps = lookup(fresh, base.key);
    if (fresh_qps == nullptr) {
      std::printf("%-32s %12.0f %12s %9s  (missing from fresh run)\n",
                  base.key.c_str(), base.qps, "-", "-");
      continue;
    }
    const double ratio = base.qps > 0.0 ? *fresh_qps / base.qps : 1.0;
    const bool regressed = ratio < 1.0 - max_regression;
    std::printf("%-32s %12.0f %12.0f %8.2fx%s\n", base.key.c_str(), base.qps,
                *fresh_qps, ratio, regressed ? "  REGRESSION" : "");
    if (regressed) ++regressions;
  }
  for (const auto& entry : fresh.results) {
    if (lookup(baseline, entry.key) == nullptr) {
      std::printf("%-32s %12s %12.0f %9s  (new label)\n", entry.key.c_str(),
                  "-", entry.qps, "-");
    }
  }
  if (regressions > 0) {
    std::printf("bench_compare: %d label(s) regressed more than %.0f%%\n",
                regressions, max_regression * 100.0);
    return 1;
  }
  std::printf("bench_compare: no q/s regression beyond %.0f%%\n",
              max_regression * 100.0);
  return 0;
}
