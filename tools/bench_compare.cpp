// Bench regression gate: diffs a fresh `--json` document from
// bench_search_hotpath / bench_batch / bench_serve against a committed
// BENCH_*.json snapshot and fails when any shared label regressed past
// the threshold — in throughput or in tail latency.
//
// Usage:
//   bench_compare <baseline.json> <fresh.json>
//                 [--max-regression <frac>]          (default 0.25)
//                 [--max-latency-regression <frac>]  (default 0.25)
//                 [--max-shed-increase <frac>]       (default 0.05)
//                 [--require-same-concurrency]
//
// Labels are matched by name; labels present in only one document are
// reported but never gate (benches grow modes over time). Three gates
// per shared label:
//   * q/s: fresh qps below (1 - frac) x baseline qps -> regression;
//   * p95 latency: fresh latency_p95_us above (1 + frac) x baseline ->
//     regression (serve-path tails regress long before means do);
//   * shed rate (schema v3 open-loop records): fresh shed_rate above
//     baseline shed_rate + frac -> regression. Absolute margin, not
//     relative: a committed operating point of 0.00 shed would make any
//     relative threshold vacuous or infinite.
// Any kind -> exit 1. A label whose baseline p95 is 0 (older snapshot,
// or a mode without latency samples) skips the latency gate; a label
// where either side carries no shed_rate (schema v2 snapshots, closed
// loop modes) skips the shed gate — the dispatch is per record, so a v3
// document gates v3-vs-v3 labels while still reading v2 baselines.
//
// --require-same-concurrency downgrades both gates to a note (exit 0)
// when the two documents record different hardware_concurrency values:
// q/s and latency measured on differently shaped hosts are not
// comparable, and CI runners rarely match the machine that committed
// the snapshot.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Entry {
  std::string key;  ///< "label rowsxdims" — labels repeat per geometry
  double qps = 0.0;
  double p95_us = 0.0;     ///< 0 when the record carries no latency
  double shed_rate = -1.0;  ///< negative when the record carries none
};

struct BenchDoc {
  unsigned schema_version = 2;  ///< pre-v3 documents did gate already
  unsigned hardware_concurrency = 0;
  std::vector<Entry> results;
};

/// Minimal parser for the bench_json.hpp schema (this repo writes it; a
/// full JSON library would be overkill for two known keys).
bool parse_doc(const std::string& path, BenchDoc& doc) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const auto find_number_after = [&](std::size_t pos, const char* key,
                                     double& out) {
    const std::size_t at = text.find(key, pos);
    if (at == std::string::npos) return std::string::npos;
    const std::size_t colon = text.find(':', at);
    if (colon == std::string::npos) return std::string::npos;
    // Validate that a number was actually consumed: strtod returns 0.0
    // for garbage, which would silently pass a corrupted snapshot
    // through the gate as "qps collapsed to zero" or worse, "no
    // regression" (when the baseline is the corrupt side).
    const char* start = text.c_str() + colon + 1;
    char* end = nullptr;
    out = std::strtod(start, &end);
    if (end == start) {
      std::fprintf(stderr, "bench_compare: %s: malformed number for %s\n",
                   path.c_str(), key);
      return std::string::npos;
    }
    return at;
  };

  double hw = 0.0;
  if (find_number_after(0, "\"hardware_concurrency\"", hw) ==
      std::string::npos) {
    std::fprintf(stderr, "bench_compare: %s: no hardware_concurrency\n",
                 path.c_str());
    return false;
  }
  doc.hardware_concurrency = static_cast<unsigned>(hw);
  // schema_version dispatches the optional-field parse: a v2 document
  // legitimately has no shed_rate anywhere, so don't even look for it —
  // a stray "shed_rate" substring in a label could otherwise be
  // misparsed as data.
  double version = 0.0;
  if (find_number_after(0, "\"schema_version\"", version) !=
      std::string::npos) {
    doc.schema_version = static_cast<unsigned>(version);
  }

  std::size_t pos = 0;
  for (;;) {
    const std::size_t label_at = text.find("\"label\"", pos);
    if (label_at == std::string::npos) break;
    const std::size_t open = text.find('"', text.find(':', label_at));
    const std::size_t close = text.find('"', open + 1);
    if (open == std::string::npos || close == std::string::npos) break;
    const std::string label = text.substr(open + 1, close - open - 1);
    // The writer emits geometry then qps after every label, in order.
    // Bound the field search at the next record's label so a truncated
    // or hand-edited record fails loudly instead of silently borrowing
    // the next record's numbers.
    const std::size_t record_end = text.find("\"label\"", close);
    double rows = 0.0, dims = 0.0, qps = 0.0, p95 = 0.0;
    const std::size_t rows_at = find_number_after(close, "\"rows\"", rows);
    const std::size_t dims_at = find_number_after(close, "\"dims\"", dims);
    const std::size_t qps_at = find_number_after(close, "\"qps\"", qps);
    if (rows_at == std::string::npos || rows_at >= record_end ||
        dims_at == std::string::npos || dims_at >= record_end ||
        qps_at == std::string::npos || qps_at >= record_end) {
      std::fprintf(stderr,
                   "bench_compare: %s: label %s missing geometry or qps\n",
                   path.c_str(), label.c_str());
      return false;
    }
    // Optional (schema v1 documents predate p99; p95 has always been
    // written, but stay permissive: a missing field just skips the
    // latency gate for this label).
    const std::size_t p95_at =
        find_number_after(close, "\"latency_p95_us\"", p95);
    if (p95_at == std::string::npos || p95_at >= record_end) p95 = 0.0;
    // shed_rate is v3-only and per-record optional (open-loop modes
    // write it, closed-loop modes omit it).
    double shed = -1.0;
    if (doc.schema_version >= 3) {
      const std::size_t shed_at =
          find_number_after(close, "\"shed_rate\"", shed);
      if (shed_at == std::string::npos || shed_at >= record_end) shed = -1.0;
    }
    Entry entry;
    entry.key = label + " " + std::to_string(static_cast<long>(rows)) + "x" +
                std::to_string(static_cast<long>(dims));
    entry.qps = qps;
    entry.p95_us = p95;
    entry.shed_rate = shed;
    doc.results.push_back(entry);
    pos = close;
  }
  if (doc.results.empty()) {
    std::fprintf(stderr, "bench_compare: %s: no results\n", path.c_str());
    return false;
  }
  return true;
}

const Entry* lookup(const BenchDoc& doc, const std::string& key) {
  for (const auto& entry : doc.results) {
    if (entry.key == key) return &entry;
  }
  return nullptr;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <fresh.json> "
               "[--max-regression <frac in (0,1)>] "
               "[--max-latency-regression <frac in (0,1)>] "
               "[--max-shed-increase <frac in (0,1)>] "
               "[--require-same-concurrency]\n",
               argv0);
  return 2;
}

/// Parses a strict (0,1) fraction; returns false on any malformation.
bool parse_fraction(const char* text, double& out) {
  char* end = nullptr;
  errno = 0;
  out = std::strtod(text, &end);
  return end != text && *end == '\0' && errno == 0 && out > 0.0 && out < 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double max_regression = 0.25;
  double max_latency_regression = 0.25;
  double max_shed_increase = 0.05;
  bool require_same_concurrency = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-regression") == 0 && i + 1 < argc) {
      if (!parse_fraction(argv[++i], max_regression)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--max-latency-regression") == 0 &&
               i + 1 < argc) {
      if (!parse_fraction(argv[++i], max_latency_regression)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--max-shed-increase") == 0 &&
               i + 1 < argc) {
      if (!parse_fraction(argv[++i], max_shed_increase)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--require-same-concurrency") == 0) {
      require_same_concurrency = true;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2) return usage(argv[0]);

  BenchDoc baseline, fresh;
  if (!parse_doc(paths[0], baseline) || !parse_doc(paths[1], fresh)) return 2;

  if (baseline.hardware_concurrency != fresh.hardware_concurrency) {
    std::printf("bench_compare: hardware_concurrency differs "
                "(baseline %u, fresh %u) — q/s is not host-comparable\n",
                baseline.hardware_concurrency, fresh.hardware_concurrency);
    if (require_same_concurrency) {
      std::printf("bench_compare: gate skipped "
                  "(--require-same-concurrency)\n");
      return 0;
    }
  }

  std::printf("%-32s %12s %12s %9s %11s %11s\n", "label", "baseline q/s",
              "fresh q/s", "ratio", "base p95us", "fresh p95us");
  int regressions = 0;
  for (const auto& base : baseline.results) {
    const Entry* now = lookup(fresh, base.key);
    if (now == nullptr) {
      std::printf("%-32s %12.0f %12s %9s %11s %11s  (missing from fresh)\n",
                  base.key.c_str(), base.qps, "-", "-", "-", "-");
      continue;
    }
    const double ratio = base.qps > 0.0 ? now->qps / base.qps : 1.0;
    const bool qps_regressed = ratio < 1.0 - max_regression;
    // Latency gates only with a baseline to compare against; a fresh
    // p95 of 0 with a nonzero baseline would be an improvement, not a
    // regression, so it passes on its own terms.
    const bool latency_regressed =
        base.p95_us > 0.0 &&
        now->p95_us > base.p95_us * (1.0 + max_latency_regression);
    // The shed gate needs both sides to carry the field; absolute
    // margin because the committed operating point is typically 0.00.
    const bool shed_regressed =
        base.shed_rate >= 0.0 && now->shed_rate >= 0.0 &&
        now->shed_rate > base.shed_rate + max_shed_increase;
    const char* verdict = qps_regressed || latency_regressed || shed_regressed
                              ? "  REGRESSION"
                              : "";
    std::printf("%-32s %12.0f %12.0f %8.2fx %11.1f %11.1f%s%s%s%s\n",
                base.key.c_str(), base.qps, now->qps, ratio, base.p95_us,
                now->p95_us, verdict, qps_regressed ? " (q/s)" : "",
                latency_regressed ? " (p95)" : "",
                shed_regressed ? " (shed)" : "");
    if (base.shed_rate >= 0.0 && now->shed_rate >= 0.0) {
      std::printf("%-32s %12s %12s %9s shed %.3f -> %.3f\n", "", "", "", "",
                  base.shed_rate, now->shed_rate);
    }
    if (qps_regressed || latency_regressed || shed_regressed) ++regressions;
  }
  for (const auto& entry : fresh.results) {
    if (lookup(baseline, entry.key) == nullptr) {
      std::printf("%-32s %12s %12.0f %9s %11s %11.1f  (new label)\n",
                  entry.key.c_str(), "-", entry.qps, "-", "-", entry.p95_us);
    }
  }
  if (regressions > 0) {
    std::printf("bench_compare: %d label(s) regressed beyond %.0f%% q/s, "
                "%.0f%% p95 latency, or +%.2f shed rate\n",
                regressions, max_regression * 100.0,
                max_latency_regression * 100.0, max_shed_increase);
    return 1;
  }
  std::printf("bench_compare: no regression beyond %.0f%% q/s / %.0f%% "
              "p95 latency / +%.2f shed rate\n",
              max_regression * 100.0, max_latency_regression * 100.0,
              max_shed_increase);
  return 0;
}
