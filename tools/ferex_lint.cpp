// ferex_lint — repo-invariant checker for conventions the compiler
// cannot see. Token/structure level on purpose: no AST, no compile
// flags, so it runs in milliseconds on any checkout and never drifts
// out of sync with the build.
//
// The tool runs in two phases. Phase 1 walks the tree once and builds
// a repo model per file: include edges, annotated mutex declarations
// and every scoped-lock acquisition (attributed to its enclosing
// function/class via brace tracking), failpoint site names, the
// RejectReason enum and its RejectedRequest subclasses, bench label
// string literals, CTest labels, and CI label patterns. Phase 2 runs
// graph rules over the accumulated model; per-file rules run inline
// during the walk.
//
// Per-file rules (ids are what the output and the waiver syntax use):
//   raw-thread     Serving/core code (src/, except src/util/) must not
//                  spawn naked std::thread/std::jthread/std::async —
//                  concurrency goes through util::parallel_for or the
//                  AsyncAmIndex dispatchers.
//   raw-random     No rand()/srand()/std::random_device outside
//                  src/util/rng.* — determinism is a repo invariant
//                  (seeded SplitMix64 everywhere).
//   guarded-mutator  Every public AmIndex mutator definition
//                  (configure/store/insert/remove/update) must call
//                  check_mutable and delegate to its do_* core — the
//                  template-method contract the async layer relies on.
//   ordinal-before-validate  Inside one function, an ordinal advance
//                  (++serial_ / serial_++ / query_serial_++ /
//                  ++query_serial_ / serial_ = next /
//                  query_serial_ = next) must come after a validate_*
//                  or check_* call (the repo's two validation-helper
//                  naming conventions) — a rejected request must never
//                  consume an ordinal.
//   pragma-expiry  A committed `#pragma GCC diagnostic` must sit under
//                  an #if with an upper compiler-version bound
//                  (`__GNUC__ < N`) within the 10 preceding lines, so
//                  suppressions expire instead of outliving the bug
//                  they worked around.
//   raw-file-io    Serving/encode/bench code (src/serve/, src/encode/,
//                  bench/) must not open files directly (fopen /
//                  std::ofstream / std::fstream) — bytes that must
//                  survive a crash (snapshots, WALs, BENCH_*.json) go
//                  through util::durable_file (atomic_write_file,
//                  AppendFile) and inherit its fsync discipline.
//   rejection-base  A class in src/serve/ must not derive directly from
//                  std::runtime_error / std::logic_error: typed request
//                  rejections derive from serve::RejectedRequest (so
//                  one catch sheds on every reason). Index-state errors
//                  that are deliberately not rejections (CorruptLog,
//                  SnapshotMismatch) carry a waiver explaining why.
//
// Repo-graph rules (directory scans only — a single-file invocation
// has no tree to build a model from):
//   layering-upward  An #include edge that points upward in the module
//                  DAG (util -> encode/device -> circuit -> core ->
//                  arch -> ml/csp/data/baseline -> serve ->
//                  bench/tools/examples/tests). Waivable per directed
//                  module edge in tools/layering.conf, never per file;
//                  a conf entry whose edge no longer exists is itself
//                  an error.
//   layering-cycle  The module include graph (waived edges included)
//                  contains a cycle.
//   lock-order-cycle  The union of declared ACQUIRED_BEFORE /
//                  ACQUIRED_AFTER edges and observed same-scope nested
//                  acquisitions is cyclic. Not waivable: a lock cycle
//                  is a deadlock, not a style choice.
//   lock-order-undeclared  A function acquires an annotated mutex
//                  while holding another, and no declared
//                  ACQUIRED_BEFORE path connects them. Waivable on the
//                  acquisition line for locks that cannot name their
//                  partner in an attribute (e.g. members of stack-local
//                  structs).
//   reject-reason-unmapped  A RejectReason enumerator without a
//                  to_string case, a to_string case for a name that is
//                  not an enumerator, or a RejectedRequest subclass
//                  that does not construct with a known enumerator.
//   orphan-failpoint  A failpoint_hit("site") under src/ whose name
//                  appears in neither crash sweep
//                  (tests/test_durable.cpp / tests/test_sharded.cpp):
//                  an untested crash point is a fault-injection hole.
//   stale-bench-label  A label committed in a BENCH_*.json that no
//                  bench emitter can produce from its string literals
//                  (directly or as a two-literal concatenation), a
//                  committed bench name with no emitter, or a CI
//                  bench_compare baseline that is not a committed
//                  BENCH_*.json.
//   stale-ci-label  A ctest -L/-LE pattern token in CI that matches no
//                  LABELS assignment in CMakeLists.txt — the filter
//                  would silently select nothing.
//   budget-overflow  More than 5 NOLINT markers across src/, or more
//                  than 8 ferex-lint waivers repo-wide. Suppressions
//                  are debt; the budget keeps the balance visible.
//
// Waiver: append `// ferex-lint: allow(<rule-id>)` on the offending
// line, with a justifying comment nearby. Waivers are part of the
// reviewed diff — that is the point. Only end-of-line waivers on code
// lines count against the waiver budget; a tag on a comment-only line
// is documentation.
//
// Usage: ferex_lint [options] [path...]   (default: current directory)
//   --json <file>     also write the full report as JSON
//   --explain <rule>  print the rationale for one rule id and exit
//   --lock-hierarchy  print the inferred global lock order (topological
//                     over declared+observed edges) before the report
// Directories are walked recursively; .*/_deps/lint_fixtures are
// skipped anywhere, build*/cmake-build* only at the root (so
// src/builder/ is linted while build trees are not), and .github is
// walked despite the dot (CI labels live there). Explicitly named
// files are always scanned.
// Exit codes: 0 clean, 1 violations found, 2 I/O or usage error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string path;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// One string literal's content range in the raw text (quotes excluded).
struct Lit {
  std::size_t pos = 0;
  std::size_t len = 0;
};

/// Blanks comments and string/char literals (newlines kept, so
/// positions still map to line numbers). Token rules run on the result;
/// waiver detection runs on the raw text, where the comments live.
/// When `lits` is given, every string literal's content range is
/// recorded — the graph rules need literal values (failpoint names,
/// bench labels) and the budget counter needs to tell comments from
/// strings among the blanked regions.
std::string strip(const std::string& text, std::vector<Lit>* lits = nullptr) {
  std::string out = text;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;         // for R"delim( ... )delim"
  std::size_t lit_start = 0;     // content start of the open literal
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' && (i == 0 || !is_ident(text[i - 1]))) {
          // R"delim( — capture the delimiter so the close matches.
          std::size_t p = i + 2;
          raw_delim.clear();
          while (p < text.size() && text[p] != '(') raw_delim += text[p++];
          lit_start = p + 1;
          state = State::kRaw;
        } else if (c == '"') {
          lit_start = i + 1;
          state = State::kString;
        } else if (c == '\'' && (i == 0 || !is_ident(text[i - 1]))) {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < text.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          if (lits != nullptr) lits->push_back({lit_start, i - lit_start});
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < text.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kRaw: {
        const std::string close = ")" + raw_delim + "\"";
        if (text.compare(i, close.size(), close) == 0) {
          if (lits != nullptr) lits->push_back({lit_start, i - lit_start});
          for (std::size_t k = 0; k < close.size(); ++k) out[i + k] = ' ';
          i += close.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos),
                            '\n'));
}

/// The raw source line `line` (1-based), for waiver checks and reports.
std::string raw_line(const std::string& text, std::size_t line) {
  std::size_t start = 0;
  for (std::size_t l = 1; l < line; ++l) {
    start = text.find('\n', start);
    if (start == std::string::npos) return "";
    ++start;
  }
  const std::size_t end = text.find('\n', start);
  return text.substr(start, end == std::string::npos ? end : end - start);
}

bool waived(const std::string& raw, std::size_t line, const std::string& rule) {
  const std::string tag = "ferex-lint: allow(" + rule + ")";
  return raw_line(raw, line).find(tag) != std::string::npos;
}

struct FileCheck {
  const std::string& path;     ///< forward-slash path, used for scoping
  const std::string& raw;      ///< original text (waivers, line lookup)
  const std::string& code;     ///< comment/string-stripped text
  std::vector<Violation>& out;

  void report(std::size_t pos, const char* rule, std::string message) const {
    const std::size_t line = line_of(code, pos);
    if (waived(raw, line, rule)) return;
    out.push_back({path, line, rule, std::move(message)});
  }

  bool in(const char* fragment) const {
    return path.find(fragment) != std::string::npos;
  }
};

// ------------------------------------------------------------ raw-thread --
void check_raw_thread(const FileCheck& f) {
  if (!f.in("src/") || f.in("src/util/")) return;
  static constexpr std::string_view kTokens[] = {"std::thread", "std::jthread",
                                                 "std::async"};
  for (const auto token : kTokens) {
    for (std::size_t pos = f.code.find(token); pos != std::string::npos;
         pos = f.code.find(token, pos + 1)) {
      if (pos > 0 && is_ident(f.code[pos - 1])) continue;
      const std::size_t after = pos + token.size();
      if (after < f.code.size() && is_ident(f.code[after])) continue;
      // std::thread::hardware_concurrency is a capability query, not a
      // spawn — static member access stays legal.
      if (f.code.compare(after, 2, "::") == 0) continue;
      f.report(pos, "raw-thread",
               std::string(token) +
                   " outside src/util/ — use util::parallel_for or the "
                   "serving dispatchers");
    }
  }
}

// ------------------------------------------------------------ raw-random --
void check_raw_random(const FileCheck& f) {
  if (f.in("src/util/rng")) return;
  static constexpr std::string_view kTokens[] = {
      "std::random_device", "std::rand", "std::srand", "srand", "rand"};
  for (const auto token : kTokens) {
    for (std::size_t pos = f.code.find(token); pos != std::string::npos;
         pos = f.code.find(token, pos + 1)) {
      if (pos > 0 && (is_ident(f.code[pos - 1]) || f.code[pos - 1] == ':')) {
        continue;  // part of a longer identifier, or already matched
                   // via the std::-qualified token
      }
      const std::size_t after = pos + token.size();
      if (after < f.code.size() && is_ident(f.code[after])) continue;
      // Bare rand/srand must be a call to count (a local named `rand`
      // would be questionable style but is not this rule's business).
      if (token == "srand" || token == "rand") {
        std::size_t p = after;
        while (p < f.code.size() &&
               std::isspace(static_cast<unsigned char>(f.code[p])) != 0) {
          ++p;
        }
        if (p >= f.code.size() || f.code[p] != '(') continue;
      }
      f.report(pos, "raw-random",
               std::string(token) +
                   " outside src/util/rng — all randomness is seeded "
                   "through util::SplitMix64");
    }
  }
}

// ------------------------------------------------------- guarded-mutator --
void check_guarded_mutator(const FileCheck& f) {
  if (f.path.size() < 4 || f.path.compare(f.path.size() - 4, 4, ".cpp") != 0) {
    return;
  }
  static constexpr std::string_view kOps[] = {"configure", "store", "insert",
                                              "remove", "update"};
  for (const auto op : kOps) {
    const std::string needle = "AmIndex::" + std::string(op) + "(";
    for (std::size_t pos = f.code.find(needle); pos != std::string::npos;
         pos = f.code.find(needle, pos + 1)) {
      // Boundary: excludes AsyncAmIndex:: and any FooAmIndex:: wrapper.
      if (pos > 0 && is_ident(f.code[pos - 1])) continue;
      // Definition (next structural token is '{') vs declaration/call.
      std::size_t p = pos + needle.size();
      int parens = 1;
      while (p < f.code.size() && parens > 0) {
        if (f.code[p] == '(') ++parens;
        if (f.code[p] == ')') --parens;
        ++p;
      }
      while (p < f.code.size() && f.code[p] != '{' && f.code[p] != ';') ++p;
      if (p >= f.code.size() || f.code[p] != '{') continue;
      const std::size_t body_open = p;
      int braces = 1;
      ++p;
      while (p < f.code.size() && braces > 0) {
        if (f.code[p] == '{') ++braces;
        if (f.code[p] == '}') --braces;
        ++p;
      }
      const std::string_view body(f.code.data() + body_open, p - body_open);
      const std::string core = "do_" + std::string(op);
      const bool has_guard = body.find("check_mutable") != std::string_view::npos;
      const bool has_core = body.find(core) != std::string_view::npos;
      if (!has_guard || !has_core) {
        f.report(pos, "guarded-mutator",
                 "AmIndex::" + std::string(op) + " must call check_mutable " +
                     "and delegate to " + core +
                     " (template-method write contract)");
      }
    }
  }
}

// ----------------------------------------------- ordinal-before-validate --
/// True when the '{' at `pos` opens a function (or lambda) body rather
/// than a class/namespace/enum/control-statement/initializer block.
bool opens_function(const std::string& code, std::size_t pos) {
  std::size_t p = pos;
  static constexpr std::string_view kSkippable[] = {"const", "noexcept",
                                                    "override", "final",
                                                    "mutable"};
  for (;;) {
    while (p > 0 &&
           std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
      --p;
    }
    if (p == 0) return false;
    const char c = code[p - 1];
    if (is_ident(c)) {
      std::size_t start = p;
      while (start > 0 && is_ident(code[start - 1])) --start;
      const std::string_view word(code.data() + start, p - start);
      bool skip = false;
      for (const auto s : kSkippable) skip = skip || word == s;
      if (!skip) return false;  // struct/namespace name, else/do/try, ...
      p = start;
      continue;
    }
    if (c == ')') {
      // Walk back over the parameter list; a control-flow keyword in
      // front of the '(' means this is if/for/while/switch/catch.
      int parens = 0;
      while (p > 0) {
        --p;
        if (code[p] == ')') ++parens;
        if (code[p] == '(') {
          --parens;
          if (parens == 0) break;
        }
      }
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
        --p;
      }
      std::size_t start = p;
      while (start > 0 && is_ident(code[start - 1])) --start;
      const std::string_view word(code.data() + start, p - start);
      static constexpr std::string_view kControl[] = {"if", "for", "while",
                                                      "switch", "catch"};
      for (const auto k : kControl) {
        if (word == k) return false;
      }
      return true;  // function definition, ctor init entry, or lambda
    }
    return false;  // '=', ',', '{', ':', ... — aggregate or scope block
  }
}

void check_ordinal_before_validate(const FileCheck& f) {
  if (!f.in("src/")) return;
  const std::string& code = f.code;

  struct Frame {
    bool is_function = false;
    bool validated = false;
  };
  std::vector<Frame> stack;
  const auto innermost_function = [&]() -> Frame* {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->is_function) return &*it;
    }
    return nullptr;
  };

  for (std::size_t pos = 0; pos < code.size(); ++pos) {
    const char c = code[pos];
    if (c == '{') {
      stack.push_back({opens_function(code, pos), false});
      continue;
    }
    if (c == '}') {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    if (!is_ident(c) || (pos > 0 && is_ident(code[pos - 1]))) continue;
    std::size_t end = pos;
    while (end < code.size() && is_ident(code[end])) ++end;
    const std::string_view word(code.data() + pos, end - pos);

    const bool is_validation_call =
        (word.size() >= 9 && word.substr(0, 9) == "validate_") ||
        (word.size() >= 6 && word.substr(0, 6) == "check_");
    if (is_validation_call) {
      // Mark the enclosing function and everything nested inside it.
      bool inside = false;
      for (auto& frame : stack) {
        inside = inside || frame.is_function;
        if (inside) frame.validated = true;
      }
    } else if (word == "serial_" || word == "query_serial_") {
      // An *advance* is ++x / x++ / x = next; plain reads are free.
      std::size_t before = pos;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(code[before - 1])) != 0) {
        --before;
      }
      const bool pre_inc =
          before >= 2 && code[before - 1] == '+' && code[before - 2] == '+';
      std::size_t after = end;
      while (after < code.size() &&
             std::isspace(static_cast<unsigned char>(code[after])) != 0) {
        ++after;
      }
      const bool post_inc = code.compare(after, 2, "++") == 0;
      bool assign_next = false;
      if (after < code.size() && code[after] == '=' &&
          (after + 1 >= code.size() || code[after + 1] != '=')) {
        std::size_t rhs = after + 1;
        while (rhs < code.size() &&
               std::isspace(static_cast<unsigned char>(code[rhs])) != 0) {
          ++rhs;
        }
        assign_next = code.compare(rhs, 4, "next") == 0 &&
                      (rhs + 4 >= code.size() || !is_ident(code[rhs + 4]));
      }
      if (pre_inc || post_inc || assign_next) {
        Frame* fn = innermost_function();
        if (fn != nullptr && !fn->validated) {
          f.report(pos, "ordinal-before-validate",
                   std::string(word) +
                       " advanced before any validate_*/check_mutable call "
                       "in this function — rejected requests must not "
                       "consume ordinals");
        }
      }
    }
    pos = end - 1;
  }
}

// ----------------------------------------------------------- raw-file-io --
void check_raw_file_io(const FileCheck& f) {
  // bench/ is covered too: a bench killed mid-write must never leave a
  // torn BENCH_*.json for bench_compare to reject — emitters go through
  // util::atomic_write_file like every other durable writer.
  if (!f.in("src/serve/") && !f.in("src/encode/") && !f.in("bench/")) return;
  // ifstream (read-only) stays legal: the rule protects the write path,
  // where a missed fsync turns a crash into silent data loss.
  static constexpr std::string_view kTokens[] = {"fopen", "ofstream",
                                                 "fstream"};
  for (const auto token : kTokens) {
    for (std::size_t pos = f.code.find(token); pos != std::string::npos;
         pos = f.code.find(token, pos + 1)) {
      if (pos > 0 && is_ident(f.code[pos - 1])) continue;  // ifstream, ...
      const std::size_t after = pos + token.size();
      if (after < f.code.size() && is_ident(f.code[after])) continue;
      f.report(pos, "raw-file-io",
               std::string(token) +
                   " under src/serve|src/encode|bench — durable bytes go "
                   "through util::durable_file (atomic_write_file / "
                   "AppendFile)");
    }
  }
}

// -------------------------------------------------------- rejection-base --
void check_rejection_base(const FileCheck& f) {
  if (!f.in("src/serve/")) return;
  static constexpr std::string_view kBases[] = {"std::runtime_error",
                                                "std::logic_error"};
  static constexpr std::string_view kBaseKeywords[] = {"public", "protected",
                                                       "private", "virtual"};
  for (const auto base : kBases) {
    for (std::size_t pos = f.code.find(base); pos != std::string::npos;
         pos = f.code.find(base, pos + 1)) {
      if (pos > 0 && is_ident(f.code[pos - 1])) continue;
      // A base-clause use is followed by '{' or ',' (the class body or
      // the next base); a constructor-init or throw is followed by '('.
      std::size_t after = pos + base.size();
      while (after < f.code.size() &&
             std::isspace(static_cast<unsigned char>(f.code[after])) != 0) {
        ++after;
      }
      if (after >= f.code.size() ||
          (f.code[after] != '{' && f.code[after] != ',')) {
        continue;
      }
      // Walk back over access/virtual keywords to the ':' or ',' that
      // introduces the base list.
      std::size_t p = pos;
      for (;;) {
        while (p > 0 &&
               std::isspace(static_cast<unsigned char>(f.code[p - 1])) != 0) {
          --p;
        }
        if (p == 0) break;
        if (is_ident(f.code[p - 1])) {
          std::size_t start = p;
          while (start > 0 && is_ident(f.code[start - 1])) --start;
          const std::string_view word(f.code.data() + start, p - start);
          bool keyword = false;
          for (const auto k : kBaseKeywords) keyword = keyword || word == k;
          if (!keyword) break;
          p = start;
          continue;
        }
        break;
      }
      if (p == 0 || (f.code[p - 1] != ':' && f.code[p - 1] != ',')) continue;
      f.report(pos, "rejection-base",
               "class in src/serve/ derives directly from " +
                   std::string(base) +
                   " — typed rejections derive from serve::RejectedRequest "
                   "(waive only for non-rejection state errors)");
    }
  }
}

// --------------------------------------------------------- pragma-expiry --
void check_pragma_expiry(const FileCheck& f) {
  const std::string needle = "#pragma";
  for (std::size_t pos = f.code.find(needle); pos != std::string::npos;
       pos = f.code.find(needle, pos + 1)) {
    const std::size_t line = line_of(f.code, pos);
    if (raw_line(f.raw, line).find("GCC diagnostic") == std::string::npos) {
      continue;
    }
    bool has_if = false;
    bool has_upper_bound = false;
    const std::size_t first =
        line > 10 ? line - 10 : static_cast<std::size_t>(1);
    for (std::size_t l = first; l < line; ++l) {
      const std::string above = raw_line(f.raw, l);
      has_if = has_if || above.find("#if") != std::string::npos;
      const std::size_t g = above.find("__GNUC__");
      if (g != std::string::npos) {
        std::size_t p = g + std::string_view("__GNUC__").size();
        while (p < above.size() &&
               std::isspace(static_cast<unsigned char>(above[p])) != 0) {
          ++p;
        }
        if (p < above.size() && above[p] == '<') has_upper_bound = true;
      }
    }
    if (!has_if || !has_upper_bound) {
      f.report(pos, "pragma-expiry",
               "#pragma GCC diagnostic without a version-bounded guard "
               "(#if ... __GNUC__ < N) in the 10 lines above — "
               "suppressions must expire");
    }
  }
}

// ===================================================== phase-1 repo model --

/// A mutex named in source: the declaring class ("" at namespace scope)
/// plus the member name. The pair is the node identity in the lock
/// graph — the repo has three distinct `submit_mutex_`s.
struct LockSite {
  std::string cls;
  std::string name;

  bool operator==(const LockSite& o) const {
    return cls == o.cls && name == o.name;
  }
  bool operator<(const LockSite& o) const {
    return cls != o.cls ? cls < o.cls : name < o.name;
  }
  std::string str() const { return cls.empty() ? name : cls + "::" + name; }
};

struct MutexDecl {
  LockSite id;
  std::string path;
  std::size_t line = 0;
  std::vector<std::string> before;  ///< ACQUIRED_BEFORE arg names (unresolved)
  std::vector<std::string> after;   ///< ACQUIRED_AFTER arg names
};

/// One nested acquisition: `to` taken while `from`'s RAII scope is open.
struct ObservedEdge {
  LockSite from;
  LockSite to;
  std::string path;
  std::size_t line = 0;
  std::string func;
  bool waived = false;  ///< lock-order-undeclared waiver on the line
};

struct SiteRef {
  std::string text;
  std::string path;
  std::size_t line = 0;
  bool waived = false;
};

struct Subclass {
  std::string name;
  std::string reason;  ///< first RejectReason::<x> in the body; "" if none
  std::string path;
  std::size_t line = 0;
};

struct BenchJson {
  std::string path;
  std::string name;  ///< the "bench" value; "" when the key is absent
  std::size_t name_line = 1;
  std::vector<SiteRef> labels;
};

struct Model {
  std::vector<MutexDecl> mutexes;
  std::vector<ObservedEdge> observed;
  std::vector<SiteRef> failpoints;     ///< src/ failpoint_hit sites
  std::set<std::string> sweep_names;   ///< literals in the crash sweeps
  int sweep_files = 0;
  bool reject_enum = false;
  std::vector<SiteRef> enumerators;    ///< RejectReason enumerators
  std::vector<SiteRef> reason_cases;   ///< `case RejectReason::x` labels
  std::vector<Subclass> subclasses;    ///< RejectedRequest derivations
  // (from-module, to-module) -> first include site
  std::map<std::pair<std::string, std::string>, std::pair<std::string, std::size_t>>
      module_edges;
  std::map<std::string, std::set<std::string>> bench_literals;  ///< bench/*.cpp
  std::vector<BenchJson> bench_jsons;
  std::set<std::string> cmake_labels;
  std::vector<SiteRef> ci_tokens;      ///< ctest -L/-LE pattern alternatives
  std::vector<SiteRef> ci_bench_refs;  ///< bench_compare BENCH_*.json args
  std::vector<SiteRef> nolints;        ///< NOLINT markers under src/
  std::vector<SiteRef> waivers;        ///< end-of-line ferex-lint waivers
  std::size_t files_scanned = 0;
  bool dir_scanned = false;
};

std::size_t skip_ws(const std::string& code, std::size_t p) {
  while (p < code.size() &&
         std::isspace(static_cast<unsigned char>(code[p])) != 0) {
    ++p;
  }
  return p;
}

/// Last identifier token in `text` — the terminal name of expressions
/// like `job.error_mutex` or `shard->mu_`.
std::string terminal_ident(std::string_view text) {
  std::size_t end = text.size();
  while (end > 0 && !is_ident(text[end - 1])) --end;
  std::size_t start = end;
  while (start > 0 && is_ident(text[start - 1])) --start;
  return std::string(text.substr(start, end - start));
}

bool all_caps(std::string_view word) {
  if (word.empty()) return false;
  for (const char c : word) {
    if (std::isupper(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        std::isdigit(static_cast<unsigned char>(c)) == 0) {
      return false;
    }
  }
  return true;
}

/// Qualified name of the function whose body opens at `pos` (a '{' for
/// which opens_function() held). Walks back over trailing qualifiers
/// and thread-safety attribute macros to the parameter list, then
/// collects the `A::B::name` chain. "" for lambdas.
std::string function_name_at(const std::string& code, std::size_t pos) {
  std::size_t p = pos;
  static constexpr std::string_view kSkippable[] = {"const", "noexcept",
                                                    "override", "final",
                                                    "mutable"};
  int attribute_hops = 0;
  for (;;) {
    while (p > 0 &&
           std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
      --p;
    }
    if (p == 0) return "";
    const char c = code[p - 1];
    if (is_ident(c)) {
      std::size_t start = p;
      while (start > 0 && is_ident(code[start - 1])) --start;
      const std::string_view word(code.data() + start, p - start);
      bool skip = false;
      for (const auto s : kSkippable) skip = skip || word == s;
      if (!skip) return "";
      p = start;
      continue;
    }
    if (c != ')') return "";
    int parens = 0;
    while (p > 0) {
      --p;
      if (code[p] == ')') ++parens;
      if (code[p] == '(') {
        --parens;
        if (parens == 0) break;
      }
    }
    while (p > 0 &&
           std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
      --p;
    }
    std::size_t end = p;
    std::size_t start = p;
    while (start > 0 && is_ident(code[start - 1])) --start;
    const std::string_view word(code.data() + start, end - start);
    if (word.empty()) return "";  // lambda: '(' directly after ']'
    // REQUIRES(mu) / ACQUIRE(mu) / ... sit between the parameter list
    // and the body; hop over at most a couple of them.
    if (all_caps(word) && attribute_hops < 3) {
      ++attribute_hops;
      p = start;
      continue;
    }
    std::string name(word);
    p = start;
    while (p >= 2 && code[p - 1] == ':' && code[p - 2] == ':') {
      p -= 2;
      std::size_t qe = p;
      std::size_t qs = p;
      while (qs > 0 && is_ident(code[qs - 1])) --qs;
      if (qs == qe) break;
      name = std::string(code, qs, qe - qs) + "::" + name;
      p = qs;
    }
    if (p > 0 && code[p - 1] == '~') name = "~" + name;
    return name;
  }
}

enum class FrameKind { kFunction, kClass, kNamespace, kBlock };

struct ScopeFrame {
  FrameKind kind = FrameKind::kBlock;
  std::string name;
  std::vector<LockSite> locks;  ///< RAII locks acquired in this scope
};

/// Classifies the '{' at `pos`: function body (via opens_function),
/// class/struct body, namespace, or plain block. The class name is the
/// last identifier before the base-list ':' (or before the brace),
/// which sees through attribute macros like CAPABILITY("mutex").
ScopeFrame classify_scope(const std::string& code, std::size_t pos) {
  if (opens_function(code, pos)) {
    return {FrameKind::kFunction, function_name_at(code, pos), {}};
  }
  std::size_t begin = pos;
  while (begin > 0 && code[begin - 1] != ';' && code[begin - 1] != '{' &&
         code[begin - 1] != '}') {
    --begin;
  }
  const std::string_view span(code.data() + begin, pos - begin);
  // Tokenize the statement head looking for the introducing keyword.
  bool is_class = false;
  bool is_namespace = false;
  bool is_enum = false;
  std::size_t name_end_limit = span.size();
  for (std::size_t i = 0; i < span.size(); ++i) {
    if (!is_ident(span[i]) || (i > 0 && is_ident(span[i - 1]))) continue;
    std::size_t e = i;
    while (e < span.size() && is_ident(span[e])) ++e;
    const std::string_view word = span.substr(i, e - i);
    if (word == "enum") is_enum = true;
    if ((word == "class" || word == "struct") && !is_enum) is_class = true;
    if (word == "namespace") is_namespace = true;
    i = e - 1;
  }
  if (is_enum || (!is_class && !is_namespace)) {
    return {FrameKind::kBlock, "", {}};
  }
  // Cut the name search at the base-list ':' (single colon, not '::').
  for (std::size_t i = 0; i + 1 <= span.size(); ++i) {
    if (span[i] != ':') continue;
    const bool dbl = (i + 1 < span.size() && span[i + 1] == ':') ||
                     (i > 0 && span[i - 1] == ':');
    if (dbl) {
      ++i;
      continue;
    }
    name_end_limit = i;
    break;
  }
  std::string name;
  std::size_t i = name_end_limit;
  while (i > 0) {
    while (i > 0 && !is_ident(span[i - 1])) --i;
    std::size_t s = i;
    while (s > 0 && is_ident(span[s - 1])) --s;
    const std::string_view word = span.substr(s, i - s);
    if (word != "final" && word != "class" && word != "struct" &&
        word != "namespace") {
      name = std::string(word);
      break;
    }
    if (word == "class" || word == "struct" || word == "namespace") break;
    i = s;
  }
  return {is_namespace ? FrameKind::kNamespace : FrameKind::kClass, name, {}};
}

/// The class an acquisition/declaration at the current scope belongs
/// to: nearest class frame, else the `Cls` of the nearest enclosing
/// `Cls::method` out-of-line definition.
std::string enclosing_class(const std::vector<ScopeFrame>& stack) {
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->kind == FrameKind::kClass) return it->name;
    if (it->kind == FrameKind::kFunction) {
      const std::size_t sep = it->name.rfind("::");
      if (sep != std::string::npos) return it->name.substr(0, sep);
    }
  }
  return "";
}

std::string enclosing_function(const std::vector<ScopeFrame>& stack) {
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->kind == FrameKind::kFunction && !it->name.empty()) {
      return it->name;
    }
  }
  return "?";
}

/// Splits `Mutex a_, b_` attribute argument lists on top-level commas
/// and keeps each argument's terminal identifier.
void parse_attr_args(const std::string& code, std::size_t open_paren,
                     std::vector<std::string>& out) {
  std::size_t p = open_paren + 1;
  int depth = 1;
  std::size_t arg_start = p;
  while (p < code.size() && depth > 0) {
    const char c = code[p];
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if ((c == ',' && depth == 1) || (c == ')' && depth == 0)) {
      const std::string name = terminal_ident(
          std::string_view(code.data() + arg_start, p - arg_start));
      if (!name.empty()) out.push_back(name);
      arg_start = p + 1;
    }
    ++p;
  }
}

/// Phase-1 fact extraction for one C++ file. `rel` is the path the
/// model keys scopes on: root-relative for walked files, the path as
/// given for explicit file arguments.
void extract_facts(const std::string& rel, const std::string& display,
                   const std::string& raw, const std::string& code,
                   const std::vector<Lit>& lits, Model& model) {
  const bool in_src = rel.rfind("src/", 0) == 0;

  // --- include edges (module layering) -------------------------------
  // Includes live on preprocessor lines; the quoted path is blanked in
  // `code`, so read it from the raw text at each #include in code.
  static const std::set<std::string> kSrcModules = {
      "util", "encode", "device", "circuit", "core",    "arch",
      "ml",   "csp",    "data",   "baseline", "serve"};
  std::string from_module;
  if (in_src) {
    const std::size_t slash = rel.find('/', 4);
    if (slash != std::string::npos) from_module = rel.substr(0, slash);
  } else {
    const std::size_t slash = rel.find('/');
    if (slash != std::string::npos) from_module = rel.substr(0, slash);
  }
  if (!from_module.empty()) {
    for (std::size_t pos = code.find("#include"); pos != std::string::npos;
         pos = code.find("#include", pos + 1)) {
      const std::size_t line = line_of(code, pos);
      const std::string src_line = raw_line(raw, line);
      const std::size_t q1 = src_line.find('"');
      if (q1 == std::string::npos) continue;  // <system> include
      const std::size_t q2 = src_line.find('"', q1 + 1);
      if (q2 == std::string::npos) continue;
      const std::string target = src_line.substr(q1 + 1, q2 - q1 - 1);
      const std::size_t slash = target.find('/');
      if (slash == std::string::npos) continue;  // local header
      const std::string head = target.substr(0, slash);
      if (kSrcModules.count(head) == 0) continue;
      const std::string to_module = "src/" + head;
      if (to_module == from_module) continue;
      model.module_edges.emplace(std::make_pair(from_module, to_module),
                                 std::make_pair(display, line));
    }
  }

  // --- literal-derived facts ------------------------------------------
  const auto literal_at = [&](std::size_t content_pos) -> const Lit* {
    for (const Lit& lit : lits) {
      if (lit.pos == content_pos) return &lit;
    }
    return nullptr;
  };
  const auto in_literal = [&](std::size_t pos) {
    for (const Lit& lit : lits) {
      if (pos >= lit.pos && pos < lit.pos + lit.len) return true;
    }
    return false;
  };

  if (rel == "tests/test_durable.cpp" || rel == "tests/test_sharded.cpp") {
    ++model.sweep_files;
    for (const Lit& lit : lits) {
      model.sweep_names.insert(raw.substr(lit.pos, lit.len));
    }
  }
  if (rel.rfind("bench/", 0) == 0 && rel.size() > 4 &&
      rel.compare(rel.size() - 4, 4, ".cpp") == 0) {
    auto& set = model.bench_literals[display];
    for (const Lit& lit : lits) set.insert(raw.substr(lit.pos, lit.len));
  }

  // --- budget counters -------------------------------------------------
  // A blanked position that is not literal content is a comment. NOLINT
  // counts wherever it appears in a src/ comment; a waiver counts only
  // as the end-of-line comment of a code line (matching how waived()
  // applies it — a tag on a comment-only line is documentation).
  if (in_src) {
    for (std::size_t pos = raw.find("NOLINT"); pos != std::string::npos;
         pos = raw.find("NOLINT", pos + 6)) {
      if (code[pos] == 'N' || in_literal(pos)) continue;
      model.nolints.push_back({"NOLINT", display, line_of(raw, pos), false});
    }
  }
  static constexpr std::string_view kWaiverTag = "ferex-lint: allow(";
  for (std::size_t pos = raw.find(kWaiverTag); pos != std::string::npos;
       pos = raw.find(kWaiverTag, pos + 1)) {
    if (code[pos] == 'f' || in_literal(pos)) continue;
    const std::size_t line = line_of(raw, pos);
    std::size_t line_start = pos;
    while (line_start > 0 && raw[line_start - 1] != '\n') --line_start;
    bool has_code = false;
    for (std::size_t p = line_start; p < pos; ++p) {
      if (std::isspace(static_cast<unsigned char>(code[p])) == 0) {
        has_code = true;
        break;
      }
    }
    if (has_code) model.waivers.push_back({"waiver", display, line, false});
  }

  // --- scope-tracked token scan ---------------------------------------
  std::vector<ScopeFrame> stack;
  for (std::size_t pos = 0; pos < code.size(); ++pos) {
    const char c = code[pos];
    if (c == '{') {
      stack.push_back(classify_scope(code, pos));
      continue;
    }
    if (c == '}') {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    if (!is_ident(c) || (pos > 0 && is_ident(code[pos - 1]))) continue;
    std::size_t end = pos;
    while (end < code.size() && is_ident(code[end])) ++end;
    const std::string_view word(code.data() + pos, end - pos);

    // Mutex member declaration: [util::]Mutex|SharedMutex <name> ...;
    if (word == "Mutex" || word == "SharedMutex") {
      // Reject foreign qualifiers (std:: etc.); util:: and unqualified
      // are the repo's two spellings.
      if (pos >= 2 && code[pos - 1] == ':' && code[pos - 2] == ':') {
        std::size_t qe = pos - 2;
        std::size_t qs = qe;
        while (qs > 0 && is_ident(code[qs - 1])) --qs;
        if (std::string_view(code.data() + qs, qe - qs) != "util") {
          pos = end - 1;
          continue;
        }
      }
      std::size_t p = skip_ws(code, end);
      if (p >= code.size() || !is_ident(code[p]) ||
          std::isdigit(static_cast<unsigned char>(code[p])) != 0) {
        pos = end - 1;
        continue;  // `Mutex&`, `Mutex {`, `Mutex)` — not a declaration
      }
      std::size_t name_end = p;
      while (name_end < code.size() && is_ident(code[name_end])) ++name_end;
      MutexDecl decl;
      decl.id.cls = enclosing_class(stack);
      decl.id.name = std::string(code, p, name_end - p);
      decl.path = display;
      decl.line = line_of(code, p);
      // Scan the rest of the declaration (to ';') for ordering
      // attributes.
      std::size_t q = name_end;
      while (q < code.size() && code[q] != ';' && code[q] != '{' &&
             code[q] != '}') {
        if (is_ident(code[q]) && (q == 0 || !is_ident(code[q - 1]))) {
          std::size_t we = q;
          while (we < code.size() && is_ident(code[we])) ++we;
          const std::string_view attr(code.data() + q, we - q);
          std::size_t paren = skip_ws(code, we);
          if (paren < code.size() && code[paren] == '(') {
            if (attr == "ACQUIRED_BEFORE") {
              parse_attr_args(code, paren, decl.before);
            } else if (attr == "ACQUIRED_AFTER") {
              parse_attr_args(code, paren, decl.after);
            }
          }
          q = we;
          continue;
        }
        ++q;
      }
      if (q < code.size() && code[q] == ';') model.mutexes.push_back(decl);
      pos = end - 1;
      continue;
    }

    // Scoped-lock acquisition: [util::]XxxMutexLock <var>(<expr>...);
    if (word == "MutexLock" || word == "ReaderMutexLock" ||
        word == "WriterMutexLock") {
      std::size_t p = skip_ws(code, end);
      if (p >= code.size() || !is_ident(code[p])) {
        pos = end - 1;
        continue;  // constructor declaration / deleted copy — no var
      }
      while (p < code.size() && is_ident(code[p])) ++p;
      p = skip_ws(code, p);
      if (p >= code.size() || code[p] != '(') {
        pos = end - 1;
        continue;
      }
      std::size_t arg_end = p + 1;
      int depth = 1;
      while (arg_end < code.size() && depth > 0) {
        if (code[arg_end] == '(') ++depth;
        if (code[arg_end] == ')') --depth;
        if (code[arg_end] == ',' && depth == 1) break;
        ++arg_end;
      }
      LockSite acquired;
      acquired.cls = enclosing_class(stack);
      acquired.name = terminal_ident(
          std::string_view(code.data() + p + 1, arg_end - p - 1));
      if (!acquired.name.empty() && !stack.empty()) {
        const std::size_t line = line_of(code, pos);
        const bool edge_waived =
            waived(raw, line, "lock-order-undeclared");
        const std::string func = enclosing_function(stack);
        for (const ScopeFrame& frame : stack) {
          for (const LockSite& held : frame.locks) {
            if (held == acquired) continue;
            model.observed.push_back(
                {held, acquired, display, line, func, edge_waived});
          }
        }
        stack.back().locks.push_back(acquired);
      }
      pos = end - 1;
      continue;
    }

    // Failpoint site: failpoint_hit("name") with a direct literal.
    if (word == "failpoint_hit" && in_src) {
      std::size_t p = skip_ws(code, end);
      if (p < code.size() && code[p] == '(') {
        const std::size_t q = skip_ws(code, p + 1);
        if (q < raw.size() && raw[q] == '"') {
          if (const Lit* lit = literal_at(q + 1)) {
            const std::size_t line = line_of(code, pos);
            model.failpoints.push_back({raw.substr(lit->pos, lit->len),
                                        display, line,
                                        waived(raw, line, "orphan-failpoint")});
          }
        }
      }
      pos = end - 1;
      continue;
    }

    // RejectReason: the enum definition, case labels, and other uses.
    if (word == "RejectReason") {
      // Preceding word decides: `enum class RejectReason` vs
      // `case RejectReason::x` vs a plain qualified use.
      std::size_t bp = pos;
      while (bp > 0 &&
             std::isspace(static_cast<unsigned char>(code[bp - 1])) != 0) {
        --bp;
      }
      std::size_t bs = bp;
      while (bs > 0 && is_ident(code[bs - 1])) --bs;
      const std::string_view prev(code.data() + bs, bp - bs);
      std::size_t p = skip_ws(code, end);
      if ((prev == "class" || prev == "struct" || prev == "enum") &&
          p < code.size() && code[p] != ';' &&
          !(code[p] == ':' && p + 1 < code.size() && code[p + 1] == ':')) {
        // Definition: collect enumerators up to the matching '}'. A
        // forward declaration ends in ';' before any '{' and has no
        // body to parse.
        const std::size_t open = code.find('{', end);
        const std::size_t semi = code.find(';', end);
        if (open != std::string::npos &&
            (semi == std::string::npos || open < semi)) {
          model.reject_enum = true;
          std::size_t q = open + 1;
          bool at_enumerator = true;
          while (q < code.size() && code[q] != '}') {
            if (at_enumerator && is_ident(code[q])) {
              std::size_t we = q;
              while (we < code.size() && is_ident(code[we])) ++we;
              model.enumerators.push_back({std::string(code, q, we - q),
                                           display, line_of(code, q), false});
              at_enumerator = false;
              q = we;
              continue;
            }
            if (code[q] == ',') at_enumerator = true;
            ++q;
          }
        }
      } else if (p + 1 < code.size() && code[p] == ':' && code[p + 1] == ':') {
        const std::size_t es = skip_ws(code, p + 2);
        std::size_t ee = es;
        while (ee < code.size() && is_ident(code[ee])) ++ee;
        if (ee > es && prev == "case") {
          model.reason_cases.push_back({std::string(code, es, ee - es),
                                        display, line_of(code, pos), false});
        }
      }
      pos = end - 1;
      continue;
    }

    // RejectedRequest used as a base class -> subclass record.
    if (word == "RejectedRequest") {
      std::size_t after = skip_ws(code, end);
      if (after >= code.size() ||
          (code[after] != '{' && code[after] != ',')) {
        pos = end - 1;
        continue;  // constructor-init, catch clause, forward decl, ...
      }
      // Confirm a base-clause introducer behind the access keywords.
      std::size_t bp = pos;
      bool base_clause = false;
      for (;;) {
        while (bp > 0 &&
               std::isspace(static_cast<unsigned char>(code[bp - 1])) != 0) {
          --bp;
        }
        if (bp == 0) break;
        if (is_ident(code[bp - 1])) {
          std::size_t bs = bp;
          while (bs > 0 && is_ident(code[bs - 1])) --bs;
          const std::string_view kw(code.data() + bs, bp - bs);
          if (kw != "public" && kw != "protected" && kw != "private" &&
              kw != "virtual") {
            break;
          }
          bp = bs;
          continue;
        }
        base_clause = code[bp - 1] == ':' || code[bp - 1] == ',';
        break;
      }
      if (!base_clause) {
        pos = end - 1;
        continue;
      }
      // Name the deriving class from its statement head.
      std::size_t begin = pos;
      while (begin > 0 && code[begin - 1] != ';' && code[begin - 1] != '{' &&
             code[begin - 1] != '}') {
        --begin;
      }
      const ScopeFrame head =
          classify_scope(code, pos);  // reuses the name heuristic
      std::string cls = head.name;
      if (cls.empty() || cls == "RejectedRequest") {
        pos = end - 1;
        continue;
      }
      // First RejectReason::<x> inside the class body is the mapping.
      std::size_t body_open = code.find('{', end);
      std::string reason;
      if (body_open != std::string::npos) {
        std::size_t q = body_open;
        int depth = 0;
        do {
          if (code[q] == '{') ++depth;
          if (code[q] == '}') --depth;
          ++q;
        } while (q < code.size() && depth > 0);
        const std::string_view body(code.data() + body_open, q - body_open);
        const std::size_t use = body.find("RejectReason");
        if (use != std::string_view::npos) {
          std::size_t rs = use + std::string_view("RejectReason").size();
          while (rs < body.size() &&
                 (body[rs] == ':' ||
                  std::isspace(static_cast<unsigned char>(body[rs])) != 0)) {
            ++rs;
          }
          std::size_t re = rs;
          while (re < body.size() && is_ident(body[re])) ++re;
          reason = std::string(body.substr(rs, re - rs));
        }
      }
      model.subclasses.push_back({cls, reason, display, line_of(code, pos)});
      pos = end - 1;
      continue;
    }

    pos = end - 1;
  }
}

// ====================================================== artifact scanners --

/// CTest label assignments: `LABELS serve)` / `LABELS "serve;write")`.
void scan_cmake(const std::string& text, Model& model) {
  for (std::size_t pos = text.find("LABELS"); pos != std::string::npos;
       pos = text.find("LABELS", pos + 6)) {
    if (pos > 0 && is_ident(text[pos - 1])) continue;
    std::size_t p = pos + 6;
    while (p < text.size() && text[p] != ')') {
      p = skip_ws(text, p);
      if (p >= text.size() || text[p] == ')') break;
      std::size_t e = p;
      if (text[p] == '"') {
        e = text.find('"', p + 1);
        if (e == std::string::npos) break;
        std::string quoted = text.substr(p + 1, e - p - 1);
        std::size_t start = 0;
        while (start <= quoted.size()) {
          const std::size_t semi = quoted.find(';', start);
          const std::string label = quoted.substr(
              start, semi == std::string::npos ? semi : semi - start);
          if (!label.empty()) model.cmake_labels.insert(label);
          if (semi == std::string::npos) break;
          start = semi + 1;
        }
        p = e + 1;
        continue;
      }
      while (e < text.size() &&
             std::isspace(static_cast<unsigned char>(text[e])) == 0 &&
             text[e] != ')') {
        ++e;
      }
      if (e > p) model.cmake_labels.insert(text.substr(p, e - p));
      p = e;
    }
  }
}

/// CI workflow: ctest -L/-LE "<a|b|c>" patterns and bench_compare
/// BENCH_*.json baseline references.
void scan_workflow(const std::string& display, const std::string& text,
                   Model& model) {
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    ++line_no;
    const std::size_t nl = text.find('\n', start);
    const std::string line =
        text.substr(start, nl == std::string::npos ? nl : nl - start);
    for (const std::string_view flag : {"-L \"", "-LE \""}) {
      const std::size_t fp = line.find(flag);
      if (fp == std::string::npos) continue;
      const std::size_t open = fp + flag.size();
      const std::size_t close = line.find('"', open);
      if (close == std::string::npos) continue;
      const std::string pattern = line.substr(open, close - open);
      std::size_t tok = 0;
      while (tok <= pattern.size()) {
        const std::size_t bar = pattern.find('|', tok);
        const std::string token = pattern.substr(
            tok, bar == std::string::npos ? bar : bar - tok);
        if (!token.empty()) {
          model.ci_tokens.push_back({token, display, line_no, false});
        }
        if (bar == std::string::npos) break;
        tok = bar + 1;
      }
    }
    if (line.find("bench_compare") != std::string::npos) {
      for (std::size_t bp = line.find("BENCH_"); bp != std::string::npos;
           bp = line.find("BENCH_", bp + 1)) {
        std::size_t e = bp + 6;
        while (e < line.size() && is_ident(line[e])) ++e;
        if (line.compare(e, 5, ".json") == 0 && e > bp + 6) {
          model.ci_bench_refs.push_back(
              {line.substr(bp, e + 5 - bp), display, line_no, false});
        }
      }
    }
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
}

/// Committed BENCH_*.json: the "bench" name and every "label" value,
/// via a flat string scan (the schema is the repo's own emitter).
void scan_bench_json(const std::string& display, const std::string& text,
                     Model& model) {
  BenchJson snapshot;
  snapshot.path = display;
  std::string pending_key;
  bool value_next = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '"') continue;
    std::size_t e = i + 1;
    while (e < text.size() && text[e] != '"') {
      if (text[e] == '\\') ++e;
      ++e;
    }
    if (e >= text.size()) break;
    const std::string s = text.substr(i + 1, e - i - 1);
    // Key-ness first: a string VALUE can never be followed by ':' in
    // valid JSON, but a key whose value is a number or array leaves
    // value_next dangling — the next key must reclaim the slot.
    const std::size_t after = skip_ws(text, e + 1);
    if (after < text.size() && text[after] == ':') {
      pending_key = s;
      value_next = true;
    } else if (value_next) {
      if (pending_key == "bench" && snapshot.name.empty()) {
        snapshot.name = s;
        snapshot.name_line = line_of(text, i);
      } else if (pending_key == "label") {
        snapshot.labels.push_back({s, display, line_of(text, i), false});
      }
      value_next = false;
    }
    i = e;
  }
  model.bench_jsons.push_back(std::move(snapshot));
}

/// tools/layering.conf waiver entries: `allow <from> -> <to>  # why`.
struct LayerWaiver {
  std::string from;
  std::string to;
  std::string path;
  std::size_t line = 0;
  bool used = false;
};

std::vector<LayerWaiver> load_layering_conf(const fs::path& conf) {
  std::vector<LayerWaiver> waivers;
  std::ifstream in(conf);
  if (!in) return waivers;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream fields(line);
    std::string kw;
    std::string from;
    std::string arrow;
    std::string to;
    if (!(fields >> kw >> from >> arrow >> to)) continue;
    if (kw != "allow" || arrow != "->") continue;
    waivers.push_back({from, to, conf.generic_string(), line_no, false});
  }
  return waivers;
}

// ======================================================== phase-2 rules --

/// Module ranks of the layering DAG. An include edge to a strictly
/// higher rank points upward; same-rank edges are legal until they
/// close a cycle. Modules outside the map (fixture trees, future dirs)
/// are exempt from layering until ranked here.
const std::map<std::string, int>& module_ranks() {
  static const std::map<std::string, int> kRanks = {
      {"src/util", 0},    {"src/encode", 1},  {"src/device", 1},
      {"src/circuit", 2}, {"src/core", 3},    {"src/arch", 4},
      {"src/ml", 5},      {"src/csp", 5},     {"src/data", 5},
      {"src/baseline", 5}, {"src/serve", 6},  {"bench", 7},
      {"tools", 7},       {"examples", 7},    {"tests", 7}};
  return kRanks;
}

/// Generic cycle finder over a small adjacency map. Returns the first
/// cycle found as a node sequence `a, b, ..., a`, or empty.
template <typename Node>
std::vector<Node> find_cycle(const std::map<Node, std::set<Node>>& adj) {
  std::map<Node, int> color;  // 0 white, 1 on stack, 2 done
  std::vector<Node> path;
  std::vector<Node> cycle;
  const std::function<bool(const Node&)> dfs = [&](const Node& n) {
    color[n] = 1;
    path.push_back(n);
    const auto it = adj.find(n);
    if (it != adj.end()) {
      for (const Node& next : it->second) {
        const int c = color.count(next) ? color[next] : 0;
        if (c == 1) {
          const auto start = std::find(path.begin(), path.end(), next);
          cycle.assign(start, path.end());
          cycle.push_back(next);
          return true;
        }
        if (c == 0 && dfs(next)) return true;
      }
    }
    color[n] = 2;
    path.pop_back();
    return false;
  };
  for (const auto& [node, _] : adj) {
    if ((color.count(node) ? color[node] : 0) == 0 && dfs(node)) break;
  }
  return cycle;
}

void check_layering(const Model& model, std::vector<LayerWaiver>& conf,
                    std::vector<Violation>& out) {
  const auto& ranks = module_ranks();
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [edge, site] : model.module_edges) {
    const auto fr = ranks.find(edge.first);
    const auto tr = ranks.find(edge.second);
    if (fr == ranks.end() || tr == ranks.end()) continue;
    adj[edge.first].insert(edge.second);
    if (tr->second <= fr->second) continue;
    bool waived_edge = false;
    for (LayerWaiver& w : conf) {
      if (w.from == edge.first && w.to == edge.second) {
        w.used = true;
        waived_edge = true;
      }
    }
    if (waived_edge) continue;
    out.push_back(
        {site.first, site.second, "layering-upward",
         "include edge " + edge.first + " -> " + edge.second +
             " points upward in the module DAG (rank " +
             std::to_string(fr->second) + " -> " +
             std::to_string(tr->second) +
             ") — invert the dependency or waive this module edge in "
             "tools/layering.conf"});
  }
  // Waived edges stay in the graph: a waiver downgrades direction, it
  // does not license a cycle.
  const std::vector<std::string> cycle = find_cycle(adj);
  if (!cycle.empty()) {
    std::string chain = cycle.front();
    for (std::size_t i = 1; i < cycle.size(); ++i) chain += " -> " + cycle[i];
    const auto site = model.module_edges.at({cycle[0], cycle[1]});
    out.push_back({site.first, site.second, "layering-cycle",
                   "module include cycle: " + chain +
                       " — the layering DAG admits no back edges"});
  }
  for (const LayerWaiver& w : conf) {
    if (w.used) continue;
    out.push_back({w.path, w.line, "layering-upward",
                   "stale layering waiver " + w.from + " -> " + w.to +
                       ": no such include edge exists in the tree — "
                       "delete the entry (waivers rot)"});
  }
}

int resolve_lock(const std::vector<MutexDecl>& decls, const LockSite& site) {
  for (std::size_t i = 0; i < decls.size(); ++i) {
    if (decls[i].id == site) return static_cast<int>(i);
  }
  int found = -1;
  int count = 0;
  for (std::size_t i = 0; i < decls.size(); ++i) {
    if (decls[i].id.name == site.name) {
      found = static_cast<int>(i);
      ++count;
    }
  }
  return count == 1 ? found : -1;
}

/// One resolved edge of the lock graph, for the report and --json.
struct LockEdge {
  int from = -1;
  int to = -1;
  bool declared = false;
  bool observed = false;
  std::string path;  ///< a representative site
  std::size_t line = 0;
};

std::vector<LockEdge> build_lock_graph(const Model& model) {
  std::map<std::pair<int, int>, LockEdge> edges;
  for (std::size_t d = 0; d < model.mutexes.size(); ++d) {
    const MutexDecl& decl = model.mutexes[d];
    const auto add_declared = [&](int from, int to) {
      if (from < 0 || to < 0 || from == to) return;
      LockEdge& e = edges[{from, to}];
      e.from = from;
      e.to = to;
      e.declared = true;
      if (e.path.empty()) {
        e.path = decl.path;
        e.line = decl.line;
      }
    };
    for (const std::string& name : decl.before) {
      add_declared(static_cast<int>(d),
                   resolve_lock(model.mutexes, {decl.id.cls, name}));
    }
    for (const std::string& name : decl.after) {
      add_declared(resolve_lock(model.mutexes, {decl.id.cls, name}),
                   static_cast<int>(d));
    }
  }
  for (const ObservedEdge& o : model.observed) {
    const int from = resolve_lock(model.mutexes, o.from);
    const int to = resolve_lock(model.mutexes, o.to);
    if (from < 0 || to < 0 || from == to) continue;
    LockEdge& e = edges[{from, to}];
    e.from = from;
    e.to = to;
    // An observed site beats a declaration as the representative
    // anchor — it is where the nesting actually happens.
    if (!e.observed || e.path.empty()) {
      e.path = o.path;
      e.line = o.line;
    }
    e.observed = true;
  }
  std::vector<LockEdge> out;
  out.reserve(edges.size());
  for (const auto& [key, e] : edges) out.push_back(e);
  return out;
}

void check_lock_order(const Model& model, const std::vector<LockEdge>& edges,
                      std::vector<Violation>& out) {
  std::map<int, std::set<int>> all_adj;
  std::map<int, std::set<int>> declared_adj;
  for (const LockEdge& e : edges) {
    all_adj[e.from].insert(e.to);
    if (e.declared) declared_adj[e.from].insert(e.to);
  }
  const std::vector<int> cycle = find_cycle(all_adj);
  if (!cycle.empty()) {
    std::string chain = model.mutexes[cycle.front()].id.str();
    for (std::size_t i = 1; i < cycle.size(); ++i) {
      chain += " -> " + model.mutexes[cycle[i]].id.str();
    }
    std::string path = model.mutexes[cycle.front()].path;
    std::size_t line = model.mutexes[cycle.front()].line;
    for (const LockEdge& e : edges) {
      if (e.from == cycle[0] && e.to == cycle[1]) {
        path = e.path;
        line = e.line;
        break;
      }
    }
    out.push_back({path, line, "lock-order-cycle",
                   "lock-order cycle (declared + observed acquisitions): " +
                       chain + " — a consistent global hierarchy is the "
                       "deadlock-freedom argument"});
  }
  // Coverage: every observed nested pair must be reachable through the
  // declared ACQUIRED_BEFORE graph.
  const auto declared_path = [&](int from, int to) {
    std::vector<int> queue = {from};
    std::set<int> seen = {from};
    while (!queue.empty()) {
      const int n = queue.back();
      queue.pop_back();
      const auto it = declared_adj.find(n);
      if (it == declared_adj.end()) continue;
      for (const int next : it->second) {
        if (next == to) return true;
        if (seen.insert(next).second) queue.push_back(next);
      }
    }
    return false;
  };
  std::set<std::pair<int, int>> reported;
  for (const ObservedEdge& o : model.observed) {
    if (o.waived) continue;
    const int from = resolve_lock(model.mutexes, o.from);
    const int to = resolve_lock(model.mutexes, o.to);
    if (from < 0 || to < 0 || from == to) continue;
    if (declared_path(from, to)) continue;
    if (!reported.insert({from, to}).second) continue;
    out.push_back({o.path, o.line, "lock-order-undeclared",
                   o.func + " acquires " + model.mutexes[to].id.str() +
                       " while holding " + model.mutexes[from].id.str() +
                       " with no declared ACQUIRED_BEFORE path — declare "
                       "the edge on the mutex or waive with rationale"});
  }
}

void check_reject_reasons(const Model& model, std::vector<Violation>& out) {
  if (!model.reject_enum) return;
  std::set<std::string> enum_names;
  for (const SiteRef& e : model.enumerators) enum_names.insert(e.text);
  std::set<std::string> case_names;
  for (const SiteRef& c : model.reason_cases) case_names.insert(c.text);
  if (!model.reason_cases.empty()) {
    for (const SiteRef& e : model.enumerators) {
      if (case_names.count(e.text) != 0) continue;
      out.push_back({e.path, e.line, "reject-reason-unmapped",
                     "RejectReason::" + e.text +
                         " has no to_string case — every rejection reason "
                         "must print"});
    }
  }
  for (const SiteRef& c : model.reason_cases) {
    if (enum_names.count(c.text) != 0) continue;
    out.push_back({c.path, c.line, "reject-reason-unmapped",
                   "to_string handles RejectReason::" + c.text +
                       " which is not an enumerator"});
  }
  for (const Subclass& s : model.subclasses) {
    if (s.reason.empty()) {
      out.push_back({s.path, s.line, "reject-reason-unmapped",
                     "RejectedRequest subclass " + s.name +
                         " never names a RejectReason enumerator — typed "
                         "rejections carry their reason"});
    } else if (enum_names.count(s.reason) == 0) {
      out.push_back({s.path, s.line, "reject-reason-unmapped",
                     "RejectedRequest subclass " + s.name +
                         " maps to unknown RejectReason::" + s.reason});
    }
  }
}

void check_failpoints(const Model& model, std::vector<Violation>& out) {
  if (model.sweep_files == 0) return;
  for (const SiteRef& site : model.failpoints) {
    if (site.waived || model.sweep_names.count(site.text) != 0) continue;
    out.push_back({site.path, site.line, "orphan-failpoint",
                   "failpoint \"" + site.text +
                       "\" appears in neither crash sweep "
                       "(tests/test_durable.cpp / tests/test_sharded.cpp) — "
                       "an unswept crash point is untested"});
  }
}

/// A committed label is live when the emitter contains it verbatim or
/// as a two-literal concatenation (the emitters build labels like
/// "engine" + "_serve_sync").
bool label_emittable(const std::set<std::string>& lits,
                     const std::string& label) {
  if (lits.count(label) != 0) return true;
  for (std::size_t cut = 1; cut < label.size(); ++cut) {
    if (lits.count(label.substr(0, cut)) != 0 &&
        lits.count(label.substr(cut)) != 0) {
      return true;
    }
  }
  return false;
}

void check_bench_labels(const Model& model, std::vector<Violation>& out) {
  if (!model.bench_literals.empty() && !model.bench_jsons.empty()) {
    for (const BenchJson& json : model.bench_jsons) {
      const std::set<std::string>* emitter = nullptr;
      std::string emitter_path;
      if (!json.name.empty()) {
        for (const auto& [path, lits] : model.bench_literals) {
          if (lits.count(json.name) != 0) {
            emitter = &lits;
            emitter_path = path;
            break;
          }
        }
      }
      if (emitter == nullptr) {
        out.push_back({json.path, json.name_line, "stale-bench-label",
                       "no bench source declares bench name \"" + json.name +
                           "\" — the committed snapshot is orphaned"});
        continue;
      }
      for (const SiteRef& label : json.labels) {
        if (label_emittable(*emitter, label.text)) continue;
        out.push_back({label.path, label.line, "stale-bench-label",
                       "label \"" + label.text + "\" has no live emitter in " +
                           emitter_path +
                           " (no literal or two-literal concatenation "
                           "produces it) — the baseline can never be "
                           "refreshed"});
      }
    }
  }
  if (!model.ci_bench_refs.empty() && !model.bench_jsons.empty()) {
    std::set<std::string> committed;
    for (const BenchJson& json : model.bench_jsons) {
      committed.insert(fs::path(json.path).filename().string());
    }
    for (const SiteRef& ref : model.ci_bench_refs) {
      if (committed.count(ref.text) != 0) continue;
      out.push_back({ref.path, ref.line, "stale-bench-label",
                     "CI bench_compare gate references " + ref.text +
                         " which is not a committed snapshot at the repo "
                         "root"});
    }
  }
}

void check_ci_labels(const Model& model, std::vector<Violation>& out) {
  if (model.cmake_labels.empty() || model.ci_tokens.empty()) return;
  for (const SiteRef& token : model.ci_tokens) {
    if (model.cmake_labels.count(token.text) != 0) continue;
    out.push_back({token.path, token.line, "stale-ci-label",
                   "ctest pattern token \"" + token.text +
                       "\" matches no LABELS assignment in CMakeLists.txt — "
                       "the filter silently selects nothing"});
  }
}

constexpr std::size_t kNolintBudget = 5;
constexpr std::size_t kWaiverBudget = 8;

void check_budgets(Model& model, std::vector<Violation>& out) {
  const auto by_site = [](const SiteRef& a, const SiteRef& b) {
    return a.path != b.path ? a.path < b.path : a.line < b.line;
  };
  std::sort(model.nolints.begin(), model.nolints.end(), by_site);
  std::sort(model.waivers.begin(), model.waivers.end(), by_site);
  if (model.nolints.size() > kNolintBudget) {
    const SiteRef& over = model.nolints[kNolintBudget];
    out.push_back({over.path, over.line, "budget-overflow",
                   "NOLINT budget exceeded: " +
                       std::to_string(model.nolints.size()) +
                       " markers across src/ (budget " +
                       std::to_string(kNolintBudget) +
                       ") — retire one before adding another"});
  }
  if (model.waivers.size() > kWaiverBudget) {
    const SiteRef& over = model.waivers[kWaiverBudget];
    out.push_back({over.path, over.line, "budget-overflow",
                   "waiver budget exceeded: " +
                       std::to_string(model.waivers.size()) +
                       " ferex-lint waivers repo-wide (budget " +
                       std::to_string(kWaiverBudget) +
                       ") — retire one before adding another"});
  }
}

// ============================================================== outputs --

const std::map<std::string, std::string>& rule_docs() {
  static const std::map<std::string, std::string> kDocs = {
      {"raw-thread",
       "Serving/core code (src/, except src/util/) must not spawn naked\n"
       "std::thread / std::jthread / std::async. Concurrency goes through\n"
       "util::parallel_for or the AsyncAmIndex dispatchers so pool width,\n"
       "nesting, and shutdown stay centrally owned."},
      {"raw-random",
       "No rand()/srand()/std::random_device outside src/util/rng.*.\n"
       "Determinism is a repo invariant: every random draw is seeded\n"
       "SplitMix64, so any run is bit-replayable from its seed."},
      {"guarded-mutator",
       "Every public AmIndex mutator definition must call check_mutable and\n"
       "delegate to its do_* core. The async layer serializes writes by\n"
       "calling the cores directly; a mutator that skips the template\n"
       "method breaks that contract silently."},
      {"ordinal-before-validate",
       "Within one function, an ordinal advance (++serial_ etc.) must come\n"
       "after a validate_*/check_* call. A rejected request must never\n"
       "consume an ordinal, or replay diverges from the live run."},
      {"pragma-expiry",
       "A committed #pragma GCC diagnostic needs an upper compiler-version\n"
       "bound (#if ... __GNUC__ < N) within the 10 preceding lines, so the\n"
       "suppression expires instead of outliving the bug it hides."},
      {"raw-file-io",
       "src/serve, src/encode and bench/ must not open files directly\n"
       "(fopen / std::ofstream / std::fstream). Durable bytes go through\n"
       "util::durable_file and inherit its fsync-and-rename discipline."},
      {"rejection-base",
       "A class in src/serve/ must not derive directly from\n"
       "std::runtime_error / std::logic_error: typed request rejections\n"
       "derive from serve::RejectedRequest so one catch sheds on every\n"
       "reason. Waive only for non-rejection state errors."},
      {"layering-upward",
       "The module DAG orders util -> encode/device -> circuit -> core ->\n"
       "arch -> ml/csp/data/baseline -> serve -> bench/tools/examples/\n"
       "tests. An #include edge to a higher rank inverts the layering;\n"
       "invert the dependency (move the shared type down) or waive the\n"
       "directed module edge in tools/layering.conf with a rationale.\n"
       "Stale waivers are themselves errors."},
      {"layering-cycle",
       "The module include graph must stay acyclic, waived edges included:\n"
       "a waiver downgrades an edge's direction, it does not license a\n"
       "cycle. A cycle means two modules cannot be built, tested, or\n"
       "reasoned about independently."},
      {"lock-order-cycle",
       "The union of declared ACQUIRED_BEFORE/ACQUIRED_AFTER edges and\n"
       "observed same-scope nested acquisitions must be acyclic. An\n"
       "acyclic global hierarchy is the whole deadlock-freedom argument;\n"
       "this rule is deliberately not waivable."},
      {"lock-order-undeclared",
       "A function that acquires one annotated mutex while holding another\n"
       "creates an ordering fact; the fact must be declared via\n"
       "ACQUIRED_BEFORE on the mutex member so the hierarchy is readable\n"
       "at the declaration, not archaeology over call sites. Waive on the\n"
       "acquisition line when the attribute cannot name the partner (e.g.\n"
       "a stack-local struct's member), with a comment saying why."},
      {"reject-reason-unmapped",
       "RejectReason enumerators, to_string cases, and RejectedRequest\n"
       "subclasses must stay in bijection: every enumerator prints, every\n"
       "case is real, every subclass carries a known reason. A rejection\n"
       "that cannot name itself is undebuggable at the client."},
      {"orphan-failpoint",
       "Every failpoint_hit(\"site\") under src/ must appear in a crash\n"
       "sweep (tests/test_durable.cpp or tests/test_sharded.cpp). A crash\n"
       "point nobody injects is a recovery path nobody tests."},
      {"stale-bench-label",
       "Every label in a committed BENCH_*.json must be producible by the\n"
       "bench binary that owns the snapshot's bench name (a literal, or a\n"
       "two-literal concatenation), and every CI bench_compare baseline\n"
       "must be a committed snapshot. Otherwise the regression gate\n"
       "compares against numbers that can never be refreshed."},
      {"stale-ci-label",
       "Every ctest -L/-LE pattern token in CI must match a LABELS\n"
       "assignment in CMakeLists.txt. A stale token silently deselects the\n"
       "suite it was supposed to run."},
      {"budget-overflow",
       "At most 5 NOLINT markers across src/ and at most 8 ferex-lint\n"
       "waivers repo-wide. Suppressions are debt; the budgets keep the\n"
       "balance visible and force retiring one before adding another."},
  };
  return kDocs;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool write_json(const std::string& path, const Model& model,
                const std::vector<LockEdge>& lock_edges,
                const std::vector<Violation>& violations) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "ferex_lint: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"tool\": \"ferex_lint\",\n  \"schema_version\": 2,\n";
  out << "  \"files_scanned\": " << model.files_scanned << ",\n";
  out << "  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"path\": \"" << json_escape(v.path) << "\", \"line\": "
        << v.line << ", \"rule\": \"" << json_escape(v.rule)
        << "\", \"message\": \"" << json_escape(v.message) << "\"}";
  }
  out << (violations.empty() ? "],\n" : "\n  ],\n");
  out << "  \"budgets\": {\n"
      << "    \"nolint\": {\"count\": " << model.nolints.size()
      << ", \"limit\": " << kNolintBudget << "},\n"
      << "    \"waivers\": {\"count\": " << model.waivers.size()
      << ", \"limit\": " << kWaiverBudget << "}\n  },\n";
  out << "  \"lock_edges\": [";
  for (std::size_t i = 0; i < lock_edges.size(); ++i) {
    const LockEdge& e = lock_edges[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"from\": \"" << json_escape(model.mutexes[e.from].id.str())
        << "\", \"to\": \"" << json_escape(model.mutexes[e.to].id.str())
        << "\", \"declared\": " << (e.declared ? "true" : "false")
        << ", \"observed\": " << (e.observed ? "true" : "false") << "}";
  }
  out << (lock_edges.empty() ? "],\n" : "\n  ],\n");
  out << "  \"module_edges\": [";
  std::size_t i = 0;
  for (const auto& [edge, site] : model.module_edges) {
    out << (i++ == 0 ? "\n" : ",\n");
    out << "    {\"from\": \"" << json_escape(edge.first) << "\", \"to\": \""
        << json_escape(edge.second) << "\"}";
  }
  out << (model.module_edges.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return out.good();
}

/// Prints the inferred lock hierarchy, topologically ordered when the
/// graph allows it (the README quotes this output verbatim).
void print_lock_hierarchy(const Model& model,
                          const std::vector<LockEdge>& edges) {
  std::map<int, std::set<int>> adj;
  std::map<int, int> indegree;
  for (const LockEdge& e : edges) {
    if (adj[e.from].insert(e.to).second) ++indegree[e.to];
    indegree.emplace(e.from, 0);
  }
  std::vector<int> order;
  std::vector<int> ready;
  for (const auto& [node, deg] : indegree) {
    if (deg == 0) ready.push_back(node);
  }
  while (!ready.empty()) {
    std::sort(ready.begin(), ready.end(), [&](int a, int b) {
      return model.mutexes[a].id.str() < model.mutexes[b].id.str();
    });
    const int n = ready.front();
    ready.erase(ready.begin());
    order.push_back(n);
    for (const int next : adj[n]) {
      if (--indegree[next] == 0) ready.push_back(next);
    }
  }
  std::printf("lock hierarchy (%zu edge%s):\n", edges.size(),
              edges.size() == 1 ? "" : "s");
  const auto print_edges_from = [&](int node) {
    for (const LockEdge& e : edges) {
      if (e.from != node) continue;
      const char* kind = e.declared && e.observed ? "declared+observed"
                         : e.declared            ? "declared"
                                                 : "observed";
      std::printf("  %s -> %s  [%s]\n", model.mutexes[e.from].id.str().c_str(),
                  model.mutexes[e.to].id.str().c_str(), kind);
    }
  };
  if (order.size() == indegree.size()) {
    for (const int node : order) print_edges_from(node);
  } else {
    std::printf("  (cyclic — no topological order exists)\n");
    for (const LockEdge& e : edges) {
      std::printf("  %s -> %s\n", model.mutexes[e.from].id.str().c_str(),
                  model.mutexes[e.to].id.str().c_str());
    }
  }
}

// --------------------------------------------------------------- driver --
bool read_text(const fs::path& file, std::string& out) {
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "ferex_lint: cannot read %s\n", file.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

bool scan_file(const fs::path& file, const std::string& rel, Model& model,
               std::vector<Violation>& out) {
  std::string raw;
  if (!read_text(file, raw)) return false;
  std::vector<Lit> lits;
  const std::string code = strip(raw, &lits);
  const std::string path = file.generic_string();
  const FileCheck f{path, raw, code, out};
  check_raw_thread(f);
  check_raw_random(f);
  check_guarded_mutator(f);
  check_ordinal_before_validate(f);
  check_raw_file_io(f);
  check_rejection_base(f);
  check_pragma_expiry(f);
  extract_facts(rel, path, raw, code, lits, model);
  ++model.files_scanned;
  return true;
}

bool lintable(const fs::path& file) {
  const std::string ext = file.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

/// Directory-skip policy. The build*/cmake-build* prefix applies only
/// at the walk root: a nested src/builder/ is source, a top-level
/// build/ is not. Hidden directories are skipped except .github, where
/// the CI label patterns live.
bool skip_dir(const fs::path& dir, int depth) {
  const std::string name = dir.filename().string();
  if (name.empty()) return true;
  if (name[0] == '.' && name != ".github") return true;
  if (name == "_deps" || name == "lint_fixtures") return true;
  if (depth == 0 && (name.rfind("build", 0) == 0 ||
                     name.rfind("cmake-build", 0) == 0)) {
    return true;
  }
  return false;
}

bool scan(const fs::path& root, Model& model,
          std::vector<LayerWaiver>& layer_conf, std::vector<Violation>& out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    return scan_file(root, root.generic_string(), model, out);
  }
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "ferex_lint: no such file or directory: %s\n",
                 root.c_str());
    return false;
  }
  model.dir_scanned = true;
  if (layer_conf.empty()) {
    const fs::path conf = root / "tools" / "layering.conf";
    if (fs::is_regular_file(conf, ec)) {
      layer_conf = load_layering_conf(conf);
    }
  }
  bool ok = true;
  fs::recursive_directory_iterator it(root, ec);
  if (ec) {
    std::fprintf(stderr, "ferex_lint: cannot walk %s: %s\n", root.c_str(),
                 ec.message().c_str());
    return false;
  }
  for (const fs::recursive_directory_iterator end; it != end;
       it.increment(ec)) {
    if (ec) {
      std::fprintf(stderr, "ferex_lint: walk error under %s: %s\n",
                   root.c_str(), ec.message().c_str());
      return false;
    }
    if (it->is_directory() && skip_dir(it->path(), it.depth())) {
      it.disable_recursion_pending();
      continue;
    }
    if (!it->is_regular_file()) continue;
    const std::string rel =
        it->path().lexically_relative(root).generic_string();
    const std::string name = it->path().filename().string();
    const std::string ext = it->path().extension().string();
    if (lintable(it->path())) {
      ok = scan_file(it->path(), rel, model, out) && ok;
    } else if (name == "CMakeLists.txt") {
      std::string text;
      if (read_text(it->path(), text)) scan_cmake(text, model);
    } else if (rel.find(".github/workflows/") != std::string::npos &&
               (ext == ".yml" || ext == ".yaml")) {
      std::string text;
      if (read_text(it->path(), text)) {
        scan_workflow(it->path().generic_string(), text, model);
      }
    } else if (it.depth() == 0 && name.rfind("BENCH_", 0) == 0 &&
               ext == ".json") {
      std::string text;
      if (read_text(it->path(), text)) {
        scan_bench_json(it->path().generic_string(), text, model);
      }
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  std::string json_path;
  std::string explain;
  bool show_hierarchy = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (++i >= argc) {
        std::fprintf(stderr, "ferex_lint: --json needs a file argument\n");
        return 2;
      }
      json_path = argv[i];
    } else if (arg == "--explain") {
      if (++i >= argc) {
        std::fprintf(stderr, "ferex_lint: --explain needs a rule id\n");
        return 2;
      }
      explain = argv[i];
    } else if (arg == "--lock-hierarchy") {
      show_hierarchy = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ferex_lint: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (!explain.empty()) {
    const auto& docs = rule_docs();
    const auto it = docs.find(explain);
    if (it == docs.end()) {
      std::fprintf(stderr, "ferex_lint: unknown rule id \"%s\"\n",
                   explain.c_str());
      std::fprintf(stderr, "known rules:\n");
      for (const auto& [rule, _] : docs) {
        std::fprintf(stderr, "  %s\n", rule.c_str());
      }
      return 2;
    }
    std::printf("%s\n\n%s\n", explain.c_str(), it->second.c_str());
    return 0;
  }
  if (roots.empty()) roots.emplace_back(".");

  Model model;
  std::vector<LayerWaiver> layer_conf;
  std::vector<Violation> violations;
  for (const auto& root : roots) {
    if (!scan(root, model, layer_conf, violations)) return 2;
  }
  std::vector<LockEdge> lock_edges = build_lock_graph(model);
  if (model.dir_scanned) {
    // Graph rules need a tree; a single explicit file is scanned with
    // the per-file rules only.
    check_layering(model, layer_conf, violations);
    check_lock_order(model, lock_edges, violations);
    check_reject_reasons(model, violations);
    check_failpoints(model, violations);
    check_bench_labels(model, violations);
    check_ci_labels(model, violations);
    check_budgets(model, violations);
  }
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return a.path != b.path ? a.path < b.path : a.line < b.line;
            });
  if (show_hierarchy) print_lock_hierarchy(model, lock_edges);
  for (const auto& v : violations) {
    std::printf("%s:%zu: %s: %s\n", v.path.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  }
  if (!json_path.empty() &&
      !write_json(json_path, model, lock_edges, violations)) {
    return 2;
  }
  if (!violations.empty()) {
    std::printf("ferex_lint: %zu violation(s)\n", violations.size());
    return 1;
  }
  return 0;
}
