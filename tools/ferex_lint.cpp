// ferex_lint — repo-invariant checker for conventions the compiler
// cannot see. Token/structure level on purpose: no AST, no compile
// flags, so it runs in milliseconds on any checkout and never drifts
// out of sync with the build.
//
// Rules (ids are what the output and the waiver syntax use):
//   raw-thread     Serving/core code (src/, except src/util/) must not
//                  spawn naked std::thread/std::jthread/std::async —
//                  concurrency goes through util::parallel_for or the
//                  AsyncAmIndex dispatchers.
//   raw-random     No rand()/srand()/std::random_device outside
//                  src/util/rng.* — determinism is a repo invariant
//                  (seeded SplitMix64 everywhere).
//   guarded-mutator  Every public AmIndex mutator definition
//                  (configure/store/insert/remove/update) must call
//                  check_mutable and delegate to its do_* core — the
//                  template-method contract the async layer relies on.
//   ordinal-before-validate  Inside one function, an ordinal advance
//                  (++serial_ / serial_++ / query_serial_++ /
//                  ++query_serial_ / serial_ = next /
//                  query_serial_ = next) must come after a validate_*
//                  or check_* call (the repo's two validation-helper
//                  naming conventions) — a rejected request must never
//                  consume an ordinal.
//   pragma-expiry  A committed `#pragma GCC diagnostic` must sit under
//                  an #if with an upper compiler-version bound
//                  (`__GNUC__ < N`) within the 10 preceding lines, so
//                  suppressions expire instead of outliving the bug
//                  they worked around.
//   raw-file-io    Serving/encode/bench code (src/serve/, src/encode/,
//                  bench/) must not open files directly (fopen /
//                  std::ofstream / std::fstream) — bytes that must
//                  survive a crash (snapshots, WALs, BENCH_*.json) go
//                  through util::durable_file (atomic_write_file,
//                  AppendFile) and inherit its fsync discipline.
//   rejection-base  A class in src/serve/ must not derive directly from
//                  std::runtime_error / std::logic_error: typed request
//                  rejections derive from serve::RejectedRequest (so
//                  one catch sheds on every reason). Index-state errors
//                  that are deliberately not rejections (CorruptLog,
//                  SnapshotMismatch) carry a waiver explaining why.
//
// Waiver: append `// ferex-lint: allow(<rule-id>)` on the offending
// line, with a justifying comment nearby. Waivers are part of the
// reviewed diff — that is the point.
//
// Usage: ferex_lint [path...]   (default: current directory)
// Directories are walked recursively; build*/.*/_deps/lint_fixtures
// directories are skipped. Explicitly named files are always scanned.
// Exit codes: 0 clean, 1 violations found, 2 I/O error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string path;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Blanks comments and string/char literals (newlines kept, so
/// positions still map to line numbers). Token rules run on the result;
/// waiver detection runs on the raw text, where the comments live.
std::string strip(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' && (i == 0 || !is_ident(text[i - 1]))) {
          // R"delim( — capture the delimiter so the close matches.
          std::size_t p = i + 2;
          raw_delim.clear();
          while (p < text.size() && text[p] != '(') raw_delim += text[p++];
          state = State::kRaw;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && (i == 0 || !is_ident(text[i - 1]))) {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < text.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < text.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kRaw: {
        const std::string close = ")" + raw_delim + "\"";
        if (text.compare(i, close.size(), close) == 0) {
          for (std::size_t k = 0; k < close.size(); ++k) out[i + k] = ' ';
          i += close.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos),
                            '\n'));
}

/// The raw source line `line` (1-based), for waiver checks and reports.
std::string raw_line(const std::string& text, std::size_t line) {
  std::size_t start = 0;
  for (std::size_t l = 1; l < line; ++l) {
    start = text.find('\n', start);
    if (start == std::string::npos) return "";
    ++start;
  }
  const std::size_t end = text.find('\n', start);
  return text.substr(start, end == std::string::npos ? end : end - start);
}

bool waived(const std::string& raw, std::size_t line, const std::string& rule) {
  const std::string tag = "ferex-lint: allow(" + rule + ")";
  return raw_line(raw, line).find(tag) != std::string::npos;
}

struct FileCheck {
  const std::string& path;     ///< forward-slash path, used for scoping
  const std::string& raw;      ///< original text (waivers, line lookup)
  const std::string& code;     ///< comment/string-stripped text
  std::vector<Violation>& out;

  void report(std::size_t pos, const char* rule, std::string message) const {
    const std::size_t line = line_of(code, pos);
    if (waived(raw, line, rule)) return;
    out.push_back({path, line, rule, std::move(message)});
  }

  bool in(const char* fragment) const {
    return path.find(fragment) != std::string::npos;
  }
};

// ------------------------------------------------------------ raw-thread --
void check_raw_thread(const FileCheck& f) {
  if (!f.in("src/") || f.in("src/util/")) return;
  static constexpr std::string_view kTokens[] = {"std::thread", "std::jthread",
                                                 "std::async"};
  for (const auto token : kTokens) {
    for (std::size_t pos = f.code.find(token); pos != std::string::npos;
         pos = f.code.find(token, pos + 1)) {
      if (pos > 0 && is_ident(f.code[pos - 1])) continue;
      const std::size_t after = pos + token.size();
      if (after < f.code.size() && is_ident(f.code[after])) continue;
      // std::thread::hardware_concurrency is a capability query, not a
      // spawn — static member access stays legal.
      if (f.code.compare(after, 2, "::") == 0) continue;
      f.report(pos, "raw-thread",
               std::string(token) +
                   " outside src/util/ — use util::parallel_for or the "
                   "serving dispatchers");
    }
  }
}

// ------------------------------------------------------------ raw-random --
void check_raw_random(const FileCheck& f) {
  if (f.in("src/util/rng")) return;
  static constexpr std::string_view kTokens[] = {
      "std::random_device", "std::rand", "std::srand", "srand", "rand"};
  for (const auto token : kTokens) {
    for (std::size_t pos = f.code.find(token); pos != std::string::npos;
         pos = f.code.find(token, pos + 1)) {
      if (pos > 0 && (is_ident(f.code[pos - 1]) || f.code[pos - 1] == ':')) {
        continue;  // part of a longer identifier, or already matched
                   // via the std::-qualified token
      }
      const std::size_t after = pos + token.size();
      if (after < f.code.size() && is_ident(f.code[after])) continue;
      // Bare rand/srand must be a call to count (a local named `rand`
      // would be questionable style but is not this rule's business).
      if (token == "srand" || token == "rand") {
        std::size_t p = after;
        while (p < f.code.size() &&
               std::isspace(static_cast<unsigned char>(f.code[p])) != 0) {
          ++p;
        }
        if (p >= f.code.size() || f.code[p] != '(') continue;
      }
      f.report(pos, "raw-random",
               std::string(token) +
                   " outside src/util/rng — all randomness is seeded "
                   "through util::SplitMix64");
    }
  }
}

// ------------------------------------------------------- guarded-mutator --
void check_guarded_mutator(const FileCheck& f) {
  if (f.path.size() < 4 || f.path.compare(f.path.size() - 4, 4, ".cpp") != 0) {
    return;
  }
  static constexpr std::string_view kOps[] = {"configure", "store", "insert",
                                              "remove", "update"};
  for (const auto op : kOps) {
    const std::string needle = "AmIndex::" + std::string(op) + "(";
    for (std::size_t pos = f.code.find(needle); pos != std::string::npos;
         pos = f.code.find(needle, pos + 1)) {
      // Boundary: excludes AsyncAmIndex:: and any FooAmIndex:: wrapper.
      if (pos > 0 && is_ident(f.code[pos - 1])) continue;
      // Definition (next structural token is '{') vs declaration/call.
      std::size_t p = pos + needle.size();
      int parens = 1;
      while (p < f.code.size() && parens > 0) {
        if (f.code[p] == '(') ++parens;
        if (f.code[p] == ')') --parens;
        ++p;
      }
      while (p < f.code.size() && f.code[p] != '{' && f.code[p] != ';') ++p;
      if (p >= f.code.size() || f.code[p] != '{') continue;
      const std::size_t body_open = p;
      int braces = 1;
      ++p;
      while (p < f.code.size() && braces > 0) {
        if (f.code[p] == '{') ++braces;
        if (f.code[p] == '}') --braces;
        ++p;
      }
      const std::string_view body(f.code.data() + body_open, p - body_open);
      const std::string core = "do_" + std::string(op);
      const bool has_guard = body.find("check_mutable") != std::string_view::npos;
      const bool has_core = body.find(core) != std::string_view::npos;
      if (!has_guard || !has_core) {
        f.report(pos, "guarded-mutator",
                 "AmIndex::" + std::string(op) + " must call check_mutable " +
                     "and delegate to " + core +
                     " (template-method write contract)");
      }
    }
  }
}

// ----------------------------------------------- ordinal-before-validate --
/// True when the '{' at `pos` opens a function (or lambda) body rather
/// than a class/namespace/enum/control-statement/initializer block.
bool opens_function(const std::string& code, std::size_t pos) {
  std::size_t p = pos;
  static constexpr std::string_view kSkippable[] = {"const", "noexcept",
                                                    "override", "final",
                                                    "mutable"};
  for (;;) {
    while (p > 0 &&
           std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
      --p;
    }
    if (p == 0) return false;
    const char c = code[p - 1];
    if (is_ident(c)) {
      std::size_t start = p;
      while (start > 0 && is_ident(code[start - 1])) --start;
      const std::string_view word(code.data() + start, p - start);
      bool skip = false;
      for (const auto s : kSkippable) skip = skip || word == s;
      if (!skip) return false;  // struct/namespace name, else/do/try, ...
      p = start;
      continue;
    }
    if (c == ')') {
      // Walk back over the parameter list; a control-flow keyword in
      // front of the '(' means this is if/for/while/switch/catch.
      int parens = 0;
      while (p > 0) {
        --p;
        if (code[p] == ')') ++parens;
        if (code[p] == '(') {
          --parens;
          if (parens == 0) break;
        }
      }
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
        --p;
      }
      std::size_t start = p;
      while (start > 0 && is_ident(code[start - 1])) --start;
      const std::string_view word(code.data() + start, p - start);
      static constexpr std::string_view kControl[] = {"if", "for", "while",
                                                      "switch", "catch"};
      for (const auto k : kControl) {
        if (word == k) return false;
      }
      return true;  // function definition, ctor init entry, or lambda
    }
    return false;  // '=', ',', '{', ':', ... — aggregate or scope block
  }
}

void check_ordinal_before_validate(const FileCheck& f) {
  if (!f.in("src/")) return;
  const std::string& code = f.code;

  struct Frame {
    bool is_function = false;
    bool validated = false;
  };
  std::vector<Frame> stack;
  const auto innermost_function = [&]() -> Frame* {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->is_function) return &*it;
    }
    return nullptr;
  };

  for (std::size_t pos = 0; pos < code.size(); ++pos) {
    const char c = code[pos];
    if (c == '{') {
      stack.push_back({opens_function(code, pos), false});
      continue;
    }
    if (c == '}') {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    if (!is_ident(c) || (pos > 0 && is_ident(code[pos - 1]))) continue;
    std::size_t end = pos;
    while (end < code.size() && is_ident(code[end])) ++end;
    const std::string_view word(code.data() + pos, end - pos);

    const bool is_validation_call =
        (word.size() >= 9 && word.substr(0, 9) == "validate_") ||
        (word.size() >= 6 && word.substr(0, 6) == "check_");
    if (is_validation_call) {
      // Mark the enclosing function and everything nested inside it.
      bool inside = false;
      for (auto& frame : stack) {
        inside = inside || frame.is_function;
        if (inside) frame.validated = true;
      }
    } else if (word == "serial_" || word == "query_serial_") {
      // An *advance* is ++x / x++ / x = next; plain reads are free.
      std::size_t before = pos;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(code[before - 1])) != 0) {
        --before;
      }
      const bool pre_inc =
          before >= 2 && code[before - 1] == '+' && code[before - 2] == '+';
      std::size_t after = end;
      while (after < code.size() &&
             std::isspace(static_cast<unsigned char>(code[after])) != 0) {
        ++after;
      }
      const bool post_inc = code.compare(after, 2, "++") == 0;
      bool assign_next = false;
      if (after < code.size() && code[after] == '=' &&
          (after + 1 >= code.size() || code[after + 1] != '=')) {
        std::size_t rhs = after + 1;
        while (rhs < code.size() &&
               std::isspace(static_cast<unsigned char>(code[rhs])) != 0) {
          ++rhs;
        }
        assign_next = code.compare(rhs, 4, "next") == 0 &&
                      (rhs + 4 >= code.size() || !is_ident(code[rhs + 4]));
      }
      if (pre_inc || post_inc || assign_next) {
        Frame* fn = innermost_function();
        if (fn != nullptr && !fn->validated) {
          f.report(pos, "ordinal-before-validate",
                   std::string(word) +
                       " advanced before any validate_*/check_mutable call "
                       "in this function — rejected requests must not "
                       "consume ordinals");
        }
      }
    }
    pos = end - 1;
  }
}

// ----------------------------------------------------------- raw-file-io --
void check_raw_file_io(const FileCheck& f) {
  // bench/ is covered too: a bench killed mid-write must never leave a
  // torn BENCH_*.json for bench_compare to reject — emitters go through
  // util::atomic_write_file like every other durable writer.
  if (!f.in("src/serve/") && !f.in("src/encode/") && !f.in("bench/")) return;
  // ifstream (read-only) stays legal: the rule protects the write path,
  // where a missed fsync turns a crash into silent data loss.
  static constexpr std::string_view kTokens[] = {"fopen", "ofstream",
                                                 "fstream"};
  for (const auto token : kTokens) {
    for (std::size_t pos = f.code.find(token); pos != std::string::npos;
         pos = f.code.find(token, pos + 1)) {
      if (pos > 0 && is_ident(f.code[pos - 1])) continue;  // ifstream, ...
      const std::size_t after = pos + token.size();
      if (after < f.code.size() && is_ident(f.code[after])) continue;
      f.report(pos, "raw-file-io",
               std::string(token) +
                   " under src/serve|src/encode|bench — durable bytes go "
                   "through util::durable_file (atomic_write_file / "
                   "AppendFile)");
    }
  }
}

// -------------------------------------------------------- rejection-base --
void check_rejection_base(const FileCheck& f) {
  if (!f.in("src/serve/")) return;
  static constexpr std::string_view kBases[] = {"std::runtime_error",
                                                "std::logic_error"};
  static constexpr std::string_view kBaseKeywords[] = {"public", "protected",
                                                       "private", "virtual"};
  for (const auto base : kBases) {
    for (std::size_t pos = f.code.find(base); pos != std::string::npos;
         pos = f.code.find(base, pos + 1)) {
      if (pos > 0 && is_ident(f.code[pos - 1])) continue;
      // A base-clause use is followed by '{' or ',' (the class body or
      // the next base); a constructor-init or throw is followed by '('.
      std::size_t after = pos + base.size();
      while (after < f.code.size() &&
             std::isspace(static_cast<unsigned char>(f.code[after])) != 0) {
        ++after;
      }
      if (after >= f.code.size() ||
          (f.code[after] != '{' && f.code[after] != ',')) {
        continue;
      }
      // Walk back over access/virtual keywords to the ':' or ',' that
      // introduces the base list.
      std::size_t p = pos;
      for (;;) {
        while (p > 0 &&
               std::isspace(static_cast<unsigned char>(f.code[p - 1])) != 0) {
          --p;
        }
        if (p == 0) break;
        if (is_ident(f.code[p - 1])) {
          std::size_t start = p;
          while (start > 0 && is_ident(f.code[start - 1])) --start;
          const std::string_view word(f.code.data() + start, p - start);
          bool keyword = false;
          for (const auto k : kBaseKeywords) keyword = keyword || word == k;
          if (!keyword) break;
          p = start;
          continue;
        }
        break;
      }
      if (p == 0 || (f.code[p - 1] != ':' && f.code[p - 1] != ',')) continue;
      f.report(pos, "rejection-base",
               "class in src/serve/ derives directly from " +
                   std::string(base) +
                   " — typed rejections derive from serve::RejectedRequest "
                   "(waive only for non-rejection state errors)");
    }
  }
}

// --------------------------------------------------------- pragma-expiry --
void check_pragma_expiry(const FileCheck& f) {
  const std::string needle = "#pragma";
  for (std::size_t pos = f.code.find(needle); pos != std::string::npos;
       pos = f.code.find(needle, pos + 1)) {
    const std::size_t line = line_of(f.code, pos);
    if (raw_line(f.raw, line).find("GCC diagnostic") == std::string::npos) {
      continue;
    }
    bool has_if = false;
    bool has_upper_bound = false;
    const std::size_t first =
        line > 10 ? line - 10 : static_cast<std::size_t>(1);
    for (std::size_t l = first; l < line; ++l) {
      const std::string above = raw_line(f.raw, l);
      has_if = has_if || above.find("#if") != std::string::npos;
      const std::size_t g = above.find("__GNUC__");
      if (g != std::string::npos) {
        std::size_t p = g + std::string_view("__GNUC__").size();
        while (p < above.size() &&
               std::isspace(static_cast<unsigned char>(above[p])) != 0) {
          ++p;
        }
        if (p < above.size() && above[p] == '<') has_upper_bound = true;
      }
    }
    if (!has_if || !has_upper_bound) {
      f.report(pos, "pragma-expiry",
               "#pragma GCC diagnostic without a version-bounded guard "
               "(#if ... __GNUC__ < N) in the 10 lines above — "
               "suppressions must expire");
    }
  }
}

// --------------------------------------------------------------- driver --
bool scan_file(const fs::path& file, std::vector<Violation>& out) {
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "ferex_lint: cannot read %s\n", file.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw = buffer.str();
  const std::string code = strip(raw);
  const std::string path = file.generic_string();
  const FileCheck f{path, raw, code, out};
  check_raw_thread(f);
  check_raw_random(f);
  check_guarded_mutator(f);
  check_ordinal_before_validate(f);
  check_raw_file_io(f);
  check_rejection_base(f);
  check_pragma_expiry(f);
  return true;
}

bool lintable(const fs::path& file) {
  const std::string ext = file.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool skip_dir(const fs::path& dir) {
  const std::string name = dir.filename().string();
  return name.empty() || name[0] == '.' || name == "_deps" ||
         name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
         name.rfind("cmake-build", 0) == 0;
}

bool scan(const fs::path& root, std::vector<Violation>& out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) return scan_file(root, out);
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "ferex_lint: no such file or directory: %s\n",
                 root.c_str());
    return false;
  }
  bool ok = true;
  fs::recursive_directory_iterator it(root, ec);
  if (ec) {
    std::fprintf(stderr, "ferex_lint: cannot walk %s: %s\n", root.c_str(),
                 ec.message().c_str());
    return false;
  }
  for (const fs::recursive_directory_iterator end; it != end;
       it.increment(ec)) {
    if (ec) {
      std::fprintf(stderr, "ferex_lint: walk error under %s: %s\n",
                   root.c_str(), ec.message().c_str());
      return false;
    }
    if (it->is_directory() && skip_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable(it->path())) {
      ok = scan_file(it->path(), out) && ok;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) roots.emplace_back(argv[i]);
  if (roots.empty()) roots.emplace_back(".");

  std::vector<Violation> violations;
  for (const auto& root : roots) {
    if (!scan(root, violations)) return 2;
  }
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return a.path != b.path ? a.path < b.path : a.line < b.line;
            });
  for (const auto& v : violations) {
    std::printf("%s:%zu: %s: %s\n", v.path.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  }
  if (!violations.empty()) {
    std::printf("ferex_lint: %zu violation(s)\n", violations.size());
    return 1;
  }
  return 0;
}
