// ferex_encoder — command-line front-end to the FeReX CSP encoder.
//
// Derives the voltage configuration for a distance function and prints
// (or saves) it in the library's text format, plus the human-readable
// Table-II-style view. The expensive CSP runs offline, once; the output
// file is what an array controller would consume.
//
// Usage:
//   ferex_encoder --metric hamming|manhattan|euclidean --bits B
//                 [--max-fefets K] [--max-vds M] [--no-ac3]
//                 [--composite] [--out FILE] [--quiet]
#include <fstream>
#include <iostream>
#include <string>

#include "encode/composite.hpp"
#include "encode/encoder.hpp"
#include "encode/serialize.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --metric hamming|manhattan|euclidean --bits B\n"
               "       [--max-fefets K] [--max-vds M] [--no-ac3]\n"
               "       [--composite] [--out FILE] [--quiet]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ferex;

  std::string metric_name;
  int bits = 2;
  encode::EncoderOptions options;
  bool composite = false;
  bool quiet = false;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--metric") {
      metric_name = value();
    } else if (arg == "--bits") {
      bits = std::stoi(value());
    } else if (arg == "--max-fefets") {
      options.max_fefets_per_cell = std::stoi(value());
    } else if (arg == "--max-vds") {
      options.max_vds_multiple = std::stoi(value());
    } else if (arg == "--no-ac3") {
      options.use_ac3 = false;
    } else if (arg == "--composite") {
      composite = true;
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else {
      std::cerr << "unknown argument: " << arg << '\n';
      return usage(argv[0]);
    }
  }

  csp::DistanceMetric metric;
  if (metric_name == "hamming") {
    metric = csp::DistanceMetric::kHamming;
  } else if (metric_name == "manhattan") {
    metric = csp::DistanceMetric::kManhattan;
  } else if (metric_name == "euclidean") {
    metric = csp::DistanceMetric::kEuclideanSquared;
  } else {
    std::cerr << "missing or unknown --metric\n";
    return usage(argv[0]);
  }

  try {
    std::optional<encode::CellEncoding> encoding;
    std::string note;
    if (composite) {
      auto comp = encode::make_composite_encoding(metric, bits, options);
      if (!comp) {
        std::cerr << "no composite encoding: metric not separable or base "
                     "cell infeasible\n";
        return 1;
      }
      encoding = std::move(comp->base);
      note = "composite: " + comp->codec.name() + " x " +
             std::to_string(comp->codec.subcells()) + " sub-cells, base "
             "encoding below";
    } else {
      const auto dm = csp::DistanceMatrix::make(metric, bits);
      encode::EncoderReport report;
      encoding = encode::encode_distance_matrix(dm, options, &report);
      if (!encoding) {
        if (report.resource_limited) {
          std::cerr << "exact CSP exceeded its budget at k="
                    << report.resource_limited_at_k
                    << " — try --composite for separable metrics\n";
        } else {
          std::cerr << "infeasible up to k=" << options.max_fefets_per_cell
                    << " (try raising --max-fefets / --max-vds)\n";
        }
        return 1;
      }
      note = "cell: " + std::to_string(encoding->fefets_per_cell()) +
             " FeFETs, " + std::to_string(encoding->ladder_levels()) +
             " levels, Vds multiples to " +
             std::to_string(encoding->max_vds_multiple());
    }

    const std::string text = encode::to_text(*encoding);
    if (!out_path.empty()) {
      std::ofstream file(out_path);
      if (!file) {
        std::cerr << "cannot write " << out_path << '\n';
        return 1;
      }
      file << text;
    }
    if (!quiet) {
      std::cout << "# " << note << '\n';
      encoding->to_text_table().print(std::cout);
      if (out_path.empty()) std::cout << '\n' << text;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
