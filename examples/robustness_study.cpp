// Device-variation robustness study (the Fig. 7 methodology, as an
// example application of the library's Monte-Carlo facilities).
//
// Sweeps the FeFET Vth sigma around the paper's 54 mV operating point and
// reports worst-case nearest-neighbor accuracy, showing how the ladder
// margin translates variation into search errors.
#include <cstdio>
#include <vector>

#include "core/ferex.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

/// One Monte-Carlo trial: fresh array instance (fresh device variation),
/// a query whose true neighbor is at Hamming distance `d_near` with
/// distractors at `d_near + 1`. Returns true if the LTA finds the right
/// row — the hardest case the paper reports (margin of one unit current).
bool trial(double sigma_vth_v, int d_near, std::uint64_t seed) {
  ferex::core::FerexOptions opt;
  opt.circuit.variation.sigma_vth_v = sigma_vth_v;
  opt.seed = seed;
  ferex::core::FerexEngine engine(opt);
  engine.configure(ferex::csp::DistanceMetric::kHamming, 2);

  const std::size_t dims = 64;
  ferex::util::Rng rng(seed ^ 0xabcdef);
  std::vector<int> query(dims);
  for (auto& v : query) v = static_cast<int>(rng.uniform_below(4));

  // Flip exactly `bits_away` distinct bit positions (each element holds
  // two bits) to land at a precise Hamming distance from the query.
  auto at_distance = [&](int bits_away) {
    auto vec = query;
    std::vector<std::size_t> chosen;
    while (chosen.size() < static_cast<std::size_t>(bits_away)) {
      const auto slot = rng.uniform_below(dims * 2);
      bool duplicate = false;
      for (auto s : chosen) duplicate |= (s == slot);
      if (!duplicate) chosen.push_back(slot);
    }
    for (auto slot : chosen) vec[slot / 2] ^= (1 << (slot % 2));
    return vec;
  };

  std::vector<std::vector<int>> db;
  db.push_back(at_distance(d_near));
  for (int i = 0; i < 15; ++i) db.push_back(at_distance(d_near + 1));
  engine.store(db);
  return engine.search(query).nearest == 0;
}

}  // namespace

int main() {
  constexpr int kRuns = 100;
  std::printf("Monte-Carlo NN accuracy vs Vth variation "
              "(nearest at HD=5, distractors at HD=6; %d runs)\n\n", kRuns);
  std::printf("%-14s %-10s %-12s\n", "sigma_Vth", "accuracy", "95% CI");
  for (double sigma_mv : {0.0, 27.0, 54.0, 81.0, 108.0, 135.0}) {
    int correct = 0;
    for (int run = 0; run < kRuns; ++run) {
      if (trial(sigma_mv * 1e-3, 5, 42 + static_cast<std::uint64_t>(run))) {
        ++correct;
      }
    }
    const double acc = static_cast<double>(correct) / kRuns;
    const double ci = ferex::util::wilson_half_width(acc, kRuns);
    std::printf("%6.0f mV      %-10.2f +/- %.2f%s\n", sigma_mv, acc, ci,
                sigma_mv == 54.0 ? "   <- paper's operating point" : "");
  }
  return 0;
}
