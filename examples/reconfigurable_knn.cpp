// Reconfigurable KNN classification on a synthetic sensor dataset.
//
// Demonstrates the workflow the paper motivates: within one application,
// different datasets prefer different distance metrics — with FeReX the
// metric is a runtime configuration, not a silicon respin. This example
// runs a KNN classifier entirely through the simulated FeReX array for
// each metric and reports accuracy side by side with software KNN.
#include <cstdio>
#include <map>

#include "core/ferex.hpp"
#include "data/datasets.hpp"
#include "ml/knn.hpp"
#include "ml/quantize.hpp"

namespace {

int majority_label(const std::vector<std::size_t>& neighbors,
                   const std::vector<int>& labels) {
  std::map<int, int> votes;
  for (auto idx : neighbors) ++votes[labels[idx]];
  int best = labels[neighbors.front()], best_votes = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best_votes = count;
      best = label;
    }
  }
  return best;
}

}  // namespace

int main() {
  using ferex::csp::DistanceMetric;

  // A compact activity-recognition-style dataset (sensor glitches favor
  // robust metrics).
  ferex::data::SyntheticSpec spec;
  spec.name = "sensors";
  spec.feature_count = 64;
  spec.class_count = 6;
  spec.train_size = 240;
  spec.test_size = 120;
  spec.class_separation = 0.8;
  spec.outlier_probability = 0.05;
  const auto ds = ferex::data::make_synthetic(spec, 2024);

  // Quantize features to 2-bit for the multi-bit AM.
  const auto quantizer = ferex::ml::Quantizer::fit(ds.train_x, 2);
  const auto train_q = quantizer.quantize(ds.train_x);
  const auto test_q = quantizer.quantize(ds.test_x);

  std::vector<std::vector<int>> database;
  database.reserve(train_q.rows());
  for (std::size_t r = 0; r < train_q.rows(); ++r) {
    const auto row = train_q.row(r);
    database.emplace_back(row.begin(), row.end());
  }

  ferex::core::FerexOptions opt;
  opt.encoder.max_fefets_per_cell = 6;
  opt.encoder.max_vds_multiple = 5;
  ferex::core::FerexEngine engine(opt);
  const ferex::ml::KnnClassifier software(train_q, ds.train_y);
  constexpr std::size_t kNeighbors = 5;

  std::printf("%-12s %-18s %-18s\n", "metric", "FeReX-KNN acc", "software acc");
  for (auto metric : {DistanceMetric::kHamming, DistanceMetric::kManhattan,
                      DistanceMetric::kEuclideanSquared}) {
    engine.configure(metric, 2);  // reconfigure in place
    if (engine.stored_count() == 0) engine.store(database);

    std::size_t hits = 0;
    for (std::size_t s = 0; s < test_q.rows(); ++s) {
      const auto row = test_q.row(s);
      const std::vector<int> query(row.begin(), row.end());
      const auto neighbors = engine.search_k(query, kNeighbors);
      if (majority_label(neighbors, ds.train_y) == ds.test_y[s]) ++hits;
    }
    const double hw_acc =
        static_cast<double>(hits) / static_cast<double>(test_q.rows());
    const double sw_acc =
        software.evaluate(metric, test_q, ds.test_y, kNeighbors);
    std::printf("%-12s %-18.3f %-18.3f\n",
                ferex::csp::to_string(metric).c_str(), hw_acc, sw_acc);
  }
  std::puts("\nSame stored array served all three metrics (reconfigured "
            "between runs).");
  return 0;
}
