// Hyperdimensional-computing classification through FeReX (Sec. IV-B).
//
// Full pipeline: random projection encoding -> single-pass + iterative
// training -> class prototypes programmed into the FeReX array -> queries
// answered by in-memory associative search. Tries all three metrics and
// reports which one this dataset prefers.
#include <cstdio>

#include "core/ferex.hpp"
#include "data/datasets.hpp"
#include "ml/hdc.hpp"

int main() {
  using ferex::csp::DistanceMetric;

  // Voice-recognition-style dataset (ISOLET shape, scaled sizes).
  auto spec = ferex::data::isolet_like();
  spec.train_size = 780;  // keep the example snappy
  spec.test_size = 260;
  const auto ds = ferex::data::make_synthetic(spec, 7);
  std::printf("dataset: %s  (n=%zu features, K=%zu classes)\n",
              ds.name.c_str(), ds.feature_count, ds.class_count);

  // Train the HDC model once per bit width; prototypes are
  // metric-agnostic. Hamming deployments binarize hypervectors (classic
  // HDC), Manhattan/Euclidean use the multi-bit representation — FeReX
  // serves both, the bit width is part of the reconfiguration.
  ferex::ml::HdcOptions hdc_opt;
  hdc_opt.hypervector_dim = 1024;
  hdc_opt.bits = 2;
  hdc_opt.training_epochs = 3;
  ferex::ml::HdcModel model(ds.feature_count, ds.class_count, hdc_opt);
  model.train(ds.train_x, ds.train_y);
  ferex::ml::HdcOptions hdc1 = hdc_opt;
  hdc1.bits = 1;
  ferex::ml::HdcModel binary_model(ds.feature_count, ds.class_count, hdc1);
  binary_model.train(ds.train_x, ds.train_y);

  const auto prototypes_of = [&](const ferex::ml::HdcModel& m) {
    std::vector<std::vector<int>> out;
    for (std::size_t c = 0; c < ds.class_count; ++c) {
      const auto row = m.prototypes().row(c);
      out.emplace_back(row.begin(), row.end());
    }
    return out;
  };

  ferex::core::FerexOptions opt;
  opt.encoder.max_fefets_per_cell = 6;
  opt.encoder.max_vds_multiple = 5;
  // Class count is small; circuit fidelity is affordable here.
  ferex::core::FerexEngine engine(opt);

  std::printf("%-18s %-10s %-14s %-12s\n", "metric", "accuracy",
              "energy/query", "delay");
  for (auto metric : {DistanceMetric::kHamming, DistanceMetric::kManhattan,
                      DistanceMetric::kEuclideanSquared}) {
    const bool binary = metric == DistanceMetric::kHamming;
    const auto& m = binary ? binary_model : model;
    engine.configure(metric, binary ? 1 : 2);
    engine.store(prototypes_of(m));

    std::size_t hits = 0;
    for (std::size_t s = 0; s < ds.test_x.rows(); ++s) {
      const auto query = m.encode_query(ds.test_x.row(s));
      const auto winner = engine.search(query).nearest;
      if (static_cast<int>(winner) == ds.test_y[s]) ++hits;
    }
    const double acc =
        static_cast<double>(hits) / static_cast<double>(ds.test_x.rows());
    const auto cost = engine.search_cost();
    std::printf("%-10s (%d-bit) %-10.3f %8.2f nJ   %8.2f ns\n",
                ferex::csp::to_string(metric).c_str(), binary ? 1 : 2, acc,
                cost.total_energy_j() * 1e9, cost.total_delay_s() * 1e9);
  }
  return 0;
}
