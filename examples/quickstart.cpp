// Quickstart: configure FeReX for a distance metric, store a few vectors,
// run nearest-neighbor searches, then reconfigure the SAME array for a
// different metric — the paper's headline capability.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/ferex.hpp"

int main() {
  using ferex::csp::DistanceMetric;

  // 1. Create the engine and configure the distance function. The CSP
  //    encoder (Algorithm 1) finds the minimal cell and the voltage
  //    configuration automatically.
  ferex::core::FerexEngine engine;
  engine.configure(DistanceMetric::kHamming, /*bits=*/2);
  std::printf("Configured %s: %zu FeFETs/cell, %zu voltage levels\n",
              engine.distance_matrix().name().c_str(),
              engine.encoding().fefets_per_cell(),
              engine.encoding().ladder_levels());

  // 2. Store a small database of 2-bit vectors (values 0..3 per element).
  const std::vector<std::vector<int>> database{
      {0, 0, 0, 0, 0, 0}, {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
      {3, 3, 3, 3, 3, 3}, {0, 1, 2, 3, 2, 1},
  };
  engine.store(database);

  // 3. Search. The LTA flags the row with minimal current = distance.
  const std::vector<int> query{1, 1, 1, 1, 2, 1};
  auto result = engine.search(query);
  std::printf("Hamming NN of query: row %zu (distance %d)\n", result.nearest,
              result.nominal_distance);

  // 4. Reconfigure for Manhattan distance — same array, same data.
  engine.configure(DistanceMetric::kManhattan, 2);
  result = engine.search(query);
  std::printf("Manhattan NN of query: row %zu (distance %d)\n",
              result.nearest, result.nominal_distance);

  // 5. And Euclidean. k-NN works too.
  engine.configure(DistanceMetric::kEuclideanSquared, 2);
  const auto top3 = engine.search_k(query, 3);
  std::printf("Euclidean top-3 rows: %zu %zu %zu\n", top3[0], top3[1],
              top3[2]);

  // 6. Per-search energy/delay from the Fig. 6 model.
  const auto cost = engine.search_cost();
  std::printf("Search: %.2f pJ total, %.2f ns (%.0f%% ScL settling)\n",
              cost.total_energy_j() * 1e12, cost.total_delay_s() * 1e9,
              100.0 * cost.scl_settle_s / cost.total_delay_s());
  return 0;
}
