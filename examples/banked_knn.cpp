// Large-scale KNN through the banked multi-macro architecture.
//
// A single FeReX macro holds at most a few hundred rows; a KNN database
// of 1-2k training vectors therefore spans multiple macros. This example
// classifies an MNIST-shaped synthetic digit set with 1-NN over banked
// FeReX arrays, reports accuracy against software KNN, and prints the
// architecture-level delay/energy of the banked search.
#include <cstdio>

#include "arch/banked_am.hpp"
#include "data/datasets.hpp"
#include "ml/knn.hpp"
#include "ml/quantize.hpp"

int main() {
  using ferex::csp::DistanceMetric;

  auto spec = ferex::data::mnist_like();
  spec.train_size = 1000;  // spans 8 banks of 128 rows
  spec.test_size = 200;
  const auto ds = ferex::data::make_synthetic(spec, 99);
  std::printf("dataset: %s, %zu train / %zu test, %zu features\n",
              ds.name.c_str(), ds.train_x.rows(), ds.test_x.rows(),
              ds.feature_count);

  const auto quantizer = ferex::ml::Quantizer::fit(ds.train_x, 2);
  const auto train_q = quantizer.quantize(ds.train_x);
  const auto test_q = quantizer.quantize(ds.test_x);
  std::vector<std::vector<int>> database;
  for (std::size_t r = 0; r < train_q.rows(); ++r) {
    const auto row = train_q.row(r);
    database.emplace_back(row.begin(), row.end());
  }

  ferex::arch::BankedOptions opt;
  opt.bank_rows = 128;
  // Nominal fidelity keeps this example fast; the robustness_study and
  // bench_fig7 cover circuit-level noise.
  opt.engine.fidelity = ferex::core::SearchFidelity::kNominal;
  ferex::arch::BankedAm am(opt);
  am.configure(DistanceMetric::kHamming, 2);
  am.store(database);
  std::printf("banked across %zu macros of up to %zu rows\n",
              am.bank_count(), opt.bank_rows);

  const ferex::ml::KnnClassifier software(train_q, ds.train_y);
  std::size_t hw_hits = 0, sw_hits = 0;
  for (std::size_t s = 0; s < test_q.rows(); ++s) {
    const auto row = test_q.row(s);
    const std::vector<int> query(row.begin(), row.end());
    const auto result = am.search(query);
    if (ds.train_y[result.nearest] == ds.test_y[s]) ++hw_hits;
    if (software.predict(DistanceMetric::kHamming, query, 1) == ds.test_y[s]) {
      ++sw_hits;
    }
  }
  const auto n = static_cast<double>(test_q.rows());
  std::printf("1-NN accuracy: FeReX banked %.3f | software %.3f\n",
              hw_hits / n, sw_hits / n);
  std::printf("banked search: %.2f ns, %.2f nJ per query "
              "(%zu banks in parallel + global LTA)\n",
              am.search_delay_s() * 1e9, am.search_energy_j() * 1e9,
              am.bank_count());
  return 0;
}
