// Large-scale KNN served through the AmIndex API over banked macros.
//
// A single FeReX macro holds at most a few hundred rows; a KNN database
// of 1-2k training vectors therefore spans multiple macros. This example
// classifies an MNIST-shaped synthetic digit set with 1-NN through
// serve::BankedIndex — the unified request/response surface — bulk-
// storing most of the training set and streaming the remainder in with
// insert() (banks grow on demand; searches are bit-identical to storing
// everything up front). It reports accuracy against software KNN and the
// architecture-level delay/energy of the banked search.
#include <cstdio>

#include "data/datasets.hpp"
#include "ml/knn.hpp"
#include "ml/quantize.hpp"
#include "serve/banked_index.hpp"

int main() {
  using ferex::csp::DistanceMetric;

  auto spec = ferex::data::mnist_like();
  spec.train_size = 1000;  // spans 8 banks of 128 rows
  spec.test_size = 200;
  const auto ds = ferex::data::make_synthetic(spec, 99);
  std::printf("dataset: %s, %zu train / %zu test, %zu features\n",
              ds.name.c_str(), ds.train_x.rows(), ds.test_x.rows(),
              ds.feature_count);

  const auto quantizer = ferex::ml::Quantizer::fit(ds.train_x, 2);
  const auto train_q = quantizer.quantize(ds.train_x);
  const auto test_q = quantizer.quantize(ds.test_x);
  std::vector<std::vector<int>> database;
  for (std::size_t r = 0; r < train_q.rows(); ++r) {
    const auto row = train_q.row(r);
    database.emplace_back(row.begin(), row.end());
  }

  ferex::arch::BankedOptions opt;
  opt.bank_rows = 128;
  // Nominal fidelity keeps this example fast; the robustness_study and
  // bench_fig7 cover circuit-level noise.
  opt.engine.fidelity = ferex::core::SearchFidelity::kNominal;
  ferex::serve::BankedIndex index(opt);
  index.configure(DistanceMetric::kHamming, 2);

  // Bulk-load all but the last 100 vectors, then stream those in — the
  // live write path a deployed index uses as training data arrives.
  const std::size_t bulk = database.size() - 100;
  index.store({database.begin(), database.begin() + bulk});
  ferex::circuit::WriteCost streamed;
  for (std::size_t r = bulk; r < database.size(); ++r) {
    streamed = index.insert(database[r]).cost;
  }
  std::printf("banked across %zu macros of up to %zu rows "
              "(%zu bulk-stored + %zu streamed inserts, "
              "last insert %.1f us / %.2f nJ)\n",
              index.bank_count(), opt.bank_rows, bulk,
              database.size() - bulk, streamed.latency_s * 1e6,
              streamed.energy_j * 1e9);

  const ferex::ml::KnnClassifier software(train_q, ds.train_y);
  std::size_t hw_hits = 0, sw_hits = 0;
  ferex::serve::SearchRequest request;
  for (std::size_t s = 0; s < test_q.rows(); ++s) {
    const auto row = test_q.row(s);
    request.query.assign(row.begin(), row.end());
    const auto response = index.search(request);
    if (ds.train_y[response.best().global_row] == ds.test_y[s]) ++hw_hits;
    if (software.predict(DistanceMetric::kHamming, request.query, 1) ==
        ds.test_y[s]) {
      ++sw_hits;
    }
  }
  const auto n = static_cast<double>(test_q.rows());
  std::printf("1-NN accuracy: FeReX banked %.3f | software %.3f\n",
              hw_hits / n, sw_hits / n);
  std::printf("banked search: %.2f ns, %.2f nJ per query "
              "(%zu banks in parallel + global LTA)\n",
              index.banked().search_delay_s() * 1e9,
              index.banked().search_energy_j() * 1e9, index.bank_count());
  return 0;
}
