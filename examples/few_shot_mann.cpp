// Few-shot (MANN-style) learning with FeReX as the episodic memory.
//
// Reproduces the workflow of the FeFET-AM one-shot learning literature
// the paper builds on (Ni et al. Nat. Electronics'19, SAPIENS TED'21):
// per episode, a handful of labelled examples of novel classes are
// written into the AM and queries are classified by in-memory NN search.
// With FeReX the episode can also pick its distance function — the table
// below shows N-way/k-shot accuracy per metric.
#include <cstdio>

#include "core/ferex.hpp"
#include "ml/mann.hpp"

int main() {
  using ferex::csp::DistanceMetric;

  ferex::ml::EpisodeSpec spec;
  spec.ways = 5;
  spec.shots = 1;
  spec.queries_per_class = 10;
  spec.feature_count = 64;
  spec.class_separation = 1.0;

  ferex::core::FerexOptions opt;
  opt.encoder.max_fefets_per_cell = 6;
  opt.encoder.max_vds_multiple = 5;
  constexpr std::size_t kEpisodes = 40;

  std::printf("%zu-way %zu-shot, %zu episodes, %zu features\n\n", spec.ways,
              spec.shots, kEpisodes, spec.feature_count);
  std::printf("%-12s %-12s %-12s\n", "metric", "1-shot acc", "5-shot acc");
  for (auto metric : {DistanceMetric::kHamming, DistanceMetric::kManhattan,
                      DistanceMetric::kEuclideanSquared}) {
    ferex::core::FerexEngine engine(opt);
    engine.configure(metric, 2);
    auto one_shot = spec;
    const auto r1 = ferex::ml::evaluate_few_shot(engine, one_shot, kEpisodes,
                                                 /*seed=*/606);
    auto five_shot = spec;
    five_shot.shots = 5;
    const auto r5 = ferex::ml::evaluate_few_shot(engine, five_shot, kEpisodes,
                                                 /*seed=*/707);
    std::printf("%-12s %-12.3f %-12.3f\n",
                ferex::csp::to_string(metric).c_str(), r1.accuracy,
                r5.accuracy);
  }
  std::puts("\n(each episode re-programs the array with novel classes; the "
            "metric is a\n runtime choice — the reconfigurability the paper "
            "argues for)");
  return 0;
}
