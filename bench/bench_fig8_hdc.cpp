// Fig. 8 regeneration: HDC benchmarking over the three Table III datasets.
//
//   (a) classification accuracy per FeReX distance metric — different
//       datasets prefer different metrics, the motivation for
//       reconfigurability;
//   (b) computation speedup of FeReX over the GPU implementation
//       (paper: up to 250x);
//   (c) energy-efficiency improvement over GPU (paper: up to ~10^4).
//
// FeReX latency/energy come from the circuit energy/delay model on the
// prototype-array geometry (K rows x D dims); GPU numbers come from the
// RTX-3090-class roofline model (see DESIGN.md for the substitution).
#include <cstdio>
#include <iostream>

#include "baseline/gpu_model.hpp"
#include "circuit/energy_model.hpp"
#include "core/ferex.hpp"
#include "data/datasets.hpp"
#include "ml/hdc.hpp"
#include "util/table.hpp"

namespace {

using namespace ferex;
using csp::DistanceMetric;

struct DatasetResult {
  std::string name;
  double accuracy[3] = {0, 0, 0};  // HD, L1, L2
  double speedup_streaming = 0.0;  ///< GPU at online batch (8 queries)
  double speedup_batched = 0.0;    ///< GPU amortized over the full test set
  double energy_gain_streaming = 0.0;
  double energy_gain_batched = 0.0;
};

DatasetResult run_dataset(const data::SyntheticSpec& spec,
                          std::uint64_t seed) {
  const auto ds = data::make_synthetic(spec, seed);

  // Hamming deployments binarize hypervectors (classic HDC); L1/L2 use
  // the multi-bit representation. FeReX serves both from the same array —
  // the bit width is part of the reconfiguration. Same projection seed,
  // so the two models differ only in prototype/query quantization.
  ml::HdcOptions hdc_opt;
  hdc_opt.hypervector_dim = 1024;
  hdc_opt.bits = 2;
  hdc_opt.training_epochs = 3;
  ml::HdcModel model(ds.feature_count, ds.class_count, hdc_opt);
  model.train(ds.train_x, ds.train_y);
  ml::HdcOptions hdc1 = hdc_opt;
  hdc1.bits = 1;
  ml::HdcModel binary_model(ds.feature_count, ds.class_count, hdc1);
  binary_model.train(ds.train_x, ds.train_y);

  DatasetResult result;
  result.name = ds.name;
  result.accuracy[0] =
      binary_model.evaluate(DistanceMetric::kHamming, ds.test_x, ds.test_y);
  result.accuracy[1] =
      model.evaluate(DistanceMetric::kManhattan, ds.test_x, ds.test_y);
  result.accuracy[2] = model.evaluate(DistanceMetric::kEuclideanSquared,
                                      ds.test_x, ds.test_y);

  // FeReX side: one associative search per query over the prototype array
  // (K rows x D dims, 2-bit cells -> 3FeFET3R from the encoder).
  circuit::EnergyDelayModel edm;
  circuit::SearchOpSpec op;
  op.rows = ds.class_count;
  op.dims = hdc_opt.hypervector_dim;
  op.fefets_per_cell = 3;
  op.bits_per_cell = 2;
  const auto ferex_cost = edm.search_op(op);

  // GPU side, two operating regimes:
  //  * streaming (batch = 8): online/edge inference, fixed kernel-launch
  //    and framework overheads dominate — the regime where CiM shines and
  //    where the paper's "up to 250x" lives;
  //  * batched (batch = full test set): overheads amortized, the GPU's
  //    best case.
  baseline::GpuCostModel gpu;
  const auto per_query = [&](std::size_t batch) {
    const auto cost = gpu.hdc_inference(batch, ds.class_count,
                                        hdc_opt.hypervector_dim);
    return std::pair{cost.latency_s / static_cast<double>(batch),
                     cost.energy_j / static_cast<double>(batch)};
  };
  const auto [lat_stream, en_stream] = per_query(8);
  const auto [lat_batch, en_batch] = per_query(ds.test_x.rows());
  result.speedup_streaming = lat_stream / ferex_cost.total_delay_s();
  result.speedup_batched = lat_batch / ferex_cost.total_delay_s();
  result.energy_gain_streaming = en_stream / ferex_cost.total_energy_j();
  result.energy_gain_batched = en_batch / ferex_cost.total_energy_j();
  return result;
}

}  // namespace

int main() {
  std::puts("=== Fig. 8: HDC benchmarking (Table III datasets, synthetic "
            "substitutes) ===\n");

  std::vector<DatasetResult> results;
  results.push_back(run_dataset(data::isolet_like(), 101));
  results.push_back(run_dataset(data::ucihar_like(), 202));
  results.push_back(run_dataset(data::mnist_like(), 303));

  std::puts("--- Fig. 8(a): classification accuracy per distance metric ---");
  util::TextTable acc({"dataset", "Hamming (1-bit)", "Manhattan (2-bit)",
                       "Euclidean (2-bit)", "best metric"});
  const char* metric_names[] = {"Hamming", "Manhattan", "Euclidean"};
  for (const auto& r : results) {
    int best = 0;
    for (int m = 1; m < 3; ++m) {
      if (r.accuracy[m] > r.accuracy[best]) best = m;
    }
    acc.add_row({r.name, util::TextTable::fmt(r.accuracy[0], 3),
                 util::TextTable::fmt(r.accuracy[1], 3),
                 util::TextTable::fmt(r.accuracy[2], 3),
                 metric_names[best]});
  }
  std::cout << acc;
  std::puts("shape check: no single metric wins everywhere -> "
            "reconfigurability pays (paper Fig. 8a)");

  std::puts("\n--- Fig. 8(b)/(c): speedup and energy efficiency vs GPU ---");
  util::TextTable speed({"dataset", "speedup stream", "speedup batched",
                         "energy gain stream", "energy gain batched"});
  for (const auto& r : results) {
    speed.add_row({r.name,
                   util::TextTable::fmt(r.speedup_streaming, 0) + "x",
                   util::TextTable::fmt(r.speedup_batched, 0) + "x",
                   util::TextTable::sci(r.energy_gain_streaming, 1) + "x",
                   util::TextTable::sci(r.energy_gain_batched, 1) + "x"});
  }
  std::cout << speed;

  double max_speedup = 0.0, max_gain = 0.0;
  for (const auto& r : results) {
    max_speedup = std::max(max_speedup, r.speedup_streaming);
    max_gain = std::max(max_gain, r.energy_gain_batched);
  }
  std::printf("\nmax streaming speedup: %.0fx (paper: up to 250x)\n",
              max_speedup);
  std::printf("energy-efficiency gain: %.1e batched / higher streaming "
              "(paper: up to 1e4;\n  our simulated macro is more frugal "
              "than the paper's silicon estimate, so the\n  ratio "
              "overshoots — see EXPERIMENTS.md)\n", max_gain);
  return 0;
}
