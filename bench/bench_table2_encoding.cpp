// Table II + Fig. 4 regeneration: the CSP-derived encoding for 2-bit
// Hamming distance on a 3FeFET3R cell.
//
// Prints: the target distance matrix (Fig. 4a), the decomposition count of
// the worked example (Fig. 4c), the per-k feasibility trace ("FeReX
// iteratively increases the number of FeFETs"), and the final encoding
// table in the paper's Table II layout. Also regenerates the encodings for
// 2-bit Manhattan and 2-bit Euclidean mentioned in Sec. III-B.
#include <cstdio>
#include <iostream>

#include "csp/decompose.hpp"
#include "csp/feasibility.hpp"
#include "encode/encoder.hpp"
#include "util/table.hpp"

namespace {

using namespace ferex;

void print_dm(const csp::DistanceMatrix& dm) {
  util::TextTable t({"search\\store", "00", "01", "10", "11"});
  const char* names[] = {"00", "01", "10", "11"};
  for (std::size_t sch = 0; sch < dm.search_count(); ++sch) {
    std::vector<std::string> row{names[sch]};
    for (std::size_t sto = 0; sto < dm.stored_count(); ++sto) {
      row.push_back(std::to_string(dm.at(sch, sto)));
    }
    t.add_row(std::move(row));
  }
  std::cout << t;
}

void regenerate(csp::DistanceMetric metric, int max_vds) {
  const auto dm = csp::DistanceMatrix::make(metric, 2);
  util::print_banner(std::cout, "Encoding for " + dm.name());
  encode::EncoderOptions opt;
  opt.max_fefets_per_cell = 8;
  opt.max_vds_multiple = max_vds;
  encode::EncoderReport report;
  const auto enc = encode::encode_distance_matrix(dm, opt, &report);
  if (!enc) {
    std::printf("  infeasible up to k=%d\n", opt.max_fefets_per_cell);
    return;
  }
  for (int k : report.rejected_k) {
    std::printf("  k=%d : infeasible (CSP has no solution)\n", k);
  }
  std::printf("  k=%d : FEASIBLE -> %zuFeFET%zuR cell, %zu voltage levels, "
              "Vds multiples up to %d\n",
              report.fefets_per_cell, enc->fefets_per_cell(),
              enc->fefets_per_cell(), enc->ladder_levels(),
              enc->max_vds_multiple());
  std::printf("  CSP stats: %zu AC-3 revisions, %zu prunes, %zu search nodes\n",
              report.csp_stats.ac3_revisions, report.csp_stats.ac3_removals,
              report.csp_stats.backtrack_nodes);
  std::cout << enc->to_text_table();
  std::printf("  verification: encoding %s the target DM\n",
              enc->realizes(dm) ? "exactly reproduces" : "FAILS to reproduce");
}

}  // namespace

int main() {
  std::puts("=== Table II / Fig. 4: CSP encoding regeneration ===");
  std::puts("(paper reference: 2-bit Hamming needs a 3FeFET3R cell; the");
  std::puts(" encoding below is one member of the CSP's feasible region —");
  std::puts(" equivalent to, though not necessarily identical with, the");
  std::puts(" paper's table)");

  const auto dm = csp::DistanceMatrix::make(csp::DistanceMetric::kHamming, 2);
  util::print_banner(std::cout, "Fig. 4(a): 2-bit Hamming distance matrix");
  print_dm(dm);

  util::print_banner(std::cout,
                     "Fig. 4(c): decompositions of DM element '2' (k=3, CR={1,2})");
  const std::vector<int> cr{1, 2};
  const auto decs = csp::decompose_value(3, 2, cr);
  std::printf("  %zu decompositions:", decs.size());
  for (const auto& d : decs) {
    std::printf(" (%d,%d,%d)", d[0], d[1], d[2]);
  }
  std::printf("\n");

  regenerate(csp::DistanceMetric::kHamming, 2);
  regenerate(csp::DistanceMetric::kManhattan, 2);
  // Euclidean-squared needs drain multiples up to 5 (DM entries reach 9).
  regenerate(csp::DistanceMetric::kEuclideanSquared, 5);
  return 0;
}
