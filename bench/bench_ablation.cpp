// Ablation studies for the design choices called out in DESIGN.md:
//   A. AC-3 vs pure backtracking for constraint 3 (Alg. 1's note);
//   B. cell size k vs feasibility and current-range budget;
//   C. op-amp ScL clamp on/off -> distance corruption and NN accuracy;
//   D. monolithic (exact CSP) vs composite (digit-decomposed) scaling;
//   E. ladder noise margin vs Monte-Carlo search accuracy.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "core/ferex.hpp"
#include "csp/errors.hpp"
#include "csp/feasibility.hpp"
#include "encode/composite.hpp"
#include "encode/encoder.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ferex;
using csp::DistanceMetric;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void ablation_ac3() {
  util::print_banner(std::cout, "A. AC-3 vs pure backtracking (constraint 3)");
  util::TextTable t({"DM", "k", "mode", "feasible", "AC-3 prunes",
                     "search nodes", "time [ms]"});
  const std::vector<int> cr{1, 2};
  for (auto metric : {DistanceMetric::kHamming, DistanceMetric::kManhattan}) {
    const auto dm = csp::DistanceMatrix::make(metric, 2);
    const int k = metric == DistanceMetric::kHamming ? 3 : 4;
    for (bool use_ac3 : {true, false}) {
      csp::FeasibilityOptions opt;
      opt.use_ac3 = use_ac3;
      const auto t0 = std::chrono::steady_clock::now();
      const auto result = csp::detect_feasibility(dm, k, cr, opt);
      t.add_row({dm.name(), std::to_string(k),
                 use_ac3 ? "AC-3 + search" : "search only",
                 result.feasible ? "yes" : "no",
                 std::to_string(result.stats.ac3_removals),
                 std::to_string(result.stats.backtrack_nodes),
                 util::TextTable::fmt(ms_since(t0), 2)});
    }
  }
  std::cout << t;
}

void ablation_cell_size() {
  util::print_banner(std::cout, "B. cell size k vs feasibility (CR = {1,2})");
  util::TextTable t({"DM", "k=1", "k=2", "k=3", "k=4", "k=5"});
  const std::vector<int> cr{1, 2};
  for (auto metric : {DistanceMetric::kHamming, DistanceMetric::kManhattan,
                      DistanceMetric::kEuclideanSquared}) {
    const auto dm = csp::DistanceMatrix::make(metric, 2);
    std::vector<std::string> row{dm.name()};
    for (int k = 1; k <= 5; ++k) {
      try {
        const auto result = csp::detect_feasibility(dm, k, cr);
        row.push_back(result.feasible ? "feasible" : "infeasible");
      } catch (const csp::ResourceLimitError&) {
        row.push_back("budget");
      }
    }
    t.add_row(std::move(row));
  }
  std::cout << t;
  std::puts("(Euclidean-squared needs CR up to {1..5}: max DM entry is 9)");
}

void ablation_clamp() {
  util::print_banner(std::cout, "C. op-amp ScL clamp on/off");
  util::TextTable t({"clamp", "distance error @ d=64", "NN accuracy (40 trials)"});
  for (bool clamp : {true, false}) {
    core::FerexOptions opt;
    opt.circuit.use_opamp_clamp = clamp;
    opt.circuit.variation.enabled = false;
    opt.lta.offset_sigma_rel = 0.0;

    // Distance corruption on one large-distance row.
    core::FerexEngine probe(opt);
    probe.configure(DistanceMetric::kHamming, 2);
    const std::vector<int> stored(64, 0);
    const std::vector<int> far_query(64, 3);
    probe.store({stored});
    const double sensed =
        probe.row_currents(far_query).front() / probe.sense_unit();
    const double expected = 128.0;  // HD(0b00, 0b11) * 64

    // NN accuracy with realistic variation.
    std::size_t correct = 0;
    const int trials = 40;
    for (int trial = 0; trial < trials; ++trial) {
      core::FerexOptions noisy = opt;
      noisy.circuit.variation.enabled = true;
      noisy.seed = 777 + static_cast<std::uint64_t>(trial);
      core::FerexEngine engine(noisy);
      engine.configure(DistanceMetric::kHamming, 2);
      util::Rng rng(42 + static_cast<std::uint64_t>(trial));
      std::vector<int> query(64);
      for (auto& v : query) v = static_cast<int>(rng.uniform_below(4));
      std::vector<std::vector<int>> db;
      auto flip = [&](int bits) {
        auto vec = query;
        for (int f = 0; f < bits; ++f) {
          vec[rng.uniform_below(64)] ^= (1 << (f % 2));
        }
        return vec;
      };
      db.push_back(flip(3));
      for (int i = 0; i < 9; ++i) db.push_back(flip(12));
      engine.store(db);
      if (engine.search(query).nearest == 0) ++correct;
    }
    t.add_row({clamp ? "on" : "off (ablated)",
               util::TextTable::fmt(expected - sensed, 2) + " units",
               util::TextTable::fmt(
                   static_cast<double>(correct) / trials, 2)});
  }
  std::cout << t;
}

void ablation_composite() {
  util::print_banner(std::cout,
                     "D. monolithic exact CSP vs composite decomposition");
  util::TextTable t({"metric", "bits", "monolithic", "composite",
                     "FeFETs/element (composite)"});
  encode::EncoderOptions opt;
  opt.max_fefets_per_cell = 6;
  for (auto metric : {DistanceMetric::kHamming, DistanceMetric::kManhattan}) {
    for (int bits : {2, 3, 4}) {
      const auto dm = csp::DistanceMatrix::make(metric, bits);
      std::string mono;
      encode::EncoderReport report;
      const auto enc = encode::encode_distance_matrix(dm, opt, &report);
      if (enc) {
        mono = "k=" + std::to_string(report.fefets_per_cell);
      } else if (report.resource_limited) {
        mono = "budget @ k=" + std::to_string(report.resource_limited_at_k);
      } else {
        mono = "infeasible";
      }
      const auto composite = encode::make_composite_encoding(metric, bits);
      t.add_row({csp::to_string(metric), std::to_string(bits), mono,
                 composite ? "feasible" : "n/a",
                 composite ? std::to_string(composite->fefets_per_element())
                           : "-"});
    }
  }
  std::cout << t;
  std::puts("(composite cells grow linearly in bits for Hamming, as 2^b-1 "
            "for thermometer L1;\n the exact CSP explodes past 2-bit — "
            "see EncoderReport::resource_limited)");
}

void ablation_margin() {
  util::print_banner(std::cout,
                     "E. ladder noise margin vs MC accuracy (sigma_Vth = 54 mV)");
  util::TextTable t({"ladder step [V]", "margin [V]", "margin/sigma",
                     "accuracy (60 runs, HD 5 vs 6)"});
  for (double step : {0.20, 0.30, 0.40, 0.58}) {
    std::size_t correct = 0;
    const int trials = 60;
    for (int trial = 0; trial < trials; ++trial) {
      core::FerexOptions opt;
      opt.ladder_step_v = step;
      opt.seed = 31337 + static_cast<std::uint64_t>(trial);
      core::FerexEngine engine(opt);
      engine.configure(DistanceMetric::kHamming, 2);
      util::Rng rng(1000 + static_cast<std::uint64_t>(trial));
      std::vector<int> query(64);
      for (auto& v : query) v = static_cast<int>(rng.uniform_below(4));
      auto at_hd = [&](int bits) {
        auto vec = query;
        std::vector<std::size_t> chosen;
        while (chosen.size() < static_cast<std::size_t>(bits)) {
          const auto slot = rng.uniform_below(128);
          bool dup = false;
          for (auto s : chosen) dup |= (s == slot);
          if (!dup) chosen.push_back(slot);
        }
        for (auto s : chosen) vec[s / 2] ^= (1 << (s % 2));
        return vec;
      };
      std::vector<std::vector<int>> db;
      db.push_back(at_hd(5));
      for (int i = 0; i < 15; ++i) db.push_back(at_hd(6));
      engine.store(db);
      if (engine.search(query).nearest == 0) ++correct;
    }
    t.add_row({util::TextTable::fmt(step, 2),
               util::TextTable::fmt(step / 2.0, 2),
               util::TextTable::fmt(step / 2.0 / 0.054, 1),
               util::TextTable::fmt(static_cast<double>(correct) / trials, 2)});
  }
  std::cout << t;
}

}  // namespace

int main() {
  std::puts("=== FeReX design-choice ablations ===");
  ablation_ac3();
  ablation_cell_size();
  ablation_clamp();
  ablation_composite();
  ablation_margin();
  return 0;
}
