// Shared --json output for the bench binaries.
//
// Every bench that accepts `--json <path>` emits one document with the
// same stable schema, so the perf trajectory (BENCH_*.json files) can be
// collected and diffed across commits without parsing stdout:
//
//   {
//     "bench": "<binary name>",
//     "schema_version": 2,
//     "hardware_concurrency": <uint>,
//     "results": [
//       {
//         "label": "<measurement mode>",
//         "geometry": {"rows": <uint>, "dims": <uint>},
//         "queries": <uint>,
//         "fidelity": "circuit" | "nominal",
//         "qps": <double>,
//         "latency_p50_us": <double>,
//         "latency_p95_us": <double>,
//         "latency_p99_us": <double>,
//         "offered_qps": <double>,     // optional (open-loop modes only)
//         "achieved_qps": <double>,    // optional
//         "shed_rate": <double>,       // optional, in [0, 1]
//         "write_p50_us": <double>,    // optional (mixed-class modes)
//         "write_p95_us": <double>     // optional
//       }, ...
//     ]
//   }
//
// Latency percentiles are per measured call; batched modes divide each
// batch call's wall time by its query count first (amortized per-query
// latency), which is noted in the mode's label. Schema v2 added
// latency_p99_us (serve-path tails). Schema v3 adds the optional
// open-loop fields above: offered_qps is the generator's target arrival
// rate, achieved_qps counts completed (non-shed) requests over wall
// time, shed_rate is shed / offered, and write_p50/p95_us carry the
// write class's end-to-end latency when a mode mixes classes. A record
// omits the optional keys when the mode has nothing to report (closed
// loop, search-only); consumers key on label/geometry and must tolerate
// their absence.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "util/durable_file.hpp"

namespace ferex::benchjson {

struct Record {
  std::string label;
  std::size_t rows = 0;
  std::size_t dims = 0;
  std::size_t queries = 0;
  std::string fidelity;  // "circuit" | "nominal"
  double qps = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;
  // Schema-v3 optional fields. Negative means "not applicable": the key
  // is left out of the JSON entirely rather than emitted as a sentinel.
  double offered_qps = -1.0;
  double achieved_qps = -1.0;
  double shed_rate = -1.0;
  double write_p50_us = -1.0;
  double write_p95_us = -1.0;
};

/// Linear-interpolated percentile over already-sorted samples, p in
/// [0, 100] (numpy's default "linear" interpolation, not nearest-rank).
inline double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Times fn(0), ..., fn(n - 1), one wall-clock sample per call, in
/// seconds — the one timing loop every bench shares.
template <typename Fn>
std::vector<double> time_calls(std::size_t n, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  std::vector<double> seconds;
  seconds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto start = Clock::now();
    fn(i);
    seconds.push_back(
        std::chrono::duration<double>(Clock::now() - start).count());
  }
  return seconds;
}

/// Fills a record's qps and latency percentiles from per-call samples
/// (seconds) where each call covered `queries_per_call` queries.
inline void fill_timing(Record& record, std::span<const double> call_seconds,
                        std::size_t queries_per_call) {
  double total = 0.0;
  std::vector<double> per_query_us;
  per_query_us.reserve(call_seconds.size());
  for (const double s : call_seconds) {
    total += s;
    per_query_us.push_back(s * 1e6 / static_cast<double>(queries_per_call));
  }
  std::sort(per_query_us.begin(), per_query_us.end());
  const std::size_t queries = call_seconds.size() * queries_per_call;
  record.queries = queries;
  record.qps = total > 0.0 ? static_cast<double>(queries) / total : 0.0;
  record.latency_p50_us = percentile_sorted(per_query_us, 50.0);
  record.latency_p95_us = percentile_sorted(per_query_us, 95.0);
  record.latency_p99_us = percentile_sorted(per_query_us, 99.0);
}

/// Writes the document atomically (util::atomic_write_file: the path
/// holds either the previous complete document or the new one — a
/// crashed or killed bench can never leave a torn JSON for
/// bench_compare to reject). Returns false (with a message on stderr)
/// on I/O failure so benches can exit non-zero.
inline bool write_json(const std::string& path, const std::string& bench,
                       std::span<const Record> records) {
  std::string out;
  char buffer[512];
  std::snprintf(buffer, sizeof buffer,
                "{\n  \"bench\": \"%s\",\n  \"schema_version\": 3,\n"
                "  \"hardware_concurrency\": %u,\n  \"results\": [",
                bench.c_str(), std::thread::hardware_concurrency());
  out += buffer;
  const auto append_optional = [&](std::string& doc, const char* key,
                                   double value) {
    if (value < 0.0) return;
    std::snprintf(buffer, sizeof buffer, ", \"%s\": %.3f", key, value);
    doc += buffer;
  };
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    std::snprintf(
        buffer, sizeof buffer,
        "%s\n    {\"label\": \"%s\", \"geometry\": {\"rows\": %zu, "
        "\"dims\": %zu}, \"queries\": %zu, \"fidelity\": \"%s\", "
        "\"qps\": %.3f, \"latency_p50_us\": %.3f, \"latency_p95_us\": %.3f, "
        "\"latency_p99_us\": %.3f",
        i == 0 ? "" : ",", r.label.c_str(), r.rows, r.dims, r.queries,
        r.fidelity.c_str(), r.qps, r.latency_p50_us, r.latency_p95_us,
        r.latency_p99_us);
    out += buffer;
    append_optional(out, "offered_qps", r.offered_qps);
    append_optional(out, "achieved_qps", r.achieved_qps);
    append_optional(out, "shed_rate", r.shed_rate);
    append_optional(out, "write_p50_us", r.write_p50_us);
    append_optional(out, "write_p95_us", r.write_p95_us);
    out += "}";
  }
  out += "\n  ]\n}\n";
  try {
    util::atomic_write_file(
        path, reinterpret_cast<const std::uint8_t*>(out.data()), out.size());
  } catch (const std::system_error& error) {
    std::fprintf(stderr, "error: write to %s failed: %s\n", path.c_str(),
                 error.what());
    return false;
  }
  return true;
}

}  // namespace ferex::benchjson
