// Fig. 6 regeneration: search energy per bit (a) and search delay (b) as
// functions of the number of rows and the vector dimensionality.
//
// Expected shape (paper Sec. IV-A):
//   (a) energy/bit falls as rows grow — LTA & driver overheads amortize;
//   (b) delay rises gradually with array size; ~60 % of it is ScL
//       settling limited by the op-amp slew rate.
#include <cstdio>
#include <iostream>

#include "circuit/energy_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace ferex;

  const circuit::EnergyDelayModel model;
  const std::size_t row_sweep[] = {16, 32, 64, 128, 256};
  const std::size_t dim_sweep[] = {64, 128, 256, 512, 1024};

  std::puts("=== Fig. 6(a): search energy per bit [fJ/bit] ===");
  {
    util::TextTable t({"rows \\ dims", "64", "128", "256", "512", "1024"});
    for (std::size_t rows : row_sweep) {
      std::vector<std::string> row{std::to_string(rows)};
      for (std::size_t dims : dim_sweep) {
        circuit::SearchOpSpec spec;
        spec.rows = rows;
        spec.dims = dims;
        const double e_bit =
            model.search_op(spec).energy_per_bit_j(spec) * 1e15;
        row.push_back(util::TextTable::fmt(e_bit, 3));
      }
      t.add_row(std::move(row));
    }
    std::cout << t;
    std::puts("shape check: energy/bit decreases down each column (more rows"
              " amortize LTA/driver overheads)");
  }

  std::puts("\n=== Fig. 6(b): search delay [ns] ===");
  {
    util::TextTable t({"rows \\ dims", "64", "128", "256", "512", "1024"});
    for (std::size_t rows : row_sweep) {
      std::vector<std::string> row{std::to_string(rows)};
      for (std::size_t dims : dim_sweep) {
        circuit::SearchOpSpec spec;
        spec.rows = rows;
        spec.dims = dims;
        row.push_back(
            util::TextTable::fmt(model.search_op(spec).total_delay_s() * 1e9,
                                 3));
      }
      t.add_row(std::move(row));
    }
    std::cout << t;
  }

  std::puts("\n=== delay breakdown (paper: ~60% from ScL settling) ===");
  {
    util::TextTable t({"rows", "dims", "ScL settle [ns]", "LTA [ns]",
                       "ScL fraction"});
    for (std::size_t rows : {16u, 64u, 256u}) {
      for (std::size_t dims : {128u, 512u}) {
        circuit::SearchOpSpec spec;
        spec.rows = rows;
        spec.dims = dims;
        const auto cost = model.search_op(spec);
        t.add_row({std::to_string(rows), std::to_string(dims),
                   util::TextTable::fmt(cost.scl_settle_s * 1e9, 3),
                   util::TextTable::fmt(cost.lta_delay_s * 1e9, 3),
                   util::TextTable::fmt(
                       cost.scl_settle_s / cost.total_delay_s(), 2)});
      }
    }
    std::cout << t;
  }

  std::puts("\n=== energy breakdown at 64 rows x 512 dims ===");
  {
    circuit::SearchOpSpec spec;
    spec.rows = 64;
    spec.dims = 512;
    const auto cost = model.search_op(spec);
    util::TextTable t({"component", "energy [pJ]", "share"});
    const double total = cost.total_energy_j();
    const auto row = [&](const char* name, double e) {
      t.add_row({name, util::TextTable::fmt(e * 1e12, 3),
                 util::TextTable::fmt(100.0 * e / total, 1) + "%"});
    };
    row("array conduction", cost.array_energy_j);
    row("DL/SL drivers", cost.driver_energy_j);
    row("row op-amps", cost.opamp_energy_j);
    row("LTA", cost.lta_energy_j);
    row("periphery (decoder/DAC/supply)", cost.periphery_energy_j);
    t.add_row({"total", util::TextTable::fmt(total * 1e12, 3), "100%"});
    std::cout << t;
  }
  return 0;
}
