// Fig. 7 regeneration: Monte-Carlo robustness under device-to-device
// variation (sigma_Vth = 54 mV, sigma_R = 8 %, Sec. IV-A).
//
// Part 1 — array-level worst case, as in the paper: the query's nearest
// stored vector sits at Hamming distance d and every distractor at d+1
// (a single unit-current margin). 100 MC runs per case; the paper reports
// ~90 % accuracy for the hardest MNIST KNN case (d = 5 vs 6).
//
// Part 2 — application level: KNN classification accuracy through the
// noisy circuit vs the ideal software implementation (the paper reports a
// 0.6 % degradation).
#include <cstdio>
#include <iostream>

#include "core/ferex.hpp"
#include "data/datasets.hpp"
#include "ml/knn.hpp"
#include "ml/quantize.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ferex;

/// Flips exactly `bits` distinct bit positions of a 2-bit-element vector,
/// producing a vector at exact Hamming distance `bits` from the input.
std::vector<int> at_hamming_distance(const std::vector<int>& base, int bits,
                                     util::Rng& rng) {
  auto vec = base;
  const std::size_t slots = base.size() * 2;
  std::vector<std::size_t> chosen;
  while (chosen.size() < static_cast<std::size_t>(bits)) {
    const auto slot = rng.uniform_below(slots);
    bool duplicate = false;
    for (auto s : chosen) duplicate |= (s == slot);
    if (!duplicate) chosen.push_back(slot);
  }
  for (auto slot : chosen) vec[slot / 2] ^= (1 << (slot % 2));
  return vec;
}

double worst_case_accuracy(int d_near, int runs, double sigma_vth) {
  constexpr std::size_t kDims = 64;
  constexpr std::size_t kDistractors = 15;
  int correct = 0;
  for (int run = 0; run < runs; ++run) {
    core::FerexOptions opt;
    opt.circuit.variation.sigma_vth_v = sigma_vth;
    opt.seed = 9000 + static_cast<std::uint64_t>(run);
    core::FerexEngine engine(opt);
    engine.configure(csp::DistanceMetric::kHamming, 2);

    util::Rng rng(500 + static_cast<std::uint64_t>(run));
    std::vector<int> query(kDims);
    for (auto& v : query) v = static_cast<int>(rng.uniform_below(4));

    std::vector<std::vector<int>> db;
    db.push_back(at_hamming_distance(query, d_near, rng));
    for (std::size_t i = 0; i < kDistractors; ++i) {
      db.push_back(at_hamming_distance(query, d_near + 1, rng));
    }
    engine.store(db);
    if (engine.search(query).nearest == 0) ++correct;
  }
  return static_cast<double>(correct) / runs;
}

}  // namespace

int main() {
  constexpr int kRuns = 100;

  std::puts("=== Fig. 7: Monte-Carlo accuracy under D2D variation ===");
  std::printf("variation: sigma_Vth = 54 mV, sigma_R = 8%%; %d runs/case\n\n",
              kRuns);

  util::TextTable t({"nearest @ HD", "distractors @ HD", "accuracy",
                     "95% CI", "note"});
  for (int d = 1; d <= 6; ++d) {
    const double acc = worst_case_accuracy(d, kRuns, 54e-3);
    t.add_row({std::to_string(d), std::to_string(d + 1),
               util::TextTable::fmt(acc, 2),
               "+/- " + util::TextTable::fmt(
                            util::wilson_half_width(acc, kRuns), 2),
               d == 5 ? "paper's worst case (reports ~0.90)" : ""});
  }
  std::cout << t;

  std::puts("\n=== variation sweep at the worst case (HD 5 vs 6) ===");
  util::TextTable sweep({"sigma_Vth [mV]", "accuracy"});
  for (double mv : {0.0, 27.0, 54.0, 81.0, 108.0}) {
    sweep.add_row({util::TextTable::fmt(mv, 0),
                   util::TextTable::fmt(
                       worst_case_accuracy(5, kRuns, mv * 1e-3), 2)});
  }
  std::cout << sweep;

  std::puts("\n=== KNN classification: noisy circuit vs software ===");
  {
    auto spec = data::mnist_like();
    spec.train_size = 200;  // compact MC-friendly subset
    spec.test_size = 200;
    spec.class_separation = 0.45;  // hard enough that errors are visible
    const auto ds = data::make_synthetic(spec, 31);
    const auto q = ml::Quantizer::fit(ds.train_x, 2);
    const auto train_q = q.quantize(ds.train_x);
    const auto test_q = q.quantize(ds.test_x);

    const ml::KnnClassifier sw(train_q, ds.train_y);
    const double sw_acc =
        sw.evaluate(csp::DistanceMetric::kHamming, test_q, ds.test_y, 1);

    core::FerexOptions opt;  // variation + LTA noise at paper defaults
    core::FerexEngine engine(opt);
    engine.configure(csp::DistanceMetric::kHamming, 2);
    std::vector<std::vector<int>> db;
    for (std::size_t r = 0; r < train_q.rows(); ++r) {
      const auto row = train_q.row(r);
      db.emplace_back(row.begin(), row.end());
    }
    engine.store(db);

    std::size_t hits = 0;
    for (std::size_t s = 0; s < test_q.rows(); ++s) {
      const auto row = test_q.row(s);
      const std::vector<int> query(row.begin(), row.end());
      const auto winner = engine.search(query).nearest;
      if (ds.train_y[winner] == ds.test_y[s]) ++hits;
    }
    const double hw_acc =
        static_cast<double>(hits) / static_cast<double>(test_q.rows());
    util::TextTable knn({"implementation", "1-NN accuracy"});
    knn.add_row({"software (ideal)", util::TextTable::fmt(sw_acc, 3)});
    knn.add_row({"FeReX circuit (variation on)",
                 util::TextTable::fmt(hw_acc, 3)});
    knn.add_row({"degradation",
                 util::TextTable::fmt(sw_acc - hw_acc, 3) +
                     "  (paper reports 0.006)"});
    std::cout << knn;
  }
  return 0;
}
