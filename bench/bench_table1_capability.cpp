// Table I regeneration: AM design-space comparison.
//
// The prior-work rows are literature facts reproduced verbatim; the FeReX
// row is *demonstrated* by configuring the engine for every claimed
// distance function and verifying the realized distance matrix — i.e. we
// regenerate the table's claim, not just restate it.
#include <cstdio>
#include <iostream>

#include "core/ferex.hpp"
#include "util/table.hpp"

int main() {
  using namespace ferex;
  using csp::DistanceMetric;

  std::puts("=== Table I: existing AMs with different distance functions ===");
  util::TextTable table({"Design", "NVM", "Cell structure", "MLC",
                         "Distance function"});
  table.add_row({"Nat. Ele. [23]", "PCM", "1PCM", "No", "Hamming"});
  table.add_row({"IEDM'20 [24]", "FeFET", "2FeFET-1T", "Yes", "Best-match"});
  table.add_row({"TED'21 [14]", "RRAM", "2RRAM", "Yes", "Manhattan"});
  table.add_row({"TC'21 [18]", "FeFET", "2FeFET", "Yes", "Sigmoid"});
  table.add_row({"SR'22 [15]", "FeFET", "2FeFET", "Yes", "Euclidean"});
  table.add_row({"FeReX (this work)", "FeFET", "1FeFET-1R", "Yes",
                 "HD / L1 / L2 (reconfigurable)"});
  std::cout << table;

  std::puts("\n--- demonstrating the FeReX row: one engine, every metric ---");
  core::FerexOptions opt;
  opt.circuit.variation.enabled = false;
  opt.lta.offset_sigma_rel = 0.0;
  opt.encoder.max_fefets_per_cell = 6;
  opt.encoder.max_vds_multiple = 5;
  core::FerexEngine engine(opt);
  engine.store({{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 1, 1, 1}});

  util::TextTable demo({"metric", "bits", "cell", "levels", "DM realized",
                        "NN of (2,2,2,2)"});
  for (auto metric : {DistanceMetric::kHamming, DistanceMetric::kManhattan,
                      DistanceMetric::kEuclideanSquared}) {
    engine.configure(metric, 2);
    const auto& enc = engine.encoding();
    const std::vector<int> query{2, 2, 2, 2};
    const auto result = engine.search(query);
    demo.add_row({csp::to_string(metric), "2",
                  std::to_string(enc.fefets_per_cell()) + "FeFET" +
                      std::to_string(enc.fefets_per_cell()) + "R",
                  std::to_string(enc.ladder_levels()),
                  enc.realizes(engine.distance_matrix()) ? "yes" : "NO",
                  "row " + std::to_string(result.nearest) + " (d=" +
                      std::to_string(result.nominal_distance) + ")"});
  }
  std::cout << demo;
  std::puts("\nAll three metrics served by the same array after in-place "
            "reconfiguration\n(first reconfigurable-distance NVM AM; "
            "paper Sec. I).");
  return 0;
}
