// Micro-benchmarks (google-benchmark): CSP encoder cost per metric and
// bit width, AC-3 vs pure-backtracking ablation, crossbar search
// throughput vs geometry, LTA decision scaling, HDC encode throughput.
#include <benchmark/benchmark.h>

#include "circuit/crossbar.hpp"
#include "circuit/lta.hpp"
#include "csp/feasibility.hpp"
#include "encode/encoder.hpp"
#include "ml/hdc.hpp"
#include "util/rng.hpp"

namespace {

using namespace ferex;

// ------------------------------------------------------ CSP encoder ---

void BM_EncoderHamming(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const auto dm = csp::DistanceMatrix::make(csp::DistanceMetric::kHamming,
                                            bits);
  encode::EncoderOptions opt;
  opt.max_fefets_per_cell = 6;
  for (auto _ : state) {
    auto enc = encode::encode_distance_matrix(dm, opt);
    benchmark::DoNotOptimize(enc);
  }
}
BENCHMARK(BM_EncoderHamming)->Arg(1)->Arg(2)->Arg(3);

void BM_EncoderManhattan(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const auto dm = csp::DistanceMatrix::make(csp::DistanceMetric::kManhattan,
                                            bits);
  encode::EncoderOptions opt;
  opt.max_fefets_per_cell = 6;
  opt.max_vds_multiple = 3;
  for (auto _ : state) {
    auto enc = encode::encode_distance_matrix(dm, opt);
    benchmark::DoNotOptimize(enc);
  }
}
BENCHMARK(BM_EncoderManhattan)->Arg(1)->Arg(2);

// Ablation: constraint-3 filtering via AC-3 vs pure backtracking.
void BM_FeasibilityAc3(benchmark::State& state) {
  const auto dm = csp::DistanceMatrix::make(csp::DistanceMetric::kHamming, 2);
  const std::vector<int> cr{1, 2};
  csp::FeasibilityOptions opt;
  opt.use_ac3 = state.range(0) != 0;
  for (auto _ : state) {
    auto r = csp::detect_feasibility(dm, 3, cr, opt);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FeasibilityAc3)->Arg(1)->Arg(0);

// -------------------------------------------------- crossbar search ---

void BM_CrossbarSearch(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto dims = static_cast<std::size_t>(state.range(1));
  const auto dm = csp::DistanceMatrix::make(csp::DistanceMetric::kHamming, 2);
  const auto enc = encode::encode_distance_matrix(dm);
  const device::VoltageLadder ladder(enc->ladder_levels());
  circuit::CrossbarConfig config;
  util::Rng rng(1);
  circuit::CrossbarArray array(rows, dims, *enc, ladder, config, rng);
  util::Rng data_rng(2);
  std::vector<int> row(dims);
  for (std::size_t r = 0; r < rows; ++r) {
    for (auto& v : row) v = static_cast<int>(data_rng.uniform_below(4));
    array.program_row(r, row);
  }
  std::vector<int> query(dims);
  for (auto& v : query) v = static_cast<int>(data_rng.uniform_below(4));
  for (auto _ : state) {
    auto currents = array.search(query);
    benchmark::DoNotOptimize(currents);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * dims));
}
BENCHMARK(BM_CrossbarSearch)
    ->Args({16, 128})
    ->Args({64, 128})
    ->Args({64, 1024})
    ->Args({256, 1024});

// -------------------------------------------------------------- LTA ---

void BM_LtaDecide(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  std::vector<double> currents(rows);
  for (auto& c : currents) c = rng.uniform(1e-7, 1e-5);
  const circuit::LtaCircuit lta;
  for (auto _ : state) {
    auto d = lta.decide(currents, 1e-7, &rng);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_LtaDecide)->Arg(16)->Arg(256)->Arg(4096);

// -------------------------------------------------------------- HDC ---

void BM_HdcEncode(benchmark::State& state) {
  const auto features = static_cast<std::size_t>(state.range(0));
  ml::HdcOptions opt;
  opt.hypervector_dim = static_cast<std::size_t>(state.range(1));
  ml::HdcModel model(features, 4, opt);
  util::Rng rng(4);
  std::vector<double> x(features);
  for (auto& v : x) v = rng.gaussian();
  for (auto _ : state) {
    auto h = model.encode(x);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(features) *
                          state.range(1));
}
BENCHMARK(BM_HdcEncode)->Args({617, 1024})->Args({784, 2048});

}  // namespace

BENCHMARK_MAIN();
