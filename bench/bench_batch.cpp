// Batched vs. single-query search throughput.
//
// Measures FerexEngine::search in a sequential loop against
// FerexEngine::search_batch (worker pool sized by hardware_concurrency),
// and the same pair on a BankedAm, at circuit fidelity — the compute-
// heavy path where every query evaluates the full device model. Prints
// queries/second and the batch speedup. On a multicore host the batched
// path should approach a linear speedup, since queries share no mutable
// state and the per-query noise streams are ordinal-addressed.
//
// Usage: bench_batch [rows] [dims] [queries]
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "arch/banked_am.hpp"
#include "core/ferex.hpp"
#include "util/rng.hpp"

namespace {

using namespace ferex;
using Clock = std::chrono::steady_clock;

std::vector<std::vector<int>> random_vectors(std::size_t count,
                                             std::size_t dims, int levels,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<int>> out(count, std::vector<int>(dims));
  for (auto& row : out) {
    for (auto& v : row) v = static_cast<int>(rng.uniform_below(levels));
  }
  return out;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Throughput {
  double sequential_qps = 0.0;
  double batched_qps = 0.0;
  double speedup() const { return batched_qps / sequential_qps; }
};

template <typename Sequential, typename Batched>
Throughput measure(std::size_t n_queries, Sequential&& sequential,
                   Batched&& batched) {
  Throughput t;
  auto start = Clock::now();
  sequential();
  t.sequential_qps = static_cast<double>(n_queries) / seconds_since(start);
  start = Clock::now();
  batched();
  t.batched_qps = static_cast<double>(n_queries) / seconds_since(start);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rows = 128, dims = 64, n_queries = 256;
  std::size_t* const params[] = {&rows, &dims, &n_queries};
  for (int i = 1; i < argc && i <= 3; ++i) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(argv[i], &end, 10);
    if (argv[i][0] == '-' || end == argv[i] || *end != '\0' || errno != 0 ||
        v == 0 || v > 1u << 20) {
      std::fprintf(stderr,
                   "usage: %s [rows] [dims] [queries]  "
                   "(positive integers up to 2^20)\n",
                   argv[0]);
      return 2;
    }
    *params[i - 1] = static_cast<std::size_t>(v);
  }

  const auto db = random_vectors(rows, dims, 4, 1);
  const auto queries = random_vectors(n_queries, dims, 4, 2);

  std::printf("bench_batch: %zu rows x %zu dims, %zu queries, "
              "hardware_concurrency=%u\n\n",
              rows, dims, n_queries, std::thread::hardware_concurrency());

  {
    core::FerexEngine sequential;
    sequential.configure(csp::DistanceMetric::kHamming, 2);
    sequential.store(db);
    core::FerexEngine batch_engine;
    batch_engine.configure(csp::DistanceMetric::kHamming, 2);
    batch_engine.store(db);
    // Warm both paths once so programming/allocation noise stays out of
    // the measured window.
    (void)sequential.search(queries.front());
    (void)batch_engine.search(queries.front());

    const auto t = measure(
        n_queries,
        [&] {
          for (const auto& q : queries) (void)sequential.search(q);
        },
        [&] { (void)batch_engine.search_batch(queries); });
    std::printf("FerexEngine   sequential %10.0f q/s   batched %10.0f q/s   "
                "speedup %.2fx\n",
                t.sequential_qps, t.batched_qps, t.speedup());
  }

  {
    arch::BankedOptions opt;
    opt.bank_rows = rows / 4 ? rows / 4 : 1;
    arch::BankedAm sequential(opt);
    sequential.configure(csp::DistanceMetric::kHamming, 2);
    sequential.store(db);
    arch::BankedAm batch_am(opt);
    batch_am.configure(csp::DistanceMetric::kHamming, 2);
    batch_am.store(db);
    (void)sequential.search(queries.front());
    (void)batch_am.search(queries.front());

    const auto t = measure(
        n_queries,
        [&] {
          for (const auto& q : queries) (void)sequential.search(q);
        },
        [&] { (void)batch_am.search_batch(queries); });
    std::printf("BankedAm      sequential %10.0f q/s   batched %10.0f q/s   "
                "speedup %.2fx\n",
                t.sequential_qps, t.batched_qps, t.speedup());
  }
  return 0;
}
