// Batched vs. single-query search throughput through the AmIndex
// serving API.
//
// Measures AmIndex::search in a sequential loop against
// AmIndex::search_batch (persistent worker pool sized by
// hardware_concurrency) on both backends — EngineIndex (one macro,
// labels "engine_*") and BankedIndex ("banked_*") — at circuit
// fidelity, the compute-heavy path where every query evaluates the full
// device model. Prints queries/second and the batch speedup. On a
// multicore host the batched path should approach a linear speedup,
// since queries share no mutable state and the per-query noise streams
// are ordinal-addressed. Labels and the --json schema are unchanged
// from the pre-AmIndex version so BENCH_batch.json stays diffable.
//
// Usage: bench_batch [--json <path>] [rows] [dims] [queries]
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "data/datasets.hpp"
#include "serve/banked_index.hpp"
#include "serve/engine_index.hpp"

#include "bench_json.hpp"

namespace {

using namespace ferex;
using Clock = std::chrono::steady_clock;


double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Throughput {
  double sequential_qps = 0.0;
  double batched_qps = 0.0;
  double speedup() const { return batched_qps / sequential_qps; }
};

/// Measures one backend pair through the serving API: `sequential`
/// serves one request per call (per-query latency samples), `batch`
/// serves the whole request vector in one search_batch call (its
/// per-query latency is amortized — see bench_json.hpp).
Throughput measure(const std::string& label, std::size_t rows,
                   std::size_t dims, serve::AmIndex& sequential,
                   serve::AmIndex& batch,
                   const std::vector<std::vector<int>>& queries,
                   std::vector<benchjson::Record>& records) {
  std::vector<serve::SearchRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
  }

  Throughput t;
  benchjson::Record seq;
  seq.label = label + "_sequential";
  seq.rows = rows;
  seq.dims = dims;
  seq.fidelity = "circuit";
  benchjson::fill_timing(
      seq,
      benchjson::time_calls(requests.size(),
                            [&](std::size_t i) {
                              (void)sequential.search(requests[i]);
                            }),
      1);
  t.sequential_qps = seq.qps;
  records.push_back(seq);

  benchjson::Record bat = seq;
  bat.label = label + "_batched";
  const auto start = Clock::now();
  (void)batch.search_batch(requests);
  benchjson::fill_timing(bat, std::vector<double>{seconds_since(start)},
                         requests.size());
  t.batched_qps = bat.qps;
  records.push_back(bat);
  return t;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json <path>] [rows] [dims] [queries]  "
               "(positive integers up to 2^20)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rows = 128, dims = 64, n_queries = 256;
  std::string json_path;
  std::size_t* const params[] = {&rows, &dims, &n_queries};
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(argv[i], &end, 10);
    if (positional >= 3 || argv[i][0] == '-' || end == argv[i] ||
        *end != '\0' || errno != 0 || v == 0 || v > 1u << 20) {
      return usage(argv[0]);
    }
    *params[positional++] = static_cast<std::size_t>(v);
  }

  const auto db = data::random_int_vectors(rows, dims, 4, 1);
  const auto queries = data::random_int_vectors(n_queries, dims, 4, 2);
  serve::SearchRequest warm;
  warm.query = queries.front();

  std::printf("bench_batch: %zu rows x %zu dims, %zu queries, "
              "hardware_concurrency=%u\n\n",
              rows, dims, n_queries, std::thread::hardware_concurrency());

  std::vector<benchjson::Record> records;
  {
    serve::EngineIndex sequential;
    sequential.configure(csp::DistanceMetric::kHamming, 2);
    sequential.store(db);
    serve::EngineIndex batch;
    batch.configure(csp::DistanceMetric::kHamming, 2);
    batch.store(db);
    // Warm both paths once so programming/allocation noise stays out of
    // the measured window.
    (void)sequential.search(warm);
    (void)batch.search(warm);

    const auto t =
        measure("engine", rows, dims, sequential, batch, queries, records);
    std::printf("EngineIndex   sequential %10.0f q/s   batched %10.0f q/s   "
                "speedup %.2fx\n",
                t.sequential_qps, t.batched_qps, t.speedup());
  }

  {
    arch::BankedOptions opt;
    opt.bank_rows = rows / 4 ? rows / 4 : 1;
    serve::BankedIndex sequential(opt);
    sequential.configure(csp::DistanceMetric::kHamming, 2);
    sequential.store(db);
    serve::BankedIndex batch(opt);
    batch.configure(csp::DistanceMetric::kHamming, 2);
    batch.store(db);
    (void)sequential.search(warm);
    (void)batch.search(warm);

    const auto t =
        measure("banked", rows, dims, sequential, batch, queries, records);
    std::printf("BankedIndex   sequential %10.0f q/s   batched %10.0f q/s   "
                "speedup %.2fx\n",
                t.sequential_qps, t.batched_qps, t.speedup());
  }
  if (!json_path.empty() &&
      !benchjson::write_json(json_path, "bench_batch", records)) {
    return 1;
  }
  return 0;
}
