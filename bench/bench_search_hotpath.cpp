// Single-query search latency and throughput across the hot-path
// kernels — the regression guard for the flattened search path.
//
// For each geometry it measures, at circuit fidelity:
//   * reference   — the retained per-device scalar kernel
//                   (CrossbarArray::search_reference), biases re-derived
//                   per query;
//   * optimized   — the cached-table flat kernel (CrossbarArray::search);
//   * intra-par   — the flat kernel with rows fanned across the worker
//                   pool (equals optimized on 1-core hosts);
//   * engine      — FerexEngine::search end to end (kernel + LTA + noise);
// and at nominal fidelity the reference vs. LUT-gather distance kernels.
// The headline number is the optimized/reference single-query speedup on
// the default geometry.
//
// Usage: bench_search_hotpath [--json <path>] [--queries <n>]
//                             [--geometry <rows>x<dims>]...
// Default geometries: 64x32, 128x64 (default/headline), 256x128.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "circuit/crossbar.hpp"
#include "core/ferex.hpp"
#include "data/datasets.hpp"

#include "bench_json.hpp"

namespace {

using namespace ferex;

struct Geometry {
  std::size_t rows;
  std::size_t dims;
};


/// Times fn once per query; returns per-call seconds.
template <typename Fn>
std::vector<double> time_per_query(const std::vector<std::vector<int>>& queries,
                                   Fn&& fn) {
  // Warm caches/allocator outside the measured window.
  fn(queries.front());
  return benchjson::time_calls(queries.size(),
                               [&](std::size_t i) { fn(queries[i]); });
}

benchjson::Record measure(const std::string& label, const Geometry& g,
                          const std::string& fidelity,
                          const std::vector<std::vector<int>>& queries,
                          const std::function<void(const std::vector<int>&)>&
                              fn) {
  benchjson::Record record;
  record.label = label;
  record.rows = g.rows;
  record.dims = g.dims;
  record.fidelity = fidelity;
  benchjson::fill_timing(record, time_per_query(queries, fn), 1);
  return record;
}

void print_record(const benchjson::Record& r) {
  std::printf("  %-22s %-8s %10.1f q/s   p50 %9.1f us   p95 %9.1f us\n",
              r.label.c_str(), r.fidelity.c_str(), r.qps, r.latency_p50_us,
              r.latency_p95_us);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json <path>] [--queries <n>] "
               "[--geometry <rows>x<dims>]...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::size_t n_queries = 48;
  std::vector<Geometry> geometries;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--queries" && i + 1 < argc) {
      const char* s = argv[++i];
      char* end = nullptr;
      errno = 0;
      const unsigned long long v = std::strtoull(s, &end, 10);
      if (s[0] == '-' || end == s || *end != '\0' || errno != 0 || v == 0 ||
          v > 1u << 20) {
        return usage(argv[0]);
      }
      n_queries = static_cast<std::size_t>(v);
    } else if (arg == "--geometry" && i + 1 < argc) {
      Geometry g{};
      int consumed = 0;
      if (std::sscanf(argv[++i], "%zux%zu%n", &g.rows, &g.dims,
                      &consumed) != 2 ||
          argv[i][consumed] != '\0' || g.rows == 0 || g.dims == 0 ||
          g.rows > (1 << 20) || g.dims > (1 << 20)) {
        return usage(argv[0]);
      }
      geometries.push_back(g);
    } else {
      return usage(argv[0]);
    }
  }
  if (geometries.empty()) {
    geometries = {{64, 32}, {128, 64}, {256, 128}};
  }

  std::printf("bench_search_hotpath: %zu queries per mode, "
              "hardware_concurrency=%u\n",
              n_queries, std::thread::hardware_concurrency());

  std::vector<benchjson::Record> records;
  for (const auto& g : geometries) {
    const auto db = data::random_int_vectors(g.rows, g.dims, 4, 1);
    const auto queries = data::random_int_vectors(n_queries, g.dims, 4, 2);

    core::FerexEngine engine;
    engine.configure(csp::DistanceMetric::kHamming, 2);
    engine.store(db);
    const auto* array = engine.array();

    std::printf("\ngeometry %zux%zu (%zu devices)\n", g.rows, g.dims,
                array->device_count());

    const auto circuit_reference =
        measure("circuit_reference", g, "circuit", queries,
                [&](const std::vector<int>& q) {
                  (void)array->search_reference(q);
                });
    const auto circuit_optimized =
        measure("circuit_optimized", g, "circuit", queries,
                [&](const std::vector<int>& q) { (void)array->search(q); });
    const auto circuit_parallel = measure(
        "circuit_intra_parallel", g, "circuit", queries,
        [&](const std::vector<int>& q) { (void)array->search(q, true); });
    const auto circuit_engine =
        measure("circuit_engine", g, "circuit", queries,
                [&](const std::vector<int>& q) { (void)engine.search(q); });
    const auto nominal_reference =
        measure("nominal_reference", g, "nominal", queries,
                [&](const std::vector<int>& q) {
                  (void)array->nominal_distances_reference(q);
                });
    const auto nominal_optimized =
        measure("nominal_optimized", g, "nominal", queries,
                [&](const std::vector<int>& q) {
                  (void)array->nominal_distances(q);
                });

    for (const auto* r :
         {&circuit_reference, &circuit_optimized, &circuit_parallel,
          &circuit_engine, &nominal_reference, &nominal_optimized}) {
      print_record(*r);
      records.push_back(*r);
    }
    std::printf("  single-query speedup: circuit %.2fx   nominal %.2fx\n",
                circuit_optimized.qps / circuit_reference.qps,
                nominal_optimized.qps / nominal_reference.qps);
  }

  if (!json_path.empty() &&
      !benchjson::write_json(json_path, "bench_search_hotpath", records)) {
    return 1;
  }
  return 0;
}
