// Serve-path throughput and latency through the AsyncAmIndex front
// door, against the synchronous AmIndex baseline.
//
// Three measurement modes per backend (EngineIndex "engine_*",
// BankedIndex "banked_*"), circuit fidelity:
//
//   *_serve_sync       search() in a sequential loop — the synchronous
//                      baseline; per-call latency samples.
//   *_serve_async      submit() every request up front, then drain the
//                      futures — the coalescing path; percentiles are
//                      the wrapper's end-to-end reservoir (submit ->
//                      future complete), q/s is wall-clock over the run.
//   *_serve_roundtrip  submit() + get() one request at a time — queue +
//                      dispatch + wake overhead on an idle server; the
//                      p50 gap to *_serve_sync is the async tax per
//                      request.
//
// A fourth record per backend, *_serve_queue_wait, re-exports the async
// run's queue-wait reservoir (submit -> dispatch) so the regression
// gate also watches time spent waiting rather than working.
//
//   *_serve_mixed      the mutable-write-path mode: 5% of submissions
//                      are in-place overwrites (submit_update) riding
//                      the same queue as the searches, which serialize
//                      around them in submission order. q/s counts all
//                      operations; percentiles are the search class's
//                      end-to-end reservoir (writes keep their own
//                      class reservoir in ServeStats). The gap to
//                      *_serve_async is the price of write barriers.
//
//   engine_open_loop   the open-loop operating point: Poisson arrivals
//                      at a fixed offered rate with 20 ms deadlines and
//                      5% writes, at a fixed 128x64 geometry (see
//                      measure_open_loop_point). Emits schema-v3
//                      offered_qps / achieved_qps / shed_rate fields so
//                      bench_compare gates shed growth. The printed
//                      open-loop section also sweeps offered load,
//                      replays a 5x burst, and A/Bs FIFO vs
//                      search-first admission — printed only, since
//                      those points are relative to this host's
//                      measured capacity.
//
// Sharded fleet modes (4 engine shards, scatter-gather) ride the same
// run:
//
//   sharded_serve_sync       fleet search() in a sequential loop —
//                            scatter to every live shard, k-way merge.
//   sharded_serve_roundtrip  AsyncShardedIndex submit() + get() one
//                            request at a time — per-shard queues, the
//                            gather on the calling thread.
//   sharded_serve_large      the million-row trajectory point: a fixed
//                            65536-row x 16-dim 4-shard fleet served
//                            sync, emitted at its own geometry so the
//                            regression gate tracks it regardless of
//                            the positional row count.
//
// The write-interference experiment demonstrates shard-local write
// isolation: each sample submits a burst of updates and then times one
// roundtrip search behind it. On a single index the search serializes
// behind the whole burst (its queue wait IS the burst); on the fleet
// the burst lands on shard 0's queue while the search goes to shard 1,
// whose queue — and queue-wait reservoir — never holds a write. The
// four-way comparison (single/fleet x idle/under-writes) is printed,
// not emitted into the JSON: its per-run numbers are scheduler-noise
// scale (a few us idle), which would make the 25% regression gate cry
// wolf, while the printed wall + queue-wait p95 contrast is the point.
//
// With --durability the binary instead measures the persistence layer
// (snapshot save/load throughput, WAL append cost with and without
// fsync, recovery time vs log length) — see run_durability below; the
// records land in BENCH_durable.json under the same schema-v2 gate.
//
// With --open-loop <qps> the binary runs ONLY one open-loop pass at the
// positional geometry and the given offered rate (generous 100 ms
// deadline); --assert-no-shed then exits non-zero if anything was shed
// — the CI smoke that proves admission control stays out of the way at
// low load.
//
// Usage: bench_serve [--durability] [--json <path>]
//                    [--open-loop <qps>] [--assert-no-shed]
//                    [rows] [dims] [queries]
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/datasets.hpp"
#include "serve/async_index.hpp"
#include "serve/async_sharded.hpp"
#include "serve/banked_index.hpp"
#include "serve/durable.hpp"
#include "serve/engine_index.hpp"
#include "serve/sharded_index.hpp"
#include "serve/snapshot.hpp"
#include "serve/wal.hpp"
#include "util/durable_file.hpp"
#include "util/rng.hpp"

#include "bench_json.hpp"

namespace {

using namespace ferex;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

benchjson::Record base_record(const std::string& label, std::size_t rows,
                              std::size_t dims) {
  benchjson::Record record;
  record.label = label;
  record.rows = rows;
  record.dims = dims;
  record.fidelity = "circuit";
  return record;
}

benchjson::Record from_reservoir(
    const std::string& label, std::size_t rows, std::size_t dims,
    const core::LatencyReservoir::Summary& summary, double qps) {
  auto record = base_record(label, rows, dims);
  record.queries = summary.count;
  record.qps = qps;
  record.latency_p50_us = summary.p50_us;
  record.latency_p95_us = summary.p95_us;
  record.latency_p99_us = summary.p99_us;
  return record;
}

struct ServeNumbers {
  double sync_qps = 0.0;
  double async_qps = 0.0;
  double mixed_qps = 0.0;
  double sync_p50_us = 0.0;
  double roundtrip_p50_us = 0.0;
  double mean_batch = 0.0;
  std::uint64_t writes = 0;
};

/// Measures one backend through all serve modes. `sync_index` and
/// `async_backend` are twin indexes (same construction) so the two
/// paths serve identical work from identical state.
ServeNumbers measure(const std::string& prefix, std::size_t rows,
                     std::size_t dims, serve::AmIndex& sync_index,
                     serve::AmIndex& async_backend,
                     const std::vector<std::vector<int>>& queries,
                     std::vector<benchjson::Record>& records) {
  std::vector<serve::SearchRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
  }
  ServeNumbers numbers;

  // Synchronous baseline.
  auto sync_record = base_record(prefix + "_serve_sync", rows, dims);
  benchjson::fill_timing(
      sync_record,
      benchjson::time_calls(
          requests.size(),
          [&](std::size_t i) { (void)sync_index.search(requests[i]); }),
      1);
  numbers.sync_qps = sync_record.qps;
  numbers.sync_p50_us = sync_record.latency_p50_us;
  records.push_back(sync_record);

  // Coalescing async path: enqueue everything, then drain. A fresh
  // wrapper per mode keeps its reservoirs scoped to the measured run.
  {
    serve::AsyncOptions options;
    options.queue_depth = requests.size();
    options.max_batch = 32;
    options.max_wait_us = 100;
    serve::AsyncAmIndex async_index(async_backend, options);
    std::vector<std::future<serve::SearchResponse>> futures;
    futures.reserve(requests.size());
    const auto start = Clock::now();
    for (const auto& request : requests) {
      futures.push_back(async_index.submit(request));
    }
    for (auto& future : futures) (void)future.get();
    const double wall = seconds_since(start);
    const auto stats = async_index.stats();
    numbers.async_qps =
        wall > 0.0 ? static_cast<double>(requests.size()) / wall : 0.0;
    numbers.mean_batch =
        stats.batches > 0 ? static_cast<double>(stats.search.served) /
                                static_cast<double>(stats.batches)
                          : 0.0;
    records.push_back(from_reservoir(prefix + "_serve_async", rows, dims,
                                     stats.search.end_to_end_us,
                                     numbers.async_qps));
    records.push_back(from_reservoir(prefix + "_serve_queue_wait", rows,
                                     dims, stats.search.queue_wait_us,
                                     numbers.async_qps));
  }

  // Idle round trip: queue-in, dispatch, future-wake per request. No
  // coalescing linger — with one request in flight at a time the linger
  // would only add its full max_wait_us to every sample, so this mode
  // measures the pure async tax.
  {
    serve::AsyncOptions options;
    options.max_wait_us = 0;
    serve::AsyncAmIndex async_index(async_backend, options);
    auto roundtrip = base_record(prefix + "_serve_roundtrip", rows, dims);
    benchjson::fill_timing(
        roundtrip,
        benchjson::time_calls(requests.size(),
                              [&](std::size_t i) {
                                (void)async_index.submit(requests[i]).get();
                              }),
        1);
    numbers.roundtrip_p50_us = roundtrip.latency_p50_us;
    records.push_back(roundtrip);
  }

  // Mixed read/write: every 20th submission (5%) is an in-place
  // overwrite through the same queue. Runs last — the writes mutate the
  // backend, so the read-only modes above must already be done.
  {
    const auto writes =
        data::random_int_vectors(requests.size() / 20 + 1, dims, 4, 3);
    serve::AsyncOptions options;
    options.queue_depth = requests.size();
    options.max_batch = 32;
    options.max_wait_us = 100;
    serve::AsyncAmIndex async_index(async_backend, options);
    std::vector<std::future<serve::SearchResponse>> search_futures;
    std::vector<std::future<serve::WriteReceipt>> write_futures;
    search_futures.reserve(requests.size());
    const auto start = Clock::now();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (i % 20 == 19) {
        write_futures.push_back(
            async_index.submit_update(i % rows, writes[i / 20]));
      } else {
        search_futures.push_back(async_index.submit(requests[i]));
      }
    }
    for (auto& future : search_futures) (void)future.get();
    for (auto& future : write_futures) (void)future.get();
    const double wall = seconds_since(start);
    const auto stats = async_index.stats();
    numbers.mixed_qps =
        wall > 0.0 ? static_cast<double>(requests.size()) / wall : 0.0;
    numbers.writes = stats.write.served;
    records.push_back(from_reservoir(prefix + "_serve_mixed", rows, dims,
                                     stats.search.end_to_end_us,
                                     numbers.mixed_qps));
  }
  return numbers;
}

/// The sharded serve modes: scatter-gather sync + async roundtrip over
/// a 4-shard engine fleet, then the write-interference quartet (see the
/// file comment) against the single-index baseline.
void measure_sharded(std::size_t rows, std::size_t dims,
                     const std::vector<std::vector<int>>& db,
                     const std::vector<std::vector<int>>& queries,
                     std::vector<benchjson::Record>& records) {
  serve::ShardedOptions opt;
  opt.shards = 4;
  // At least two routing blocks per shard so the fleet actually spreads
  // at small row counts.
  opt.shard_block = rows / 8 ? rows / 8 : 1;
  opt.backend = serve::ShardBackend::kEngine;
  const auto make_fleet = [&] {
    auto fleet = std::make_unique<serve::ShardedIndex>(opt);
    fleet->configure(csp::DistanceMetric::kHamming, 2);
    fleet->store(db);
    return fleet;
  };
  std::vector<serve::SearchRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
  }
  serve::SearchRequest warm;
  warm.query = queries.front();

  auto sync_record = base_record("sharded_serve_sync", rows, dims);
  {
    auto fleet = make_fleet();
    (void)fleet->search(warm);
    benchjson::fill_timing(
        sync_record,
        benchjson::time_calls(
            requests.size(),
            [&](std::size_t i) { (void)fleet->search(requests[i]); }),
        1);
    records.push_back(sync_record);
  }

  auto roundtrip = base_record("sharded_serve_roundtrip", rows, dims);
  {
    auto fleet = make_fleet();
    serve::AsyncOptions options;
    options.max_wait_us = 0;
    serve::AsyncShardedIndex async_fleet(*fleet, options);
    benchjson::fill_timing(
        roundtrip,
        benchjson::time_calls(requests.size(),
                              [&](std::size_t i) {
                                (void)async_fleet.submit(requests[i]).get();
                              }),
        1);
    records.push_back(roundtrip);
    async_fleet.shutdown();
  }

  // Write interference, measured per operation: each timed sample is
  // one roundtrip search submitted right after a burst of updates
  // enters the queue. On the single index the search serializes behind
  // the whole burst (write barrier), so every sample pays it; on the
  // fleet the burst sits on shard 0's queue while the search goes to
  // shards 1..3, which never see it. The *_no_writes twins are the
  // identical loops minus the updates.
  constexpr std::size_t kBurst = 16;
  const auto fresh = data::random_int_vectors(kBurst, dims, 4, 7);
  serve::AsyncOptions queue_options;
  // One burst plus the search in flight per sample, with headroom.
  queue_options.queue_depth = kBurst + 8;
  queue_options.max_batch = 32;
  queue_options.max_wait_us = 0;

  struct Interference {
    std::vector<double> seconds;  ///< per-search wall roundtrip
    core::LatencyReservoir::Summary queue_wait;
  };

  const auto single_pair = [&](bool with_writes) {
    serve::EngineIndex index;
    index.configure(csp::DistanceMetric::kHamming, 2);
    index.store(db);
    (void)index.search(warm);
    serve::AsyncAmIndex async_index(index, queue_options);
    std::vector<std::future<serve::WriteReceipt>> writes;
    writes.reserve(kBurst);
    Interference out;
    out.seconds.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (with_writes) {
        for (std::size_t w = 0; w < kBurst; ++w) {
          writes.push_back(
              async_index.submit_update((i + w) % rows, fresh[w]));
        }
      }
      const auto start = Clock::now();
      (void)async_index.submit(requests[i]).get();
      out.seconds.push_back(seconds_since(start));
      // Drain outside the timed region so exactly one burst is in
      // flight per sample (no backlog snowball across samples).
      for (auto& write : writes) (void)write.get();
      writes.clear();
    }
    // The search class's own reservoir: the search is always last in
    // its burst, so its queue wait IS the serialization stall behind
    // the writes queued ahead of it.
    out.queue_wait = async_index.stats().search.queue_wait_us;
    return out;
  };

  const auto fleet_pair = [&](bool with_writes) {
    auto fleet = make_fleet();
    // Rows the router sends to shard 0 — the updates' sole target.
    std::vector<std::size_t> shard0_rows;
    for (std::size_t g = 0; g < rows; ++g) {
      if (fleet->shard_of(g) == 0) shard0_rows.push_back(g);
    }
    serve::AsyncShardedIndex async_fleet(*fleet, queue_options);
    std::vector<serve::AsyncShardedIndex::PendingWrite> writes;
    writes.reserve(kBurst);
    Interference out;
    out.seconds.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (with_writes) {
        for (std::size_t w = 0; w < kBurst; ++w) {
          writes.push_back(async_fleet.submit_update(
              shard0_rows[(i + w) % shard0_rows.size()], fresh[w]));
        }
      }
      // Every search goes to shard 1 only: its queue — and its
      // queue-wait reservoir — never holds a write.
      const auto start = Clock::now();
      (void)async_fleet.submit_shard(1, requests[i]).get();
      out.seconds.push_back(seconds_since(start));
      for (auto& write : writes) (void)write.get();
      writes.clear();
    }
    out.queue_wait =
        async_fleet.shard_session(1).stats().search.queue_wait_us;
    async_fleet.shutdown();
    return out;
  };

  const auto wall_p95_us = [](const Interference& run) {
    std::vector<double> us;
    us.reserve(run.seconds.size());
    for (const double s : run.seconds) us.push_back(s * 1e6);
    std::sort(us.begin(), us.end());
    return benchjson::percentile_sorted(us, 95.0);
  };
  const auto single_idle = single_pair(false);
  const auto single_busy = single_pair(true);
  const auto fleet_idle = fleet_pair(false);
  const auto fleet_busy = fleet_pair(true);

  std::printf("ShardedIndex  sync %8.0f q/s   roundtrip p50 %7.1f us\n",
              sync_record.qps, roundtrip.latency_p50_us);
  std::printf(
      "write interference (%zu updates/search)  wall p95: single %7.1f -> "
      "%8.1f us   other shard %7.1f -> %8.1f us\n",
      kBurst, wall_p95_us(single_idle), wall_p95_us(single_busy),
      wall_p95_us(fleet_idle), wall_p95_us(fleet_busy));
  std::printf(
      "                              queue-wait p95: single %7.1f -> "
      "%8.1f us   other shard %7.1f -> %8.1f us\n",
      single_idle.queue_wait.p95_us, single_busy.queue_wait.p95_us,
      fleet_idle.queue_wait.p95_us, fleet_busy.queue_wait.p95_us);
}

/// The fixed large-geometry trajectory point: 65536 rows x 16 dims over
/// 4 shards, served sync. Emitted at its own geometry on every run so
/// the bench_compare gate tracks it no matter what the positional
/// arguments say.
void measure_sharded_large(std::vector<benchjson::Record>& records) {
  constexpr std::size_t kRows = 65536;
  constexpr std::size_t kDims = 16;
  constexpr std::size_t kQueries = 16;
  serve::ShardedOptions opt;
  opt.shards = 4;
  opt.shard_block = 4096;
  opt.backend = serve::ShardBackend::kEngine;
  const auto db = data::random_int_vectors(kRows, kDims, 4, 11);
  const auto queries = data::random_int_vectors(kQueries, kDims, 4, 12);
  serve::ShardedIndex fleet(opt);
  fleet.configure(csp::DistanceMetric::kHamming, 2);
  fleet.store(db);
  serve::SearchRequest request;
  request.query = queries.front();
  (void)fleet.search(request);
  auto record = base_record("sharded_serve_large", kRows, kDims);
  benchjson::fill_timing(record,
                         benchjson::time_calls(kQueries,
                                               [&](std::size_t i) {
                                                 request.query = queries[i];
                                                 (void)fleet.search(request);
                                               }),
                         1);
  records.push_back(record);
  std::printf("sharded_serve_large  %zu rows x 4 shards   %6.0f q/s   "
              "p95 %8.1f us\n",
              kRows, record.qps, record.latency_p95_us);
}

// ---------------------------------------------------------------------
// Open-loop load generation.
//
// The closed-loop modes above submit as fast as the server completes —
// offered load adapts to capacity, so they can never show what happens
// when demand exceeds it. The open-loop generator schedules Poisson
// arrivals at a fixed offered rate on an absolute timeline
// (sleep_until against the run's start, so generator jitter never
// compounds) and submits without waiting; requests carry a deadline and
// the admission policy decides what to shed. Per-class streams fall out
// of Poisson superposition: thinning one arrival process with a
// Bernoulli class draw is equivalent to independent search and write
// Poisson streams at the split rates.

struct OpenLoopConfig {
  double offered_qps = 0.0;       ///< base arrival rate (> 0)
  std::size_t arrivals = 0;       ///< total scheduled arrivals
  std::uint64_t deadline_us = 0;  ///< per-search deadline; 0 = none
  double write_fraction = 0.0;    ///< P(arrival is an in-place update)
  double burst_mult = 1.0;        ///< rate multiplier inside the burst
  serve::AdmissionPolicy admission;
};

struct OpenLoopResult {
  std::size_t offered = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;
  std::uint64_t shed_submit = 0;
  std::uint64_t shed_dispatch = 0;
  double achieved_qps = 0.0;
  double shed_rate = 0.0;
  core::LatencyReservoir::Summary latency;        ///< served searches
  core::LatencyReservoir::Summary write_latency;  ///< served writes
};

/// One open-loop run against a fresh async session over `backend`.
/// Arrivals in [arrivals/3, arrivals/2) — the middle sixth — use
/// burst_mult x the base rate, so burst_mult = 1 is a flat run.
OpenLoopResult open_loop_run(serve::AmIndex& backend, std::size_t rows,
                             const std::vector<serve::SearchRequest>& requests,
                             const std::vector<std::vector<int>>& fresh,
                             const OpenLoopConfig& config,
                             std::uint64_t seed) {
  serve::AsyncOptions options;
  // Deep queue: deadline shedding, not queue overflow, is the
  // admission mechanism under test here.
  options.queue_depth = config.arrivals + 8;
  options.max_batch = 32;
  options.max_wait_us = 100;
  options.admission = config.admission;
  serve::AsyncAmIndex async_index(backend, options);

  util::Rng rng(seed);
  std::vector<std::future<serve::SearchResponse>> search_futures;
  std::vector<std::future<serve::WriteReceipt>> write_futures;
  search_futures.reserve(config.arrivals);
  OpenLoopResult out;
  out.offered = config.arrivals;

  const auto start = Clock::now();
  double t = 0.0;  // absolute arrival time offset, seconds
  for (std::size_t i = 0; i < config.arrivals; ++i) {
    const bool in_burst =
        i >= config.arrivals / 3 && i < config.arrivals / 2;
    const double rate =
        config.offered_qps * (in_burst ? config.burst_mult : 1.0);
    t += -std::log(1.0 - rng.uniform()) / rate;
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(t)));
    try {
      if (rng.bernoulli(config.write_fraction)) {
        write_futures.push_back(
            async_index.submit_update(i % rows, fresh[i % fresh.size()]));
      } else {
        serve::SearchRequest request = requests[i % requests.size()];
        request.submit.deadline_us = config.deadline_us;
        search_futures.push_back(async_index.submit(request));
      }
    } catch (const serve::RejectedRequest&) {
      ++out.shed;  // submit-time: deadline estimate or queue share cap
    }
  }
  for (auto& future : search_futures) {
    try {
      (void)future.get();
      ++out.completed;
    } catch (const serve::RejectedRequest&) {
      ++out.shed;  // dispatch-time: deadline expired while queued
    }
  }
  for (auto& future : write_futures) {
    (void)future.get();
    ++out.completed;
  }
  const double wall = seconds_since(start);

  const auto stats = async_index.stats();
  out.shed_submit = stats.shed_submit;
  out.shed_dispatch = stats.shed_dispatch;
  out.achieved_qps =
      wall > 0.0 ? static_cast<double>(out.completed) / wall : 0.0;
  out.shed_rate = out.offered > 0
                      ? static_cast<double>(out.shed) /
                            static_cast<double>(out.offered)
                      : 0.0;
  out.latency = stats.search.end_to_end_us;
  out.write_latency = stats.write.end_to_end_us;
  return out;
}

/// The printed open-loop scenarios at the CLI geometry: a latency-vs-
/// offered-load sweep, a 5x burst, and the priority A/B (FIFO vs
/// search-first admission behind a write-heavy stream). Every run gets
/// its own backend built from `db` — the write streams mutate it.
void measure_open_loop(std::size_t rows, std::size_t dims,
                       const std::vector<std::vector<int>>& db,
                       const std::vector<std::vector<int>>& queries) {
  std::vector<serve::SearchRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
  }
  const auto fresh = data::random_int_vectors(64, dims, 4, 9);
  const auto run = [&](const OpenLoopConfig& config) {
    serve::EngineIndex backend;
    backend.configure(csp::DistanceMetric::kHamming, 2);
    backend.store(db);
    (void)backend.search(requests.front());
    return open_loop_run(backend, rows, requests, fresh, config, 17);
  };

  // Capacity estimate from a quick closed sync loop: the sweep's load
  // points are fractions of what one dispatcher can actually serve.
  double capacity;
  {
    serve::EngineIndex probe;
    probe.configure(csp::DistanceMetric::kHamming, 2);
    probe.store(db);
    (void)probe.search(requests.front());
    const std::size_t n = std::min<std::size_t>(requests.size(), 64);
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) (void)probe.search(requests[i]);
    const double wall = seconds_since(t0);
    capacity = wall > 0.0 ? static_cast<double>(n) / wall : 1000.0;
  }

  std::printf("\nopen loop (Poisson arrivals, deadline 20 ms, capacity "
              "estimate %.0f q/s):\n",
              capacity);
  std::printf("  %-14s %10s %10s %9s %9s %6s\n", "scenario", "offered",
              "achieved", "p50 us", "p95 us", "shed");
  const auto row = [&](const char* name, double offered,
                       const OpenLoopResult& r) {
    std::printf("  %-14s %10.0f %10.0f %9.1f %9.1f %5.1f%%  "
                "(submit %llu, dispatch %llu)\n",
                name, offered, r.achieved_qps, r.latency.p50_us,
                r.latency.p95_us, r.shed_rate * 100.0,
                static_cast<unsigned long long>(r.shed_submit),
                static_cast<unsigned long long>(r.shed_dispatch));
  };

  OpenLoopConfig config;
  config.arrivals = std::max<std::size_t>(queries.size(), 128);
  config.deadline_us = 20000;
  for (const double load : {0.25, 0.5, 1.0, 1.5}) {
    config.offered_qps = capacity * load;
    char name[32];
    std::snprintf(name, sizeof name, "load %.2fx", load);
    row(name, config.offered_qps, run(config));
  }

  // Burst: a flat half-capacity stream with a 5x window in the middle
  // sixth — the deadline sheds the excess instead of letting the queue
  // backlog smear the tail across the rest of the run.
  config.offered_qps = capacity * 0.5;
  config.burst_mult = 5.0;
  row("burst 5x", config.offered_qps, run(config));
  config.burst_mult = 1.0;

  // Priority A/B: 30% writes riding the same stream. FIFO makes every
  // search wait behind the writes ahead of it; search-first admission
  // bounds that wait at max_writes_ahead.
  config.offered_qps = capacity * 0.5;
  config.write_fraction = 0.3;
  config.admission.order = serve::AdmissionPolicy::ClassOrder::kFifo;
  const auto fifo = run(config);
  config.admission.order = serve::AdmissionPolicy::ClassOrder::kSearchFirst;
  config.admission.max_writes_ahead = 2;
  const auto ahead = run(config);
  row("30%w fifo", config.offered_qps, fifo);
  row("30%w search1st", config.offered_qps, ahead);
  std::printf("  search-first search p95 %7.1f us vs fifo %7.1f us "
              "(write p95 %7.1f vs %7.1f us)\n",
              ahead.latency.p95_us, fifo.latency.p95_us,
              ahead.write_latency.p95_us, fifo.write_latency.p95_us);
}

/// The committed open-loop operating point: fixed 128 x 64 geometry,
/// 512 arrivals at 700 offered q/s (about half this container's
/// closed-loop capacity), 5% writes, 20 ms deadline. Emitted at its
/// own geometry on every run — like sharded_serve_large — so the
/// bench_compare shed-rate and latency gates track it no matter what
/// the positional arguments say.
void measure_open_loop_point(std::vector<benchjson::Record>& records) {
  constexpr std::size_t kRows = 128;
  constexpr std::size_t kDims = 64;
  const auto db = data::random_int_vectors(kRows, kDims, 4, 1);
  const auto queries = data::random_int_vectors(256, kDims, 4, 2);
  const auto fresh = data::random_int_vectors(64, kDims, 4, 9);
  std::vector<serve::SearchRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
  }
  serve::EngineIndex backend;
  backend.configure(csp::DistanceMetric::kHamming, 2);
  backend.store(db);
  (void)backend.search(requests.front());

  OpenLoopConfig config;
  config.offered_qps = 700.0;
  config.arrivals = 512;
  config.deadline_us = 20000;
  config.write_fraction = 0.05;
  const auto result =
      open_loop_run(backend, kRows, requests, fresh, config, 17);

  auto record = base_record("engine_open_loop", kRows, kDims);
  record.queries = result.offered;
  record.qps = result.achieved_qps;  // the existing throughput gate
  record.latency_p50_us = result.latency.p50_us;
  record.latency_p95_us = result.latency.p95_us;
  record.latency_p99_us = result.latency.p99_us;
  record.offered_qps = config.offered_qps;
  record.achieved_qps = result.achieved_qps;
  record.shed_rate = result.shed_rate;
  record.write_p50_us = result.write_latency.p50_us;
  record.write_p95_us = result.write_latency.p95_us;
  records.push_back(record);
  std::printf("engine_open_loop  offered %4.0f q/s   achieved %4.0f q/s   "
              "p95 %7.1f us   shed %.1f%%\n",
              config.offered_qps, result.achieved_qps,
              result.latency.p95_us, result.shed_rate * 100.0);
}

// Persistence-layer measurements, emitted as schema-v2 records so the
// same bench_compare gate that watches serve throughput watches
// durability cost:
//
//   *_snapshot_save     save_snapshot() per call — encode + atomic
//                       write (temp, fsync, rename, dir fsync).
//   *_snapshot_load     fresh index + load_snapshot() per call, so the
//                       number is the full cold-start path.
//   wal_append_fsync    one insert record per append, fsync-on-commit —
//                       the write-path tax every durable mutation pays.
//   wal_append_nosync   same records, SyncPolicy::kNever; the p50 gap
//                       to the fsync mode is the pure fsync cost.
//   engine_recover_*_log  recover_index() over a WAL of n_ops (short)
//                       or 4*n_ops (long) insert records — recovery
//                       time should scale with log length, which is
//                       what checkpointing exists to bound.
int run_durability(std::size_t rows, std::size_t dims, std::size_t n_ops,
                   const std::string& json_path) {
  namespace fs = std::filesystem;
  std::string dir =
      (fs::temp_directory_path() / "ferex_durability_XXXXXX").string();
  if (::mkdtemp(dir.data()) == nullptr) {
    std::perror("bench_serve: mkdtemp");
    return 1;
  }

  const auto db = data::random_int_vectors(rows, dims, 4, 1);
  const auto fresh = data::random_int_vectors(n_ops, dims, 4, 5);
  constexpr std::size_t kSnapshotIters = 16;
  constexpr std::size_t kRecoverIters = 8;

  std::printf("bench_serve --durability: %zu rows x %zu dims, %zu ops\n\n",
              rows, dims, n_ops);
  std::vector<benchjson::Record> records;

  const auto snapshot_modes = [&](const char* prefix, serve::AmIndex& index,
                                  auto make_fresh) {
    const std::string path = dir + "/snapshot.ferex";
    const double mb =
        static_cast<double>(serve::encode_snapshot(index, 0).size()) /
        (1024.0 * 1024.0);
    auto save = base_record(std::string(prefix) + "_snapshot_save", rows,
                            dims);
    benchjson::fill_timing(
        save,
        benchjson::time_calls(
            kSnapshotIters,
            [&](std::size_t) { serve::save_snapshot(index, path, 0); }),
        1);
    records.push_back(save);
    auto load = base_record(std::string(prefix) + "_snapshot_load", rows,
                            dims);
    benchjson::fill_timing(load,
                           benchjson::time_calls(kSnapshotIters,
                                                 [&](std::size_t) {
                                                   auto target = make_fresh();
                                                   (void)serve::load_snapshot(
                                                       *target, path);
                                                 }),
                           1);
    records.push_back(load);
    util::remove_file(path);
    std::printf("%-6s snapshot %6.3f MB   save %7.1f MB/s   load %7.1f MB/s\n",
                prefix, mb, save.qps * mb, load.qps * mb);
  };

  {
    serve::EngineIndex index;
    index.configure(csp::DistanceMetric::kHamming, 2);
    index.store(db);
    snapshot_modes("engine", index, [] {
      return std::make_unique<serve::EngineIndex>();
    });
  }
  {
    arch::BankedOptions opt;
    opt.bank_rows = rows / 4 ? rows / 4 : 1;
    serve::BankedIndex index(opt);
    index.configure(csp::DistanceMetric::kHamming, 2);
    index.store(db);
    snapshot_modes("banked", index, [&] {
      return std::make_unique<serve::BankedIndex>(opt);
    });
  }

  const auto wal_mode = [&](const char* label, util::SyncPolicy policy) {
    const std::string path = dir + "/wal.ferex";
    auto record = base_record(label, rows, dims);
    {
      serve::Wal wal(path, policy);
      benchjson::fill_timing(
          record,
          benchjson::time_calls(
              n_ops, [&](std::size_t i) { wal.append_insert(fresh[i]); }),
          1);
      wal.close();
    }
    util::remove_file(path);
    records.push_back(record);
    std::printf("%-18s %9.0f appends/s   p50 %7.1f us\n", label, record.qps,
                record.latency_p50_us);
    return record;
  };
  const auto synced = wal_mode("wal_append_fsync", util::SyncPolicy::kEveryAppend);
  const auto unsynced = wal_mode("wal_append_nosync", util::SyncPolicy::kNever);
  std::printf("fsync tax p50 %+.1f us per append\n\n",
              synced.latency_p50_us - unsynced.latency_p50_us);

  const auto recovery_mode = [&](const char* label, std::size_t log_records) {
    util::remove_file(dir + "/wal.ferex");
    util::remove_file(dir + "/snapshot.ferex");
    {
      serve::Wal wal(dir + "/wal.ferex", util::SyncPolicy::kNever);
      wal.append_configure(csp::DistanceMetric::kHamming, 2,
                           /*composite=*/false);
      wal.append_store(db);
      for (std::size_t i = 0; i < log_records; ++i) {
        wal.append_insert(fresh[i % fresh.size()]);
      }
      wal.close();
    }
    auto record = base_record(label, rows, dims);
    benchjson::fill_timing(record,
                           benchjson::time_calls(kRecoverIters,
                                                 [&](std::size_t) {
                                                   serve::EngineIndex target;
                                                   (void)serve::recover_index(
                                                       target, dir);
                                                 }),
                           1);
    records.push_back(record);
    std::printf("%-26s %6zu records   %8.2f ms/recovery\n", label,
                log_records + 2, record.latency_p50_us / 1000.0);
  };
  recovery_mode("engine_recover_short_log", n_ops);
  recovery_mode("engine_recover_long_log", n_ops * 4);

  std::error_code cleanup_error;
  fs::remove_all(dir, cleanup_error);

  if (!json_path.empty() &&
      !benchjson::write_json(json_path, "bench_serve_durability", records)) {
    return 1;
  }
  return 0;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--durability] [--json <path>] "
               "[--open-loop <qps>] [--assert-no-shed] [rows] [dims] "
               "[queries]  (positive integers up to 2^20)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rows = 128, dims = 64, n_queries = 256;
  std::string json_path;
  bool durability = false;
  double open_loop_qps = 0.0;
  bool assert_no_shed = false;
  std::size_t* const params[] = {&rows, &dims, &n_queries};
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    if (std::string(argv[i]) == "--durability") {
      durability = true;
      continue;
    }
    if (std::string(argv[i]) == "--open-loop" && i + 1 < argc) {
      char* end = nullptr;
      errno = 0;
      open_loop_qps = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || errno != 0 ||
          open_loop_qps <= 0.0 || open_loop_qps > 1e6) {
        return usage(argv[0]);
      }
      continue;
    }
    if (std::string(argv[i]) == "--assert-no-shed") {
      assert_no_shed = true;
      continue;
    }
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(argv[i], &end, 10);
    if (positional >= 3 || argv[i][0] == '-' || end == argv[i] ||
        *end != '\0' || errno != 0 || v == 0 || v > 1u << 20) {
      return usage(argv[0]);
    }
    *params[positional++] = static_cast<std::size_t>(v);
  }

  if (durability) return run_durability(rows, dims, n_queries, json_path);

  const auto db = data::random_int_vectors(rows, dims, 4, 1);
  const auto queries = data::random_int_vectors(n_queries, dims, 4, 2);
  serve::SearchRequest warm;
  warm.query = queries.front();

  if (open_loop_qps > 0.0) {
    // Smoke mode: one open-loop pass at the positional geometry. The
    // 100 ms deadline is deliberately generous — at low offered load
    // nothing should come near it, which is exactly what
    // --assert-no-shed checks.
    std::vector<serve::SearchRequest> requests(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      requests[i].query = queries[i];
    }
    serve::EngineIndex backend;
    backend.configure(csp::DistanceMetric::kHamming, 2);
    backend.store(db);
    (void)backend.search(warm);
    OpenLoopConfig config;
    config.offered_qps = open_loop_qps;
    config.arrivals = n_queries;
    config.deadline_us = 100000;
    const auto fresh = data::random_int_vectors(16, dims, 4, 9);
    const auto result =
        open_loop_run(backend, rows, requests, fresh, config, 17);
    std::printf("open loop %zu rows x %zu dims  offered %.0f q/s  "
                "achieved %.0f q/s  p95 %.1f us  shed %zu/%zu\n",
                rows, dims, config.offered_qps, result.achieved_qps,
                result.latency.p95_us, result.shed, result.offered);
    if (assert_no_shed && result.shed > 0) {
      std::fprintf(stderr,
                   "bench_serve: --assert-no-shed: %zu of %zu requests "
                   "shed at offered %.0f q/s\n",
                   result.shed, result.offered, config.offered_qps);
      return 1;
    }
    return 0;
  }

  std::printf("bench_serve: %zu rows x %zu dims, %zu queries, "
              "hardware_concurrency=%u\n\n",
              rows, dims, n_queries, std::thread::hardware_concurrency());

  std::vector<benchjson::Record> records;
  const auto report = [](const char* name, const ServeNumbers& n) {
    std::printf("%s  sync %8.0f q/s   async %8.0f q/s (mean batch %.1f)   "
                "mixed %8.0f op/s (%llu writes)   "
                "dispatch overhead p50 %+.1f us\n",
                name, n.sync_qps, n.async_qps, n.mean_batch, n.mixed_qps,
                static_cast<unsigned long long>(n.writes),
                n.roundtrip_p50_us - n.sync_p50_us);
  };

  {
    serve::EngineIndex sync_index;
    sync_index.configure(csp::DistanceMetric::kHamming, 2);
    sync_index.store(db);
    serve::EngineIndex async_backend;
    async_backend.configure(csp::DistanceMetric::kHamming, 2);
    async_backend.store(db);
    // Warm both (programming/allocation stays out of the window); the
    // warm search consumes ordinal 0 on each, keeping the twins aligned.
    (void)sync_index.search(warm);
    (void)async_backend.search(warm);
    report("EngineIndex",
           measure("engine", rows, dims, sync_index, async_backend, queries,
                   records));
  }

  {
    arch::BankedOptions opt;
    opt.bank_rows = rows / 4 ? rows / 4 : 1;
    serve::BankedIndex sync_index(opt);
    sync_index.configure(csp::DistanceMetric::kHamming, 2);
    sync_index.store(db);
    serve::BankedIndex async_backend(opt);
    async_backend.configure(csp::DistanceMetric::kHamming, 2);
    async_backend.store(db);
    (void)sync_index.search(warm);
    (void)async_backend.search(warm);
    report("BankedIndex",
           measure("banked", rows, dims, sync_index, async_backend, queries,
                   records));
  }

  measure_sharded(rows, dims, db, queries, records);
  measure_sharded_large(records);
  measure_open_loop(rows, dims, db, queries);
  measure_open_loop_point(records);

  if (!json_path.empty() &&
      !benchjson::write_json(json_path, "bench_serve", records)) {
    return 1;
  }
  return 0;
}
