// Serve-path throughput and latency through the AsyncAmIndex front
// door, against the synchronous AmIndex baseline.
//
// Three measurement modes per backend (EngineIndex "engine_*",
// BankedIndex "banked_*"), circuit fidelity:
//
//   *_serve_sync       search() in a sequential loop — the synchronous
//                      baseline; per-call latency samples.
//   *_serve_async      submit() every request up front, then drain the
//                      futures — the coalescing path; percentiles are
//                      the wrapper's end-to-end reservoir (submit ->
//                      future complete), q/s is wall-clock over the run.
//   *_serve_roundtrip  submit() + get() one request at a time — queue +
//                      dispatch + wake overhead on an idle server; the
//                      p50 gap to *_serve_sync is the async tax per
//                      request.
//
// A fourth record per backend, *_serve_queue_wait, re-exports the async
// run's queue-wait reservoir (submit -> dispatch) so the regression
// gate also watches time spent waiting rather than working.
//
//   *_serve_mixed      the mutable-write-path mode: 5% of submissions
//                      are in-place overwrites (submit_update) riding
//                      the same queue as the searches, which serialize
//                      around them in submission order. q/s counts all
//                      operations; percentiles are the wrapper's
//                      end-to-end reservoir over both kinds. The gap to
//                      *_serve_async is the price of write barriers.
//
// Usage: bench_serve [--json <path>] [rows] [dims] [queries]
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "data/datasets.hpp"
#include "serve/async_index.hpp"
#include "serve/banked_index.hpp"
#include "serve/engine_index.hpp"

#include "bench_json.hpp"

namespace {

using namespace ferex;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

benchjson::Record base_record(const std::string& label, std::size_t rows,
                              std::size_t dims) {
  benchjson::Record record;
  record.label = label;
  record.rows = rows;
  record.dims = dims;
  record.fidelity = "circuit";
  return record;
}

benchjson::Record from_reservoir(
    const std::string& label, std::size_t rows, std::size_t dims,
    const core::LatencyReservoir::Summary& summary, double qps) {
  auto record = base_record(label, rows, dims);
  record.queries = summary.count;
  record.qps = qps;
  record.latency_p50_us = summary.p50_us;
  record.latency_p95_us = summary.p95_us;
  record.latency_p99_us = summary.p99_us;
  return record;
}

struct ServeNumbers {
  double sync_qps = 0.0;
  double async_qps = 0.0;
  double mixed_qps = 0.0;
  double sync_p50_us = 0.0;
  double roundtrip_p50_us = 0.0;
  double mean_batch = 0.0;
  std::uint64_t writes = 0;
};

/// Measures one backend through all serve modes. `sync_index` and
/// `async_backend` are twin indexes (same construction) so the two
/// paths serve identical work from identical state.
ServeNumbers measure(const std::string& prefix, std::size_t rows,
                     std::size_t dims, serve::AmIndex& sync_index,
                     serve::AmIndex& async_backend,
                     const std::vector<std::vector<int>>& queries,
                     std::vector<benchjson::Record>& records) {
  std::vector<serve::SearchRequest> requests(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    requests[i].query = queries[i];
  }
  ServeNumbers numbers;

  // Synchronous baseline.
  auto sync_record = base_record(prefix + "_serve_sync", rows, dims);
  benchjson::fill_timing(
      sync_record,
      benchjson::time_calls(
          requests.size(),
          [&](std::size_t i) { (void)sync_index.search(requests[i]); }),
      1);
  numbers.sync_qps = sync_record.qps;
  numbers.sync_p50_us = sync_record.latency_p50_us;
  records.push_back(sync_record);

  // Coalescing async path: enqueue everything, then drain. A fresh
  // wrapper per mode keeps its reservoirs scoped to the measured run.
  {
    serve::AsyncOptions options;
    options.queue_depth = requests.size();
    options.max_batch = 32;
    options.max_wait_us = 100;
    serve::AsyncAmIndex async_index(async_backend, options);
    std::vector<std::future<serve::SearchResponse>> futures;
    futures.reserve(requests.size());
    const auto start = Clock::now();
    for (const auto& request : requests) {
      futures.push_back(async_index.submit(request));
    }
    for (auto& future : futures) (void)future.get();
    const double wall = seconds_since(start);
    const auto stats = async_index.stats();
    numbers.async_qps =
        wall > 0.0 ? static_cast<double>(requests.size()) / wall : 0.0;
    numbers.mean_batch =
        stats.batches > 0 ? static_cast<double>(stats.served) /
                                static_cast<double>(stats.batches)
                          : 0.0;
    records.push_back(from_reservoir(prefix + "_serve_async", rows, dims,
                                     stats.end_to_end_us,
                                     numbers.async_qps));
    records.push_back(from_reservoir(prefix + "_serve_queue_wait", rows,
                                     dims, stats.queue_wait_us,
                                     numbers.async_qps));
  }

  // Idle round trip: queue-in, dispatch, future-wake per request. No
  // coalescing linger — with one request in flight at a time the linger
  // would only add its full max_wait_us to every sample, so this mode
  // measures the pure async tax.
  {
    serve::AsyncOptions options;
    options.max_wait_us = 0;
    serve::AsyncAmIndex async_index(async_backend, options);
    auto roundtrip = base_record(prefix + "_serve_roundtrip", rows, dims);
    benchjson::fill_timing(
        roundtrip,
        benchjson::time_calls(requests.size(),
                              [&](std::size_t i) {
                                (void)async_index.submit(requests[i]).get();
                              }),
        1);
    numbers.roundtrip_p50_us = roundtrip.latency_p50_us;
    records.push_back(roundtrip);
  }

  // Mixed read/write: every 20th submission (5%) is an in-place
  // overwrite through the same queue. Runs last — the writes mutate the
  // backend, so the read-only modes above must already be done.
  {
    const auto writes =
        data::random_int_vectors(requests.size() / 20 + 1, dims, 4, 3);
    serve::AsyncOptions options;
    options.queue_depth = requests.size();
    options.max_batch = 32;
    options.max_wait_us = 100;
    serve::AsyncAmIndex async_index(async_backend, options);
    std::vector<std::future<serve::SearchResponse>> search_futures;
    std::vector<std::future<serve::WriteReceipt>> write_futures;
    search_futures.reserve(requests.size());
    const auto start = Clock::now();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (i % 20 == 19) {
        write_futures.push_back(
            async_index.submit_update(i % rows, writes[i / 20]));
      } else {
        search_futures.push_back(async_index.submit(requests[i]));
      }
    }
    for (auto& future : search_futures) (void)future.get();
    for (auto& future : write_futures) (void)future.get();
    const double wall = seconds_since(start);
    const auto stats = async_index.stats();
    numbers.mixed_qps =
        wall > 0.0 ? static_cast<double>(requests.size()) / wall : 0.0;
    numbers.writes = stats.writes_served;
    records.push_back(from_reservoir(prefix + "_serve_mixed", rows, dims,
                                     stats.end_to_end_us,
                                     numbers.mixed_qps));
  }
  return numbers;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json <path>] [rows] [dims] [queries]  "
               "(positive integers up to 2^20)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t rows = 128, dims = 64, n_queries = 256;
  std::string json_path;
  std::size_t* const params[] = {&rows, &dims, &n_queries};
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(argv[i], &end, 10);
    if (positional >= 3 || argv[i][0] == '-' || end == argv[i] ||
        *end != '\0' || errno != 0 || v == 0 || v > 1u << 20) {
      return usage(argv[0]);
    }
    *params[positional++] = static_cast<std::size_t>(v);
  }

  const auto db = data::random_int_vectors(rows, dims, 4, 1);
  const auto queries = data::random_int_vectors(n_queries, dims, 4, 2);
  serve::SearchRequest warm;
  warm.query = queries.front();

  std::printf("bench_serve: %zu rows x %zu dims, %zu queries, "
              "hardware_concurrency=%u\n\n",
              rows, dims, n_queries, std::thread::hardware_concurrency());

  std::vector<benchjson::Record> records;
  const auto report = [](const char* name, const ServeNumbers& n) {
    std::printf("%s  sync %8.0f q/s   async %8.0f q/s (mean batch %.1f)   "
                "mixed %8.0f op/s (%llu writes)   "
                "dispatch overhead p50 %+.1f us\n",
                name, n.sync_qps, n.async_qps, n.mean_batch, n.mixed_qps,
                static_cast<unsigned long long>(n.writes),
                n.roundtrip_p50_us - n.sync_p50_us);
  };

  {
    serve::EngineIndex sync_index;
    sync_index.configure(csp::DistanceMetric::kHamming, 2);
    sync_index.store(db);
    serve::EngineIndex async_backend;
    async_backend.configure(csp::DistanceMetric::kHamming, 2);
    async_backend.store(db);
    // Warm both (programming/allocation stays out of the window); the
    // warm search consumes ordinal 0 on each, keeping the twins aligned.
    (void)sync_index.search(warm);
    (void)async_backend.search(warm);
    report("EngineIndex",
           measure("engine", rows, dims, sync_index, async_backend, queries,
                   records));
  }

  {
    arch::BankedOptions opt;
    opt.bank_rows = rows / 4 ? rows / 4 : 1;
    serve::BankedIndex sync_index(opt);
    sync_index.configure(csp::DistanceMetric::kHamming, 2);
    sync_index.store(db);
    serve::BankedIndex async_backend(opt);
    async_backend.configure(csp::DistanceMetric::kHamming, 2);
    async_backend.store(db);
    (void)sync_index.search(warm);
    (void)async_backend.search(warm);
    report("BankedIndex",
           measure("banked", rows, dims, sync_index, async_backend, queries,
                   records));
  }

  if (!json_path.empty() &&
      !benchjson::write_json(json_path, "bench_serve", records)) {
    return 1;
  }
  return 0;
}
