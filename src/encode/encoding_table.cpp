#include "encode/encoding_table.hpp"

#include <stdexcept>

// GCC 12's libstdc++ string concatenation triggers a -Wrestrict false
// positive when inlined into to_text_table (GCC bug 105329: the warning
// sees impossible overlap bounds like "accessing 9e18 bytes at offset
// -3"). Suppress it for this TU only so -DFEREX_WERROR=ON stays viable.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ >= 12 && \
    __GNUC__ < 15  // expiry: re-test when GCC 15 lands; drop if fixed
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

namespace ferex::encode {

CellEncoding::CellEncoding(util::Matrix<int> store_levels,
                           util::Matrix<int> search_levels,
                           util::Matrix<int> vds_multiples,
                           std::size_t ladder_levels, std::string name)
    : store_levels_(std::move(store_levels)),
      search_levels_(std::move(search_levels)),
      vds_multiples_(std::move(vds_multiples)),
      ladder_levels_(ladder_levels),
      name_(std::move(name)) {
  if (store_levels_.cols() != search_levels_.cols() ||
      search_levels_.rows() != vds_multiples_.rows() ||
      search_levels_.cols() != vds_multiples_.cols()) {
    throw std::invalid_argument("CellEncoding: inconsistent shapes");
  }
  for (int m : vds_multiples_.flat()) {
    if (m < 1) throw std::invalid_argument("CellEncoding: Vds multiple < 1");
    max_vds_multiple_ = std::max(max_vds_multiple_, m);
  }
  for (int lvl : store_levels_.flat()) {
    if (lvl < 0 || static_cast<std::size_t>(lvl) >= ladder_levels_) {
      throw std::invalid_argument("CellEncoding: store level out of range");
    }
  }
  for (int lvl : search_levels_.flat()) {
    if (lvl < 0 || static_cast<std::size_t>(lvl) >= ladder_levels_) {
      throw std::invalid_argument("CellEncoding: search level out of range");
    }
  }
  // Dense nominal-current table: the search hot path does one lookup per
  // (query element, stored element) pair instead of a per-FeFET walk over
  // three level matrices.
  nominal_currents_ = util::Matrix<int>(search_count(), stored_count());
  for (std::size_t sch = 0; sch < search_count(); ++sch) {
    for (std::size_t sto = 0; sto < stored_count(); ++sto) {
      nominal_currents_.at(sch, sto) = nominal_current_reference(sch, sto);
    }
  }
}

int CellEncoding::nominal_current_reference(std::size_t sch,
                                            std::size_t sto) const {
  int total = 0;
  for (std::size_t i = 0; i < fefets_per_cell(); ++i) {
    // ON iff stored threshold level < applied search level.
    if (store_levels_.at(sto, i) < search_levels_.at(sch, i)) {
      total += vds_multiples_.at(sch, i);
    }
  }
  return total;
}

bool CellEncoding::realizes(const csp::DistanceMatrix& dm) const {
  if (dm.search_count() != search_count() ||
      dm.stored_count() != stored_count()) {
    return false;
  }
  for (std::size_t sch = 0; sch < search_count(); ++sch) {
    for (std::size_t sto = 0; sto < stored_count(); ++sto) {
      if (nominal_current(sch, sto) != dm.at(sch, sto)) return false;
    }
  }
  return true;
}

util::TextTable CellEncoding::to_text_table() const {
  std::vector<std::string> header{"value"};
  const std::size_t k = fefets_per_cell();
  for (std::size_t i = 0; i < k; ++i) {
    header.push_back("Vth,FET" + std::to_string(i + 1));
  }
  for (std::size_t i = 0; i < k; ++i) {
    header.push_back("Vg,FET" + std::to_string(i + 1));
  }
  for (std::size_t i = 0; i < k; ++i) {
    header.push_back("Vds,FET" + std::to_string(i + 1));
  }
  util::TextTable table(std::move(header));
  const std::size_t n = std::min(stored_count(), search_count());
  for (std::size_t v = 0; v < n; ++v) {
    std::vector<std::string> row;
    row.push_back("\"" + std::to_string(v) + "\"");
    for (std::size_t i = 0; i < k; ++i) {
      row.push_back("Vt" + std::to_string(store_level(v, i)));
    }
    for (std::size_t i = 0; i < k; ++i) {
      row.push_back("Vs" + std::to_string(search_level(v, i)));
    }
    for (std::size_t i = 0; i < k; ++i) {
      const int m = vds_multiple(v, i);
      row.push_back(m == 1 ? "V" : std::to_string(m) + "V");
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace ferex::encode
