// Composite (digit-decomposed) encodings — scaling FeReX beyond the
// monolithic CSP's reach.
//
// Algorithm 1 is exact but exponential in cell size: an 8x8 (3-bit)
// distance matrix already exceeds any practical pattern budget (see
// EncoderReport::resource_limited). The paper notes its scheme "has also
// been extended to other distance functions such as multi-bit Manhattan
// and multi-bit Euclidean"; this module provides the principled extension
// for *separable* metrics:
//
//   * Hamming over b bits is bit-separable:
//       HD(a, b) = sum_i HD_1bit(a_i, b_i)
//     so a b-bit cell is b independent 1-bit sub-cells — cell size grows
//     LINEARLY in b instead of the CSP blowing up.
//
//   * Manhattan over b bits is separable under the thermometer (unary)
//     code:
//       |a - b| = sum_{t=1}^{2^b - 1} | 1[a >= t] - 1[b >= t] |
//     i.e. L1 equals 1-bit Hamming over 2^b - 1 thermometer digits.
//
//   * Euclidean-squared is NOT digit-separable ((a-b)^2 has cross terms);
//     it stays on the exact monolithic path, which covers b <= 2.
//
// A ValueCodec maps each logical element value to the vector of sub-cell
// values; the physical array simply stores `subcells` adjacent cells per
// logical element, each configured with the 1-bit base encoding. Because
// the row current is the sum over all cells, the composite cell computes
// the metric exactly.
#pragma once

#include <optional>
#include <vector>

#include "csp/distance_matrix.hpp"
#include "encode/encoder.hpp"
#include "encode/encoding_table.hpp"
#include "util/matrix.hpp"

namespace ferex::encode {

/// Maps logical element values to per-sub-cell stored/search values.
class ValueCodec {
 public:
  /// @param digits  [value][subcell] -> sub-cell value (in the base
  ///                encoding's alphabet)
  /// @param name    human-readable description
  ValueCodec(util::Matrix<int> digits, std::string name);

  std::size_t logical_levels() const noexcept { return digits_.rows(); }
  std::size_t subcells() const noexcept { return digits_.cols(); }
  const std::string& name() const noexcept { return name_; }

  /// Sub-cell value of `value` at digit position `subcell`.
  int digit(int value, std::size_t subcell) const;

  /// Expands a logical vector to the physical sub-cell vector
  /// (length = input.size() * subcells()).
  std::vector<int> expand(std::span<const int> logical) const;

  /// Identity codec (1 sub-cell per element) over `levels` values.
  static ValueCodec identity(std::size_t levels);

  /// Binary bit-slicing: value -> its b bits, LSB first.
  static ValueCodec bit_sliced(int bits);

  /// Thermometer (unary) code: value -> 2^bits - 1 indicator digits.
  static ValueCodec thermometer(int bits);

 private:
  util::Matrix<int> digits_;
  std::string name_;
};

/// A composite encoding: a base cell encoding applied per sub-cell plus
/// the codec that addresses it.
struct CompositeEncoding {
  CellEncoding base;   ///< the per-sub-cell (typically 1-bit) encoding
  ValueCodec codec;    ///< logical value -> sub-cell values
  csp::DistanceMetric metric = csp::DistanceMetric::kHamming;
  int bits = 1;

  /// Total FeFETs per logical element.
  std::size_t fefets_per_element() const noexcept {
    return base.fefets_per_cell() * codec.subcells();
  }

  /// The distance the composite cell computes for (search, stored) —
  /// must equal the metric's reference distance.
  int nominal_distance(int search_value, int stored_value) const;
};

/// Builds the composite encoding for a separable metric at any bit width
/// (Hamming: any b in [1, 8]; Manhattan: b in [1, 6] — 63 sub-cells at
/// b = 6). Returns nullopt for non-separable metrics (Euclidean).
std::optional<CompositeEncoding> make_composite_encoding(
    csp::DistanceMetric metric, int bits,
    const EncoderOptions& options = {});

}  // namespace ferex::encode
