// The encoding table — FeReX's final configuration artifact (Table II).
//
// For every stored value: the Vth level programmed into each FeFET of the
// cell. For every search value: the gate (Vs) level and the drain-voltage
// multiple applied to each FeFET. Levels are indices into a
// device::VoltageLadder; a FeFET at threshold level t conducts under
// search level s iff t < s.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "csp/distance_matrix.hpp"
#include "util/matrix.hpp"
#include "util/table.hpp"

namespace ferex::encode {

class CellEncoding {
 public:
  /// @param store_levels   [sto][fefet] -> Vth level index
  /// @param search_levels  [sch][fefet] -> Vs level index
  /// @param vds_multiples  [sch][fefet] -> drain-voltage multiple (>= 1)
  /// @param ladder_levels  number of distinct levels the ladder must offer
  /// @param name           human-readable description (e.g. the DM name)
  CellEncoding(util::Matrix<int> store_levels, util::Matrix<int> search_levels,
               util::Matrix<int> vds_multiples, std::size_t ladder_levels,
               std::string name);

  std::size_t stored_count() const noexcept { return store_levels_.rows(); }
  std::size_t search_count() const noexcept { return search_levels_.rows(); }
  std::size_t fefets_per_cell() const noexcept { return store_levels_.cols(); }

  /// Number of distinct Vt/Vs ladder levels required.
  std::size_t ladder_levels() const noexcept { return ladder_levels_; }

  /// Largest drain-voltage multiple used (DAC range requirement).
  int max_vds_multiple() const noexcept { return max_vds_multiple_; }

  int store_level(std::size_t sto, std::size_t fefet) const {
    return store_levels_.at(sto, fefet);
  }
  int search_level(std::size_t sch, std::size_t fefet) const {
    return search_levels_.at(sch, fefet);
  }
  int vds_multiple(std::size_t sch, std::size_t fefet) const {
    return vds_multiples_.at(sch, fefet);
  }

  const std::string& name() const noexcept { return name_; }

  /// Nominal (variation-free) cell current, in unit-current multiples, for
  /// a search value applied against a stored value. This is the value the
  /// physical cell is expected to produce; equals the DM entry when the
  /// encoding is correct. Served from a dense search_count x stored_count
  /// table built at construction — O(1), no per-FeFET walk.
  int nominal_current(std::size_t sch, std::size_t sto) const {
    return nominal_currents_.at(sch, sto);
  }

  /// One LUT row of nominal currents: entry [sto] is
  /// nominal_current(sch, sto). Lets per-query kernels hoist the search-
  /// value lookup out of the per-row loop and gather over stored values.
  std::span<const int> nominal_currents(std::size_t sch) const {
    return nominal_currents_.row(sch);
  }

  /// Reference computation of nominal_current straight from the level
  /// matrices (what the LUT is built from); retained so tests can prove
  /// the cached table faithful.
  int nominal_current_reference(std::size_t sch, std::size_t sto) const;

  /// Checks this encoding reproduces a distance matrix exactly.
  bool realizes(const csp::DistanceMatrix& dm) const;

  /// Renders the Table-II-style encoding table (Vt_i / Vs_j / m*V cells).
  util::TextTable to_text_table() const;

 private:
  util::Matrix<int> store_levels_;
  util::Matrix<int> search_levels_;
  util::Matrix<int> vds_multiples_;
  util::Matrix<int> nominal_currents_;  ///< [sch][sto] cached cell currents
  std::size_t ladder_levels_ = 0;
  int max_vds_multiple_ = 1;
  std::string name_;
};

}  // namespace ferex::encode
