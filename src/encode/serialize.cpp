#include "encode/serialize.hpp"

#include <array>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace ferex::encode {

namespace {

constexpr const char* kMagic = "ferex-encoding v1";

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("from_text: line " + std::to_string(line) +
                              ": " + what);
}

/// Reads one non-empty line, tracking the line number.
bool next_line(std::istringstream& in, std::string& out, std::size_t& line) {
  while (std::getline(in, out)) {
    ++line;
    if (!out.empty()) return true;
  }
  return false;
}

util::Matrix<int> read_matrix(std::istringstream& in, std::size_t rows,
                              std::size_t cols, const char* label,
                              std::size_t& line) {
  std::string text;
  if (!next_line(in, text, line) || text != label) {
    fail(line, std::string("expected section '") + label + "'");
  }
  util::Matrix<int> m(rows, cols, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    if (!next_line(in, text, line)) fail(line, "unexpected end of input");
    std::istringstream row(text);
    for (std::size_t c = 0; c < cols; ++c) {
      if (!(row >> m.at(r, c))) fail(line, "expected integer");
    }
    int extra;
    if (row >> extra) fail(line, "trailing data");
  }
  return m;
}

}  // namespace

std::string to_text(const CellEncoding& encoding) {
  std::ostringstream out;
  out << kMagic << '\n';
  out << "name " << encoding.name() << '\n';
  out << "shape " << encoding.stored_count() << ' '
      << encoding.search_count() << ' ' << encoding.fefets_per_cell() << ' '
      << encoding.ladder_levels() << '\n';
  const auto dump = [&](const char* label, auto getter, std::size_t rows) {
    out << label << '\n';
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < encoding.fefets_per_cell(); ++c) {
        if (c > 0) out << ' ';
        out << getter(r, c);
      }
      out << '\n';
    }
  };
  dump("store_levels",
       [&](std::size_t r, std::size_t c) { return encoding.store_level(r, c); },
       encoding.stored_count());
  dump("search_levels",
       [&](std::size_t r, std::size_t c) { return encoding.search_level(r, c); },
       encoding.search_count());
  dump("vds_multiples",
       [&](std::size_t r, std::size_t c) { return encoding.vds_multiple(r, c); },
       encoding.search_count());
  return out.str();
}

CellEncoding from_text(const std::string& text) {
  std::istringstream in(text);
  std::string current;
  std::size_t line = 0;

  if (!next_line(in, current, line) || current != kMagic) {
    fail(line, "bad magic (expected '" + std::string(kMagic) + "')");
  }
  if (!next_line(in, current, line) || current.rfind("name ", 0) != 0) {
    fail(line, "expected 'name <...>'");
  }
  const std::string name = current.substr(5);

  if (!next_line(in, current, line) || current.rfind("shape ", 0) != 0) {
    fail(line, "expected 'shape <stored> <search> <fefets> <levels>'");
  }
  std::istringstream shape(current.substr(6));
  std::size_t stored = 0, search = 0, fefets = 0, levels = 0;
  if (!(shape >> stored >> search >> fefets >> levels) || stored == 0 ||
      search == 0 || fefets == 0 || levels == 0) {
    fail(line, "bad shape values");
  }

  auto store_levels = read_matrix(in, stored, fefets, "store_levels", line);
  auto search_levels = read_matrix(in, search, fefets, "search_levels", line);
  auto vds = read_matrix(in, search, fefets, "vds_multiples", line);

  // CellEncoding's constructor re-validates ranges.
  return CellEncoding(std::move(store_levels), std::move(search_levels),
                      std::move(vds), levels, name);
}

// ---------------------------------------------------------- binary --

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::uint32_t crc32(const std::vector<std::uint8_t>& data,
                    std::uint32_t seed) {
  return crc32(data.data(), data.size(), seed);
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::bytes(const std::uint8_t* data, std::size_t size) {
  out_.insert(out_.end(), data, data + size);
}

const std::uint8_t* ByteReader::head(std::size_t need, const char* what) {
  if (need > size_ - offset_) {
    throw CorruptSnapshot(offset_, std::string("truncated reading ") + what);
  }
  const std::uint8_t* at = data_ + offset_;
  offset_ += need;
  return at;
}

std::uint8_t ByteReader::u8() { return head(1, "u8")[0]; }

std::uint32_t ByteReader::u32() {
  const std::uint8_t* at = head(4, "u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(at[i]) << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  const std::uint8_t* at = head(8, "u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(at[i]) << (8 * i);
  }
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::vector<std::uint8_t> ByteReader::bytes(std::size_t size) {
  const std::uint8_t* at = head(size, "bytes");
  return std::vector<std::uint8_t>(at, at + size);
}

void ByteReader::require(std::size_t size, const char* what) const {
  if (size != size_ - offset_) {
    throw CorruptSnapshot(offset_, std::string(what) + ": expected " +
                                       std::to_string(size) +
                                       " bytes, have " +
                                       std::to_string(size_ - offset_));
  }
}

void ByteReader::expect_end() const {
  if (offset_ != size_) {
    throw CorruptSnapshot(offset_, "trailing bytes after payload");
  }
}

}  // namespace ferex::encode
