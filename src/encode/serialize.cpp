#include "encode/serialize.hpp"

#include <sstream>
#include <stdexcept>

namespace ferex::encode {

namespace {

constexpr const char* kMagic = "ferex-encoding v1";

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("from_text: line " + std::to_string(line) +
                              ": " + what);
}

/// Reads one non-empty line, tracking the line number.
bool next_line(std::istringstream& in, std::string& out, std::size_t& line) {
  while (std::getline(in, out)) {
    ++line;
    if (!out.empty()) return true;
  }
  return false;
}

util::Matrix<int> read_matrix(std::istringstream& in, std::size_t rows,
                              std::size_t cols, const char* label,
                              std::size_t& line) {
  std::string text;
  if (!next_line(in, text, line) || text != label) {
    fail(line, std::string("expected section '") + label + "'");
  }
  util::Matrix<int> m(rows, cols, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    if (!next_line(in, text, line)) fail(line, "unexpected end of input");
    std::istringstream row(text);
    for (std::size_t c = 0; c < cols; ++c) {
      if (!(row >> m.at(r, c))) fail(line, "expected integer");
    }
    int extra;
    if (row >> extra) fail(line, "trailing data");
  }
  return m;
}

}  // namespace

std::string to_text(const CellEncoding& encoding) {
  std::ostringstream out;
  out << kMagic << '\n';
  out << "name " << encoding.name() << '\n';
  out << "shape " << encoding.stored_count() << ' '
      << encoding.search_count() << ' ' << encoding.fefets_per_cell() << ' '
      << encoding.ladder_levels() << '\n';
  const auto dump = [&](const char* label, auto getter, std::size_t rows) {
    out << label << '\n';
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < encoding.fefets_per_cell(); ++c) {
        if (c > 0) out << ' ';
        out << getter(r, c);
      }
      out << '\n';
    }
  };
  dump("store_levels",
       [&](std::size_t r, std::size_t c) { return encoding.store_level(r, c); },
       encoding.stored_count());
  dump("search_levels",
       [&](std::size_t r, std::size_t c) { return encoding.search_level(r, c); },
       encoding.search_count());
  dump("vds_multiples",
       [&](std::size_t r, std::size_t c) { return encoding.vds_multiple(r, c); },
       encoding.search_count());
  return out.str();
}

CellEncoding from_text(const std::string& text) {
  std::istringstream in(text);
  std::string current;
  std::size_t line = 0;

  if (!next_line(in, current, line) || current != kMagic) {
    fail(line, "bad magic (expected '" + std::string(kMagic) + "')");
  }
  if (!next_line(in, current, line) || current.rfind("name ", 0) != 0) {
    fail(line, "expected 'name <...>'");
  }
  const std::string name = current.substr(5);

  if (!next_line(in, current, line) || current.rfind("shape ", 0) != 0) {
    fail(line, "expected 'shape <stored> <search> <fefets> <levels>'");
  }
  std::istringstream shape(current.substr(6));
  std::size_t stored = 0, search = 0, fefets = 0, levels = 0;
  if (!(shape >> stored >> search >> fefets >> levels) || stored == 0 ||
      search == 0 || fefets == 0 || levels == 0) {
    fail(line, "bad shape values");
  }

  auto store_levels = read_matrix(in, stored, fefets, "store_levels", line);
  auto search_levels = read_matrix(in, search, fefets, "search_levels", line);
  auto vds = read_matrix(in, search, fefets, "vds_multiples", line);

  // CellEncoding's constructor re-validates ranges.
  return CellEncoding(std::move(store_levels), std::move(search_levels),
                      std::move(vds), levels, name);
}

}  // namespace ferex::encode
