// Text serialization of cell encodings.
//
// The CSP encoder is the expensive part of configuring FeReX; a deployed
// system derives an encoding once and ships it to the array controller.
// This module round-trips CellEncoding through a small line-based text
// format (versioned, self-describing, diff-friendly).
//
//   ferex-encoding v1
//   name <free text to end of line>
//   shape <stored> <search> <fefets> <levels>
//   store_levels  — <stored> lines of <fefets> ints
//   search_levels — <search> lines of <fefets> ints
//   vds_multiples — <search> lines of <fefets> ints
#pragma once

#include <string>

#include "encode/encoding_table.hpp"

namespace ferex::encode {

/// Serializes an encoding to the versioned text format.
std::string to_text(const CellEncoding& encoding);

/// Parses the text format; throws std::invalid_argument with a
/// line-numbered message on any malformed input.
CellEncoding from_text(const std::string& text);

}  // namespace ferex::encode
