// Text serialization of cell encodings.
//
// The CSP encoder is the expensive part of configuring FeReX; a deployed
// system derives an encoding once and ships it to the array controller.
// This module round-trips CellEncoding through a small line-based text
// format (versioned, self-describing, diff-friendly).
//
//   ferex-encoding v1
//   name <free text to end of line>
//   shape <stored> <search> <fefets> <levels>
//   store_levels  — <stored> lines of <fefets> ints
//   search_levels — <search> lines of <fefets> ints
//   vds_multiples — <search> lines of <fefets> ints
//
// The module also provides the binary layer under the durable index
// snapshots (PR 7): a little-endian ByteWriter/ByteReader pair where
// every read is bounds-checked and any malformed byte surfaces as a
// typed CorruptSnapshot naming the offset — truncated, oversized, or
// bit-flipped input is never UB and never a silent misparse.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "encode/encoding_table.hpp"

namespace ferex::encode {

/// Serializes an encoding to the versioned text format.
std::string to_text(const CellEncoding& encoding);

/// Parses the text format; throws std::invalid_argument with a
/// line-numbered message on any malformed input.
CellEncoding from_text(const std::string& text);

// ---------------------------------------------------------- binary --

/// Malformed binary snapshot/WAL bytes. `offset()` is the byte position
/// (within the buffer handed to the reader) where decoding failed.
class CorruptSnapshot : public std::runtime_error {
 public:
  CorruptSnapshot(std::uint64_t offset, const std::string& what)
      : std::runtime_error("corrupt snapshot at byte " +
                           std::to_string(offset) + ": " + what),
        offset_(offset) {}

  std::uint64_t offset() const noexcept { return offset_; }

 private:
  std::uint64_t offset_;
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib one). `seed` chains calls.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed = 0);
std::uint32_t crc32(const std::vector<std::uint8_t>& data,
                    std::uint32_t seed = 0);

/// Appends little-endian fixed-width values to a byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void bytes(const std::uint8_t* data, std::size_t size);

  std::size_t size() const noexcept { return out_.size(); }
  const std::vector<std::uint8_t>& data() const noexcept { return out_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked little-endian reader over a byte buffer it does not
/// own. Every accessor throws CorruptSnapshot (with the current offset)
/// rather than reading past the end.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& data)
      : ByteReader(data.data(), data.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  /// Copies `size` bytes out of the buffer.
  std::vector<std::uint8_t> bytes(std::size_t size);

  std::uint64_t offset() const noexcept { return offset_; }
  std::size_t remaining() const noexcept { return size_ - offset_; }

  /// Throws unless exactly `size` bytes remain (pre-validating a
  /// fixed-size payload before element-wise reads).
  void require(std::size_t size, const char* what) const;

  /// Throws unless the buffer is fully consumed (oversized input is as
  /// corrupt as truncated input).
  void expect_end() const;

 private:
  const std::uint8_t* head(std::size_t need, const char* what);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

}  // namespace ferex::encode
