#include "encode/composite.hpp"

#include <stdexcept>

namespace ferex::encode {

ValueCodec::ValueCodec(util::Matrix<int> digits, std::string name)
    : digits_(std::move(digits)), name_(std::move(name)) {
  if (digits_.rows() == 0 || digits_.cols() == 0) {
    throw std::invalid_argument("ValueCodec: empty digit table");
  }
}

int ValueCodec::digit(int value, std::size_t subcell) const {
  if (value < 0 || static_cast<std::size_t>(value) >= digits_.rows()) {
    throw std::out_of_range("ValueCodec::digit: value");
  }
  return digits_.at(static_cast<std::size_t>(value), subcell);
}

std::vector<int> ValueCodec::expand(std::span<const int> logical) const {
  std::vector<int> out;
  out.reserve(logical.size() * subcells());
  for (int v : logical) {
    for (std::size_t d = 0; d < subcells(); ++d) {
      out.push_back(digit(v, d));
    }
  }
  return out;
}

ValueCodec ValueCodec::identity(std::size_t levels) {
  util::Matrix<int> digits(levels, 1, 0);
  for (std::size_t v = 0; v < levels; ++v) {
    digits.at(v, 0) = static_cast<int>(v);
  }
  return ValueCodec(std::move(digits), "identity");
}

ValueCodec ValueCodec::bit_sliced(int bits) {
  if (bits < 1 || bits > 8) {
    throw std::invalid_argument("ValueCodec::bit_sliced: bits in [1, 8]");
  }
  const std::size_t levels = std::size_t{1} << bits;
  util::Matrix<int> digits(levels, static_cast<std::size_t>(bits), 0);
  for (std::size_t v = 0; v < levels; ++v) {
    for (int b = 0; b < bits; ++b) {
      digits.at(v, static_cast<std::size_t>(b)) =
          static_cast<int>((v >> b) & 1);
    }
  }
  return ValueCodec(std::move(digits),
                    std::to_string(bits) + "-bit binary slicing");
}

ValueCodec ValueCodec::thermometer(int bits) {
  if (bits < 1 || bits > 6) {
    throw std::invalid_argument("ValueCodec::thermometer: bits in [1, 6]");
  }
  const std::size_t levels = std::size_t{1} << bits;
  const std::size_t thresholds = levels - 1;
  util::Matrix<int> digits(levels, thresholds, 0);
  for (std::size_t v = 0; v < levels; ++v) {
    for (std::size_t t = 0; t < thresholds; ++t) {
      digits.at(v, t) = v >= t + 1 ? 1 : 0;
    }
  }
  return ValueCodec(std::move(digits),
                    std::to_string(bits) + "-bit thermometer code");
}

int CompositeEncoding::nominal_distance(int search_value,
                                        int stored_value) const {
  int total = 0;
  for (std::size_t d = 0; d < codec.subcells(); ++d) {
    total += base.nominal_current(
        static_cast<std::size_t>(codec.digit(search_value, d)),
        static_cast<std::size_t>(codec.digit(stored_value, d)));
  }
  return total;
}

std::optional<CompositeEncoding> make_composite_encoding(
    csp::DistanceMetric metric, int bits, const EncoderOptions& options) {
  std::optional<ValueCodec> codec;
  switch (metric) {
    case csp::DistanceMetric::kHamming:
      codec = ValueCodec::bit_sliced(bits);
      break;
    case csp::DistanceMetric::kManhattan:
      codec = ValueCodec::thermometer(bits);
      break;
    case csp::DistanceMetric::kEuclideanSquared:
      return std::nullopt;  // (a-b)^2 has cross terms: not separable
  }

  // The sub-cell computes 1-bit Hamming for both codecs: bit-sliced HD
  // sums bitwise mismatches, thermometer L1 sums indicator mismatches.
  const auto base_dm =
      csp::DistanceMatrix::make(csp::DistanceMetric::kHamming, 1);
  auto base = encode_distance_matrix(base_dm, options);
  if (!base) return std::nullopt;

  CompositeEncoding composite{std::move(*base), std::move(*codec), metric,
                              bits};
  return composite;
}

}  // namespace ferex::encode
