#include "encode/encoder.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "csp/errors.hpp"

namespace ferex::encode {

namespace {

/// ON-set of FeFET i for stored value sto, over all search rows, as a
/// bitmask (search rows fit comfortably in 64 bits for b <= 6).
std::vector<std::uint64_t> on_masks_by_sto(
    const std::vector<csp::RowPattern>& solution, std::size_t fefet,
    std::size_t stored_count) {
  std::vector<std::uint64_t> masks(stored_count, 0);
  for (std::size_t sch = 0; sch < solution.size(); ++sch) {
    for (std::size_t sto = 0; sto < stored_count; ++sto) {
      if (solution[sch].is_on(sto, fefet)) {
        masks[sto] |= (std::uint64_t{1} << sch);
      }
    }
  }
  return masks;
}

}  // namespace

CellEncoding encode_solution(const std::vector<csp::RowPattern>& solution,
                             std::string name) {
  if (solution.empty()) {
    throw std::invalid_argument("encode_solution: empty solution");
  }
  const std::size_t search_count = solution.size();
  if (search_count > 64) {
    throw std::invalid_argument("encode_solution: > 64 search rows");
  }
  const std::size_t stored_count = solution.front().stored_count();
  const std::size_t k = solution.front().fefet_count();

  util::Matrix<int> store_levels(stored_count, k, 0);
  util::Matrix<int> search_levels(search_count, k, 0);
  util::Matrix<int> vds(search_count, k, 1);
  std::size_t ladder_levels = 1;

  for (std::size_t i = 0; i < k; ++i) {
    const auto masks = on_masks_by_sto(solution, i, stored_count);

    // Rank stored columns by ON count, descending: more ON states ->
    // lower Vth (Fig. 5). Nestedness makes the count a faithful proxy for
    // set inclusion; equal counts must be identical sets.
    std::vector<int> counts(stored_count);
    for (std::size_t sto = 0; sto < stored_count; ++sto) {
      counts[sto] = std::popcount(masks[sto]);
    }
    std::vector<int> unique_counts(counts.begin(), counts.end());
    std::sort(unique_counts.begin(), unique_counts.end(), std::greater<>());
    unique_counts.erase(
        std::unique(unique_counts.begin(), unique_counts.end()),
        unique_counts.end());

    for (std::size_t sto = 0; sto < stored_count; ++sto) {
      const auto it = std::find(unique_counts.begin(), unique_counts.end(),
                                counts[sto]);
      store_levels.at(sto, i) =
          static_cast<int>(std::distance(unique_counts.begin(), it));
    }
    // Equal counts must mean equal ON-sets, otherwise constraint 3 was
    // violated upstream.
    for (std::size_t a = 0; a < stored_count; ++a) {
      for (std::size_t b = a + 1; b < stored_count; ++b) {
        if (counts[a] == counts[b] && masks[a] != masks[b]) {
          throw std::invalid_argument(
              "encode_solution: non-nested ON-sets (constraint 3 violated)");
        }
      }
    }

    // Search level: just above the highest threshold level it must turn
    // ON (equivalently the paper's OFF-count ranking).
    for (std::size_t sch = 0; sch < search_count; ++sch) {
      int level = 0;
      for (std::size_t sto = 0; sto < stored_count; ++sto) {
        if (solution[sch].is_on(sto, i)) {
          level = std::max(level, store_levels.at(sto, i) + 1);
        }
      }
      search_levels.at(sch, i) = level;
      ladder_levels = std::max(ladder_levels, static_cast<std::size_t>(level) + 1);
      const int on_current = solution[sch].on_current(i);
      vds.at(sch, i) = on_current > 0 ? on_current : 1;
    }
    ladder_levels = std::max(
        ladder_levels, static_cast<std::size_t>(unique_counts.size()));

    // Verify the threshold representation reproduces the ON/OFF pattern.
    for (std::size_t sch = 0; sch < search_count; ++sch) {
      for (std::size_t sto = 0; sto < stored_count; ++sto) {
        const bool want = solution[sch].is_on(sto, i);
        const bool got = store_levels.at(sto, i) < search_levels.at(sch, i);
        if (want != got) {
          throw std::invalid_argument(
              "encode_solution: no threshold representation exists "
              "(constraint 3 violated)");
        }
      }
    }
  }

  return CellEncoding(std::move(store_levels), std::move(search_levels),
                      std::move(vds), ladder_levels, std::move(name));
}

std::optional<CellEncoding> encode_distance_matrix(
    const csp::DistanceMatrix& dm, const EncoderOptions& options,
    EncoderReport* report) {
  std::vector<int> current_range(
      static_cast<std::size_t>(std::max(options.max_vds_multiple, 1)));
  std::iota(current_range.begin(), current_range.end(), 1);

  for (int k = 1; k <= options.max_fefets_per_cell; ++k) {
    csp::FeasibilityOptions fopt;
    fopt.use_ac3 = options.use_ac3;
    // Enumerate a handful of solutions and keep the one needing the
    // fewest voltage levels (then the smallest drain-DAC range): the
    // paper's Table II solution uses 3 levels, and fewer levels means
    // wider noise margins on real devices.
    fopt.solution_limit = 64;
    csp::FeasibilityResult result;
    try {
      result = csp::detect_feasibility(dm, k, current_range, fopt);
    } catch (const csp::ResourceLimitError&) {
      // Larger k only enlarge the pattern space; stop the iteration and
      // report the boundary instead of burning unbounded time.
      if (report) {
        report->resource_limited = true;
        report->resource_limited_at_k = k;
      }
      return std::nullopt;
    }
    if (!result.feasible) {
      if (report) report->rejected_k.push_back(k);
      continue;
    }
    if (report) {
      report->fefets_per_cell = k;
      report->csp_stats = result.stats;
      report->feasible_region_min = result.feasible_region.empty()
                                        ? 0
                                        : result.feasible_region.front().size();
      for (const auto& domain : result.feasible_region) {
        report->feasible_region_min =
            std::min(report->feasible_region_min, domain.size());
      }
    }
    std::optional<CellEncoding> best;
    for (const auto& solution : result.solutions) {
      auto candidate = encode_solution(solution, dm.name());
      const auto key = [](const CellEncoding& e) {
        return std::pair{e.ladder_levels(), e.max_vds_multiple()};
      };
      if (!best || key(candidate) < key(*best)) best = std::move(candidate);
    }
    return best;
  }
  return std::nullopt;
}

}  // namespace ferex::encode
