// The FeReX encoder — Fig. 3 workflow + Fig. 5 post-processing.
//
// Given a target distance matrix, the encoder:
//   1. iterates the number k of FeFETs per cell upward (the paper:
//      "FeReX iteratively increases the number of FeFETs within a cell");
//   2. runs Algorithm 1 (csp::detect_feasibility) for each k;
//   3. post-processes the first feasible solution into voltage level
//      assignments: stored columns ranked by ON count -> lower Vth for
//      higher rank; search rows ranked by OFF count -> lower Vs for
//      higher rank; Vds multiples from the non-zero decomposed currents.
#pragma once

#include <optional>

#include "csp/feasibility.hpp"
#include "encode/encoding_table.hpp"

namespace ferex::encode {

struct EncoderOptions {
  int max_fefets_per_cell = 6;  ///< upper bound for the k iteration
  /// Drain DAC range: CR = {1, ..., this}. 5 covers all three standard
  /// metrics at 2 bits (Euclidean-squared entries reach 9 = 4 + 5); the
  /// encoder still prefers solutions with the smallest range used.
  int max_vds_multiple = 5;
  bool use_ac3 = true;          ///< pass-through to Algorithm 1
};

struct EncoderReport {
  int fefets_per_cell = 0;          ///< the k that succeeded
  csp::CspStats csp_stats{};        ///< solver statistics at that k
  std::size_t feasible_region_min = 0;  ///< smallest per-row domain size
  std::vector<int> rejected_k;      ///< cell sizes that were infeasible
  /// Set when the k iteration stopped because the exact CSP exceeded its
  /// pattern budget (instance too large for Algorithm 1), with the k at
  /// which it happened. Distinct from proven infeasibility.
  bool resource_limited = false;
  int resource_limited_at_k = 0;
};

/// Derives a CellEncoding from one concrete CSP solution (exposed
/// separately so tests can exercise the Fig. 5 post-processing alone).
///
/// Throws std::invalid_argument if the solution violates constraint 3
/// (non-nested ON-sets), which a correct Algorithm 1 never produces.
CellEncoding encode_solution(const std::vector<csp::RowPattern>& solution,
                             std::string name);

/// Full encoder: returns the encoding plus a report, or nullopt if no
/// cell size up to the limit can realize the DM.
std::optional<CellEncoding> encode_distance_matrix(
    const csp::DistanceMatrix& dm, const EncoderOptions& options = {},
    EncoderReport* report = nullptr);

}  // namespace ferex::encode
