// Synthetic dataset substrate (stand-in for Table III).
//
// The paper benchmarks on ISOLET (617 features / 26 classes), UCIHAR
// (561 / 12) and MNIST (784 / 10). Those corpora are not available
// offline, so we generate deterministic synthetic datasets with the same
// feature dimensionality and class counts: Gaussian class clusters with
// controllable separation, optional per-class multi-modality (MNIST-like
// style variation) and correlated features. The experiments measure
// *relative* behaviour — which distance metric wins per dataset, HDC
// robustness — which these generators exercise on the same code paths.
// Preset train/test sizes are scaled down ~4-10x from the paper's to keep
// the benchmark harness runtime reasonable; shapes (n, K) are preserved.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/matrix.hpp"

namespace ferex::data {

/// A dataset split into train and test parts. Features are continuous;
/// quantize with ml::Quantizer before handing to the AM.
struct Dataset {
  std::string name;
  std::size_t feature_count = 0;
  std::size_t class_count = 0;
  util::Matrix<double> train_x;  ///< [sample][feature]
  std::vector<int> train_y;
  util::Matrix<double> test_x;
  std::vector<int> test_y;
};

/// Generator parameters for one synthetic dataset.
struct SyntheticSpec {
  std::string name = "synthetic";
  std::size_t feature_count = 64;
  std::size_t class_count = 8;
  std::size_t train_size = 1024;
  std::size_t test_size = 256;
  /// Distance between class means in units of the intra-class sigma.
  /// Lower = harder problem.
  double class_separation = 2.2;
  /// Gaussian sub-clusters per class (writing-style variation); 1 = pure
  /// Gaussian classes.
  std::size_t modes_per_class = 1;
  /// Fraction of features that carry no class signal (pure noise).
  double noise_feature_fraction = 0.25;
  /// Heavy-tailed measurement noise probability (outlier injection).
  double outlier_probability = 0.01;
  /// Fraction of informative features whose class mean is zeroed per
  /// class mode — high values give sparse, presence/absence-style signal
  /// (image-like data), which favors Hamming after quantization.
  double sparsity = 0.0;
};

/// Deterministically generates a dataset from a spec and seed.
Dataset make_synthetic(const SyntheticSpec& spec, std::uint64_t seed);

/// Uniform random integer vectors in [0, levels) — the already-quantized
/// synthetic database/query generator the throughput benches and kernel
/// equivalence tests share. Deterministic from the seed. levels must be
/// positive.
std::vector<std::vector<int>> random_int_vectors(std::size_t count,
                                                 std::size_t dims, int levels,
                                                 std::uint64_t seed);

/// Presets shaped like the paper's Table III (n and K match; sizes are
/// scaled as documented above). The three differ in separability and
/// modality so that no single distance metric wins on all of them.
SyntheticSpec isolet_like();   ///< 617 features, 26 classes (voice)
SyntheticSpec ucihar_like();   ///< 561 features, 12 classes (activity)
SyntheticSpec mnist_like();    ///< 784 features, 10 classes (digits)

}  // namespace ferex::data
