#include "data/datasets.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace ferex::data {

namespace {

/// Per-class, per-mode mean vectors over the informative features.
std::vector<util::Matrix<double>> make_class_means(const SyntheticSpec& spec,
                                                   std::size_t informative,
                                                   util::Rng& rng) {
  std::vector<util::Matrix<double>> means(spec.class_count);
  for (std::size_t c = 0; c < spec.class_count; ++c) {
    means[c] = util::Matrix<double>(spec.modes_per_class, informative, 0.0);
    for (std::size_t m = 0; m < spec.modes_per_class; ++m) {
      for (std::size_t f = 0; f < informative; ++f) {
        if (spec.sparsity > 0.0 && rng.bernoulli(spec.sparsity)) {
          continue;  // silent feature for this class mode
        }
        // Boost magnitude when sparse so total class signal is comparable.
        const double boost =
            spec.sparsity > 0.0 ? 1.0 / std::sqrt(1.0 - spec.sparsity) : 1.0;
        means[c].at(m, f) = rng.gaussian(0.0, spec.class_separation * boost);
      }
    }
  }
  return means;
}

void fill_split(const SyntheticSpec& spec,
                const std::vector<util::Matrix<double>>& means,
                std::size_t informative, std::size_t count,
                util::Matrix<double>& x, std::vector<int>& y,
                util::Rng& rng) {
  x = util::Matrix<double>(count, spec.feature_count, 0.0);
  y.resize(count);
  for (std::size_t s = 0; s < count; ++s) {
    const auto c = s % spec.class_count;  // balanced classes
    const auto mode = static_cast<std::size_t>(
        rng.uniform_below(spec.modes_per_class));
    y[s] = static_cast<int>(c);
    for (std::size_t f = 0; f < spec.feature_count; ++f) {
      double v = rng.gaussian();  // unit intra-class noise everywhere
      if (f < informative) v += means[c].at(mode, f);
      if (spec.outlier_probability > 0.0 &&
          rng.bernoulli(spec.outlier_probability)) {
        v += (rng.bernoulli(0.5) ? 1.0 : -1.0) * rng.uniform(3.0, 8.0);
      }
      x.at(s, f) = v;
    }
  }
}

}  // namespace

Dataset make_synthetic(const SyntheticSpec& spec, std::uint64_t seed) {
  if (spec.class_count == 0 || spec.feature_count == 0) {
    throw std::invalid_argument("make_synthetic: empty spec");
  }
  if (spec.modes_per_class == 0) {
    throw std::invalid_argument("make_synthetic: modes_per_class == 0");
  }
  util::Rng rng(seed);
  const auto informative = static_cast<std::size_t>(
      std::round(static_cast<double>(spec.feature_count) *
                 (1.0 - spec.noise_feature_fraction)));
  const auto means = make_class_means(spec, informative, rng);

  Dataset ds;
  ds.name = spec.name;
  ds.feature_count = spec.feature_count;
  ds.class_count = spec.class_count;
  fill_split(spec, means, informative, spec.train_size, ds.train_x,
             ds.train_y, rng);
  fill_split(spec, means, informative, spec.test_size, ds.test_x, ds.test_y,
             rng);
  return ds;
}

SyntheticSpec isolet_like() {
  SyntheticSpec spec;
  spec.name = "ISOLET-like";
  spec.feature_count = 617;
  spec.class_count = 26;
  spec.train_size = 1560;
  spec.test_size = 390;
  spec.class_separation = 0.32;   // dense Gaussian clusters: L2 territory
  spec.modes_per_class = 1;
  spec.noise_feature_fraction = 0.30;
  spec.outlier_probability = 0.0;
  return spec;
}

SyntheticSpec ucihar_like() {
  SyntheticSpec spec;
  spec.name = "UCIHAR-like";
  spec.feature_count = 561;
  spec.class_count = 12;
  spec.train_size = 1440;
  spec.test_size = 360;
  spec.class_separation = 0.55;
  spec.modes_per_class = 2;       // each activity has style variants
  spec.noise_feature_fraction = 0.25;
  spec.outlier_probability = 0.08;  // sensor glitches: L1 robustness pays
  return spec;
}

std::vector<std::vector<int>> random_int_vectors(std::size_t count,
                                                 std::size_t dims, int levels,
                                                 std::uint64_t seed) {
  if (levels <= 0) {
    throw std::invalid_argument("random_int_vectors: levels must be > 0");
  }
  util::Rng rng(seed);
  std::vector<std::vector<int>> out(count, std::vector<int>(dims));
  for (auto& row : out) {
    for (auto& v : row) {
      v = static_cast<int>(
          rng.uniform_below(static_cast<std::uint64_t>(levels)));
    }
  }
  return out;
}

SyntheticSpec mnist_like() {
  SyntheticSpec spec;
  spec.name = "MNIST-like";
  spec.feature_count = 784;
  spec.class_count = 10;
  spec.train_size = 2000;
  spec.test_size = 500;
  spec.class_separation = 0.70;
  spec.modes_per_class = 3;       // writing styles
  spec.noise_feature_fraction = 0.20;
  spec.outlier_probability = 0.0;
  spec.sparsity = 0.65;           // stroke presence/absence signal
  return spec;
}

}  // namespace ferex::data
