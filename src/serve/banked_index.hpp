// AmIndex over the banked multi-macro architecture (arch::BankedAm).
//
// The scale-out deployment: rows partition across bank_rows-sized macros,
// one search fires every bank, streaming inserts grow fresh banks on
// demand. Hit semantics follow the hardware:
//   * k = 1 runs the two-stage path (per-bank LTA + global comparator);
//     the hit's margin is the sensed gap between the two best bank
//     winners — exactly BankedAm::search;
//   * k > 1 runs the post-decoder masking path over the concatenated row
//     currents (deterministic: no per-bank LTA decisions, so no
//     comparator-noise draws) — winner sequence exactly BankedAm::
//     search_k.
#pragma once

#include "arch/banked_am.hpp"
#include "serve/am_index.hpp"

namespace ferex::serve {

class BankedIndex final : public AmIndex {
 public:
  explicit BankedIndex(arch::BankedOptions options = {});

  std::size_t stored_count() const noexcept override;
  std::size_t live_count() const noexcept override;
  std::size_t dims() const noexcept override;
  std::size_t bank_count() const noexcept override;

  /// The wrapped banked AM, for the architecture-level delay/energy
  /// models the serving surface does not abstract.
  arch::BankedAm& banked() noexcept { return banked_; }
  const arch::BankedAm& banked() const noexcept { return banked_; }

 protected:
  void do_configure(csp::DistanceMetric metric, int bits) override;
  void do_store(const std::vector<std::vector<int>>& database) override;
  WriteReceipt do_insert(std::span<const int> vector) override;
  WriteReceipt do_remove(std::size_t global_row) override;
  WriteReceipt do_update(std::size_t global_row,
                         std::span<const int> vector) override;
  SearchResponse search_core(std::span<const int> query, std::size_t k,
                             std::uint64_t ordinal,
                             bool in_query_pool) const override;
  void validate_backend_query(std::span<const int> query) const override;
  bool inner_fan_for_batch(std::size_t batch_size) const override;

 private:
  arch::BankedAm banked_;
};

}  // namespace ferex::serve
