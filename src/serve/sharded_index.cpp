#include "serve/sharded_index.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "serve/banked_index.hpp"
#include "serve/engine_index.hpp"
#include "util/merge_topk.hpp"
#include "util/parallel.hpp"

namespace ferex::serve {

namespace {

/// Per-shard engine options: seed salted per shard (shard 0 keeps the
/// base seed, so a 1-shard fleet is bit-identical to the unsharded
/// index), and — with several engine shards — per-shard row fan-out
/// disabled because this layer owns the cross-shard fan (the same rule
/// BankedAm applies to its banks; scheduling never affects results).
core::FerexOptions shard_engine_options(const ShardedOptions& options,
                                        std::size_t shard) {
  auto engine_options = options.engine;
  engine_options.seed = ShardedIndex::shard_seed(options, shard);
  if (options.backend == ShardBackend::kEngine && options.shards > 1) {
    engine_options.intra_query_min_devices = 0;
  }
  return engine_options;
}

/// Concatenated per-row live mask of one shard, in shard-local row
/// order, for routing reconstruction after recovery.
std::vector<std::uint8_t> shard_live_mask(const AmIndex& shard) {
  if (const auto* engine = dynamic_cast<const EngineIndex*>(&shard)) {
    const auto mask = engine->engine().live_mask();
    return {mask.begin(), mask.end()};
  }
  const auto& banked = dynamic_cast<const BankedIndex&>(shard).banked();
  std::vector<std::uint8_t> mask;
  mask.reserve(banked.stored_count());
  for (std::size_t b = 0; b < banked.bank_count(); ++b) {
    const auto bank_mask = banked.bank(b).live_mask();
    mask.insert(mask.end(), bank_mask.begin(), bank_mask.end());
  }
  return mask;
}

}  // namespace

ShardedIndex::ShardedIndex(ShardedOptions options) : options_(options) {
  if (options_.shards == 0) {
    throw std::invalid_argument("ShardedIndex: shards == 0");
  }
  if (options_.shard_block == 0) {
    throw std::invalid_argument("ShardedIndex: shard_block == 0");
  }
  shards_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(make_shard(s));
  }
}

std::unique_ptr<AmIndex> ShardedIndex::make_shard(std::size_t shard) const {
  if (options_.backend == ShardBackend::kBanked) {
    arch::BankedOptions banked_options;
    banked_options.engine = shard_engine_options(options_, shard);
    banked_options.bank_rows = options_.bank_rows;
    return std::make_unique<BankedIndex>(banked_options);
  }
  return std::make_unique<EngineIndex>(shard_engine_options(options_, shard));
}

std::size_t ShardedIndex::rows_for_shard(std::size_t shard,
                                         std::size_t total) const noexcept {
  const std::size_t full_blocks = total / options_.shard_block;
  const std::size_t tail = total % options_.shard_block;
  std::size_t rows = (full_blocks / options_.shards) * options_.shard_block;
  if (full_blocks % options_.shards > shard) rows += options_.shard_block;
  if (full_blocks % options_.shards == shard) rows += tail;
  return rows;
}

std::pair<std::size_t, std::size_t> ShardedIndex::next_insert_target() const {
  // The overall lowest freed global row is also the lowest freed row of
  // its own shard (any lower freed row there would beat it globally),
  // which is exactly the slot that shard's own insert() reuses first —
  // so global routing and shard-local reuse agree without a table.
  const std::size_t global =
      free_rows_.empty() ? stored_count() : *free_rows_.begin();
  return {shard_of(global), global};
}

std::size_t ShardedIndex::stored_count() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->stored_count();
  return total;
}

std::size_t ShardedIndex::live_count() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->live_count();
  return total;
}

std::size_t ShardedIndex::dims() const noexcept {
  for (const auto& shard : shards_) {
    if (shard->stored_count() > 0) return shard->dims();
  }
  return 0;
}

void ShardedIndex::do_configure(csp::DistanceMetric metric, int bits) {
  metric_ = metric;
  bits_ = bits;
  configured_ = true;
  for (auto& shard : shards_) shard->configure(metric, bits);
}

void ShardedIndex::do_store(const std::vector<std::vector<int>>& database) {
  if (!configured_) {
    throw std::logic_error("ShardedIndex: store before configure");
  }
  std::vector<std::vector<std::vector<int>>> slices(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    slices[s].reserve(rows_for_shard(s, database.size()));
  }
  for (std::size_t g = 0; g < database.size(); ++g) {
    slices[shard_of(g)].push_back(database[g]);
  }
  // Validate every slice against one scratch shard first (same geometry
  // as every real shard — only the seed differs), so a bad row leaves
  // the served fleet untouched; then restore the real shards in place.
  // In place matters: per-shard WAL handles and async sessions hold
  // references to the shard objects, so store must never swap them out.
  auto probe = make_shard(0);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    if (slices[s].empty()) continue;
    probe->configure(metric_, bits_);
    probe->store(slices[s]);
  }
  for (std::size_t s = 0; s < options_.shards; ++s) {
    shards_[s]->configure(metric_, bits_);
    // A shard with no rows stays configured-but-unstored: it never
    // fires, draws no noise, and accepts the fleet's first overflow
    // insert later.
    if (!slices[s].empty()) shards_[s]->store(slices[s]);
  }
  free_rows_.clear();
}

WriteReceipt ShardedIndex::do_insert(std::span<const int> vector) {
  if (!configured_) {
    throw std::logic_error("ShardedIndex: insert before configure");
  }
  // Dimensional check at the fleet level: a fresh (never-stored) shard
  // would accept any length, establishing a shard-local dims that
  // disagrees with the rest of the fleet.
  const std::size_t fleet_dims = dims();
  if (fleet_dims != 0 && vector.size() != fleet_dims) {
    throw std::invalid_argument(
        "ShardedIndex::insert: vector length != stored dimensionality");
  }
  const auto [shard, global] = next_insert_target();
  WriteReceipt receipt = shards_[shard]->insert(vector);
  free_rows_.erase(global);
  receipt.global_row = global;
  receipt.bank = shard;
  return receipt;
}

WriteReceipt ShardedIndex::do_remove(std::size_t global_row) {
  const std::size_t shard = shard_of(global_row);
  // The shard rejects an out-of-range or already-removed local row with
  // the same typed errors the unsharded backends use; the freed set
  // only learns about rows that really were erased.
  WriteReceipt receipt = shards_[shard]->remove(to_local(global_row));
  free_rows_.insert(global_row);
  receipt.global_row = global_row;
  receipt.bank = shard;
  return receipt;
}

WriteReceipt ShardedIndex::do_update(std::size_t global_row,
                                     std::span<const int> vector) {
  const std::size_t shard = shard_of(global_row);
  WriteReceipt receipt = shards_[shard]->update(to_local(global_row), vector);
  // An update revives a removed slot; a live slot is a no-op here.
  free_rows_.erase(global_row);
  receipt.global_row = global_row;
  receipt.bank = shard;
  return receipt;
}

void ShardedIndex::validate_backend_query(std::span<const int> query) const {
  // Every shard enforces the same configured encoding, so the first
  // stored shard speaks for the fleet. (With nothing stored anywhere,
  // live_count() == 0 already rejected the request upstream with the
  // typed EmptyIndex.)
  for (const auto& shard : shards_) {
    if (shard->stored_count() == 0) continue;
    if (const auto* engine = dynamic_cast<const EngineIndex*>(shard.get())) {
      engine->engine().validate_query(query);
    } else {
      dynamic_cast<const BankedIndex&>(*shard).banked().validate_query(query);
    }
    return;
  }
}

bool ShardedIndex::inner_fan_for_batch(std::size_t batch_size) const {
  // A batch that can saturate the pool fans across requests; a smaller
  // batch over a multi-shard fleet serves requests serially so each one
  // fans its shards instead (bit-identical either way).
  if (batch_size == 0 || batch_size >= util::pool_width()) return false;
  std::size_t live_shards = 0;
  for (const auto& shard : shards_) {
    live_shards += shard->live_count() > 0 ? 1 : 0;
  }
  return live_shards > 1 && live_shards >= batch_size;
}

double ShardedIndex::merge_key(const Hit& hit) const noexcept {
  // The merge orders on what the fidelity actually sensed: currents at
  // circuit fidelity, exact distances at nominal (where the sensed
  // current IS the distance, so the two keys agree bit for bit).
  return options_.engine.fidelity == core::SearchFidelity::kNominal
             ? static_cast<double>(hit.nominal_distance)
             : hit.sensed_current_a;
}

std::vector<SearchResponse> ShardedIndex::scatter(std::span<const int> query,
                                                  std::size_t k,
                                                  std::uint64_t ordinal,
                                                  bool in_query_pool) const {
  std::vector<SearchResponse> parts(shards_.size());
  std::size_t live_shards = 0;
  for (const auto& shard : shards_) {
    live_shards += shard->live_count() > 0 ? 1 : 0;
  }
  const auto run_shard = [&](std::size_t s) {
    const std::size_t live = shards_[s]->live_count();
    // A fully deleted shard stops firing: no search, no noise draws —
    // its comparator streams are exactly those of a fleet that never
    // included it.
    if (live == 0) return;
    SearchRequest sub;
    sub.query.assign(query.begin(), query.end());
    // Overfetch one extra hit per shard so the merge always has a live
    // losing candidate for margin reconstruction — unless the whole
    // fleet is exhausted (k == total live), where the margin is +inf
    // exactly as the unsharded final round reports (round winners stay
    // live at masked +inf current, so its `second` is +inf). A sole
    // live shard needs no overfetch: its response passes through
    // wholesale.
    sub.k = (k == 1 || live_shards == 1) ? k : std::min(k + 1, live);
    parts[s] = shards_[s]->search_at(sub, ordinal);
  };
  if (!in_query_pool && live_shards > 1 && util::pool_width() > 1) {
    // Affine schedule: shard s lands on the same pool participant on
    // every query, keeping its cached bias/current tables warm in one
    // thread's caches across a serving stream.
    util::parallel_for_affine(shards_.size(), run_shard);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) run_shard(s);
  }
  return parts;
}

SearchResponse ShardedIndex::merge_shard_responses(
    std::span<const SearchResponse> parts, std::size_t k) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  SearchResponse out;
  // A sole live shard (a 1-shard fleet, or every other shard fully
  // deleted) passes through wholesale: its hit sequence and margins ARE
  // the fleet's, so the fleet is bit-identical to that shard served
  // alone at every k and both fidelities.
  std::size_t live_parts = 0;
  std::size_t sole = 0;
  for (std::size_t s = 0; s < parts.size(); ++s) {
    if (parts[s].hits.empty()) continue;
    ++live_parts;
    sole = s;
  }
  if (live_parts == 1) {
    out = parts[sole];
    for (auto& hit : out.hits) {
      hit.global_row = to_global(sole, hit.global_row);
      hit.bank = sole;
    }
    return out;
  }
  if (k == 1) {
    // Single-winner gather: the shared two-best merge (the same rule
    // BankedAm applies across banks) picks the winner and reconstructs
    // its margin against the best losing shard winner.
    std::vector<util::GroupWinner> winners(parts.size());
    for (std::size_t s = 0; s < parts.size(); ++s) {
      if (parts[s].hits.empty()) continue;  // dead shard
      winners[s].live = true;
      winners[s].sensed = merge_key(parts[s].hits.front());
      winners[s].margin_a = parts[s].hits.front().margin_a;
    }
    const auto merged = util::merge_topk(winners);
    Hit hit = parts[merged.group].hits.front();
    hit.global_row = to_global(merged.group, hit.global_row);
    hit.bank = merged.group;
    hit.margin_a = merged.margin_a;
    out.hits.push_back(hit);
    return out;
  }
  // k-way head merge over the per-shard rank orders: take the smallest
  // head (ties to the lowest global row, matching the deterministic
  // LTA sweep's lowest-index rule through the monotone local->global
  // map), then report its margin as the gap to the best remaining head.
  std::vector<std::size_t> heads(parts.size(), 0);
  out.hits.reserve(k);
  for (std::size_t taken = 0; taken < k; ++taken) {
    std::size_t best_shard = parts.size();
    std::size_t best_row = 0;
    double best_key = kInf;
    for (std::size_t s = 0; s < parts.size(); ++s) {
      if (heads[s] >= parts[s].hits.size()) continue;
      const Hit& head = parts[s].hits[heads[s]];
      const double key = merge_key(head);
      const std::size_t row = to_global(s, head.global_row);
      if (best_shard == parts.size() || key < best_key ||
          (key == best_key && row < best_row)) {
        best_shard = s;
        best_key = key;
        best_row = row;
      }
    }
    if (best_shard == parts.size()) {
      // Unreachable: validate_request bounds k by the fleet's live
      // count and every live shard overfetched.
      throw std::logic_error("ShardedIndex: merge ran out of candidates");
    }
    Hit hit = parts[best_shard].hits[heads[best_shard]];
    ++heads[best_shard];
    hit.global_row = best_row;
    hit.bank = best_shard;
    double next_key = kInf;
    bool have_next = false;
    for (std::size_t s = 0; s < parts.size(); ++s) {
      if (heads[s] >= parts[s].hits.size()) continue;
      const double key = merge_key(parts[s].hits[heads[s]]);
      if (!have_next || key < next_key) {
        next_key = key;
        have_next = true;
      }
    }
    // Exhausted fleet (k == total live): margin +inf, exactly the flat
    // comparator's final round (decide_k masks each round winner to
    // +inf current but keeps it live and competing, so its `second` is
    // +inf — and so is a sole live shard's own final-round margin,
    // which the passthrough inherits). The heads always cover the true
    // global runner-up otherwise (every shard overfetched one), so
    // these gaps equal the flat index's round margins bit for bit at
    // nominal fidelity.
    hit.margin_a = have_next ? next_key - best_key : kInf;
    out.hits.push_back(hit);
  }
  return out;
}

SearchResponse ShardedIndex::search_core(std::span<const int> query,
                                         std::size_t k, std::uint64_t ordinal,
                                         bool in_query_pool) const {
  const auto parts = scatter(query, k, ordinal, in_query_pool);
  return merge_shard_responses(parts, k);
}

SearchResponse ShardedIndex::search_shard(std::size_t shard,
                                          const SearchRequest& request) {
  check_mutable("search_shard");
  if (shard >= shards_.size()) {
    throw std::out_of_range("ShardedIndex::search_shard: shard");
  }
  // Validate against the target shard before consuming a fleet ordinal,
  // so a rejected request leaves the noise-stream sequence untouched.
  shards_[shard]->validate_request(request);
  const std::uint64_t ordinal =
      request.ordinal ? *request.ordinal : query_serial();
  if (!request.ordinal) set_query_serial(ordinal + 1);
  SearchResponse response = shards_[shard]->search_at(request, ordinal);
  for (auto& hit : response.hits) {
    hit.global_row = to_global(shard, hit.global_row);
    hit.bank = shard;
  }
  return response;
}

void ShardedIndex::rebuild_routing() {
  check_mutable("rebuild_routing");
  // Recovery replays configure into each shard, not through this layer:
  // adopt the cache from any configured shard (they all agree — a fleet
  // configures as one).
  for (const auto& shard : shards_) {
    const auto* engine = dynamic_cast<const EngineIndex*>(shard.get());
    if (engine != nullptr && engine->engine().configured()) {
      metric_ = engine->engine().metric();
      bits_ = engine->engine().bits();
      configured_ = true;
      break;
    }
    const auto* banked = dynamic_cast<const BankedIndex*>(shard.get());
    if (banked != nullptr && banked->banked().configured()) {
      metric_ = banked->banked().metric();
      bits_ = banked->banked().bits();
      configured_ = true;
      break;
    }
  }
  free_rows_.clear();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const auto mask = shard_live_mask(*shards_[s]);
    for (std::size_t local = 0; local < mask.size(); ++local) {
      if (mask[local] == 0) free_rows_.insert(to_global(s, local));
    }
  }
}

}  // namespace ferex::serve
