#include "serve/banked_index.hpp"

namespace ferex::serve {

namespace {

Hit to_hit(const arch::BankedSearchResult& r) {
  Hit hit;
  hit.global_row = r.nearest;
  hit.bank = r.bank;
  hit.sensed_current_a = r.winner_current_a;
  hit.margin_a = r.margin_a;
  hit.nominal_distance = r.nominal_distance;
  return hit;
}

}  // namespace

BankedIndex::BankedIndex(arch::BankedOptions options)
    : banked_(options) {}

void BankedIndex::configure(csp::DistanceMetric metric, int bits) {
  banked_.configure(metric, bits);
}

void BankedIndex::store(const std::vector<std::vector<int>>& database) {
  banked_.store(database);
}

InsertReceipt BankedIndex::insert(std::span<const int> vector) {
  const auto banked_receipt = banked_.insert(vector);
  InsertReceipt receipt;
  receipt.global_row = banked_receipt.global_row;
  receipt.bank = banked_receipt.bank;
  receipt.cost = banked_receipt.cost;
  return receipt;
}

std::size_t BankedIndex::stored_count() const noexcept {
  return banked_.stored_count();
}

std::size_t BankedIndex::dims() const noexcept { return banked_.dims(); }

std::size_t BankedIndex::bank_count() const noexcept {
  return banked_.bank_count();
}

SearchResponse BankedIndex::search_core(std::span<const int> query,
                                        std::size_t k, std::uint64_t ordinal,
                                        bool in_query_pool) const {
  // Inside a request fan-out the bank loop must stay serial so pools
  // never nest; otherwise the banked work-size heuristic applies.
  const std::optional<bool> parallel_banks =
      in_query_pool ? std::optional<bool>(false) : std::nullopt;
  SearchResponse response;
  if (k == 1) {
    response.hits.push_back(
        to_hit(banked_.search_at(query, ordinal, parallel_banks)));
    return response;
  }
  const auto hits = banked_.search_k_hits(query, k, parallel_banks);
  response.hits.reserve(hits.size());
  for (const auto& hit : hits) response.hits.push_back(to_hit(hit));
  return response;
}

void BankedIndex::validate_backend_query(std::span<const int> query) const {
  banked_.validate_query(query);
}

bool BankedIndex::inner_fan_for_batch(std::size_t batch_size) const {
  return banked_.inner_fan_for_batch(batch_size);
}

}  // namespace ferex::serve
