#include "serve/banked_index.hpp"

namespace ferex::serve {

namespace {

Hit to_hit(const arch::BankedSearchResult& r) {
  Hit hit;
  hit.global_row = r.nearest;
  hit.bank = r.bank;
  hit.sensed_current_a = r.winner_current_a;
  hit.margin_a = r.margin_a;
  hit.nominal_distance = r.nominal_distance;
  return hit;
}

}  // namespace

BankedIndex::BankedIndex(arch::BankedOptions options)
    : banked_(options) {}

namespace {

WriteReceipt to_receipt(const arch::BankedWrite& w) {
  WriteReceipt receipt;
  receipt.global_row = w.global_row;
  receipt.bank = w.bank;
  receipt.cost = w.cost;
  return receipt;
}

}  // namespace

void BankedIndex::do_configure(csp::DistanceMetric metric, int bits) {
  banked_.configure(metric, bits);
}

void BankedIndex::do_store(const std::vector<std::vector<int>>& database) {
  banked_.store(database);
}

WriteReceipt BankedIndex::do_insert(std::span<const int> vector) {
  return to_receipt(banked_.insert(vector));
}

WriteReceipt BankedIndex::do_remove(std::size_t global_row) {
  return to_receipt(banked_.remove(global_row));
}

WriteReceipt BankedIndex::do_update(std::size_t global_row,
                                    std::span<const int> vector) {
  return to_receipt(banked_.update(global_row, vector));
}

std::size_t BankedIndex::stored_count() const noexcept {
  return banked_.stored_count();
}

std::size_t BankedIndex::live_count() const noexcept {
  return banked_.live_count();
}

std::size_t BankedIndex::dims() const noexcept { return banked_.dims(); }

std::size_t BankedIndex::bank_count() const noexcept {
  return banked_.bank_count();
}

SearchResponse BankedIndex::search_core(std::span<const int> query,
                                        std::size_t k, std::uint64_t ordinal,
                                        bool in_query_pool) const {
  // Inside a request fan-out the bank loop must stay serial so pools
  // never nest; otherwise the banked work-size heuristic applies.
  const std::optional<bool> parallel_banks =
      in_query_pool ? std::optional<bool>(false) : std::nullopt;
  SearchResponse response;
  if (k == 1) {
    response.hits.push_back(
        to_hit(banked_.search_at(query, ordinal, parallel_banks)));
    return response;
  }
  const auto hits = banked_.search_k_hits(query, k, parallel_banks);
  response.hits.reserve(hits.size());
  for (const auto& hit : hits) response.hits.push_back(to_hit(hit));
  return response;
}

void BankedIndex::validate_backend_query(std::span<const int> query) const {
  banked_.validate_query(query);
}

bool BankedIndex::inner_fan_for_batch(std::size_t batch_size) const {
  return banked_.inner_fan_for_batch(batch_size);
}

}  // namespace ferex::serve
