#include "serve/wal.hpp"

#include <cstring>

#include "encode/serialize.hpp"
#include "util/failpoint.hpp"

namespace ferex::serve {

namespace {

constexpr char kMagic[8] = {'F', 'E', 'R', 'E', 'X', 'W', 'A', 'L'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = sizeof kMagic + 4;
constexpr std::size_t kFrameBytes = 8;  // u32 length + u32 crc

void put_vector(encode::ByteWriter& out, std::span<const int> vector) {
  out.u64(vector.size());
  for (const int v : vector) {
    out.u32(static_cast<std::uint32_t>(static_cast<std::int32_t>(v)));
  }
}

std::vector<int> get_vector(encode::ByteReader& in) {
  const std::uint64_t dims = in.u64();
  // Each element occupies 4 bytes; an insane count from a corrupt record
  // must fail before any allocation, not OOM.
  if (dims > in.remaining() / 4) {
    throw encode::CorruptSnapshot(in.offset(), "vector length too large");
  }
  std::vector<int> vector(static_cast<std::size_t>(dims));
  for (auto& v : vector) {
    v = static_cast<int>(static_cast<std::int32_t>(in.u32()));
  }
  return vector;
}

std::vector<std::uint8_t> encode_payload(const WalRecord& record) {
  encode::ByteWriter out;
  out.u64(record.seq);
  out.u8(static_cast<std::uint8_t>(record.op));
  switch (record.op) {
    case WalOp::kConfigure:
      out.u8(record.composite ? 1 : 0);
      out.u32(static_cast<std::uint32_t>(record.metric));
      out.u32(static_cast<std::uint32_t>(record.bits));
      break;
    case WalOp::kStore:
      out.u64(record.vectors.size());
      for (const auto& row : record.vectors) put_vector(out, row);
      break;
    case WalOp::kInsert:
      put_vector(out, record.vectors.front());
      break;
    case WalOp::kRemove:
      out.u64(record.row);
      break;
    case WalOp::kUpdate:
      out.u64(record.row);
      put_vector(out, record.vectors.front());
      break;
  }
  return out.take();
}

WalRecord decode_payload(encode::ByteReader& in) {
  WalRecord record;
  record.seq = in.u64();
  const std::uint8_t op = in.u8();
  switch (op) {
    case static_cast<std::uint8_t>(WalOp::kConfigure): {
      record.op = WalOp::kConfigure;
      record.composite = in.u8() != 0;
      record.metric = static_cast<csp::DistanceMetric>(in.u32());
      record.bits = static_cast<int>(in.u32());
      break;
    }
    case static_cast<std::uint8_t>(WalOp::kStore): {
      record.op = WalOp::kStore;
      const std::uint64_t rows = in.u64();
      if (rows > in.remaining()) {
        throw encode::CorruptSnapshot(in.offset(), "row count too large");
      }
      record.vectors.reserve(static_cast<std::size_t>(rows));
      for (std::uint64_t r = 0; r < rows; ++r) {
        record.vectors.push_back(get_vector(in));
      }
      break;
    }
    case static_cast<std::uint8_t>(WalOp::kInsert): {
      record.op = WalOp::kInsert;
      record.vectors.push_back(get_vector(in));
      break;
    }
    case static_cast<std::uint8_t>(WalOp::kRemove): {
      record.op = WalOp::kRemove;
      record.row = static_cast<std::size_t>(in.u64());
      break;
    }
    case static_cast<std::uint8_t>(WalOp::kUpdate): {
      record.op = WalOp::kUpdate;
      record.row = static_cast<std::size_t>(in.u64());
      record.vectors.push_back(get_vector(in));
      break;
    }
    default:
      throw encode::CorruptSnapshot(in.offset(), "unknown WAL opcode");
  }
  in.expect_end();
  return record;
}

}  // namespace

WalReadResult read_wal(const std::string& path) {
  WalReadResult result;
  std::vector<std::uint8_t> bytes;
  if (!util::read_file(path, bytes)) return result;
  if (bytes.empty()) return result;
  if (bytes.size() < kHeaderBytes) {
    // The header itself was torn mid-write: nothing valid to keep.
    result.torn_tail = true;
    return result;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    throw CorruptLog(0, "bad magic");
  }
  encode::ByteReader header(bytes.data() + sizeof kMagic, 4);
  const std::uint32_t version = header.u32();
  if (version != kVersion) {
    throw CorruptLog(sizeof kMagic,
                     "unsupported version " + std::to_string(version));
  }
  std::size_t offset = kHeaderBytes;
  result.valid_bytes = offset;
  std::uint64_t prev_seq = 0;
  bool have_prev = false;
  while (offset < bytes.size()) {
    const std::size_t remaining = bytes.size() - offset;
    if (remaining < kFrameBytes) {
      result.torn_tail = true;
      break;
    }
    encode::ByteReader frame(bytes.data() + offset, kFrameBytes);
    const std::uint32_t length = frame.u32();
    const std::uint32_t stored_crc = frame.u32();
    if (length > remaining - kFrameBytes) {
      // The length header landed but the payload did not — a torn final
      // append. (A corrupt mid-log length that points past the end is
      // indistinguishable and recovers the same way.)
      result.torn_tail = true;
      break;
    }
    // The CRC covers the length bytes too, so a flipped length that
    // still fits inside the file fails here instead of desynchronizing
    // the record stream.
    const std::uint32_t crc =
        encode::crc32(bytes.data() + offset + 8, length,
                      encode::crc32(bytes.data() + offset, 4));
    const bool last_record = offset + kFrameBytes + length == bytes.size();
    if (crc != stored_crc) {
      if (last_record) {
        result.torn_tail = true;
        break;
      }
      throw CorruptLog(offset, "record CRC mismatch");
    }
    WalRecord record;
    try {
      encode::ByteReader payload(bytes.data() + offset + kFrameBytes, length);
      record = decode_payload(payload);
    } catch (const encode::CorruptSnapshot& error) {
      // CRC-valid but unparseable — real corruption, tail or not.
      throw CorruptLog(offset, error.what());
    }
    if (have_prev && record.seq != prev_seq + 1) {
      throw CorruptLog(offset, "sequence gap (" + std::to_string(prev_seq) +
                                   " -> " + std::to_string(record.seq) + ")");
    }
    prev_seq = record.seq;
    have_prev = true;
    offset += kFrameBytes + length;
    result.valid_bytes = offset;
    result.records.push_back(std::move(record));
  }
  return result;
}

std::uint64_t repair_wal(const std::string& path) {
  const WalReadResult scan = read_wal(path);
  if (!scan.torn_tail) return 0;
  std::vector<std::uint8_t> bytes;
  if (!util::read_file(path, bytes)) return 0;
  const std::uint64_t dropped = bytes.size() - scan.valid_bytes;
  util::truncate_file(path, scan.valid_bytes);
  return dropped;
}

Wal::Wal(std::string path, util::SyncPolicy policy, std::uint64_t next_seq)
    : file_(path, policy), next_seq_(next_seq) {
  if (file_.size() == 0) {
    encode::ByteWriter header;
    header.bytes(reinterpret_cast<const std::uint8_t*>(kMagic), sizeof kMagic);
    header.u32(kVersion);
    file_.append(header.data().data(), header.size());
  }
}

std::uint64_t Wal::append_record(const WalRecord& record) {
  const std::vector<std::uint8_t> payload = encode_payload(record);
  encode::ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  // CRC over the length bytes and the payload (see read_wal).
  encode::ByteWriter length_bytes;
  length_bytes.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(encode::crc32(payload, encode::crc32(length_bytes.data())));
  frame.bytes(payload.data(), payload.size());
  util::failpoint_hit("wal.append.before_record");
  file_.append(frame.data().data(), frame.size());
  util::failpoint_hit("wal.append.after_record");
  return next_seq_++;
}

std::uint64_t Wal::append_configure(csp::DistanceMetric metric, int bits,
                                    bool composite) {
  WalRecord record;
  record.seq = next_seq_;
  record.op = WalOp::kConfigure;
  record.metric = metric;
  record.bits = bits;
  record.composite = composite;
  return append_record(record);
}

std::uint64_t Wal::append_store(
    const std::vector<std::vector<int>>& database) {
  WalRecord record;
  record.seq = next_seq_;
  record.op = WalOp::kStore;
  record.vectors = database;
  return append_record(record);
}

std::uint64_t Wal::append_insert(std::span<const int> vector) {
  WalRecord record;
  record.seq = next_seq_;
  record.op = WalOp::kInsert;
  record.vectors.emplace_back(vector.begin(), vector.end());
  return append_record(record);
}

std::uint64_t Wal::append_remove(std::size_t global_row) {
  WalRecord record;
  record.seq = next_seq_;
  record.op = WalOp::kRemove;
  record.row = global_row;
  return append_record(record);
}

std::uint64_t Wal::append_update(std::size_t global_row,
                                 std::span<const int> vector) {
  WalRecord record;
  record.seq = next_seq_;
  record.op = WalOp::kUpdate;
  record.row = global_row;
  record.vectors.emplace_back(vector.begin(), vector.end());
  return append_record(record);
}

}  // namespace ferex::serve
