#include "serve/async_sharded.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>

#include "serve/banked_index.hpp"
#include "serve/engine_index.hpp"

namespace ferex::serve {

namespace {

/// Logical alphabet of the fleet's configured encoding, for submit-time
/// write validation (the shadow must accept exactly the values the
/// shards will). ShardedIndex only configures monolithic encodings, so
/// any configured shard speaks for the fleet; a configured fleet with
/// no banks built anywhere re-derives the encoding with a probe engine
/// (configure is deterministic). Returns 0 for an unconfigured fleet.
std::size_t fleet_alphabet(const ShardedIndex& sharded) {
  if (!sharded.configured()) return 0;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    const AmIndex& shard = sharded.shard(s);
    if (const auto* engine = dynamic_cast<const EngineIndex*>(&shard)) {
      if (!engine->engine().configured()) continue;
      const auto* codec = engine->engine().codec();
      return codec != nullptr ? codec->logical_levels()
                              : engine->engine().encoding().stored_count();
    }
    const auto& banked = dynamic_cast<const BankedIndex&>(shard).banked();
    if (banked.bank_count() > 0) {
      return banked.bank(0).encoding().stored_count();
    }
  }
  core::FerexEngine probe(sharded.options().engine);
  probe.configure(sharded.metric(), sharded.bits());
  return probe.encoding().stored_count();
}

}  // namespace

AsyncShardedIndex::AsyncShardedIndex(ShardedIndex& sharded, AsyncOptions base,
                                     std::span<Wal* const> shard_wals)
    : sharded_(sharded) {
  if (!shard_wals.empty() && shard_wals.size() != sharded_.shard_count()) {
    throw std::invalid_argument(
        "AsyncShardedIndex: shard_wals.size() != shard count");
  }
  // Claim the fleet first: from here on no synchronous mutator can move
  // the routing state out from under the shadow snapshot below, and the
  // snapshot is taken on a quiescent fleet.
  sharded_.claim_async_owner();
  try {
    serial_ = sharded_.query_serial();
    shadow_total_ = sharded_.stored_count();
    shadow_dims_ = sharded_.dims();
    shadow_free_ = sharded_.free_rows();
    configured_ = sharded_.configured();
    alphabet_ = fleet_alphabet(sharded_);
    shadow_live_.resize(sharded_.shard_count());
    for (std::size_t s = 0; s < sharded_.shard_count(); ++s) {
      shadow_live_[s] = sharded_.shard(s).live_count();
    }
    sessions_.reserve(sharded_.shard_count());
    for (std::size_t s = 0; s < sharded_.shard_count(); ++s) {
      AsyncOptions options = base;
      options.wal = shard_wals.empty() ? nullptr : shard_wals[s];
      // Each session claims its shard and spawns its own dispatchers —
      // the shard-local queues that keep one shard's writes out of
      // every other shard's way.
      sessions_.push_back(
          std::make_unique<AsyncAmIndex>(sharded_.shard(s), options));
    }
  } catch (...) {
    // Mid-construction failure: unwind the shard sessions that did
    // open (their destructors drain and release their shards) and hand
    // the fleet back, or it stays locked behind the guard forever.
    sessions_.clear();
    sharded_.release_async_owner();
    throw;
  }
}

AsyncShardedIndex::~AsyncShardedIndex() { shutdown(); }

void AsyncShardedIndex::check_open() const {
  if (shutdown_) {
    throw ShutDown("AsyncShardedIndex: submit after shutdown");
  }
}

std::size_t AsyncShardedIndex::shadow_live_total() const {
  std::size_t total = 0;
  for (const std::size_t live : shadow_live_) total += live;
  return total;
}

void AsyncShardedIndex::validate_vector(std::span<const int> vector) const {
  if (vector.empty()) {
    throw std::invalid_argument("AsyncShardedIndex: empty vector");
  }
  if (shadow_dims_ != 0 && vector.size() != shadow_dims_) {
    throw std::invalid_argument(
        "AsyncShardedIndex: vector length != stored dimensionality");
  }
  for (const int v : vector) {
    if (v < 0 || static_cast<std::size_t>(v) >= alphabet_) {
      throw std::out_of_range("AsyncShardedIndex: value outside alphabet");
    }
  }
}

AsyncShardedIndex::Ticket AsyncShardedIndex::submit(SearchRequest request) {
  util::MutexLock lock(submit_mutex_);
  check_open();
  const std::size_t live_total = shadow_live_total();
  if (live_total == 0) {
    throw EmptyIndex("AsyncShardedIndex: no live rows to search");
  }
  if (request.k == 0 || request.k > live_total) {
    throw std::invalid_argument("AsyncShardedIndex: request.k out of range");
  }
  if (shadow_dims_ != 0 && request.query.size() != shadow_dims_) {
    throw std::invalid_argument(
        "AsyncShardedIndex: query length != stored dimensionality");
  }
  const std::uint64_t ordinal = request.ordinal ? *request.ordinal : serial_;
  std::size_t live_shards = 0;
  for (const std::size_t live : shadow_live_) {
    live_shards += live > 0 ? 1 : 0;
  }
  Ticket ticket(this, request.k, sessions_.size(), Ticket::kAllShards);
  ticket.parts_.reserve(sessions_.size());
  for (std::size_t s = 0; s < sessions_.size(); ++s) {
    // A shard whose rows are all removed (in shadow terms: including
    // every write already queued) is never asked — no search, no noise
    // draws, exactly the synchronous scatter.
    if (shadow_live_[s] == 0) continue;
    SearchRequest sub;
    sub.query = request.query;
    // Mirror the synchronous scatter's per-shard k exactly (including
    // the sole-live-shard passthrough, which needs no overfetch).
    sub.k = (request.k == 1 || live_shards == 1)
                ? request.k
                : std::min(request.k + 1, shadow_live_[s]);
    sub.ordinal = ordinal;
    // v2: the deadline budget and priority ride onto every sub-request
    // — each shard session enforces them against its own queue (the
    // shard-local analogue of the per-class budgets).
    sub.submit = request.submit;
    // Overloaded from a full shard queue rejects the whole search with
    // the serial unmoved (advanced only below, after every shard
    // accepted); sibling sub-searches already queued are const
    // pinned-ordinal reads whose futures this abandoned ticket drops.
    ticket.parts_.emplace_back(s, sessions_[s]->submit(std::move(sub)));
  }
  if (!request.ordinal) serial_ = ordinal + 1;
  return ticket;
}

AsyncShardedIndex::Ticket AsyncShardedIndex::submit_shard(
    std::size_t shard, const SearchRequest& request) {
  util::MutexLock lock(submit_mutex_);
  check_open();
  if (shard >= sessions_.size()) {
    throw std::out_of_range("AsyncShardedIndex::submit_shard: shard");
  }
  if (shadow_live_[shard] == 0) {
    throw EmptyIndex("AsyncShardedIndex: shard has no live rows");
  }
  if (request.k == 0 || request.k > shadow_live_[shard]) {
    throw std::invalid_argument("AsyncShardedIndex: request.k out of range");
  }
  if (shadow_dims_ != 0 && request.query.size() != shadow_dims_) {
    throw std::invalid_argument(
        "AsyncShardedIndex: query length != stored dimensionality");
  }
  const std::uint64_t ordinal = request.ordinal ? *request.ordinal : serial_;
  SearchRequest sub = request;
  sub.ordinal = ordinal;
  Ticket ticket(this, request.k, sessions_.size(), shard);
  ticket.parts_.emplace_back(shard, sessions_[shard]->submit(std::move(sub)));
  if (!request.ordinal) serial_ = ordinal + 1;
  return ticket;
}

AsyncShardedIndex::PendingWrite AsyncShardedIndex::submit_insert(
    std::vector<int> vector) {
  util::MutexLock lock(submit_mutex_);
  check_open();
  if (!configured_) {
    throw std::logic_error(
        "AsyncShardedIndex::submit_insert: configure() first");
  }
  validate_vector(vector);
  const std::size_t global =
      shadow_free_.empty() ? shadow_total_ : *shadow_free_.begin();
  const std::size_t shard = sharded_.shard_of(global);
  const std::size_t length = vector.size();
  auto future = sessions_[shard]->submit_insert(std::move(vector));
  // Accepted (an Overloaded throw above leaves the shadow untouched):
  // advance the shadow exactly as the shard's queue will advance the
  // shard. The target shard's own insert() reuses its lowest freed
  // local slot, which is precisely to_local(global) — see
  // ShardedIndex::next_insert_target.
  if (shadow_free_.empty()) {
    ++shadow_total_;
  } else {
    shadow_free_.erase(shadow_free_.begin());
  }
  ++shadow_live_[shard];
  if (shadow_dims_ == 0) shadow_dims_ = length;
  return PendingWrite(global, shard, std::move(future));
}

AsyncShardedIndex::PendingWrite AsyncShardedIndex::submit_remove(
    std::size_t global_row) {
  util::MutexLock lock(submit_mutex_);
  check_open();
  if (global_row >= shadow_total_) {
    throw std::out_of_range("AsyncShardedIndex::submit_remove: row");
  }
  if (shadow_free_.count(global_row) != 0) {
    throw std::logic_error(
        "AsyncShardedIndex::submit_remove: row already removed");
  }
  const std::size_t shard = sharded_.shard_of(global_row);
  auto future = sessions_[shard]->submit_remove(sharded_.to_local(global_row));
  shadow_free_.insert(global_row);
  --shadow_live_[shard];
  return PendingWrite(global_row, shard, std::move(future));
}

AsyncShardedIndex::PendingWrite AsyncShardedIndex::submit_update(
    std::size_t global_row, std::vector<int> vector) {
  util::MutexLock lock(submit_mutex_);
  check_open();
  if (global_row >= shadow_total_) {
    throw std::out_of_range("AsyncShardedIndex::submit_update: row");
  }
  validate_vector(vector);
  const std::size_t shard = sharded_.shard_of(global_row);
  auto future =
      sessions_[shard]->submit_update(sharded_.to_local(global_row),
                                      std::move(vector));
  // An update revives a freed slot.
  if (shadow_free_.erase(global_row) != 0) ++shadow_live_[shard];
  return PendingWrite(global_row, shard, std::move(future));
}

void AsyncShardedIndex::shutdown() {
  std::uint64_t final_serial = 0;
  std::set<std::size_t> final_free;
  {
    util::MutexLock lock(submit_mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    final_serial = serial_;
    final_free = shadow_free_;
  }
  // Drain every shard session: all accepted futures complete, each
  // shard's serial hands back, each shard returns to synchronous use.
  for (auto& session : sessions_) session->shutdown();
  // Fleet serial + routing handoff while still owning the ShardedIndex
  // (the guarded setter would reject its own owner), then release it
  // back to synchronous use. The shard sessions are drained and joined,
  // so this wrapper is the sole serialized actor. The freed-row set
  // must hand back too: async writes routed through the shard queues
  // never touched the fleet's own bookkeeping, and the shadow is exact
  // (every accepted write succeeded), so post-session synchronous
  // inserts reuse exactly the slots the session freed.
  sharded_.assert_async_serialized();
  sharded_.set_query_serial_unguarded(final_serial);
  sharded_.free_rows_ = std::move(final_free);
  sharded_.release_async_owner();
}

bool AsyncShardedIndex::shut_down() const {
  util::MutexLock lock(submit_mutex_);
  return shutdown_;
}

std::uint64_t AsyncShardedIndex::query_serial() const {
  util::MutexLock lock(submit_mutex_);
  return serial_;
}

SearchResponse AsyncShardedIndex::merge_parts(
    const ShardedIndex& sharded, std::span<const SearchResponse> parts,
    std::size_t k, std::size_t single_shard) {
  if (single_shard != Ticket::kAllShards) {
    SearchResponse response = parts[single_shard];
    for (auto& hit : response.hits) {
      hit.global_row = sharded.to_global(single_shard, hit.global_row);
      hit.bank = single_shard;
    }
    return response;
  }
  // The exact merge the synchronous path runs — one implementation, so
  // sync and async gathers cannot drift.
  return sharded.merge_shard_responses(parts, k);
}

SearchResponse AsyncShardedIndex::Ticket::get() {
  std::vector<SearchResponse> parts(shards_);
  std::exception_ptr first_error;
  // Settle every part before deciding: abandoning later futures on an
  // early throw would discard results the dispatchers still complete.
  for (auto& [shard, future] : parts_) {
    try {
      parts[shard] = future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return AsyncShardedIndex::merge_parts(owner_->sharded_, parts, k_,
                                        single_shard_);
}

}  // namespace ferex::serve
