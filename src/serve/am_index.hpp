// The AmIndex serving API — one front door for every FeReX backend.
//
// The paper's headline is a single engine serving many metrics and
// workloads on the same hardware, but the lower layers expose two front
// doors with different result types: core::FerexEngine (one macro,
// SearchResult) and arch::BankedAm (multi-macro, BankedSearchResult).
// AmIndex unifies them behind a request/response surface:
//
//   serve::BankedIndex index(options);          // or EngineIndex
//   index.configure(csp::DistanceMetric::kHamming, 2);
//   index.store(database);
//   auto r = index.search({.query = q, .k = 3});
//   for (const auto& hit : r.hits)              // nearest first
//     use(hit.global_row, hit.bank, hit.sensed_current_a,
//         hit.margin_a, hit.nominal_distance);
//   index.insert(vec);                          // streaming write path
//
// Guarantees:
//   * Hits are bit-identical to the legacy entry points: k = 1 equals
//     FerexEngine::search / BankedAm::search, the k-NN winner sequence
//     equals search_k, at both fidelities, single-shot and batched (the
//     legacy methods are now thin shims over the same const cores).
//   * Every request consumes exactly one ordinal from the index's query
//     serial — the per-query comparator-noise stream id — unless the
//     request pins one explicitly or the const search_at entry point is
//     used, so responses never depend on thread interleaving.
//   * insert() appends to the live array(s) (program_row on a grown
//     bank, new banks on demand) and charges circuit::WriteCost; after
//     N inserts, searches are bit-identical to a fresh store() of the
//     concatenated database.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "circuit/write.hpp"
#include "csp/distance_matrix.hpp"

namespace ferex::serve {

/// One nearest-neighbor request.
struct SearchRequest {
  std::vector<int> query;
  std::size_t k = 1;  ///< how many hits to return (1 <= k <= stored rows)
  /// Pins the comparator-noise stream for this request instead of
  /// consuming the index's next ordinal. Replay a recorded request with
  /// its ordinal and the response is bit-identical.
  std::optional<std::uint64_t> ordinal;
};

/// One scored row of a response.
struct Hit {
  std::size_t global_row = 0;     ///< row index across all banks
  std::size_t bank = 0;           ///< bank holding the row (0 on a macro)
  double sensed_current_a = 0.0;  ///< sensed current (distance domain)
  double margin_a = 0.0;          ///< sensed gap to the best remaining row
  int nominal_distance = 0;       ///< encoding-level distance to the query
};

/// Hits nearest first; never empty (k >= 1 is validated up front).
struct SearchResponse {
  std::vector<Hit> hits;
  const Hit& best() const noexcept { return hits.front(); }
};

/// Receipt for one streaming insert.
struct InsertReceipt {
  std::size_t global_row = 0;  ///< where the vector landed
  std::size_t bank = 0;        ///< bank that absorbed it
  circuit::WriteCost cost{};   ///< write cost of programming the row
};

/// Polymorphic serving interface over interchangeable FeReX backends.
///
/// The non-virtual entry points own request validation (before any
/// ordinal is consumed), ordinal accounting, and batch scheduling;
/// backends supply the const search core and the write path. The index
/// keeps its own query serial: drive a fresh index with the same request
/// sequence as a fresh legacy backend and the ordinals — hence the
/// responses — line up one to one.
class AmIndex {
 public:
  virtual ~AmIndex() = default;

  /// Configures (or re-configures) the distance function on the backend;
  /// stored and inserted rows are re-encoded.
  virtual void configure(csp::DistanceMetric metric, int bits) = 0;

  /// Stores a database, replacing any previous contents.
  virtual void store(const std::vector<std::vector<int>>& database) = 0;

  /// Streaming insert (see the file comment for the guarantees).
  virtual InsertReceipt insert(std::span<const int> vector) = 0;

  /// Serves one request, consuming one ordinal (unless request.ordinal
  /// pins the noise stream). Throws std::invalid_argument /
  /// std::out_of_range on malformed requests before any ordinal moves.
  SearchResponse search(const SearchRequest& request);

  /// Serves a batch; element i's response is bit-identical to serving
  /// request i alone in order (per-request noise is ordinal-addressed),
  /// but requests fan across the persistent worker pool — or, when the
  /// batch alone cannot saturate it, each request fans its rows/banks.
  /// Consumes one ordinal per request without a pinned one.
  std::vector<SearchResponse> search_batch(
      std::span<const SearchRequest> requests);

  /// Const ordinal-addressed core (the engine's search_at pattern): serves
  /// the request at an explicit ordinal, consuming nothing — the entry
  /// point for callers scheduling their own concurrency and for driving
  /// the index from const contexts. Any request.ordinal is ignored in
  /// favor of the argument.
  SearchResponse search_at(const SearchRequest& request,
                           std::uint64_t ordinal) const;

  /// Const ordinal-addressed batch core: serves request i at ordinals[i],
  /// consuming nothing (any request.ordinal is ignored in favor of the
  /// argument). Scheduling matches search_batch — requests fan across the
  /// worker pool unless the backend prefers inner row/bank fan-out — and
  /// element i is bit-identical to search_at(requests[i], ordinals[i]).
  /// This is the serving core async front doors batch onto: they assign
  /// ordinals at submission time and coalesce here without perturbing the
  /// index's own query serial. Throws std::invalid_argument when the two
  /// spans differ in length, and validates every request up front.
  std::vector<SearchResponse> search_batch_at(
      std::span<const SearchRequest> requests,
      std::span<const std::uint64_t> ordinals) const;

  /// Full request validation (k range + backend query checks), the same
  /// pass every serving entry point runs before any ordinal is consumed.
  /// Public so queueing layers can reject malformed requests at admission
  /// time, before a promise or an ordinal exists for them.
  void validate_request(const SearchRequest& request) const;

  /// Ordinal the next unpinned search() will consume.
  std::uint64_t query_serial() const noexcept { return query_serial_; }

  /// Overwrites the query serial. For serving layers (AsyncAmIndex)
  /// that take over ordinal accounting while open: they seed from
  /// query_serial() at construction and hand the advanced serial back
  /// at shutdown, so synchronous traffic before and after an async
  /// session continues the same noise-stream sequence with no ordinal
  /// served twice.
  void set_query_serial(std::uint64_t serial) noexcept {
    query_serial_ = serial;
  }

  virtual std::size_t stored_count() const noexcept = 0;
  virtual std::size_t dims() const noexcept = 0;
  virtual std::size_t bank_count() const noexcept = 0;

 protected:
  /// Serves one validated request. `in_query_pool` marks calls issued
  /// from inside a parallel_for over requests: backends must then keep
  /// their inner loops serial so pools never nest. Never affects results.
  virtual SearchResponse search_core(std::span<const int> query,
                                     std::size_t k, std::uint64_t ordinal,
                                     bool in_query_pool) const = 0;

  /// Backend query validation (length/alphabet/configured+stored), same
  /// exceptions as the legacy entry points.
  virtual void validate_backend_query(std::span<const int> query) const = 0;

  /// Backend scheduling rule: true when a batch of this size is better
  /// served serially with each request fanning its own rows/banks.
  virtual bool inner_fan_for_batch(std::size_t batch_size) const = 0;

 private:
  /// Post-validation batch dispatch shared by search_batch and
  /// search_batch_at: fans requests across the pool or runs them serially
  /// with inner fan-out, per the backend's scheduling rule.
  std::vector<SearchResponse> dispatch_batch(
      std::span<const SearchRequest> requests,
      std::span<const std::uint64_t> ordinals) const;

  std::uint64_t query_serial_ = 0;
};

}  // namespace ferex::serve
