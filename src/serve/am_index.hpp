// The AmIndex serving API — one front door for every FeReX backend.
//
// The paper's headline is a single engine serving many metrics and
// workloads on the same hardware, but the lower layers expose two front
// doors with different result types: core::FerexEngine (one macro,
// SearchResult) and arch::BankedAm (multi-macro, BankedSearchResult).
// AmIndex unifies them behind a request/response surface:
//
//   serve::BankedIndex index(options);          // or EngineIndex
//   index.configure(csp::DistanceMetric::kHamming, 2);
//   index.store(database);
//   auto r = index.search({q, /*k=*/3});
//   for (const auto& hit : r.hits)              // nearest first
//     use(hit.global_row, hit.bank, hit.sensed_current_a,
//         hit.margin_a, hit.nominal_distance);
//   index.insert(vec);                          // streaming write path
//
// Guarantees:
//   * Hits are bit-identical to the legacy entry points: k = 1 equals
//     FerexEngine::search / BankedAm::search, the k-NN winner sequence
//     equals search_k, at both fidelities, single-shot and batched (the
//     legacy methods are now thin shims over the same const cores).
//   * Every request consumes exactly one ordinal from the index's query
//     serial — the per-query comparator-noise stream id — unless the
//     request pins one explicitly or the const search_at entry point is
//     used, so responses never depend on thread interleaving.
//   * insert() appends to the live array(s) (program_row on a grown
//     bank, new banks on demand — reusing slots freed by remove()
//     first) and charges circuit::WriteCost; after N inserts, searches
//     are bit-identical to a fresh store() of the concatenated
//     database.
//   * remove() / update() complete the mutable write path: a removed
//     row is erased and masked in the post-decoder (it can never win an
//     LTA round, and live rows' comparator-noise draws are exactly
//     those of an index holding only the live rows); update()
//     reprograms a slot in place, charging erase + program-and-verify.
//   * k is validated against live_count(); an index with nothing live
//     to search rejects requests with the typed EmptyIndex error.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/write.hpp"
#include "csp/distance_matrix.hpp"
#include "serve/reject.hpp"
#include "util/thread_annotations.hpp"

namespace ferex::serve {

class AsyncAmIndex;
class AsyncShardedIndex;

/// Phantom capability: the right to mutate an AmIndex (or drive its
/// ordinal stream) without racing an asynchronous owner. Nothing is
/// ever locked — the capability is *asserted*, either by the
/// synchronous guard (check_mutable, which throws MutationWhileServed
/// when an AsyncAmIndex owns the index) or by the owning AsyncAmIndex
/// itself (whose queue serializes writes against searches). Under
/// clang's `-Wthread-safety` this makes the template-method protocol a
/// compile-time rule: every do_* core REQUIRES the capability, so a new
/// public mutator that forgets its guard fails the static-analysis CI
/// leg instead of silently racing dispatchers.
class CAPABILITY("role") MutationSerialization {};

/// Per-request serving policy — the v2 request API. Default-constructed
/// options are the v1 behavior bit for bit: no deadline, FIFO class
/// placement. Only the async front doors consult these; the synchronous
/// path (which never queues) ignores them.
struct SubmitOptions {
  /// Latency budget in microseconds, counted from submission. 0 = no
  /// deadline. Under an async front door a request that has already
  /// missed its budget — by queue-wait estimate at submit, or by
  /// measured queue wait at dispatch — is shed with the typed
  /// DeadlineExceeded (thrown from submit, or surfaced through the
  /// future) instead of burning backend time on a dead answer.
  std::uint64_t deadline_us = 0;

  /// Where this request may be placed relative to queued writes.
  enum class Priority : std::uint8_t {
    /// Follow the session's AdmissionPolicy::order (the default).
    kClassDefault = 0,
    /// Strict submission order regardless of policy — v1 behavior.
    kFifo,
    /// Place ahead of queued writes (beyond the policy's bounded
    /// max_writes_ahead budget), even under a kFifo policy.
    kUrgent,
  };
  Priority priority = Priority::kClassDefault;
};

/// One nearest-neighbor request.
struct SearchRequest {
  std::vector<int> query;
  std::size_t k = 1;  ///< how many hits to return (1 <= k <= stored rows)
  /// Pins the comparator-noise stream for this request instead of
  /// consuming the index's next ordinal. Replay a recorded request with
  /// its ordinal and the response is bit-identical.
  std::optional<std::uint64_t> ordinal;
  /// v2: deadline + priority. Defaults reproduce v1 exactly.
  SubmitOptions submit;

  // Explicit constructors (not an aggregate): v1 call sites brace-init
  // a prefix of the fields, which would warn under
  // -Wmissing-field-initializers on every build if the v2 field's
  // default had to be "missing" rather than defaulted here.
  SearchRequest() = default;
  SearchRequest(std::vector<int> query_in, std::size_t k_in = 1,
                std::optional<std::uint64_t> ordinal_in = std::nullopt,
                SubmitOptions submit_in = {})
      : query(std::move(query_in)),
        k(k_in),
        ordinal(ordinal_in),
        submit(submit_in) {}
};

/// One scored row of a response.
struct Hit {
  std::size_t global_row = 0;     ///< row index across all banks
  std::size_t bank = 0;           ///< bank holding the row (0 on a macro)
  double sensed_current_a = 0.0;  ///< sensed current (distance domain)
  double margin_a = 0.0;          ///< sensed gap to the best remaining row
  int nominal_distance = 0;       ///< encoding-level distance to the query
};

/// Hits nearest first; never empty (k >= 1 is validated up front).
struct SearchResponse {
  std::vector<Hit> hits;
  const Hit& best() const noexcept { return hits.front(); }
};

/// Receipt for one write-path operation (insert / remove / update).
struct WriteReceipt {
  std::size_t global_row = 0;  ///< the row written (or erased)
  std::size_t bank = 0;        ///< bank holding it
  circuit::WriteCost cost{};   ///< write cost of the operation
};

/// Historical name for the insert receipt.
using InsertReceipt = WriteReceipt;

/// Polymorphic serving interface over interchangeable FeReX backends.
///
/// The non-virtual entry points own request validation (before any
/// ordinal is consumed), ordinal accounting, and batch scheduling;
/// backends supply the const search core and the write path. The index
/// keeps its own query serial: drive a fresh index with the same request
/// sequence as a fresh legacy backend and the ordinals — hence the
/// responses — line up one to one.
class AmIndex {
 public:
  virtual ~AmIndex() = default;

  /// Every mutating entry point below is a thin guard over a protected
  /// do_* virtual: while an AsyncAmIndex owns this index the guard
  /// throws MutationWhileServed instead of silently racing the
  /// dispatcher threads (the async front door routes writes through its
  /// own queue, where they serialize against in-flight searches).

  /// Configures (or re-configures) the distance function on the backend;
  /// stored and inserted rows are re-encoded.
  void configure(csp::DistanceMetric metric, int bits);

  /// Stores a database, replacing any previous contents (all rows live).
  void store(const std::vector<std::vector<int>>& database);

  /// Streaming insert (see the file comment for the guarantees). Reuses
  /// the lowest slot freed by remove() before growing.
  WriteReceipt insert(std::span<const int> vector);

  /// Deletes one row by global index: the slot is erased, masked out of
  /// every future decision (without perturbing live rows' noise draws),
  /// and queued for reuse. The receipt carries the erase cost. Throws
  /// std::out_of_range on a bad index, std::logic_error when the row is
  /// already removed.
  WriteReceipt remove(std::size_t global_row);

  /// Overwrites one row in place by global index: erase + program-and-
  /// verify on a live slot, program-only on a removed slot (which comes
  /// back live). Validates the vector before mutating.
  WriteReceipt update(std::size_t global_row, std::span<const int> vector);

  /// Serves one request, consuming one ordinal (unless request.ordinal
  /// pins the noise stream). Throws std::invalid_argument /
  /// std::out_of_range on malformed requests before any ordinal moves.
  SearchResponse search(const SearchRequest& request);

  /// Serves a batch; element i's response is bit-identical to serving
  /// request i alone in order (per-request noise is ordinal-addressed),
  /// but requests fan across the persistent worker pool — or, when the
  /// batch alone cannot saturate it, each request fans its rows/banks.
  /// Consumes one ordinal per request without a pinned one.
  std::vector<SearchResponse> search_batch(
      std::span<const SearchRequest> requests);

  /// Const ordinal-addressed core (the engine's search_at pattern): serves
  /// the request at an explicit ordinal, consuming nothing — the entry
  /// point for callers scheduling their own concurrency and for driving
  /// the index from const contexts. Any request.ordinal is ignored in
  /// favor of the argument. Guarded while an AsyncAmIndex owns the
  /// index: its queued writes mutate the backend, so even const reads
  /// outside the wrapper's serialization would race them — route the
  /// read through AsyncAmIndex::submit with a pinned ordinal instead.
  SearchResponse search_at(const SearchRequest& request,
                           std::uint64_t ordinal) const;

  /// Const ordinal-addressed batch core: serves request i at ordinals[i],
  /// consuming nothing (any request.ordinal is ignored in favor of the
  /// argument). Scheduling matches search_batch — requests fan across the
  /// worker pool unless the backend prefers inner row/bank fan-out — and
  /// element i is bit-identical to search_at(requests[i], ordinals[i]).
  /// This is the serving core async front doors batch onto: they assign
  /// ordinals at submission time and coalesce here without perturbing the
  /// index's own query serial. Throws std::invalid_argument when the two
  /// spans differ in length, and validates every request up front.
  std::vector<SearchResponse> search_batch_at(
      std::span<const SearchRequest> requests,
      std::span<const std::uint64_t> ordinals) const;

  /// Full request validation (k range + backend query checks), the same
  /// pass every serving entry point runs before any ordinal is consumed.
  /// Public so queueing layers can reject malformed requests at admission
  /// time, before a promise or an ordinal exists for them. Throws the
  /// typed EmptyIndex when nothing is live to search (no k could ever be
  /// valid), std::invalid_argument when 1 <= k <= live_count() fails.
  void validate_request(const SearchRequest& request) const;

  /// Ordinal the next unpinned search() will consume.
  std::uint64_t query_serial() const noexcept { return query_serial_; }

  /// Overwrites the query serial. For serving layers (AsyncAmIndex)
  /// that take over ordinal accounting while open: they seed from
  /// query_serial() at construction and hand the advanced serial back
  /// at shutdown, so synchronous traffic before and after an async
  /// session continues the same noise-stream sequence with no ordinal
  /// served twice. Guarded like the mutating entry points.
  void set_query_serial(std::uint64_t serial) {
    check_mutable("set_query_serial");
    query_serial_ = serial;
  }

  /// Physical slots (live + removed); removed slots are reused by
  /// insert() before the index grows.
  virtual std::size_t stored_count() const noexcept = 0;

  /// Rows that compete in searches — what k is validated against.
  virtual std::size_t live_count() const noexcept = 0;

  virtual std::size_t dims() const noexcept = 0;
  virtual std::size_t bank_count() const noexcept = 0;

 protected:
  /// Backend write cores behind the guarded public entry points. They
  /// REQUIRE the mutation-serialization capability: callable only after
  /// check_mutable() (synchronous front door) or through the owning
  /// AsyncAmIndex's serialized write application.
  virtual void do_configure(csp::DistanceMetric metric, int bits)
      REQUIRES(mutation_serialization_) = 0;
  virtual void do_store(const std::vector<std::vector<int>>& database)
      REQUIRES(mutation_serialization_) = 0;
  virtual WriteReceipt do_insert(std::span<const int> vector)
      REQUIRES(mutation_serialization_) = 0;
  virtual WriteReceipt do_remove(std::size_t global_row)
      REQUIRES(mutation_serialization_) = 0;
  virtual WriteReceipt do_update(std::size_t global_row,
                                 std::span<const int> vector)
      REQUIRES(mutation_serialization_) = 0;

  /// Throws MutationWhileServed when an AsyncAmIndex owns this index;
  /// on return the caller holds the (phantom) mutation capability.
  void check_mutable(const char* op) const
      ASSERT_CAPABILITY(mutation_serialization_);
  /// Serves one validated request. `in_query_pool` marks calls issued
  /// from inside a parallel_for over requests: backends must then keep
  /// their inner loops serial so pools never nest. Never affects results.
  virtual SearchResponse search_core(std::span<const int> query,
                                     std::size_t k, std::uint64_t ordinal,
                                     bool in_query_pool) const = 0;

  /// Backend query validation (length/alphabet/configured+stored), same
  /// exceptions as the legacy entry points.
  virtual void validate_backend_query(std::span<const int> query) const = 0;

  /// Backend scheduling rule: true when a batch of this size is better
  /// served serially with each request fanning its own rows/banks.
  virtual bool inner_fan_for_batch(std::size_t batch_size) const = 0;

 private:
  /// AsyncAmIndex holds the ownership flag for its lifetime and drives
  /// the unguarded do_* / serve_*_at cores from its dispatchers (its
  /// queue provides the serialization the guards otherwise demand).
  /// Ownership is exclusive: a second wrapper over the same index would
  /// serve duplicate ordinals and race the first one's dispatchers, so
  /// the claim throws instead.
  friend class AsyncAmIndex;
  /// AsyncShardedIndex claims the fleet-level ShardedIndex the same way
  /// (while per-shard AsyncAmIndex wrappers claim each shard), so
  /// direct synchronous use of a served fleet throws at the front door.
  friend class AsyncShardedIndex;
  void claim_async_owner() {
    if (async_owned_.exchange(true, std::memory_order_acq_rel)) {
      throw std::logic_error(
          "AmIndex: already owned by a live AsyncAmIndex");
    }
  }
  void release_async_owner() noexcept {
    async_owned_.store(false, std::memory_order_release);
  }
  /// The owning AsyncAmIndex's side of the capability: its queue
  /// already serializes the operation it is about to apply against
  /// every in-flight search, which is exactly what the capability
  /// stands for. A no-op at runtime; an assertion to the analysis.
  void assert_async_serialized() const
      ASSERT_CAPABILITY(mutation_serialization_) {}

  /// Serial handoff for the still-owning wrapper (the guarded public
  /// setter would reject its own owner): must happen before
  /// release_async_owner(), or a concurrent re-wrap could seed from
  /// the stale pre-session serial.
  void set_query_serial_unguarded(std::uint64_t serial) noexcept
      REQUIRES(mutation_serialization_) {
    query_serial_ = serial;
  }

  /// Unguarded bodies of search_at / search_batch_at, for the owning
  /// AsyncAmIndex's dispatchers.
  SearchResponse serve_at(const SearchRequest& request,
                          std::uint64_t ordinal) const;
  std::vector<SearchResponse> serve_batch_at(
      std::span<const SearchRequest> requests,
      std::span<const std::uint64_t> ordinals) const;

  /// Post-validation batch dispatch shared by search_batch and
  /// search_batch_at: fans requests across the pool or runs them serially
  /// with inner fan-out, per the backend's scheduling rule.
  std::vector<SearchResponse> dispatch_batch(
      std::span<const SearchRequest> requests,
      std::span<const std::uint64_t> ordinals) const;

  std::uint64_t query_serial_ = 0;
  std::atomic<bool> async_owned_{false};
  /// Phantom — never locked, only asserted (see MutationSerialization).
  MutationSerialization mutation_serialization_;
};

}  // namespace ferex::serve
