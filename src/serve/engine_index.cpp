#include "serve/engine_index.hpp"

namespace ferex::serve {

EngineIndex::EngineIndex(core::FerexOptions options)
    : engine_(options) {}

void EngineIndex::do_configure(csp::DistanceMetric metric, int bits) {
  engine_.configure(metric, bits);
}

void EngineIndex::configure_composite(csp::DistanceMetric metric, int bits) {
  check_mutable("configure_composite");
  engine_.configure_composite(metric, bits);
}

void EngineIndex::do_store(const std::vector<std::vector<int>>& database) {
  engine_.store(database);
}

WriteReceipt EngineIndex::do_insert(std::span<const int> vector) {
  const auto result = engine_.insert(vector);
  WriteReceipt receipt;
  receipt.cost = result.cost;
  receipt.bank = 0;
  receipt.global_row = result.row;
  return receipt;
}

WriteReceipt EngineIndex::do_remove(std::size_t global_row) {
  WriteReceipt receipt;
  receipt.cost = engine_.remove(global_row);
  receipt.bank = 0;
  receipt.global_row = global_row;
  return receipt;
}

WriteReceipt EngineIndex::do_update(std::size_t global_row,
                                    std::span<const int> vector) {
  WriteReceipt receipt;
  receipt.cost = engine_.update(global_row, vector);
  receipt.bank = 0;
  receipt.global_row = global_row;
  return receipt;
}

std::size_t EngineIndex::stored_count() const noexcept {
  return engine_.stored_count();
}

std::size_t EngineIndex::live_count() const noexcept {
  return engine_.live_count();
}

std::size_t EngineIndex::dims() const noexcept { return engine_.dims(); }

SearchResponse EngineIndex::search_core(std::span<const int> query,
                                        std::size_t k, std::uint64_t ordinal,
                                        bool in_query_pool) const {
  // Inside a request fan-out the engine's row loop must stay serial so
  // pools never nest; otherwise its own work-size heuristic applies.
  const std::optional<bool> parallel_rows =
      in_query_pool ? std::optional<bool>(false) : std::nullopt;
  const auto results = engine_.search_hits_at(query, k, ordinal,
                                              parallel_rows);
  SearchResponse response;
  response.hits.reserve(results.size());
  for (const auto& r : results) {
    Hit hit;
    hit.global_row = r.nearest;
    hit.bank = 0;
    hit.sensed_current_a = r.winner_current_a;
    hit.margin_a = r.margin_a;
    hit.nominal_distance = r.nominal_distance;
    response.hits.push_back(hit);
  }
  return response;
}

void EngineIndex::validate_backend_query(std::span<const int> query) const {
  engine_.validate_query(query);
}

bool EngineIndex::inner_fan_for_batch(std::size_t batch_size) const {
  return engine_.inner_fan_for_batch(batch_size);
}

}  // namespace ferex::serve
