// Typed request rejections for the serving stack, under one base.
//
// The front doors reject requests for five distinct reasons — queue at
// depth, session shut down, nothing live to search, synchronous
// mutation of a served index, and (v2) a deadline the request cannot
// make. Before this header each was a bare std::runtime_error /
// std::logic_error subclass scattered across am_index.hpp and
// async_index.hpp, so a load generator had to catch five types to shed
// politely. Every rejection now derives from serve::RejectedRequest and
// carries a RejectReason, so callers can catch one type and switch on
// the reason; the concrete types remain for call sites that care about
// exactly one failure mode.
//
// A rejection means the request was never admitted (or, for a
// dispatch-time deadline shed, never served): nothing was consumed, no
// ordinal moved, the index is unchanged. Errors that signal corrupted
// or inconsistent state (CorruptLog, SnapshotMismatch) are deliberately
// NOT rejections — they describe the index, not the request — and keep
// their own bases.
#pragma once

#include <stdexcept>
#include <string>

namespace ferex::serve {

/// Why a request was turned away. Stable order — the bench JSON and the
/// load generator report these by name.
enum class RejectReason {
  kOverloaded,           ///< queue at depth (admission control)
  kShutDown,             ///< submitted after shutdown()
  kEmptyIndex,           ///< nothing live to search
  kMutationWhileServed,  ///< synchronous mutation of an async-owned index
  kDeadlineExceeded,     ///< deadline_us budget already missed (v2)
};

constexpr const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kOverloaded:
      return "overloaded";
    case RejectReason::kShutDown:
      return "shut_down";
    case RejectReason::kEmptyIndex:
      return "empty_index";
    case RejectReason::kMutationWhileServed:
      return "mutation_while_served";
    case RejectReason::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

/// Common base of every typed request rejection the serving layer
/// throws. Catch this to shed on any reason; reason() says which.
class RejectedRequest : public std::runtime_error {  // ferex-lint: allow(rejection-base)
 public:
  RejectedRequest(RejectReason reason, const std::string& what)
      : std::runtime_error(what), reason_(reason) {}

  RejectReason reason() const noexcept { return reason_; }

 private:
  RejectReason reason_;
};

/// Admission rejection: the request queue is at queue_depth (or the
/// request's class is at its AdmissionPolicy share). Fail-fast by
/// design — submit never blocks the caller.
class Overloaded : public RejectedRequest {
 public:
  explicit Overloaded(const std::string& what)
      : RejectedRequest(RejectReason::kOverloaded, what) {}
};

/// Submission after shutdown() — the front door is closed for good.
class ShutDown : public RejectedRequest {
 public:
  explicit ShutDown(const std::string& what)
      : RejectedRequest(RejectReason::kShutDown, what) {}
};

/// Typed rejection for an index with no live rows (never stored, or
/// every row removed): no k is valid, and the caller should distinguish
/// "your k is too big" from "there is nothing to search".
class EmptyIndex : public RejectedRequest {
 public:
  explicit EmptyIndex(const std::string& what)
      : RejectedRequest(RejectReason::kEmptyIndex, what) {}
};

/// Typed rejection of a synchronous mutation (configure/store/insert/
/// remove/update — and ordinal-consuming synchronous serving) while an
/// AsyncAmIndex owns the index: the async front door owns ordinal
/// accounting and its dispatchers read the index concurrently, so a
/// direct mutation would silently race them. Route the write through
/// AsyncAmIndex::submit_remove/submit_update instead, or shut the async
/// session down first.
class MutationWhileServed : public RejectedRequest {
 public:
  explicit MutationWhileServed(const std::string& what)
      : RejectedRequest(RejectReason::kMutationWhileServed, what) {}
};

/// Deadline shed (v2): the request carried a deadline_us budget it has
/// already missed — at submit, when the queue-wait estimate alone
/// exceeds the budget, or at dispatch, when the measured queue wait
/// did. Thrown from submit in the first case, surfaced through the
/// future in the second. Serving it would burn backend time on an
/// answer the caller has stopped waiting for.
class DeadlineExceeded : public RejectedRequest {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : RejectedRequest(RejectReason::kDeadlineExceeded, what) {}
};

}  // namespace ferex::serve
