#include "serve/durable.hpp"

#include <stdexcept>
#include <utility>

#include "serve/banked_index.hpp"
#include "serve/engine_index.hpp"
#include "serve/snapshot.hpp"
#include "util/durable_file.hpp"
#include "util/failpoint.hpp"

namespace ferex::serve {

namespace {

void apply_record(AmIndex& index, const WalRecord& record) {
  switch (record.op) {
    case WalOp::kConfigure:
      if (record.composite) {
        auto* engine_index = dynamic_cast<EngineIndex*>(&index);
        if (engine_index == nullptr) {
          // Not a deterministic live failure (the live run journaled
          // this through an EngineIndex): recovering into the wrong
          // backend must surface, not be swallowed as a replayed no-op.
          throw SnapshotMismatch(
              "WAL has a composite configure, index is not a single macro");
        }
        engine_index->configure_composite(record.metric, record.bits);
      } else {
        index.configure(record.metric, record.bits);
      }
      break;
    case WalOp::kStore:
      index.store(record.vectors);
      break;
    case WalOp::kInsert:
      index.insert(record.vectors.front());
      break;
    case WalOp::kRemove:
      index.remove(record.row);
      break;
    case WalOp::kUpdate:
      index.update(record.row, record.vectors.front());
      break;
  }
}

}  // namespace

std::uint64_t recover_index(AmIndex& index, const std::string& dir) {
  const std::string snapshot_path = dir + "/snapshot.ferex";
  const std::string wal_path = dir + "/wal.ferex";

  std::uint64_t watermark = 0;
  std::vector<std::uint8_t> bytes;
  if (util::read_file(snapshot_path, bytes)) {
    watermark = install_snapshot(index, bytes);
  }

  // A torn tail is the signature of a crash mid-append: the op was never
  // acknowledged as applied, so dropping it is the correct recovery.
  // Anything else malformed throws CorruptLog from the scan below.
  repair_wal(wal_path);
  const WalReadResult scan = read_wal(wal_path);
  std::uint64_t last = watermark;
  for (const WalRecord& record : scan.records) {
    // Watermark skip makes replay idempotent: records the snapshot
    // already reflects (or a second replay of the same log) are no-ops.
    if (record.seq <= watermark) continue;
    try {
      apply_record(index, record);
    } catch (const SnapshotMismatch&) {
      throw;
    } catch (const std::logic_error&) {
      // Deterministic validation failure (double remove, bad vector,
      // out-of-range row...): the live run journaled the op before it
      // failed identically, so the replayed no-op *is* bit-identity.
    }
    last = record.seq;
  }
  return last;
}

DurableIndex::DurableIndex(AmIndex& index, std::string dir,
                           DurableOptions options)
    : index_(index), dir_(std::move(dir)), options_(options) {
  const std::uint64_t last = recover_index(index_, dir_);
  wal_ = std::make_unique<Wal>(wal_path(), options_.sync, last + 1);
}

void DurableIndex::assert_sync_ownership() {
  // The guarded serial setter runs check_mutable and changes nothing:
  // it throws the typed MutationWhileServed while an AsyncAmIndex owns
  // the index, before this mutation journals anything.
  index_.set_query_serial(index_.query_serial());
}

void DurableIndex::configure(csp::DistanceMetric metric, int bits) {
  assert_sync_ownership();
  wal_->append_configure(metric, bits, /*composite=*/false);
  index_.configure(metric, bits);
}

void DurableIndex::configure_composite(csp::DistanceMetric metric, int bits) {
  auto* engine_index = dynamic_cast<EngineIndex*>(&index_);
  if (engine_index == nullptr) {
    throw std::invalid_argument(
        "DurableIndex::configure_composite: single-macro backend required");
  }
  assert_sync_ownership();
  wal_->append_configure(metric, bits, /*composite=*/true);
  engine_index->configure_composite(metric, bits);
}

void DurableIndex::store(const std::vector<std::vector<int>>& database) {
  assert_sync_ownership();
  wal_->append_store(database);
  index_.store(database);
}

WriteReceipt DurableIndex::insert(std::span<const int> vector) {
  assert_sync_ownership();
  wal_->append_insert(vector);
  return index_.insert(vector);
}

WriteReceipt DurableIndex::remove(std::size_t global_row) {
  assert_sync_ownership();
  wal_->append_remove(global_row);
  WriteReceipt receipt = index_.remove(global_row);
  maybe_compact();
  return receipt;
}

WriteReceipt DurableIndex::update(std::size_t global_row,
                                  std::span<const int> vector) {
  assert_sync_ownership();
  wal_->append_update(global_row, vector);
  return index_.update(global_row, vector);
}

void DurableIndex::checkpoint() {
  assert_sync_ownership();
  const std::uint64_t watermark = last_seq();
  util::failpoint_hit("durable.checkpoint.before_snapshot");
  save_snapshot(index_, snapshot_path(), watermark);
  util::failpoint_hit("durable.checkpoint.after_snapshot");
  // Rotate: every journaled record is at or below the watermark now, so
  // the log restarts empty. A crash anywhere in this window recovers —
  // the snapshot write is atomic (old or new, never mixed), and replay
  // skips records at or below the installed snapshot's watermark.
  wal_->close();
  util::remove_file(wal_path());
  wal_ = std::make_unique<Wal>(wal_path(), options_.sync, watermark + 1);
}

std::size_t DurableIndex::compact() {
  assert_sync_ownership();
  std::size_t freed = 0;
  if (auto* engine_index = dynamic_cast<EngineIndex*>(&index_)) {
    freed = engine_index->engine().compact();
  } else if (auto* banked_index = dynamic_cast<BankedIndex*>(&index_)) {
    freed = banked_index->banked().compact();
  } else {
    throw std::invalid_argument("DurableIndex::compact: unsupported backend");
  }
  // Compaction is not a journaled op (it rewrites physical layout, not
  // logical content): the checkpoint snapshot captures the compacted
  // state instead, so recovery never replays across the rewrite.
  checkpoint();
  return freed;
}

void DurableIndex::maybe_compact() {
  if (options_.compact_free_fraction <= 0.0) return;
  const std::size_t stored = index_.stored_count();
  if (stored == 0) return;
  const std::size_t freed = stored - index_.live_count();
  if (static_cast<double>(freed) <
      options_.compact_free_fraction * static_cast<double>(stored)) {
    return;
  }
  compact();
}

}  // namespace ferex::serve
