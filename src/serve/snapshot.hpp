// Versioned, checksummed binary snapshots of full index state.
//
// A snapshot captures everything a warm restart needs for bit-identical
// serving: the stored database, the live (tombstone) mask, the
// per-device fabrication arrays (Vth offsets, resistances), the engine
// and serving ordinal counters, the variation-RNG stream position, and
// the WAL watermark (last applied sequence number). Restoring it into a
// freshly constructed index with the same options reproduces currents
// and hits bit for bit — including the variation draws of every
// subsequent insert.
//
// On-disk layout (little-endian):
//
//   magic "FEREXSNP" | u32 version | u32 crc(payload) | u64 payload size
//   payload: u8 backend kind, u8 fidelity, u8 composite, u32 metric,
//            u32 bits, u64 wal watermark, u64 serving query serial,
//            backend state (engine: geometry + database + live mask +
//            rng + fabrication arrays; banked: bank_rows + per-bank
//            offsets and engine states)
//
// Error taxonomy: any malformed byte (truncation, oversize, bit flip)
// is a typed encode::CorruptSnapshot naming the offset; a *valid*
// snapshot taken under a different backend, fidelity, or geometry is a
// typed SnapshotMismatch naming what differs. Never UB, never a
// silently wrong index.
//
// Options are not serialized: the caller constructs the index with the
// deployment's own FerexOptions/BankedOptions; load re-runs configure()
// with the recorded metric/bits before installing state.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/am_index.hpp"

namespace ferex::serve {

/// A structurally valid snapshot that does not fit the index it is
/// being restored into (wrong backend kind, fidelity, or geometry).
/// Index-state damage, not a request rejection, so it deliberately
/// does not derive from RejectedRequest.
class SnapshotMismatch : public std::runtime_error {  // ferex-lint: allow(rejection-base)
 public:
  explicit SnapshotMismatch(const std::string& what)
      : std::runtime_error("snapshot mismatch: " + what) {}
};

/// Serializes the full state of an EngineIndex or BankedIndex (other
/// backends throw std::invalid_argument). `wal_watermark` is the last
/// WAL sequence number already reflected in this state.
std::vector<std::uint8_t> encode_snapshot(const AmIndex& index,
                                          std::uint64_t wal_watermark);

/// Decodes and installs a snapshot into a freshly constructed index of
/// the matching backend kind, re-running configure() with the recorded
/// metric/bits. Returns the WAL watermark. Throws encode::CorruptSnapshot
/// on malformed bytes, SnapshotMismatch on a wrong-backend/fidelity/
/// geometry snapshot.
std::uint64_t install_snapshot(AmIndex& index,
                               const std::vector<std::uint8_t>& bytes);

/// encode_snapshot + crash-safe write (util::atomic_write_file): a crash
/// mid-save leaves the previous snapshot intact.
void save_snapshot(const AmIndex& index, const std::string& path,
                   std::uint64_t wal_watermark);

/// Reads and installs `path`. Throws std::system_error when the file is
/// missing (recovery decides whether a cold start is acceptable via
/// util::read_file directly — see serve::recover_index).
std::uint64_t load_snapshot(AmIndex& index, const std::string& path);

}  // namespace ferex::serve
