// Write-ahead log for the mutable serving path.
//
// Every mutation (configure / store / insert / remove / update) is
// journaled as one CRC-framed record *before* it applies, so a crash at
// any instant loses at most unacknowledged work and recovery replays the
// exact serialized order. Async writes are journaled at epoch-assignment
// time (inside AsyncAmIndex::admit_write, under the submit mutex), so
// the log order equals the write-epoch order equals the apply order.
//
// On-disk layout (all little-endian):
//
//   header:  8-byte magic "FEREXWAL", u32 version
//   record:  u32 length | u32 crc | payload[length]
//            crc = CRC-32 over (length bytes || payload)
//   payload: u64 seq, u8 opcode, operands (see WalOp)
//
// Recovery semantics:
//   * a torn tail — an incomplete final record (length header cut short,
//     payload shorter than its length, or a CRC mismatch on the final
//     record) — is dropped by truncating at the last valid record;
//   * corruption anywhere *before* the tail is a typed CorruptLog
//     naming the byte offset — never UB, never a silently wrong replay;
//   * sequence numbers are consecutive within a log; the snapshot's
//     watermark (last applied seq) makes replay idempotent — records at
//     or below it are skipped, so replaying the same log twice is a
//     no-op past the watermark.
//
// All file I/O goes through util::durable_file (the raw-file-io lint
// rule keeps fopen/ofstream out of src/serve).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "csp/distance_matrix.hpp"
#include "util/durable_file.hpp"

namespace ferex::serve {

/// Malformed WAL bytes before the tail (a torn tail is not an error —
/// it recovers by truncation). `offset()` is the byte position of the
/// corrupt record within the log file. Not a request rejection — no
/// caller retries past corruption — so it stays off RejectedRequest.
class CorruptLog : public std::runtime_error {  // ferex-lint: allow(rejection-base)
 public:
  CorruptLog(std::uint64_t offset, const std::string& what)
      : std::runtime_error("corrupt WAL at byte " + std::to_string(offset) +
                           ": " + what),
        offset_(offset) {}

  std::uint64_t offset() const noexcept { return offset_; }

 private:
  std::uint64_t offset_;
};

/// Journaled operation kinds.
enum class WalOp : std::uint8_t {
  kConfigure = 1,  ///< metric/bits (+ composite flag)
  kStore = 2,      ///< full database replace
  kInsert = 3,     ///< one vector
  kRemove = 4,     ///< one global row
  kUpdate = 5,     ///< one global row + vector
};

/// One decoded log record.
struct WalRecord {
  std::uint64_t seq = 0;
  WalOp op = WalOp::kInsert;
  std::size_t row = 0;                     ///< remove / update
  std::vector<std::vector<int>> vectors;   ///< store (n) / insert / update (1)
  csp::DistanceMetric metric = csp::DistanceMetric::kHamming;  ///< configure
  int bits = 0;                            ///< configure
  bool composite = false;                  ///< configure
};

/// Result of scanning a log file.
struct WalReadResult {
  std::vector<WalRecord> records;
  std::uint64_t valid_bytes = 0;  ///< end offset of the last valid record
  bool torn_tail = false;         ///< trailing bytes after valid_bytes
};

/// Scans `path`. A missing file yields an empty result; a torn tail is
/// reported (not repaired) via `torn_tail`/`valid_bytes`; corruption
/// before the tail throws CorruptLog with the offset.
WalReadResult read_wal(const std::string& path);

/// Truncates a torn tail in place (no-op on a clean or missing log).
/// Returns the bytes dropped.
std::uint64_t repair_wal(const std::string& path);

/// Append-side handle. Appends are not internally synchronized: callers
/// serialize them (the sync front door is single-threaded by the
/// MutationWhileServed guard; the async front door journals under its
/// submit mutex).
class Wal {
 public:
  /// Opens `path` for append (creating it, with a fresh header, when
  /// missing or empty). `next_seq` seeds the sequence counter — after
  /// recovery, pass one past the last replayed record.
  Wal(std::string path, util::SyncPolicy policy, std::uint64_t next_seq = 1);

  /// Each append journals one record and returns its sequence number.
  std::uint64_t append_configure(csp::DistanceMetric metric, int bits,
                                 bool composite);
  std::uint64_t append_store(const std::vector<std::vector<int>>& database);
  std::uint64_t append_insert(std::span<const int> vector);
  std::uint64_t append_remove(std::size_t global_row);
  std::uint64_t append_update(std::size_t global_row,
                              std::span<const int> vector);

  /// Sequence number the next append will use.
  std::uint64_t next_seq() const noexcept { return next_seq_; }

  /// Bytes in the log (header + records appended or pre-existing).
  std::uint64_t size() const noexcept { return file_.size(); }

  const std::string& path() const noexcept { return file_.path(); }

  /// Flushes and closes; further appends throw.
  void close() { file_.close(); }

 private:
  std::uint64_t append_record(const WalRecord& record);

  util::AppendFile file_;
  std::uint64_t next_seq_;
};

}  // namespace ferex::serve
