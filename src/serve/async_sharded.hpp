// AsyncShardedIndex — shard-local write queues over a ShardedIndex.
//
// One AsyncAmIndex serializes every write against every search through
// a single queue's write epochs: a burst of updates anywhere stalls
// p95 search latency everywhere. AsyncShardedIndex gives each shard its
// own AsyncAmIndex session, so a write to shard A never stalls searches
// that only touch shard B — while a scatter-gather search still orders
// against writes on every shard it reads, because its per-shard
// sub-requests ride those shards' queues and write epochs. Batch
// coalescing stays per-shard for the same reason.
//
// Ordinals: the fleet keeps ONE search ordinal stream (seeded from the
// ShardedIndex's query serial at construction, handed back at
// shutdown). Every accepted search takes its ordinal at submission
// under the fleet submit mutex and pins it onto each per-shard
// sub-request, so responses are bit-identical to the synchronous
// ShardedIndex serving the same requests in submission order — shard
// queues, coalescing, and dispatcher interleaving never change a
// result. Writes consume no search ordinals.
//
// Routing shadow: the fleet validates and routes writes against its own
// shadow of the routing state (per-shard stored/live counts, the freed
// global-row set) under the submit mutex. The shadow is exact, not a
// heuristic: the fleet owns both front doors (the ShardedIndex and
// every shard are async-claimed, so no other mutator exists), every
// accepted write is fully validated at submission (slot range,
// liveness, vector length, alphabet — a difference from AsyncAmIndex,
// which defers state-dependent checks: here the shadow IS the state the
// op will see, because each shard's queue applies its sub-ops in
// submission order), and therefore every accepted write succeeds and
// advances the shadow exactly as it advances the shard. Rejected
// submissions (Overloaded / ShutDown / validation) consume nothing.
//
// Completion handles: submit() returns a Ticket whose get() gathers the
// per-shard futures on the calling thread and k-way merges them through
// the exact same ShardedIndex merge core the synchronous path uses
// (hits remapped to global rows, bank = shard, cross-shard margin
// reconstruction). submit_shard() returns a single-shard Ticket — the
// surface the write-interference bench drives. Write submissions return
// a PendingWrite whose receipt carries the global row and shard decided
// at submission time.
//
// Durability: pass one Wal per shard (DurableShardedIndex::shard_wal)
// and each shard session journals its sub-ops — in shard-local
// coordinates, at epoch-assignment time — into its own shard log,
// exactly as AsyncAmIndex + DurableIndex compose for one index.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "serve/async_index.hpp"
#include "serve/sharded_index.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ferex::serve {

class AsyncShardedIndex {
 public:
  /// A scatter-gather search in flight: one future per live shard (or
  /// exactly one for submit_shard). get() blocks for every part on the
  /// calling thread, then merges — call it once. If any part failed,
  /// the first error rethrows after all parts settle.
  class Ticket {
   public:
    SearchResponse get();

    Ticket(Ticket&&) = default;
    Ticket& operator=(Ticket&&) = default;

   private:
    friend class AsyncShardedIndex;
    static constexpr std::size_t kAllShards = static_cast<std::size_t>(-1);
    Ticket(const AsyncShardedIndex* owner, std::size_t k, std::size_t shards,
           std::size_t single_shard)
        : owner_(owner), k_(k), shards_(shards), single_shard_(single_shard) {}

    const AsyncShardedIndex* owner_;
    std::size_t k_;
    std::size_t shards_;
    /// kAllShards for scatter-gather; a shard index for submit_shard.
    std::size_t single_shard_;
    std::vector<std::pair<std::size_t, std::future<SearchResponse>>> parts_;
  };

  /// A routed write in flight. get() surfaces the shard session's
  /// receipt with the fleet coordinates decided at submission.
  class PendingWrite {
   public:
    WriteReceipt get() {
      WriteReceipt receipt = future_.get();
      receipt.global_row = global_row_;
      receipt.bank = shard_;
      return receipt;
    }
    std::size_t global_row() const noexcept { return global_row_; }
    std::size_t shard() const noexcept { return shard_; }

   private:
    friend class AsyncShardedIndex;
    PendingWrite(std::size_t global_row, std::size_t shard,
                 std::future<WriteReceipt> future)
        : global_row_(global_row), shard_(shard), future_(std::move(future)) {}

    std::size_t global_row_;
    std::size_t shard_;
    std::future<WriteReceipt> future_;
  };

  /// Claims the fleet and every shard, snapshots the routing shadow
  /// from the quiescent ShardedIndex, and opens one AsyncAmIndex per
  /// shard with `base` options (each shard gets its own queue,
  /// dispatchers, and coalescing). `shard_wals`, when non-empty, must
  /// hold one Wal per shard (nullptr entries allowed); each shard
  /// session journals into its own log. The ShardedIndex (and the Wals)
  /// must outlive this object.
  explicit AsyncShardedIndex(ShardedIndex& sharded, AsyncOptions base = {},
                             std::span<Wal* const> shard_wals = {});

  ~AsyncShardedIndex();

  AsyncShardedIndex(const AsyncShardedIndex&) = delete;
  AsyncShardedIndex& operator=(const AsyncShardedIndex&) = delete;

  /// Scatter-gather search: validates against the shadow (typed
  /// EmptyIndex when no shard has live rows; k bounded by the fleet's
  /// live count; query length against the fleet dims — per-shard
  /// backend checks run in the shard sessions), takes one fleet
  /// ordinal, and submits one pinned sub-request per live shard.
  /// Overloaded from any shard queue rejects the whole search with the
  /// serial unmoved (already-queued sibling sub-searches are const
  /// pinned-ordinal reads whose results are dropped — harmless).
  Ticket submit(SearchRequest request);

  /// Serves against a single shard only: consumes one fleet ordinal
  /// (the same stream scatter-gather uses), validates against that
  /// shard's shadow, and never touches any other shard's queue — a
  /// write stalling shard A leaves this path on shard B unaffected.
  Ticket submit_shard(std::size_t shard, const SearchRequest& request);

  /// Routed streaming insert: reuses the lowest freed global row before
  /// appending at the fleet's stored count, exactly as the synchronous
  /// ShardedIndex. Fully validated at submission (see the file
  /// comment); the receipt's destination is decided here.
  PendingWrite submit_insert(std::vector<int> vector);

  /// Routed deletion (out_of_range on a bad global row, logic_error on
  /// a double remove — at submission, where the shadow is exact).
  PendingWrite submit_remove(std::size_t global_row);

  /// Routed in-place overwrite; revives a freed slot.
  PendingWrite submit_update(std::size_t global_row, std::vector<int> vector);

  /// Shuts every shard session down (draining their queues — all
  /// futures complete), then hands the fleet serial back to the
  /// ShardedIndex and returns it to synchronous use. Idempotent.
  void shutdown();

  bool shut_down() const;

  /// Ordinal the next unpinned search submission will take.
  std::uint64_t query_serial() const;

  /// The per-shard session, for stats and tuning introspection.
  const AsyncAmIndex& shard_session(std::size_t shard) const {
    return *sessions_.at(shard);
  }

  std::size_t shard_count() const noexcept { return sessions_.size(); }

 private:
  /// The gather half, shared with Ticket: dead/unqueried shards hold
  /// empty parts. Routes through ShardedIndex's own merge core so async
  /// results are structurally bit-identical to the sync path.
  static SearchResponse merge_parts(const ShardedIndex& sharded,
                                    std::span<const SearchResponse> parts,
                                    std::size_t k, std::size_t single_shard);

  std::size_t shadow_live_total() const REQUIRES(submit_mutex_);
  void check_open() const REQUIRES(submit_mutex_);
  void validate_vector(std::span<const int> vector) const
      REQUIRES(submit_mutex_);

  ShardedIndex& sharded_;
  std::vector<std::unique_ptr<AsyncAmIndex>> sessions_;

  /// Guards the fleet ordinal stream and the routing shadow; makes
  /// admission + ordinal assignment + shadow advance atomic.
  mutable util::Mutex submit_mutex_;
  std::uint64_t serial_ GUARDED_BY(submit_mutex_) = 0;
  bool shutdown_ GUARDED_BY(submit_mutex_) = false;
  /// Routing shadow (see the file comment): exact per-shard state as of
  /// every accepted write.
  std::vector<std::size_t> shadow_live_ GUARDED_BY(submit_mutex_);
  std::size_t shadow_total_ GUARDED_BY(submit_mutex_) = 0;
  std::set<std::size_t> shadow_free_ GUARDED_BY(submit_mutex_);
  std::size_t shadow_dims_ GUARDED_BY(submit_mutex_) = 0;
  /// Logical alphabet of the fleet's configured encoding (0 when the
  /// fleet is unconfigured — inserts are then rejected outright).
  std::size_t alphabet_ GUARDED_BY(submit_mutex_) = 0;
  bool configured_ GUARDED_BY(submit_mutex_) = false;
};

}  // namespace ferex::serve
