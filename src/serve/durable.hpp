// Durable serving: WAL-fronted mutations, checkpoints, and recovery.
//
// DurableIndex wraps an AmIndex with the write-ahead protocol: every
// synchronous mutation journals one WAL record *before* it applies, so
// a crash at any instant is recoverable to the exact serialized state —
// recovery (snapshot + replay) is bit-identical, currents and hits, to
// the uninterrupted run. Asynchronous sessions journal through the same
// log: hand wal() to AsyncAmIndex (AsyncOptions::wal), which appends at
// epoch-assignment time under its submit mutex, so log order equals
// write-epoch order equals apply order.
//
//   serve::EngineIndex index(options);
//   serve::DurableIndex durable(index, "/data/ferex");   // recovers
//   durable.configure(csp::DistanceMetric::kHamming, 2); // journaled
//   durable.store(db);                                   // journaled
//   durable.insert(vec);  durable.remove(3);             // journaled
//   durable.checkpoint();  // snapshot + WAL rotation
//
// Failed mutations are journaled too (the record lands before
// validation inside the backend): replay re-applies the record, fails
// with the same typed error, and swallows it — exactly the no-op the
// live run saw. Compaction is not journaled; it checkpoints instead
// (the snapshot captures the compacted layout, provably bit-identical
// to a fresh store() of the survivors).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "serve/am_index.hpp"
#include "serve/wal.hpp"

namespace ferex::serve {

struct DurableOptions {
  /// WAL fsync policy: kEveryAppend makes every acknowledged mutation
  /// durable (commit == stable storage); kOnClose/kNever trade the tail
  /// for append throughput (bench_serve --durability quantifies it).
  util::SyncPolicy sync = util::SyncPolicy::kEveryAppend;

  /// After a remove, compact (and checkpoint) when the freed-slot
  /// fraction reaches this threshold. 0 disables the trigger; compact()
  /// stays available manually.
  double compact_free_fraction = 0.0;
};

/// Replays `dir`'s durable state (snapshot, if any, then WAL records
/// past its watermark; a torn WAL tail is truncated first) into a
/// freshly constructed index. Returns the last applied sequence number
/// (0 when the directory holds no state — a cold start). Throws
/// encode::CorruptSnapshot / CorruptLog / SnapshotMismatch on damage
/// that truncation cannot explain.
std::uint64_t recover_index(AmIndex& index, const std::string& dir);

class DurableIndex {
 public:
  /// Recovers `index` from `dir` (which must exist), then opens the WAL
  /// for append, continuing the recovered sequence numbering.
  DurableIndex(AmIndex& index, std::string dir, DurableOptions options = {});

  /// Journaled mutations — same semantics and exceptions as the wrapped
  /// index's entry points, with one WAL record appended first.
  void configure(csp::DistanceMetric metric, int bits);
  /// Journaled EngineIndex::configure_composite (throws
  /// std::invalid_argument on any other backend, before journaling).
  void configure_composite(csp::DistanceMetric metric, int bits);
  void store(const std::vector<std::vector<int>>& database);
  WriteReceipt insert(std::span<const int> vector);
  WriteReceipt remove(std::size_t global_row);
  WriteReceipt update(std::size_t global_row, std::span<const int> vector);

  /// Snapshot the full index state, then rotate the WAL (records at or
  /// below the snapshot's watermark are dropped). Crash-safe at every
  /// instant: the snapshot write is atomic, and replay past the
  /// watermark is idempotent.
  void checkpoint();

  /// Tombstone compaction (backend compact(), bit-identical to a fresh
  /// store() of the survivors) followed by a checkpoint. Returns the
  /// slots reclaimed.
  std::size_t compact();

  /// Last journaled sequence number (every earlier record is applied or
  /// deterministically failed).
  std::uint64_t last_seq() const noexcept { return wal_->next_seq() - 1; }

  AmIndex& index() noexcept { return index_; }
  const AmIndex& index() const noexcept { return index_; }

  /// The live WAL — pass to AsyncOptions::wal for async journaling.
  Wal& wal() noexcept { return *wal_; }

  std::string snapshot_path() const { return dir_ + "/snapshot.ferex"; }
  std::string wal_path() const { return dir_ + "/wal.ferex"; }

 private:
  /// Asserts the synchronous mutation capability (throws
  /// MutationWhileServed while an AsyncAmIndex owns the index) before
  /// anything is journaled — a rejected mutation must leave no record.
  void assert_sync_ownership();
  void maybe_compact();

  AmIndex& index_;
  std::string dir_;
  DurableOptions options_;
  std::unique_ptr<Wal> wal_;
};

}  // namespace ferex::serve
