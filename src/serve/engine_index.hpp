// AmIndex over a single FeReX macro (core::FerexEngine).
//
// The smallest serving deployment: one crossbar, bank 0 for every hit.
// Unbounded streaming inserts grow the one array row by row — callers
// that want the paper's bounded-macro geometry (and multi-bank fan-out)
// serve through BankedIndex instead.
#pragma once

#include "core/ferex.hpp"
#include "serve/am_index.hpp"

namespace ferex::serve {

class EngineIndex final : public AmIndex {
 public:
  explicit EngineIndex(core::FerexOptions options = {});

  void configure(csp::DistanceMetric metric, int bits) override;
  /// Composite (digit-decomposed) encodings — the scalable path for
  /// separable metrics past the exact CSP's reach. Engine-only: the
  /// banked layer configures per-bank monolithic encodings.
  void configure_composite(csp::DistanceMetric metric, int bits);
  void store(const std::vector<std::vector<int>>& database) override;
  InsertReceipt insert(std::span<const int> vector) override;

  std::size_t stored_count() const noexcept override;
  std::size_t dims() const noexcept override;
  std::size_t bank_count() const noexcept override { return 1; }

  /// The wrapped engine, for cost models and encoding introspection the
  /// serving surface does not abstract.
  core::FerexEngine& engine() noexcept { return engine_; }
  const core::FerexEngine& engine() const noexcept { return engine_; }

 protected:
  SearchResponse search_core(std::span<const int> query, std::size_t k,
                             std::uint64_t ordinal,
                             bool in_query_pool) const override;
  void validate_backend_query(std::span<const int> query) const override;
  bool inner_fan_for_batch(std::size_t batch_size) const override;

 private:
  core::FerexEngine engine_;
};

}  // namespace ferex::serve
