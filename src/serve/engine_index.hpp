// AmIndex over a single FeReX macro (core::FerexEngine).
//
// The smallest serving deployment: one crossbar, bank 0 for every hit.
// Unbounded streaming inserts grow the one array row by row — callers
// that want the paper's bounded-macro geometry (and multi-bank fan-out)
// serve through BankedIndex instead.
#pragma once

#include "core/ferex.hpp"
#include "serve/am_index.hpp"

namespace ferex::serve {

class EngineIndex final : public AmIndex {
 public:
  explicit EngineIndex(core::FerexOptions options = {});

  /// Composite (digit-decomposed) encodings — the scalable path for
  /// separable metrics past the exact CSP's reach. Engine-only: the
  /// banked layer configures per-bank monolithic encodings. Guarded
  /// like every other mutation.
  void configure_composite(csp::DistanceMetric metric, int bits);

  std::size_t stored_count() const noexcept override;
  std::size_t live_count() const noexcept override;
  std::size_t dims() const noexcept override;
  std::size_t bank_count() const noexcept override { return 1; }

  /// The wrapped engine, for cost models and encoding introspection the
  /// serving surface does not abstract.
  core::FerexEngine& engine() noexcept { return engine_; }
  const core::FerexEngine& engine() const noexcept { return engine_; }

 protected:
  void do_configure(csp::DistanceMetric metric, int bits) override;
  void do_store(const std::vector<std::vector<int>>& database) override;
  WriteReceipt do_insert(std::span<const int> vector) override;
  WriteReceipt do_remove(std::size_t global_row) override;
  WriteReceipt do_update(std::size_t global_row,
                         std::span<const int> vector) override;
  SearchResponse search_core(std::span<const int> query, std::size_t k,
                             std::uint64_t ordinal,
                             bool in_query_pool) const override;
  void validate_backend_query(std::span<const int> query) const override;
  bool inner_fan_for_batch(std::size_t batch_size) const override;

 private:
  core::FerexEngine engine_;
};

}  // namespace ferex::serve
