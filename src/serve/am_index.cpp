#include "serve/am_index.hpp"

#include <stdexcept>

#include "util/parallel.hpp"

namespace ferex::serve {

void AmIndex::validate_request(const SearchRequest& request) const {
  if (request.k == 0 || request.k > stored_count()) {
    throw std::invalid_argument("AmIndex: request.k out of range");
  }
  validate_backend_query(request.query);
}

SearchResponse AmIndex::search(const SearchRequest& request) {
  // Validate before consuming an ordinal, so a rejected request leaves
  // the noise-stream sequence exactly where it was.
  validate_request(request);
  const std::uint64_t ordinal =
      request.ordinal ? *request.ordinal : query_serial_++;
  return search_core(request.query, request.k, ordinal,
                     /*in_query_pool=*/false);
}

SearchResponse AmIndex::search_at(const SearchRequest& request,
                                  std::uint64_t ordinal) const {
  validate_request(request);
  return search_core(request.query, request.k, ordinal,
                     /*in_query_pool=*/false);
}

std::vector<SearchResponse> AmIndex::search_batch(
    std::span<const SearchRequest> requests) {
  if (requests.empty()) return {};
  // Whole-batch validation up front: a rejected batch consumes nothing.
  for (const auto& request : requests) validate_request(request);
  std::vector<std::uint64_t> ordinals(requests.size());
  std::uint64_t next = query_serial_;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ordinals[i] = requests[i].ordinal ? *requests[i].ordinal : next++;
  }
  query_serial_ = next;
  return dispatch_batch(requests, ordinals);
}

std::vector<SearchResponse> AmIndex::search_batch_at(
    std::span<const SearchRequest> requests,
    std::span<const std::uint64_t> ordinals) const {
  if (requests.size() != ordinals.size()) {
    throw std::invalid_argument(
        "AmIndex::search_batch_at: requests/ordinals size mismatch");
  }
  if (requests.empty()) return {};
  for (const auto& request : requests) validate_request(request);
  return dispatch_batch(requests, ordinals);
}

std::vector<SearchResponse> AmIndex::dispatch_batch(
    std::span<const SearchRequest> requests,
    std::span<const std::uint64_t> ordinals) const {
  std::vector<SearchResponse> responses(requests.size());
  if (inner_fan_for_batch(requests.size())) {
    // The batch alone cannot saturate the pool: keep requests serial and
    // let each one fan its rows/banks (bit-identical either way).
    for (std::size_t i = 0; i < requests.size(); ++i) {
      responses[i] = search_core(requests[i].query, requests[i].k,
                                 ordinals[i], /*in_query_pool=*/false);
    }
    return responses;
  }
  util::parallel_for(requests.size(), [&](std::size_t i) {
    responses[i] = search_core(requests[i].query, requests[i].k, ordinals[i],
                               /*in_query_pool=*/true);
  });
  return responses;
}

}  // namespace ferex::serve
