#include "serve/am_index.hpp"

#include <stdexcept>

#include "util/parallel.hpp"

namespace ferex::serve {

void AmIndex::check_mutable(const char* op) const {
  if (async_owned_.load(std::memory_order_acquire)) {
    throw MutationWhileServed(
        std::string("AmIndex::") + op +
        ": index is owned by a live AsyncAmIndex — submit the write "
        "through it (or shut it down first)");
  }
}

void AmIndex::configure(csp::DistanceMetric metric, int bits) {
  check_mutable("configure");
  do_configure(metric, bits);
}

void AmIndex::store(const std::vector<std::vector<int>>& database) {
  check_mutable("store");
  do_store(database);
}

WriteReceipt AmIndex::insert(std::span<const int> vector) {
  check_mutable("insert");
  return do_insert(vector);
}

WriteReceipt AmIndex::remove(std::size_t global_row) {
  check_mutable("remove");
  return do_remove(global_row);
}

WriteReceipt AmIndex::update(std::size_t global_row,
                             std::span<const int> vector) {
  check_mutable("update");
  return do_update(global_row, vector);
}

void AmIndex::validate_request(const SearchRequest& request) const {
  // No live row means no k is acceptable: say so with the typed error
  // instead of blaming the caller's k. Covers both a never-stored index
  // and one whose every row was removed.
  if (live_count() == 0) {
    throw EmptyIndex("AmIndex: no live rows to search");
  }
  if (request.k == 0 || request.k > live_count()) {
    throw std::invalid_argument("AmIndex: request.k out of range");
  }
  validate_backend_query(request.query);
}

SearchResponse AmIndex::search(const SearchRequest& request) {
  // Synchronous serving consumes ordinals, which a live AsyncAmIndex
  // owns — the same footgun as a synchronous mutation.
  check_mutable("search");
  // Validate before consuming an ordinal, so a rejected request leaves
  // the noise-stream sequence exactly where it was.
  validate_request(request);
  const std::uint64_t ordinal =
      request.ordinal ? *request.ordinal : query_serial_++;
  return search_core(request.query, request.k, ordinal,
                     /*in_query_pool=*/false);
}

SearchResponse AmIndex::search_at(const SearchRequest& request,
                                  std::uint64_t ordinal) const {
  // Const, but still racy against an owning AsyncAmIndex's queued
  // writes — outside callers must go through the wrapper.
  check_mutable("search_at");
  return serve_at(request, ordinal);
}

SearchResponse AmIndex::serve_at(const SearchRequest& request,
                                 std::uint64_t ordinal) const {
  validate_request(request);
  return search_core(request.query, request.k, ordinal,
                     /*in_query_pool=*/false);
}

std::vector<SearchResponse> AmIndex::search_batch(
    std::span<const SearchRequest> requests) {
  check_mutable("search_batch");
  if (requests.empty()) return {};
  // Whole-batch validation up front: a rejected batch consumes nothing.
  for (const auto& request : requests) validate_request(request);
  std::vector<std::uint64_t> ordinals(requests.size());
  std::uint64_t next = query_serial_;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ordinals[i] = requests[i].ordinal ? *requests[i].ordinal : next++;
  }
  query_serial_ = next;
  return dispatch_batch(requests, ordinals);
}

std::vector<SearchResponse> AmIndex::search_batch_at(
    std::span<const SearchRequest> requests,
    std::span<const std::uint64_t> ordinals) const {
  check_mutable("search_batch_at");
  return serve_batch_at(requests, ordinals);
}

std::vector<SearchResponse> AmIndex::serve_batch_at(
    std::span<const SearchRequest> requests,
    std::span<const std::uint64_t> ordinals) const {
  if (requests.size() != ordinals.size()) {
    throw std::invalid_argument(
        "AmIndex::search_batch_at: requests/ordinals size mismatch");
  }
  if (requests.empty()) return {};
  for (const auto& request : requests) validate_request(request);
  return dispatch_batch(requests, ordinals);
}

std::vector<SearchResponse> AmIndex::dispatch_batch(
    std::span<const SearchRequest> requests,
    std::span<const std::uint64_t> ordinals) const {
  std::vector<SearchResponse> responses(requests.size());
  if (inner_fan_for_batch(requests.size())) {
    // The batch alone cannot saturate the pool: keep requests serial and
    // let each one fan its rows/banks (bit-identical either way).
    for (std::size_t i = 0; i < requests.size(); ++i) {
      responses[i] = search_core(requests[i].query, requests[i].k,
                                 ordinals[i], /*in_query_pool=*/false);
    }
    return responses;
  }
  util::parallel_for(requests.size(), [&](std::size_t i) {
    responses[i] = search_core(requests[i].query, requests[i].k, ordinals[i],
                               /*in_query_pool=*/true);
  });
  return responses;
}

}  // namespace ferex::serve
