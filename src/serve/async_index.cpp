#include "serve/async_index.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "serve/wal.hpp"

namespace ferex::serve {

namespace {

using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

AsyncOptions sanitized(AsyncOptions options) {
  options.queue_depth = std::max<std::size_t>(1, options.queue_depth);
  options.max_batch = std::max<std::size_t>(1, options.max_batch);
  options.dispatchers = std::max<std::size_t>(1, options.dispatchers);
  return options;
}

}  // namespace

AsyncAmIndex::AsyncAmIndex(AmIndex& index, AsyncOptions options)
    : index_(index),
      options_(sanitized(options)),
      queue_(options_.queue_depth) {
  // Own the index for the session: synchronous mutation (or
  // ordinal-consuming synchronous serving) now throws the typed
  // MutationWhileServed instead of racing the dispatchers. The claim is
  // exclusive — wrapping an already-owned index throws here — and it
  // comes before the serial snapshot, so no synchronous search can
  // slip in between and consume an ordinal this session would re-serve;
  // the session then continues the noise-stream sequence where the
  // index left off.
  index_.claim_async_owner();
  serial_ = index_.query_serial();
  try {
    dispatchers_.reserve(options_.dispatchers);
    for (std::size_t d = 0; d < options_.dispatchers; ++d) {
      dispatchers_.emplace_back([this] { dispatch_loop(); });
    }
  } catch (...) {
    // Thread spawn failed mid-construction: the destructor will not
    // run, so unwind by hand — stop what did start and hand the index
    // back, or it stays locked behind the guard forever.
    queue_.close();
    for (auto& dispatcher : dispatchers_) {
      if (dispatcher.joinable()) dispatcher.join();
    }
    index_.release_async_owner();
    throw;
  }
}

AsyncAmIndex::~AsyncAmIndex() { shutdown(); }

bool AsyncAmIndex::writes_pending() const {
  util::MutexLock order(order_mutex_);
  return writes_applied_ < writes_admitted_.load(std::memory_order_relaxed);
}

void AsyncAmIndex::validate_search_submit(const SearchRequest& request) const {
  // See the header: k >= 1 always; everything touching the backend only
  // on a quiescent session (else deferred to execution — even the
  // configured+stored precondition, which a queued first insert
  // establishes). The shared lock orders the backend reads against a
  // write a dispatcher may be applying, and the closing_ check inside
  // it keeps stragglers off an index that shutdown() may already have
  // handed back to synchronous mutators (shutdown's unique-lock
  // barrier waits out validators already past the check).
  if (request.k == 0) {
    throw std::invalid_argument("AmIndex: request.k out of range");
  }
  util::ReaderMutexLock guard(validate_mutex_);
  if (closing_.load(std::memory_order_acquire)) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    throw ShutDown("AsyncAmIndex: submit after shutdown");
  }
  if (writes_pending()) return;
  index_.validate_request(request);
}

bool AsyncAmIndex::placed_ahead(const SearchRequest& request) const noexcept {
  switch (request.submit.priority) {
    case SubmitOptions::Priority::kUrgent:
      return true;
    case SubmitOptions::Priority::kFifo:
      return false;
    case SubmitOptions::Priority::kClassDefault:
      break;
  }
  return options_.admission.order == AdmissionPolicy::ClassOrder::kSearchFirst;
}

double AsyncAmIndex::service_estimate_us() const noexcept {
  if (options_.admission.assumed_service_us > 0) {
    return static_cast<double>(options_.admission.assumed_service_us);
  }
  return est_service_us_.load(std::memory_order_relaxed);
}

void AsyncAmIndex::note_service(double total_us, std::size_t ops) noexcept {
  if (ops == 0) return;
  const double sample = total_us / static_cast<double>(ops);
  double prev = est_service_us_.load(std::memory_order_relaxed);
  double next;
  do {
    // First observation seeds; afterwards a gentle EWMA (alpha 0.25)
    // tracks service-time drift without chasing one slow batch.
    next = prev == 0.0 ? sample : prev + 0.25 * (sample - prev);
  } while (!est_service_us_.compare_exchange_weak(prev, next,
                                                  std::memory_order_relaxed));
}

void AsyncAmIndex::check_submit_deadline(const SearchRequest& request,
                                         bool ahead) const {
  const AdmissionPolicy& policy = options_.admission;
  if (request.submit.deadline_us == 0 ||
      policy.shed != AdmissionPolicy::ShedPolicy::kSubmitAndDispatch) {
    return;
  }
  const double per_op = service_estimate_us();
  if (per_op <= 0.0) return;
  // Ops this request would wait behind: every queued search, plus the
  // queued writes it cannot overtake (all of them in FIFO placement,
  // only the bounded max_writes_ahead budget when placed ahead).
  const std::size_t searches =
      queued_searches_.load(std::memory_order_relaxed);
  std::size_t writes = queued_writes_.load(std::memory_order_relaxed);
  if (ahead) writes = std::min(writes, policy.max_writes_ahead);
  const double estimate = per_op * static_cast<double>(searches + writes);
  if (estimate > static_cast<double>(request.submit.deadline_us)) {
    shed_submit_.fetch_add(1, std::memory_order_relaxed);
    throw DeadlineExceeded(
        "AsyncAmIndex: deadline_us=" +
        std::to_string(request.submit.deadline_us) +
        " already hopeless (estimated queue wait " +
        std::to_string(static_cast<std::uint64_t>(estimate)) + "us)");
  }
}

std::future<SearchResponse> AsyncAmIndex::submit(SearchRequest request) {
  validate_search_submit(request);

  Pending pending;
  pending.submitted = Clock::now();

  const AdmissionPolicy& policy = options_.admission;
  util::MutexLock lock(submit_mutex_);
  if (shutdown_) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    throw ShutDown("AsyncAmIndex: submit after shutdown");
  }
  // Class share: a search class at its queue share is rejected even
  // while the queue itself has room (a write burst cannot be squeezed
  // out of admission by search floods, nor vice versa).
  if (policy.max_queued_searches > 0 &&
      queued_searches_.load(std::memory_order_relaxed) >=
          policy.max_queued_searches) {
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    throw Overloaded("AsyncAmIndex: search class at queue share " +
                     std::to_string(policy.max_queued_searches));
  }
  const bool ahead = placed_ahead(request);
  check_submit_deadline(request, ahead);
  const bool pinned = request.ordinal.has_value();
  pending.ordinal = pinned ? *request.ordinal : serial_;
  // Ahead-of-write placement trades the epoch wait away: the search
  // runs against whatever state the index holds when dispatched (see
  // Pending::kNoEpochWait). FIFO placement keeps the v1 epoch tag and
  // with it the bit-identical submission-order guarantee.
  pending.write_epoch = ahead
                            ? Pending::kNoEpochWait
                            : writes_admitted_.load(std::memory_order_relaxed);
  pending.request = std::move(request);
  pending.promise.emplace();
  std::future<SearchResponse> future = pending.promise->get_future();
  // Pushers all hold submit_mutex_, so a failed push can only mean the
  // queue is genuinely at depth (pops only make room) — admission
  // control, with the serial untouched.
  const bool pushed =
      ahead ? queue_.try_push_before(
                  std::move(pending),
                  [](const Pending& queued) {
                    return queued.kind != Pending::Kind::kSearch;
                  },
                  policy.max_writes_ahead)
            : queue_.try_push(std::move(pending));
  if (!pushed) {
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    throw Overloaded("AsyncAmIndex: request queue at depth " +
                     std::to_string(options_.queue_depth));
  }
  if (!pinned) ++serial_;
  ++searches_admitted_;
  queued_searches_.fetch_add(1, std::memory_order_relaxed);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::future<WriteReceipt> AsyncAmIndex::admit_write(Pending pending) {
  // Admission is decided before the WAL append: every pusher holds
  // submit_mutex_ and pops only make room, so a queue with a free slot
  // here cannot refuse the push below. The journal therefore never
  // records a rejected op, and a crash mid-append leaves a torn —
  // truncated, never-applied — record, not a phantom.
  if (queue_.size() >= queue_.capacity()) {
    writes_rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    throw Overloaded("AsyncAmIndex: request queue at depth " +
                     std::to_string(options_.queue_depth));
  }
  // Write-class queue share (see AdmissionPolicy): bounds how much of
  // the queue a bulk-write burst may hold.
  if (options_.admission.max_queued_writes > 0 &&
      queued_writes_.load(std::memory_order_relaxed) >=
          options_.admission.max_queued_writes) {
    writes_rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    throw Overloaded("AsyncAmIndex: write class at queue share " +
                     std::to_string(options_.admission.max_queued_writes));
  }
  // Journaled at epoch-assignment time, under submit_mutex_: the log
  // order is the write-epoch order is the apply order, so replay
  // reproduces the exact serialized sequence the dispatchers applied.
  if (options_.wal != nullptr) {
    switch (pending.kind) {
      case Pending::Kind::kRemove:
        options_.wal->append_remove(pending.row);
        break;
      case Pending::Kind::kUpdate:
        options_.wal->append_update(pending.row, pending.vector);
        break;
      default:
        options_.wal->append_insert(pending.vector);
        break;
    }
  }
  pending.write_epoch = writes_admitted_.load(std::memory_order_relaxed);
  pending.searches_before = searches_admitted_;
  pending.write_promise.emplace();
  std::future<WriteReceipt> future = pending.write_promise->get_future();
  queue_.try_push(std::move(pending));
  writes_admitted_.fetch_add(1, std::memory_order_relaxed);
  queued_writes_.fetch_add(1, std::memory_order_relaxed);
  writes_submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::future<WriteReceipt> AsyncAmIndex::submit_remove(std::size_t global_row) {
  Pending pending;
  pending.kind = Pending::Kind::kRemove;
  pending.row = global_row;
  pending.submitted = Clock::now();

  util::MutexLock lock(submit_mutex_);
  if (shutdown_) {
    writes_rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    throw ShutDown("AsyncAmIndex: submit_remove after shutdown");
  }
  {
    util::ReaderMutexLock guard(validate_mutex_);
    // The slot range is state (queued inserts grow it): authoritative
    // only on a quiescent index, else checked at execution.
    if (!writes_pending() && global_row >= index_.stored_count()) {
      throw std::out_of_range("AsyncAmIndex::submit_remove: row");
    }
  }
  return admit_write(std::move(pending));
}

std::future<WriteReceipt> AsyncAmIndex::submit_update(std::size_t global_row,
                                                      std::vector<int> vector) {
  Pending pending;
  pending.kind = Pending::Kind::kUpdate;
  pending.row = global_row;
  pending.vector = std::move(vector);
  pending.submitted = Clock::now();

  util::MutexLock lock(submit_mutex_);
  if (shutdown_) {
    writes_rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    throw ShutDown("AsyncAmIndex: submit_update after shutdown");
  }
  {
    util::ReaderMutexLock guard(validate_mutex_);
    if (!writes_pending() && global_row >= index_.stored_count()) {
      throw std::out_of_range("AsyncAmIndex::submit_update: row");
    }
    // Dimensionality is fixed while the wrapper owns the index
    // (store/configure are guarded), so the length check is structural.
    if (index_.stored_count() > 0 &&
        pending.vector.size() != index_.dims()) {
      throw std::invalid_argument(
          "AsyncAmIndex::submit_update: vector.size() != dims");
    }
  }
  return admit_write(std::move(pending));
}

std::future<WriteReceipt> AsyncAmIndex::submit_insert(std::vector<int> vector) {
  Pending pending;
  pending.kind = Pending::Kind::kInsert;
  pending.vector = std::move(vector);
  pending.submitted = Clock::now();

  util::MutexLock lock(submit_mutex_);
  if (shutdown_) {
    writes_rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    throw ShutDown("AsyncAmIndex: submit_insert after shutdown");
  }
  {
    util::ReaderMutexLock guard(validate_mutex_);
    if (pending.vector.empty() ||
        (index_.stored_count() > 0 &&
         pending.vector.size() != index_.dims())) {
      throw std::invalid_argument(
          "AsyncAmIndex::submit_insert: vector.size() != dims");
    }
  }
  return admit_write(std::move(pending));
}

std::vector<std::future<SearchResponse>> AsyncAmIndex::submit_batch(
    std::span<const SearchRequest> requests) {
  // Fail the whole batch fast once shutdown has begun (counted per
  // request, like the all-or-nothing admission below), then validate
  // all-or-nothing before anything is consumed (same submit-time rules
  // as submit, outside the submit lock).
  if (closing_.load(std::memory_order_acquire)) {
    rejected_shutdown_.fetch_add(requests.size(), std::memory_order_relaxed);
    throw ShutDown("AsyncAmIndex: submit_batch after shutdown");
  }
  for (const auto& request : requests) validate_search_submit(request);

  std::vector<std::future<SearchResponse>> futures;
  futures.reserve(requests.size());
  if (requests.empty()) return futures;

  const auto now = Clock::now();
  util::MutexLock lock(submit_mutex_);
  if (shutdown_) {
    rejected_shutdown_.fetch_add(requests.size(), std::memory_order_relaxed);
    throw ShutDown("AsyncAmIndex: submit_batch after shutdown");
  }
  // All-or-nothing admission: a batch that does not fit consumes nothing
  // (mirrors the synchronous search_batch, where a rejected batch leaves
  // the serial where it was).
  if (queue_.size() + requests.size() > queue_.capacity()) {
    rejected_overload_.fetch_add(requests.size(), std::memory_order_relaxed);
    throw Overloaded("AsyncAmIndex: batch of " +
                     std::to_string(requests.size()) +
                     " exceeds queue depth " +
                     std::to_string(options_.queue_depth));
  }
  // Class share, all-or-nothing like the capacity check. Batches are
  // always FIFO-placed and never submit-shed on deadline (an estimate
  // that rejects one element would have to reject the whole batch);
  // per-request deadlines still shed at dispatch.
  if (options_.admission.max_queued_searches > 0 &&
      queued_searches_.load(std::memory_order_relaxed) + requests.size() >
          options_.admission.max_queued_searches) {
    rejected_overload_.fetch_add(requests.size(), std::memory_order_relaxed);
    throw Overloaded(
        "AsyncAmIndex: batch of " + std::to_string(requests.size()) +
        " exceeds search queue share " +
        std::to_string(options_.admission.max_queued_searches));
  }
  std::uint64_t next = serial_;
  for (const auto& request : requests) {
    Pending pending;
    pending.submitted = now;
    pending.request = request;
    pending.ordinal = request.ordinal ? *request.ordinal : next++;
    pending.write_epoch = writes_admitted_.load(std::memory_order_relaxed);
    pending.promise.emplace();
    futures.push_back(pending.promise->get_future());
    // Cannot fail: capacity was checked under the same mutex all
    // pushers hold, and close() also takes it.
    queue_.try_push(std::move(pending));
  }
  serial_ = next;
  searches_admitted_ += requests.size();
  queued_searches_.fetch_add(requests.size(), std::memory_order_relaxed);
  submitted_.fetch_add(requests.size(), std::memory_order_relaxed);
  return futures;
}

void AsyncAmIndex::shutdown() {
  std::uint64_t final_serial = 0;
  {
    util::MutexLock lock(submit_mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    closing_.store(true, std::memory_order_release);
    final_serial = serial_;
  }
  // Drain mode: pushes now fail, but the dispatchers keep popping until
  // the queue is empty — every accepted future completes.
  queue_.close();
  for (auto& dispatcher : dispatchers_) {
    if (dispatcher.joinable()) dispatcher.join();
  }
  // Barrier: straggler submit validators hold validate_mutex_ shared
  // while reading the index; wait them out (new ones bail on closing_)
  // before the index can go back to synchronous mutators.
  { util::WriterMutexLock barrier(validate_mutex_); }
  // Hand the advanced serial back while still owning the index (the
  // reverse order would let a concurrent re-wrap seed from the stale
  // serial — and make the guarded setter throw out of a destructor),
  // then release it back to synchronous use. The dispatchers are
  // drained and joined, so this wrapper is the sole serialized actor —
  // assert the mutation capability for the unguarded setter.
  index_.assert_async_serialized();
  index_.set_query_serial_unguarded(final_serial);
  index_.release_async_owner();
}

bool AsyncAmIndex::shut_down() const {
  util::MutexLock lock(submit_mutex_);
  return shutdown_;
}

std::uint64_t AsyncAmIndex::query_serial() const {
  util::MutexLock lock(submit_mutex_);
  return serial_;
}

ServeStats AsyncAmIndex::stats() const {
  ServeStats stats;
  stats.search.submitted = submitted_.load(std::memory_order_relaxed);
  stats.search.rejected_overload =
      rejected_overload_.load(std::memory_order_relaxed);
  stats.search.rejected_shutdown =
      rejected_shutdown_.load(std::memory_order_relaxed);
  stats.shed_submit = shed_submit_.load(std::memory_order_relaxed);
  stats.shed_dispatch = shed_dispatch_.load(std::memory_order_relaxed);
  stats.search.shed_deadline = stats.shed_submit + stats.shed_dispatch;
  stats.search.served = served_.load(std::memory_order_relaxed);
  stats.search.queue_wait_us = queue_wait_us_.summarize();
  stats.search.end_to_end_us = end_to_end_us_.summarize();
  stats.write.submitted = writes_submitted_.load(std::memory_order_relaxed);
  stats.write.rejected_overload =
      writes_rejected_overload_.load(std::memory_order_relaxed);
  stats.write.rejected_shutdown =
      writes_rejected_shutdown_.load(std::memory_order_relaxed);
  stats.write.served = writes_served_.load(std::memory_order_relaxed);
  stats.write.queue_wait_us = write_queue_wait_us_.summarize();
  stats.write.end_to_end_us = write_end_to_end_us_.summarize();
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.max_batch = max_batch_.load(std::memory_order_relaxed);
  return stats;
}

void AsyncAmIndex::dispatch_loop() {
  // Occupancy accounting: a popped op leaves the queue for good (a
  // carried-over op was already popped), so decrement exactly once at
  // each pop site — the counters feed admission shares and the submit
  // wait estimate, where "in a dispatcher's hands" no longer queues.
  const auto note_popped = [this](const Pending& popped) {
    if (popped.kind == Pending::Kind::kSearch) {
      queued_searches_.fetch_sub(1, std::memory_order_relaxed);
    } else {
      queued_writes_.fetch_sub(1, std::memory_order_relaxed);
    }
  };
  std::vector<Pending> batch;
  Pending carry;
  bool have_carry = false;
  for (;;) {
    Pending first;
    if (have_carry) {
      first = std::move(carry);
      have_carry = false;
    } else if (queue_.pop(first)) {
      note_popped(first);
    } else {
      break;  // closed and drained; nothing carried over
    }
    if (first.kind != Pending::Kind::kSearch) {
      serve_write(first);
      continue;
    }
    batch.clear();
    batch.push_back(std::move(first));
    // Coalesce: take whatever is already queued, then — if the batch is
    // still short and a linger is configured — wait for stragglers. The
    // deadline is anchored at the first pop so a trickle of arrivals
    // cannot stall dispatch indefinitely. A batch never spans a write
    // boundary: a popped write — or a search from a later write epoch,
    // possible when another dispatcher holds the intervening write — is
    // carried over and served after this batch, preserving submission
    // order within this dispatcher.
    const auto deadline =
        Clock::now() + std::chrono::microseconds(options_.max_wait_us);
    while (batch.size() < options_.max_batch) {
      Pending next;
      if (!queue_.try_pop(next)) {
        if (options_.max_wait_us == 0 || !queue_.pop_until(next, deadline)) {
          break;
        }
      }
      note_popped(next);
      if (next.kind != Pending::Kind::kSearch ||
          next.write_epoch != batch.front().write_epoch) {
        carry = std::move(next);
        have_carry = true;
        break;
      }
      batch.push_back(std::move(next));
    }
    serve_batch(batch);
  }
}

void AsyncAmIndex::serve_write(Pending& pending) {
  // Its turn comes when every write admitted before it has applied and
  // every search admitted before it has completed; searches of later
  // epochs are themselves waiting for this write to apply.
  {
    util::MutexLock lock(order_mutex_);
    order_cv_.wait(order_mutex_, [&]() REQUIRES(order_mutex_) {
      return writes_applied_ == pending.write_epoch &&
             searches_completed_ >= pending.searches_before;
    });
  }
  // Queue wait ends where work can begin — after the ordering wait,
  // matching serve_batch's definition so the two classes' reservoirs
  // (and the regression gate over them) measure one thing.
  const auto apply_start = Clock::now();
  write_queue_wait_us_.record(us_between(pending.submitted, apply_start));
  WriteReceipt receipt;
  std::exception_ptr error;
  try {
    // Exclusive against submit-time validators; in-flight searches are
    // excluded by the epoch wait above. The do_* cores bypass the
    // synchronous-mutation guard — this queue provides the
    // serialization that guard exists to enforce, which is exactly
    // what the capability assertion below tells the static analysis.
    util::WriterMutexLock guard(validate_mutex_);
    index_.assert_async_serialized();
    switch (pending.kind) {
      case Pending::Kind::kRemove:
        receipt = index_.do_remove(pending.row);
        break;
      case Pending::Kind::kUpdate:
        receipt = index_.do_update(pending.row, pending.vector);
        break;
      default:
        receipt = index_.do_insert(pending.vector);
        break;
    }
  } catch (...) {
    error = std::current_exception();
  }
  // The epoch advances even when the write failed: a throwing write is
  // a no-op on the index, exactly as in the synchronous sequence, and
  // later operations must not wait for it forever.
  {
    util::MutexLock lock(order_mutex_);
    ++writes_applied_;
  }
  order_cv_.notify_all();
  note_service(us_between(apply_start, Clock::now()), 1);
  write_end_to_end_us_.record(us_between(pending.submitted, Clock::now()));
  writes_served_.fetch_add(1, std::memory_order_relaxed);
  if (error) {
    pending.write_promise->set_exception(std::move(error));
  } else {
    pending.write_promise->set_value(receipt);
  }
}

void AsyncAmIndex::serve_batch(std::vector<Pending>& batch) {
  // Wait for the batch's epoch: every write submitted before these
  // searches must have applied (writes in turn wait for older searches,
  // so the pair of gates serializes execution in submission order).
  // Priority-placed batches carry the kNoEpochWait sentinel and skip
  // the wait — that is the placement's contract; the shared lock below
  // still keeps their execution disjoint from write application.
  if (batch.front().write_epoch != Pending::kNoEpochWait) {
    util::MutexLock lock(order_mutex_);
    order_cv_.wait(order_mutex_, [&]() REQUIRES(order_mutex_) {
      return writes_applied_ == batch.front().write_epoch;
    });
  }
  const auto dispatch_start = Clock::now();
  const std::size_t admitted = batch.size();

  // Dispatch-time deadline shed: a request whose measured queue wait
  // already exceeds its budget is failed with DeadlineExceeded instead
  // of burning backend time on an answer nobody is waiting for. Shed
  // requests are counted, not timed (the reservoirs summarize served
  // traffic), and still count as completed searches below — a write
  // waiting on searches admitted before it must not deadlock on sheds.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::uint64_t deadline = batch[i].request.submit.deadline_us;
    if (deadline > 0 &&
        us_between(batch[i].submitted, dispatch_start) >
            static_cast<double>(deadline)) {
      shed_dispatch_.fetch_add(1, std::memory_order_relaxed);
      batch[i].promise->set_exception(std::make_exception_ptr(
          DeadlineExceeded("AsyncAmIndex: deadline_us=" +
                           std::to_string(deadline) + " expired in queue")));
      continue;
    }
    if (kept != i) batch[kept] = std::move(batch[i]);
    ++kept;
  }
  batch.resize(kept);

  // Completion unblocks any write waiting on searches admitted before
  // it (notified on every exit path below; counts sheds too).
  const auto note_completed = [&] {
    {
      util::MutexLock lock(order_mutex_);
      searches_completed_ += admitted;
    }
    order_cv_.notify_all();
  };
  if (batch.empty()) {
    note_completed();
    return;
  }

  for (const auto& pending : batch) {
    queue_wait_us_.record(us_between(pending.submitted, dispatch_start));
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t prev_max = max_batch_.load(std::memory_order_relaxed);
  while (batch.size() > prev_max &&
         !max_batch_.compare_exchange_weak(prev_max, batch.size(),
                                           std::memory_order_relaxed)) {
  }

  // Backend execution holds validate_mutex_ shared: epoch-ordered
  // batches never overlap write application anyway (the order gates
  // exclude them), but a priority-placed batch can complete before an
  // older epoch's searches and thereby satisfy a write's
  // searches_before wait early — the shared lock keeps that write's
  // exclusive application off the backend until every in-flight search
  // has left it. Readers share, so batch concurrency is unchanged.
  if (batch.size() == 1) {
    auto& pending = batch.front();
    try {
      SearchResponse response;
      {
        util::ReaderMutexLock guard(validate_mutex_);
        response = index_.serve_at(pending.request, pending.ordinal);
      }
      fulfill(pending, std::move(response));
    } catch (...) {
      fail(pending, std::current_exception());
    }
    note_service(us_between(dispatch_start, Clock::now()), 1);
    note_completed();
    return;
  }

  std::vector<SearchRequest> requests;
  std::vector<std::uint64_t> ordinals;
  requests.reserve(batch.size());
  ordinals.reserve(batch.size());
  for (auto& pending : batch) {
    requests.push_back(std::move(pending.request));
    ordinals.push_back(pending.ordinal);
  }
  try {
    std::vector<SearchResponse> responses;
    {
      util::ReaderMutexLock guard(validate_mutex_);
      responses = index_.serve_batch_at(requests, ordinals);
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      fulfill(batch[i], std::move(responses[i]));
    }
  } catch (...) {
    // A mid-batch backend failure must not poison batchmates: retry each
    // request alone (ordinal-addressed, so the retry is bit-identical to
    // a first service) and fail only the futures that themselves throw.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      try {
        SearchResponse response;
        {
          util::ReaderMutexLock guard(validate_mutex_);
          response = index_.serve_at(
              SearchRequest{std::move(requests[i].query), requests[i].k,
                            std::nullopt},
              ordinals[i]);
        }
        fulfill(batch[i], std::move(response));
      } catch (...) {
        fail(batch[i], std::current_exception());
      }
    }
  }
  note_service(us_between(dispatch_start, Clock::now()), batch.size());
  note_completed();
}

void AsyncAmIndex::fulfill(Pending& pending, SearchResponse response) {
  // Record before set_value: a future observer that wakes on the result
  // must already see this request in the stats (future.get synchronizes
  // with the promise, ordering these relaxed writes for the observer).
  end_to_end_us_.record(us_between(pending.submitted, Clock::now()));
  served_.fetch_add(1, std::memory_order_relaxed);
  pending.promise->set_value(std::move(response));
}

void AsyncAmIndex::fail(Pending& pending, std::exception_ptr error) {
  end_to_end_us_.record(us_between(pending.submitted, Clock::now()));
  served_.fetch_add(1, std::memory_order_relaxed);
  pending.promise->set_exception(std::move(error));
}

}  // namespace ferex::serve
