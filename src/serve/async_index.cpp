#include "serve/async_index.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "serve/wal.hpp"

namespace ferex::serve {

namespace {

using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

AsyncOptions sanitized(AsyncOptions options) {
  options.queue_depth = std::max<std::size_t>(1, options.queue_depth);
  options.max_batch = std::max<std::size_t>(1, options.max_batch);
  options.dispatchers = std::max<std::size_t>(1, options.dispatchers);
  return options;
}

}  // namespace

AsyncAmIndex::AsyncAmIndex(AmIndex& index, AsyncOptions options)
    : index_(index),
      options_(sanitized(options)),
      queue_(options_.queue_depth) {
  // Own the index for the session: synchronous mutation (or
  // ordinal-consuming synchronous serving) now throws the typed
  // MutationWhileServed instead of racing the dispatchers. The claim is
  // exclusive — wrapping an already-owned index throws here — and it
  // comes before the serial snapshot, so no synchronous search can
  // slip in between and consume an ordinal this session would re-serve;
  // the session then continues the noise-stream sequence where the
  // index left off.
  index_.claim_async_owner();
  serial_ = index_.query_serial();
  try {
    dispatchers_.reserve(options_.dispatchers);
    for (std::size_t d = 0; d < options_.dispatchers; ++d) {
      dispatchers_.emplace_back([this] { dispatch_loop(); });
    }
  } catch (...) {
    // Thread spawn failed mid-construction: the destructor will not
    // run, so unwind by hand — stop what did start and hand the index
    // back, or it stays locked behind the guard forever.
    queue_.close();
    for (auto& dispatcher : dispatchers_) {
      if (dispatcher.joinable()) dispatcher.join();
    }
    index_.release_async_owner();
    throw;
  }
}

AsyncAmIndex::~AsyncAmIndex() { shutdown(); }

bool AsyncAmIndex::writes_pending() const {
  util::MutexLock order(order_mutex_);
  return writes_applied_ < writes_admitted_.load(std::memory_order_relaxed);
}

void AsyncAmIndex::validate_search_submit(const SearchRequest& request) const {
  // See the header: k >= 1 always; everything touching the backend only
  // on a quiescent session (else deferred to execution — even the
  // configured+stored precondition, which a queued first insert
  // establishes). The shared lock orders the backend reads against a
  // write a dispatcher may be applying, and the closing_ check inside
  // it keeps stragglers off an index that shutdown() may already have
  // handed back to synchronous mutators (shutdown's unique-lock
  // barrier waits out validators already past the check).
  if (request.k == 0) {
    throw std::invalid_argument("AmIndex: request.k out of range");
  }
  util::ReaderMutexLock guard(validate_mutex_);
  if (closing_.load(std::memory_order_acquire)) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    throw ShutDown("AsyncAmIndex: submit after shutdown");
  }
  if (writes_pending()) return;
  index_.validate_request(request);
}

std::future<SearchResponse> AsyncAmIndex::submit(SearchRequest request) {
  validate_search_submit(request);

  Pending pending;
  pending.submitted = Clock::now();

  util::MutexLock lock(submit_mutex_);
  if (shutdown_) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    throw ShutDown("AsyncAmIndex: submit after shutdown");
  }
  const bool pinned = request.ordinal.has_value();
  pending.ordinal = pinned ? *request.ordinal : serial_;
  pending.write_epoch = writes_admitted_.load(std::memory_order_relaxed);
  pending.request = std::move(request);
  pending.promise.emplace();
  std::future<SearchResponse> future = pending.promise->get_future();
  // Pushers all hold submit_mutex_, so a failed push can only mean the
  // queue is genuinely at depth (pops only make room) — admission
  // control, with the serial untouched.
  if (!queue_.try_push(std::move(pending))) {
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    throw Overloaded("AsyncAmIndex: request queue at depth " +
                     std::to_string(options_.queue_depth));
  }
  if (!pinned) ++serial_;
  ++searches_admitted_;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::future<WriteReceipt> AsyncAmIndex::admit_write(Pending pending) {
  // Admission is decided before the WAL append: every pusher holds
  // submit_mutex_ and pops only make room, so a queue with a free slot
  // here cannot refuse the push below. The journal therefore never
  // records a rejected op, and a crash mid-append leaves a torn —
  // truncated, never-applied — record, not a phantom.
  if (queue_.size() >= queue_.capacity()) {
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    throw Overloaded("AsyncAmIndex: request queue at depth " +
                     std::to_string(options_.queue_depth));
  }
  // Journaled at epoch-assignment time, under submit_mutex_: the log
  // order is the write-epoch order is the apply order, so replay
  // reproduces the exact serialized sequence the dispatchers applied.
  if (options_.wal != nullptr) {
    switch (pending.kind) {
      case Pending::Kind::kRemove:
        options_.wal->append_remove(pending.row);
        break;
      case Pending::Kind::kUpdate:
        options_.wal->append_update(pending.row, pending.vector);
        break;
      default:
        options_.wal->append_insert(pending.vector);
        break;
    }
  }
  pending.write_epoch = writes_admitted_.load(std::memory_order_relaxed);
  pending.searches_before = searches_admitted_;
  pending.write_promise.emplace();
  std::future<WriteReceipt> future = pending.write_promise->get_future();
  queue_.try_push(std::move(pending));
  writes_admitted_.fetch_add(1, std::memory_order_relaxed);
  writes_submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::future<WriteReceipt> AsyncAmIndex::submit_remove(std::size_t global_row) {
  Pending pending;
  pending.kind = Pending::Kind::kRemove;
  pending.row = global_row;
  pending.submitted = Clock::now();

  util::MutexLock lock(submit_mutex_);
  if (shutdown_) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    throw ShutDown("AsyncAmIndex: submit_remove after shutdown");
  }
  {
    util::ReaderMutexLock guard(validate_mutex_);
    // The slot range is state (queued inserts grow it): authoritative
    // only on a quiescent index, else checked at execution.
    if (!writes_pending() && global_row >= index_.stored_count()) {
      throw std::out_of_range("AsyncAmIndex::submit_remove: row");
    }
  }
  return admit_write(std::move(pending));
}

std::future<WriteReceipt> AsyncAmIndex::submit_update(std::size_t global_row,
                                                      std::vector<int> vector) {
  Pending pending;
  pending.kind = Pending::Kind::kUpdate;
  pending.row = global_row;
  pending.vector = std::move(vector);
  pending.submitted = Clock::now();

  util::MutexLock lock(submit_mutex_);
  if (shutdown_) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    throw ShutDown("AsyncAmIndex: submit_update after shutdown");
  }
  {
    util::ReaderMutexLock guard(validate_mutex_);
    if (!writes_pending() && global_row >= index_.stored_count()) {
      throw std::out_of_range("AsyncAmIndex::submit_update: row");
    }
    // Dimensionality is fixed while the wrapper owns the index
    // (store/configure are guarded), so the length check is structural.
    if (index_.stored_count() > 0 &&
        pending.vector.size() != index_.dims()) {
      throw std::invalid_argument(
          "AsyncAmIndex::submit_update: vector.size() != dims");
    }
  }
  return admit_write(std::move(pending));
}

std::future<WriteReceipt> AsyncAmIndex::submit_insert(std::vector<int> vector) {
  Pending pending;
  pending.kind = Pending::Kind::kInsert;
  pending.vector = std::move(vector);
  pending.submitted = Clock::now();

  util::MutexLock lock(submit_mutex_);
  if (shutdown_) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    throw ShutDown("AsyncAmIndex: submit_insert after shutdown");
  }
  {
    util::ReaderMutexLock guard(validate_mutex_);
    if (pending.vector.empty() ||
        (index_.stored_count() > 0 &&
         pending.vector.size() != index_.dims())) {
      throw std::invalid_argument(
          "AsyncAmIndex::submit_insert: vector.size() != dims");
    }
  }
  return admit_write(std::move(pending));
}

std::vector<std::future<SearchResponse>> AsyncAmIndex::submit_batch(
    std::span<const SearchRequest> requests) {
  // Fail the whole batch fast once shutdown has begun (counted per
  // request, like the all-or-nothing admission below), then validate
  // all-or-nothing before anything is consumed (same submit-time rules
  // as submit, outside the submit lock).
  if (closing_.load(std::memory_order_acquire)) {
    rejected_shutdown_.fetch_add(requests.size(), std::memory_order_relaxed);
    throw ShutDown("AsyncAmIndex: submit_batch after shutdown");
  }
  for (const auto& request : requests) validate_search_submit(request);

  std::vector<std::future<SearchResponse>> futures;
  futures.reserve(requests.size());
  if (requests.empty()) return futures;

  const auto now = Clock::now();
  util::MutexLock lock(submit_mutex_);
  if (shutdown_) {
    rejected_shutdown_.fetch_add(requests.size(), std::memory_order_relaxed);
    throw ShutDown("AsyncAmIndex: submit_batch after shutdown");
  }
  // All-or-nothing admission: a batch that does not fit consumes nothing
  // (mirrors the synchronous search_batch, where a rejected batch leaves
  // the serial where it was).
  if (queue_.size() + requests.size() > queue_.capacity()) {
    rejected_overload_.fetch_add(requests.size(), std::memory_order_relaxed);
    throw Overloaded("AsyncAmIndex: batch of " +
                     std::to_string(requests.size()) +
                     " exceeds queue depth " +
                     std::to_string(options_.queue_depth));
  }
  std::uint64_t next = serial_;
  for (const auto& request : requests) {
    Pending pending;
    pending.submitted = now;
    pending.request = request;
    pending.ordinal = request.ordinal ? *request.ordinal : next++;
    pending.write_epoch = writes_admitted_.load(std::memory_order_relaxed);
    pending.promise.emplace();
    futures.push_back(pending.promise->get_future());
    // Cannot fail: capacity was checked under the same mutex all
    // pushers hold, and close() also takes it.
    queue_.try_push(std::move(pending));
  }
  serial_ = next;
  searches_admitted_ += requests.size();
  submitted_.fetch_add(requests.size(), std::memory_order_relaxed);
  return futures;
}

void AsyncAmIndex::shutdown() {
  std::uint64_t final_serial = 0;
  {
    util::MutexLock lock(submit_mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    closing_.store(true, std::memory_order_release);
    final_serial = serial_;
  }
  // Drain mode: pushes now fail, but the dispatchers keep popping until
  // the queue is empty — every accepted future completes.
  queue_.close();
  for (auto& dispatcher : dispatchers_) {
    if (dispatcher.joinable()) dispatcher.join();
  }
  // Barrier: straggler submit validators hold validate_mutex_ shared
  // while reading the index; wait them out (new ones bail on closing_)
  // before the index can go back to synchronous mutators.
  { util::WriterMutexLock barrier(validate_mutex_); }
  // Hand the advanced serial back while still owning the index (the
  // reverse order would let a concurrent re-wrap seed from the stale
  // serial — and make the guarded setter throw out of a destructor),
  // then release it back to synchronous use. The dispatchers are
  // drained and joined, so this wrapper is the sole serialized actor —
  // assert the mutation capability for the unguarded setter.
  index_.assert_async_serialized();
  index_.set_query_serial_unguarded(final_serial);
  index_.release_async_owner();
}

bool AsyncAmIndex::shut_down() const {
  util::MutexLock lock(submit_mutex_);
  return shutdown_;
}

std::uint64_t AsyncAmIndex::query_serial() const {
  util::MutexLock lock(submit_mutex_);
  return serial_;
}

ServeStats AsyncAmIndex::stats() const {
  ServeStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected_overload =
      rejected_overload_.load(std::memory_order_relaxed);
  stats.rejected_shutdown =
      rejected_shutdown_.load(std::memory_order_relaxed);
  stats.served = served_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.max_batch = max_batch_.load(std::memory_order_relaxed);
  stats.writes_submitted = writes_submitted_.load(std::memory_order_relaxed);
  stats.writes_served = writes_served_.load(std::memory_order_relaxed);
  stats.queue_wait_us = queue_wait_us_.summarize();
  stats.end_to_end_us = end_to_end_us_.summarize();
  return stats;
}

void AsyncAmIndex::dispatch_loop() {
  std::vector<Pending> batch;
  Pending carry;
  bool have_carry = false;
  for (;;) {
    Pending first;
    if (have_carry) {
      first = std::move(carry);
      have_carry = false;
    } else if (!queue_.pop(first)) {
      break;  // closed and drained; nothing carried over
    }
    if (first.kind != Pending::Kind::kSearch) {
      serve_write(first);
      continue;
    }
    batch.clear();
    batch.push_back(std::move(first));
    // Coalesce: take whatever is already queued, then — if the batch is
    // still short and a linger is configured — wait for stragglers. The
    // deadline is anchored at the first pop so a trickle of arrivals
    // cannot stall dispatch indefinitely. A batch never spans a write
    // boundary: a popped write — or a search from a later write epoch,
    // possible when another dispatcher holds the intervening write — is
    // carried over and served after this batch, preserving submission
    // order within this dispatcher.
    const auto deadline =
        Clock::now() + std::chrono::microseconds(options_.max_wait_us);
    while (batch.size() < options_.max_batch) {
      Pending next;
      if (!queue_.try_pop(next)) {
        if (options_.max_wait_us == 0 || !queue_.pop_until(next, deadline)) {
          break;
        }
      }
      if (next.kind != Pending::Kind::kSearch ||
          next.write_epoch != batch.front().write_epoch) {
        carry = std::move(next);
        have_carry = true;
        break;
      }
      batch.push_back(std::move(next));
    }
    serve_batch(batch);
  }
}

void AsyncAmIndex::serve_write(Pending& pending) {
  // Its turn comes when every write admitted before it has applied and
  // every search admitted before it has completed; searches of later
  // epochs are themselves waiting for this write to apply.
  {
    util::MutexLock lock(order_mutex_);
    order_cv_.wait(order_mutex_, [&]() REQUIRES(order_mutex_) {
      return writes_applied_ == pending.write_epoch &&
             searches_completed_ >= pending.searches_before;
    });
  }
  // Queue wait ends where work can begin — after the ordering wait,
  // matching serve_batch's definition so the shared reservoir (and the
  // regression gate over it) measures one thing.
  queue_wait_us_.record(us_between(pending.submitted, Clock::now()));
  WriteReceipt receipt;
  std::exception_ptr error;
  try {
    // Exclusive against submit-time validators; in-flight searches are
    // excluded by the epoch wait above. The do_* cores bypass the
    // synchronous-mutation guard — this queue provides the
    // serialization that guard exists to enforce, which is exactly
    // what the capability assertion below tells the static analysis.
    util::WriterMutexLock guard(validate_mutex_);
    index_.assert_async_serialized();
    switch (pending.kind) {
      case Pending::Kind::kRemove:
        receipt = index_.do_remove(pending.row);
        break;
      case Pending::Kind::kUpdate:
        receipt = index_.do_update(pending.row, pending.vector);
        break;
      default:
        receipt = index_.do_insert(pending.vector);
        break;
    }
  } catch (...) {
    error = std::current_exception();
  }
  // The epoch advances even when the write failed: a throwing write is
  // a no-op on the index, exactly as in the synchronous sequence, and
  // later operations must not wait for it forever.
  {
    util::MutexLock lock(order_mutex_);
    ++writes_applied_;
  }
  order_cv_.notify_all();
  end_to_end_us_.record(us_between(pending.submitted, Clock::now()));
  writes_served_.fetch_add(1, std::memory_order_relaxed);
  if (error) {
    pending.write_promise->set_exception(std::move(error));
  } else {
    pending.write_promise->set_value(receipt);
  }
}

void AsyncAmIndex::serve_batch(std::vector<Pending>& batch) {
  // Wait for the batch's epoch: every write submitted before these
  // searches must have applied (writes in turn wait for older searches,
  // so the pair of gates serializes execution in submission order).
  {
    util::MutexLock lock(order_mutex_);
    order_cv_.wait(order_mutex_, [&]() REQUIRES(order_mutex_) {
      return writes_applied_ == batch.front().write_epoch;
    });
  }
  const auto dispatch_start = Clock::now();
  for (const auto& pending : batch) {
    queue_wait_us_.record(us_between(pending.submitted, dispatch_start));
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t prev_max = max_batch_.load(std::memory_order_relaxed);
  while (batch.size() > prev_max &&
         !max_batch_.compare_exchange_weak(prev_max, batch.size(),
                                           std::memory_order_relaxed)) {
  }

  // Completion unblocks any write waiting on searches admitted before
  // it (notified on every exit path below).
  const auto note_completed = [&] {
    {
      util::MutexLock lock(order_mutex_);
      searches_completed_ += batch.size();
    }
    order_cv_.notify_all();
  };

  if (batch.size() == 1) {
    auto& pending = batch.front();
    try {
      fulfill(pending, index_.serve_at(pending.request, pending.ordinal));
    } catch (...) {
      fail(pending, std::current_exception());
    }
    note_completed();
    return;
  }

  std::vector<SearchRequest> requests;
  std::vector<std::uint64_t> ordinals;
  requests.reserve(batch.size());
  ordinals.reserve(batch.size());
  for (auto& pending : batch) {
    requests.push_back(std::move(pending.request));
    ordinals.push_back(pending.ordinal);
  }
  try {
    auto responses = index_.serve_batch_at(requests, ordinals);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      fulfill(batch[i], std::move(responses[i]));
    }
  } catch (...) {
    // A mid-batch backend failure must not poison batchmates: retry each
    // request alone (ordinal-addressed, so the retry is bit-identical to
    // a first service) and fail only the futures that themselves throw.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      try {
        fulfill(batch[i], index_.serve_at(
                              SearchRequest{std::move(requests[i].query),
                                            requests[i].k, std::nullopt},
                              ordinals[i]));
      } catch (...) {
        fail(batch[i], std::current_exception());
      }
    }
  }
  note_completed();
}

void AsyncAmIndex::fulfill(Pending& pending, SearchResponse response) {
  // Record before set_value: a future observer that wakes on the result
  // must already see this request in the stats (future.get synchronizes
  // with the promise, ordering these relaxed writes for the observer).
  end_to_end_us_.record(us_between(pending.submitted, Clock::now()));
  served_.fetch_add(1, std::memory_order_relaxed);
  pending.promise->set_value(std::move(response));
}

void AsyncAmIndex::fail(Pending& pending, std::exception_ptr error) {
  end_to_end_us_.record(us_between(pending.submitted, Clock::now()));
  served_.fetch_add(1, std::memory_order_relaxed);
  pending.promise->set_exception(std::move(error));
}

}  // namespace ferex::serve
