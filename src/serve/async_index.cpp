#include "serve/async_index.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

namespace ferex::serve {

namespace {

using Clock = std::chrono::steady_clock;

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

AsyncOptions sanitized(AsyncOptions options) {
  options.queue_depth = std::max<std::size_t>(1, options.queue_depth);
  options.max_batch = std::max<std::size_t>(1, options.max_batch);
  options.dispatchers = std::max<std::size_t>(1, options.dispatchers);
  return options;
}

}  // namespace

AsyncAmIndex::AsyncAmIndex(AmIndex& index, AsyncOptions options)
    : index_(index),
      options_(sanitized(options)),
      queue_(options_.queue_depth) {
  // Take over ordinal accounting where the index left off, so an async
  // session after synchronous traffic continues the same noise-stream
  // sequence instead of re-serving consumed ordinals.
  serial_ = index_.query_serial();
  dispatchers_.reserve(options_.dispatchers);
  for (std::size_t d = 0; d < options_.dispatchers; ++d) {
    dispatchers_.emplace_back([this] { dispatch_loop(); });
  }
}

AsyncAmIndex::~AsyncAmIndex() { shutdown(); }

std::future<SearchResponse> AsyncAmIndex::submit(SearchRequest request) {
  // Validation first: a malformed request throws the backend's own
  // exception before a promise, an ordinal, or a queue slot exists for
  // it — exactly the synchronous entry points' contract.
  index_.validate_request(request);

  Pending pending;
  pending.submitted = Clock::now();

  std::lock_guard<std::mutex> lock(submit_mutex_);
  if (shutdown_) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    throw ShutDown("AsyncAmIndex: submit after shutdown");
  }
  const bool pinned = request.ordinal.has_value();
  pending.ordinal = pinned ? *request.ordinal : serial_;
  pending.request = std::move(request);
  std::future<SearchResponse> future = pending.promise.get_future();
  // Pushers all hold submit_mutex_, so a failed push can only mean the
  // queue is genuinely at depth (pops only make room) — admission
  // control, with the serial untouched.
  if (!queue_.try_push(std::move(pending))) {
    rejected_overload_.fetch_add(1, std::memory_order_relaxed);
    throw Overloaded("AsyncAmIndex: request queue at depth " +
                     std::to_string(options_.queue_depth));
  }
  if (!pinned) ++serial_;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

std::vector<std::future<SearchResponse>> AsyncAmIndex::submit_batch(
    std::span<const SearchRequest> requests) {
  for (const auto& request : requests) index_.validate_request(request);
  std::vector<std::future<SearchResponse>> futures;
  futures.reserve(requests.size());
  if (requests.empty()) return futures;

  const auto now = Clock::now();
  std::lock_guard<std::mutex> lock(submit_mutex_);
  if (shutdown_) {
    rejected_shutdown_.fetch_add(requests.size(), std::memory_order_relaxed);
    throw ShutDown("AsyncAmIndex: submit_batch after shutdown");
  }
  // All-or-nothing admission: a batch that does not fit consumes nothing
  // (mirrors the synchronous search_batch, where a rejected batch leaves
  // the serial where it was).
  if (queue_.size() + requests.size() > queue_.capacity()) {
    rejected_overload_.fetch_add(requests.size(), std::memory_order_relaxed);
    throw Overloaded("AsyncAmIndex: batch of " +
                     std::to_string(requests.size()) +
                     " exceeds queue depth " +
                     std::to_string(options_.queue_depth));
  }
  std::uint64_t next = serial_;
  for (const auto& request : requests) {
    Pending pending;
    pending.submitted = now;
    pending.request = request;
    pending.ordinal = request.ordinal ? *request.ordinal : next++;
    futures.push_back(pending.promise.get_future());
    // Cannot fail: capacity was checked under the same mutex all
    // pushers hold, and close() also takes it.
    queue_.try_push(std::move(pending));
  }
  serial_ = next;
  submitted_.fetch_add(requests.size(), std::memory_order_relaxed);
  return futures;
}

void AsyncAmIndex::shutdown() {
  std::uint64_t final_serial = 0;
  {
    std::lock_guard<std::mutex> lock(submit_mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    final_serial = serial_;
  }
  // Drain mode: pushes now fail, but the dispatchers keep popping until
  // the queue is empty — every accepted future completes.
  queue_.close();
  for (auto& dispatcher : dispatchers_) {
    if (dispatcher.joinable()) dispatcher.join();
  }
  // Hand the advanced serial back: synchronous traffic after this
  // session continues the stream where the async ordinals stopped.
  index_.set_query_serial(final_serial);
}

bool AsyncAmIndex::shut_down() const {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  return shutdown_;
}

std::uint64_t AsyncAmIndex::query_serial() const {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  return serial_;
}

ServeStats AsyncAmIndex::stats() const {
  ServeStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected_overload =
      rejected_overload_.load(std::memory_order_relaxed);
  stats.rejected_shutdown =
      rejected_shutdown_.load(std::memory_order_relaxed);
  stats.served = served_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.max_batch = max_batch_.load(std::memory_order_relaxed);
  stats.queue_wait_us = queue_wait_us_.summarize();
  stats.end_to_end_us = end_to_end_us_.summarize();
  return stats;
}

void AsyncAmIndex::dispatch_loop() {
  std::vector<Pending> batch;
  Pending first;
  while (queue_.pop(first)) {
    batch.clear();
    batch.push_back(std::move(first));
    // Coalesce: take whatever is already queued, then — if the batch is
    // still short and a linger is configured — wait for stragglers. The
    // deadline is anchored at the first pop so a trickle of arrivals
    // cannot stall dispatch indefinitely.
    const auto deadline =
        Clock::now() + std::chrono::microseconds(options_.max_wait_us);
    while (batch.size() < options_.max_batch) {
      Pending next;
      if (queue_.try_pop(next)) {
        batch.push_back(std::move(next));
        continue;
      }
      if (options_.max_wait_us == 0 || !queue_.pop_until(next, deadline)) {
        break;
      }
      batch.push_back(std::move(next));
    }
    serve_batch(batch);
  }
}

void AsyncAmIndex::serve_batch(std::vector<Pending>& batch) {
  const auto dispatch_start = Clock::now();
  for (const auto& pending : batch) {
    queue_wait_us_.record(us_between(pending.submitted, dispatch_start));
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t prev_max = max_batch_.load(std::memory_order_relaxed);
  while (batch.size() > prev_max &&
         !max_batch_.compare_exchange_weak(prev_max, batch.size(),
                                           std::memory_order_relaxed)) {
  }

  if (batch.size() == 1) {
    auto& pending = batch.front();
    try {
      fulfill(pending, index_.search_at(pending.request, pending.ordinal));
    } catch (...) {
      fail(pending, std::current_exception());
    }
    return;
  }

  std::vector<SearchRequest> requests;
  std::vector<std::uint64_t> ordinals;
  requests.reserve(batch.size());
  ordinals.reserve(batch.size());
  for (auto& pending : batch) {
    requests.push_back(std::move(pending.request));
    ordinals.push_back(pending.ordinal);
  }
  try {
    auto responses = index_.search_batch_at(requests, ordinals);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      fulfill(batch[i], std::move(responses[i]));
    }
  } catch (...) {
    // A mid-batch backend failure must not poison batchmates: retry each
    // request alone (ordinal-addressed, so the retry is bit-identical to
    // a first service) and fail only the futures that themselves throw.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      try {
        fulfill(batch[i], index_.search_at(
                              SearchRequest{std::move(requests[i].query),
                                            requests[i].k, std::nullopt},
                              ordinals[i]));
      } catch (...) {
        fail(batch[i], std::current_exception());
      }
    }
  }
}

void AsyncAmIndex::fulfill(Pending& pending, SearchResponse response) {
  // Record before set_value: a future observer that wakes on the result
  // must already see this request in the stats (future.get synchronizes
  // with the promise, ordering these relaxed writes for the observer).
  end_to_end_us_.record(us_between(pending.submitted, Clock::now()));
  served_.fetch_add(1, std::memory_order_relaxed);
  pending.promise.set_value(std::move(response));
}

void AsyncAmIndex::fail(Pending& pending, std::exception_ptr error) {
  end_to_end_us_.record(us_between(pending.submitted, Clock::now()));
  served_.fetch_add(1, std::memory_order_relaxed);
  pending.promise.set_exception(std::move(error));
}

}  // namespace ferex::serve
