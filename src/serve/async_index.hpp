// AsyncAmIndex — the asynchronous front door over any AmIndex.
//
// Synchronous serving couples batch shape to client call patterns: a
// thousand independent callers each issuing search() never form the
// hardware-shaped batches the banked kernels are fast at, and a burst
// has no backpressure story beyond blocking. AsyncAmIndex interposes
// the classic serving triad:
//
//   * a bounded MPMC request queue with completion futures —
//     submit(request) returns std::future<SearchResponse> immediately;
//   * admission control — past `queue_depth` pending requests,
//     submissions fail fast with the typed Overloaded error (callers
//     shed or retry; latency never grows without bound). The v2
//     AdmissionPolicy extends this with per-class queue shares,
//     deadline-based shedding (a request whose `deadline_us` budget is
//     already hopeless by queue-wait estimate throws DeadlineExceeded
//     at submit; one that expires while queued is shed at dispatch,
//     the future surfacing the same type), and class priorities
//     (kSearchFirst placement bounds how many queued writes a search
//     can wait behind). Every rejection derives from RejectedRequest;
//   * batch coalescing — dispatcher threads drain the queue and fuse
//     adjacent singles into one AmIndex::search_batch_at call, up to
//     `max_batch` requests, lingering up to `max_wait_us` for stragglers
//     when the queue runs dry mid-batch.
//
// Determinism: every accepted request is assigned its noise-stream
// ordinal *at submission time* (the index's next serial, or the
// request's own pinned ordinal), and dispatchers serve through the const
// ordinal-addressed cores. Responses are therefore bit-identical to a
// synchronous AmIndex serving the same requests in submission order —
// coalescing, dispatcher count, and thread interleaving never change a
// result, only when it arrives.
//
// Writes flow through the same queue: submit_insert / submit_remove /
// submit_update return std::future<WriteReceipt> and serialize against
// searches by submission order. Every operation carries a write epoch
// assigned at
// submission (searches: how many writes were admitted before them;
// writes: their own index in the admitted write sequence). A search
// executes only once exactly its epoch's writes have applied; a write
// applies only once every search admitted before it has completed —
// so dispatcher coalescing never reorders a search across a write it
// was submitted after, batches never span a write boundary, and the
// response stream is bit-identical to a synchronous AmIndex applying
// the same operations in submission order, regardless of dispatcher
// count. A failed write (e.g. double remove) surfaces through its
// future and still advances the epoch — exactly the synchronous
// sequence, where the throwing call mutates nothing.
//
// Lifecycle: shutdown() (and the destructor) closes the queue, lets the
// dispatchers drain every accepted request (all futures complete — by
// value or exception, none broken), and joins them. Submissions after
// shutdown fail fast with the typed ShutDown error. Backend exceptions
// surface through the affected futures, never std::terminate.
//
// The wrapped index must outlive the AsyncAmIndex. While the front door
// is open the index is marked async-owned: synchronous mutation or
// ordinal-consuming synchronous serving throws the typed
// MutationWhileServed instead of silently racing the dispatchers
// (shutdown() returns the index to synchronous use).
//
// Per-shard affinity: with a BankedIndex backend, a coalesced batch's
// bank fan-out runs on util::parallel_for_affine, which maps bank b to
// the same pool participant on every call — each bank's cached bias and
// current tables stay warm in one thread's caches across the serving
// stream.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/profiler.hpp"
#include "serve/am_index.hpp"
#include "util/bounded_queue.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ferex::serve {

class Wal;

/// Admission-control policy for the async front doors — the v2 API's
/// session-level half (SubmitOptions is the per-request half). A
/// default-constructed policy reproduces v1 behavior exactly: no
/// deadlines enforced, strict FIFO placement, no per-class caps.
struct AdmissionPolicy {
  /// Where searches are placed relative to queued writes.
  enum class ClassOrder : std::uint8_t {
    /// Strict submission order — v1. Requests carrying
    /// SubmitOptions::Priority::kUrgent still jump queued writes.
    kFifo = 0,
    /// Searches are placed ahead of queued writes (beyond the
    /// max_writes_ahead budget), so a bulk-write backlog never adds
    /// more than that bounded budget to search queue wait. Searches
    /// placed ahead of a write run against the pre-write state — the
    /// trade the caller opts into; FIFO traffic keeps the bit-identical
    /// submission-order guarantee.
    kSearchFirst,
  };
  ClassOrder order = ClassOrder::kFifo;

  /// Ahead-of-write placement still yields to this many queued writes
  /// (counted from the queue's front): the write class's bounded
  /// anti-starvation budget. 0 = a placed search overtakes every
  /// queued write.
  std::size_t max_writes_ahead = 0;

  /// Per-class queue shares: each class may hold at most this many of
  /// the queue_depth slots (0 = unlimited, v1). A class at its share is
  /// rejected with Overloaded even while the queue has room, so a
  /// bulk-write burst cannot squeeze searches out of admission (or vice
  /// versa).
  std::size_t max_queued_searches = 0;
  std::size_t max_queued_writes = 0;

  /// When deadline shedding is decided.
  enum class ShedPolicy : std::uint8_t {
    /// Estimate queue wait at submit (shedding hopeless requests with
    /// DeadlineExceeded before they consume a slot) AND recheck the
    /// measured wait at dispatch.
    kSubmitAndDispatch = 0,
    /// Only shed requests whose measured queue wait exceeded the
    /// budget at dispatch; submit never second-guesses.
    kDispatchOnly,
  };
  ShedPolicy shed = ShedPolicy::kSubmitAndDispatch;

  /// Per-operation service-time assumption (us) for the submit-time
  /// queue-wait estimate: estimated wait = ops ahead x this. 0 = learn
  /// it live from observed service times (an EWMA); the estimate then
  /// starts at "no idea" and submit sheds nothing until it warms up,
  /// so a cold session defaults to admitting.
  std::uint64_t assumed_service_us = 0;
};

struct AsyncOptions {
  /// Admission limit: max requests queued ahead of the dispatchers.
  std::size_t queue_depth = 1024;
  /// Coalescing cap: max requests fused into one search_batch_at call.
  std::size_t max_batch = 32;
  /// Coalescing linger: once a dispatcher holds at least one request, it
  /// waits up to this long for more before serving a short batch. 0
  /// serves whatever is immediately available.
  std::uint32_t max_wait_us = 100;
  /// Dispatcher threads draining the queue. One preserves global FIFO
  /// dispatch order; more trade ordering of *completion* for overlap
  /// (results stay bit-identical either way — ordinals are pinned).
  std::size_t dispatchers = 1;
  /// Optional write-ahead log (see DurableIndex::wal()). Each accepted
  /// write is journaled at epoch-assignment time, under the submit
  /// mutex, after admission is decided — so log order equals write-epoch
  /// order equals apply order, and the log never records a rejected op.
  /// Must outlive the AsyncAmIndex; appends must not race synchronous
  /// use of the same Wal (the MutationWhileServed guard already keeps
  /// the DurableIndex front door closed during the session).
  Wal* wal = nullptr;
  /// v2: deadline shedding + class priorities (defaults = v1 exactly).
  AdmissionPolicy admission;
};

/// Counters + latency percentiles for a serving session (all since
/// construction; see LatencyReservoir for snapshot semantics), broken
/// out per request class — searches and writes queue, shed, and
/// complete on different terms (writes never coalesce, and folding
/// their waits into the search reservoirs would skew the percentiles
/// the serve bench gates).
struct ServeStats {
  /// One request class's view of the session. Reservoirs time served
  /// traffic only; rejected and shed requests are counted, not timed.
  struct ClassStats {
    std::uint64_t submitted = 0;          ///< accepted requests
    std::uint64_t rejected_overload = 0;  ///< failed admission (Overloaded)
    std::uint64_t rejected_shutdown = 0;  ///< submitted after shutdown
    std::uint64_t shed_deadline = 0;      ///< DeadlineExceeded sheds
    std::uint64_t served = 0;             ///< futures completed by service
    core::LatencyReservoir::Summary queue_wait_us;  ///< submit -> dispatch
    core::LatencyReservoir::Summary end_to_end_us;  ///< submit -> complete
  };
  ClassStats search;
  ClassStats write;
  std::uint64_t shed_submit = 0;    ///< deadline sheds decided at submit
  std::uint64_t shed_dispatch = 0;  ///< deadline sheds decided at dispatch
  std::uint64_t batches = 0;        ///< search dispatch calls issued
  std::uint64_t max_batch = 0;      ///< largest coalesced batch
};

class AsyncAmIndex {
 public:
  /// Spawns the dispatcher threads immediately (options are clamped to
  /// at least one of everything). The index must already be configured
  /// and loaded before requests arrive.
  explicit AsyncAmIndex(AmIndex& index, AsyncOptions options = {});

  /// shutdown(): drains accepted requests, completes every future.
  ~AsyncAmIndex();

  AsyncAmIndex(const AsyncAmIndex&) = delete;
  AsyncAmIndex& operator=(const AsyncAmIndex&) = delete;

  /// Enqueues one request and returns its completion future. Validates
  /// first (nothing consumed on a throw): on a quiescent session the
  /// full request validation runs at submit, same exceptions as
  /// AmIndex::search; while writes are in flight only k >= 1 is
  /// decidable — the state this request will see (live rows, even
  /// whether a queued first insert has established the index) is a
  /// function of the queued writes, so validation reruns at execution
  /// and surfaces through the future, exactly where the synchronous
  /// sequence would throw. Then assigns the noise-stream ordinal (the
  /// wrapper's next serial, or request.ordinal when pinned) and
  /// admits — throwing Overloaded on a full queue, ShutDown after
  /// shutdown(), with the serial unmoved in both cases.
  std::future<SearchResponse> submit(SearchRequest request);

  /// All-or-nothing batch submission: either every request is accepted
  /// (ordinals assigned contiguously in order, one future each) or the
  /// whole batch is rejected and nothing is consumed. Already-batched
  /// traffic skips the coalescing wait: the dispatcher still splits or
  /// fuses it to max_batch.
  std::vector<std::future<SearchResponse>> submit_batch(
      std::span<const SearchRequest> requests);

  /// Enqueues a row deletion. The physical slot range is checked at
  /// submit on a quiescent index (std::out_of_range); liveness — and
  /// the range itself once writes are in flight — is a property of when
  /// the op executes, so those failures surface through the future,
  /// exactly as the synchronous sequence would throw. Admission matches
  /// submit (Overloaded / ShutDown, nothing consumed on rejection). The
  /// op serializes against every search by submission order (see the
  /// file comment).
  std::future<WriteReceipt> submit_remove(std::size_t global_row);

  /// Enqueues an in-place overwrite. Vector length is validated at
  /// submit (dimensionality cannot change while the wrapper owns the
  /// index); the row range follows submit_remove's rules; alphabet
  /// errors surface through the future.
  std::future<WriteReceipt> submit_update(std::size_t global_row,
                                          std::vector<int> vector);

  /// Enqueues a streaming insert (freed slots reused before growth, as
  /// AmIndex::insert). Vector length is validated at submit; alphabet
  /// errors surface through the future. The receipt says where the row
  /// landed.
  std::future<WriteReceipt> submit_insert(std::vector<int> vector);

  /// Closes the queue, drains every accepted request (their futures
  /// complete), joins the dispatchers. Idempotent; afterwards submit
  /// throws ShutDown.
  void shutdown();

  bool shut_down() const;

  /// Ordinal the next unpinned submission will take. Seeded from the
  /// wrapped index's query_serial() at construction and handed back at
  /// shutdown, so synchronous traffic before and after an async session
  /// continues one unbroken noise-stream sequence.
  std::uint64_t query_serial() const;

  ServeStats stats() const;

  const AsyncOptions& options() const noexcept { return options_; }

 private:
  struct Pending {
    enum class Kind { kSearch, kRemove, kUpdate, kInsert };
    /// write_epoch sentinel for ahead-of-write placed searches: no
    /// epoch wait — the search runs against whatever state the index
    /// holds when a dispatcher reaches it (execution still excludes
    /// write application via validate_mutex_).
    static constexpr std::uint64_t kNoEpochWait =
        ~static_cast<std::uint64_t>(0);
    Kind kind = Kind::kSearch;
    SearchRequest request;       ///< kSearch
    std::size_t row = 0;         ///< kRemove / kUpdate
    std::vector<int> vector;     ///< kUpdate / kInsert
    std::uint64_t ordinal = 0;   ///< kSearch (noise stream)
    /// Ordering tag. Searches: how many writes were admitted before
    /// this op (it runs once that many have applied), or kNoEpochWait
    /// for priority-placed searches. Writes: this op's index in the
    /// admitted write sequence.
    std::uint64_t write_epoch = 0;
    /// Writes only: searches admitted before this op — it applies once
    /// that many have completed.
    std::uint64_t searches_before = 0;
    /// Exactly one is engaged per op (a default std::promise allocates
    /// its shared state, so carrying both non-optionally would waste a
    /// heap allocation per request).
    std::optional<std::promise<SearchResponse>> promise;      ///< kSearch
    std::optional<std::promise<WriteReceipt>> write_promise;  ///< writes
    std::chrono::steady_clock::time_point submitted{};
  };

  /// True when admitted writes have not all applied yet. Takes
  /// order_mutex_ internally (callers must not hold it).
  bool writes_pending() const EXCLUDES(order_mutex_);
  /// Submit-time search validation, run before submit_mutex_ so
  /// submitters do not serialize on the O(dims) query scan. On a
  /// quiescent index the snapshot is authoritative (full
  /// validate_request — malformed requests throw here and consume
  /// nothing). With writes in flight every backend check is deferred:
  /// the state this request will see — including whether a queued
  /// first insert has established the index at all — is a function of
  /// the queued writes, so the checks rerun at execution and surface
  /// through the future, exactly as the synchronous sequence would
  /// throw at the request's position in the stream. Only k >= 1 is
  /// always decidable. Throws ShutDown once shutdown has begun (the
  /// index may already be back in synchronous hands).
  void validate_search_submit(const SearchRequest& request) const
      EXCLUDES(submit_mutex_);
  /// Shared admission tail of the write submit paths: epoch tagging,
  /// push, counters (submit_mutex_ held, shutdown already checked).
  std::future<WriteReceipt> admit_write(Pending pending)
      REQUIRES(submit_mutex_);

  /// True when this request is placed ahead of queued writes (per its
  /// SubmitOptions::priority resolved against the session policy).
  bool placed_ahead(const SearchRequest& request) const noexcept;
  /// Submit-time deadline gate: throws DeadlineExceeded (counting the
  /// shed) when the queue-wait estimate alone already exceeds the
  /// request's budget. A zero estimate (cold EWMA, no assumption)
  /// admits — the dispatch-time recheck still guards the budget.
  void check_submit_deadline(const SearchRequest& request, bool ahead) const
      REQUIRES(submit_mutex_);
  /// Per-op service time (us) the submit estimate multiplies: the
  /// policy's assumption when set, else the live EWMA.
  double service_estimate_us() const noexcept;
  /// Feeds the live EWMA with one dispatch's measured per-op service.
  void note_service(double total_us, std::size_t ops) noexcept;

  void dispatch_loop();
  /// Serves one coalesced batch: singles through search_at, larger
  /// batches through search_batch_at with a per-request fallback so one
  /// failing request cannot poison its batchmates' futures. Waits for
  /// the batch's write epoch first.
  void serve_batch(std::vector<Pending>& batch);
  /// Applies one write op: waits for its turn in submission order,
  /// applies under the state lock, advances the epoch (even on failure —
  /// a throwing write is the synchronous sequence's no-op), completes
  /// the future.
  void serve_write(Pending& pending);
  void fulfill(Pending& pending, SearchResponse response);
  void fail(Pending& pending, std::exception_ptr error);

  AmIndex& index_;
  const AsyncOptions options_;
  util::BoundedQueue<Pending> queue_;

  /// Guards serial_ / shutdown_ / admission-order counters and makes
  /// admission + ordinal assignment atomic. Lock hierarchy (declared
  /// here, enforced acyclic by ferex_lint's lock-order pass): the
  /// submit paths nest validate_mutex_ (shared) inside this lock, and
  /// writes_pending() nests order_mutex_ inside validate_mutex_ — so
  /// submit_mutex_ -> validate_mutex_ -> order_mutex_, never the
  /// reverse (the dispatch side takes order_mutex_ and validate_mutex_
  /// in disjoint scopes).
  mutable util::Mutex submit_mutex_
      ACQUIRED_BEFORE(validate_mutex_, order_mutex_);
  std::uint64_t serial_ GUARDED_BY(submit_mutex_) = 0;
  bool shutdown_ GUARDED_BY(submit_mutex_) = false;
  /// Mirrors shutdown_ for lock-free reads in the pre-lock validators;
  /// set under submit_mutex_, synchronized by the validate_mutex_
  /// barrier shutdown() takes before releasing the index.
  std::atomic<bool> closing_{false};
  /// Writes accepted so far. Written only under submit_mutex_; atomic
  /// (GUARDED_BY-exempt) so the pre-lock validators can consult
  /// quiescence without the lock.
  std::atomic<std::uint64_t> writes_admitted_{0};
  /// Searches accepted so far.
  std::uint64_t searches_admitted_ GUARDED_BY(submit_mutex_) = 0;

  /// Execution-order state: dispatchers wait on order_cv_ until the
  /// counters reach their op's tags (see Pending). Because a write
  /// applies strictly after every earlier search completed and before
  /// any later one starts (all signalled through this mutex), search
  /// execution itself needs no lock against write application.
  mutable util::Mutex order_mutex_;
  std::condition_variable_any order_cv_;
  std::uint64_t writes_applied_ GUARDED_BY(order_mutex_) = 0;
  std::uint64_t searches_completed_ GUARDED_BY(order_mutex_) = 0;

  /// Guards submit-time validation (which reads backend state) against
  /// concurrent write application: validators hold it shared, the
  /// applying dispatcher exclusively. Middle rung of the declared
  /// hierarchy: the quiescence probe (writes_pending) takes
  /// order_mutex_ while a validator holds this lock shared.
  mutable util::SharedMutex validate_mutex_ ACQUIRED_BEFORE(order_mutex_);

  /// Waived from the repo linter's raw-thread rule: dispatcher threads
  /// are this subsystem's purpose, and their lifecycle is owned end to
  /// end by the constructor/shutdown() pair (joined, never detached).
  std::vector<std::thread> dispatchers_;  // ferex-lint: allow(raw-thread)

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  /// mutable: also counted from the const submit-time validator.
  mutable std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::atomic<std::uint64_t> writes_submitted_{0};
  std::atomic<std::uint64_t> writes_rejected_overload_{0};
  std::atomic<std::uint64_t> writes_rejected_shutdown_{0};
  std::atomic<std::uint64_t> writes_served_{0};
  /// Deadline sheds by decision point (search class only — writes
  /// carry no deadline). mutable: submit sheds are counted from the
  /// const submit-time gate.
  mutable std::atomic<std::uint64_t> shed_submit_{0};
  std::atomic<std::uint64_t> shed_dispatch_{0};
  /// Queue occupancy per class, for admission shares and the submit
  /// wait estimate. Incremented under submit_mutex_ at push, decremented
  /// by dispatchers at pop (GUARDED_BY-exempt atomics by design).
  std::atomic<std::size_t> queued_searches_{0};
  std::atomic<std::size_t> queued_writes_{0};
  /// Live EWMA of per-op service time (us), feeding the submit-time
  /// queue-wait estimate when the policy assumes nothing. 0 = cold.
  std::atomic<double> est_service_us_{0.0};
  core::LatencyReservoir queue_wait_us_;
  core::LatencyReservoir end_to_end_us_;
  core::LatencyReservoir write_queue_wait_us_;
  core::LatencyReservoir write_end_to_end_us_;
};

}  // namespace ferex::serve
