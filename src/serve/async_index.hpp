// AsyncAmIndex — the asynchronous front door over any AmIndex.
//
// Synchronous serving couples batch shape to client call patterns: a
// thousand independent callers each issuing search() never form the
// hardware-shaped batches the banked kernels are fast at, and a burst
// has no backpressure story beyond blocking. AsyncAmIndex interposes
// the classic serving triad:
//
//   * a bounded MPMC request queue with completion futures —
//     submit(request) returns std::future<SearchResponse> immediately;
//   * admission control — past `queue_depth` pending requests,
//     submissions fail fast with the typed Overloaded error (callers
//     shed or retry; latency never grows without bound);
//   * batch coalescing — dispatcher threads drain the queue and fuse
//     adjacent singles into one AmIndex::search_batch_at call, up to
//     `max_batch` requests, lingering up to `max_wait_us` for stragglers
//     when the queue runs dry mid-batch.
//
// Determinism: every accepted request is assigned its noise-stream
// ordinal *at submission time* (the index's next serial, or the
// request's own pinned ordinal), and dispatchers serve through the const
// ordinal-addressed cores. Responses are therefore bit-identical to a
// synchronous AmIndex serving the same requests in submission order —
// coalescing, dispatcher count, and thread interleaving never change a
// result, only when it arrives.
//
// Lifecycle: shutdown() (and the destructor) closes the queue, lets the
// dispatchers drain every accepted request (all futures complete — by
// value or exception, none broken), and joins them. Submissions after
// shutdown fail fast with the typed ShutDown error. Backend exceptions
// surface through the affected futures, never std::terminate.
//
// The wrapped index must outlive the AsyncAmIndex, and must not be
// mutated (store/insert/configure) or served synchronously while the
// async front door is open — the wrapper owns its ordinal accounting.
//
// Per-shard affinity: with a BankedIndex backend, a coalesced batch's
// bank fan-out runs on util::parallel_for_affine, which maps bank b to
// the same pool participant on every call — each bank's cached bias and
// current tables stay warm in one thread's caches across the serving
// stream.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/profiler.hpp"
#include "serve/am_index.hpp"
#include "util/bounded_queue.hpp"

namespace ferex::serve {

/// Admission rejection: the request queue is at queue_depth. Fail-fast
/// by design — submit never blocks the caller.
class Overloaded : public std::runtime_error {
 public:
  explicit Overloaded(const std::string& what) : std::runtime_error(what) {}
};

/// Submission after shutdown() — the front door is closed for good.
class ShutDown : public std::logic_error {
 public:
  explicit ShutDown(const std::string& what) : std::logic_error(what) {}
};

struct AsyncOptions {
  /// Admission limit: max requests queued ahead of the dispatchers.
  std::size_t queue_depth = 1024;
  /// Coalescing cap: max requests fused into one search_batch_at call.
  std::size_t max_batch = 32;
  /// Coalescing linger: once a dispatcher holds at least one request, it
  /// waits up to this long for more before serving a short batch. 0
  /// serves whatever is immediately available.
  std::uint32_t max_wait_us = 100;
  /// Dispatcher threads draining the queue. One preserves global FIFO
  /// dispatch order; more trade ordering of *completion* for overlap
  /// (results stay bit-identical either way — ordinals are pinned).
  std::size_t dispatchers = 1;
};

/// Counters + latency percentiles for a serving session (all since
/// construction; see LatencyReservoir for snapshot semantics).
struct ServeStats {
  std::uint64_t submitted = 0;          ///< accepted requests
  std::uint64_t rejected_overload = 0;  ///< failed admission (Overloaded)
  std::uint64_t rejected_shutdown = 0;  ///< submitted after shutdown
  std::uint64_t served = 0;             ///< futures completed
  std::uint64_t batches = 0;            ///< dispatch calls issued
  std::uint64_t max_batch = 0;          ///< largest coalesced batch
  core::LatencyReservoir::Summary queue_wait_us;  ///< submit -> dispatch
  core::LatencyReservoir::Summary end_to_end_us;  ///< submit -> complete
};

class AsyncAmIndex {
 public:
  /// Spawns the dispatcher threads immediately (options are clamped to
  /// at least one of everything). The index must already be configured
  /// and loaded before requests arrive.
  explicit AsyncAmIndex(AmIndex& index, AsyncOptions options = {});

  /// shutdown(): drains accepted requests, completes every future.
  ~AsyncAmIndex();

  AsyncAmIndex(const AsyncAmIndex&) = delete;
  AsyncAmIndex& operator=(const AsyncAmIndex&) = delete;

  /// Enqueues one request and returns its completion future. Validates
  /// first (same exceptions as AmIndex::search, nothing consumed on a
  /// malformed request); then assigns the noise-stream ordinal (the
  /// wrapper's next serial, or request.ordinal when pinned) and admits —
  /// throwing Overloaded on a full queue, ShutDown after shutdown(),
  /// with the serial unmoved in both cases.
  std::future<SearchResponse> submit(SearchRequest request);

  /// All-or-nothing batch submission: either every request is accepted
  /// (ordinals assigned contiguously in order, one future each) or the
  /// whole batch is rejected and nothing is consumed. Already-batched
  /// traffic skips the coalescing wait: the dispatcher still splits or
  /// fuses it to max_batch.
  std::vector<std::future<SearchResponse>> submit_batch(
      std::span<const SearchRequest> requests);

  /// Closes the queue, drains every accepted request (their futures
  /// complete), joins the dispatchers. Idempotent; afterwards submit
  /// throws ShutDown.
  void shutdown();

  bool shut_down() const;

  /// Ordinal the next unpinned submission will take. Seeded from the
  /// wrapped index's query_serial() at construction and handed back at
  /// shutdown, so synchronous traffic before and after an async session
  /// continues one unbroken noise-stream sequence.
  std::uint64_t query_serial() const;

  ServeStats stats() const;

  const AsyncOptions& options() const noexcept { return options_; }

 private:
  struct Pending {
    SearchRequest request;
    std::uint64_t ordinal = 0;
    std::promise<SearchResponse> promise;
    std::chrono::steady_clock::time_point submitted{};
  };

  void dispatch_loop();
  /// Serves one coalesced batch: singles through search_at, larger
  /// batches through search_batch_at with a per-request fallback so one
  /// failing request cannot poison its batchmates' futures.
  void serve_batch(std::vector<Pending>& batch);
  void fulfill(Pending& pending, SearchResponse response);
  void fail(Pending& pending, std::exception_ptr error);

  AmIndex& index_;
  const AsyncOptions options_;
  util::BoundedQueue<Pending> queue_;

  mutable std::mutex submit_mutex_;  ///< guards serial_ / shutdown_ and
                                     ///< makes admission + ordinal atomic
  std::uint64_t serial_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> dispatchers_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  core::LatencyReservoir queue_wait_us_;
  core::LatencyReservoir end_to_end_us_;
};

}  // namespace ferex::serve
