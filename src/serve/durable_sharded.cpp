#include "serve/durable_sharded.hpp"

#include <cstring>
#include <utility>

#include "serve/snapshot.hpp"
#include "util/durable_file.hpp"
#include "util/failpoint.hpp"

namespace ferex::serve {

namespace {

constexpr char kManifestMagic[8] = {'F', 'E', 'R', 'E', 'X', 'S', 'H', 'M'};
constexpr std::uint32_t kManifestVersion = 1;

struct ShardManifest {
  std::uint64_t shards = 0;
  std::uint64_t shard_block = 0;
  std::uint8_t backend = 0;
  std::uint64_t bank_rows = 0;
  std::uint64_t query_serial = 0;
  std::vector<std::uint64_t> shard_rows;
};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xff);
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t& at) {
  if (in.size() - at < 4) throw SnapshotMismatch("manifest truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(in[at++]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& in, std::size_t& at) {
  if (in.size() - at < 8) throw SnapshotMismatch("manifest truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(in[at++]) << (8 * i);
  return v;
}

std::vector<std::uint8_t> encode_manifest(const ShardManifest& manifest) {
  std::vector<std::uint8_t> out;
  out.reserve(sizeof kManifestMagic + 37 + 8 * manifest.shard_rows.size());
  for (const char c : kManifestMagic) {
    out.push_back(static_cast<std::uint8_t>(c));
  }
  put_u32(out, kManifestVersion);
  put_u64(out, manifest.shards);
  put_u64(out, manifest.shard_block);
  out.push_back(manifest.backend);
  put_u64(out, manifest.bank_rows);
  put_u64(out, manifest.query_serial);
  for (const std::uint64_t rows : manifest.shard_rows) put_u64(out, rows);
  return out;
}

ShardManifest decode_manifest(const std::vector<std::uint8_t>& bytes) {
  std::size_t at = 0;
  if (bytes.size() < sizeof kManifestMagic ||
      std::memcmp(bytes.data(), kManifestMagic, sizeof kManifestMagic) != 0) {
    throw SnapshotMismatch("manifest magic");
  }
  at = sizeof kManifestMagic;
  const std::uint32_t version = get_u32(bytes, at);
  if (version != kManifestVersion) {
    throw SnapshotMismatch("manifest version " + std::to_string(version));
  }
  ShardManifest manifest;
  manifest.shards = get_u64(bytes, at);
  manifest.shard_block = get_u64(bytes, at);
  if (bytes.size() - at < 1) throw SnapshotMismatch("manifest truncated");
  manifest.backend = bytes[at++];
  manifest.bank_rows = get_u64(bytes, at);
  manifest.query_serial = get_u64(bytes, at);
  manifest.shard_rows.reserve(manifest.shards);
  for (std::uint64_t s = 0; s < manifest.shards; ++s) {
    manifest.shard_rows.push_back(get_u64(bytes, at));
  }
  if (at != bytes.size()) throw SnapshotMismatch("manifest trailing bytes");
  return manifest;
}

void check_topology(const ShardManifest& manifest,
                    const ShardedOptions& options) {
  if (manifest.shards != options.shards) {
    throw SnapshotMismatch(
        "manifest shard count " + std::to_string(manifest.shards) +
        ", fleet has " + std::to_string(options.shards));
  }
  if (manifest.shard_block != options.shard_block) {
    throw SnapshotMismatch(
        "manifest shard_block " + std::to_string(manifest.shard_block) +
        ", fleet has " + std::to_string(options.shard_block));
  }
  if (manifest.backend != static_cast<std::uint8_t>(options.backend)) {
    throw SnapshotMismatch("manifest shard backend differs from fleet");
  }
  if (options.backend == ShardBackend::kBanked &&
      manifest.bank_rows != options.bank_rows) {
    throw SnapshotMismatch(
        "manifest bank_rows " + std::to_string(manifest.bank_rows) +
        ", fleet has " + std::to_string(options.bank_rows));
  }
}

}  // namespace

DurableShardedIndex::DurableShardedIndex(ShardedIndex& fleet, std::string dir,
                                         DurableOptions options)
    : fleet_(fleet), dir_(std::move(dir)), options_(options) {
  // Per-shard compaction triggers would rewrite a shard's local layout
  // behind the fleet's routing bookkeeping; fleet-level compaction is a
  // checkpoint-shaped operation this layer does not plumb yet.
  options_.compact_free_fraction = 0.0;

  std::vector<std::uint8_t> bytes;
  const bool have_manifest = util::read_file(manifest_path(), bytes);
  ShardManifest manifest;
  if (have_manifest) {
    manifest = decode_manifest(bytes);
    check_topology(manifest, fleet_.options());
  } else {
    for (std::size_t s = 0; s < fleet_.shard_count(); ++s) {
      std::vector<std::uint8_t> probe;
      if (util::read_file(shard_dir(s) + "/snapshot.ferex", probe) ||
          util::read_file(shard_dir(s) + "/wal.ferex", probe)) {
        throw SnapshotMismatch("shard state without a manifest: " +
                               shard_dir(s));
      }
    }
    // Cold start: manifest first. Every later crash point — between
    // directory creation, WAL creation, or mid-journal — then recovers
    // through the manifest path above.
    write_manifest();
  }

  shards_.reserve(fleet_.shard_count());
  for (std::size_t s = 0; s < fleet_.shard_count(); ++s) {
    util::ensure_directory(shard_dir(s));
    // Each shard recovers through the per-index protocol: snapshot
    // install, torn-tail repair, watermark-skip replay — in shard-local
    // coordinates throughout.
    shards_.push_back(std::make_unique<DurableIndex>(fleet_.shard(s),
                                                     shard_dir(s), options_));
  }
  fleet_.rebuild_routing();

  // The reassembled fleet must be a dense routing image: the routing
  // formula fixes how many rows each shard holds for the recovered
  // total, so a lost, stale, or cross-wired shard directory shows up as
  // a count that no dense fleet could produce.
  const std::size_t total = fleet_.stored_count();
  for (std::size_t s = 0; s < fleet_.shard_count(); ++s) {
    const std::size_t stored = fleet_.shard(s).stored_count();
    if (stored != fleet_.rows_for_shard(s, total)) {
      throw SnapshotMismatch(
          "recovered shard " + std::to_string(s) + " holds " +
          std::to_string(stored) + " rows, routing expects " +
          std::to_string(fleet_.rows_for_shard(s, total)));
    }
  }
  if (have_manifest) fleet_.set_query_serial(manifest.query_serial);
}

void DurableShardedIndex::assert_sync_ownership() {
  // The guarded serial setter runs check_mutable and changes nothing:
  // it throws the typed MutationWhileServed while an async session owns
  // the fleet, before this mutation journals anything.
  fleet_.set_query_serial(fleet_.query_serial());
}

void DurableShardedIndex::configure(csp::DistanceMetric metric, int bits) {
  assert_sync_ownership();
  fleet_.configure(metric, bits);
  for (auto& shard : shards_) {
    shard->wal().append_configure(metric, bits, /*composite=*/false);
  }
  write_manifest();
}

void DurableShardedIndex::store(const std::vector<std::vector<int>>& database) {
  assert_sync_ownership();
  // Apply first: the fleet validates every slice before touching any
  // shard, so a rejected store journals nothing anywhere.
  fleet_.store(database);
  std::vector<std::vector<std::vector<int>>> slices(fleet_.shard_count());
  for (std::size_t g = 0; g < database.size(); ++g) {
    slices[fleet_.shard_of(g)].push_back(database[g]);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    // Journal the realized per-shard image: the reset that store()
    // performed (configure) plus the shard's slice. Replaying a shard
    // log reproduces exactly what the live shard now holds.
    shards_[s]->wal().append_configure(fleet_.metric(), fleet_.bits(),
                                       /*composite=*/false);
    if (!slices[s].empty()) shards_[s]->wal().append_store(slices[s]);
  }
  write_manifest();
}

WriteReceipt DurableShardedIndex::insert(std::span<const int> vector) {
  assert_sync_ownership();
  WriteReceipt receipt = fleet_.insert(vector);
  // receipt.bank is the shard the fleet routed to; the shard's own
  // replay of this record reuses its lowest freed local slot, which is
  // exactly where the live insert landed.
  shards_[receipt.bank]->wal().append_insert(vector);
  return receipt;
}

WriteReceipt DurableShardedIndex::remove(std::size_t global_row) {
  assert_sync_ownership();
  WriteReceipt receipt = fleet_.remove(global_row);
  shards_[receipt.bank]->wal().append_remove(fleet_.to_local(global_row));
  return receipt;
}

WriteReceipt DurableShardedIndex::update(std::size_t global_row,
                                         std::span<const int> vector) {
  assert_sync_ownership();
  WriteReceipt receipt = fleet_.update(global_row, vector);
  shards_[receipt.bank]->wal().append_update(fleet_.to_local(global_row),
                                             vector);
  return receipt;
}

void DurableShardedIndex::checkpoint() {
  assert_sync_ownership();
  // Each shard checkpoint is crash-safe on its own (atomic snapshot,
  // watermark-skip replay), and a checkpoint changes no counts — so a
  // crash between shards still recovers a dense image.
  for (auto& shard : shards_) shard->checkpoint();
  write_manifest();
}

std::vector<Wal*> DurableShardedIndex::shard_wals() {
  std::vector<Wal*> wals;
  wals.reserve(shards_.size());
  for (auto& shard : shards_) wals.push_back(&shard->wal());
  return wals;
}

void DurableShardedIndex::write_manifest() {
  ShardManifest manifest;
  manifest.shards = fleet_.options().shards;
  manifest.shard_block = fleet_.options().shard_block;
  manifest.backend = static_cast<std::uint8_t>(fleet_.options().backend);
  manifest.bank_rows = fleet_.options().bank_rows;
  manifest.query_serial = fleet_.query_serial();
  manifest.shard_rows.reserve(fleet_.shard_count());
  for (std::size_t s = 0; s < fleet_.shard_count(); ++s) {
    manifest.shard_rows.push_back(fleet_.shard(s).stored_count());
  }
  const auto bytes = encode_manifest(manifest);
  util::failpoint_hit("sharded.manifest.before_write");
  util::atomic_write_file(manifest_path(), bytes);
  util::failpoint_hit("sharded.manifest.after_write");
}

}  // namespace ferex::serve
