#include "serve/snapshot.hpp"

#include <cerrno>
#include <cstring>
#include <system_error>

#include "encode/serialize.hpp"
#include "serve/banked_index.hpp"
#include "serve/engine_index.hpp"
#include "util/durable_file.hpp"

namespace ferex::serve {

namespace {

constexpr char kMagic[8] = {'F', 'E', 'R', 'E', 'X', 'S', 'N', 'P'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kEnvelopeBytes = sizeof kMagic + 4 + 4 + 8;

constexpr std::uint8_t kBackendEngine = 1;
constexpr std::uint8_t kBackendBanked = 2;

void put_engine_state(encode::ByteWriter& out,
                      const core::FerexEngine::EngineState& state) {
  const std::size_t rows = state.database.size();
  const std::size_t dims = rows == 0 ? 0 : state.database.front().size();
  out.u64(rows);
  out.u64(dims);
  for (const auto& row : state.database) {
    for (const int v : row) {
      out.u32(static_cast<std::uint32_t>(static_cast<std::int32_t>(v)));
    }
  }
  for (const auto flag : state.live) out.u8(flag);
  out.u64(state.query_serial);
  for (const auto lane : state.rng.s) out.u64(lane);
  out.f64(state.rng.cached_gaussian);
  out.u8(state.rng.has_cached_gaussian ? 1 : 0);
  out.u64(state.vth_offsets.size());
  for (const double v : state.vth_offsets) out.f64(v);
  for (const double r : state.resistances) out.f64(r);
}

core::FerexEngine::EngineState get_engine_state(encode::ByteReader& in) {
  core::FerexEngine::EngineState state;
  const std::uint64_t rows = in.u64();
  const std::uint64_t dims = in.u64();
  if (rows > in.remaining() || (rows > 0 && dims > in.remaining() / 4)) {
    throw encode::CorruptSnapshot(in.offset(), "database shape too large");
  }
  if (rows > 0 && dims == 0) {
    throw encode::CorruptSnapshot(in.offset(), "zero-dimension database");
  }
  state.database.reserve(static_cast<std::size_t>(rows));
  for (std::uint64_t r = 0; r < rows; ++r) {
    std::vector<int> row(static_cast<std::size_t>(dims));
    for (auto& v : row) {
      v = static_cast<int>(static_cast<std::int32_t>(in.u32()));
    }
    state.database.push_back(std::move(row));
  }
  state.live.resize(static_cast<std::size_t>(rows));
  for (auto& flag : state.live) flag = in.u8();
  state.query_serial = in.u64();
  for (auto& lane : state.rng.s) lane = in.u64();
  state.rng.cached_gaussian = in.f64();
  state.rng.has_cached_gaussian = in.u8() != 0;
  const std::uint64_t devices = in.u64();
  if (devices > in.remaining() / 8) {
    throw encode::CorruptSnapshot(in.offset(), "device count too large");
  }
  state.vth_offsets.resize(static_cast<std::size_t>(devices));
  for (auto& v : state.vth_offsets) v = in.f64();
  state.resistances.resize(static_cast<std::size_t>(devices));
  for (auto& r : state.resistances) r = in.f64();
  return state;
}

std::uint8_t fidelity_code(core::SearchFidelity fidelity) {
  return fidelity == core::SearchFidelity::kCircuit ? 0 : 1;
}

const char* fidelity_name(std::uint8_t code) {
  return code == 0 ? "circuit" : "nominal";
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const AmIndex& index,
                                          std::uint64_t wal_watermark) {
  encode::ByteWriter payload;
  if (const auto* engine_index = dynamic_cast<const EngineIndex*>(&index)) {
    const core::FerexEngine& engine = engine_index->engine();
    if (!engine.configured()) {
      throw std::logic_error("encode_snapshot: configure() first");
    }
    payload.u8(kBackendEngine);
    payload.u8(fidelity_code(engine.options().fidelity));
    payload.u8(engine.codec() != nullptr ? 1 : 0);
    payload.u32(static_cast<std::uint32_t>(engine.metric()));
    payload.u32(static_cast<std::uint32_t>(engine.bits()));
    payload.u64(wal_watermark);
    payload.u64(index.query_serial());
    put_engine_state(payload, engine.snapshot_state());
  } else if (const auto* banked_index =
                 dynamic_cast<const BankedIndex*>(&index)) {
    const arch::BankedAm& banked = banked_index->banked();
    if (!banked.configured()) {
      throw std::logic_error("encode_snapshot: configure() first");
    }
    payload.u8(kBackendBanked);
    payload.u8(fidelity_code(banked.options().engine.fidelity));
    payload.u8(0);  // composite is engine-only
    payload.u32(static_cast<std::uint32_t>(banked.metric()));
    payload.u32(static_cast<std::uint32_t>(banked.bits()));
    payload.u64(wal_watermark);
    payload.u64(index.query_serial());
    const arch::BankedAm::BankedState state = banked.snapshot_state();
    payload.u64(banked.options().bank_rows);
    payload.u64(state.query_serial);
    payload.u64(state.banks.size());
    for (std::size_t b = 0; b < state.banks.size(); ++b) {
      payload.u64(state.bank_offsets[b]);
      put_engine_state(payload, state.banks[b]);
    }
  } else {
    throw std::invalid_argument("encode_snapshot: unsupported backend");
  }

  encode::ByteWriter out;
  out.bytes(reinterpret_cast<const std::uint8_t*>(kMagic), sizeof kMagic);
  out.u32(kVersion);
  out.u32(encode::crc32(payload.data()));
  out.u64(payload.size());
  out.bytes(payload.data().data(), payload.size());
  return out.take();
}

std::uint64_t install_snapshot(AmIndex& index,
                               const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kEnvelopeBytes) {
    throw encode::CorruptSnapshot(bytes.size(), "truncated envelope");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    throw encode::CorruptSnapshot(0, "bad magic");
  }
  encode::ByteReader envelope(bytes.data() + sizeof kMagic, 4 + 4 + 8);
  const std::uint32_t version = envelope.u32();
  if (version != kVersion) {
    throw encode::CorruptSnapshot(sizeof kMagic, "unsupported version " +
                                                     std::to_string(version));
  }
  const std::uint32_t stored_crc = envelope.u32();
  const std::uint64_t payload_size = envelope.u64();
  if (payload_size != bytes.size() - kEnvelopeBytes) {
    throw encode::CorruptSnapshot(sizeof kMagic + 8, "payload size mismatch");
  }
  const std::uint8_t* payload_bytes = bytes.data() + kEnvelopeBytes;
  if (encode::crc32(payload_bytes, payload_size) != stored_crc) {
    throw encode::CorruptSnapshot(sizeof kMagic + 4, "checksum mismatch");
  }

  encode::ByteReader payload(payload_bytes, payload_size);
  const std::uint8_t backend = payload.u8();
  const std::uint8_t fidelity = payload.u8();
  const bool composite = payload.u8() != 0;
  const auto metric = static_cast<csp::DistanceMetric>(payload.u32());
  const int bits = static_cast<int>(payload.u32());
  const std::uint64_t watermark = payload.u64();
  const std::uint64_t serving_serial = payload.u64();

  if (auto* engine_index = dynamic_cast<EngineIndex*>(&index)) {
    if (backend != kBackendEngine) {
      throw SnapshotMismatch("snapshot is banked, index is a single macro");
    }
    const std::uint8_t own =
        fidelity_code(engine_index->engine().options().fidelity);
    if (fidelity != own) {
      throw SnapshotMismatch(std::string("snapshot fidelity is ") +
                             fidelity_name(fidelity) + ", index is " +
                             fidelity_name(own));
    }
    if (composite) {
      engine_index->configure_composite(metric, bits);
    } else {
      engine_index->configure(metric, bits);
    }
    auto state = get_engine_state(payload);
    payload.expect_end();
    engine_index->engine().restore_state(std::move(state));
  } else if (auto* banked_index = dynamic_cast<BankedIndex*>(&index)) {
    if (backend != kBackendBanked) {
      throw SnapshotMismatch("snapshot is a single macro, index is banked");
    }
    arch::BankedAm& banked = banked_index->banked();
    const std::uint8_t own = fidelity_code(banked.options().engine.fidelity);
    if (fidelity != own) {
      throw SnapshotMismatch(std::string("snapshot fidelity is ") +
                             fidelity_name(fidelity) + ", index is " +
                             fidelity_name(own));
    }
    banked_index->configure(metric, bits);
    const std::uint64_t bank_rows = payload.u64();
    if (bank_rows != banked.options().bank_rows) {
      throw SnapshotMismatch(
          "snapshot bank_rows " + std::to_string(bank_rows) +
          ", index bank_rows " + std::to_string(banked.options().bank_rows));
    }
    arch::BankedAm::BankedState state;
    state.query_serial = payload.u64();
    const std::uint64_t bank_count = payload.u64();
    if (bank_count > payload.remaining()) {
      throw encode::CorruptSnapshot(payload.offset(), "bank count too large");
    }
    for (std::uint64_t b = 0; b < bank_count; ++b) {
      state.bank_offsets.push_back(
          static_cast<std::size_t>(payload.u64()));
      state.banks.push_back(get_engine_state(payload));
    }
    payload.expect_end();
    banked.restore_state(std::move(state));
  } else {
    throw std::invalid_argument("install_snapshot: unsupported backend");
  }
  index.set_query_serial(serving_serial);
  return watermark;
}

void save_snapshot(const AmIndex& index, const std::string& path,
                   std::uint64_t wal_watermark) {
  util::atomic_write_file(path, encode_snapshot(index, wal_watermark));
}

std::uint64_t load_snapshot(AmIndex& index, const std::string& path) {
  std::vector<std::uint8_t> bytes;
  if (!util::read_file(path, bytes)) {
    throw std::system_error(ENOENT, std::generic_category(),
                            "load_snapshot: " + path);
  }
  return install_snapshot(index, bytes);
}

}  // namespace ferex::serve
