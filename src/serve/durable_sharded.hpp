// Durable sharded serving: per-shard DurableIndex dirs plus a manifest.
//
// DurableShardedIndex composes PR 7's per-index durability across a
// ShardedIndex fleet: each shard owns a full DurableIndex directory
//
//   <dir>/manifest.ferex          atomic manifest (topology + counts)
//   <dir>/shard-<s>/snapshot.ferex
//   <dir>/shard-<s>/wal.ferex     per-shard log, shard-LOCAL coordinates
//
// and a fleet manifest — written via util::atomic_write_file, so it is
// always either the previous complete manifest or the new one — records
// the routing topology (shard count, shard_block, backend, bank rows),
// the per-shard row counts at manifest time, and the fleet query
// serial. Construction recovers: the manifest's topology is checked
// against the fleet's options (SnapshotMismatch names the first field
// that disagrees), each shard replays its own snapshot + WAL through
// DurableIndex, routing is rebuilt from the recovered shards, and the
// reassembled fleet must be a dense routing image — every shard's
// stored count equal to rows_for_shard(s, total) — or SnapshotMismatch
// fires (a lost or cross-wired shard directory cannot masquerade as a
// smaller fleet). Shard state present without a manifest is also a
// SnapshotMismatch: a cold start writes the manifest before any shard
// file exists, so a missing manifest over real shard state can only be
// tampering, never a crash footprint.
//
// Journal ordering differs from DurableIndex, deliberately. DurableIndex
// journals before applying and relies on replay refailing a journaled
// bad op *identically*. Here fleet-level validation (routing, fleet
// dims) is stronger than shard-level validation, so a journaled-then-
// rejected fleet op would NOT refail at shard replay — it could apply.
// Instead the synchronous path applies first and journals only ops the
// fleet accepted: the single-threaded mutation front door makes log
// order equal apply order, and with SyncPolicy::kEveryAppend a mutation
// is on stable storage before it returns — commit still implies
// durable; a crash mid-call loses only that unacknowledged op. The
// async path keeps journal-before-apply (AsyncAmIndex appends at epoch
// assignment): hand shard_wals() to AsyncShardedIndex, whose submit-
// time full validation guarantees accepted sub-ops never fail.
//
// One fleet-wide caveat: store() and configure() touch every shard's
// log, and a crash partway through the fan-out leaves some shard logs
// with the op and others without. Recovery detects this (the dense-
// image check) and throws SnapshotMismatch rather than serving a
// silently mixed fleet; single-row mutations (the serving workload)
// touch exactly one log and recover cleanly at every crash point.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "serve/durable.hpp"
#include "serve/sharded_index.hpp"

namespace ferex::serve {

class DurableShardedIndex {
 public:
  /// Recovers `fleet` from `dir` (which must exist; shard subdirs are
  /// created as needed). A directory with no manifest and no shard
  /// state is a cold start: the manifest is written first, so a crash
  /// anywhere in construction recovers. The fleet must be freshly
  /// constructed (recovery replays into it); to persist a fleet that
  /// already holds rows, wrap it and call checkpoint().
  DurableShardedIndex(ShardedIndex& fleet, std::string dir,
                      DurableOptions options = {});

  /// Journaled mutations — same semantics and exceptions as the fleet's
  /// entry points. Rejected ops journal nothing (see the file comment).
  void configure(csp::DistanceMetric metric, int bits);
  void store(const std::vector<std::vector<int>>& database);
  WriteReceipt insert(std::span<const int> vector);
  WriteReceipt remove(std::size_t global_row);
  WriteReceipt update(std::size_t global_row, std::span<const int> vector);

  /// Checkpoints every shard (snapshot + WAL rotation, crash-safe per
  /// shard), then rewrites the manifest with the current counts and
  /// fleet serial.
  void checkpoint();

  ShardedIndex& index() noexcept { return fleet_; }
  const ShardedIndex& index() const noexcept { return fleet_; }

  /// The live per-shard WAL — pass the full set to AsyncShardedIndex
  /// (its ctor takes one Wal* per shard) for async journaling.
  Wal& shard_wal(std::size_t shard) { return shards_.at(shard)->wal(); }
  std::vector<Wal*> shard_wals();

  std::string manifest_path() const { return dir_ + "/manifest.ferex"; }
  std::string shard_dir(std::size_t shard) const {
    return dir_ + "/shard-" + std::to_string(shard);
  }

 private:
  void assert_sync_ownership();
  /// Encode + failpoint-bracketed atomic write of the manifest
  /// (failpoint sites "sharded.manifest.before_write" / "...after_write"
  /// for crash sweeps, plus util's sites inside atomic_write_file).
  void write_manifest();

  ShardedIndex& fleet_;
  std::string dir_;
  DurableOptions options_;
  std::vector<std::unique_ptr<DurableIndex>> shards_;
};

}  // namespace ferex::serve
