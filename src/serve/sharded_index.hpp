// Sharded scatter-gather serving: one AmIndex over N independent shards.
//
// One AmIndex owns one engine or one banked array, so capacity is
// bounded by a single search fan-out and (async) a single write queue.
// ShardedIndex scales out: it owns N full AmIndex shards (EngineIndex
// or BankedIndex each) behind the same serving API, so callers —
// including DurableIndex-per-shard composition and the per-shard async
// front door (AsyncShardedIndex) — need no new protocol.
//
// Row routing is arithmetic, not a lookup table. Global rows split into
// `shard_block`-sized blocks dealt round-robin across shards:
//
//   blk      = global / shard_block
//   shard    = blk % shards
//   local    = (blk / shards) * shard_block + global % shard_block
//
// so every shard's local array fills densely front to back as the fleet
// grows (the globally-last block is the only partial one, and it is the
// highest block of its shard). insert() appends at global row
// stored_count() — which the formula sends to exactly the target
// shard's next local slot — or reuses the lowest freed global row,
// which per-shard monotonicity maps onto that shard's own lowest freed
// local slot. Receipts and hits always carry global rows; `Hit::bank`
// at this layer is the shard index.
//
// Search is scatter-gather: the query fans to every live shard via
// util::parallel_for_affine (shard s always lands on pool lane s % P,
// keeping its cached bias/current tables warm in one thread), each
// shard serves at the fleet's ordinal against its own comparator-noise
// stream (shard seeds are salted per shard; shard 0 keeps the base
// seed, so a 1-shard fleet is bit-identical to the unsharded index),
// and the per-shard top-k responses k-way merge on sensed current
// (circuit) / nominal distance (nominal). Cross-shard `margin_a` is the
// winner's gap to the best losing candidate across all shards — for
// k == 1 exactly BankedAm's two-best rule via the shared
// util::merge_topk; for k > 1 each merged hit's margin is the gap to
// the best remaining head after it is taken — with the per-shard
// overfetch that head is the true global runner-up, so at nominal
// fidelity these gaps equal the flat index's round margins bit for bit
// — and +inf when the whole fleet is exhausted (the flat comparator
// masks round winners to +inf current but keeps them competing, so its
// own final round reports +inf too). When exactly one shard is
// live — a 1-shard fleet, or every other shard fully deleted — its
// response passes through wholesale (rows remapped, margins untouched),
// so the fleet is bit-identical to that shard served alone at every k
// and both fidelities. Dead shards are skipped
// entirely (no search, no noise draws); EmptyIndex fires only when
// every shard is empty (live_count() sums shards, so the base-class
// validation covers it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include "core/ferex.hpp"
#include "serve/am_index.hpp"

namespace ferex::serve {

class AsyncShardedIndex;

/// Which backend each shard runs. Every shard is homogeneous — a fleet
/// mixes capacity by shard count, not by backend.
enum class ShardBackend {
  kEngine,  ///< one macro per shard (EngineIndex)
  kBanked,  ///< multi-macro banked array per shard (BankedIndex)
};

struct ShardedOptions {
  std::size_t shards = 4;       ///< fleet width (>= 1)
  std::size_t shard_block = 128;  ///< rows per routing block (>= 1)
  ShardBackend backend = ShardBackend::kEngine;
  /// Per-shard engine options. The seed is salted per shard (see
  /// shard_seed); shard 0 keeps the base seed so a 1-shard fleet is
  /// bit-identical to the unsharded index it wraps.
  core::FerexOptions engine{};
  /// Rows per bank inside each shard (kBanked backend only).
  std::size_t bank_rows = 128;
};

/// AmIndex over N independent shards: arithmetic row routing,
/// scatter-gather search with cross-shard margin reconstruction, and
/// the same guarded write path as every other backend.
class ShardedIndex final : public AmIndex {
 public:
  explicit ShardedIndex(ShardedOptions options = {});

  /// The engine seed shard `shard` runs with. Exposed so tests (and
  /// recovery tooling) can construct the exact per-shard reference
  /// index a shard must be bit-identical to.
  static std::uint64_t shard_seed(const ShardedOptions& options,
                                  std::size_t shard) noexcept {
    return options.engine.seed +
           0x9e3779b9ull * static_cast<std::uint64_t>(shard);
  }

  // -- routing (pure arithmetic; public for tests and durability) --
  std::size_t shard_of(std::size_t global_row) const noexcept {
    return (global_row / options_.shard_block) % options_.shards;
  }
  std::size_t to_local(std::size_t global_row) const noexcept {
    const std::size_t block = global_row / options_.shard_block;
    return (block / options_.shards) * options_.shard_block +
           global_row % options_.shard_block;
  }
  std::size_t to_global(std::size_t shard,
                        std::size_t local_row) const noexcept {
    const std::size_t block = local_row / options_.shard_block;
    return (block * options_.shards + shard) * options_.shard_block +
           local_row % options_.shard_block;
  }
  /// Rows the routing formula sends to `shard` out of a fleet of
  /// `total` rows — the shard-local stored count a dense fleet has.
  std::size_t rows_for_shard(std::size_t shard,
                             std::size_t total) const noexcept;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  AmIndex& shard(std::size_t s) { return *shards_.at(s); }
  const AmIndex& shard(std::size_t s) const { return *shards_.at(s); }

  /// Where the next insert() goes: {shard, global row}. Reuses the
  /// lowest freed global row before appending at stored_count(). For
  /// durability layers that must journal an op's destination before
  /// applying it.
  std::pair<std::size_t, std::size_t> next_insert_target() const;

  /// Freed (removed, not yet reused) global rows, lowest first.
  const std::set<std::size_t>& free_rows() const noexcept {
    return free_rows_;
  }

  /// Serves one request against a single shard only (rows remapped to
  /// global, bank = shard). Consumes one fleet ordinal unless the
  /// request pins one — single-shard traffic and scatter-gather traffic
  /// share one ordinal stream. The sync twin of
  /// AsyncShardedIndex::submit_shard.
  SearchResponse search_shard(std::size_t shard,
                              const SearchRequest& request);

  /// Re-derives routing state (free rows, configure cache) from the
  /// shards' own contents, after a durability layer has recovered each
  /// shard in place. Guarded like a mutation. Throws SnapshotMismatch
  /// (from the durable layer's checks) callers detect separately; here
  /// the only requirement is that every shard is a dense routing image.
  void rebuild_routing();

  std::size_t stored_count() const noexcept override;
  std::size_t live_count() const noexcept override;
  std::size_t dims() const noexcept override;
  /// The fan width at this layer: the number of shards. (Per-shard
  /// banks are an implementation detail of the shard backend.)
  std::size_t bank_count() const noexcept override {
    return shards_.size();
  }

  const ShardedOptions& options() const noexcept { return options_; }

  bool configured() const noexcept { return configured_; }
  csp::DistanceMetric metric() const noexcept { return metric_; }
  int bits() const noexcept { return bits_; }

 protected:
  void do_configure(csp::DistanceMetric metric, int bits) override;
  void do_store(const std::vector<std::vector<int>>& database) override;
  WriteReceipt do_insert(std::span<const int> vector) override;
  WriteReceipt do_remove(std::size_t global_row) override;
  WriteReceipt do_update(std::size_t global_row,
                         std::span<const int> vector) override;
  SearchResponse search_core(std::span<const int> query, std::size_t k,
                             std::uint64_t ordinal,
                             bool in_query_pool) const override;
  void validate_backend_query(std::span<const int> query) const override;
  bool inner_fan_for_batch(std::size_t batch_size) const override;

 private:
  /// AsyncShardedIndex claims the fleet (so direct sync use throws
  /// MutationWhileServed) and shares the merge core so async gathers
  /// are structurally identical to the sync path.
  friend class AsyncShardedIndex;

  std::unique_ptr<AmIndex> make_shard(std::size_t shard) const;

  /// The scatter half: one sub-response per shard (dead shards left
  /// empty), each fetched at `ordinal` with per-shard k
  /// (min(k + 1, shard live) so a losing candidate for the margin
  /// always survives the merge unless the fleet is exhausted).
  std::vector<SearchResponse> scatter(std::span<const int> query,
                                      std::size_t k, std::uint64_t ordinal,
                                      bool in_query_pool) const;

  /// The gather half, shared verbatim by the sync path and the async
  /// ticket: k-way merge of per-shard responses with global rows,
  /// bank = shard, and cross-shard margin reconstruction.
  SearchResponse merge_shard_responses(
      std::span<const SearchResponse> parts, std::size_t k) const;

  double merge_key(const Hit& hit) const noexcept;

  ShardedOptions options_;
  std::vector<std::unique_ptr<AmIndex>> shards_;
  std::set<std::size_t> free_rows_;
  csp::DistanceMetric metric_ = csp::DistanceMetric::kHamming;
  int bits_ = 0;
  bool configured_ = false;
};

}  // namespace ferex::serve
