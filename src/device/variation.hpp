// Device-to-device variation model (Sec. IV-A of the paper).
//
// The paper's Monte-Carlo setup uses:
//   * FeFET threshold-voltage D2D variation sigma = 54 mV (Soliman IEDM'20)
//   * 1FeFET1R series-resistance variation 8 % (extracted from fabricated
//     devices, Saito VLSI'21)
// Both are modeled as independent Gaussians per device instance.
#pragma once

#include "util/rng.hpp"

namespace ferex::device {

struct VariationParams {
  double sigma_vth_v = 54e-3;  ///< Vth D2D standard deviation [V]
  double sigma_r_rel = 0.08;   ///< relative resistance standard deviation
  bool enabled = true;         ///< disable for nominal (ideal) simulation
};

/// Per-device random perturbations.
class VariationModel {
 public:
  explicit VariationModel(VariationParams params = {}) : params_(params) {}

  const VariationParams& params() const noexcept { return params_; }

  /// Additive Vth offset [V] for one device instance.
  double sample_vth_offset(util::Rng& rng) const {
    if (!params_.enabled) return 0.0;
    return rng.gaussian(0.0, params_.sigma_vth_v);
  }

  /// Multiplicative resistance factor for one device instance (clamped to
  /// stay strictly positive even in extreme tails).
  double sample_r_multiplier(util::Rng& rng) const {
    if (!params_.enabled) return 1.0;
    const double m = rng.gaussian(1.0, params_.sigma_r_rel);
    return m > 0.05 ? m : 0.05;
  }

 private:
  VariationParams params_{};
};

}  // namespace ferex::device
