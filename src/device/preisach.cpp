#include "device/preisach.hpp"

#include <algorithm>
#include <cmath>

namespace ferex::device {

PreisachFeFet::PreisachFeFet(PreisachParams params) : params_(params) {}

double PreisachFeFet::vth() const noexcept {
  // P = +1 -> vth_low, P = -1 -> vth_high, linear in between.
  const double half_window = memory_window_v() / 2.0;
  const double mid = (params_.vth_high_v + params_.vth_low_v) / 2.0;
  return mid - polarization_ * half_window;
}

void PreisachFeFet::apply_pulse(double amplitude_v, double width_s) {
  const double mag = std::abs(amplitude_v);
  if (mag <= params_.coercive_v || width_s <= 0.0) return;  // sub-coercive

  // Saturation polarization this amplitude can reach (soft sigmoid above
  // the coercive voltage), signed by pulse polarity.
  const double drive = (mag - params_.coercive_v) / params_.softness_v;
  const double p_sat = std::tanh(drive) * (amplitude_v > 0.0 ? 1.0 : -1.0);

  // Switching rate: exponential in overdrive (nucleation-limited
  // switching), so width and amplitude trade off logarithmically.
  const double overdrive = mag / (2.0 * params_.coercive_v);
  const double tau = params_.tau_s * std::exp(1.0 - overdrive);
  const double alpha = 1.0 - std::exp(-width_s / tau);

  // Minor-loop behaviour: P relaxes toward p_sat, never overshooting it.
  if ((amplitude_v > 0.0 && polarization_ < p_sat) ||
      (amplitude_v < 0.0 && polarization_ > p_sat)) {
    polarization_ += (p_sat - polarization_) * alpha;
  }
  polarization_ = std::clamp(polarization_, -1.0, 1.0);
}

void PreisachFeFet::erase() {
  apply_pulse(-params_.write_v, 10.0 * params_.pulse_width_s);
  polarization_ = -1.0;  // saturating erase fully resets the loop
}

std::size_t PreisachFeFet::program_to_vth(double target_v, double tolerance_v,
                                          std::size_t max_pulses) {
  const double target =
      std::clamp(target_v, params_.vth_low_v, params_.vth_high_v);
  const double half_window = memory_window_v() / 2.0;
  const double mid = (params_.vth_high_v + params_.vth_low_v) / 2.0;
  const double p_target = std::clamp((mid - target) / half_window, -1.0, 1.0);

  std::size_t pulses = 0;
  erase();
  ++pulses;

  // Program-and-verify: from the switching law
  //   P' = P + (P_sat - P) * (1 - exp(-w / tau))
  // the pulse width needed to land on p_target is
  //   w = -tau * ln(1 - (p_target - P) / (P_sat - P)).
  // One analytic pulse lands within numerics; loop for robustness against
  // saturation (targets beyond P_sat of the write amplitude).
  while (pulses < max_pulses && std::abs(vth() - target) > tolerance_v) {
    const double p = polarization_;
    const double need = p_target - p;
    const double amplitude = need > 0.0 ? params_.write_v : -params_.write_v;
    const double drive =
        (std::abs(amplitude) - params_.coercive_v) / params_.softness_v;
    const double p_sat = std::tanh(drive) * (amplitude > 0.0 ? 1.0 : -1.0);
    const double denom = p_sat - p;
    if (std::abs(denom) < 1e-12) break;  // fully saturated, cannot move
    const double alpha = std::clamp(need / denom, 0.0, 1.0 - 1e-12);
    if (alpha <= 0.0) break;  // target beyond this amplitude's reach
    const double overdrive = std::abs(amplitude) / (2.0 * params_.coercive_v);
    const double tau = params_.tau_s * std::exp(1.0 - overdrive);
    const double width = -tau * std::log(1.0 - alpha);
    apply_pulse(amplitude, width);
    ++pulses;
  }
  return pulses;
}

}  // namespace ferex::device
