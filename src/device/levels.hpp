// Voltage ladders for multi-level FeFET operation.
//
// FeReX's encoding (Table II) requires interleaved stored-threshold and
// search-voltage levels such that a FeFET programmed to Vt_i turns ON under
// search voltage Vs_j iff i < j. We realize that with a uniform ladder
//
//   Vs_j = base + j * step          (search levels)
//   Vt_i = base + i * step + step/2 (threshold levels)
//
// giving Vs_j - Vt_i = (j - i) * step - step/2, which is positive exactly
// when j > i, with a symmetric noise margin of step/2 on each side.
#pragma once

#include <cstddef>
#include <vector>

namespace ferex::device {

/// Interleaved Vt/Vs ladder for a given number of levels.
class VoltageLadder {
 public:
  /// @param levels  number of distinct Vt (and Vs) levels, >= 1
  /// @param base_v  voltage of Vs_0
  /// @param step_v  ladder pitch; the noise margin is step_v / 2
  VoltageLadder(std::size_t levels, double base_v = 0.2, double step_v = 0.6);

  std::size_t levels() const noexcept { return levels_; }
  double base_v() const noexcept { return base_v_; }
  double step_v() const noexcept { return step_v_; }

  /// Noise margin between any adjacent Vt/Vs pair.
  double margin_v() const noexcept { return step_v_ / 2.0; }

  /// Stored threshold voltage for level i (Vt_i). Requires i < levels().
  double vth(std::size_t i) const;

  /// Search (gate) voltage for level j (Vs_j). Requires j < levels().
  double vsearch(std::size_t j) const;

  /// All threshold levels, ascending.
  std::vector<double> all_vth() const;

  /// All search levels, ascending.
  std::vector<double> all_vsearch() const;

  /// True iff a device at Vt_i conducts under Vs_j (i.e. i < j) with the
  /// nominal (variation-free) ladder.
  bool conducts(std::size_t vth_level, std::size_t vsearch_level) const noexcept {
    return vth_level < vsearch_level;
  }

 private:
  std::size_t levels_;
  double base_v_;
  double step_v_;
};

}  // namespace ferex::device
