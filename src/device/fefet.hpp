// Behavioral FeFET (ferroelectric FET) device model.
//
// The FeReX paper (Sec. II-A) relies on two device facts:
//   1. A FeFET stores a threshold voltage Vth, programmable to multiple
//      levels by gate voltage pulses (polarization of the HfO2 layer).
//   2. In the 1FeFET1R cell the ON current is clamped by the series
//      resistor: Ids ~= min(Isat, Vds / R), making it insensitive to Vth
//      variation while ON, and ~0 when Vgs < Vth.
//
// This module models (1) directly as a stored Vth plus an I-V relation
// with an exponential subthreshold region (so near-threshold search
// voltages leak realistically in Monte-Carlo runs). The series-resistor
// clamp (2) lives in one_fefet_one_r.hpp.
#pragma once

namespace ferex::device {

/// Electrical parameters of a single FeFET (45 nm-class defaults chosen to
/// match the magnitudes used in the paper's simulation setup).
struct FeFetParams {
  double isat_a = 2e-6;           ///< saturation (unclamped) ON current [A]
  double ss_mv_per_dec = 60.0;    ///< subthreshold swing [mV/decade]
  double min_leak_a = 1e-13;      ///< floor leakage current [A]
  double vth_min_v = 0.2;         ///< lowest programmable Vth [V]
  double vth_max_v = 2.0;         ///< highest programmable Vth [V]
};

/// A FeFET with a fixed (already programmed) threshold voltage.
///
/// Invariant: vth is clamped to [params.vth_min_v, params.vth_max_v].
class FeFet {
 public:
  FeFet() = default;
  explicit FeFet(double vth_v, FeFetParams params = {});

  double vth() const noexcept { return vth_v_; }
  const FeFetParams& params() const noexcept { return params_; }

  /// Re-programs the stored threshold voltage (clamped to device range).
  void set_vth(double vth_v) noexcept;

  /// Drain current for a gate-source voltage and drain-source voltage.
  ///
  /// ON (vgs >= vth): returns the saturation current (the series-resistor
  /// clamp is applied by the cell, not here). OFF: exponential
  /// subthreshold decay at ss_mv_per_dec down to min_leak_a.
  double ids(double vgs_v, double vds_v) const noexcept;

  /// True iff the device conducts its full ON current at this gate bias.
  bool is_on(double vgs_v) const noexcept { return vgs_v >= vth_v_; }

 private:
  FeFetParams params_{};
  double vth_v_ = 0.5;
};

}  // namespace ferex::device
