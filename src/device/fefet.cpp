#include "device/fefet.hpp"

#include <algorithm>
#include <cmath>

namespace ferex::device {

FeFet::FeFet(double vth_v, FeFetParams params) : params_(params) {
  set_vth(vth_v);
}

void FeFet::set_vth(double vth_v) noexcept {
  vth_v_ = std::clamp(vth_v, params_.vth_min_v, params_.vth_max_v);
}

double FeFet::ids(double vgs_v, double vds_v) const noexcept {
  if (vds_v <= 0.0) return 0.0;
  if (vgs_v >= vth_v_) return params_.isat_a;
  // Subthreshold: Ids = Isat * 10^((Vgs - Vth) / SS).
  const double decades = (vgs_v - vth_v_) / (params_.ss_mv_per_dec * 1e-3);
  const double leak = params_.isat_a * std::pow(10.0, decades);
  return std::max(leak, params_.min_leak_a);
}

}  // namespace ferex::device
