// The 1FeFET1R cell (Soliman et al. IEDM'20, Saito et al. VLSI'21).
//
// A large (MΩ) resistor in series with the FeFET source clamps the ON
// current to Vds / R, making it (a) independent of Vth variation and
// (b) an exact integer multiple of the unit current when Vds is an
// integer multiple of the minimum drain voltage — the property FeReX's
// current-domain distance arithmetic is built on (Sec. II-A, Fig. 1b).
#pragma once

#include "device/fefet.hpp"

namespace ferex::device {

/// Cell-level electrical parameters.
struct CellParams {
  double resistance_ohm = 1e6;  ///< series resistor R (MΩ class, BEOL)
  double vds_unit_v = 0.1;      ///< minimum drain-source voltage step [V]
};

/// One FeFET in series with one resistor.
///
/// The conducting current is Min{Isat, Vds / R} when the FeFET is ON
/// (Vgs >= Vth), and the FeFET subthreshold leakage otherwise.
class OneFeFetOneR {
 public:
  OneFeFetOneR() = default;
  OneFeFetOneR(double vth_v, CellParams cell = {}, FeFetParams fet = {});

  const FeFet& fet() const noexcept { return fet_; }
  FeFet& fet() noexcept { return fet_; }
  const CellParams& cell_params() const noexcept { return cell_; }

  /// Actual series resistance (after variation is applied, if any).
  double resistance() const noexcept { return resistance_ohm_; }

  /// Overrides the series resistance (used by the variation model).
  void set_resistance(double ohm) noexcept;

  /// Unit ON current I0 = vds_unit / R for this cell instance.
  double unit_current_a() const noexcept {
    return cell_.vds_unit_v / resistance_ohm_;
  }

  /// Cell current for the given gate and drain biases.
  double current(double vgs_v, double vds_v) const noexcept;

  /// Cell current when Vds = m * vds_unit (the only biases FeReX uses).
  double current_at_multiple(double vgs_v, int vds_multiple) const noexcept;

 private:
  FeFet fet_{};
  CellParams cell_{};
  double resistance_ohm_ = 1e6;
};

}  // namespace ferex::device
