// Simplified Preisach-style programming model for the FeFET.
//
// The paper programs FeFET Vth levels with gate voltage pulses whose
// amplitude and width set the ferroelectric polarization (Sec. II-A),
// simulated there with the Preisach compact model of Ni et al. (VLSI'18).
// We model the macroscopic behaviour that matters for FeReX:
//
//   * polarization P in [-1, 1] maps linearly to Vth in
//     [vth_low (P=+1), vth_high (P=-1)]  (memory window);
//   * a gate pulse of amplitude V and width t moves P toward the
//     saturation value P_sat(V) = tanh((|V| - Vc) / Vw) * sign(V) with a
//     rate that grows with amplitude and log(width) — reproducing the
//     "longer/stronger pulse -> larger Vth shift" behaviour, partial
//     (minor-loop) switching included;
//   * program-and-verify: iterate pulses until Vth is within tolerance of
//     a target level, as done in practice for MLC operation.
#pragma once

#include <cstddef>

namespace ferex::device {

/// Parameters of the polarization-switching dynamics.
struct PreisachParams {
  double vth_low_v = 0.2;    ///< Vth at full positive polarization
  double vth_high_v = 2.0;   ///< Vth at full negative polarization
  /// Coercive voltage Vc: pulses at or below it cause no switching. Must
  /// exceed write_v / 2 so the half-voltage write-inhibit scheme holds.
  double coercive_v = 2.4;
  double softness_v = 0.9;   ///< transition width Vw of P_sat(V)
  double tau_s = 50e-9;      ///< characteristic switching time at 2*Vc
  double write_v = 4.5;      ///< nominal full write/erase amplitude
  double pulse_width_s = 500e-9;  ///< nominal programming pulse width
};

/// A FeFET whose Vth evolves under programming pulses.
class PreisachFeFet {
 public:
  explicit PreisachFeFet(PreisachParams params = {});

  const PreisachParams& params() const noexcept { return params_; }

  /// Current polarization in [-1, 1].
  double polarization() const noexcept { return polarization_; }

  /// Current threshold voltage implied by the polarization.
  double vth() const noexcept;

  /// Memory window (Vth span) of the device.
  double memory_window_v() const noexcept {
    return params_.vth_high_v - params_.vth_low_v;
  }

  /// Applies one gate pulse. Positive amplitude drives P toward +1
  /// (lower Vth), negative toward -1 (higher Vth). Amplitudes at or below
  /// the coercive voltage leave the state unchanged (write-inhibit
  /// half-voltage pulses rely on this).
  void apply_pulse(double amplitude_v, double width_s);

  /// Full erase: saturating negative pulse (P -> -1, Vth -> vth_high).
  void erase();

  /// Program-and-verify loop toward a target Vth. Alternates shortened
  /// write pulses with verification until |vth - target| <= tolerance or
  /// the iteration budget is exhausted. Returns the number of pulses used.
  std::size_t program_to_vth(double target_v, double tolerance_v = 5e-3,
                             std::size_t max_pulses = 64);

 private:
  PreisachParams params_{};
  double polarization_ = -1.0;  // erased (high-Vth) state
};

}  // namespace ferex::device
