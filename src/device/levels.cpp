#include "device/levels.hpp"

#include <stdexcept>

namespace ferex::device {

VoltageLadder::VoltageLadder(std::size_t levels, double base_v, double step_v)
    : levels_(levels), base_v_(base_v), step_v_(step_v) {
  if (levels == 0) throw std::invalid_argument("VoltageLadder: levels == 0");
  if (step_v <= 0.0) throw std::invalid_argument("VoltageLadder: step <= 0");
}

double VoltageLadder::vth(std::size_t i) const {
  if (i >= levels_) throw std::out_of_range("VoltageLadder::vth level");
  return base_v_ + static_cast<double>(i) * step_v_ + step_v_ / 2.0;
}

double VoltageLadder::vsearch(std::size_t j) const {
  if (j >= levels_) throw std::out_of_range("VoltageLadder::vsearch level");
  return base_v_ + static_cast<double>(j) * step_v_;
}

std::vector<double> VoltageLadder::all_vth() const {
  std::vector<double> out(levels_);
  for (std::size_t i = 0; i < levels_; ++i) out[i] = vth(i);
  return out;
}

std::vector<double> VoltageLadder::all_vsearch() const {
  std::vector<double> out(levels_);
  for (std::size_t j = 0; j < levels_; ++j) out[j] = vsearch(j);
  return out;
}

}  // namespace ferex::device
