#include "device/one_fefet_one_r.hpp"

#include <algorithm>

namespace ferex::device {

OneFeFetOneR::OneFeFetOneR(double vth_v, CellParams cell, FeFetParams fet)
    : fet_(vth_v, fet), cell_(cell), resistance_ohm_(cell.resistance_ohm) {}

void OneFeFetOneR::set_resistance(double ohm) noexcept {
  resistance_ohm_ = std::max(ohm, 1.0);
}

double OneFeFetOneR::current(double vgs_v, double vds_v) const noexcept {
  if (vds_v <= 0.0) return 0.0;
  const double fet_current = fet_.ids(vgs_v, vds_v);
  const double clamp = vds_v / resistance_ohm_;
  // ON: the resistor limits the current (FeFET in linear region).
  // OFF: the FeFET limits it (subthreshold), far below the clamp.
  return std::min(fet_current, clamp);
}

double OneFeFetOneR::current_at_multiple(double vgs_v,
                                         int vds_multiple) const noexcept {
  if (vds_multiple <= 0) return 0.0;
  return current(vgs_v, cell_.vds_unit_v * vds_multiple);
}

}  // namespace ferex::device
