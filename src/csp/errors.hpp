// Error types of the CSP layer.
#pragma once

#include <stdexcept>

namespace ferex::csp {

/// Thrown when an exact Algorithm-1 run exceeds its configured resource
/// budget (the feasibility CSP is exponential in cell size; the paper's
/// instances — b <= 2 bits, k <= ~4 FeFETs — are comfortably inside the
/// default budget, but pathological inputs are rejected explicitly rather
/// than silently truncated, which could misreport infeasibility).
class ResourceLimitError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace ferex::csp
