#include "csp/distance_matrix.hpp"

#include <bit>
#include <cstdlib>
#include <stdexcept>

namespace ferex::csp {

std::string to_string(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kHamming:
      return "Hamming";
    case DistanceMetric::kManhattan:
      return "Manhattan";
    case DistanceMetric::kEuclideanSquared:
      return "Euclidean";
  }
  return "Unknown";
}

int reference_distance(DistanceMetric metric, int a, int b) {
  switch (metric) {
    case DistanceMetric::kHamming:
      return std::popcount(static_cast<unsigned>(a) ^
                           static_cast<unsigned>(b));
    case DistanceMetric::kManhattan:
      return std::abs(a - b);
    case DistanceMetric::kEuclideanSquared:
      return (a - b) * (a - b);
  }
  return 0;
}

DistanceMatrix DistanceMatrix::make(DistanceMetric metric, int bits) {
  if (bits < 1 || bits > 8) {
    throw std::invalid_argument("DistanceMatrix: bits must be in [1, 8]");
  }
  const std::size_t n = std::size_t{1} << bits;
  util::Matrix<int> m(n, n, 0);
  for (std::size_t sch = 0; sch < n; ++sch) {
    for (std::size_t sto = 0; sto < n; ++sto) {
      m.at(sch, sto) = reference_distance(metric, static_cast<int>(sch),
                                          static_cast<int>(sto));
    }
  }
  return DistanceMatrix{std::move(m), std::to_string(bits) + "-bit " +
                                          to_string(metric)};
}

DistanceMatrix DistanceMatrix::custom(util::Matrix<int> values,
                                      std::string name) {
  if (values.rows() == 0 || values.cols() == 0) {
    throw std::invalid_argument("DistanceMatrix: empty custom matrix");
  }
  for (int v : values.flat()) {
    if (v < 0) throw std::invalid_argument("DistanceMatrix: negative entry");
  }
  return DistanceMatrix{std::move(values), std::move(name)};
}

DistanceMatrix::DistanceMatrix(util::Matrix<int> values, std::string name)
    : values_(std::move(values)), name_(std::move(name)) {
  for (int v : values_.flat()) max_value_ = std::max(max_value_, v);
}

}  // namespace ferex::csp
