#include "csp/decompose.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace ferex::csp {

namespace {

void validate(int k, int value, std::span<const int> current_range) {
  if (k <= 0) throw std::invalid_argument("decompose_value: k must be > 0");
  if (value < 0) throw std::invalid_argument("decompose_value: value < 0");
  for (int c : current_range) {
    if (c <= 0) {
      throw std::invalid_argument(
          "decompose_value: current range entries must be positive");
    }
  }
}

}  // namespace

std::vector<CellCurrents> decompose_value(int k, int value,
                                          std::span<const int> current_range) {
  validate(k, value, current_range);
  std::vector<CellCurrents> out;
  CellCurrents partial(static_cast<std::size_t>(k), 0);

  // Depth-first over FeFET positions; prune when the remaining positions
  // cannot absorb the remaining value even at the maximum current.
  const int max_c = current_range.empty()
                        ? 0
                        : *std::max_element(current_range.begin(),
                                            current_range.end());
  std::function<void(int, int)> recurse = [&](int pos, int remaining) {
    const int positions_left = k - pos;
    if (remaining > positions_left * max_c) return;  // prune
    if (pos == k) {
      if (remaining == 0) out.push_back(partial);
      return;
    }
    partial[pos] = 0;  // FeFET OFF
    recurse(pos + 1, remaining);
    for (int c : current_range) {
      if (c <= remaining) {
        partial[pos] = c;
        recurse(pos + 1, remaining - c);
      }
    }
    partial[pos] = 0;
  };
  recurse(0, value);
  return out;
}

std::size_t count_decompositions(int k, int value,
                                 std::span<const int> current_range) {
  validate(k, value, current_range);
  // DP over positions: ways[v] = #tuples of the first p positions summing
  // to v.
  std::vector<std::size_t> ways(static_cast<std::size_t>(value) + 1, 0);
  ways[0] = 1;
  for (int p = 0; p < k; ++p) {
    std::vector<std::size_t> next(ways.size(), 0);
    for (std::size_t v = 0; v < ways.size(); ++v) {
      if (ways[v] == 0) continue;
      next[v] += ways[v];  // OFF
      for (int c : current_range) {
        const std::size_t nv = v + static_cast<std::size_t>(c);
        if (nv < next.size()) next[nv] += ways[v];
      }
    }
    ways = std::move(next);
  }
  return ways[static_cast<std::size_t>(value)];
}

}  // namespace ferex::csp
