#include "csp/binary_csp.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <utility>

namespace ferex::csp {

BinaryCsp::BinaryCsp(std::vector<std::size_t> domain_sizes,
                     BinaryPredicate compatible)
    : compatible_(std::move(compatible)) {
  domains_.reserve(domain_sizes.size());
  for (std::size_t size : domain_sizes) {
    std::vector<std::size_t> d(size);
    for (std::size_t v = 0; v < size; ++v) d[v] = v;
    domains_.push_back(std::move(d));
  }
}

bool BinaryCsp::revise(std::size_t xi, std::size_t xj) {
  ++stats_.ac3_revisions;
  bool removed = false;
  auto& di = domains_[xi];
  const auto& dj = domains_[xj];
  di.erase(std::remove_if(di.begin(), di.end(),
                          [&](std::size_t vi) {
                            const bool supported = std::any_of(
                                dj.begin(), dj.end(), [&](std::size_t vj) {
                                  return compatible_(xi, vi, xj, vj);
                                });
                            if (!supported) {
                              ++stats_.ac3_removals;
                              removed = true;
                            }
                            return !supported;
                          }),
           di.end());
  return removed;
}

bool BinaryCsp::ac3() {
  const std::size_t n = variable_count();
  std::deque<std::pair<std::size_t, std::size_t>> queue;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) queue.emplace_back(i, j);
    }
  }
  while (!queue.empty()) {
    const auto [xi, xj] = queue.front();
    queue.pop_front();
    if (revise(xi, xj)) {
      if (domains_[xi].empty()) return false;
      for (std::size_t xk = 0; xk < n; ++xk) {
        if (xk != xi && xk != xj) queue.emplace_back(xk, xi);
      }
    }
  }
  return true;
}

bool BinaryCsp::backtrack(std::vector<std::optional<std::size_t>>& assignment,
                          std::vector<std::vector<std::size_t>>* collector,
                          std::size_t limit) {
  ++stats_.backtrack_nodes;
  // MRV: pick the unassigned variable with the smallest domain.
  std::size_t best = variable_count();
  std::size_t best_size = std::numeric_limits<std::size_t>::max();
  for (std::size_t v = 0; v < variable_count(); ++v) {
    if (!assignment[v] && domains_[v].size() < best_size) {
      best = v;
      best_size = domains_[v].size();
    }
  }
  if (best == variable_count()) {  // complete assignment
    ++stats_.solutions_found;
    if (collector) {
      std::vector<std::size_t> sol(variable_count());
      for (std::size_t v = 0; v < variable_count(); ++v) sol[v] = *assignment[v];
      collector->push_back(std::move(sol));
      return limit != 0 && collector->size() >= limit;  // stop when full
    }
    return true;
  }
  for (std::size_t value : domains_[best]) {
    bool consistent = true;
    for (std::size_t other = 0; other < variable_count(); ++other) {
      if (assignment[other] &&
          !compatible_(best, value, other, *assignment[other])) {
        consistent = false;
        break;
      }
    }
    if (!consistent) continue;
    assignment[best] = value;
    if (backtrack(assignment, collector, limit)) return true;
    assignment[best] = std::nullopt;
  }
  return false;
}

std::optional<std::vector<std::size_t>> BinaryCsp::solve() {
  std::vector<std::optional<std::size_t>> assignment(variable_count());
  if (!backtrack(assignment, nullptr, 0)) return std::nullopt;
  std::vector<std::size_t> out(variable_count());
  for (std::size_t v = 0; v < variable_count(); ++v) out[v] = *assignment[v];
  return out;
}

std::vector<std::vector<std::size_t>> BinaryCsp::solve_all(std::size_t limit) {
  std::vector<std::vector<std::size_t>> collector;
  std::vector<std::optional<std::size_t>> assignment(variable_count());
  backtrack(assignment, &collector, limit);
  return collector;
}

}  // namespace ferex::csp
