// DecomposeDM — constraint 1 of the FeReX CSP (Sec. III-B, Fig. 4c).
//
// A DM element I(sch,sto) is realized as the sum of k per-FeFET currents,
// each either 0 (device OFF) or a value from the allowed current range CR
// (integer multiples of the unit current, set by the drain-voltage
// multiples the drain-voltage selector can apply). This module enumerates
// every ordered k-tuple of such currents summing to the element value.
#pragma once

#include <span>
#include <vector>

namespace ferex::csp {

/// One per-cell current assignment: entry i is the current (in I0
/// multiples) through FeFET i; 0 means the device is OFF.
using CellCurrents = std::vector<int>;

/// Enumerates all ordered decompositions of `value` into `k` currents,
/// each 0 or an element of `current_range` (which must hold distinct
/// positive values). Returns an empty vector when no decomposition exists.
///
/// Example: value=2, k=3, CR={1,2} ->
///   (2,0,0) (0,2,0) (0,0,2) (1,1,0) (1,0,1) (0,1,1)
std::vector<CellCurrents> decompose_value(int k, int value,
                                          std::span<const int> current_range);

/// Number of decompositions without materializing them (for sizing stats).
std::size_t count_decompositions(int k, int value,
                                 std::span<const int> current_range);

}  // namespace ferex::csp
