// Search-line row patterns and the FeReX CSP constraints 2 and 3.
//
// A RowPattern fixes, for ONE search value (one row of the DM), the
// current through each of the k FeFETs under every stored value. It is
// the unit the per-row Backtracking step enumerates and the AC-3 step
// filters (Algorithm 1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "csp/decompose.hpp"

namespace ferex::csp {

/// currents[sto][i] = current through FeFET i (in I0 multiples) when this
/// search row is applied against stored value sto; 0 = OFF.
struct RowPattern {
  std::vector<CellCurrents> currents;

  std::size_t stored_count() const noexcept { return currents.size(); }
  std::size_t fefet_count() const noexcept {
    return currents.empty() ? 0 : currents.front().size();
  }

  /// Non-zero drain current of FeFET i in this row (constraint 2
  /// guarantees it is unique); 0 if the FeFET is OFF for every stored
  /// value.
  int on_current(std::size_t fefet) const;

  /// True iff FeFET i conducts under stored value sto.
  bool is_on(std::size_t sto, std::size_t fefet) const {
    return currents[sto][fefet] != 0;
  }

  bool operator==(const RowPattern&) const = default;
};

/// Constraint 2 (Fig. 4d): within one search row, each FeFET's non-zero
/// currents across stored values must be identical (a FeFET sees a single
/// Vds per search configuration).
bool satisfies_constraint2(const RowPattern& row);

/// Constraint 3 (Fig. 4e), pairwise form: for every FeFET, the ON-sets of
/// the two rows must be nested (one a subset of the other). A violating
/// 2x2 "fence" — sto_a ON / sto_b OFF in one row but sto_a OFF / sto_b ON
/// in the other — would require Vth_a < Vth_b and Vth_b < Vth_a at once.
bool rows_compatible(const RowPattern& a, const RowPattern& b);

/// Enumerates all RowPatterns for one search row via backtracking over
/// stored values (the Backtracking(DMCurs[i]) step of Algorithm 1).
///
/// @param row_targets  DM entries of this row, indexed by stored value
/// @param k            FeFETs per cell
/// @param current_range allowed non-zero per-FeFET currents (I0 multiples)
/// @param max_patterns resource budget; 0 = unlimited. When the row would
///        produce more patterns, throws ResourceLimitError — an explicit
///        "instance too large for exact Algorithm 1" signal, never a
///        silent truncation (which could misreport infeasibility).
std::vector<RowPattern> enumerate_row_patterns(
    std::span<const int> row_targets, int k,
    std::span<const int> current_range, std::size_t max_patterns = 0);

}  // namespace ferex::csp
