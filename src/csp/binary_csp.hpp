// A small generic binary-CSP engine: AC-3 arc consistency (Mackworth 1977)
// plus backtracking search with MRV ordering. The FeReX feasibility
// detector instantiates it with search rows as variables and RowPatterns
// as domain values, but the engine itself is domain-agnostic (and unit
// tested on classic problems such as graph coloring).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

namespace ferex::csp {

/// Statistics of one solver run (exposed for the ablation benches).
struct CspStats {
  std::size_t ac3_revisions = 0;       ///< revise() calls performed
  std::size_t ac3_removals = 0;        ///< domain values pruned by AC-3
  std::size_t backtrack_nodes = 0;     ///< search-tree nodes visited
  std::size_t solutions_found = 0;
};

/// Binary constraint: may (variable a = value index va) coexist with
/// (variable b = value index vb)? Must be symmetric in meaning (the engine
/// queries both directions).
using BinaryPredicate = std::function<bool(
    std::size_t a, std::size_t va, std::size_t b, std::size_t vb)>;

/// A CSP over variables 0..n-1 whose domains are value *indices*
/// (callers keep the real values; the engine never inspects them).
class BinaryCsp {
 public:
  /// @param domain_sizes  size of each variable's initial domain
  /// @param compatible    the binary constraint applied to every pair
  BinaryCsp(std::vector<std::size_t> domain_sizes, BinaryPredicate compatible);

  std::size_t variable_count() const noexcept { return domains_.size(); }

  /// Remaining domain (value indices) of a variable.
  const std::vector<std::size_t>& domain(std::size_t var) const {
    return domains_[var];
  }

  /// Runs AC-3 to arc consistency over the complete constraint graph.
  /// Returns false iff some domain was wiped out (infeasible).
  bool ac3();

  /// Backtracking search (with MRV) over the current domains.
  /// Returns one solution (value index per variable) or nullopt.
  std::optional<std::vector<std::size_t>> solve();

  /// Enumerates up to `limit` full solutions.
  std::vector<std::vector<std::size_t>> solve_all(std::size_t limit = 0);

  const CspStats& stats() const noexcept { return stats_; }

 private:
  bool revise(std::size_t xi, std::size_t xj);
  bool backtrack(std::vector<std::optional<std::size_t>>& assignment,
                 std::vector<std::vector<std::size_t>>* collector,
                 std::size_t limit);

  std::vector<std::vector<std::size_t>> domains_;
  BinaryPredicate compatible_;
  CspStats stats_{};
};

}  // namespace ferex::csp
