// Algorithm 1 — FeReX Feasibility Detection.
//
// INPUT : the M x N distance matrix DM to be implemented by each cell of
//         K FeFETs, with a current range CR allowed per FeFET.
// OUTPUT: the Feasible Region (per-search-row sets of row patterns that
//         survive all three constraints) or failure.
//
// Structure follows the paper exactly: constraint 1 by DM-element
// decomposition, constraint 2 by per-row Backtracking, constraint 3 by
// AC-3 across rows. On top of the paper's pseudocode we also extract a
// concrete globally consistent assignment by a final backtracking search
// over the filtered domains (AC-3 alone guarantees only arc consistency).
#pragma once

#include <span>
#include <vector>

#include "csp/binary_csp.hpp"
#include "csp/distance_matrix.hpp"
#include "csp/row_pattern.hpp"

namespace ferex::csp {

struct FeasibilityOptions {
  /// Use AC-3 for constraint 3 (the paper's default). When false, the
  /// filtering step is skipped and plain backtracking handles everything —
  /// the ablation Alg. 1 mentions ("AC3 can be replaced by backtracking").
  bool use_ac3 = true;

  /// How many concrete solutions to enumerate (1 = first found, 0 = all).
  std::size_t solution_limit = 1;

  /// Resource budget: maximum row patterns enumerated per search row
  /// (0 = unlimited). The CSP is exponential in cell size; paper-scale
  /// instances need well under this. Exceeding the budget throws
  /// ResourceLimitError instead of silently truncating.
  std::size_t max_patterns_per_row = 20000;
};

/// Result of the feasibility detection for one (DM, k, CR) instance.
struct FeasibilityResult {
  bool feasible = false;

  /// The paper's "Feasible Region": for each search row, the row patterns
  /// that survive AC-3 (or the raw constraint-2 sets when AC-3 is off).
  std::vector<std::vector<RowPattern>> feasible_region;

  /// Concrete globally consistent assignments: solutions[s][sch] is the
  /// row pattern chosen for search row sch in solution s.
  std::vector<std::vector<RowPattern>> solutions;

  CspStats stats{};

  /// The first solution (requires feasible).
  const std::vector<RowPattern>& solution() const { return solutions.front(); }
};

/// Runs Algorithm 1 for a DM on cells of k FeFETs with current range CR.
/// Throws ResourceLimitError when the instance exceeds the options'
/// pattern budget (see FeasibilityOptions::max_patterns_per_row).
FeasibilityResult detect_feasibility(const DistanceMatrix& dm, int k,
                                     std::span<const int> current_range,
                                     const FeasibilityOptions& options = {});

}  // namespace ferex::csp
