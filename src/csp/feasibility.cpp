#include "csp/feasibility.hpp"

#include <cstdint>
#include <stdexcept>
#include <utility>

namespace ferex::csp {

FeasibilityResult detect_feasibility(const DistanceMatrix& dm, int k,
                                     std::span<const int> current_range,
                                     const FeasibilityOptions& options) {
  if (dm.stored_count() > 64) {
    throw std::invalid_argument(
        "detect_feasibility: > 64 stored values per cell unsupported");
  }
  FeasibilityResult result;
  const std::size_t rows = dm.search_count();

  // Constraints 1 + 2: per-row pattern enumeration
  //   DMCurs[i, j] <- DecomposeDM(K, DM[i, j], CR)
  //   Searchlines[i] <- Backtracking(DMCurs[i])
  std::vector<std::vector<RowPattern>> searchlines(rows);
  for (std::size_t sch = 0; sch < rows; ++sch) {
    searchlines[sch] = enumerate_row_patterns(
        dm.values().row(sch), k, current_range, options.max_patterns_per_row);
    if (searchlines[sch].empty()) return result;  // some row unrealizable
  }

  // Pre-compute per-pattern, per-FeFET ON-set bitmasks over stored values
  // so the (heavily repeated) constraint-3 compatibility check reduces to
  // a few word operations: two ON-sets are nested iff NOT both set
  // differences are non-empty.
  const auto kk = static_cast<std::size_t>(k);
  std::vector<std::vector<std::uint64_t>> masks(rows);
  for (std::size_t sch = 0; sch < rows; ++sch) {
    masks[sch].assign(searchlines[sch].size() * kk, 0);
    for (std::size_t p = 0; p < searchlines[sch].size(); ++p) {
      const auto& pattern = searchlines[sch][p];
      for (std::size_t sto = 0; sto < pattern.stored_count(); ++sto) {
        for (std::size_t i = 0; i < kk; ++i) {
          if (pattern.is_on(sto, i)) {
            masks[sch][p * kk + i] |= (std::uint64_t{1} << sto);
          }
        }
      }
    }
  }
  const auto compatible = [&masks, kk](std::size_t a, std::size_t va,
                                       std::size_t b, std::size_t vb) {
    const std::uint64_t* ma = &masks[a][va * kk];
    const std::uint64_t* mb = &masks[b][vb * kk];
    for (std::size_t i = 0; i < kk; ++i) {
      if ((ma[i] & ~mb[i]) != 0 && (mb[i] & ~ma[i]) != 0) return false;
    }
    return true;
  };

  // Constraint 3 across rows: FeasibleRegion <- AC3(Searchlines).
  std::vector<std::size_t> domain_sizes(rows);
  for (std::size_t sch = 0; sch < rows; ++sch) {
    domain_sizes[sch] = searchlines[sch].size();
  }
  BinaryCsp csp(std::move(domain_sizes), compatible);

  if (options.use_ac3 && !csp.ac3()) {
    result.stats = csp.stats();
    return result;  // a domain was wiped out: infeasible
  }

  // Extract concrete solutions over the (possibly filtered) domains.
  const auto index_solutions = csp.solve_all(options.solution_limit);
  result.stats = csp.stats();
  if (index_solutions.empty()) return result;

  result.feasible = true;
  result.feasible_region.resize(rows);
  for (std::size_t sch = 0; sch < rows; ++sch) {
    for (std::size_t idx : csp.domain(sch)) {
      result.feasible_region[sch].push_back(searchlines[sch][idx]);
    }
  }
  result.solutions.reserve(index_solutions.size());
  for (const auto& sol : index_solutions) {
    std::vector<RowPattern> patterns(rows);
    for (std::size_t sch = 0; sch < rows; ++sch) {
      patterns[sch] = searchlines[sch][sol[sch]];
    }
    result.solutions.push_back(std::move(patterns));
  }
  return result;
}

}  // namespace ferex::csp
