#include "csp/row_pattern.hpp"

#include <algorithm>
#include <functional>
#include <string>

#include "csp/errors.hpp"

namespace ferex::csp {

int RowPattern::on_current(std::size_t fefet) const {
  for (const auto& cell : currents) {
    if (cell[fefet] != 0) return cell[fefet];
  }
  return 0;
}

bool satisfies_constraint2(const RowPattern& row) {
  const std::size_t k = row.fefet_count();
  for (std::size_t i = 0; i < k; ++i) {
    int locked = 0;
    for (const auto& cell : row.currents) {
      const int c = cell[i];
      if (c == 0) continue;
      if (locked == 0) {
        locked = c;
      } else if (c != locked) {
        return false;
      }
    }
  }
  return true;
}

bool rows_compatible(const RowPattern& a, const RowPattern& b) {
  const std::size_t k = a.fefet_count();
  const std::size_t n = a.stored_count();
  if (k != b.fefet_count() || n != b.stored_count()) return false;
  for (std::size_t i = 0; i < k; ++i) {
    bool a_minus_b = false;  // some sto ON in a but OFF in b
    bool b_minus_a = false;  // some sto ON in b but OFF in a
    for (std::size_t sto = 0; sto < n; ++sto) {
      const bool on_a = a.is_on(sto, i);
      const bool on_b = b.is_on(sto, i);
      if (on_a && !on_b) a_minus_b = true;
      if (on_b && !on_a) b_minus_a = true;
    }
    if (a_minus_b && b_minus_a) return false;  // ON-sets not nested
  }
  return true;
}

std::vector<RowPattern> enumerate_row_patterns(
    std::span<const int> row_targets, int k,
    std::span<const int> current_range, std::size_t max_patterns) {
  const std::size_t n = row_targets.size();

  // Pre-compute the decomposition choices per stored value (constraint 1).
  std::vector<std::vector<CellCurrents>> choices(n);
  for (std::size_t sto = 0; sto < n; ++sto) {
    choices[sto] = decompose_value(k, row_targets[sto], current_range);
    if (choices[sto].empty()) return {};  // row impossible
  }

  // Most-constrained-first ordering: visiting stored values with few
  // decompositions early locks FeFET currents sooner and prunes harder.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return choices[a].size() < choices[b].size();
  });

  std::vector<RowPattern> out;
  RowPattern partial;
  partial.currents.assign(n, CellCurrents(static_cast<std::size_t>(k), 0));
  // locked[i] — the single ON current FeFET i is committed to so far
  // (0 = still free). Enforces constraint 2 incrementally.
  std::vector<int> locked(static_cast<std::size_t>(k), 0);

  std::function<void(std::size_t)> recurse = [&](std::size_t depth) {
    if (depth == n) {
      if (max_patterns != 0 && out.size() >= max_patterns) {
        throw ResourceLimitError(
            "enumerate_row_patterns: row pattern budget (" +
            std::to_string(max_patterns) + ") exceeded");
      }
      out.push_back(partial);
      return;
    }
    const std::size_t sto = order[depth];
    for (const CellCurrents& cand : choices[sto]) {
      // Check cand against the locks; remember which locks we introduce.
      std::vector<std::size_t> newly_locked;
      bool ok = true;
      for (std::size_t i = 0; i < static_cast<std::size_t>(k); ++i) {
        const int c = cand[i];
        if (c == 0) continue;
        if (locked[i] == 0) {
          locked[i] = c;
          newly_locked.push_back(i);
        } else if (locked[i] != c) {
          ok = false;
          break;
        }
      }
      if (ok) {
        partial.currents[sto] = cand;
        recurse(depth + 1);
      }
      for (std::size_t i : newly_locked) locked[i] = 0;  // undo
    }
  };
  recurse(0);
  return out;
}

}  // namespace ferex::csp
