// Distance Matrix (DM) construction — Sec. III-B, Fig. 4(a).
//
// The DM is the functional specification handed to the CSP encoder:
// rows are search (query) values, columns are stored values, and entry
// (sch, sto) is the target distance the cell's summed current must
// represent, in integer multiples of the unit current I0.
#pragma once

#include <cstdint>
#include <string>

#include "util/matrix.hpp"

namespace ferex::csp {

/// Distance functions FeReX supports (Table I: HD / L1 / L2).
enum class DistanceMetric : std::uint8_t {
  kHamming,           ///< bitwise Hamming distance popcount(a ^ b)
  kManhattan,         ///< L1: |a - b|
  kEuclideanSquared,  ///< L2 squared: (a - b)^2  (integer-valued)
};

/// Human-readable metric name ("Hamming", "Manhattan", "Euclidean").
std::string to_string(DistanceMetric metric);

/// Software reference distance between two b-bit values under a metric.
int reference_distance(DistanceMetric metric, int a, int b);

/// The target distance matrix for one AM cell.
class DistanceMatrix {
 public:
  /// Builds the 2^bits x 2^bits DM for a metric. bits in [1, 8].
  static DistanceMatrix make(DistanceMetric metric, int bits);

  /// Wraps an arbitrary user matrix (rows = search, cols = stored).
  /// All entries must be non-negative.
  static DistanceMatrix custom(util::Matrix<int> values, std::string name);

  std::size_t search_count() const noexcept { return values_.rows(); }
  std::size_t stored_count() const noexcept { return values_.cols(); }

  /// Target distance for search row `sch` against stored column `sto`.
  int at(std::size_t sch, std::size_t sto) const { return values_.at(sch, sto); }

  /// Largest entry (defines the current range the cell must span).
  int max_value() const noexcept { return max_value_; }

  const std::string& name() const noexcept { return name_; }
  const util::Matrix<int>& values() const noexcept { return values_; }

 private:
  DistanceMatrix(util::Matrix<int> values, std::string name);

  util::Matrix<int> values_;
  std::string name_;
  int max_value_ = 0;
};

}  // namespace ferex::csp
