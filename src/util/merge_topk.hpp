#pragma once

/// Shared two-best-winner merge for group-of-arrays serving layers.
///
/// Both `arch::BankedAm` (merging per-bank winners) and
/// `serve::ShardedIndex` (merging per-shard winners) resolve a global
/// winner from a set of group-local winners and must reconstruct the
/// winner's margin across groups. It lives in `util` because both
/// consumers sit on opposite sides of the module DAG (`arch` below
/// `serve`): hosting it in `serve` made `arch -> serve` the repo's one
/// upward include edge. The rule is identical in both layers and
/// subtle enough to drift if re-derived:
///
///   - the winner is the live group with the strictly smallest sensed
///     value (ties go to the lowest group index, matching the
///     deterministic `LtaCircuit::decide` sweep);
///   - with more than one live group, `margin_a` is the gap between the
///     two best group winners (what a deterministic global comparator
///     over the group winners would report);
///   - with exactly one live group there is no second winner to compare
///     against, so the group's own internal margin passes through (a
///     comparator over one input is an identity).
///
/// The helper is pure and deterministic: it draws no noise, so feeding
/// it the already-sensed group winners preserves bit-identity with a
/// flat index whose comparator saw all rows at once.

#include <cstddef>
#include <limits>
#include <span>
#include <stdexcept>

namespace ferex::util {

/// One group's local winner, as input to `merge_topk`.
struct GroupWinner {
  /// Merge key: sensed current (circuit) or nominal distance, already
  /// resolved by the group's own search.
  double sensed = std::numeric_limits<double>::infinity();
  /// The group's internal margin (gap to its own runner-up). Used only
  /// when this group is the sole live competitor.
  double margin_a = 0.0;
  /// Dead groups (all rows removed) are skipped entirely.
  bool live = false;
};

/// The merged global winner with its cross-group margin.
struct MergedWinner {
  std::size_t group = 0;
  double sensed = 0.0;
  double margin_a = 0.0;
};

/// Resolves the global winner over per-group winners. Throws
/// `std::logic_error` when no group is live — callers gate on liveness
/// before merging (an all-dead fleet is typed `EmptyIndex` upstream).
inline MergedWinner merge_topk(std::span<const GroupWinner> groups) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::size_t winner = groups.size();
  double best = kInf;
  double second = kInf;
  std::size_t live = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (!groups[g].live) continue;
    ++live;
    const double sensed = groups[g].sensed;
    if (sensed < best) {
      second = best;
      best = sensed;
      winner = g;
    } else if (sensed < second) {
      second = sensed;
    }
  }
  if (live == 0) {
    throw std::logic_error("merge_topk: no live group");
  }
  MergedWinner out;
  out.group = winner;
  out.sensed = best;
  out.margin_a = live > 1 ? second - best : groups[winner].margin_a;
  return out;
}

}  // namespace ferex::util
