// A minimal dense row-major 2-D container. The distance-matrix machinery,
// crossbar state and HDC prototype banks all use it; it is deliberately
// simple (no expression templates) — clarity over micro-optimization.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace ferex::util {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  T& at(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T& operator()(std::size_t r, std::size_t c) { return at(r, c); }
  const T& operator()(std::size_t r, std::size_t c) const { return at(r, c); }

  std::span<T> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const T> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<T> flat() noexcept { return data_; }
  std::span<const T> flat() const noexcept { return data_; }

  void fill(const T& v) { data_.assign(data_.size(), v); }

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace ferex::util
