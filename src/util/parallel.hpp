// Minimal worker pool for data-parallel fan-out.
//
// Batched search amortizes per-query overheads by running independent
// queries concurrently. The unit of work here is one query over the whole
// simulated array (microseconds of float math), so a fork/join pool with
// an atomic work index is plenty: no task queue, no futures per item.
#pragma once

#include <cstddef>
#include <functional>

namespace ferex::util {

/// Width of the worker pool for unbounded work: hardware_concurrency,
/// and at least 1. Schedulers compare their batch size against this to
/// decide whether to fan out across items or within one item.
std::size_t pool_width() noexcept;

/// Number of workers to launch for `jobs` independent work items:
/// min(pool_width, jobs), and at least 1.
std::size_t worker_count(std::size_t jobs) noexcept;

/// Runs fn(0), fn(1), ..., fn(n - 1), fanning the indices across a pool of
/// worker_count(n) std::threads (inline when that is 1). Blocks until all
/// items finish. The first exception thrown by any fn is rethrown on the
/// calling thread after the pool joins; remaining items may be skipped.
/// fn must be safe to call concurrently for distinct indices.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace ferex::util
