// Persistent worker pool for data-parallel fan-out.
//
// Batched search amortizes per-query overheads by running independent
// queries concurrently; intra-query parallelism fans one query's rows or
// banks the same way. The unit of work is microseconds of float math, so
// per-call std::thread spawn (tens of microseconds each) used to dominate
// at small geometries. parallel_for therefore runs on a process-wide pool
// of workers spawned lazily on the first multi-threaded call and reused
// for every call after it: submission is a mutex acquisition and a
// condition-variable wake, not a thread launch.
//
// Semantics (unchanged from the fork/join version):
//   * fn(0) .. fn(n-1) each run exactly once unless an earlier item threw;
//   * the call blocks until every claimed item finished;
//   * the first exception thrown by any fn is rethrown on the calling
//     thread after the fan-in; remaining unclaimed items are skipped;
//   * fn must be safe to call concurrently for distinct indices.
//
// Scheduling rules the implementation adds:
//   * a parallel_for issued from inside a pool worker (nesting) runs its
//     items inline on that worker — pools never nest, callers that used
//     to force inner loops serial to avoid nested spawns still can, but
//     an accidental nested call degrades to serial instead of deadlocking
//     or oversubscribing;
//   * when another thread's parallel_for currently owns the pool, the
//     call runs inline on the caller instead of queueing behind it.
// Neither rule affects results: every caller in this codebase is
// bit-identical across schedules by construction.
#pragma once

#include <cstddef>
#include <functional>

namespace ferex::util {

/// Width of the worker pool for unbounded work: hardware_concurrency,
/// and at least 1. Schedulers compare their batch size against this to
/// decide whether to fan out across items or within one item. The
/// FEREX_POOL_WIDTH environment variable (1..512), read once at first
/// use, overrides the detected width — for pinned containers whose
/// hardware_concurrency misreports the cgroup quota, and for exercising
/// the pool on single-core hosts.
std::size_t pool_width() noexcept;

/// Number of workers to launch for `jobs` independent work items:
/// min(pool_width, jobs), and at least 1.
std::size_t worker_count(std::size_t jobs) noexcept;

/// True on a pool worker thread (a nested parallel_for would run inline).
bool on_pool_worker() noexcept;

/// Runs fn(0), fn(1), ..., fn(n - 1) across the persistent worker pool
/// (inline when pool_width() is 1, n <= 1, or the pool is unavailable —
/// see the scheduling rules above). Blocks until all claimed items
/// finish; the first exception thrown by any fn is rethrown on the
/// calling thread after the fan-in, and remaining items may be skipped.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// parallel_for with shard affinity: item i is preferentially claimed by
/// the pool participant with stable index i % P (P = submitter + spawned
/// workers, each with a fixed id for the pool's lifetime), so a workload
/// that repeatedly fans the *same* item set — e.g. a banked search firing
/// its banks on every query — keeps each item on the same thread across
/// calls and that thread's caches (a bank's bias/current tables) stay
/// warm. Affinity is best-effort, never a liveness dependency: once a
/// participant drains its own lane it steals from the others, so a slow
/// or missing worker only costs locality. Semantics otherwise match
/// parallel_for exactly; every call site must be schedule-invariant.
void parallel_for_affine(std::size_t n,
                         const std::function<void(std::size_t)>& fn);

}  // namespace ferex::util
