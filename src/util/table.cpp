#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ferex::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string TextTable::sci(double v, int precision) {
  std::ostringstream oss;
  oss << std::scientific << std::setprecision(precision) << v;
  return oss.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c]
         << " | ";
    }
    os << '\n';
  };
  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
    if (c + 1 < header_.size()) os << "";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  table.print(os);
  return os;
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace ferex::util
