// Annotated lock primitives the Clang thread-safety analysis can see.
//
// libstdc++'s std::mutex / std::shared_mutex / std::lock_guard carry no
// capability annotations, so code locking through them is invisible to
// `-Wthread-safety`: a GUARDED_BY field would warn on every access even
// under a correctly held std::lock_guard. These wrappers are the same
// primitives with the capability vocabulary attached — zero runtime
// cost (every member is a forwarding inline call) and drop-in scoped
// lockers in the Abseil style (MutexLock / ReaderMutexLock /
// WriterMutexLock).
//
// Condition variables: wait with std::condition_variable_any directly
// on the Mutex (it satisfies BasicLockable). The analysis does not see
// the unlock/relock inside wait(), which is exactly right — the
// capability is held on both sides of the call, and a predicate lambda
// reading guarded state must be annotated REQUIRES(mutex).
#pragma once

#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.hpp"

namespace ferex::util {

/// Tag type: the scoped locker adopts a capability the caller already
/// holds (e.g. after a successful try_lock()) instead of acquiring it.
struct adopt_lock_t {
  explicit adopt_lock_t() = default;
};
inline constexpr adopt_lock_t adopt_lock{};

/// std::mutex with the exclusive-capability annotations.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with shared/exclusive capability annotations.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock over Mutex (std::lock_guard with annotations).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  /// Adopts a mutex the caller locked (try_lock fast paths).
  MutexLock(Mutex& mu, adopt_lock_t) REQUIRES(mu) : mu_(mu) {}
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock over SharedMutex (writer side).
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared lock over SharedMutex (reader side). The destructor is
/// RELEASE_GENERIC: a scoped capability's release must match however it
/// was acquired, and this one only ever acquires shared.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace ferex::util
